// Package trace records per-round events of a decentralized training run —
// who was matched with whom, over which bandwidth, how many bytes moved,
// whether the round was a forced reconnection — and renders them as CSV for
// offline analysis. The experiment drivers attach a Recorder to SAPS runs
// when round-level introspection is wanted; it costs one append per round.
//
// A Recorder has two modes. The default accumulates every round in memory
// and renders the CSV at the end (WriteCSV). Stream switches it to
// incremental output: the header is written immediately and every Record
// appends one row to the writer, so a 50k-node planner_only run over tens
// of thousands of rounds holds one round of scratch instead of the whole
// history. Both modes produce byte-identical CSV for the same rounds.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
)

// RoundEvent is one round's record.
type RoundEvent struct {
	Round int
	// Pairs are the matched worker pairs (u < v).
	Pairs [][2]int
	// PairMBps holds the link bandwidth of each pair, aligned with Pairs.
	PairMBps []float64
	// Forced reports whether Algorithm 3 injected connectivity-restoring
	// edges this round.
	Forced bool
	// PayloadBytes is the per-direction payload size of each exchange.
	PayloadBytes int64
	// ActiveWorkers counts participants (== n without churn).
	ActiveWorkers int
	// Loss is the mean training loss reported for the round.
	Loss float64
}

// Recorder accumulates round events (default), or streams them row by row
// after Stream.
type Recorder struct {
	events []RoundEvent

	// Streaming state: w non-nil selects streaming mode. The summary
	// statistics (MeanMatchedBandwidth, ForcedFraction, Len) stay
	// available because their accumulators are maintained per Record;
	// the full event history is not.
	w       io.Writer
	err     error
	rounds  int
	meanSum float64
	meanN   int
	forcedN int
	scratch RoundEvent
}

// NewRecorder returns an empty in-memory recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Stream switches the recorder to streaming mode: the CSV header is written
// to w immediately and every subsequent Record appends one row instead of
// accumulating the event. Must be called before the first Record; write
// failures latch into Err (later Records become no-ops). The recorder
// cannot be switched back.
func (r *Recorder) Stream(w io.Writer) error {
	if r.w != nil {
		return fmt.Errorf("trace: recorder already streaming")
	}
	if len(r.events) > 0 {
		return fmt.Errorf("trace: Stream after %d recorded rounds", len(r.events))
	}
	r.w = w
	if err := writeHeader(w); err != nil {
		r.err = err
		return err
	}
	return nil
}

// Streaming reports whether the recorder is in streaming mode.
func (r *Recorder) Streaming() bool { return r.w != nil }

// Err returns the first write error of a streaming recorder (nil in
// in-memory mode or while the stream is healthy).
func (r *Recorder) Err() error { return r.err }

// Record appends one round's event, deriving pair statistics from the
// matching and the environment. In streaming mode the row goes straight to
// the writer and only summary accumulators are retained.
func (r *Recorder) Record(round int, match graph.Matching, bw *netsim.Bandwidth, forced bool, payloadBytes int64, active int, loss float64) {
	ev := &r.scratch
	if r.w == nil {
		r.events = append(r.events, RoundEvent{})
		ev = &r.events[len(r.events)-1]
	}
	ev.Round = round
	ev.Forced = forced
	ev.PayloadBytes = payloadBytes
	ev.ActiveWorkers = active
	ev.Loss = loss
	ev.Pairs = ev.Pairs[:0]
	ev.PairMBps = ev.PairMBps[:0]
	for v, p := range match {
		if p > v {
			ev.Pairs = append(ev.Pairs, [2]int{v, p})
			ev.PairMBps = append(ev.PairMBps, bw.MBps(v, p))
		}
	}
	r.rounds++
	if forced {
		r.forcedN++
	}
	if len(ev.PairMBps) > 0 {
		s := 0.0
		for _, v := range ev.PairMBps {
			s += v
		}
		r.meanSum += s / float64(len(ev.PairMBps))
		r.meanN++
	}
	if r.w != nil && r.err == nil {
		r.err = writeEvent(r.w, ev)
	}
}

// Events returns the recorded rounds (nil in streaming mode).
func (r *Recorder) Events() []RoundEvent { return r.events }

// Len returns the number of recorded rounds (both modes).
func (r *Recorder) Len() int { return r.rounds }

// MeanMatchedBandwidth returns the across-round mean of the per-round mean
// pair bandwidth — the Fig. 5 summary statistic.
func (r *Recorder) MeanMatchedBandwidth() float64 {
	if r.meanN == 0 {
		return 0
	}
	return r.meanSum / float64(r.meanN)
}

// ForcedFraction returns the share of rounds that needed forced
// reconnection.
func (r *Recorder) ForcedFraction() float64 {
	if r.rounds == 0 {
		return 0
	}
	return float64(r.forcedN) / float64(r.rounds)
}

// writeHeader emits the CSV column header.
func writeHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "round,pairs,mean_pair_mbps,forced,payload_bytes,active,loss")
	return err
}

// writeEvent renders one round's row: round, pairs (u-v|u-v|…), mean pair
// bandwidth, forced, payload bytes, active workers, loss.
func writeEvent(w io.Writer, ev *RoundEvent) error {
	pairs := make([]string, len(ev.Pairs))
	for i, p := range ev.Pairs {
		pairs[i] = strconv.Itoa(p[0]) + "-" + strconv.Itoa(p[1])
	}
	mean := 0.0
	if len(ev.PairMBps) > 0 {
		for _, v := range ev.PairMBps {
			mean += v
		}
		mean /= float64(len(ev.PairMBps))
	}
	_, err := fmt.Fprintf(w, "%d,%s,%.4f,%t,%d,%d,%.6f\n",
		ev.Round, strings.Join(pairs, "|"), mean, ev.Forced,
		ev.PayloadBytes, ev.ActiveWorkers, ev.Loss)
	return err
}

// WriteCSV renders the in-memory history, one row per round. Streaming
// recorders have already emitted their rows and return an error.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r.w != nil {
		return fmt.Errorf("trace: WriteCSV on a streaming recorder (rows already written)")
	}
	if err := writeHeader(w); err != nil {
		return err
	}
	for i := range r.events {
		if err := writeEvent(w, &r.events[i]); err != nil {
			return err
		}
	}
	return nil
}
