package algos

import (
	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/trace"
)

// SAPS is the paper's algorithm: local SGD + shared-seed sparsified
// single-peer gossip with adaptive (bandwidth-aware, recency-constrained)
// peer selection. The round loop itself lives in internal/engine; this type
// assembles the engine over the in-process memtransport backend and layers
// the simulation-side diagnostics (matched-bandwidth series, tracing) on
// top.
type SAPS struct {
	fleet *Fleet
	eng   *engine.Engine
	// LastMatchedBandwidth is the mean bandwidth (MB/s) over the pairs
	// matched in the most recent round — the Fig. 5 series.
	LastMatchedBandwidth float64
	// Trace, when set, records one event per round (matching, bandwidths,
	// forced-reconnection flag, payload size, loss).
	Trace *trace.Recorder
	bw    *netsim.Bandwidth
}

// newEngineWorkers builds the rank-indexed core workers over a fleet.
func newEngineWorkers(f *Fleet, fc FleetConfig, cfg core.Config) []*core.Worker {
	ws := make([]*core.Worker, f.N)
	for i := 0; i < f.N; i++ {
		// core.NewWorker builds its own loader; the fleet's models are
		// shared so evaluation sees the live parameters.
		ws[i] = core.NewWorker(i, f.Models[i], fc.Shards[i], cfg)
	}
	return ws
}

// NewSAPS builds the algorithm over the bandwidth environment bw.
func NewSAPS(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config) *SAPS {
	f := NewFleet(fc)
	s := &SAPS{fleet: f, bw: bw}
	s.eng = engine.New(engine.Options{
		Workers: newEngineWorkers(f, fc, cfg),
		Planner: core.NewCoordinator(bw, cfg),
		Shards:  fc.RuntimeShards,
	})
	return s
}

// SetTrace attaches a round recorder (scenario.RunFull's hook; equivalent
// to assigning Trace directly).
func (s *SAPS) SetTrace(r *trace.Recorder) { s.Trace = r }

// Name implements Algorithm.
func (s *SAPS) Name() string { return "SAPS-PSGD" }

// Models implements Algorithm.
func (s *SAPS) Models() []*nn.Model { return s.fleet.Models }

// Close releases the engine's worker pool (also reclaimed automatically when
// the algorithm becomes unreachable).
func (s *SAPS) Close() { s.eng.Close() }

// Step implements Algorithm: Algorithm 1 (coordinator) + Algorithm 2
// (workers) for one round, executed by the engine.
func (s *SAPS) Step(round int, led engine.Ledger) float64 {
	stats, err := s.eng.Step(round, led)
	if err != nil {
		panic(err) // the in-process transport cannot fail
	}
	s.LastMatchedBandwidth = gossip.MeanMatchedBandwidth(stats.Plan.Matching(), s.bw)
	if s.Trace != nil {
		payload := compress.MaskedBytes(stats.PayloadLen)
		s.Trace.Record(round, stats.Plan.Matching(), s.bw, stats.Plan.Forced, payload, s.fleet.N, stats.Loss)
	}
	return stats.Loss
}

var _ Algorithm = (*SAPS)(nil)

// RandomChoose is SAPS with the adaptive peer selection replaced by a
// uniformly random maximum matching each round — the paper's RandomChoose
// comparison in Fig. 5. Sparsification and masked averaging are unchanged:
// only the engine's Planner differs.
type RandomChoose struct {
	fleet *Fleet
	eng   *engine.Engine
	bw    *netsim.Bandwidth
	// LastMatchedBandwidth mirrors SAPS.LastMatchedBandwidth.
	LastMatchedBandwidth float64
}

// randomPlanner draws a uniformly random maximum matching and a fresh mask
// seed each round.
type randomPlanner struct {
	n       int
	rnd     *rng.Source
	seedSrc *rng.Source
}

func (p *randomPlanner) Plan(t int) core.RoundPlan {
	return core.RoundPlan{
		Round: t,
		Seed:  p.seedSrc.Uint64(),
		Peer:  []int(gossip.RandomMatching(p.n, p.rnd)),
	}
}

// NewRandomChoose builds the random-matching variant.
func NewRandomChoose(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config) *RandomChoose {
	f := NewFleet(fc)
	rc := &RandomChoose{fleet: f, bw: bw}
	rc.eng = engine.New(engine.Options{
		Workers: newEngineWorkers(f, fc, cfg),
		Planner: &randomPlanner{
			n:       f.N,
			rnd:     rng.New(cfg.Seed).Derive(0x7a4d01),
			seedSrc: rng.New(cfg.Seed).Derive(0x7a4d02),
		},
		Shards: fc.RuntimeShards,
	})
	return rc
}

// Name implements Algorithm.
func (rc *RandomChoose) Name() string { return "RandomChoose" }

// Models implements Algorithm.
func (rc *RandomChoose) Models() []*nn.Model { return rc.fleet.Models }

// Close releases the engine's worker pool.
func (rc *RandomChoose) Close() { rc.eng.Close() }

// Step implements Algorithm.
func (rc *RandomChoose) Step(round int, led engine.Ledger) float64 {
	stats, err := rc.eng.Step(round, led)
	if err != nil {
		panic(err)
	}
	rc.LastMatchedBandwidth = gossip.MeanMatchedBandwidth(stats.Plan.Matching(), rc.bw)
	return stats.Loss
}

var _ Algorithm = (*RandomChoose)(nil)
