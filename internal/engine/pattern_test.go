package engine_test

import (
	"math"
	"testing"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/engine/memtransport"
)

// vecNode is a minimal engine.Node sharing a fixed vector and recording what
// Merge delivers.
type vecNode struct {
	out    []float64
	merged []engine.PeerMsg
	order  []int // Merge call order per message (sender ranks)
}

func (n *vecNode) Compute(engine.RoundContext) (float64, []float64, error) {
	return 1.0, n.out, nil
}

func (n *vecNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		cp := m
		cp.Vals = append([]float64(nil), m.Vals...)
		n.merged = append(n.merged, cp)
		n.order = append(n.order, m.From)
	}
	return nil
}

// runPattern drives n vecNodes for one round over an in-process hub and
// returns the nodes plus the per-rank reports.
func runPattern(t *testing.T, pat engine.Pattern, outs [][]float64, codecs []engine.Codec, plan core.RoundPlan) ([]*vecNode, []engine.NodeReport) {
	t.Helper()
	n := len(outs)
	nodes := make([]*vecNode, n)
	engNodes := make([]engine.Node, n)
	for i := range outs {
		nodes[i] = &vecNode{out: outs[i]}
		engNodes[i] = nodes[i]
	}
	hub := memtransport.NewHub(n)
	reports := make([]engine.NodeReport, n)
	errs := make(chan error, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			ctx := engine.RoundContext{Round: plan.Round, Seed: plan.Seed, Self: i, N: n, Plan: plan}
			rep, err := engine.WorkerRound(engNodes[i], pat, codecs, hub, nil, ctx)
			reports[i] = rep
			errs <- err
		}(i)
	}
	go func() {
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil {
				t.Error(err)
			}
		}
		close(done)
	}()
	<-done
	return nodes, reports
}

func denseCodecs(n int) []engine.Codec {
	out := make([]engine.Codec, n)
	for i := range out {
		out[i] = engine.Dense{}
	}
	return out
}

// TestCollectiveAllReduceExact: the halving/doubling butterfly must deliver
// the exact element-wise sum to every node, and each node must ship exactly
// 2·D·(n-1)/n values (the Table I ring all-reduce cost) in each direction.
func TestCollectiveAllReduceExact(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		const D = 37 // odd length exercises uneven segment splits
		outs := make([][]float64, n)
		want := make([]float64, D)
		for i := range outs {
			outs[i] = make([]float64, D)
			for j := range outs[i] {
				outs[i][j] = float64(i*1000 + j)
				want[j] += outs[i][j]
			}
		}
		nodes, reports := runPattern(t, engine.Collective{}, outs, denseCodecs(n), core.RoundPlan{Round: 0})
		for i, node := range nodes {
			if len(node.merged) != 1 || node.merged[0].From != -1 {
				t.Fatalf("n=%d node %d: merged %d messages", n, i, len(node.merged))
			}
			for j, v := range node.merged[0].Vals {
				if v != want[j] {
					t.Fatalf("n=%d node %d coord %d: %v != %v", n, i, j, v, want[j])
				}
			}
			var sent, recv int64
			for _, f := range reports[i].Flows {
				sent += f.Sent
				recv += f.Recv
			}
			if sent != recv {
				t.Fatalf("n=%d node %d: sent %d != recv %d", n, i, sent, recv)
			}
			// Exact butterfly volume: sum over steps of per-step chunk sizes.
			// With uneven splits the chunks are within ±1 value of D/2^k, so
			// check the 4-byte total against 2·D·(n-1)/n with one value of
			// slack per step.
			wantVals := 2 * float64(D) * float64(n-1) / float64(n)
			steps := 0
			for m := n; m > 1; m >>= 1 {
				steps += 2
			}
			if got := float64(sent) / compress.BytesPerValue; math.Abs(got-wantVals) > float64(steps) {
				t.Fatalf("n=%d node %d: shipped %v values, ring cost is %v", n, i, got, wantVals)
			}
		}
	}
}

// TestCollectiveFallbackNonPowerOfTwo: non-power-of-two fleets still get the
// exact sum (via complete all-gather).
func TestCollectiveFallbackNonPowerOfTwo(t *testing.T) {
	const n, D = 3, 11
	outs := make([][]float64, n)
	want := make([]float64, D)
	for i := range outs {
		outs[i] = make([]float64, D)
		for j := range outs[i] {
			outs[i][j] = float64(i + j)
			want[j] += outs[i][j]
		}
	}
	nodes, _ := runPattern(t, engine.Collective{}, outs, denseCodecs(n), core.RoundPlan{})
	for i, node := range nodes {
		for j, v := range node.merged[0].Vals {
			if v != want[j] {
				t.Fatalf("node %d coord %d: %v != %v", i, j, v, want[j])
			}
		}
	}
}

// TestAllGatherSumsDecodedPayloads: the all-gather delivers the sum of
// *decoded* payloads — with a lossy codec the result reflects the
// compression, identically on every node.
func TestAllGatherSumsDecodedPayloads(t *testing.T) {
	const n, D, k = 3, 10, 2
	outs := make([][]float64, n)
	for i := range outs {
		outs[i] = make([]float64, D)
		outs[i][i] = 100 // top-1 per node at a distinct coordinate
		outs[i][9] = 1   // dropped by top-k
		outs[i][i+3] = 50
	}
	codecs := make([]engine.Codec, n)
	for i := range codecs {
		codecs[i] = engine.NewTopK(k, D, false)
	}
	nodes, reports := runPattern(t, engine.AllGather{}, outs, codecs, core.RoundPlan{})
	want := make([]float64, D)
	for i := 0; i < n; i++ {
		want[i] += 100
		want[i+3] += 50
	}
	for i, node := range nodes {
		if len(node.merged) != 1 || node.merged[0].From != -1 {
			t.Fatalf("node %d: merged %d messages", i, len(node.merged))
		}
		for j, v := range node.merged[0].Vals {
			if v != want[j] {
				t.Fatalf("node %d coord %d: %v != %v (lossy sum must include own decoded payload)", i, j, v, want[j])
			}
		}
		// Measured bytes: k entries at 8 bytes to each of n-1 peers.
		var sent int64
		for _, f := range reports[i].Flows {
			sent += f.Sent
		}
		if want := int64((n - 1) * k * (compress.BytesPerValue + compress.BytesPerIndex)); sent != want {
			t.Fatalf("node %d: sent %d bytes, want %d", i, sent, want)
		}
	}
}

// hubNode exercises the hub choreography: workers must see the downlink
// before Compute (pull → train → push).
type hubNode struct {
	vecNode
	server       bool
	mergedBefore bool // worker: Merge arrived before Compute
	computed     bool
}

func (h *hubNode) Compute(ctx engine.RoundContext) (float64, []float64, error) {
	h.computed = true
	if h.server {
		return math.NaN(), h.out, nil
	}
	h.mergedBefore = len(h.merged) > 0
	return 2.5, h.out, nil
}

func (h *hubNode) Merge(ctx engine.RoundContext, msgs []engine.PeerMsg) error {
	return h.vecNode.Merge(ctx, msgs)
}

// TestHubPullTrainPush: the server's payload reaches every chosen worker
// before it computes; the server merges exactly the chosen uploads in rank
// order; unchosen workers are never invoked.
func TestHubPullTrainPush(t *testing.T) {
	const n = 4 // 3 workers + server rank 3
	pat := engine.Hub{Server: 3}
	plan := core.RoundPlan{Round: 2, Active: []bool{true, false, true, true}}
	nodes := make([]*hubNode, n)
	engNodes := make([]engine.Node, n)
	for i := range nodes {
		nodes[i] = &hubNode{vecNode: vecNode{out: []float64{float64(10 + i)}}, server: i == 3}
		engNodes[i] = nodes[i]
	}
	hub := memtransport.NewHub(n)
	reports := make([]engine.NodeReport, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			if plan.Active != nil && !plan.Active[i] {
				errs <- nil
				return
			}
			ctx := engine.RoundContext{Round: plan.Round, Self: i, N: n, Plan: plan}
			rep, err := engine.WorkerRound(engNodes[i], pat, denseCodecs(n), hub, nil, ctx)
			reports[i] = rep
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []int{0, 2} {
		if !nodes[w].mergedBefore {
			t.Fatalf("worker %d computed before receiving the downlink", w)
		}
		if len(nodes[w].merged) != 1 || nodes[w].merged[0].From != 3 {
			t.Fatalf("worker %d merged %v", w, nodes[w].order)
		}
		if got := nodes[w].merged[0].Vals[0]; got != 13 {
			t.Fatalf("worker %d downlink %v, want server payload 13", w, got)
		}
	}
	if nodes[1].computed {
		t.Fatal("unchosen worker 1 was computed")
	}
	if got := nodes[3].order; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("server merged from %v, want [0 2] in rank order", got)
	}
	if got := nodes[3].merged[0].Vals[0]; got != 10 {
		t.Fatalf("server upload from 0 was %v", got)
	}
	if !reports[0].Trained || reports[3].Trained {
		t.Fatalf("trained flags wrong: worker %v, server %v", reports[0].Trained, reports[3].Trained)
	}
}

// TestNeighborhoodDeliversPerSender: ring gossip delivers each neighbor's
// payload attributed to its sender, plus the node's own decoded payload when
// IncludeSelf is set.
func TestNeighborhoodDeliversPerSender(t *testing.T) {
	const n = 5
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	outs := make([][]float64, n)
	for i := range outs {
		outs[i] = []float64{float64(i)}
	}
	for _, includeSelf := range []bool{false, true} {
		pat := engine.NewNeighborhood(adj, includeSelf)
		nodes, reports := runPattern(t, pat, outs, denseCodecs(n), core.RoundPlan{})
		for i, node := range nodes {
			wantMsgs := 2
			if includeSelf {
				wantMsgs = 3
			}
			if len(node.merged) != wantMsgs {
				t.Fatalf("includeSelf=%v node %d: %d messages, want %d", includeSelf, i, len(node.merged), wantMsgs)
			}
			for _, m := range node.merged {
				if got := m.Vals[0]; got != float64(m.From) {
					t.Fatalf("node %d: message from %d carries %v", i, m.From, got)
				}
			}
			var sent, recv int64
			for _, f := range reports[i].Flows {
				sent += f.Sent
				recv += f.Recv
			}
			if sent != 2*compress.BytesPerValue || recv != 2*compress.BytesPerValue {
				t.Fatalf("node %d: sent/recv %d/%d bytes, want %d both ways", i, sent, recv, 2*compress.BytesPerValue)
			}
		}
	}
}

// TestCodecRoundTrips: every codec must decode its own encoding back to the
// expected algorithm-facing vector and report the exact wire size.
func TestCodecRoundTrips(t *testing.T) {
	ctx := engine.RoundContext{Round: 3, Seed: 77}
	x := []float64{0.5, -2, 0, 4, -0.25, 3, 0, -1}

	t.Run("dense", func(t *testing.T) {
		c := engine.Dense{}
		words, _ := c.Encode(ctx, x)
		got, _ := c.Decode(ctx, words)
		for i := range x {
			if got[i] != x[i] {
				t.Fatal("dense round trip")
			}
		}
		if c.WireBytes(words) != int64(len(x)*4) {
			t.Fatalf("dense bytes %d", c.WireBytes(words))
		}
	})

	t.Run("masked", func(t *testing.T) {
		c := engine.NewMasked(2)
		words, _ := c.Encode(ctx, x)
		mask := compress.Mask(ctx.Seed, ctx.Round, len(x), 2)
		if len(words) != compress.CountOnes(mask) {
			t.Fatalf("masked payload %d values, mask has %d", len(words), compress.CountOnes(mask))
		}
		j := 0
		for i, on := range mask {
			if on {
				if words[j] != x[i] {
					t.Fatalf("masked value %d mismatch", j)
				}
				j++
			}
		}
		if c.WireBytes(words) != int64(len(words)*4) {
			t.Fatal("masked bytes")
		}
	})

	t.Run("topk", func(t *testing.T) {
		c := engine.NewTopK(3, len(x), false)
		words, _ := c.Encode(ctx, x)
		got, _ := c.Decode(ctx, words)
		want := []float64{0, -2, 0, 4, 0, 3, 0, 0}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("topk decode[%d] = %v, want %v", i, got[i], want[i])
			}
		}
		if c.WireBytes(words) != 3*8 {
			t.Fatalf("topk bytes %d, want 24", c.WireBytes(words))
		}
	})

	t.Run("topk-error-feedback", func(t *testing.T) {
		c := engine.NewTopK(2, len(x), true)
		if _, err := c.Encode(ctx, x); err != nil {
			t.Fatal(err)
		}
		// Round 1 transmitted 4 and 3 (indices 3, 5); the biggest dropped
		// value (-2 at index 1) must resurface when we encode zeros.
		words, _ := c.Encode(ctx, make([]float64, len(x)))
		got, _ := c.Decode(ctx, words)
		if got[1] != -2 {
			t.Fatalf("error feedback lost residual: decode[1] = %v, want -2", got[1])
		}
	})

	t.Run("qsgd", func(t *testing.T) {
		c := engine.NewQSGDCodec(4, 9)
		words, _ := c.Encode(ctx, x)
		got, _ := c.Decode(ctx, words)
		norm := 0.0
		for _, v := range x {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for i := range x {
			if math.Abs(got[i]-x[i]) > norm/4 {
				t.Fatalf("qsgd decode[%d] = %v too far from %v", i, got[i], x[i])
			}
			if x[i] == 0 && got[i] != 0 {
				t.Fatal("qsgd invented mass at a zero coordinate")
			}
		}
		if c.WireBytes(words) != compress.QuantizedWireBytes(len(x), 4) {
			t.Fatal("qsgd bytes")
		}
	})

	t.Run("randomk", func(t *testing.T) {
		c := engine.NewRandomK(3, 5)
		words, _ := c.Encode(ctx, x)
		dim, idx, vals, err := engine.SparseWords(words)
		if err != nil || dim != len(x) || len(idx) != 3 {
			t.Fatalf("randomk words: dim %d idx %d err %v", dim, len(idx), err)
		}
		for i, ix := range idx {
			if vals[i] != x[int(ix)] {
				t.Fatal("randomk value mismatch")
			}
		}
		if c.WireBytes(words) != 3*8 {
			t.Fatal("randomk bytes")
		}
	})
}
