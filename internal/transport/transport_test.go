package transport

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// pipeConn adapts an in-memory duplex pipe to io.ReadWriteCloser.
type pipeConn struct {
	io.Reader
	io.Writer
}

func (p pipeConn) Close() error { return nil }

func TestConnRoundTripAllTypes(t *testing.T) {
	// net.Pipe gives a synchronous duplex stream, perfect for codec tests.
	a, b := net.Pipe()
	ca := NewConn(a)
	cb := NewConn(b)
	msgs := []any{
		Hello{ListenAddr: "1.2.3.4:5"},
		Welcome{Rank: 3, N: 8, Task: TaskSpec{Arch: "mlp", Classes: 4}, Addrs: []string{"a", "b"}},
		RoundMsg{Round: 7, Seed: 99, Peer: 2},
		RoundEnd{Rank: 1, Round: 7, Loss: 0.5},
		CollectRequest{},
		FinalModel{Params: []float64{1, 2, 3}},
		Done{},
		PeerPayload{Round: 7, From: 1, Vals: []float64{4, 5}},
	}
	done := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i, want := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d: got %+v, want %+v", i, got, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTaskSpecBuildModel(t *testing.T) {
	specs := []TaskSpec{
		{Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4, Hidden: []int{16}, Seed: 1},
		{Arch: "mnist-cnn", C: 1, H: 8, W: 8, Classes: 4, Width: 0.25, Seed: 1},
		{Arch: "cifar-cnn", C: 3, H: 8, W: 8, Classes: 4, Width: 0.25, Seed: 1},
		{Arch: "resnet", C: 1, H: 8, W: 8, Classes: 4, Width: 0.25, Blocks: 1, Seed: 1},
	}
	for _, s := range specs {
		m, err := s.BuildModel()
		if err != nil {
			t.Fatalf("%s: %v", s.Arch, err)
		}
		if m.ParamCount() == 0 {
			t.Fatalf("%s: empty model", s.Arch)
		}
	}
	if _, err := (TaskSpec{Arch: "nope"}).BuildModel(); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestTaskSpecShardsDeterministic(t *testing.T) {
	spec := TaskSpec{Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4, Samples: 200, DataSeed: 5}
	a, va := spec.BuildShards(4)
	b, vb := spec.BuildShards(4)
	if len(a) != 4 || va.Len() != vb.Len() {
		t.Fatal("shape")
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatal("shard sizes differ across workers")
		}
		for j := range a[i].Samples {
			if a[i].Samples[j].Label != b[i].Samples[j].Label {
				t.Fatal("shard content differs — workers would train on different data")
			}
		}
	}
}

func TestEndToEndTCPTraining(t *testing.T) {
	// Full protocol over loopback TCP: 4 workers, small MLP, 12 rounds.
	const n = 4
	spec := TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4,
		Hidden: []int{16}, Samples: 200, DataSeed: 5,
		LR: 0.1, Batch: 8, Compression: 4, LocalSteps: 1,
		Rounds: 12, Seed: 3,
	}
	srv := &CoordinatorServer{
		N:      n,
		Task:   spec,
		BW:     netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip: gossip.Config{BThres: 2, TThres: 4},
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	paramsByRank := make([][]float64, n)
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc := &WorkerClient{}
			p, err := wc.Run(addr, "127.0.0.1:0")
			workerErrs[i] = err
			if err == nil {
				paramsByRank[wc.Rank()] = p
			}
		}(i)
	}
	final, err := srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	// The collected model matches rank 0's final state (Algorithm 1 line 8
	// collects from one worker).
	if len(final) == 0 {
		t.Fatal("empty final model")
	}
	for j := range final {
		if final[j] != paramsByRank[0][j] {
			t.Fatal("collected model differs from rank-0 worker")
		}
	}

	// The trained model must beat chance on the validation split — the TCP
	// path trains for real, it is not a mock.
	model, err := spec.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	model.SetFlatParams(final)
	_, valid := spec.BuildShards(n)
	_, acc := nn.EvaluateDataset(model, valid, 64)
	if acc < 0.4 { // chance is 0.25 on 4 classes
		t.Fatalf("TCP-trained model accuracy %v, want > 0.4", acc)
	}
}

func TestEndToEndNonIID(t *testing.T) {
	const n = 4
	spec := TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4,
		Hidden: []int{12}, Samples: 200, DataSeed: 7, NonIID: true,
		LR: 0.05, Batch: 8, Compression: 2, LocalSteps: 1,
		Rounds: 8, Seed: 11,
	}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:     netsim.RandomUniform(n, 1, 5, rng.New(4)),
		Gossip: gossip.Config{BThres: 0, TThres: 4},
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc := &WorkerClient{}
			_, errs[i] = wc.Run(addr, "127.0.0.1:0")
		}(i)
	}
	if _, err := srv.Run(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}
}

func TestCoordinatorHandlesWorkerDisconnect(t *testing.T) {
	// Failure injection: a worker registers and then dies mid-training. The
	// coordinator must return an error rather than hang on the round
	// barrier.
	const n = 2
	spec := TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4,
		Hidden: []int{8}, Samples: 100, DataSeed: 5,
		LR: 0.1, Batch: 8, Compression: 2, LocalSteps: 1,
		Rounds: 50, Seed: 3,
	}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:     netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip: gossip.Config{TThres: 4},
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The coordinator must be running before any registration completes:
	// it only sends Welcome once all n workers have said Hello.
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Run()
		errCh <- err
	}()
	// Worker A: honest, runs in a goroutine (it will error or stall when
	// its peer dies — either way the coordinator must notice).
	go func() {
		wc := &WorkerClient{}
		_, _ = wc.Run(addr, "127.0.0.1:0")
	}()
	// Worker B: registers, receives the welcome, then vanishes.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc)
	if err := conn.Send(Hello{ListenAddr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // Welcome
		t.Fatal(err)
	}
	conn.Close()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("coordinator succeeded despite a dead worker")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung after worker disconnect")
	}
}

func TestWorkerRejectsBadCoordinatorAddress(t *testing.T) {
	wc := &WorkerClient{}
	if _, err := wc.Run("127.0.0.1:1", "127.0.0.1:0"); err == nil {
		t.Fatal("dial to dead address should fail")
	}
}

func TestCoordinatorDoubleRunFails(t *testing.T) {
	srv := &CoordinatorServer{N: 1}
	srv.started = true
	if _, err := srv.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestConnSendAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{Reader: &buf, Writer: &buf})
	if err := c.Send(Done{}); err != nil {
		t.Fatalf("send to buffer: %v", err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(Done); !ok {
		t.Fatalf("got %T", got)
	}
}
