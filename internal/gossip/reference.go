package gossip

import (
	"fmt"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

// ReferenceGenerator is the retained dense O(N²) formulation of Algorithm 3:
// a full timestamp matrix R, a per-round RC-graph rebuild, and all-pairs
// candidate scans. It exists as the oracle for the sparse Generator — the
// equivalence suite pins that both produce bit-identical matching sequences
// — and for small-N diagnostics where clarity beats asymptotics. Use
// Generator everywhere else.
type ReferenceGenerator struct {
	bw   *netsim.Bandwidth
	cfg  Config
	seed uint64
	// lastUsed is the timestamp matrix R: lastUsed[i][j] is the last round
	// in which edge (i,j) carried an exchange, or -1 if never.
	lastUsed [][]int
	// Pooled connectivity scratch (the only concession to performance).
	seen  []bool
	stack []int
}

// NewReferenceGenerator returns the dense oracle over the environment bw.
// Equal arguments produce the matching sequence of NewGenerator exactly.
func NewReferenceGenerator(bw *netsim.Bandwidth, cfg Config, seed uint64) *ReferenceGenerator {
	if cfg.TThres < 1 {
		panic(fmt.Sprintf("gossip: TThres %d < 1", cfg.TThres))
	}
	n := bw.N
	last := make([][]int, n)
	for i := range last {
		last[i] = make([]int, n)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	return &ReferenceGenerator{bw: bw, cfg: cfg, seed: seed, lastUsed: last, seen: make([]bool, n)}
}

// rcGraph builds the graph of recently-connected edges at round t.
func (g *ReferenceGenerator) rcGraph(t int) *graph.Graph {
	rc := graph.New(g.bw.N)
	for i := 0; i < g.bw.N; i++ {
		for j := i + 1; j < g.bw.N; j++ {
			if g.lastUsed[i][j] > t-g.cfg.TThres {
				rc.AddEdge(i, j)
			}
		}
	}
	return rc
}

// Next runs Algorithm 3 for round t and updates the timestamp matrix R.
func (g *ReferenceGenerator) Next(t int) Round { return g.NextActive(t, nil) }

// NextActive is Next restricted to the currently active workers (nil means
// all active), mirroring Generator.NextActive.
func (g *ReferenceGenerator) NextActive(t int, active []bool) Round {
	n := g.bw.N
	rnd := rng.New(g.seed).Derive(uint64(t) + 0x90551b)
	isActive := func(i int) bool { return active == nil || active[i] }

	rc := g.rcGraph(t)
	// Restrict the connectivity question to active workers: build the
	// induced subgraph's component structure over active vertices only.
	connected := g.activeConnected(rc, active)

	var candidate []graph.WeightedEdge
	forced := false
	if connected {
		// Line 2: E = B* — the bandwidth-filtered graph.
		for _, e := range g.bw.Edges(g.cfg.BThres) {
			if isActive(e.U) && isActive(e.V) {
				candidate = append(candidate, e)
			}
		}
	} else {
		// Lines 4: connect the RC components using any available links.
		forced = true
		comps := rc.Components()
		compOf := make([]int, n)
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		for i := 0; i < n; i++ {
			if !isActive(i) {
				continue
			}
			for j := i + 1; j < n; j++ {
				if isActive(j) && compOf[i] != compOf[j] && g.bw.MBps(i, j) > 0 {
					candidate = append(candidate, graph.WeightedEdge{U: i, V: j, Weight: g.bw.MBps(i, j)})
				}
			}
		}
	}

	// Line 5: bandwidth-preferring maximum match on the candidate edges.
	match := graph.BandwidthAwareMaximumMatching(n, candidate, rnd)

	// Lines 6–8: complete the matching over still-unmatched active workers
	// using the unfiltered bandwidth matrix.
	if match.Size() < n/2 {
		var extra []graph.WeightedEdge
		for i := 0; i < n; i++ {
			if match[i] != -1 || !isActive(i) {
				continue
			}
			for j := i + 1; j < n; j++ {
				if isActive(j) && match[j] == -1 && g.bw.MBps(i, j) > 0 {
					extra = append(extra, graph.WeightedEdge{U: i, V: j, Weight: g.bw.MBps(i, j)})
				}
			}
		}
		second := graph.BandwidthAwareMaximumMatching(n, extra, rnd)
		for v, p := range second {
			if p > v && match[v] == -1 && match[p] == -1 {
				match[v] = p
				match[p] = v
			}
		}
	}

	// Record timestamps for the edges used this round.
	for v, p := range match {
		if p > v {
			g.lastUsed[v][p] = t
			g.lastUsed[p][v] = t
		}
	}

	return Round{Match: match, Forced: forced}
}

// LastUsed exposes R[i][j] (for tests and diagnostics).
func (g *ReferenceGenerator) LastUsed(i, j int) int { return g.lastUsed[i][j] }

// activeConnected reports whether the active-induced subgraph of rc is
// connected (vacuously true for fewer than two active vertices). The seen
// and stack scratch persist on the generator across rounds.
func (g *ReferenceGenerator) activeConnected(rc *graph.Graph, active []bool) bool {
	var start = -1
	count := 0
	for i := 0; i < rc.N; i++ {
		if active == nil || active[i] {
			count++
			if start == -1 {
				start = i
			}
		}
	}
	if count <= 1 {
		return true
	}
	seen := g.seen
	for i := range seen {
		seen[i] = false
	}
	stack := g.stack[:0]
	stack = append(stack, start)
	seen[start] = true
	reached := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range rc.Neighbors(v) {
			if (active == nil || active[w]) && !seen[w] {
				seen[w] = true
				reached++
				stack = append(stack, w)
			}
		}
	}
	g.stack = stack
	return reached == count
}
