// Allocation regression tests for the hot path: every codec's steady-state
// Encode and Decode(Into), and the sharded runtime's full round loop, must
// perform zero heap allocations once their pooled buffers are warm. These
// are hard gates — a refactor that reintroduces a per-round allocation fails
// here before it shows up as a throughput regression in CI's perf smoke.
package engine_test

import (
	"testing"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/obs"
)

// fillDeterministic gives the codecs a non-trivial input (distinct
// magnitudes so top-k selection and quantization do real work).
func fillDeterministic(x []float64, seed uint64) {
	s := seed*2654435761 + 1
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(s>>33)) / float64(1<<31)
	}
}

// TestCodecZeroAlloc locks in the zero-allocation steady state of every
// codec's Encode and, where DecodeInto exists, its decode path. The round
// context is held fixed so the masked codec's payload population count (a
// per-round Bernoulli draw, inherently variable-size) stays put too.
func TestCodecZeroAlloc(t *testing.T) {
	const dim = 512
	vec := make([]float64, dim)
	fillDeterministic(vec, 5)
	ctx := engine.RoundContext{Round: 3, Seed: 99, Self: 0, N: 2}

	cases := []struct {
		name  string
		codec engine.Codec
	}{
		{"dense", engine.Dense{}},
		{"masked", engine.NewMasked(50)},
		{"topk", engine.NewTopK(16, dim, true)},
		{"randomk", engine.NewRandomK(16, 7)},
		{"qsgd", engine.NewQSGDCodec(127, 7)},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/encode", func(t *testing.T) {
			// Warm the codec-owned buffers (and, for error feedback, the
			// lazily allocated residual).
			for i := 0; i < 3; i++ {
				if _, err := tc.codec.Encode(ctx, vec); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := tc.codec.Encode(ctx, vec); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Encode allocates %.1f times per call, want 0", allocs)
			}
		})
		t.Run(tc.name+"/decode", func(t *testing.T) {
			words, err := tc.codec.Encode(ctx, vec)
			if err != nil {
				t.Fatal(err)
			}
			var allocs float64
			if d, ok := tc.codec.(engine.DecoderInto); ok {
				dst, err := d.DecodeInto(nil, ctx, words)
				if err != nil {
					t.Fatal(err)
				}
				allocs = testing.AllocsPerRun(10, func() {
					if dst, err = d.DecodeInto(dst, ctx, words); err != nil {
						t.Fatal(err)
					}
				})
			} else {
				// Identity codecs return the received words; no warmup to do.
				allocs = testing.AllocsPerRun(10, func() {
					if _, err := tc.codec.Decode(ctx, words); err != nil {
						t.Fatal(err)
					}
				})
			}
			if allocs != 0 {
				t.Errorf("steady-state decode allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestShardedRoundZeroAllocWithObs re-runs the round-loop allocation gate
// with the observability sink enabled: the instrumented hot path (round
// and phase timers, codec latency histograms, rendezvous-wait tracking,
// byte counters) must stay allocation-free too — atomics and clock reads
// only.
func TestShardedRoundZeroAllocWithObs(t *testing.T) {
	const (
		n      = 16
		dim    = 256
		rounds = 30
	)
	obs.Enable(obs.New())
	defer obs.Disable()

	peers := make([]int, n)
	for i := range peers {
		peers[i] = i ^ 1
	}
	planner := engine.PlannerFunc(func(tt int) core.RoundPlan {
		return core.RoundPlan{Round: tt, Seed: (uint64(tt) + 1) * 0x9e3779b97f4a7c15, Peer: peers}
	})
	nodes := make([]engine.Node, n)
	codecs := make([]engine.Codec, n)
	for r := range nodes {
		nodes[r] = newAllocNode(dim, uint64(r))
		codecs[r] = engine.NewTopK(8, dim, true)
	}
	eng := engine.New(engine.Options{Nodes: nodes, Codecs: codecs, Pattern: engine.Pairwise{}, Planner: planner, Shards: 2})
	defer eng.Close()
	led := &engine.CountingLedger{}
	led.Reserve(n, rounds)

	round := 0
	step := func() {
		if _, err := eng.Step(round, led); err != nil {
			t.Fatal(err)
		}
		round++
	}
	for i := 0; i < 5; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(10, step)
	if allocs != 0 {
		t.Errorf("instrumented sharded round allocates %.1f times per round, want 0", allocs)
	}
	m := obs.Current()
	if m.Engine.RoundSeconds.Count() == 0 || m.Engine.CodecEncodeSeconds.Count() == 0 {
		t.Fatal("instrumented run recorded no timings — the obs-enabled gate is not exercising the sink")
	}
}

// allocNode is a minimal allocation-free participant: Merge averages into
// the model, Compute shares a copy (the transport borrows payloads until the
// round barrier, so Merge must not write into the returned slice).
type allocNode struct {
	model, out []float64
}

func newAllocNode(dim int, seed uint64) *allocNode {
	n := &allocNode{model: make([]float64, dim), out: make([]float64, dim)}
	fillDeterministic(n.model, seed)
	return n
}

func (n *allocNode) Compute(engine.RoundContext) (float64, []float64, error) {
	for i := range n.model {
		n.model[i] *= 0.999
	}
	copy(n.out, n.model)
	return 0.1, n.out, nil
}

func (n *allocNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		if len(m.Vals) != len(n.model) {
			continue
		}
		for i, v := range m.Vals {
			n.model[i] = 0.5*n.model[i] + 0.5*v
		}
	}
	return nil
}

// TestShardedRoundZeroAlloc drives the sharded runtime's full round loop —
// plan, phases, report aggregation, ledger charge — and requires the steady
// state to allocate nothing, per codec family. The masked codec is exempt by
// design: its payload length is a per-round Bernoulli population count, so a
// round may legitimately grow the payload buffer past any previous high-water
// mark.
func TestShardedRoundZeroAlloc(t *testing.T) {
	const (
		n      = 16
		dim    = 256
		rounds = 30
	)
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i ^ 1
	}
	planner := engine.PlannerFunc(func(tt int) core.RoundPlan {
		return core.RoundPlan{Round: tt, Seed: (uint64(tt) + 1) * 0x9e3779b97f4a7c15, Peer: peers}
	})

	for _, tc := range []struct {
		name  string
		codec func(rank int) engine.Codec
	}{
		{"dense", func(int) engine.Codec { return engine.Dense{} }},
		{"topk", func(int) engine.Codec { return engine.NewTopK(8, dim, true) }},
		{"qsgd", func(rank int) engine.Codec { return engine.NewQSGDCodec(127, uint64(rank)+1) }},
	} {
		for _, shards := range []int{1, 2} {
			t.Run(tc.name+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				nodes := make([]engine.Node, n)
				codecs := make([]engine.Codec, n)
				for r := range nodes {
					nodes[r] = newAllocNode(dim, uint64(r))
					codecs[r] = tc.codec(r)
				}
				eng := engine.New(engine.Options{Nodes: nodes, Codecs: codecs, Pattern: engine.Pairwise{}, Planner: planner, Shards: shards})
				defer eng.Close()
				led := &engine.CountingLedger{}
				led.Reserve(n, rounds)

				round := 0
				step := func() {
					if _, err := eng.Step(round, led); err != nil {
						t.Fatal(err)
					}
					round++
				}
				for i := 0; i < 5; i++ {
					step() // warm the phase states, codecs, and aggregator
				}
				allocs := testing.AllocsPerRun(10, step)
				if allocs != 0 {
					t.Errorf("steady-state sharded round allocates %.1f times per round, want 0", allocs)
				}
			})
		}
	}
}
