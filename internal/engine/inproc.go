package engine

import (
	"fmt"
	"runtime"
	"sync"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine/memtransport"
)

// Options configures an in-process Engine.
type Options struct {
	// Workers are the training peers, indexed by rank.
	Workers []*core.Worker
	// Planner produces the per-round control message (Algorithm 1/3).
	Planner Planner
	// Transport carries the peer payload swaps (nil defaults to an
	// in-process rendezvous hub over the worker count).
	Transport Transport
	// MaxParallel bounds concurrent CPU-heavy work (local SGD, merges);
	// values < 1 default to GOMAXPROCS. Exchanges are not counted against
	// the bound, so any positive value is deadlock-free.
	MaxParallel int
}

// Engine runs the canonical round loop over an in-process worker fleet: one
// long-lived goroutine per worker (spawned once, reused every round — the
// bounded worker pool of the hot path) executing WorkerRound against the
// configured transport. Engine implements Control for its own Driver.
//
// Close releases the pool; a finalizer-style cleanup also releases it when
// an un-Closed Engine becomes unreachable, so dropping an Engine on the
// floor does not leak goroutines.
type Engine struct {
	workers []*core.Worker
	driver  Driver
	gate    Gate
	cmds    []chan core.RoundPlan
	results chan workerResult
	stop    *poolStop
	closed  bool
	// Per-round collection scratch (RunRound is single-threaded).
	losses       []float64
	participated []bool
}

// poolStop closes the pool's command channels exactly once, whether via an
// explicit Close or the unreachability cleanup.
type poolStop struct {
	once sync.Once
	cmds []chan core.RoundPlan
}

func (s *poolStop) shutdown() {
	s.once.Do(func() {
		for _, c := range s.cmds {
			close(c)
		}
	})
}

type workerResult struct {
	rank         int
	loss         float64
	payloadLen   int
	err          error
	participated bool
}

// New builds the engine and spawns its worker pool.
func New(opts Options) *Engine {
	n := len(opts.Workers)
	if n < 1 {
		panic("engine: no workers")
	}
	if opts.Planner == nil {
		panic("engine: nil planner")
	}
	tr := opts.Transport
	if tr == nil {
		tr = memtransport.NewHub(n)
	}
	limit := opts.MaxParallel
	if limit < 1 {
		limit = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:      opts.Workers,
		gate:         NewGate(limit),
		cmds:         make([]chan core.RoundPlan, n),
		results:      make(chan workerResult, n),
		losses:       make([]float64, n),
		participated: make([]bool, n),
	}
	e.driver = Driver{Planner: opts.Planner, Control: e}
	for i := range e.cmds {
		e.cmds[i] = make(chan core.RoundPlan)
		go workerLoop(opts.Workers[i], tr, e.gate, e.cmds[i], e.results)
	}
	// The pool goroutines deliberately do not reference e, so an abandoned
	// Engine is collectable; the cleanup then closes its command channels.
	e.stop = &poolStop{cmds: e.cmds}
	runtime.AddCleanup(e, (*poolStop).shutdown, e.stop)
	return e
}

// workerLoop is one pool member: it serves its worker's rounds until the
// command channel closes.
func workerLoop(w *core.Worker, tr Transport, gate Gate, cmds <-chan core.RoundPlan, results chan<- workerResult) {
	for plan := range cmds {
		if plan.Active != nil && !plan.Active[w.Rank] {
			results <- workerResult{rank: w.Rank}
			continue
		}
		loss, k, err := WorkerRound(w, tr, gate, plan.Round, plan.Seed, plan.Peer[w.Rank])
		results <- workerResult{rank: w.Rank, loss: loss, payloadLen: k, err: err, participated: true}
	}
}

// validatePlan rejects malformed plans before dispatch. The checks matter
// for liveness, not just correctness: a one-sided peer assignment would
// leave one worker blocked in the payload rendezvous with nobody coming,
// deadlocking the round barrier instead of returning an error.
func validatePlan(plan core.RoundPlan, n int) error {
	if len(plan.Peer) != n {
		return fmt.Errorf("engine: plan for %d workers, have %d", len(plan.Peer), n)
	}
	if plan.Active != nil && len(plan.Active) != n {
		return fmt.Errorf("engine: plan active set for %d workers, have %d", len(plan.Active), n)
	}
	for i, p := range plan.Peer {
		if p == -1 {
			continue
		}
		switch {
		case p < 0 || p >= n || p == i:
			return fmt.Errorf("engine: plan assigns worker %d the peer %d", i, p)
		case plan.Peer[p] != i:
			return fmt.Errorf("engine: asymmetric plan: %d→%d but %d→%d", i, p, p, plan.Peer[p])
		case plan.Active != nil && (!plan.Active[i] || !plan.Active[p]):
			return fmt.Errorf("engine: plan matches inactive worker in pair %d-%d", i, p)
		}
	}
	return nil
}

// RunRound implements Control: broadcast the plan to the pool and wait for
// every worker to finish the round.
func (e *Engine) RunRound(plan core.RoundPlan) (float64, int, error) {
	if e.closed {
		return 0, 0, fmt.Errorf("engine: RunRound after Close")
	}
	if err := validatePlan(plan, len(e.workers)); err != nil {
		return 0, 0, err
	}
	for _, c := range e.cmds {
		c <- plan
	}
	// Collect rank-indexed so the loss mean is summed in deterministic
	// order regardless of completion order.
	losses, participated := e.losses, e.participated
	for i := range participated {
		losses[i], participated[i] = 0, false
	}
	payloadLen := 0
	var firstErr error
	for range e.workers {
		r := <-e.results
		losses[r.rank] = r.loss
		participated[r.rank] = r.participated
		if r.payloadLen > payloadLen {
			payloadLen = r.payloadLen
		}
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: worker %d: %w", r.rank, r.err)
		}
	}
	if firstErr != nil {
		return 0, 0, firstErr
	}
	sum, k := 0.0, 0
	for i, l := range losses {
		if participated[i] {
			sum += l
			k++
		}
	}
	if k == 0 {
		return 0, payloadLen, nil
	}
	return sum / float64(k), payloadLen, nil
}

// Step runs one full round — plan, execute, account — against the ledger.
func (e *Engine) Step(t int, led Ledger) (RoundStats, error) {
	return e.driver.Round(t, led)
}

// Workers exposes the fleet (rank-indexed).
func (e *Engine) Workers() []*core.Worker { return e.workers }

// Close shuts down the worker pool. The engine must not be stepped after
// Close. Close is idempotent.
func (e *Engine) Close() {
	e.closed = true
	e.stop.shutdown()
}
