//go:build linux

package profiling

import "testing"

func TestParseVmHWM(t *testing.T) {
	status := []byte("Name:\tx\nVmPeak:\t  999 kB\nVmHWM:\t  1536 kB\nVmRSS:\t 12 kB\n")
	if got := parseVmHWM(status); got != 1536*1024 {
		t.Fatalf("parseVmHWM = %d, want %d", got, 1536*1024)
	}
	if got := parseVmHWM([]byte("Name:\tx\n")); got != 0 {
		t.Fatalf("parseVmHWM without VmHWM = %d, want 0", got)
	}
}
