package transport

import (
	"fmt"
	"net"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
)

// WorkerClient runs Algorithm 2 over TCP: it registers with the
// coordinator, trains locally, and exchanges masked payloads with its
// per-round peer over direct worker-to-worker connections.
type WorkerClient struct {
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)

	rank   int
	n      int
	worker *core.Worker
	coord  *Conn
	peerLn net.Listener
	addrs  []string
}

// Rank returns the coordinator-assigned rank (valid after Run registers).
func (w *WorkerClient) Rank() int { return w.rank }

func (w *WorkerClient) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run connects to the coordinator at coordAddr, participates in the full
// training, and returns the worker's final parameters. peerAddr is the
// address to listen on for peer exchanges ("127.0.0.1:0" for an ephemeral
// port).
func (w *WorkerClient) Run(coordAddr, peerAddr string) ([]float64, error) {
	var err error
	w.peerLn, err = net.Listen("tcp", peerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: worker peer listen: %w", err)
	}
	defer w.peerLn.Close()

	nc, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial coordinator: %w", err)
	}
	w.coord = NewConn(nc)
	defer w.coord.Close()

	if err := w.coord.Send(Hello{ListenAddr: w.peerLn.Addr().String()}); err != nil {
		return nil, err
	}
	msg, err := w.coord.Recv()
	if err != nil {
		return nil, err
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		return nil, fmt.Errorf("transport: expected Welcome, got %T", msg)
	}
	w.rank = welcome.Rank
	w.n = welcome.N
	w.addrs = welcome.Addrs
	spec := welcome.Task

	model, err := spec.BuildModel()
	if err != nil {
		return nil, err
	}
	shards, _ := spec.BuildShards(w.n)
	cfg := core.Config{
		Workers:     w.n,
		Compression: spec.Compression,
		LR:          spec.LR,
		Batch:       spec.Batch,
		LocalSteps:  spec.LocalSteps,
		Gossip:      gossip.Config{BThres: 0, TThres: 10},
		Seed:        spec.Seed,
	}
	w.worker = core.NewWorker(w.rank, model, shards[w.rank], cfg)
	w.logf("worker %d: ready (%d params, %d local samples)", w.rank, model.ParamCount(), shards[w.rank].Len())

	for {
		msg, err := w.coord.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d: %w", w.rank, err)
		}
		switch m := msg.(type) {
		case MeasureRequest:
			rep := w.measurePeers(m)
			if err := w.coord.Send(rep); err != nil {
				return nil, err
			}
		case RoundMsg:
			loss, payloadLen, err := engine.WorkerRound(w.worker, peerDialer{w}, nil, m.Round, m.Seed, m.Peer)
			if err != nil {
				return nil, err
			}
			if err := w.coord.Send(RoundEnd{Rank: w.rank, Round: m.Round, Loss: loss, PayloadLen: payloadLen}); err != nil {
				return nil, err
			}
		case CollectRequest:
			if err := w.coord.Send(FinalModel{Params: w.worker.Params()}); err != nil {
				return nil, err
			}
		case Done:
			w.logf("worker %d: done", w.rank)
			return w.worker.Params(), nil
		default:
			return nil, fmt.Errorf("transport: worker %d: unexpected %T", w.rank, msg)
		}
	}
}

// peerDialer adapts the worker's peer connections to engine.Transport, so
// the canonical engine.WorkerRound drives the TCP deployment: the round
// logic itself lives in internal/engine, and only the payload swap below is
// transport-specific.
type peerDialer struct{ w *WorkerClient }

// Exchange implements engine.Transport.
func (d peerDialer) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	return d.w.exchange(round, peer, payload)
}

// exchange swaps masked payloads with the peer: the lower rank dials, the
// higher rank accepts. The coordinator's round barrier guarantees at most
// one exchange is in flight per worker.
func (w *WorkerClient) exchange(round, peer int, payload []float64) ([]float64, error) {
	var conn *Conn
	if w.rank < peer {
		nc, err := net.Dial("tcp", w.addrs[peer])
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d dial peer %d: %w", w.rank, peer, err)
		}
		conn = NewConn(nc)
	} else {
		nc, err := w.peerLn.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d accept peer %d: %w", w.rank, peer, err)
		}
		conn = NewConn(nc)
	}
	defer conn.Close()

	if err := conn.Send(PeerPayload{Round: round, From: w.rank, Vals: payload}); err != nil {
		return nil, err
	}
	msg, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	pp, ok := msg.(PeerPayload)
	if !ok {
		return nil, fmt.Errorf("transport: worker %d: peer sent %T", w.rank, msg)
	}
	if pp.Round != round || pp.From != peer {
		return nil, fmt.Errorf("transport: worker %d: stale payload round=%d from=%d, want round=%d from=%d",
			w.rank, pp.Round, pp.From, round, peer)
	}
	return pp.Vals, nil
}
