package fleettrace

import (
	"strings"
	"testing"
)

// sample is a small well-formed trace exercising both columns: node 0 has a
// bandwidth series, node 1 leaves and rejoins, node 2 does both at once.
const sample = `round,node,bw,event
# node 0: bandwidth decays then recovers
0,0,1.0,
4,0,0.25,
8,0,1.0,
# node 1: offline for rounds [2, 5)
2,1,,leave
5,1,,join
# node 2: slows down as it leaves, recovers on rejoin
3,2,0.5,leave
6,2,1.0,join
`

func mustParse(t *testing.T, data string) *Trace {
	t.Helper()
	tr, err := Parse([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseSample(t *testing.T) {
	tr := mustParse(t, sample)
	if tr.Nodes != 3 {
		t.Fatalf("Nodes = %d, want 3", tr.Nodes)
	}
	if tr.MaxRound != 8 {
		t.Fatalf("MaxRound = %d, want 8", tr.MaxRound)
	}
	if !tr.HasEvents() {
		t.Fatal("HasEvents = false, want true")
	}
}

func TestHoldSemantics(t *testing.T) {
	tr := mustParse(t, sample)
	rp, err := NewReplay(tr, 4, InterpHold)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 1.0, 3: 1.0, 4: 0.25, 7: 0.25, 8: 1.0, 100: 1.0}
	for round, mult := range want {
		got := rp.Multipliers(round, nil)
		if got[0] != mult {
			t.Errorf("hold: node 0 round %d = %v, want %v", round, got[0], mult)
		}
		// Node 3 is outside the trace: always 1.
		if got[3] != 1 {
			t.Errorf("hold: untraced node 3 round %d = %v, want 1", round, got[3])
		}
	}
}

func TestLinearSemantics(t *testing.T) {
	tr := mustParse(t, sample)
	rp, err := NewReplay(tr, 4, InterpLinear)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: 1.0 @0 → 0.25 @4 → 1.0 @8; held flat outside [0, 8].
	want := map[int]float64{0: 1.0, 2: 0.625, 4: 0.25, 6: 0.625, 8: 1.0, 9: 1.0}
	for round, mult := range want {
		got := rp.Multipliers(round, nil)
		if got[0] != mult {
			t.Errorf("linear: node 0 round %d = %v, want %v", round, got[0], mult)
		}
	}
	// The first sample holds backwards: a series starting at round 4 is flat
	// before it under both modes.
	late := mustParse(t, "round,node,bw,event\n4,0,0.5,\n8,0,1.0,\n")
	rp, err = NewReplay(late, 1, InterpLinear)
	if err != nil {
		t.Fatal(err)
	}
	if got := rp.Multipliers(0, nil); got[0] != 0.5 {
		t.Errorf("backward hold: round 0 = %v, want 0.5", got[0])
	}
}

func TestActiveSemantics(t *testing.T) {
	tr := mustParse(t, sample)
	rp, err := NewReplay(tr, 4, InterpHold)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 is absent for rounds [2, 5); node 2 for [3, 6).
	type row struct {
		round int
		want  [4]bool
	}
	for _, c := range []row{
		{0, [4]bool{true, true, true, true}},
		{2, [4]bool{true, false, true, true}},
		{3, [4]bool{true, false, false, true}},
		{5, [4]bool{true, true, false, true}},
		{6, [4]bool{true, true, true, true}},
		{99, [4]bool{true, true, true, true}},
	} {
		got := rp.Active(c.round, nil)
		for i, w := range c.want {
			if got[i] != w {
				t.Errorf("round %d node %d active = %v, want %v", c.round, i, got[i], w)
			}
		}
	}
}

func TestQueryIsPureFunctionOfRound(t *testing.T) {
	tr := mustParse(t, sample)
	rp, err := NewReplay(tr, 4, InterpLinear)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order and repeated queries must agree with in-order ones:
	// the replay holds no cursor.
	first := append([]float64(nil), rp.Multipliers(5, nil)...)
	rp.Multipliers(9, nil)
	rp.Multipliers(0, nil)
	again := rp.Multipliers(5, nil)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("node %d: round-5 multiplier changed between queries: %v then %v", i, first[i], again[i])
		}
	}
}

func TestReplayRejects(t *testing.T) {
	tr := mustParse(t, sample)
	if _, err := NewReplay(tr, 2, InterpHold); err == nil || !strings.Contains(err.Error(), "node 2") {
		t.Fatalf("fleet smaller than trace: err = %v", err)
	}
	// Both traced nodes of a 2-node fleet offline at once → under the
	// 2-active floor.
	dead := mustParse(t, "round,node,bw,event\n1,0,,leave\n1,1,,leave\n")
	if _, err := NewReplay(dead, 2, InterpHold); err == nil || !strings.Contains(err.Error(), "active") {
		t.Fatalf("under-2-active trace: err = %v", err)
	}
	// The same events over a larger fleet are fine.
	if _, err := NewReplay(dead, 4, InterpHold); err != nil {
		t.Fatalf("4-node fleet with 2 absences: %v", err)
	}
}

func TestParseInterp(t *testing.T) {
	for name, want := range map[string]Interp{"": InterpHold, "hold": InterpHold, "linear": InterpLinear} {
		got, err := ParseInterp(name)
		if err != nil || got != want {
			t.Errorf("ParseInterp(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseInterp("cubic"); err == nil {
		t.Error("ParseInterp(cubic) accepted")
	}
}

// TestParseRejects enumerates the parser's validation errors: every
// malformed input names its line and the reason, and none of them panic.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"empty", "", "missing"},
		{"comment only", "# nothing here\n", "missing"},
		{"bad header", "time,node,bw,event\n0,0,1.0,\n", "header"},
		{"header only", "round,node,bw,event\n", "no data rows"},
		{"too few fields", "round,node,bw,event\n0,0,1.0\n", "3 fields"},
		{"too many fields", "round,node,bw,event\n0,0,1.0,,x\n", "5 fields"},
		{"bad round", "round,node,bw,event\nzero,0,1.0,\n", "round"},
		{"negative round", "round,node,bw,event\n-1,0,1.0,\n", "round"},
		{"bad node", "round,node,bw,event\n0,first,1.0,\n", "node"},
		{"negative node", "round,node,bw,event\n0,-2,1.0,\n", "node"},
		{"empty row", "round,node,bw,event\n0,0,,\n", "neither"},
		{"bad bw", "round,node,bw,event\n0,0,fast,\n", "not a number"},
		{"NaN bw", "round,node,bw,event\n0,0,NaN,\n", "positive and finite"},
		{"Inf bw", "round,node,bw,event\n0,0,+Inf,\n", "positive and finite"},
		{"negative bw", "round,node,bw,event\n0,0,-0.5,\n", "positive and finite"},
		{"zero bw", "round,node,bw,event\n0,0,0,\n", "positive and finite"},
		{"unknown event", "round,node,bw,event\n0,0,,crash\n", "unknown event"},
		{"out of order", "round,node,bw,event\n5,0,1.0,\n3,0,0.5,\n", "out of order"},
		{"duplicate round", "round,node,bw,event\n5,0,1.0,\n5,0,0.5,\n", "out of order"},
		{"double leave", "round,node,bw,event\n1,0,,leave\n2,0,,leave\n", "already absent"},
		{"join first", "round,node,bw,event\n1,0,,join\n", "never left"},
		{"truncated row", "round,node,bw,event\n0,0,1.0,\n1,0", "fields"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.data))
			if err == nil {
				t.Fatalf("accepted %q", c.data)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// FuzzParse hammers the parser with mutated inputs: any outcome is fine as
// long as it never panics, and accepted traces must satisfy the invariants
// Replay relies on (consistent Nodes/MaxRound, queryable at any round).
func FuzzParse(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("round,node,bw,event\n0,0,1.0,\n"))
	f.Add([]byte("round,node,bw,event\n2,1,,leave\n5,1,,join\n"))
	f.Add([]byte("round,node,bw,event\n0,0,NaN,\n"))
	f.Add([]byte("round,node,bw,event\n5,0,1.0,\n3,0,0.5,\n"))
	f.Add([]byte("round,node,bw,event\n0,0,1e308,\n1,0,1e-308,\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(data)
		if err != nil {
			return
		}
		if tr.Nodes < 1 || tr.MaxRound < 0 {
			t.Fatalf("accepted trace with Nodes=%d MaxRound=%d", tr.Nodes, tr.MaxRound)
		}
		rp, err := NewReplay(tr, tr.Nodes, InterpLinear)
		if err != nil {
			return // valid trace, but its events dip below the active floor
		}
		for _, round := range []int{0, tr.MaxRound / 2, tr.MaxRound, tr.MaxRound + 7} {
			mult := rp.Multipliers(round, nil)
			for i, m := range mult {
				if !(m > 0) {
					t.Fatalf("round %d node %d multiplier %v from accepted trace", round, i, m)
				}
			}
			rp.Active(round, nil)
		}
	})
}
