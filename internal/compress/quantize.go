package compress

import (
	"fmt"
	"math"

	"sapspsgd/internal/rng"
)

// QSGD implements the stochastic uniform quantizer of Alistarh et al.
// (QSGD), one of the quantization baselines the paper's related-work section
// positions sparsification against. A vector is encoded as its l2 norm plus
// per-coordinate sign and an s-level stochastically rounded magnitude.
//
// Wire cost: 4 bytes for the norm + ceil(log2(2s+1)) bits per coordinate —
// at most a 32/bits compression of the dense payload, far weaker than the
// 100× the mask sparsifier reaches (the paper's argument for
// sparsification).
type QSGD struct {
	// Levels is s, the number of positive quantization levels (e.g. 1 for
	// ternary, 127 for 8-bit).
	Levels int
	rnd    *rng.Source
}

// NewQSGD builds a quantizer with the given level count and seed.
func NewQSGD(levels int, seed uint64) *QSGD {
	if levels < 1 {
		panic(fmt.Sprintf("compress: QSGD levels %d", levels))
	}
	return &QSGD{Levels: levels, rnd: rng.New(seed)}
}

// RNGState captures the quantizer's stochastic-rounding stream position —
// part of a rank's round-boundary checkpoint.
func (q *QSGD) RNGState() rng.State { return q.rnd.State() }

// SetRNGState restores a position captured by RNGState.
func (q *QSGD) SetRNGState(st rng.State) { q.rnd.SetState(st) }

// Quantized is a QSGD-encoded vector.
type Quantized struct {
	Norm float64
	// Codes holds signed level indices in [-Levels, +Levels].
	Codes  []int16
	Levels int
}

// Quantize encodes x with stochastic rounding; the expectation of Decode
// equals x (unbiasedness, verified by the tests).
func (q *QSGD) Quantize(x []float64) Quantized {
	out := Quantized{Codes: make([]int16, len(x)), Levels: q.Levels}
	norm := l2(x)
	out.Norm = norm
	if norm == 0 {
		return out
	}
	s := float64(q.Levels)
	for i, v := range x {
		out.Codes[i] = int16(q.code(v, norm, s))
	}
	return out
}

// AppendQuantized encodes x directly into the codec wire layout
// [norm, code...] appended to dst, reusing dst's storage — the zero-copy
// twin of Quantize for the engine's QSGD codec hot path. It draws the
// stochastic-rounding RNG in exactly Quantize's order (one draw per
// coordinate when the norm is nonzero, none otherwise) and produces
// bit-identical codes, so the two entry points are interchangeable without
// perturbing a run's trajectory.
func (q *QSGD) AppendQuantized(dst []float64, x []float64) []float64 {
	dst = dst[:0]
	if cap(dst) < len(x)+1 {
		dst = make([]float64, 0, len(x)+1)
	}
	norm := l2(x)
	dst = append(dst, norm)
	dst = dst[:len(x)+1]
	out := dst[1:]
	if norm == 0 {
		for i := range out {
			out[i] = 0
		}
		return dst
	}
	s := float64(q.Levels)
	for i, v := range x {
		out[i] = q.code(v, norm, s)
	}
	return dst
}

// code is the shared per-coordinate stochastic-rounding kernel. The
// expression order (|v| / norm * s, floor, compare) is load-bearing: hoisting
// s/norm out of the division would reassociate the scaling and change low
// bits. Both data-dependent selections are simple conditional assignments
// (compiled to conditional moves, not branches). The sign uses the v < 0
// comparison — not Copysign — so a -0.0 input yields +0.0, exactly as the
// historical int16 encoding did.
func (q *QSGD) code(v, norm, s float64) float64 {
	a := math.Abs(v) / norm * s // in [0, s]
	lo := math.Floor(a)
	add := 0.0
	if q.rnd.Float64() < a-lo {
		add = 1
	}
	c := lo + add
	if v < 0 {
		c = -c
	}
	return c
}

// l2 is the Euclidean norm with a single sequential accumulator (the sum
// order is part of the bit-reproducibility contract).
func l2(x []float64) float64 {
	norm := 0.0
	for _, v := range x {
		norm += v * v
	}
	return math.Sqrt(norm)
}

// Decode reconstructs the (unbiased) estimate of the original vector.
func (qv Quantized) Decode() []float64 {
	out := make([]float64, len(qv.Codes))
	if qv.Norm == 0 {
		return out
	}
	s := float64(qv.Levels)
	for i, c := range qv.Codes {
		out[i] = qv.Norm * float64(c) / s
	}
	return out
}

// WireBytes returns the exact encoded size: 4 bytes of norm plus the
// bit-packed codes.
func (qv Quantized) WireBytes() int64 { return QuantizedWireBytes(len(qv.Codes), qv.Levels) }

// QuantizedWireBytes is the exact encoded size of n coordinates quantized to
// 2*levels+1 signed levels: 4 bytes of norm plus bit-packed codes.
func QuantizedWireBytes(n, levels int) int64 {
	bitsPerCode := bitsFor(2*levels + 1)
	return 4 + int64((n*bitsPerCode+7)/8)
}

func bitsFor(values int) int {
	bits := 0
	for v := values - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		return 1
	}
	return bits
}
