package core

import (
	"testing"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/nn"
)

func TestLocalStepsMultiple(t *testing.T) {
	cfg := testConfig(2)
	cfg.LocalSteps = 4
	tr, _ := dataset.TinyTask(100, 3, 5)
	shards := dataset.PartitionIID(tr, 2, 1)
	w := NewWorker(0, nn.NewMLP(tr.Dim(), []int{8}, 3, 1), shards[0], cfg)
	before := w.Loader.Epochs
	// 4 local steps of batch 8 over a 50-sample shard: about 2/3 of an
	// epoch per round; after 3 rounds the loader must have cycled.
	for round := 0; round < 3; round++ {
		loss := w.LocalSGD()
		if loss <= 0 {
			t.Fatalf("round %d loss %v", round, loss)
		}
	}
	if w.Loader.Epochs <= before {
		t.Fatal("multiple local steps did not advance the loader")
	}
}

func TestRoundMaskChangesEachRound(t *testing.T) {
	cfg := testConfig(2)
	cfg.Compression = 2
	tr, _ := dataset.TinyTask(60, 3, 5)
	shards := dataset.PartitionIID(tr, 2, 1)
	w := NewWorker(0, nn.NewMLP(tr.Dim(), []int{8}, 3, 1), shards[0], cfg)
	a := append([]bool(nil), w.RoundMask(9, 1)...)
	b := w.RoundMask(9, 2)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < len(a)/4 {
		t.Fatalf("masks for consecutive rounds too similar: %d/%d differ", diff, len(a))
	}
}

func TestPayloadLenMatchesMaskDensity(t *testing.T) {
	cfg := testConfig(2)
	cfg.Compression = 4
	tr, _ := dataset.TinyTask(60, 3, 5)
	shards := dataset.PartitionIID(tr, 2, 1)
	w := NewWorker(0, nn.NewMLP(tr.Dim(), []int{16}, 3, 1), shards[0], cfg)
	w.RoundMask(3, 1)
	payload := w.MaskedPayload()
	if len(payload) != w.PayloadLen() {
		t.Fatalf("payload %d vs PayloadLen %d", len(payload), w.PayloadLen())
	}
	n := w.Model.ParamCount()
	want := float64(n) / 4
	if float64(len(payload)) < want/2 || float64(len(payload)) > want*2 {
		t.Fatalf("payload %d far from N/c = %v", len(payload), want)
	}
}
