// Package compress implements the model/gradient compression operators used
// by SAPS-PSGD and by the baselines it is compared against:
//
//   - shared-seed random masking (Eq. (2)–(3) of the paper) — the SAPS
//     sparsifier, whose mask is regenerated from a broadcast seed so only the
//     surviving values cross the wire;
//   - Top-k sparsification with error feedback (TopK-PSGD, DGC-style);
//   - random-k sparsification (S-FedAvg's random structured updates, and the
//     difference compressor for DCD-PSGD).
//
// Every operator reports its exact wire size so the traffic ledgers in the
// experiment harness are byte-accurate.
package compress

import (
	"fmt"

	"sapspsgd/internal/rng"
)

// Wire format constants. The paper's models are float32 and indices fit in
// 32 bits, so a transmitted value costs 4 bytes and an explicit index costs
// another 4. Computation stays float64; only accounting uses these.
const (
	BytesPerValue = 4
	BytesPerIndex = 4
)

// DenseBytes returns the wire size of a dense n-parameter model.
func DenseBytes(n int) int64 { return int64(n) * BytesPerValue }

// MaskedBytes returns the wire size of k surviving values under a shared
// mask: no indices are transmitted because both sides regenerate the mask
// from the shared seed.
func MaskedBytes(k int) int64 { return int64(k) * BytesPerValue }

// SparseBytes returns the wire size of k (index, value) pairs for
// compressors whose support must be transmitted explicitly (Top-k, random-k
// without a shared seed).
func SparseBytes(k int) int64 { return int64(k) * (BytesPerValue + BytesPerIndex) }

// Mask generates the round-t Bernoulli(1/c) mask of length n from the shared
// seed, exactly as every worker does in Algorithm 2 line 6.
func Mask(seed uint64, round, n int, c float64) []bool {
	return MaskInto(nil, seed, round, n, c)
}

// MaskInto is Mask writing into dst, allocating only when dst does not have
// length n — the per-worker scratch variant used on the round hot path.
func MaskInto(dst []bool, seed uint64, round, n int, c float64) []bool {
	if c < 1 {
		panic(fmt.Sprintf("compress: compression ratio %v < 1", c))
	}
	return rng.MaskSeedInto(dst, seed, round, n, 1/c)
}

// CountOnes returns the number of true entries of mask.
func CountOnes(mask []bool) int {
	k := 0
	for _, b := range mask {
		if b {
			k++
		}
	}
	return k
}

// Extract packs x's masked coordinates into a fresh slice, in index order.
// This is the payload a SAPS worker sends: values only.
func Extract(x []float64, mask []bool) []float64 {
	return ExtractInto(make([]float64, 0, len(x)/8), x, mask)
}

// ExtractInto is Extract appending into dst[:0]; after the backing array has
// grown to the steady-state payload size it allocates nothing. The returned
// slice aliases dst's storage, so callers that reuse a scratch buffer must
// not overwrite it while a previous payload is still being read.
func ExtractInto(dst, x []float64, mask []bool) []float64 {
	dst = dst[:0]
	for i, on := range mask {
		if on {
			dst = append(dst, x[i])
		}
	}
	return dst
}

// Scatter writes packed values back into the masked coordinates of dst and
// returns the number of values consumed. It panics if vals is shorter than
// the mask's population count.
func Scatter(dst []float64, mask []bool, vals []float64) int {
	j := 0
	for i, on := range mask {
		if on {
			dst[i] = vals[j]
			j++
		}
	}
	return j
}

// SparseVec is an explicit-support sparse vector in a dense space of
// dimension N.
type SparseVec struct {
	N   int
	Idx []int32
	Val []float64
}

// WireBytes returns the exact transmission size of the sparse vector.
func (s SparseVec) WireBytes() int64 { return SparseBytes(len(s.Idx)) }

// Dense expands the sparse vector to a dense slice.
func (s SparseVec) Dense() []float64 {
	out := make([]float64, s.N)
	for i, idx := range s.Idx {
		out[idx] = s.Val[i]
	}
	return out
}

// AddTo accumulates scale * s into dst.
func (s SparseVec) AddTo(dst []float64, scale float64) {
	for i, idx := range s.Idx {
		dst[idx] += scale * s.Val[i]
	}
}
