// Command sapsbench regenerates the paper's tables and figures from the
// CPU-scaled reproduction and prints them as markdown tables or CSV series.
//
// Usage:
//
//	sapsbench -exp table1            # Table I  (communication cost model)
//	sapsbench -exp table2            # Table II (experimental settings)
//	sapsbench -exp fig1              # Fig. 1   (14-city bandwidth matrix)
//	sapsbench -exp fig3 -workload mnist -n 16 -rounds 120
//	sapsbench -exp fig4 -workload mnist
//	sapsbench -exp fig5 -env 14 -iters 400
//	sapsbench -exp fig6 -workload mnist
//	sapsbench -exp table3 -workload all
//	sapsbench -exp table4 -workload all
//	sapsbench -exp all               # everything at default scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/experiments"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/metrics"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/profiling"
	"sapspsgd/internal/trace"
	"sapspsgd/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sapsbench:", err)
		os.Exit(1)
	}
}

var (
	flagExp      = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig1|fig3|fig4|fig5|fig6|all")
	flagWorkload = flag.String("workload", "mnist", "workload: mnist|cifar|resnet|all")
	flagN        = flag.Int("n", 16, "number of workers")
	flagRounds   = flag.Int("rounds", 0, "override communication rounds (0 = workload default)")
	flagIters    = flag.Int("iters", 400, "iterations for fig5")
	flagEnv      = flag.Int("env", 14, "fig5 environment: 14 (cities) or 32 (random)")
	flagSeed     = flag.Uint64("seed", 7, "random seed")
	flagCSV      = flag.Bool("csv", false, "emit tables as CSV instead of markdown")
	prof         profiling.Config
)

func run() error {
	prof.AddFlags(nil)
	flag.Parse()
	return prof.Run(dispatch)
}

func dispatch() error {
	switch *flagExp {
	case "table1":
		return table1()
	case "table2":
		return table2()
	case "fig1":
		return fig1()
	case "fig3", "fig4", "fig6", "table3", "table4":
		return convergence(*flagExp)
	case "fig5":
		return fig5()
	case "spectral":
		return spectralSweep()
	case "ablation":
		return ablations()
	case "trace":
		return traceRun()
	case "all":
		for _, e := range []func() error{table1, table2, fig1, fig5, spectralSweep} {
			if err := e(); err != nil {
				return err
			}
		}
		return convergence("all")
	default:
		return fmt.Errorf("unknown experiment %q", *flagExp)
	}
}

func emitTable(t *metrics.Table) {
	if *flagCSV {
		t.WriteCSV(os.Stdout)
	} else {
		t.WriteMarkdown(os.Stdout)
	}
	fmt.Println()
}

func table1() error {
	p := experiments.NewCostParams(32, 6653628, 100, 1000, 2)
	emitTable(experiments.Table1(p))
	return nil
}

func table2() error {
	emitTable(experiments.Table2())
	return nil
}

func fig1() error {
	emitTable(experiments.Fig1Table())
	return nil
}

func spectralSweep() error {
	bw := netsim.FourteenCities()
	emitTable(experiments.SpectralSweep(bw, 2, 1.0/100, []int{2, 5, 10, 20, 40}, 200, *flagSeed))
	return nil
}

// traceRun trains SAPS on the 14-city environment with a round recorder
// attached and dumps the per-round event log as CSV (who matched whom, link
// bandwidths, forced reconnections, payload sizes, loss).
func traceRun() error {
	w := selectedWorkloads()[0]
	rounds := *flagRounds
	if rounds <= 0 {
		rounds = 100
	}
	w = w.WithRounds(rounds)
	bw := netsim.FourteenCities()
	const n = 14
	tr, _ := w.Dataset()
	fc := algos.FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return w.Factory(*flagSeed) },
		Shards:  dataset.PartitionIID(tr, n, *flagSeed),
		LR:      w.LR,
		Batch:   w.Batch,
		Seed:    *flagSeed,
	}
	cfg := core.Config{
		Workers: n, Compression: 100, LR: w.LR, Batch: w.Batch, LocalSteps: 1,
		Gossip: gossip.Config{BThres: 4, TThres: 10}, Seed: *flagSeed,
	}
	alg := algos.NewSAPS(fc, bw, cfg)
	alg.Trace = trace.NewRecorder()
	led := netsim.NewLedger(bw)
	for t := 0; t < rounds; t++ {
		alg.Step(t, led)
	}
	fmt.Printf("# SAPS round trace: %d rounds, mean matched %.3f MB/s, %.1f%% forced rounds\n",
		alg.Trace.Len(), alg.Trace.MeanMatchedBandwidth(), 100*alg.Trace.ForcedFraction())
	return alg.Trace.WriteCSV(os.Stdout)
}

func ablations() error {
	w := selectedWorkloads()[0]
	if *flagRounds > 0 {
		w = w.WithRounds(*flagRounds)
	}
	cs, err := experiments.CompressionSweep(w, *flagN, []float64{4, 20, 100, 400}, *flagSeed)
	if err != nil {
		return err
	}
	emitTable(cs)
	ps, err := experiments.PeerSelectionAblation(w, *flagN, *flagSeed)
	if err != nil {
		return err
	}
	emitTable(ps)
	ls, err := experiments.LocalStepsSweep(w, *flagN, []int{1, 2, 4, 8}, *flagSeed)
	if err != nil {
		return err
	}
	emitTable(ls)
	if *flagN&(*flagN-1) == 0 {
		ta, err := experiments.TopologyAblation(w, *flagN, *flagSeed)
		if err != nil {
			return err
		}
		emitTable(ta)
	}
	return nil
}

func fig5() error {
	var series map[string][]float64
	if *flagEnv == 32 {
		series = experiments.Fig5ThirtyTwo(*flagIters, *flagSeed)
	} else {
		series = experiments.Fig5Fourteen(*flagIters, *flagSeed)
	}
	fmt.Printf("# Fig. 5: bandwidth utilization (%d-worker environment)\n", *flagEnv)
	experiments.WriteFig5(os.Stdout, series)
	fmt.Printf("# means: SAPS=%.3f Random=%.3f Ring=%.3f MB/s\n\n",
		experiments.MeanOf(series["SAPS-PSGD"]),
		experiments.MeanOf(series["RandomChoose"]),
		experiments.MeanOf(series["D-PSGD"]))
	return nil
}

func selectedWorkloads() []experiments.Workload {
	switch *flagWorkload {
	case "mnist":
		return []experiments.Workload{experiments.MNISTWorkload()}
	case "cifar":
		return []experiments.Workload{experiments.CIFARWorkload()}
	case "resnet":
		return []experiments.Workload{experiments.ResNetWorkload()}
	default:
		return experiments.Workloads()
	}
}

func convergence(which string) error {
	for _, w := range selectedWorkloads() {
		if *flagRounds > 0 {
			w = w.WithRounds(*flagRounds)
		}
		fmt.Printf("# workload %s (%s), %d workers, %d rounds\n", w.Name, w.PaperName, *flagN, w.Rounds)
		start := time.Now()
		suite := experiments.ConvergenceSuite{Workload: w, N: *flagN, Seed: *flagSeed}
		results, err := suite.Run()
		if err != nil {
			return err
		}
		fmt.Printf("# suite completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		printConvergence(which, w, results)
	}
	return nil
}

func printConvergence(which string, w experiments.Workload, results []trainer.Result) {
	if which == "fig3" || which == "all" {
		experiments.WriteFig3(os.Stdout, results)
		fmt.Println()
	}
	if which == "fig4" || which == "all" {
		experiments.WriteFig4(os.Stdout, results)
		fmt.Println()
	}
	if which == "fig6" || which == "all" {
		experiments.WriteFig6(os.Stdout, results)
		fmt.Println()
	}
	if which == "table3" || which == "all" {
		emitTable(experiments.Table3(w.Name, results))
	}
	if which == "table4" || which == "all" {
		emitTable(experiments.Table4(w.Name, w.TargetAcc, results))
	}
	emitTable(experiments.TrafficSummary(results))
}
