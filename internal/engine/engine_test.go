// Engine tests: backend equivalence (the same SAPS config must produce
// bit-identical model trajectories and identical per-round traffic totals
// over the in-memory, simulated-bandwidth, and TCP backends) plus regression
// coverage for the concurrent exchange pool, the rendezvous hub, the gate,
// and the counting ledger. Run with -race to exercise the pool's memory
// ordering (the CI workflow does).
package engine_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/engine/memtransport"
	"sapspsgd/internal/engine/simtransport"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/transport"
)

// testSpec is the shared tiny workload: every backend builds models, shards,
// and hyperparameters from this one spec, exactly as TCP workers do from the
// coordinator's broadcast.
func testSpec(rounds int) transport.TaskSpec {
	return transport.TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4, Hidden: []int{12},
		Samples: 256, DataSeed: 11,
		LR: 0.05, Batch: 8, Compression: 8, LocalSteps: 1,
		Rounds: rounds, Seed: 5,
	}
}

func coreConfig(spec transport.TaskSpec, n int) core.Config {
	return core.Config{
		Workers:     n,
		Compression: spec.Compression,
		LR:          spec.LR,
		Batch:       spec.Batch,
		LocalSteps:  spec.LocalSteps,
		Gossip:      gossip.Config{BThres: 0, TThres: 10},
		Seed:        spec.Seed,
	}
}

func testEnv(n int) *netsim.Bandwidth { return netsim.RandomUniform(n, 1, 5, rng.New(2)) }

// buildWorkers assembles rank-indexed core workers from the spec, the same
// way a TCP WorkerClient does after Welcome.
func buildWorkers(t *testing.T, spec transport.TaskSpec, n int) []*core.Worker {
	t.Helper()
	cfg := coreConfig(spec, n)
	shards, _ := spec.BuildShards(n)
	ws := make([]*core.Worker, n)
	for i := 0; i < n; i++ {
		model, err := spec.BuildModel()
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = core.NewWorker(i, model, shards[i], cfg)
	}
	return ws
}

// inProcRun is one engine training over an in-process backend: it returns
// the per-round traffic totals and the per-round snapshot of every worker's
// parameters.
func inProcRun(t *testing.T, spec transport.TaskSpec, n int, inner engine.Ledger, tr engine.Transport) (roundBytes []int64, trajectory [][][]float64) {
	t.Helper()
	workers := buildWorkers(t, spec, n)
	eng := engine.New(engine.Options{
		Workers:   workers,
		Planner:   core.NewCoordinator(testEnv(n), coreConfig(spec, n)),
		Transport: tr,
	})
	defer eng.Close()
	led := &engine.CountingLedger{Inner: inner}
	for round := 0; round < spec.Rounds; round++ {
		if _, err := eng.Step(round, led); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		snap := make([][]float64, n)
		for i, w := range workers {
			snap[i] = w.Params()
		}
		trajectory = append(trajectory, snap)
	}
	return led.RoundBytes(), trajectory
}

// tcpRun trains the same spec over real loopback TCP (coordinator server +
// n worker clients) and returns the per-round traffic totals and the final
// rank-0 model.
func tcpRun(t *testing.T, spec transport.TaskSpec, n int) (roundBytes []int64, final []float64) {
	t.Helper()
	led := &engine.CountingLedger{}
	srv := &transport.CoordinatorServer{
		N: n, Task: spec,
		BW:     testEnv(n),
		Gossip: coreConfig(spec, n).Gossip,
		Ledger: led,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := &transport.WorkerClient{}
			if _, err := wc.Run(addr, "127.0.0.1:0"); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	final, err = srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return led.RoundBytes(), final
}

// TestBackendEquivalence is the three-backend contract: identical model
// trajectories (bit-for-bit) and identical per-round traffic totals over
// memtransport, simtransport, and TCP.
func TestBackendEquivalence(t *testing.T) {
	const n, rounds = 4, 8
	spec := testSpec(rounds)

	memBytes, memTraj := inProcRun(t, spec, n, nil, memtransport.NewHub(n))

	simHub, simLed := simtransport.New(testEnv(n))
	simBytes, simTraj := inProcRun(t, spec, n, simLed, simHub)

	tcpBytes, tcpFinal := tcpRun(t, spec, n)

	// Per-round traffic totals must agree across all three backends.
	for name, got := range map[string][]int64{"simtransport": simBytes, "tcptransport": tcpBytes} {
		if len(got) != len(memBytes) {
			t.Fatalf("%s: %d rounds accounted, want %d", name, len(got), len(memBytes))
		}
		for r := range memBytes {
			if got[r] != memBytes[r] {
				t.Errorf("%s round %d: %d bytes, memtransport %d", name, r, got[r], memBytes[r])
			}
		}
	}
	// The simulated backend also accrues bandwidth-modelled time; the byte
	// totals must still match the bandwidth-free accounting exactly.
	if simLed.TotalTime() <= 0 {
		t.Error("simtransport: no simulated communication time accrued")
	}
	if !simLed.ConservationOK() {
		t.Error("simtransport: ledger conservation violated")
	}

	// mem vs sim: bit-identical trajectory, every worker, every round.
	for r := range memTraj {
		for w := range memTraj[r] {
			for j, v := range memTraj[r][w] {
				if simTraj[r][w][j] != v {
					t.Fatalf("round %d worker %d param %d: sim %v != mem %v", r, w, j, simTraj[r][w][j], v)
				}
			}
		}
	}
	// tcp: the collected rank-0 model must equal the in-memory rank-0 model
	// bit-for-bit (gob preserves float64 exactly).
	memFinal := memTraj[rounds-1][0]
	if len(tcpFinal) != len(memFinal) {
		t.Fatalf("tcp final model %d params, want %d", len(tcpFinal), len(memFinal))
	}
	for j, v := range memFinal {
		if tcpFinal[j] != v {
			t.Fatalf("tcp final param %d: %v != %v", j, tcpFinal[j], v)
		}
	}
}

// TestEngineConcurrentExchangePool floods a bounded pool with many more
// workers than compute slots: the gate must bound CPU concurrency while the
// rendezvous exchanges proceed deadlock-free. Run with -race this is the
// pool's memory-ordering regression test.
func TestEngineConcurrentExchangePool(t *testing.T) {
	const n, rounds = 16, 6
	spec := testSpec(rounds)
	workers := buildWorkers(t, spec, n)
	eng := engine.New(engine.Options{
		Workers:     workers,
		Planner:     core.NewCoordinator(testEnv(n), coreConfig(spec, n)),
		MaxParallel: 2, // far fewer slots than workers: exchanges must not hold them
	})
	defer eng.Close()
	led := &engine.CountingLedger{}
	for round := 0; round < rounds; round++ {
		stats, err := eng.Step(round, led)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.PayloadLen == 0 {
			t.Fatalf("round %d: no payload exchanged", round)
		}
	}
	if led.TotalBytes() == 0 {
		t.Fatal("no traffic accounted")
	}
}

// TestEngineHonorsActiveSet checks the dynamic-membership path: inactive
// workers neither train nor exchange, and the loss averages over the
// participants only.
func TestEngineHonorsActiveSet(t *testing.T) {
	const n = 4
	spec := testSpec(1)
	workers := buildWorkers(t, spec, n)
	before := workers[3].Params()
	planner := engine.PlannerFunc(func(round int) core.RoundPlan {
		return core.RoundPlan{
			Round:  round,
			Seed:   99,
			Peer:   []int{1, 0, -1, -1},
			Active: []bool{true, true, true, false},
		}
	})
	eng := engine.New(engine.Options{Workers: workers, Planner: planner})
	defer eng.Close()
	led := &engine.CountingLedger{}
	stats, err := eng.Step(0, led)
	if err != nil {
		t.Fatal(err)
	}
	after := workers[3].Params()
	for j := range before {
		if after[j] != before[j] {
			t.Fatalf("inactive worker 3 trained: param %d changed", j)
		}
	}
	if stats.Loss <= 0 {
		t.Fatalf("loss %v, want > 0 over active workers", stats.Loss)
	}
	sent, recv := led.WorkerBytes(3)
	if sent != 0 || recv != 0 {
		t.Fatalf("inactive worker 3 accounted %d/%d bytes", sent, recv)
	}
}

// TestHubRendezvous hammers the rendezvous from many concurrent pairs over
// many rounds; with -race this validates the payload hand-over ordering.
func TestHubRendezvous(t *testing.T) {
	const n, rounds = 8, 50
	hub := memtransport.NewHub(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			peer := self ^ 1 // pair (0,1), (2,3), ...
			for r := 0; r < rounds; r++ {
				payload := []float64{float64(self), float64(r)}
				got, err := hub.Exchange(r, self, peer, payload)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != float64(peer) || got[1] != float64(r) {
					errs <- fmt.Errorf("worker %d round %d: got payload %v", self, r, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHubRejectsBadPeer(t *testing.T) {
	hub := memtransport.NewHub(2)
	if _, err := hub.Exchange(0, 0, 0, nil); err == nil {
		t.Error("self-exchange accepted")
	}
	if _, err := hub.Exchange(0, 0, 5, nil); err == nil {
		t.Error("out-of-range peer accepted")
	}
}

// TestGateBoundsConcurrency verifies the pool's semaphore actually caps
// concurrent holders.
func TestGateBoundsConcurrency(t *testing.T) {
	const limit, workers = 3, 20
	gate := engine.NewGate(limit)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				gate.Acquire()
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				cur.Add(-1)
				gate.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("gate admitted %d concurrent holders, limit %d", p, limit)
	}
}

// TestEngineRejectsMalformedPlan: asymmetric or out-of-range matchings must
// error before dispatch — a one-sided assignment would otherwise leave a
// worker blocked in the rendezvous and deadlock the barrier.
func TestEngineRejectsMalformedPlan(t *testing.T) {
	const n = 4
	spec := testSpec(1)
	workers := buildWorkers(t, spec, n)
	bad := []core.RoundPlan{
		{Round: 0, Seed: 1, Peer: []int{1, 0}},                                                  // wrong length
		{Round: 0, Seed: 1, Peer: []int{1, 0, 3, -1}},                                           // one-sided: 2→3 but 3→-1
		{Round: 0, Seed: 1, Peer: []int{0, -1, -1, -1}},                                         // self-exchange
		{Round: 0, Seed: 1, Peer: []int{7, -1, -1, -1}},                                         // out of range
		{Round: 0, Seed: 1, Peer: []int{1, 0, -1, -1}, Active: []bool{false, true, true, true}}, // matched inactive
	}
	for i, plan := range bad {
		p := plan
		eng := engine.New(engine.Options{Workers: workers, Planner: engine.PlannerFunc(func(int) core.RoundPlan { return p })})
		_, err := eng.Step(0, &engine.CountingLedger{})
		eng.Close()
		if err == nil {
			t.Errorf("malformed plan %d accepted: %+v", i, p)
		}
	}
}

func TestCountingLedger(t *testing.T) {
	led := &engine.CountingLedger{}
	led.Exchange(0, 1, 100, 50)
	led.EndRound()
	led.Exchange(2, 3, 10, 10)
	led.Exchange(0, 2, 5, 5)
	led.EndRound()
	if got := led.RoundBytes(); len(got) != 2 || got[0] != 150 || got[1] != 30 {
		t.Fatalf("round bytes %v, want [150 30]", got)
	}
	if led.TotalBytes() != 180 {
		t.Fatalf("total %d, want 180", led.TotalBytes())
	}
	sent, recv := led.WorkerBytes(0)
	if sent != 105 || recv != 55 {
		t.Fatalf("worker 0 bytes %d/%d, want 105/55", sent, recv)
	}
	if led.Rounds() != 2 {
		t.Fatalf("rounds %d, want 2", led.Rounds())
	}
}

// TestDriverAccountsMatchedPairsOnly: the driver's central accounting must
// charge exactly one bidirectional transfer per matched pair.
func TestDriverAccountsMatchedPairsOnly(t *testing.T) {
	const n = 4
	spec := testSpec(1)
	workers := buildWorkers(t, spec, n)
	planner := engine.PlannerFunc(func(round int) core.RoundPlan {
		return core.RoundPlan{Round: round, Seed: 7, Peer: []int{1, 0, -1, -1}}
	})
	eng := engine.New(engine.Options{Workers: workers, Planner: planner})
	defer eng.Close()
	led := &engine.CountingLedger{}
	stats, err := eng.Step(0, led)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(stats.PayloadLen) * 4 * 2 // both directions, 4 wire bytes/value
	if led.TotalBytes() != want {
		t.Fatalf("total %d bytes, want %d (one pair, payload %d)", led.TotalBytes(), want, stats.PayloadLen)
	}
	for _, w := range []int{2, 3} {
		if s, r := led.WorkerBytes(w); s != 0 || r != 0 {
			t.Fatalf("unmatched worker %d accounted %d/%d bytes", w, s, r)
		}
	}
}
