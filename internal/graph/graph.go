// Package graph provides the graph algorithms behind SAPS-PSGD's adaptive
// peer selection (Algorithm 3 of the paper): connectivity tests, connected
// components, and maximum matching in general graphs via Edmonds' blossom
// algorithm — the paper's stated matching primitive ("we exploit the blossom
// algorithm [33] to solve the problem of maximum match in a general graph").
package graph

import "fmt"

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int
	// has is the duplicate-detection index behind AddEdge/HasEdge. Graphs
	// built by NewFromEdges leave it nil (no per-vertex map allocations)
	// and fall back to adjacency scans.
	has []map[int]bool
}

// New returns an empty undirected graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{N: n, adj: make([][]int, n), has: make([]map[int]bool, n)}
	for i := range g.has {
		g.has[i] = make(map[int]bool)
	}
	return g
}

// NewFromEdges builds the graph in two passes over a duplicate-free edge
// list (unordered pairs must be unique; self-loops and out-of-range
// endpoints panic). All adjacency lists share one backing array, so the
// whole graph costs two allocations regardless of N — the constructor for
// the large-N planner path. Neighbors appear in exactly the order repeated
// AddEdge calls would have produced: edge-list order.
func NewFromEdges(n int, edges []WeightedEdge) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	deg := make([]int, n+1)
	for _, e := range edges {
		if e.U == e.V || e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			panic(fmt.Sprintf("graph: bad edge (%d,%d) over %d vertices", e.U, e.V, n))
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	backing := make([]int, 2*len(edges))
	g := &Graph{N: n, adj: make([][]int, n)}
	for v := 0; v < n; v++ {
		g.adj[v] = backing[deg[v]:deg[v]:deg[v+1]]
	}
	for _, e := range edges {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	return g
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate edges
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return
	}
	if g.hasEdge(u, v) {
		return
	}
	if g.has != nil {
		g.has[u][v] = true
		g.has[v][u] = true
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return false
	}
	return g.hasEdge(u, v)
}

func (g *Graph) hasEdge(u, v int) bool {
	if g.has != nil {
		return g.has[u][v]
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Edges returns all undirected edges (u < v).
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.EdgeCount())
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// FromAdjacency builds a graph from a boolean adjacency matrix, reading the
// upper triangle.
func FromAdjacency(a [][]bool) *Graph {
	g := New(len(a))
	for i := range a {
		for j := i + 1; j < len(a[i]); j++ {
			if a[i][j] || a[j][i] {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// IsConnected reports whether the graph is connected (vacuously true for
// n <= 1). This is the IfConnected check of Algorithm 3 applied to the
// recently-connected edge set.
func (g *Graph) IsConnected() bool {
	if g.N <= 1 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

// Components returns the connected components as vertex lists, in order of
// smallest contained vertex (FindConnectedSubgraph in Algorithm 3).
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N)
	var comps [][]int
	for s := 0; s < g.N; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
