package dataset

import (
	"math"
	"testing"
)

// cover checks that shards partition the parent exactly: every sample index
// appears in exactly one shard. Samples are identified by their backing
// array, which partitioning aliases rather than copies.
func cover(t *testing.T, d *Dataset, shards []*Dataset) {
	t.Helper()
	seen := map[*float64]int{}
	total := 0
	for w, s := range shards {
		for k := range s.Samples {
			p := &s.Samples[k].X[0]
			if prev, dup := seen[p]; dup {
				t.Fatalf("sample in both shard %d and shard %d", prev, w)
			}
			seen[p] = w
			total++
		}
	}
	if total != len(d.Samples) {
		t.Fatalf("shards hold %d samples, parent has %d", total, len(d.Samples))
	}
	for i := range d.Samples {
		if _, ok := seen[&d.Samples[i].X[0]]; !ok {
			t.Fatalf("parent sample %d missing from every shard", i)
		}
	}
}

func TestPartitionDirichletCoversAndSkews(t *testing.T) {
	tr, _ := TinyTask(400, 4, 7)
	shards := PartitionDirichlet(tr, 8, 0.2, 10, 21)
	cover(t, tr, shards)
	for w, s := range shards {
		if s.Len() < 10 {
			t.Fatalf("shard %d has %d samples, floor is 10", w, s.Len())
		}
	}
	// With alpha = 0.2 the label marginals must be visibly non-uniform:
	// some shard's most-common class should dominate it well beyond the
	// parent's 1/classes share.
	maxShare := 0.0
	for _, s := range shards {
		h := LabelHistogram(s)
		top := 0
		for _, c := range h {
			if c > top {
				top = c
			}
		}
		if share := float64(top) / float64(s.Len()); share > maxShare {
			maxShare = share
		}
	}
	if maxShare < 0.5 {
		t.Fatalf("alpha=0.2 label skew too weak: max single-class share %v", maxShare)
	}
}

func TestPartitionQuantitySkewCoversAndSkews(t *testing.T) {
	tr, _ := TinyTask(400, 4, 7)
	shards := PartitionQuantitySkew(tr, 8, 0.3, 5, 33)
	cover(t, tr, shards)
	minLen, maxLen := math.MaxInt, 0
	for _, s := range shards {
		if s.Len() < minLen {
			minLen = s.Len()
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if minLen < 5 {
		t.Fatalf("floor violated: smallest shard has %d", minLen)
	}
	if maxLen < 2*minLen {
		t.Fatalf("alpha=0.3 quantity skew too weak: sizes in [%d, %d]", minLen, maxLen)
	}
}

// TestNonIIDPartitionsDeterministic pins seed-determinism: the same seed
// reproduces the exact shard contents, a different seed does not.
func TestNonIIDPartitionsDeterministic(t *testing.T) {
	tr, _ := TinyTask(300, 4, 7)
	kinds := map[string]func(seed uint64) []*Dataset{
		"dirichlet": func(seed uint64) []*Dataset { return PartitionDirichlet(tr, 6, 0.4, 2, seed) },
		"qskew":     func(seed uint64) []*Dataset { return PartitionQuantitySkew(tr, 6, 0.4, 2, seed) },
	}
	for name, part := range kinds {
		a, b, other := part(5), part(5), part(6)
		same := true
		for w := range a {
			if len(a[w].Samples) != len(b[w].Samples) {
				t.Fatalf("%s: seed-5 reruns disagree on shard %d size", name, w)
			}
			for k := range a[w].Samples {
				if &a[w].Samples[k].X[0] != &b[w].Samples[k].X[0] {
					t.Fatalf("%s: seed-5 reruns disagree on shard %d sample %d", name, w, k)
				}
			}
			if len(a[w].Samples) != len(other[w].Samples) {
				same = false
			}
		}
		if same {
			sameContents := true
			for w := range a {
				for k := range a[w].Samples {
					if &a[w].Samples[k].X[0] != &other[w].Samples[k].X[0] {
						sameContents = false
					}
				}
			}
			if sameContents {
				t.Fatalf("%s: seeds 5 and 6 produced identical partitions", name)
			}
		}
	}
}

func TestPartitionFloorRebalances(t *testing.T) {
	tr, _ := TinyTask(64, 4, 7)
	// Extreme skew over many workers: without the floor some shards would
	// round to zero, which would panic the loader.
	shards := PartitionDirichlet(tr, 16, 0.05, 0, 9)
	cover(t, tr, shards)
	for w, s := range shards {
		if s.Len() < 1 {
			t.Fatalf("shard %d is empty", w)
		}
	}
}

func TestNonIIDPartitionPanics(t *testing.T) {
	tr, _ := TinyTask(10, 2, 23)
	for _, bad := range []func(){
		func() { PartitionDirichlet(tr, 0, 1, 1, 1) },
		func() { PartitionDirichlet(tr, 4, 0, 1, 1) },
		func() { PartitionDirichlet(tr, 4, 1, 5, 1) }, // 4×5 > 10 samples
		func() { PartitionQuantitySkew(tr, 0, 1, 1, 1) },
		func() { PartitionQuantitySkew(tr, 4, -1, 1, 1) },
		func() { PartitionQuantitySkew(tr, 11, 1, 1, 1) }, // floor 1 × 11 > 10
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}
