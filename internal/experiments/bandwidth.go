package experiments

import (
	"io"

	"sapspsgd/internal/gossip"
	"sapspsgd/internal/metrics"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

// BandwidthUtilization reproduces Fig. 5: the per-iteration mean matched
// bandwidth of SAPS-PSGD's adaptive peer selection versus a uniformly random
// maximum matching and the static ring used by D-PSGD/DCD-PSGD. The ring
// series is a constant; for random environments the paper averages it over
// 5000 independently drawn bandwidth matrices, reproduced by ringAverage.
type BandwidthUtilization struct {
	BW    *netsim.Bandwidth
	Iters int
	Seed  uint64
	// Cfg defaults to BThres = 60th-percentile bandwidth, TThres = 10.
	Cfg gossip.Config
	// RingSamples is the number of random matrices to average for the ring
	// baseline (0 means use the environment's own ring bandwidth).
	RingSamples int
	// RingLo, RingHi bound the random matrices' bandwidths (used only when
	// RingSamples > 0).
	RingLo, RingHi float64
}

// Run returns the per-iteration bandwidth series, keyed by algorithm name.
// D-PSGD and DCD-PSGD share the ring series (identical topology).
func (b BandwidthUtilization) Run() map[string][]float64 {
	cfg := b.Cfg
	if cfg.TThres == 0 {
		cfg = gossip.Config{BThres: bandwidthThreshold(b.BW), TThres: 10}
	}
	gen := gossip.NewGenerator(b.BW, cfg, b.Seed)
	rnd := rng.New(b.Seed).Derive(0xf15)

	ring := gossip.RingMeanBandwidth(b.BW)
	if b.RingSamples > 0 {
		ring = b.ringAverage()
	}

	out := map[string][]float64{
		"SAPS-PSGD":    make([]float64, b.Iters),
		"RandomChoose": make([]float64, b.Iters),
		"D-PSGD":       make([]float64, b.Iters),
		"DCD-PSGD":     make([]float64, b.Iters),
	}
	for t := 0; t < b.Iters; t++ {
		out["SAPS-PSGD"][t] = gossip.MeanMatchedBandwidth(gen.Next(t).Match, b.BW)
		out["RandomChoose"][t] = gossip.MeanMatchedBandwidth(gossip.RandomMatching(b.BW.N, rnd), b.BW)
		out["D-PSGD"][t] = ring
		out["DCD-PSGD"][t] = ring
	}
	return out
}

// ringAverage reproduces the paper's 5000-matrix average for the ring
// topology in random environments: draw fresh uniform bandwidth matrices and
// take the mean ring bandwidth along the canonical order 1→2→…→n→1.
func (b BandwidthUtilization) ringAverage() float64 {
	r := rng.New(b.Seed).Derive(0x5000)
	total := 0.0
	for s := 0; s < b.RingSamples; s++ {
		env := netsim.RandomUniform(b.BW.N, b.RingLo, b.RingHi, r.Derive(uint64(s)))
		total += gossip.RingMeanBandwidth(env)
	}
	return total / float64(b.RingSamples)
}

// WriteFig5 renders the bandwidth-utilization series as CSV.
func WriteFig5(w io.Writer, series map[string][]float64) {
	names := []string{"D-PSGD", "DCD-PSGD", "SAPS-PSGD", "RandomChoose"}
	metrics.Series(w, names, series)
}

// Fig5Fourteen runs the 14-city environment of Fig. 5(a).
func Fig5Fourteen(iters int, seed uint64) map[string][]float64 {
	return BandwidthUtilization{BW: netsim.FourteenCities(), Iters: iters, Seed: seed}.Run()
}

// Fig5ThirtyTwo runs the 32-worker random environment of Fig. 5(b)
// (bandwidths uniform in (0, 5] MB/s, ring averaged over 5000 matrices).
func Fig5ThirtyTwo(iters int, seed uint64) map[string][]float64 {
	return BandwidthUtilization{
		BW:          Env32(seed),
		Iters:       iters,
		Seed:        seed,
		RingSamples: 5000,
		RingLo:      0,
		RingHi:      5,
	}.Run()
}

// MeanOf returns the mean of a series (summary statistic reported in
// EXPERIMENTS.md).
func MeanOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total / float64(len(s))
}
