// Sharded-runtime determinism: every baseline, executed on the engine's
// phased sharded runtime at any shard count, must be bit-identical in model
// trajectory and byte-identical in ledger traffic to the serial reference
// (the goroutine-per-node pool, RuntimeShards == 0). Run with -race to
// exercise the shard executors' memory ordering (the CI workflow does).
package algos

import (
	"fmt"
	"runtime"
	"testing"

	"sapspsgd/internal/engine"
)

// shardSweep is the shard counts of the determinism sweep: fully serial,
// mid-parallel, and machine-width.
func shardSweep() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// runTrajectory steps an algorithm for rounds against a counting ledger and
// returns the per-round flattened parameter snapshots of every model.
func runTrajectory(alg Algorithm, rounds int) (traj [][][]float64, led *engine.CountingLedger) {
	led = &engine.CountingLedger{}
	for r := 0; r < rounds; r++ {
		alg.Step(r, led)
		snap := make([][]float64, len(alg.Models()))
		for m, model := range alg.Models() {
			snap[m] = model.FlatParams(nil)
		}
		traj = append(traj, snap)
	}
	return traj, led
}

// assertSameRun fails unless the sharded run reproduced the serial reference
// bit for bit: parameters at every round, and the ledger's per-round and
// per-worker byte totals.
func assertSameRun(t *testing.T, label string, n int,
	refTraj, gotTraj [][][]float64, refLed, gotLed *engine.CountingLedger) {
	t.Helper()
	for r := range refTraj {
		if len(refTraj[r]) != len(gotTraj[r]) {
			t.Fatalf("%s round %d: %d vs %d models", label, r, len(refTraj[r]), len(gotTraj[r]))
		}
		for m := range refTraj[r] {
			for j := range refTraj[r][m] {
				if refTraj[r][m][j] != gotTraj[r][m][j] {
					t.Fatalf("%s round %d model %d param %d: serial %v != sharded %v",
						label, r, m, j, refTraj[r][m][j], gotTraj[r][m][j])
				}
			}
		}
	}
	refRounds, gotRounds := refLed.RoundBytes(), gotLed.RoundBytes()
	for r := range refRounds {
		if refRounds[r] != gotRounds[r] {
			t.Fatalf("%s round %d bytes: serial %d != sharded %d", label, r, refRounds[r], gotRounds[r])
		}
	}
	// Rank n covers the hub server account of centralized algorithms
	// (serverless algorithms have zeros there on both sides).
	for i := 0; i <= n; i++ {
		rs, rr := refLed.WorkerBytes(i)
		gs, gr := gotLed.WorkerBytes(i)
		if rs != gs || rr != gr {
			t.Fatalf("%s worker %d bytes: serial %d/%d != sharded %d/%d", label, i, rs, rr, gs, gr)
		}
	}
}

// TestShardedEquivalenceAllBaselines sweeps every baseline across shard
// counts 1, 4, and NumCPU and checks each against the serial pool.
func TestShardedEquivalenceAllBaselines(t *testing.T) {
	const n, rounds = 8, 4
	for _, b := range allBaselineBuilders(n) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			fcRef, bw, _ := testSetup(t, n)
			refTraj, refLed := runTrajectory(b.build(fcRef, bw), rounds)
			for _, shards := range shardSweep() {
				fc, _, _ := testSetup(t, n)
				fc.RuntimeShards = shards
				gotTraj, gotLed := runTrajectory(b.build(fc, bw), rounds)
				assertSameRun(t, fmt.Sprintf("%s/shards=%d", b.name, shards), n,
					refTraj, gotTraj, refLed, gotLed)
			}
		})
	}
}

// TestShardedEquivalenceNonPowerOfTwoCollective pins the collective
// pattern's all-gather fallback (fleet sizes that are not powers of two)
// onto the sharded runtime.
func TestShardedEquivalenceNonPowerOfTwoCollective(t *testing.T) {
	const n, rounds = 6, 4
	fcRef, _, _ := testSetup(t, n)
	refTraj, refLed := runTrajectory(NewPSGD(fcRef), rounds)
	for _, shards := range shardSweep() {
		fc, _, _ := testSetup(t, n)
		fc.RuntimeShards = shards
		gotTraj, gotLed := runTrajectory(NewPSGD(fc), rounds)
		assertSameRun(t, fmt.Sprintf("psgd-n6/shards=%d", shards), n, refTraj, gotTraj, refLed, gotLed)
	}
}

// TestShardedEquivalenceChurn drives dynamic membership (inactive ranks
// skipped by the shard executors) through the sweep: SAPS under leave/rejoin
// churn must stay bit-identical to the serial pool at every shard count.
func TestShardedEquivalenceChurn(t *testing.T) {
	const n, rounds = 8, 6
	churn := ChurnModel{LeaveProb: 0.3, JoinProb: 0.5, MinActive: 2}
	fcRef, bw, _ := testSetup(t, n)
	refTraj, refLed := runTrajectory(NewSAPSChurn(fcRef, bw, sapsConfig(n), churn), rounds)
	for _, shards := range shardSweep() {
		fc, _, _ := testSetup(t, n)
		fc.RuntimeShards = shards
		gotTraj, gotLed := runTrajectory(NewSAPSChurn(fc, bw, sapsConfig(n), churn), rounds)
		assertSameRun(t, fmt.Sprintf("saps-churn/shards=%d", shards), n, refTraj, gotTraj, refLed, gotLed)
	}
}

// TestShardedShardCountClamp: more shards than ranks must degrade to
// rank-count shards, not spawn idle executors or crash.
func TestShardedShardCountClamp(t *testing.T) {
	const n, rounds = 4, 3
	fcRef, bw, _ := testSetup(t, n)
	refTraj, refLed := runTrajectory(NewSAPS(fcRef, bw, sapsConfig(n)), rounds)
	fc, _, _ := testSetup(t, n)
	fc.RuntimeShards = 64
	gotTraj, gotLed := runTrajectory(NewSAPS(fc, bw, sapsConfig(n)), rounds)
	assertSameRun(t, "saps/shards=64>n", n, refTraj, gotTraj, refLed, gotLed)
}
