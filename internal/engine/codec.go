package engine

import (
	"fmt"
	"math"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/rng"
)

// Codec encodes a node's round payload (a model, gradient, or delta vector)
// into wire words and decodes a peer's words back into the vector the
// algorithm consumes. Every Transport carries []float64 words; WireBytes
// reports the exact number of bytes the encoding would occupy on a physical
// wire (float32 values, 32-bit indices, bit-packed quantization codes), which
// is what the Ledger is charged with. The []float64 carrier may hold a small
// header (dimension, entry count) that a production framing layer would carry
// implicitly; headers are never charged.
//
// Contracts:
//
//   - Encode may keep per-sender state (error feedback residuals, RNG
//     streams) and may reuse an internal buffer: the returned words stay
//     valid until the next Encode call on the same codec. Patterns that
//     encode more than once per round must copy before handing words to a
//     Transport.
//   - Decode and WireBytes must be stateless and safe for concurrent use:
//     receivers decode with the *sender's* codec instance (from the shared
//     per-rank codec table), potentially from many goroutines at once.
type Codec interface {
	// Name identifies the codec family ("dense", "topk", ...).
	Name() string
	// Encode packs dense into wire words.
	Encode(ctx RoundContext, dense []float64) ([]float64, error)
	// Decode unpacks words into the algorithm-facing vector. The exact
	// semantics are codec-specific and documented per codec: dense and
	// masked codecs return the packed values unchanged; sparse and
	// quantized codecs expand to a dense vector.
	Decode(ctx RoundContext, words []float64) ([]float64, error)
	// WireBytes is the exact physical wire size of an encoded payload.
	WireBytes(words []float64) int64
}

// DecoderInto is the optional Codec extension the sharded runtime's hot path
// uses to decode without allocating: DecodeInto behaves exactly like Decode
// but expands into dst (grown as needed — the returned slice may alias
// dst's storage), so a caller that reuses its scratch buffer decodes
// allocation-free in steady state. Like Decode it must be stateless and safe
// for concurrent use: receivers decode with the sender's codec instance, and
// only dst is caller-owned. Codecs whose Decode is the identity (dense,
// masked) deliberately do not implement it — returning the received words
// unchanged is already allocation-free.
type DecoderInto interface {
	DecodeInto(dst []float64, ctx RoundContext, words []float64) ([]float64, error)
}

// decodeWith dispatches to DecodeInto when the codec offers it (reusing dst)
// and falls back to the allocating Decode otherwise.
func decodeWith(c Codec, dst []float64, ctx RoundContext, words []float64) ([]float64, error) {
	if d, ok := c.(DecoderInto); ok {
		return d.DecodeInto(dst, ctx, words)
	}
	return c.Decode(ctx, words)
}

// ---------------------------------------------------------------------------
// Dense

// Dense is the identity codec: every value crosses the wire as a float32.
// Decode returns the received words unchanged.
type Dense struct{}

// Name implements Codec.
func (Dense) Name() string { return "dense" }

// Encode implements Codec (identity: the caller's vector is the payload).
func (Dense) Encode(_ RoundContext, dense []float64) ([]float64, error) { return dense, nil }

// Decode implements Codec.
func (Dense) Decode(_ RoundContext, words []float64) ([]float64, error) { return words, nil }

// WireBytes implements Codec.
func (Dense) WireBytes(words []float64) int64 { return compress.DenseBytes(len(words)) }

// ---------------------------------------------------------------------------
// Masked (shared-seed sparsification — the SAPS wire format)

// Masked is the paper's shared-seed Bernoulli(1/c) mask sparsifier: both
// endpoints regenerate the identical round mask from the broadcast seed, so
// only the surviving values cross the wire and no indices are transmitted.
// Decode returns the packed masked values unchanged; the receiving node
// regenerates the mask itself to interpret them (core.Worker.RoundMask).
type Masked struct {
	// C is the compression ratio c (mask keep-probability 1/c).
	C float64

	mask    []bool
	payload []float64
	cache   *compress.MaskCache
}

// NewMasked returns a shared-seed mask codec with ratio c.
func NewMasked(c float64) *Masked {
	if c < 1 {
		panic(fmt.Sprintf("engine: masked codec ratio %v < 1", c))
	}
	return &Masked{C: c}
}

// NewMaskedShared returns a masked codec whose round masks come from a
// fleet-shared cache instead of per-codec scratch: every rank hosted in the
// same process regenerates one mask per round between them. Bit-identical to
// NewMasked (the mask is a pure function of seed, round, n, c).
func NewMaskedShared(c float64, mc *compress.MaskCache) *Masked {
	m := NewMasked(c)
	m.cache = mc
	return m
}

// Name implements Codec.
func (m *Masked) Name() string { return "masked" }

// Encode implements Codec: regenerate the round mask from (seed, round) and
// pack the surviving values.
func (m *Masked) Encode(ctx RoundContext, dense []float64) ([]float64, error) {
	if m.cache != nil {
		m.mask = m.cache.Get(ctx.Seed, ctx.Round, len(dense), m.C)
	} else {
		m.mask = compress.MaskInto(m.mask, ctx.Seed, ctx.Round, len(dense), m.C)
	}
	m.payload = compress.ExtractInto(m.payload, dense, m.mask)
	return m.payload, nil
}

// Decode implements Codec (identity: packed masked values).
func (m *Masked) Decode(_ RoundContext, words []float64) ([]float64, error) { return words, nil }

// WireBytes implements Codec: values only — the support travels as the
// 64-bit seed inside the control message.
func (m *Masked) WireBytes(words []float64) int64 { return compress.MaskedBytes(len(words)) }

// ---------------------------------------------------------------------------
// Sparse wire words (shared by TopK and RandomK)

// packSparse lays a sparse vector out as [dim, k, idx..., val...].
func packSparse(dst []float64, sv compress.SparseVec) []float64 {
	k := len(sv.Idx)
	dst = dst[:0]
	dst = append(dst, float64(sv.N), float64(k))
	for _, idx := range sv.Idx {
		dst = append(dst, float64(idx))
	}
	dst = append(dst, sv.Val...)
	return dst
}

// SparseWords parses the sparse wire layout [dim, k, idx..., val...] used by
// the top-k and random-k codecs. The returned index and value slices alias
// words. Nodes that need the explicit support (e.g. the S-FedAvg server's
// count-normalized aggregation) parse PeerMsg.Words with this.
func SparseWords(words []float64) (dim int, idx []float64, vals []float64, err error) {
	if len(words) < 2 {
		return 0, nil, nil, fmt.Errorf("engine: sparse payload of %d words", len(words))
	}
	dim = int(words[0])
	k := int(words[1])
	if k < 0 || len(words) != 2+2*k {
		return 0, nil, nil, fmt.Errorf("engine: sparse payload k=%d with %d words", k, len(words))
	}
	return dim, words[2 : 2+k], words[2+k:], nil
}

// decodeSparse expands sparse words to a dense vector.
func decodeSparse(words []float64) ([]float64, error) {
	return decodeSparseInto(nil, words)
}

// decodeSparseInto expands sparse words into dst (grown as needed).
func decodeSparseInto(dst []float64, words []float64) ([]float64, error) {
	dim, idx, vals, err := SparseWords(words)
	if err != nil {
		return nil, err
	}
	out := resizeZeroed(dst, dim)
	for i, ix := range idx {
		j := int(ix)
		if j < 0 || j >= dim {
			return nil, fmt.Errorf("engine: sparse index %d out of %d", j, dim)
		}
		out[j] = vals[i]
	}
	return out, nil
}

// resizeZeroed returns a zeroed length-n slice, reusing dst's storage when it
// is large enough.
func resizeZeroed(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// sparseWireBytes charges k (index, value) pairs, ignoring the carrier
// header.
func sparseWireBytes(words []float64) int64 {
	if len(words) < 2 {
		return 0
	}
	return compress.SparseBytes(int(words[1]))
}

// ---------------------------------------------------------------------------
// TopK (with optional error feedback)

// TopK transmits the K largest-magnitude entries with explicit 32-bit
// indices (8 wire bytes per entry). With EF set, dropped coordinates
// accumulate in an error-feedback residual and are retried next round
// (DGC-style) — required for convergence when compressing gradients.
// Decode expands to a dense vector (zeros off-support).
type TopK struct {
	K     int
	useEF bool
	ef    *compress.ErrorFeedback

	out   compress.SparseVec
	mags  []float64
	words []float64
}

// NewTopK returns a top-k codec for dim-dimensional vectors; ef selects
// error feedback. The residual buffer is allocated lazily on first Encode,
// so the per-rank codec tables every process builds (for decoding) carry no
// dead encoder state for the other ranks.
func NewTopK(k, dim int, ef bool) *TopK {
	if k < 1 {
		panic(fmt.Sprintf("engine: topk codec k=%d", k))
	}
	return &TopK{K: k, useEF: ef}
}

// Name implements Codec.
func (t *TopK) Name() string { return "topk" }

// Encode implements Codec.
func (t *TopK) Encode(_ RoundContext, dense []float64) ([]float64, error) {
	var sv compress.SparseVec
	if t.useEF {
		if t.ef == nil {
			t.ef = compress.NewErrorFeedback(len(dense))
		}
		sv = t.ef.CompressTopK(dense, t.K)
	} else {
		t.mags = compress.TopKInto(&t.out, t.mags, dense, t.K)
		sv = t.out
	}
	t.words = packSparse(t.words, sv)
	return t.words, nil
}

// Decode implements Codec.
func (t *TopK) Decode(_ RoundContext, words []float64) ([]float64, error) {
	return decodeSparse(words)
}

// DecodeInto implements DecoderInto: Decode into caller-owned scratch.
func (t *TopK) DecodeInto(dst []float64, _ RoundContext, words []float64) ([]float64, error) {
	return decodeSparseInto(dst, words)
}

// WireBytes implements Codec.
func (t *TopK) WireBytes(words []float64) int64 { return sparseWireBytes(words) }

// topKState is the codec's serialized checkpoint form.
type topKState struct {
	// Residual is the error-feedback residual; nil when error feedback is
	// disabled or no Encode has run yet (the residual allocates lazily).
	Residual []float64
}

// CaptureState implements Stateful: the error-feedback residual is the only
// cross-round state.
func (t *TopK) CaptureState() ([]byte, error) {
	st := topKState{}
	if t.ef != nil {
		st.Residual = append([]float64(nil), t.ef.Residual()...)
	}
	return gobBlob(st)
}

// RestoreState implements Stateful.
func (t *TopK) RestoreState(data []byte) error {
	var st topKState
	if err := gobUnblob(data, &st); err != nil {
		return err
	}
	if st.Residual == nil {
		t.ef = nil
		return nil
	}
	if !t.useEF {
		return fmt.Errorf("engine: topk snapshot carries a residual but error feedback is disabled")
	}
	if t.ef == nil || len(t.ef.Residual()) != len(st.Residual) {
		t.ef = compress.NewErrorFeedback(len(st.Residual))
	}
	t.ef.SetResidual(st.Residual)
	return nil
}

// ---------------------------------------------------------------------------
// RandomK

// RandomK transmits a uniformly random K-subset of coordinates with explicit
// indices (the S-FedAvg "random structured update"). Decode expands to a
// dense vector; servers needing the support parse PeerMsg.Words with
// SparseWords.
type RandomK struct {
	K   int
	rnd *rng.Source

	out    compress.SparseVec
	chosen map[int32]bool
	words  []float64
}

// NewRandomK returns a random-k codec drawing from the given seed.
func NewRandomK(k int, seed uint64) *RandomK {
	if k < 1 {
		panic(fmt.Sprintf("engine: randomk codec k=%d", k))
	}
	return &RandomK{K: k, rnd: rng.New(seed)}
}

// Name implements Codec.
func (r *RandomK) Name() string { return "randomk" }

// Encode implements Codec. The support map, sparse vector, and wire buffer
// are codec-owned and reused, so the steady state allocates nothing.
func (r *RandomK) Encode(_ RoundContext, dense []float64) ([]float64, error) {
	if r.chosen == nil {
		r.chosen = make(map[int32]bool, r.K)
	}
	compress.RandomKInto(&r.out, r.chosen, dense, r.K, r.rnd)
	r.words = packSparse(r.words, r.out)
	return r.words, nil
}

// Decode implements Codec.
func (r *RandomK) Decode(_ RoundContext, words []float64) ([]float64, error) {
	return decodeSparse(words)
}

// DecodeInto implements DecoderInto: Decode into caller-owned scratch.
func (r *RandomK) DecodeInto(dst []float64, _ RoundContext, words []float64) ([]float64, error) {
	return decodeSparseInto(dst, words)
}

// WireBytes implements Codec.
func (r *RandomK) WireBytes(words []float64) int64 { return sparseWireBytes(words) }

// CaptureState implements Stateful: the support-drawing RNG cursor.
func (r *RandomK) CaptureState() ([]byte, error) { return gobBlob(r.rnd.State()) }

// RestoreState implements Stateful.
func (r *RandomK) RestoreState(data []byte) error {
	var st rng.State
	if err := gobUnblob(data, &st); err != nil {
		return err
	}
	r.rnd.SetState(st)
	return nil
}

// ---------------------------------------------------------------------------
// QSGD

// QSGDCodec stochastically quantizes every coordinate to one of 2s+1 signed
// levels (Alistarh et al.); the wire carries a 4-byte l2 norm plus
// bit-packed level codes. Decode reconstructs the unbiased dense estimate.
type QSGDCodec struct {
	Levels int

	q     *compress.QSGD
	words []float64
}

// NewQSGDCodec returns a quantizing codec with the given level count and
// stochastic-rounding seed.
func NewQSGDCodec(levels int, seed uint64) *QSGDCodec {
	return &QSGDCodec{Levels: levels, q: compress.NewQSGD(levels, seed)}
}

// Name implements Codec.
func (q *QSGDCodec) Name() string { return "qsgd" }

// Encode implements Codec. Words layout: [norm, code...]. The quantizer
// writes codes straight into the codec's reused wire buffer — no
// intermediate integer-code vector — so the steady state allocates nothing.
func (q *QSGDCodec) Encode(_ RoundContext, dense []float64) ([]float64, error) {
	q.words = q.q.AppendQuantized(q.words, dense)
	return q.words, nil
}

// Decode implements Codec.
func (q *QSGDCodec) Decode(_ RoundContext, words []float64) ([]float64, error) {
	return q.DecodeInto(nil, RoundContext{}, words)
}

// DecodeInto implements DecoderInto: Decode into caller-owned scratch.
func (q *QSGDCodec) DecodeInto(dst []float64, _ RoundContext, words []float64) ([]float64, error) {
	if len(words) < 1 {
		return nil, fmt.Errorf("engine: qsgd payload of %d words", len(words))
	}
	norm := words[0]
	if norm == 0 {
		return resizeZeroed(dst, len(words)-1), nil
	}
	if cap(dst) < len(words)-1 {
		dst = make([]float64, len(words)-1)
	}
	out := dst[:len(words)-1]
	s := float64(q.Levels)
	codes := words[1:]
	n := len(codes) &^ 3
	for i := 0; i < n; i += 4 {
		out[i] = norm * codes[i] / s
		out[i+1] = norm * codes[i+1] / s
		out[i+2] = norm * codes[i+2] / s
		out[i+3] = norm * codes[i+3] / s
	}
	for i := n; i < len(codes); i++ {
		out[i] = norm * codes[i] / s
	}
	return out, nil
}

// WireBytes implements Codec: the norm plus bit-packed codes, exactly as
// compress.Quantized accounts it.
func (q *QSGDCodec) WireBytes(words []float64) int64 {
	if len(words) < 1 {
		return 0
	}
	return compress.QuantizedWireBytes(len(words)-1, q.Levels)
}

// CaptureState implements Stateful: the stochastic-rounding RNG cursor.
func (q *QSGDCodec) CaptureState() ([]byte, error) { return gobBlob(q.q.RNGState()) }

// RestoreState implements Stateful.
func (q *QSGDCodec) RestoreState(data []byte) error {
	var st rng.State
	if err := gobUnblob(data, &st); err != nil {
		return err
	}
	q.q.SetRNGState(st)
	return nil
}

// trained reports whether a Compute loss marks the node as a training
// participant (servers return NaN).
func trained(loss float64) bool { return !math.IsNaN(loss) }
