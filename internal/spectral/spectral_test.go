package spectral

import (
	"math"
	"testing"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

func TestPowerIterationDiagonal(t *testing.T) {
	a := tensor.MatrixFrom(3, 3, []float64{
		5, 0, 0,
		0, 2, 0,
		0, 0, 1,
	})
	l, v := PowerIteration(a, 200)
	if math.Abs(l-5) > 1e-6 {
		t.Fatalf("dominant eigenvalue = %v, want 5", l)
	}
	if math.Abs(math.Abs(v[0])-1) > 1e-4 {
		t.Fatalf("dominant eigenvector = %v, want ±e1", v)
	}
}

func TestSecondLargestEigenvalueDiagonal(t *testing.T) {
	a := tensor.MatrixFrom(4, 4, []float64{
		7, 0, 0, 0,
		0, 3, 0, 0,
		0, 0, 2, 0,
		0, 0, 0, 1,
	})
	if got := SecondLargestEigenvalue(a, 300); math.Abs(got-3) > 1e-5 {
		t.Fatalf("second eigenvalue = %v, want 3", got)
	}
}

func TestSecondLargestEigenvalueSymmetric(t *testing.T) {
	// 2x2 symmetric [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := tensor.MatrixFrom(2, 2, []float64{2, 1, 1, 2})
	if got := SecondLargestEigenvalue(a, 300); math.Abs(got-1) > 1e-5 {
		t.Fatalf("second eigenvalue = %v, want 1", got)
	}
}

// pairW builds the doubly stochastic gossip matrix for a single matching on
// n vertices: matched pairs average (1/2, 1/2), unmatched keep themselves.
func pairW(n int, pairs [][2]int) *tensor.Matrix {
	w := tensor.NewMatrix(n, n)
	matched := make([]bool, n)
	for _, p := range pairs {
		w.Set(p[0], p[0], 0.5)
		w.Set(p[1], p[1], 0.5)
		w.Set(p[0], p[1], 0.5)
		w.Set(p[1], p[0], 0.5)
		matched[p[0]], matched[p[1]] = true, true
	}
	for i := 0; i < n; i++ {
		if !matched[i] {
			w.Set(i, i, 1)
		}
	}
	return w
}

func TestRhoRingPairingsBelowOne(t *testing.T) {
	// Alternating even/odd pairings on a ring of 4:
	// {0-1, 2-3} and {1-2, 3-0}. Their union is connected, so ρ < 1.
	w1 := pairW(4, [][2]int{{0, 1}, {2, 3}})
	w2 := pairW(4, [][2]int{{1, 2}, {3, 0}})
	rho := RhoOfExpectedWtW([]*tensor.Matrix{w1, w2}, 500)
	if rho >= 1-1e-9 {
		t.Fatalf("rho = %v, want < 1 for connected PC edges", rho)
	}
	if rho < 0 {
		t.Fatalf("rho = %v, want >= 0", rho)
	}
}

func TestRhoDisconnectedIsOne(t *testing.T) {
	// Only ever pair {0-1} and {2-3}: the PC edge graph is disconnected, so
	// consensus across the two halves is impossible and ρ = 1.
	w := pairW(4, [][2]int{{0, 1}, {2, 3}})
	rho := RhoOfExpectedWtW([]*tensor.Matrix{w}, 500)
	if math.Abs(rho-1) > 1e-6 {
		t.Fatalf("rho = %v, want 1 for disconnected PC edges", rho)
	}
}

func TestRhoIdentityIsOne(t *testing.T) {
	// No communication at all.
	w := pairW(4, nil)
	rho := RhoOfExpectedWtW([]*tensor.Matrix{w}, 500)
	if math.Abs(rho-1) > 1e-6 {
		t.Fatalf("rho = %v, want 1 for identity gossip", rho)
	}
}

func TestMixingRate(t *testing.T) {
	tests := []struct {
		p, rho, want float64
	}{
		{1, 0, 0},   // dense exchange, perfect mixing per matched pair
		{0, 0.5, 1}, // no coordinates exchanged: no contraction
		{0.01, 0.9, 0.99 + 0.01*0.81},
		{0.25, 0.5, 0.75 + 0.25*0.25},
	}
	for _, tc := range tests {
		if got := MixingRate(tc.p, tc.rho); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("MixingRate(%v,%v) = %v, want %v", tc.p, tc.rho, got, tc.want)
		}
	}
}

func TestRhoEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(RhoOfExpectedWtW(nil, 10)) {
		t.Fatal("expected NaN for no matrices")
	}
	if !math.IsNaN(RhoOfMatchings(nil, 10)) {
		t.Fatal("expected NaN for no matchings")
	}
}

// matchingW materializes a matching's doubly stochastic gossip matrix — the
// dense object RhoOfMatchings avoids building.
func matchingW(m graph.Matching) *tensor.Matrix {
	var pairs [][2]int
	for v, p := range m {
		if p > v {
			pairs = append(pairs, [2]int{v, p})
		}
	}
	return pairW(len(m), pairs)
}

// TestRhoOfMatchingsMatchesDense pins the matrix-free form against the dense
// oracle: over random matching samples the two must agree to power-iteration
// precision, on both connected (ρ < 1) and disconnected (ρ = 1) ensembles.
func TestRhoOfMatchingsMatchesDense(t *testing.T) {
	const n, samples, iters = 12, 8, 800
	r := rng.New(17)
	var ms []graph.Matching
	var ws []*tensor.Matrix
	for s := 0; s < samples; s++ {
		var edges []graph.WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.3 {
					edges = append(edges, graph.WeightedEdge{U: u, V: v, Weight: 1 + r.Float64()})
				}
			}
		}
		m := graph.GreedyWeightedMatching(n, edges, rng.New(uint64(100+s)))
		ms = append(ms, m)
		ws = append(ws, matchingW(m))
	}
	sparse, dense := RhoOfMatchings(ms, iters), RhoOfExpectedWtW(ws, iters)
	if math.Abs(sparse-dense) > 1e-6 {
		t.Fatalf("matrix-free rho %v, dense rho %v", sparse, dense)
	}
	if sparse >= 1-1e-9 || sparse < 0 {
		t.Fatalf("rho %v outside [0, 1) for a connected ensemble", sparse)
	}

	// A single fixed pairing never connects the fleet: both forms must say
	// rho = 1 exactly (to iteration precision).
	split := make(graph.Matching, 4)
	split[0], split[1], split[2], split[3] = 1, 0, 3, 2
	sp, de := RhoOfMatchings([]graph.Matching{split}, iters), RhoOfExpectedWtW([]*tensor.Matrix{matchingW(split)}, iters)
	if math.Abs(sp-1) > 1e-6 || math.Abs(de-1) > 1e-6 {
		t.Fatalf("disconnected ensemble: matrix-free %v, dense %v, want 1", sp, de)
	}
}
