package profiling

import "testing"

func TestPeakRSSPositive(t *testing.T) {
	ResetPeakRSS()
	// Touch some memory so a freshly-reset watermark is re-established.
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	if got := PeakRSS(); got <= 0 {
		t.Fatalf("PeakRSS = %d, want > 0", got)
	}
	_ = buf[len(buf)-1]
}
