package netsim

import "fmt"

// NodeScaledBandwidth scales every link of a base environment by per-node
// multipliers: link (u, v) runs at base speed times min(mult[u], mult[v]),
// the slower endpoint's uplink being the bottleneck. This is the trace
// replay's bandwidth model (fleettrace multipliers), layered on top of any
// base environment — including a DynamicBandwidth snapshot, whose in-place
// Tick the scaler observes because Apply rereads the base on every call.
//
// Like DynamicBandwidth, the snapshot pointer is stable: Apply rewrites the
// same *Bandwidth in place, so planners and ledgers constructed over
// Current() see the fresh speeds after every Apply without re-plumbing.
type NodeScaledBandwidth struct {
	base    *Bandwidth
	current *Bandwidth
}

// NewNodeScaledBandwidth wraps base; the initial snapshot carries unit
// multipliers (a copy of base).
func NewNodeScaledBandwidth(base *Bandwidth) *NodeScaledBandwidth {
	s := &NodeScaledBandwidth{base: base}
	s.Apply(nil)
	return s
}

// Apply rewrites the snapshot with the given per-node multipliers (nil means
// all ones). The returned pointer is the same *Bandwidth on every call; only
// its link speeds change.
func (s *NodeScaledBandwidth) Apply(mult []float64) *Bandwidth {
	n := s.base.N
	if mult != nil && len(mult) != n {
		panic(fmt.Sprintf("netsim: %d node multipliers for %d nodes", len(mult), n))
	}
	m := func(i int) float64 {
		if mult == nil {
			return 1
		}
		return mult[i]
	}
	cur := s.current
	if s.base.Sparse() {
		if cur == nil {
			// The topology (off/nbr) is shared with the base; only the
			// weights are rewritten.
			cur = &Bandwidth{N: n, off: s.base.off, nbr: s.base.nbr, wts: make([]float64, len(s.base.wts))}
		}
		// min(mult[u], mult[v]) is symmetric, so each directed entry can be
		// written independently without a reverse-edge index.
		for u := 0; u < n; u++ {
			mu := m(u)
			for k := s.base.off[u]; k < s.base.off[u+1]; k++ {
				mv := m(int(s.base.nbr[k]))
				if mv < mu {
					cur.wts[k] = s.base.wts[k] * mv
				} else {
					cur.wts[k] = s.base.wts[k] * mu
				}
			}
		}
		s.current = cur
		return cur
	}
	if cur == nil {
		cur = &Bandwidth{N: n, mbps: make([]float64, n*n)}
	}
	for i := 0; i < n; i++ {
		mi := m(i)
		for j := 0; j < n; j++ {
			if i == j {
				cur.mbps[i*n+j] = 0
				continue
			}
			mj := m(j)
			scale := mi
			if mj < mi {
				scale = mj
			}
			cur.mbps[i*n+j] = s.base.MBps(i, j) * scale
		}
	}
	s.current = cur
	return cur
}

// Current returns the latest snapshot.
func (s *NodeScaledBandwidth) Current() *Bandwidth { return s.current }

// Base returns the underlying environment.
func (s *NodeScaledBandwidth) Base() *Bandwidth { return s.base }
