package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestNilSinkNoOps proves the disabled path: every metric method must be
// callable on a nil receiver (the zero-value bundle instrumented code
// captures when observability is off) without panicking or recording.
func TestNilSinkNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil Counter.Value = %d, want 0", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil Gauge.Value = %d, want 0", g.Value())
	}
	var fc *FloatCounter
	fc.Add(1.5)
	if fc.Value() != 0 {
		t.Fatalf("nil FloatCounter.Value = %v, want 0", fc.Value())
	}
	var fg *FloatGauge
	fg.Set(2.5)
	if fg.Value() != 0 {
		t.Fatalf("nil FloatGauge.Value = %v, want 0", fg.Value())
	}
	var h *Histogram
	h.Observe(0.1)
	if h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Fatal("nil Histogram recorded something")
	}
	var rt *RunTracker
	ri := rt.Start("x", "saps", 4, 10)
	if ri != nil {
		t.Fatal("nil RunTracker.Start returned a record")
	}
	ri.SetRound(3)
	ri.Finish()
	rt.Done(ri)

	// A nil *Metrics yields zero-value bundles whose fields are all nil.
	var m *Metrics
	em := m.EngineM()
	if em.Enabled() {
		t.Fatal("nil Metrics yielded an enabled engine bundle")
	}
	em.RoundsTotal.Inc()
	em.RoundSeconds.Observe(0.5)
	m.TransportM().RejoinsTotal.Inc()
	m.NetsimM().VirtualSeconds.Set(1)
	m.CampaignM().CellsRunning.Inc()
	m.RunsM().Start("x", "saps", 1, 1).SetRound(1)
}

// TestHistogramBuckets pins the Prometheus le semantics: an observation
// lands in the first bucket whose upper bound satisfies v <= le, and the
// rendered buckets are cumulative.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_seconds", "help", 1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5} {
		h.Observe(v)
	}
	// 0.5 and 1 land in le=1 (boundary value included); 1.5 and 2 in
	// le=2; 4 in le=4; 5 overflows to +Inf.
	want := []int64{2, 4, 5, 6}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("BucketCounts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 14 {
		t.Fatalf("Sum = %v, want 14", h.Sum())
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"unsorted":  {2, 1},
		"duplicate": {1, 1, 2},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram("bad", "help", bounds...)
		})
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("dup_total", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.MustRegister(NewGauge("dup_total", "b"))
}

// TestGoldenExposition renders a registry with one metric of every type
// and fixed values, and byte-compares against the committed golden file —
// the scrape format is a contract with external tooling.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("demo_rounds_total", "Rounds completed.")
	g := NewGauge("demo_cells_running", "Cells in flight.")
	fc := NewFloatCounter("demo_sim_seconds_total", "Simulated seconds.")
	fg := NewFloatGauge("demo_virtual_seconds", "Virtual clock.")
	h := NewHistogram("demo_round_seconds", "Seconds per round.", 0.001, 0.1, 1)
	r.MustRegister(c, g, fc, fg, h)
	c.Add(42)
	g.Set(3)
	fc.Add(1.5)
	fg.Set(0.25)
	for _, v := range []float64{0.0005, 0.05, 0.05, 2} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestWriteJSON checks the snapshot endpoint decodes and carries the
// values the text exposition reports.
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("j_total", "help")
	h := NewHistogram("j_seconds", "help", 1, 10)
	r.MustRegister(c, h)
	c.Add(7)
	h.Observe(0.5)
	h.Observe(20)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]struct {
		Kind  string          `json:"kind"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if snap["j_total"].Kind != "counter" || string(snap["j_total"].Value) != "7" {
		t.Fatalf("j_total snapshot = %+v", snap["j_total"])
	}
	var hv struct {
		Buckets []int64 `json:"buckets"`
		Count   int64   `json:"count"`
	}
	if err := json.Unmarshal(snap["j_seconds"].Value, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Count != 2 || len(hv.Buckets) != 3 || hv.Buckets[2] != 2 {
		t.Fatalf("j_seconds snapshot = %+v", hv)
	}
}

// TestConcurrentUpdates hammers every metric type from many goroutines
// while scraping — the run-under-race proof that the hot path and the
// exposition path are data-race free.
func TestConcurrentUpdates(t *testing.T) {
	m := New()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Engine.RoundsTotal.Inc()
				m.Engine.WireBytesTotal.Add(3)
				m.Engine.SimSecondsTotal.Add(0.001)
				m.Engine.RoundSeconds.Observe(float64(i%7) * 0.01)
				m.Netsim.VirtualSeconds.Set(float64(i))
				m.Campaign.CellsRunning.Inc()
				m.Campaign.CellsRunning.Dec()
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 50; i++ {
				buf.Reset()
				if err := m.Registry.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Engine.RoundsTotal.Value(); got != workers*iters {
		t.Fatalf("RoundsTotal = %d, want %d", got, workers*iters)
	}
	if got := m.Engine.WireBytesTotal.Value(); got != 3*workers*iters {
		t.Fatalf("WireBytesTotal = %d, want %d", got, 3*workers*iters)
	}
	if got := m.Engine.RoundSeconds.Count(); got != workers*iters {
		t.Fatalf("RoundSeconds.Count = %d, want %d", got, workers*iters)
	}
	if got := m.Campaign.CellsRunning.Value(); got != 0 {
		t.Fatalf("CellsRunning = %d, want 0 after balanced Inc/Dec", got)
	}
}

// TestEnableDisable checks the global sink swap and the chain-safety of
// Current() while disabled.
func TestEnableDisable(t *testing.T) {
	defer Disable()
	if Current() != nil {
		t.Fatal("sink enabled before Enable")
	}
	Current().EngineM().RoundsTotal.Inc() // must not panic while off
	m := New()
	Enable(m)
	if Current() != m {
		t.Fatal("Current() did not return the enabled sink")
	}
	Current().EngineM().RoundsTotal.Inc()
	if m.Engine.RoundsTotal.Value() != 1 {
		t.Fatalf("RoundsTotal = %d, want 1", m.Engine.RoundsTotal.Value())
	}
	Disable()
	if Current() != nil {
		t.Fatal("Disable did not clear the sink")
	}
}
