package algos

import (
	"fmt"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/fleettrace"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/trace"
)

// SAPSTrace is SAPS-PSGD under replayed membership: a fleettrace.Replay's
// join/leave events decide who is present each round — the measured-trace
// counterpart of SAPSChurn's random process — optionally intersected with a
// FaultSchedule (a trace-scheduled node can still crash). Absent workers
// neither train nor communicate, and the coordinator matches only the
// present ones through the same PlanActive path churn and faults drive, so
// replayed membership is bit-identical across shard counts and backends.
// Like its siblings, SAPSTrace is itself the engine's Planner.
type SAPSTrace struct {
	fleet  *Fleet
	eng    *engine.Engine
	coord  *core.Coordinator
	replay *fleettrace.Replay
	proc   *FaultProcess
	active []bool
	// ActiveHistory records the number of active workers each round.
	ActiveHistory []int
	// Trace, when set, records one event per round like SAPS.Trace, with
	// ActiveWorkers reflecting the round's replayed membership.
	Trace *trace.Recorder
	bw    *netsim.Bandwidth
}

// SetTrace attaches a round recorder (scenario.RunFull's hook).
func (s *SAPSTrace) SetTrace(r *trace.Recorder) { s.Trace = r }

// NewSAPSTrace builds SAPS-PSGD with replayed membership. The replay must
// cover the fleet size; sched, when non-nil, layers scheduled faults on top
// (a worker is active only when both the trace and the fault process say so).
func NewSAPSTrace(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config, replay *fleettrace.Replay, sched *FaultSchedule) *SAPSTrace {
	if replay.N() != fc.N {
		panic(fmt.Sprintf("algos: trace replay over %d nodes for a fleet of %d", replay.N(), fc.N))
	}
	f := NewFleet(fc)
	s := &SAPSTrace{
		fleet:  f,
		bw:     bw,
		replay: replay,
		coord:  core.NewCoordinator(bw, cfg),
	}
	if !sched.Empty() {
		s.proc = NewFaultProcess(*sched)
	}
	s.eng = engine.New(engine.Options{
		Workers: newEngineWorkers(f, fc, cfg),
		Planner: s,
		Shards:  fc.RuntimeShards,
	})
	return s
}

// Name implements Algorithm.
func (s *SAPSTrace) Name() string { return "SAPS-PSGD(trace)" }

// Models implements Algorithm.
func (s *SAPSTrace) Models() []*nn.Model { return s.fleet.Models }

// Close releases the engine's worker pool.
func (s *SAPSTrace) Close() { s.eng.Close() }

// Plan implements engine.Planner: evaluate the replayed membership (and the
// fault process, when present), then run Algorithm 3 over the present
// workers only.
func (s *SAPSTrace) Plan(t int) core.RoundPlan {
	s.active = s.replay.Active(t, s.active)
	if s.proc != nil {
		alive, err := s.proc.Step(t)
		if err != nil {
			panic(err)
		}
		for i := range s.active {
			s.active[i] = s.active[i] && alive[i]
		}
	}
	n := 0
	for _, a := range s.active {
		if a {
			n++
		}
	}
	if n < 2 {
		panic(fmt.Sprintf("algos: trace and faults leave %d active workers at round %d", n, t))
	}
	s.ActiveHistory = append(s.ActiveHistory, n)
	return s.coord.PlanActive(t, s.active)
}

// Step implements Algorithm.
func (s *SAPSTrace) Step(round int, led engine.Ledger) float64 {
	stats, err := s.eng.Step(round, led)
	if err != nil {
		panic(err)
	}
	if s.Trace != nil {
		payload := compress.MaskedBytes(stats.PayloadLen)
		s.Trace.Record(round, stats.Plan.Matching(), s.bw, stats.Plan.Forced,
			payload, s.ActiveHistory[len(s.ActiveHistory)-1], stats.Loss)
	}
	return stats.Loss
}

// Active exposes the current membership (matched pairs must both be active;
// verified by the tests).
func (s *SAPSTrace) Active() []bool { return s.active }

var (
	_ Algorithm      = (*SAPSTrace)(nil)
	_ engine.Planner = (*SAPSTrace)(nil)
)
