package transport

import (
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/fleettrace"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/obs"
)

// GossipConfig aliases gossip.Config (Algorithm 3's BThres/TThres knobs).
type GossipConfig = gossip.Config

// activePlanner is a planner that can re-plan over a dynamic membership —
// the churn path of Algorithm 3. *core.Coordinator implements it; the
// coordinator uses it both for the declarative fault schedule and to
// re-plan a round after detecting an unscheduled worker loss.
type activePlanner interface {
	engine.Planner
	PlanActive(t int, active []bool) core.RoundPlan
}

// errRoundAborted reports a round attempt cancelled after a worker loss; the
// round loop re-plans and retries the same round.
type errRoundAborted struct {
	round int
	rank  int
	cause error
}

func (e *errRoundAborted) Error() string {
	return fmt.Sprintf("transport: round %d aborted after losing rank %d: %v", e.round, e.rank, e.cause)
}

// CoordinatorServer runs Algorithm 1 over TCP for any recipe algorithm: it
// registers the task's node processes (N trainers, plus one server process
// for hub algorithms), drives T rounds of control broadcasts, enforces the
// round barrier, and finally collects the global model.
//
// Fault tolerance (DESIGN.md §3): the coordinator detects worker
// disconnects, aborts the affected round on every survivor (who roll back to
// their round-boundary snapshots), and re-plans it over the remaining fleet
// via the churn planner path. With Faults set it also *injects* the
// schedule's crashes — killing the scheduled worker processes at the exact
// round boundaries the in-process engine would exclude them — and re-admits
// scheduled rejoiners through the Rejoin handshake, so a deployed fleet
// reproduces the simulated fault scenario bit for bit.
type CoordinatorServer struct {
	// N is the trainer count n. Hub algorithms expect one extra worker
	// process to register (it becomes the parameter server, rank n).
	N    int
	Task TaskSpec
	// BW is the bandwidth environment used by the gossip generator when
	// Measure is false; with Measure set it is only the fallback for links
	// whose probes failed.
	BW *netsim.Bandwidth
	// Gossip carries Algorithm 3's BThres/TThres knobs (SAPS only).
	Gossip GossipConfig
	// Measure, when true, runs a bandwidth measurement phase after
	// registration (paper §II-C footnote 3): every worker pair exchanges
	// ProbeBytes of payload, reports the achieved throughput, and the
	// assembled matrix drives the adaptive matching.
	Measure bool
	// ProbeBytes sizes the measurement payload (default 64 KiB).
	ProbeBytes int
	// Ledger, when set, receives the engine driver's per-round traffic
	// accounting (defaults to a fresh engine.CountingLedger). Pass one in to
	// read byte totals after Run. Charges are the wire bytes the workers'
	// codecs measured, reported through the round-end flows. Aborted round
	// attempts are never charged — only committed rounds reach the ledger.
	Ledger engine.Ledger
	// Faults is the declarative fault-injection schedule (SAPS only): the
	// coordinator crashes the scheduled workers at their boundaries and
	// waits for scheduled rejoiners. Its N must equal the trainer count.
	Faults *algos.FaultSchedule
	// Replay, when set, replays a fleet trace (DESIGN.md §11) over the
	// deployment: every round boundary the trace's bandwidth multipliers
	// rescale the planner's environment in place, exactly as the simulated
	// backends do. Its node count must equal the trainer count.
	Replay *fleettrace.Replay
	// ReplayEvents additionally replays the trace's join/leave events
	// (SAPS only): scripted-absent workers are excluded from planning
	// through the same PlanActive path the fault schedule uses — they stay
	// connected but neither train nor communicate, mirroring the
	// in-process SAPSTrace planner bit for bit.
	ReplayEvents bool
	// RejoinWait bounds how long the coordinator blocks at a round boundary
	// for a scheduled rejoiner's handshake (default 60s).
	RejoinWait time.Duration
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)

	ln        net.Listener
	conns     []*Conn
	addrs     []string
	alive     []bool
	deadSince []int
	gen       []int // per-rank connection generation (bumped on rejoin)
	pattern   engine.Pattern
	total     int

	base engine.Planner
	ap   activePlanner
	proc *algos.FaultProcess
	// schedActive is the fault schedule's membership for schedRound,
	// computed once per round (replans reuse it). traceActive is the
	// replay's membership for the same round; both intersect with detected
	// liveness in effectiveActive.
	schedActive []bool
	traceActive []bool
	scaler      *netsim.NodeScaledBandwidth
	multBuf     []float64
	schedRound  int
	attempt     int
	addrsDirty  bool

	inbox    chan connMsg
	rejoinCh chan rejoinReq

	// tm is the observability sink (zero value = disabled), captured once
	// when Run starts.
	tm obs.TransportMetrics

	mu      sync.Mutex
	started bool
}

// connMsg is one message (or terminal error) from a worker connection's
// reader goroutine.
type connMsg struct {
	rank int
	gen  int
	msg  any
	err  error
}

// rejoinReq is a restarted worker's handshake, delivered by the accept
// goroutine.
type rejoinReq struct {
	conn *Conn
	msg  Rejoin
}

// Listen binds the coordinator to addr (e.g. "127.0.0.1:0") and returns the
// actual bound address.
func (s *CoordinatorServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: coordinator listen: %w", err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

func (s *CoordinatorServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Run accepts the task's node processes, drives the full training, and
// returns the final global model parameters (collected from the server rank
// for hub algorithms, from the lowest surviving worker otherwise). It closes
// the listener on exit.
func (s *CoordinatorServer) Run() ([]float64, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("transport: coordinator already started")
	}
	s.started = true
	s.mu.Unlock()
	s.tm = obs.Current().TransportM()
	if s.ln == nil {
		return nil, fmt.Errorf("transport: Run before Listen")
	}
	defer s.ln.Close()

	rec := s.Task.Recipe(s.N)
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	s.total = rec.Nodes()
	s.pattern = rec.Pattern()
	if !s.Faults.Empty() {
		if rec.Algo != "saps" {
			return nil, fmt.Errorf("transport: fault schedule requires algo saps, have %s", rec.Algo)
		}
		if s.Faults.N != s.N {
			return nil, fmt.Errorf("transport: fault schedule over %d workers for %d trainers", s.Faults.N, s.N)
		}
		if err := s.Faults.Validate(); err != nil {
			return nil, err
		}
		s.proc = algos.NewFaultProcess(*s.Faults)
	}
	if s.ReplayEvents && s.Replay == nil {
		return nil, fmt.Errorf("transport: ReplayEvents without a Replay")
	}
	if s.Replay != nil {
		if s.Replay.N() != s.N {
			return nil, fmt.Errorf("transport: trace replay over %d nodes for %d trainers", s.Replay.N(), s.N)
		}
		if s.ReplayEvents && rec.Algo != "saps" {
			return nil, fmt.Errorf("transport: trace membership events require algo saps, have %s", rec.Algo)
		}
	}
	if s.RejoinWait <= 0 {
		s.RejoinWait = 60 * time.Second
	}

	// Registration phase.
	for rank := 0; rank < s.total; rank++ {
		nc, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: accept worker %d: %w", rank, err)
		}
		conn := NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: hello from worker %d: %w", rank, err)
		}
		hello, ok := msg.(Hello)
		if !ok {
			return nil, fmt.Errorf("transport: worker %d sent %T, want Hello", rank, msg)
		}
		s.conns = append(s.conns, conn)
		s.addrs = append(s.addrs, hello.ListenAddr)
		s.tm.ConnectsTotal.Inc()
		s.logf("coordinator: worker %d registered at %s", rank, hello.ListenAddr)
	}
	s.alive = make([]bool, s.total)
	s.deadSince = make([]int, s.total)
	s.gen = make([]int, s.total)
	for i := range s.alive {
		s.alive[i] = true
	}
	defer func() {
		for rank, c := range s.conns {
			if s.alive[rank] {
				c.Close()
			}
		}
	}()
	for rank, c := range s.conns {
		if err := c.Send(Welcome{Rank: rank, N: s.total, Task: s.Task, Addrs: s.addrs}); err != nil {
			return nil, err
		}
	}

	// Optional measurement phase (direct per-connection reads: the reader
	// goroutines start afterwards).
	bw := s.BW
	if s.Measure {
		measured, err := s.measure()
		if err != nil {
			return nil, err
		}
		bw = measured
	}

	// Readers + rejoin acceptor.
	s.inbox = make(chan connMsg, 4*s.total+16)
	s.rejoinCh = make(chan rejoinReq, s.total)
	for rank := range s.conns {
		go s.readConn(rank, s.gen[rank], s.conns[rank])
	}
	go s.acceptRejoins()

	// Trace replay wraps whatever environment we ended up with (configured
	// or measured): the planner sees the stable *Bandwidth the scaler
	// rewrites in place each boundary, identically to the simulated
	// backends' composition.
	if s.Replay != nil {
		s.scaler = netsim.NewNodeScaledBandwidth(bw)
		s.multBuf = s.Replay.Multipliers(0, s.multBuf)
		bw = s.scaler.Apply(s.multBuf)
	}

	// Round loop (Algorithm 1 lines 3–7), executed by the canonical engine
	// driver: planning, the worker barrier, and traffic accounting are the
	// same code the in-memory and simulated backends run. On an aborted
	// round the driver is re-invoked for the same t: the planner re-plans
	// over the survivors and no ledger charge happens for the lost attempt.
	s.base = rec.Planner(bw, s.Gossip)
	s.ap, _ = s.base.(activePlanner)
	led := s.Ledger
	if led == nil {
		led = &engine.CountingLedger{}
	}
	drv := &engine.Driver{
		Planner: engine.PlannerFunc(s.plan),
		Control: (*tcpControl)(s),
	}
	for t := 0; t < s.Task.Rounds; t++ {
		if err := s.beginRound(t); err != nil {
			return nil, err
		}
		for {
			prevAlive := s.aliveCount()
			stats, err := drv.Round(t, led)
			if err == nil {
				if (t+1)%10 == 0 || t == s.Task.Rounds-1 {
					s.logf("coordinator: round %d/%d mean loss %.4f (%d wire bytes)",
						t+1, s.Task.Rounds, stats.Loss, stats.Bytes)
				}
				break
			}
			var ab *errRoundAborted
			if !errors.As(err, &ab) {
				return nil, err
			}
			if s.aliveCount() == prevAlive {
				// The abort identified no new casualty: retrying would
				// re-plan the identical round into the identical failure.
				return nil, fmt.Errorf("transport: round %d failed without a worker loss to exclude: %w", t, ab)
			}
			s.logf("coordinator: %v; re-planning over %d survivors", ab, s.aliveCount())
			if err := s.canContinue(); err != nil {
				return nil, err
			}
		}
	}

	collectRank := s.collectRank(rec)
	if collectRank < 0 {
		return nil, fmt.Errorf("transport: no surviving worker to collect the model from")
	}
	return s.collect(collectRank)
}

// measure runs the bandwidth probe phase and assembles the matrix.
func (s *CoordinatorServer) measure() (*netsim.Bandwidth, error) {
	probe := s.ProbeBytes
	if probe <= 0 {
		probe = 64 << 10
	}
	for rank, c := range s.conns {
		if err := c.Send(MeasureRequest{ProbeBytes: probe}); err != nil {
			return nil, fmt.Errorf("transport: measure request to %d: %w", rank, err)
		}
	}
	reports := make([]MeasureReport, 0, s.total)
	for rank, c := range s.conns {
		msg, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: measure report from %d: %w", rank, err)
		}
		rep, ok := msg.(MeasureReport)
		if !ok {
			return nil, fmt.Errorf("transport: measure phase got %T from %d", msg, rank)
		}
		reports = append(reports, rep)
	}
	measured, err := AssembleBandwidth(s.total, reports)
	if err != nil {
		return nil, err
	}
	s.logf("coordinator: measured bandwidth matrix assembled (mean %.2f MB/s)", measured.MeanBandwidth())
	return measured, nil
}

// readConn pumps one worker connection into the inbox until it dies.
func (s *CoordinatorServer) readConn(rank, gen int, c *Conn) {
	for {
		msg, err := c.Recv()
		s.inbox <- connMsg{rank: rank, gen: gen, msg: msg, err: err}
		if err != nil {
			return
		}
	}
}

// acceptRejoins forwards Rejoin handshakes from restarted workers; anything
// else on a fresh connection is rejected. It exits when the listener closes.
func (s *CoordinatorServer) acceptRejoins() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn := NewConn(nc)
			msg, err := conn.Recv()
			if err != nil {
				conn.Close()
				return
			}
			rj, ok := msg.(Rejoin)
			if !ok {
				conn.Send(RejoinNack{Reason: fmt.Sprintf("expected Rejoin, got %T (registration is closed)", msg)})
				conn.Close()
				return
			}
			s.rejoinCh <- rejoinReq{conn: conn, msg: rj}
		}()
	}
}

// beginRound prepares round t: advance the fault schedule, inject scheduled
// crashes, admit (and, for scheduled rejoiners, wait for) returning workers,
// and reset the attempt counter.
func (s *CoordinatorServer) beginRound(t int) error {
	s.schedRound = t
	s.schedActive = nil
	if s.Replay != nil {
		if t > 0 {
			// Round 0's multipliers applied at construction, matching the
			// simulated backends' tick placement.
			s.multBuf = s.Replay.Multipliers(t, s.multBuf)
			s.scaler.Apply(s.multBuf)
		}
		if s.ReplayEvents {
			s.traceActive = s.Replay.Active(t, s.traceActive)
		}
	}
	if s.proc != nil {
		sched, err := s.proc.Step(t)
		if err != nil {
			return err
		}
		s.schedActive = sched
		// Fault injection: kill workers whose scheduled-death window opens
		// at this boundary.
		for rank := 0; rank < len(sched); rank++ {
			if !sched[rank] && s.alive[rank] {
				s.logf("coordinator: fault injection: crashing rank %d at round %d", rank, t)
				s.tm.CrashInjectionsTotal.Inc()
				if err := s.conns[rank].Send(CrashMsg{Round: t}); err != nil {
					s.logf("coordinator: crash directive to %d: %v (already gone)", rank, err)
				}
				s.markDead(rank, t)
			}
		}
	}
	// Opportunistically admit any restarted worker, then block for the
	// schedule's rejoiners.
	for {
		select {
		case req := <-s.rejoinCh:
			s.admitRejoin(req, t)
			continue
		default:
		}
		break
	}
	if s.schedActive != nil {
		for rank := 0; rank < len(s.schedActive); rank++ {
			if !s.schedActive[rank] || s.alive[rank] {
				continue
			}
			if err := s.awaitRejoin(rank, t); err != nil {
				return err
			}
		}
	}
	s.attempt = 0
	return s.canContinue()
}

// awaitRejoin blocks until the scheduled rejoiner for rank completes its
// handshake (other valid rejoiners arriving meanwhile are admitted too).
func (s *CoordinatorServer) awaitRejoin(rank, t int) error {
	s.logf("coordinator: waiting for rank %d to rejoin at round %d", rank, t)
	deadline := time.After(s.RejoinWait)
	for !s.alive[rank] {
		select {
		case req := <-s.rejoinCh:
			s.admitRejoin(req, t)
		case <-deadline:
			return fmt.Errorf("transport: rank %d did not rejoin within %v of round %d (restart it with -resume)",
				rank, s.RejoinWait, t)
		}
	}
	return nil
}

// admitRejoin validates a rejoin handshake and, if sound, re-installs the
// worker: new connection, new peer address, fresh reader goroutine.
func (s *CoordinatorServer) admitRejoin(req rejoinReq, t int) {
	rj := req.msg
	reject := func(reason string) {
		s.logf("coordinator: rejecting rejoin of rank %d: %s", rj.Rank, reason)
		req.conn.Send(RejoinNack{Reason: reason})
		req.conn.Close()
	}
	switch {
	case rj.Rank < 0 || rj.Rank >= s.total:
		reject(fmt.Sprintf("rank %d out of range (fleet has %d ranks)", rj.Rank, s.total))
		return
	case s.alive[rj.Rank]:
		reject(fmt.Sprintf("rank %d is still alive", rj.Rank))
		return
	case rj.NextRound != s.deadSince[rj.Rank]:
		reject(fmt.Sprintf("snapshot resumes at round %d but rank %d died at round %d boundary — the worker lost its last committed snapshot",
			rj.NextRound, rj.Rank, s.deadSince[rj.Rank]))
		return
	}
	s.conns[rj.Rank] = req.conn
	s.addrs[rj.Rank] = rj.ListenAddr
	s.alive[rj.Rank] = true
	s.gen[rj.Rank]++
	s.addrsDirty = true
	if err := req.conn.Send(RejoinAck{Round: t, N: s.total, Addrs: append([]string(nil), s.addrs...)}); err != nil {
		s.logf("coordinator: rejoin ack to %d failed: %v", rj.Rank, err)
		s.markDead(rj.Rank, t)
		return
	}
	go s.readConn(rj.Rank, s.gen[rj.Rank], req.conn)
	s.tm.RejoinsTotal.Inc()
	s.tm.ConnectsTotal.Inc()
	s.logf("coordinator: rank %d rejoined at round %d (peer addr %s)", rj.Rank, t, rj.ListenAddr)
}

// markDead records a lost worker and closes its connection.
func (s *CoordinatorServer) markDead(rank, round int) {
	if !s.alive[rank] {
		return
	}
	s.alive[rank] = false
	s.deadSince[rank] = round
	s.conns[rank].Close()
}

func (s *CoordinatorServer) aliveCount() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// canContinue checks the fleet can still execute rounds after losses: at
// least two effective participants, and a planner able to re-plan over a
// partial fleet when anyone is gone.
func (s *CoordinatorServer) canContinue() error {
	eff := s.effectiveActive()
	if eff == nil {
		return nil
	}
	if s.ap == nil {
		return fmt.Errorf("transport: lost a worker but algorithm %q cannot re-plan over a partial fleet", s.Task.AlgoName())
	}
	n := 0
	for _, a := range eff {
		if a {
			n++
		}
	}
	if n < 2 {
		return fmt.Errorf("transport: only %d effective workers remain", n)
	}
	return nil
}

// effectiveActive combines the fault schedule's and trace replay's
// membership with detected liveness. nil means "everyone" — the fault-free,
// trace-free, loss-free fast path that keeps the planner on the same stream
// as a plain run. (With membership replay on, the slice is non-nil every
// round even when the whole fleet is present, matching the in-process
// SAPSTrace planner's unconditional PlanActive stream.)
func (s *CoordinatorServer) effectiveActive() []bool {
	if s.schedActive == nil && s.traceActive == nil && s.aliveCount() == s.total {
		return nil
	}
	eff := make([]bool, s.total)
	for r := range eff {
		eff[r] = s.alive[r]
		if s.schedActive != nil && r < len(s.schedActive) {
			eff[r] = eff[r] && s.schedActive[r]
		}
		if s.traceActive != nil && r < len(s.traceActive) {
			eff[r] = eff[r] && s.traceActive[r]
		}
	}
	return eff
}

// plan implements the driver's planner: the schedule ∧ liveness membership
// through the churn planner path, or the base planner when everyone is
// present. Re-invoked on a re-planned round with the same t (the schedule
// part is cached; only liveness changed).
func (s *CoordinatorServer) plan(t int) core.RoundPlan {
	if t != s.schedRound {
		panic(fmt.Sprintf("transport: plan(%d) outside round %d", t, s.schedRound))
	}
	eff := s.effectiveActive()
	if eff == nil {
		return s.base.Plan(t)
	}
	return s.ap.PlanActive(t, eff)
}

// collectRank picks the rank holding the global model: the server for hub
// algorithms (which must have survived), else the lowest surviving trainer.
func (s *CoordinatorServer) collectRank(rec algos.Recipe) int {
	if r := rec.ServerRank(); r >= 0 {
		if s.alive[r] {
			return r
		}
		return -1
	}
	for r := 0; r < s.total; r++ {
		if s.alive[r] {
			return r
		}
	}
	return -1
}

// tcpControl implements engine.Control over the coordinator's worker
// connections: broadcast the round's control message, then hold the barrier
// until every *active* worker reports back with its measured flows. A
// worker loss mid-round triggers the abort protocol: every survivor rolls
// back to its round-boundary snapshot and acknowledges, the lost rank is
// marked dead, and errRoundAborted tells the round loop to re-plan.
type tcpControl CoordinatorServer

// planActive reports whether rank participates in the plan.
func planActive(plan core.RoundPlan, rank int) bool {
	return plan.Active == nil || (rank < len(plan.Active) && plan.Active[rank])
}

// RunRound implements engine.Control (one attempt).
func (s *tcpControl) RunRound(plan core.RoundPlan) (engine.ControlReport, error) {
	if err := s.pattern.Validate(plan, s.total); err != nil {
		return engine.ControlReport{}, err
	}
	t := plan.Round
	attempt := s.attempt
	s.attempt++
	// The dirty flag clears only once the round succeeds: an aborted
	// attempt may have left some survivors un-notified, so every retry
	// carries the fresh book again.
	var addrs []string
	if s.addrsDirty {
		addrs = append([]string(nil), s.addrs...)
	}

	// Broadcast to every living worker (inactive ones stay silent but need
	// the round marker, address updates, and a potential later Abort).
	for rank := 0; rank < s.total; rank++ {
		if !s.alive[rank] {
			continue
		}
		peer := -1
		if rank < len(plan.Peer) {
			peer = plan.Peer[rank]
		}
		msg := RoundMsg{Round: t, Seed: plan.Seed, Peer: peer, Active: plan.Active, Attempt: attempt, Addrs: addrs}
		if err := s.conns[rank].Send(msg); err != nil {
			(*CoordinatorServer)(s).markDead(rank, t)
			if planActive(plan, rank) {
				return engine.ControlReport{}, s.abort(plan, rank, fmt.Errorf("notify failed: %w", err))
			}
		}
	}

	// Collect reports from the active set.
	reports := make([]engine.NodeReport, s.total)
	seen := make([]bool, s.total)
	expected := 0
	for rank := 0; rank < s.total; rank++ {
		if s.alive[rank] && planActive(plan, rank) {
			expected++
		}
	}
	got := 0
	for got < expected {
		cm := <-s.inbox
		if cm.gen != s.gen[cm.rank] || !s.alive[cm.rank] {
			continue // stale message from a previous incarnation
		}
		if cm.err != nil {
			(*CoordinatorServer)(s).markDead(cm.rank, t)
			if planActive(plan, cm.rank) && !seen[cm.rank] {
				return engine.ControlReport{}, s.abort(plan, cm.rank, cm.err)
			}
			continue
		}
		switch m := cm.msg.(type) {
		case RoundEnd:
			if m.Round != t || m.Attempt != attempt || m.Rank != cm.rank {
				return engine.ControlReport{}, fmt.Errorf("transport: round %d attempt %d: unexpected report %+v from %d", t, attempt, m, cm.rank)
			}
			if seen[m.Rank] {
				return engine.ControlReport{}, fmt.Errorf("transport: round %d: duplicate report for rank %d", t, m.Rank)
			}
			seen[m.Rank] = true
			reports[m.Rank] = engine.NodeReport{
				Loss:       m.Loss,
				Trained:    m.Trained,
				PayloadLen: m.PayloadLen,
				Flows:      m.Flows,
			}
			got++
		case RoundFailed:
			if m.Round != t {
				continue // stale failure from an aborted attempt
			}
			dead := m.Peer
			if dead >= 0 && dead < s.total && s.alive[dead] {
				(*CoordinatorServer)(s).markDead(dead, t)
			}
			return engine.ControlReport{}, s.abort(plan, dead, fmt.Errorf("rank %d reported: %s", m.Rank, m.Reason))
		default:
			return engine.ControlReport{}, fmt.Errorf("transport: round %d: unexpected %T from %d", t, cm.msg, cm.rank)
		}
	}

	rep := engine.ControlReport{}
	lossSum, trained := 0.0, 0
	for _, nr := range reports {
		if nr.PayloadLen > rep.PayloadLen {
			rep.PayloadLen = nr.PayloadLen
		}
		if nr.Trained && !math.IsNaN(nr.Loss) {
			lossSum += nr.Loss
			trained++
		}
	}
	if trained > 0 {
		rep.MeanLoss = lossSum / float64(trained)
	}
	rep.Pairs = engine.AggregateFlows(reports)
	s.addrsDirty = false
	return rep, nil
}

// abort cancels the round attempt on every survivor: broadcast Abort, then
// drain each living connection until its AbortAck (discarding the attempt's
// RoundEnd/RoundFailed stragglers). Returns the errRoundAborted the round
// loop retries on.
func (s *tcpControl) abort(plan core.RoundPlan, lostRank int, cause error) error {
	t := plan.Round
	s.tm.AbortsTotal.Inc()
	pending := map[int]bool{}
	for rank := 0; rank < s.total; rank++ {
		if !s.alive[rank] {
			continue
		}
		if err := s.conns[rank].Send(Abort{Round: t}); err != nil {
			(*CoordinatorServer)(s).markDead(rank, t)
			continue
		}
		pending[rank] = true
	}
	for len(pending) > 0 {
		cm := <-s.inbox
		if cm.gen != s.gen[cm.rank] || !pending[cm.rank] {
			continue
		}
		if cm.err != nil {
			(*CoordinatorServer)(s).markDead(cm.rank, t)
			delete(pending, cm.rank)
			continue
		}
		if ack, ok := cm.msg.(AbortAck); ok && ack.Round == t {
			delete(pending, cm.rank)
		}
		// Anything else (RoundEnd, RoundFailed of the dying attempt) is
		// discarded: the connection is FIFO, so the ack closes the attempt.
	}
	return &errRoundAborted{round: t, rank: lostRank, cause: cause}
}

// collect gathers the final model from the given rank (Algorithm 1 line 8)
// and releases the workers.
func (s *CoordinatorServer) collect(rank int) ([]float64, error) {
	if err := s.conns[rank].Send(CollectRequest{}); err != nil {
		return nil, err
	}
	var final FinalModel
	for {
		cm := <-s.inbox
		if cm.rank != rank || cm.gen != s.gen[rank] {
			continue
		}
		if cm.err != nil {
			return nil, fmt.Errorf("transport: collect: %w", cm.err)
		}
		fm, ok := cm.msg.(FinalModel)
		if !ok {
			return nil, fmt.Errorf("transport: collect got %T", cm.msg)
		}
		final = fm
		break
	}
	for rank := 0; rank < s.total; rank++ {
		if !s.alive[rank] {
			continue
		}
		if err := s.conns[rank].Send(Done{}); err != nil {
			log.Printf("transport: done to %d: %v", rank, err)
		}
	}
	s.logf("coordinator: collected %d parameters, done", len(final.Params))
	return final.Params, nil
}
