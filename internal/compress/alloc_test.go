package compress

import (
	"testing"

	"sapspsgd/internal/rng"
)

// The hot-path contract (see ISSUE/DESIGN): Top-k with error feedback and
// the shared-mask extract path must be allocation-free in steady state. The
// tests enforce it with AllocsPerRun; the benchmarks report it for
// inspection with -benchmem / ReportAllocs.

func randVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func TestErrorFeedbackSteadyStateZeroAlloc(t *testing.T) {
	const n, k = 4096, 64
	ef := NewErrorFeedback(n)
	x := randVec(n, 1)
	for i := 0; i < 3; i++ { // warm up: grow the internal buffers once
		ef.CompressTopK(x, k)
	}
	if allocs := testing.AllocsPerRun(50, func() { ef.CompressTopK(x, k) }); allocs != 0 {
		t.Fatalf("ErrorFeedback.CompressTopK: %v allocs/op in steady state, want 0", allocs)
	}
}

func TestTopKIntoSteadyStateZeroAlloc(t *testing.T) {
	const n, k = 4096, 64
	x := randVec(n, 2)
	var out SparseVec
	var mags []float64
	mags = TopKInto(&out, mags, x, k)
	if allocs := testing.AllocsPerRun(50, func() { mags = TopKInto(&out, mags, x, k) }); allocs != 0 {
		t.Fatalf("TopKInto: %v allocs/op in steady state, want 0", allocs)
	}
}

func TestMaskedExtractSteadyStateZeroAlloc(t *testing.T) {
	const n = 4096
	x := randVec(n, 3)
	var mask []bool
	var payload []float64
	mask = MaskInto(mask, 7, 0, n, 100)
	payload = ExtractInto(payload, x, mask)
	if allocs := testing.AllocsPerRun(50, func() {
		mask = MaskInto(mask, 7, 1, n, 100)
		payload = ExtractInto(payload, x, mask)
	}); allocs != 0 {
		t.Fatalf("MaskInto+ExtractInto: %v allocs/op in steady state, want 0", allocs)
	}
}

func TestTopKIntoMatchesTopK(t *testing.T) {
	x := randVec(1000, 4)
	for _, k := range []int{0, 1, 17, 500, 1000, 2000} {
		want := TopK(x, k)
		var out SparseVec
		TopKInto(&out, nil, x, k)
		if out.N != want.N || len(out.Idx) != len(want.Idx) {
			t.Fatalf("k=%d: shape (%d,%d) != (%d,%d)", k, out.N, len(out.Idx), want.N, len(want.Idx))
		}
		for i := range want.Idx {
			if out.Idx[i] != want.Idx[i] || out.Val[i] != want.Val[i] {
				t.Fatalf("k=%d entry %d: (%d,%v) != (%d,%v)", k, i, out.Idx[i], out.Val[i], want.Idx[i], want.Val[i])
			}
		}
	}
}

// BenchmarkErrorFeedbackCompressTopK is the acceptance benchmark for the
// pooled hot path: allocs/op must read 0 in steady state.
func BenchmarkErrorFeedbackCompressTopK(b *testing.B) {
	const n, k = 1 << 16, 650 // paper scale: c = 100 over a 65k-param model
	ef := NewErrorFeedback(n)
	x := randVec(n, 5)
	ef.CompressTopK(x, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.CompressTopK(x, k)
	}
}

func BenchmarkTopKInto(b *testing.B) {
	const n, k = 1 << 16, 650
	x := randVec(n, 6)
	var out SparseVec
	var mags []float64
	mags = TopKInto(&out, mags, x, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mags = TopKInto(&out, mags, x, k)
	}
}

func BenchmarkMaskedExtract(b *testing.B) {
	const n = 1 << 16
	x := randVec(n, 7)
	var mask []bool
	var payload []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask = MaskInto(mask, 7, i, n, 100)
		payload = ExtractInto(payload, x, mask)
	}
	_ = payload
}
