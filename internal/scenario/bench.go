package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// BenchSchemaVersion is the BENCH.json schema. The CI regression gate
// refuses to compare files of different versions, so schema changes require
// regenerating the committed baseline in the same commit.
//
// v2 added the Perf rows (cmd/fleetperf's round-loop microbenchmarks with
// per-row regression tolerances).
const BenchSchemaVersion = 2

// BenchFile is the stable-schema benchmark summary: the per-algorithm
// traffic smoke rows (written by the repository's bench suite) and the
// fleet-scenario shard sweeps (written by cmd/fleetbench and the bench
// suite's 512-node sweep). Byte totals are deterministic and diffed
// exactly; wall fields are machine-dependent and diffed within a tolerance.
type BenchFile struct {
	SchemaVersion int    `json:"schema_version"`
	Source        string `json:"source"`
	GoMaxProcs    int    `json:"go_max_procs"`

	Algorithms []AlgoRow       `json:"algorithms,omitempty"`
	Scenarios  []ScenarioSweep `json:"scenarios,omitempty"`
	Perf       []PerfRow       `json:"perf,omitempty"`
}

// PerfRow is one cmd/fleetperf round-loop measurement: a (pattern, codec,
// nodes, dim, shards, procs) cell of the sweep grid. BytesMoved is
// deterministic and diffed exactly; NsPerOp is machine-dependent and diffed
// within a tolerance on like machines only; AllocsPerOp is gated everywhere
// (steady-state allocation counts are a property of the code, not the
// machine).
type PerfRow struct {
	// Name uniquely keys the row across files ("pairwise/masked/n64/d1024/s2/p1").
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	Codec   string `json:"codec"`
	Nodes   int    `json:"nodes"`
	Dim     int    `json:"dim"`
	Shards  int    `json:"shards"`
	// Procs is the GOMAXPROCS the row ran under — single-core rows stay
	// comparable against a single-core baseline even when the rest of the
	// file was produced on a wide machine.
	Procs  int `json:"procs"`
	Rounds int `json:"rounds"`

	WallSeconds float64 `json:"wall_seconds"`
	NsPerOp     float64 `json:"ns_per_op"`     // wall nanoseconds per round
	AllocsPerOp float64 `json:"allocs_per_op"` // heap allocations per round
	BytesMoved  int64   `json:"bytes_moved"`   // wire bytes over the measured rounds
	// PeakRSSBytes is the process's peak resident memory over the cell (the
	// kernel's VmHWM, reset per cell on Linux). It is what catches an
	// accidental O(N²) reintroduction at large N, so the differ gates it on
	// every machine (memory footprints, unlike wall times, travel).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`

	// MaxNsRegress, MaxAllocRegress and MaxRSSRegress are per-row regression
	// tolerances carried by the baseline file (fractions: 0.3 = +30%). Zero
	// means the differ's defaults apply. Hand-edit the committed baseline to
	// widen a row known to be noisy.
	MaxNsRegress    float64 `json:"max_ns_regress,omitempty"`
	MaxAllocRegress float64 `json:"max_alloc_regress,omitempty"`
	MaxRSSRegress   float64 `json:"max_rss_regress,omitempty"`
}

// AlgoRow is one algorithm's traffic-smoke measurement.
type AlgoRow struct {
	Algorithm      string  `json:"algorithm"`
	BytesPerRound  int64   `json:"bytes_per_round_per_worker"`
	SimSeconds     float64 `json:"sim_comm_seconds"`
	WallMsPerRound float64 `json:"wall_ms_per_round"`
}

// ScenarioSweep is one scenario executed at several shard counts.
type ScenarioSweep struct {
	Name   string   `json:"name"`
	Algo   string   `json:"algo"`
	Nodes  int      `json:"nodes"`
	Rounds int      `json:"rounds"`
	Runs   []Result `json:"runs"`
	// Speedup is the serial (fewest-shards) wall time over the
	// most-sharded wall time — the headline parallel speedup.
	Speedup float64 `json:"speedup,omitempty"`
}

// ComputeSpeedup fills Speedup from the fewest- and most-sharded runs,
// whatever order the sweep recorded them in.
func (s *ScenarioSweep) ComputeSpeedup() {
	if len(s.Runs) < 2 {
		return
	}
	narrow, wide := s.Runs[0], s.Runs[0]
	for _, run := range s.Runs[1:] {
		if run.Shards < narrow.Shards {
			narrow = run
		}
		if run.Shards > wide.Shards {
			wide = run
		}
	}
	if narrow.Shards != wide.Shards && wide.WallSeconds > 0 {
		s.Speedup = narrow.WallSeconds / wide.WallSeconds
	}
}

// WriteBench writes the summary with the canonical encoding.
func WriteBench(path string, f *BenchFile) error {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ReadBench loads a summary file.
func ReadBench(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Diff compares a fresh summary against the committed baseline and returns
// an error describing every regression:
//
//   - any byte-count difference on an algorithm or scenario run present in
//     both files (traffic is deterministic — a byte change is a behavior
//     change, not noise);
//   - byte counts disagreeing across shard counts within the fresh file
//     (the sharded runtime's determinism contract);
//   - wall time regressing by more than maxWallRegress (0.25 = +25%) on
//     either pool — the algorithm rows' ms/round total or the scenario
//     runs' seconds total — summed over shared rows because individual
//     sub-millisecond timings are noise. Wall times are only comparable
//     between like machines, so this check runs only when WallComparable
//     (regenerate the baseline from a CI-produced BENCH.json artifact to
//     arm it there); byte counts are gated unconditionally.
//   - fleetperf rows (matched by name): bytes moved exactly, allocs/op and
//     peak RSS within the baseline row's tolerances on every machine, and
//     ns/op within the row's tolerance when the files are wall-comparable
//     and the row ran at the same GOMAXPROCS in both.
//
// Rows present in only one file are ignored — adding a scenario must not
// require touching the baseline in the same commit, and removals surface in
// review.
func Diff(baseline, fresh *BenchFile, maxWallRegress float64) error {
	if baseline.SchemaVersion != fresh.SchemaVersion {
		return fmt.Errorf("bench diff: schema_version %d vs %d — regenerate the baseline", baseline.SchemaVersion, fresh.SchemaVersion)
	}
	var problems []string
	baseAlgos := map[string]AlgoRow{}
	for _, r := range baseline.Algorithms {
		baseAlgos[r.Algorithm] = r
	}
	for _, r := range fresh.Algorithms {
		b, ok := baseAlgos[r.Algorithm]
		if !ok {
			continue
		}
		if b.BytesPerRound != r.BytesPerRound {
			problems = append(problems, fmt.Sprintf("algorithm %s: bytes/round %d → %d", r.Algorithm, b.BytesPerRound, r.BytesPerRound))
		}
	}
	baseScen := map[string]ScenarioSweep{}
	for _, s := range baseline.Scenarios {
		baseScen[s.Name] = s
	}
	for _, s := range fresh.Scenarios {
		if len(s.Runs) == 0 {
			problems = append(problems, fmt.Sprintf("scenario %s: no runs (truncated summary?)", s.Name))
			continue
		}
		for _, run := range s.Runs[1:] {
			if run.TotalBytes != s.Runs[0].TotalBytes {
				problems = append(problems, fmt.Sprintf("scenario %s: %d shards moved %d bytes but %d shards moved %d — sharding changed traffic",
					s.Name, s.Runs[0].Shards, s.Runs[0].TotalBytes, run.Shards, run.TotalBytes))
			}
		}
		b, ok := baseScen[s.Name]
		if !ok {
			continue
		}
		baseRuns := map[int]Result{}
		for _, run := range b.Runs {
			baseRuns[run.Shards] = run
		}
		for _, run := range s.Runs {
			br, ok := baseRuns[run.Shards]
			if !ok {
				continue
			}
			if br.TotalBytes != run.TotalBytes {
				problems = append(problems, fmt.Sprintf("scenario %s shards=%d: total bytes %d → %d", s.Name, run.Shards, br.TotalBytes, run.TotalBytes))
			}
		}
	}
	problems = append(problems, diffPerf(baseline, fresh, maxWallRegress)...)
	if WallComparable(baseline, fresh) {
		// Algorithm rows (per-round milliseconds) and scenario runs
		// (absolute seconds) are different units, so each pool is gated
		// against its own baseline total instead of one mixed sum.
		baseAlgoWall, freshAlgoWall := sharedAlgoWall(baseline, fresh)
		if baseAlgoWall > 0 && freshAlgoWall > baseAlgoWall*(1+maxWallRegress) {
			problems = append(problems, fmt.Sprintf("algorithm wall time %.3f → %.3f ms/round total (+%.0f%%, limit +%.0f%%)",
				baseAlgoWall, freshAlgoWall, 100*(freshAlgoWall/baseAlgoWall-1), 100*maxWallRegress))
		}
		baseScenWall, freshScenWall := sharedScenarioWall(baseline, fresh)
		if baseScenWall > 0 && freshScenWall > baseScenWall*(1+maxWallRegress) {
			problems = append(problems, fmt.Sprintf("scenario wall time %.3fs → %.3fs (+%.0f%%, limit +%.0f%%)",
				baseScenWall, freshScenWall, 100*(freshScenWall/baseScenWall-1), 100*maxWallRegress))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench diff: %d regression(s):\n  %s", len(problems), strings.Join(problems, "\n  "))
	}
	return nil
}

// Default per-row perf tolerances, used when a baseline row does not carry
// its own. Allocation counts get a small absolute slack on top (the runtime
// occasionally charges a row a stray background allocation).
const (
	defaultMaxAllocRegress = 0.10
	allocAbsSlack          = 2.0
	// RSS readings are process-wide and quantized by the allocator, so the
	// gate combines a generous fraction with an absolute floor: a row only
	// fails when it grows past both. A 10k-node planner cell regressing from
	// sparse (tens of MB) to dense (hundreds of MB to GB) clears the gate by
	// an order of magnitude.
	defaultMaxRSSRegress = 0.50
	rssAbsSlackBytes     = int64(64) << 20
)

// diffPerf gates the fleetperf rows shared by name: bytes exactly and
// unconditionally, allocs/op within the row's tolerance everywhere, and
// ns/op within the row's tolerance only between like machines at the same
// per-row GOMAXPROCS.
func diffPerf(baseline, fresh *BenchFile, maxWallRegress float64) []string {
	var problems []string
	basePerf := map[string]PerfRow{}
	for _, r := range baseline.Perf {
		basePerf[r.Name] = r
	}
	for _, r := range fresh.Perf {
		b, ok := basePerf[r.Name]
		if !ok {
			continue
		}
		if b.BytesMoved != r.BytesMoved {
			problems = append(problems, fmt.Sprintf("perf %s: bytes moved %d → %d", r.Name, b.BytesMoved, r.BytesMoved))
		}
		allocTol := b.MaxAllocRegress
		if allocTol == 0 {
			allocTol = defaultMaxAllocRegress
		}
		if r.AllocsPerOp > b.AllocsPerOp*(1+allocTol)+allocAbsSlack {
			problems = append(problems, fmt.Sprintf("perf %s: allocs/op %.1f → %.1f (limit +%.0f%% + %.0f)",
				r.Name, b.AllocsPerOp, r.AllocsPerOp, 100*allocTol, allocAbsSlack))
		}
		if b.PeakRSSBytes > 0 && r.PeakRSSBytes > 0 {
			rssTol := b.MaxRSSRegress
			if rssTol == 0 {
				rssTol = defaultMaxRSSRegress
			}
			if limit := int64(float64(b.PeakRSSBytes)*(1+rssTol)) + rssAbsSlackBytes; r.PeakRSSBytes > limit {
				problems = append(problems, fmt.Sprintf("perf %s: peak RSS %d → %d bytes (limit +%.0f%% + %d MB)",
					r.Name, b.PeakRSSBytes, r.PeakRSSBytes, 100*rssTol, rssAbsSlackBytes>>20))
			}
		}
		if WallComparable(baseline, fresh) && b.Procs == r.Procs && b.NsPerOp > 0 {
			nsTol := b.MaxNsRegress
			if nsTol == 0 {
				nsTol = maxWallRegress
			}
			if r.NsPerOp > b.NsPerOp*(1+nsTol) {
				problems = append(problems, fmt.Sprintf("perf %s: ns/op %.0f → %.0f (+%.0f%%, limit +%.0f%%)",
					r.Name, b.NsPerOp, r.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1), 100*nsTol))
			}
		}
	}
	return problems
}

// WallComparable reports whether the two summaries' wall timings can be
// meaningfully compared: they must come from machines of the same width.
// Diff and cmd/fleetbench's reporting share this one rule.
func WallComparable(baseline, fresh *BenchFile) bool {
	return baseline.GoMaxProcs == fresh.GoMaxProcs
}

// sharedAlgoWall sums wall ms/round over the algorithms the two files
// share, so one file carrying extra rows does not skew the comparison.
func sharedAlgoWall(baseline, fresh *BenchFile) (baseWall, freshWall float64) {
	freshAlgos := map[string]AlgoRow{}
	for _, r := range fresh.Algorithms {
		freshAlgos[r.Algorithm] = r
	}
	for _, b := range baseline.Algorithms {
		if f, ok := freshAlgos[b.Algorithm]; ok {
			baseWall += b.WallMsPerRound
			freshWall += f.WallMsPerRound
		}
	}
	return baseWall, freshWall
}

// sharedScenarioWall sums wall seconds over the (scenario, shards) runs the
// two files share.
func sharedScenarioWall(baseline, fresh *BenchFile) (baseWall, freshWall float64) {
	freshScen := map[string]ScenarioSweep{}
	for _, s := range fresh.Scenarios {
		freshScen[s.Name] = s
	}
	for _, b := range baseline.Scenarios {
		f, ok := freshScen[b.Name]
		if !ok {
			continue
		}
		fruns := map[int]Result{}
		for _, run := range f.Runs {
			fruns[run.Shards] = run
		}
		for _, run := range b.Runs {
			if fr, ok := fruns[run.Shards]; ok {
				baseWall += run.WallSeconds
				freshWall += fr.WallSeconds
			}
		}
	}
	return baseWall, freshWall
}
