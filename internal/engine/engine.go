// Package engine owns the canonical distributed-training execution core:
// Algorithm 1 (coordinator round loop), Algorithm 2 (worker round), and —
// via the pluggable Planner — Algorithm 3 (adaptive peer selection). Since
// the Pattern/Codec generalization the same core drives not only SAPS-PSGD
// but every baseline the paper compares against: an algorithm is a
// composition of
//
//   - a Planner producing the per-round control message (matching, seed,
//     active set);
//   - a Pattern describing who talks to whom within the round (pairwise
//     matched gossip, static neighborhood, hub fan-in, exact all-reduce,
//     complete all-gather);
//   - per-rank Codecs turning model/gradient vectors into exact wire bytes
//     (dense, shared-seed masked, top-k + error feedback, QSGD, random-k);
//   - Nodes holding the algorithm's local state transition.
//
// The engine talks to the world only through two small interfaces:
//
//   - Transport: the peer-to-peer payload exchange (data plane);
//   - Ledger: traffic and communication-time accounting (clock), charged
//     from the bytes the codecs actually produced — never from analytic
//     formulas.
//
// Three backends run the identical round logic:
//
//   - memtransport: in-process rendezvous, zero-time CountingLedger — the
//     pure-algorithm backend behind the internal/algos simulations;
//   - simtransport: the same rendezvous charged against a netsim bandwidth
//     matrix (*netsim.Ledger satisfies Ledger), reproducing the paper's
//     byte- and second-accurate simulation;
//   - internal/transport: real TCP — WorkerClient runs WorkerRound over gob
//     connections and CoordinatorServer runs Driver over its control conns.
//
// See DESIGN.md §2 for the layering and for how to add a new algorithm or
// backend.
package engine

import (
	"slices"

	"sapspsgd/internal/core"
)

// Transport is a node's handle to the data plane: Exchange swaps one
// payload with one peer and returns the peer's payload. Both endpoints of an
// exchanging pair call Exchange with each other exactly once per meeting; a
// pattern may meet the same pair several times per round (the exchanges pair
// up in FIFO order per direction), and a one-way transfer passes nil as its
// payload. Implementations must support concurrent calls from distinct
// nodes. The payload slice is borrowed by the transport (and, in-process, by
// the peer) until the round barrier, so callers must not mutate it until the
// round completes.
//
// Liveness contract for custom backends: when one endpoint's Exchange fails,
// the peer's Exchange must also return (with a payload or an error) rather
// than block forever — the engine's round barrier waits for every node. TCP
// satisfies this naturally (a dead endpoint breaks the peer's connection);
// the in-process hub cannot fail between valid peers, and patterns reject
// malformed plans before dispatch.
type Transport interface {
	Exchange(round, self, peer int, payload []float64) ([]float64, error)
}

// Ledger is the engine's clock and traffic account. *netsim.Ledger satisfies
// it (bandwidth-modelled simulated time); CountingLedger is the zero-time
// variant for in-memory and real-network runs. Implementations need not be
// safe for concurrent use: the Driver charges exchanges centrally, once per
// communicating pair per round, from the coordinator loop.
type Ledger interface {
	// Exchange records a bidirectional transfer between nodes i and j in
	// the current round: i sends sendBytes to j and receives recvBytes.
	Exchange(i, j int, sendBytes, recvBytes int64)
	// EndRound closes the current round and returns its wall time in
	// seconds (0 for ledgers without a time model).
	EndRound() float64
}

// Planner produces the per-round control message (W_t, t, s) — Algorithm 1
// line 6, with Algorithm 3 inside. *core.Coordinator satisfies it; the
// baselines plug in static or fraction-sampling planners.
type Planner interface {
	Plan(t int) core.RoundPlan
}

// PlannerFunc adapts a function to the Planner interface.
type PlannerFunc func(t int) core.RoundPlan

// Plan implements Planner.
func (f PlannerFunc) Plan(t int) core.RoundPlan { return f(t) }

// PairTraffic is one unordered pair's measured round traffic, built from the
// bytes each side's codec actually encoded (I < J; IToJ is what I shipped).
type PairTraffic struct {
	I, J       int
	IToJ, JToI int64
}

// ControlReport aggregates one executed round across all nodes.
type ControlReport struct {
	// MeanLoss is the mean local training loss over nodes that trained.
	MeanLoss float64
	// PayloadLen is the largest outbound payload length (in wire words)
	// any node produced — the shared-mask population count under the
	// masked codec.
	PayloadLen int
	// Pairs is the round's measured traffic, one entry per communicating
	// unordered pair, ordered by (I, J).
	Pairs []PairTraffic
}

// Control is the coordinator's channel to its nodes: RunRound delivers the
// plan to every node, executes the pattern's round on each, and blocks until
// all complete (the synchronous round barrier of Algorithm 1 line 7).
type Control interface {
	RunRound(plan core.RoundPlan) (ControlReport, error)
}

// RoundStats summarizes one completed round.
type RoundStats struct {
	// Plan is the control message the round ran under.
	Plan core.RoundPlan
	// PayloadLen is the number of wire words in the largest payload any
	// node transmitted (the shared-mask population count for SAPS; 0 when
	// nobody communicated).
	PayloadLen int
	// Loss is the mean local training loss over participating nodes.
	Loss float64
	// Bytes is the round's total measured wire traffic.
	Bytes int64
	// CommSeconds is the ledger's simulated round wall time (0 for ledgers
	// without a time model).
	CommSeconds float64
}

// AggregateFlows folds per-node sender-attributed flows into per-pair
// traffic, using only each sender's own measurement (both endpoints compute
// WireBytes over the same words, so the receiver's number is redundant).
// reports is rank-indexed; entries for absent nodes are zero values. The
// returned slice is freshly allocated; the in-process runtimes use a pooled
// flowAgg instead so steady-state rounds do not allocate.
func AggregateFlows(reports []NodeReport) []PairTraffic {
	var agg flowAgg
	return append([]PairTraffic(nil), agg.aggregate(reports)...)
}

// flowAgg is the reusable flow aggregator behind AggregateFlows and the
// in-process runtimes' per-round reports: the pair index map and the output
// slice persist across rounds, so a steady-state aggregate performs no heap
// allocations. Not safe for concurrent use; each runtime owns one.
type flowAgg struct {
	idx   map[uint64]int
	pairs []PairTraffic
}

// aggregate folds reports into per-pair traffic ordered by (I, J). The
// returned slice aliases the aggregator's pooled storage and is valid until
// the next aggregate call.
func (a *flowAgg) aggregate(reports []NodeReport) []PairTraffic {
	if a.idx == nil {
		a.idx = make(map[uint64]int)
	} else {
		clear(a.idx)
	}
	a.pairs = a.pairs[:0]
	for rank, rep := range reports {
		for _, f := range rep.Flows {
			if f.Sent == 0 && f.Recv == 0 {
				continue
			}
			i, j := min(rank, f.Peer), max(rank, f.Peer)
			key := uint64(uint32(i))<<32 | uint64(uint32(j))
			p, ok := a.idx[key]
			if !ok {
				p = len(a.pairs)
				a.idx[key] = p
				a.pairs = append(a.pairs, PairTraffic{I: i, J: j})
			}
			if rank < f.Peer {
				a.pairs[p].IToJ += f.Sent
			} else {
				a.pairs[p].JToI += f.Sent
			}
		}
	}
	// Drop pairs whose sender-attributed bytes net to zero (both endpoints
	// reported empty sends), matching the historical output exactly.
	w := 0
	for _, p := range a.pairs {
		if p.IToJ == 0 && p.JToI == 0 {
			continue
		}
		a.pairs[w] = p
		w++
	}
	a.pairs = a.pairs[:w]
	slices.SortFunc(a.pairs, func(x, y PairTraffic) int {
		if x.I != y.I {
			return x.I - y.I
		}
		return x.J - y.J
	})
	return a.pairs
}
