// Package netsim models the communication fabric between workers: pairwise
// bandwidth matrices (including the paper's measured 14-city matrix of
// Fig. 1), the threshold filtering of Algorithm 1, and byte/time ledgers
// that account for every message the training algorithms exchange.
package netsim

import (
	"fmt"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/rng"
)

// Bandwidth holds a symmetric pairwise bandwidth environment in MB/s. As in
// the paper (§II-C), the effective bandwidth of a link is the minimum of the
// two directions: B_ij = B_ji = min(B_ij, B_ji).
//
// Two storage modes share the one API. Dense mode (NewBandwidth,
// RandomUniform, Clustered, FourteenCities) materializes the full N×N matrix
// and is right up to a few thousand workers. Sparse mode (NewSparseBandwidth,
// SparseRandomUniform, SparseClustered) stores only the existing links in a
// CSR-style adjacency layout — absent pairs read as 0 MB/s — so a 50k-node
// environment costs O(E) floats instead of ~20 GB of matrix. Callers that
// must scale iterate links via ForEachEdge/AppendEdges rather than probing
// all N² pairs.
type Bandwidth struct {
	N    int
	mbps []float64 // dense mode: row-major N×N, symmetric, zero diagonal

	// Sparse mode (mbps == nil): CSR over both edge directions, neighbor
	// lists sorted ascending. off has N+1 entries; nbr/wts are parallel.
	off []int
	nbr []int32
	wts []float64
}

// Sparse reports whether b uses the adjacency-list representation.
func (b *Bandwidth) Sparse() bool { return b.mbps == nil && b.off != nil }

// Links returns the number of undirected links with positive bandwidth that
// the representation stores (dense mode counts nonzero pairs).
func (b *Bandwidth) Links() int {
	if b.Sparse() {
		return len(b.nbr) / 2
	}
	count := 0
	b.ForEachEdge(0, func(int, int, float64) { count++ })
	return count
}

// NewBandwidth builds a symmetric Bandwidth from a possibly asymmetric
// matrix of link speeds in MB/s, applying the min() symmetrization.
func NewBandwidth(raw [][]float64) *Bandwidth {
	n := len(raw)
	b := &Bandwidth{N: n, mbps: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		if len(raw[i]) != n {
			panic(fmt.Sprintf("netsim: row %d has %d entries, want %d", i, len(raw[i]), n))
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := raw[i][j]
			if raw[j][i] < v {
				v = raw[j][i]
			}
			if v < 0 {
				v = 0
			}
			b.mbps[i*n+j] = v
		}
	}
	return b
}

// MBps returns the symmetric link bandwidth between workers i and j in
// megabytes per second (0 for i == j and for absent sparse links).
func (b *Bandwidth) MBps(i, j int) float64 {
	if b.mbps != nil {
		return b.mbps[i*b.N+j]
	}
	lo, hi := b.off[i], b.off[i+1]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(b.nbr[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < b.off[i+1] && int(b.nbr[lo]) == j {
		return b.wts[lo]
	}
	return 0
}

// ForEachEdge calls fn for every link with positive bandwidth at least
// thresh, in lexicographic (u < v) order — the same enumeration order as
// Edges, without allocating. Sparse mode walks only the stored adjacency.
func (b *Bandwidth) ForEachEdge(thresh float64, fn func(u, v int, w float64)) {
	if b.mbps != nil {
		for i := 0; i < b.N; i++ {
			row := b.mbps[i*b.N : (i+1)*b.N]
			for j := i + 1; j < b.N; j++ {
				if w := row[j]; w >= thresh && w > 0 {
					fn(i, j, w)
				}
			}
		}
		return
	}
	for u := 0; u < b.N; u++ {
		for k := b.off[u]; k < b.off[u+1]; k++ {
			v := int(b.nbr[k])
			if v <= u {
				continue
			}
			if w := b.wts[k]; w >= thresh && w > 0 {
				fn(u, v, w)
			}
		}
	}
}

// Filter returns the thresholded adjacency B* of Algorithm 1 (lines 9–12):
// an edge exists iff the link bandwidth is positive and at least thresh MB/s.
func (b *Bandwidth) Filter(thresh float64) [][]bool { return b.FilterInto(nil, thresh) }

// FilterInto is Filter reusing dst's rows when their capacity suffices,
// so steady-state callers allocate nothing. Dense output: do not call it
// for very large sparse environments.
func (b *Bandwidth) FilterInto(dst [][]bool, thresh float64) [][]bool {
	if cap(dst) >= b.N {
		dst = dst[:b.N]
	} else {
		dst = make([][]bool, b.N)
	}
	for i := range dst {
		if cap(dst[i]) >= b.N {
			dst[i] = dst[i][:b.N]
			for j := range dst[i] {
				dst[i][j] = false
			}
		} else {
			dst[i] = make([]bool, b.N)
		}
	}
	b.ForEachEdge(thresh, func(u, v int, _ float64) {
		dst[u][v] = true
		dst[v][u] = true
	})
	return dst
}

// Edges returns all links with bandwidth at least thresh as weighted edges
// (weight = bandwidth in MB/s), with U < V.
func (b *Bandwidth) Edges(thresh float64) []graph.WeightedEdge {
	return b.AppendEdges(nil, thresh)
}

// AppendEdges appends the Edges result to dst (reusing its capacity) and
// returns the extended slice — the allocation-free form for per-round use.
func (b *Bandwidth) AppendEdges(dst []graph.WeightedEdge, thresh float64) []graph.WeightedEdge {
	b.ForEachEdge(thresh, func(u, v int, w float64) {
		dst = append(dst, graph.WeightedEdge{U: u, V: v, Weight: w})
	})
	return dst
}

// FilterGraph returns the thresholded connectivity as a graph.Graph.
func (b *Bandwidth) FilterGraph(thresh float64) *graph.Graph {
	g := graph.New(b.N)
	b.ForEachEdge(thresh, func(u, v int, _ float64) { g.AddEdge(u, v) })
	return g
}

// MeanBandwidth returns the mean over all N(N-1) ordered off-diagonal pairs
// (absent sparse links count as 0, keeping the two modes comparable).
func (b *Bandwidth) MeanBandwidth() float64 {
	if b.N < 2 {
		return 0
	}
	if b.mbps != nil {
		sum := 0.0
		for i := 0; i < b.N; i++ {
			for j := 0; j < b.N; j++ {
				if i != j {
					sum += b.MBps(i, j)
				}
			}
		}
		return sum / float64(b.N*(b.N-1))
	}
	sum := 0.0
	for _, w := range b.wts {
		sum += w
	}
	return sum / (float64(b.N) * float64(b.N-1))
}

// Cities lists the 14 data-center locations of Fig. 1, in matrix order.
var Cities = []string{
	"AliBeijing", "AliShanghai", "AliShenzhen", "AliZhangjiakou",
	"AmaColumbus", "AmaDublin", "AmaFrankfurtamMain", "AmaLondon",
	"AmaMontreal", "AmaMumbai", "AmaParis", "AmaPortland",
	"AmaSanFrancisco", "AmaSaoPaulo",
}

// fig1Mbits is the measured inter-city network speed matrix of Fig. 1 in
// Mbits/s, transcribed from the paper (rows/columns ordered as Cities;
// diagonal entries were reported as NaN and are stored as 0 here).
var fig1Mbits = [14][14]float64{
	{0, 1.3, 1.5, 1.2, 1.6, 1.6, 1.5, 1.6, 1.7, 1.4, 1.7, 1.5, 1.6, 1.5},
	{1.3, 0, 1.5, 1.2, 1.5, 1.5, 1.5, 1.6, 1.5, 1.2, 1.5, 1.5, 1.4, 1.6},
	{1.4, 1.3, 0, 1.3, 1.5, 1.6, 1.4, 1.7, 1.3, 1.6, 1.7, 1.4, 1.6, 1.4},
	{1.2, 1.3, 1.4, 0, 1.5, 1.4, 1.5, 1.5, 1.5, 1.2, 1.5, 1.6, 1.6, 1.6},
	{11.0, 2.2, 27.7, 6.8, 0, 82.5, 73.1, 82.2, 132.5, 49.1, 69.5, 84.8, 98.0, 57.4},
	{6.8, 1.1, 20.2, 4.7, 82.6, 0, 129.2, 269.2, 78.3, 73.3, 147.1, 50.3, 54.4, 37.0},
	{27.3, 1.1, 15.1, 21.8, 83.2, 184.8, 0, 331.2, 86.4, 76.8, 261.1, 62.4, 70.6, 42.3},
	{0.2, 13.9, 27.6, 14.8, 60.8, 195.3, 276.2, 0, 63.3, 75.4, 323.1, 50.3, 62.6, 39.8},
	{0.2, 16.9, 5.7, 1.1, 166.8, 83.9, 64.0, 61.6, 0, 40.7, 54.0, 80.4, 65.9, 39.1},
	{36.2, 27.4, 1.7, 22.0, 37.5, 48.6, 54.7, 50.0, 35.8, 0, 45.0, 33.5, 39.0, 22.5},
	{36.0, 0.6, 16.8, 21.1, 27.9, 115.1, 247.8, 317.4, 51.6, 47.5, 0, 48.1, 36.8, 24.4},
	{15.6, 28.6, 10.6, 8.1, 94.8, 45.4, 43.8, 46.3, 70.4, 27.0, 45.8, 0, 172.9, 39.4},
	{2.3, 3.9, 22.5, 5.7, 78.3, 45.6, 32.7, 34.5, 47.3, 23.2, 23.7, 134.5, 0, 31.2},
	{0.1, 15.1, 8.2, 15.4, 41.8, 32.7, 39.9, 37.9, 59.6, 25.0, 38.4, 38.2, 39.9, 0},
}

// FourteenCities returns the Fig. 1 bandwidth matrix converted to MB/s
// (Mbits/s ÷ 8) and min()-symmetrized — the 14-worker environment of the
// paper's bandwidth-utilization experiment (Fig. 5a).
func FourteenCities() *Bandwidth {
	raw := make([][]float64, 14)
	for i := range raw {
		raw[i] = make([]float64, 14)
		for j := range raw[i] {
			raw[i][j] = fig1Mbits[i][j] / 8
		}
	}
	return NewBandwidth(raw)
}

// RandomUniform returns an n-worker environment whose pairwise bandwidths
// are drawn uniformly from (lo, hi] MB/s, as in the paper's 32-worker
// environment ((0, 5] MB/s, Fig. 5b). The draw is symmetric by construction.
func RandomUniform(n int, lo, hi float64, r *rng.Source) *Bandwidth {
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := lo + (hi-lo)*(1-r.Float64()) // (lo, hi]
			raw[i][j] = v
			raw[j][i] = v
		}
	}
	return NewBandwidth(raw)
}

// Clustered returns an environment with dense fast links inside clusters and
// slow links across them — a synthetic stand-in for multi-region
// deployments, used by ablation benches.
func Clustered(n, clusters int, fast, slow float64, r *rng.Source) *Bandwidth {
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			base := slow
			if i%clusters == j%clusters {
				base = fast
			}
			v := base * (0.5 + r.Float64()) // ±50% jitter
			raw[i][j] = v
			raw[j][i] = v
		}
	}
	return NewBandwidth(raw)
}
