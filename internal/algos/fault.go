package algos

import (
	"fmt"
	"sort"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/trace"
)

// FaultEvent schedules one worker crash: Rank is dead for rounds
// [Round, Round+RejoinAfter) and rejoins at round Round+RejoinAfter.
// RejoinAfter <= 0 means the worker never returns.
type FaultEvent struct {
	Rank        int
	Round       int
	RejoinAfter int
}

// window returns the event's absence interval [from, to); to < 0 encodes an
// unbounded window.
func (e FaultEvent) window() (from, to int) {
	if e.RejoinAfter <= 0 {
		return e.Round, -1
	}
	return e.Round, e.Round + e.RejoinAfter
}

// covers reports whether round t falls inside the event's absence window.
func (e FaultEvent) covers(t int) bool {
	from, to := e.window()
	return t >= from && (to < 0 || t < to)
}

// FaultMortality is seeded random permanent worker death: before each round,
// every not-yet-dead worker dies with probability Prob, drawn rank-ascending
// from a stream derived from the schedule seed. Deaths stop while the
// mortality-surviving count is at MinAlive, so the fleet never randomly
// shrinks below it. Unlike churn (ChurnModel), mortality is permanent —
// dead workers never rejoin.
type FaultMortality struct {
	Prob     float64
	MinAlive int
}

// FaultSchedule is the deterministic fault-injection plan both runtimes
// honor: the in-process engine excludes scheduled-dead workers from the
// round plan, and the TCP coordinator actually crashes the corresponding
// worker processes at the same boundaries (and waits for scheduled
// rejoiners). Every draw derives from Seed, so the simulated and deployed
// runs compute identical membership — the foundation of the kill-and-rejoin
// equivalence contract.
type FaultSchedule struct {
	// N is the trainer count the schedule covers.
	N int
	// Seed derives the mortality stream (unused without Mortality).
	Seed uint64
	// Events are the scheduled crash/rejoin windows.
	Events []FaultEvent
	// Mortality, when non-nil, adds seeded random permanent deaths.
	Mortality *FaultMortality
}

// Empty reports whether the schedule injects no faults at all.
func (s *FaultSchedule) Empty() bool {
	return s == nil || (len(s.Events) == 0 && s.Mortality == nil)
}

// Validate returns an error describing the first invalid field, if any:
// out-of-range ranks, overlapping windows for one rank, event combinations
// leaving fewer than two workers, or malformed mortality parameters.
func (s *FaultSchedule) Validate() error {
	if s == nil {
		return nil
	}
	if s.N < 2 {
		return fmt.Errorf("algos: fault schedule over %d workers", s.N)
	}
	perRank := map[int][]FaultEvent{}
	for _, e := range s.Events {
		if e.Rank < 0 || e.Rank >= s.N {
			return fmt.Errorf("algos: fault event rank %d of %d workers", e.Rank, s.N)
		}
		if e.Round < 0 {
			return fmt.Errorf("algos: fault event for rank %d at negative round %d", e.Rank, e.Round)
		}
		perRank[e.Rank] = append(perRank[e.Rank], e)
	}
	for rank, evs := range perRank {
		sort.Slice(evs, func(a, b int) bool { return evs[a].Round < evs[b].Round })
		for i := 1; i < len(evs); i++ {
			_, prevTo := evs[i-1].window()
			if prevTo < 0 || evs[i].Round < prevTo {
				return fmt.Errorf("algos: overlapping fault windows for rank %d (round %d overlaps the window starting at %d)",
					rank, evs[i].Round, evs[i-1].Round)
			}
		}
	}
	// At every event start, the event-scheduled absences alone must leave at
	// least two workers (absence counts only change at window boundaries, so
	// checking the starts covers every round).
	maxAbsent := 0
	for _, e := range s.Events {
		absent := 0
		for _, o := range s.Events {
			if o.covers(e.Round) {
				absent++
			}
		}
		if s.N-absent < 2 {
			return fmt.Errorf("algos: fault events leave %d of %d workers at round %d", s.N-absent, s.N, e.Round)
		}
		if absent > maxAbsent {
			maxAbsent = absent
		}
	}
	if m := s.Mortality; m != nil {
		if m.Prob < 0 || m.Prob >= 1 {
			return fmt.Errorf("algos: mortality probability %v", m.Prob)
		}
		if m.MinAlive < 2 || m.MinAlive > s.N {
			return fmt.Errorf("algos: mortality min_alive %d of %d", m.MinAlive, s.N)
		}
		// Mortality guarantees MinAlive survivors, but in the worst case
		// every concurrently crashed rank is one of them: the combination
		// must still leave two active workers at every round.
		if m.MinAlive-maxAbsent < 2 {
			return fmt.Errorf("algos: mortality min_alive %d minus %d concurrently crashed workers can leave fewer than two active (raise min_alive or shrink the crash windows)",
				m.MinAlive, maxAbsent)
		}
	}
	return nil
}

// FaultProcess iterates a FaultSchedule's membership, one round at a time.
// Step must be called exactly once per round in round order (the mortality
// stream is sequential); every process constructed from the same schedule
// produces identical membership, whichever machine it runs on.
type FaultProcess struct {
	sched FaultSchedule
	rnd   *rng.Source
	dead  []bool // mortality deaths (permanent)
	alive int    // N minus mortality deaths
	next  int
}

// NewFaultProcess builds the membership process. The schedule must have been
// validated.
func NewFaultProcess(sched FaultSchedule) *FaultProcess {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	return &FaultProcess{
		sched: sched,
		rnd:   rng.New(sched.Seed).Derive(0xfa017),
		dead:  make([]bool, sched.N),
		alive: sched.N,
	}
}

// Step advances the process to round t (which must be the next unvisited
// round) and returns that round's active set — a fresh slice the caller
// owns. It fails if the combined faults would leave fewer than two workers.
func (p *FaultProcess) Step(t int) ([]bool, error) {
	if t != p.next {
		return nil, fmt.Errorf("algos: fault process stepped to round %d, expected %d", t, p.next)
	}
	p.next++
	if m := p.sched.Mortality; m != nil {
		for i := 0; i < p.sched.N; i++ {
			if p.dead[i] || p.alive <= m.MinAlive {
				// The draw is skipped entirely at the floor, keeping the
				// stream a deterministic function of the death history.
				continue
			}
			if p.rnd.Bernoulli(m.Prob) {
				p.dead[i] = true
				p.alive--
			}
		}
	}
	active := make([]bool, p.sched.N)
	count := 0
	for i := range active {
		active[i] = !p.dead[i] && !p.eventAbsent(i, t)
		if active[i] {
			count++
		}
	}
	if count < 2 {
		return nil, fmt.Errorf("algos: faults leave %d active workers at round %d", count, t)
	}
	return active, nil
}

// eventAbsent reports whether rank is inside a scheduled crash window at t.
func (p *FaultProcess) eventAbsent(rank, t int) bool {
	for _, e := range p.sched.Events {
		if e.Rank == rank && e.covers(t) {
			return true
		}
	}
	return false
}

// SAPSFaults is SAPS-PSGD under the declarative fault schedule: the
// scheduled-dead workers neither train nor communicate, exactly as a crashed
// process would over TCP, and the coordinator matches only the survivors —
// reusing the same PlanActive path the churn variant drives. This is the
// in-process reference the TCP kill-and-rejoin equivalence test compares
// against. Like SAPSChurn it is itself the engine's Planner.
type SAPSFaults struct {
	fleet *Fleet
	eng   *engine.Engine
	coord *core.Coordinator
	proc  *FaultProcess
	// ActiveHistory records the number of active workers each round.
	ActiveHistory []int
	// Trace, when set, records one event per round like SAPS.Trace, with
	// ActiveWorkers reflecting the round's surviving membership.
	Trace *trace.Recorder
	bw    *netsim.Bandwidth
}

// SetTrace attaches a round recorder (scenario.RunFull's hook).
func (s *SAPSFaults) SetTrace(r *trace.Recorder) { s.Trace = r }

// NewSAPSFaults builds SAPS-PSGD with the given fault schedule (whose N must
// equal the fleet size).
func NewSAPSFaults(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config, sched FaultSchedule) *SAPSFaults {
	if sched.N != fc.N {
		panic(fmt.Sprintf("algos: fault schedule over %d workers for a fleet of %d", sched.N, fc.N))
	}
	f := NewFleet(fc)
	s := &SAPSFaults{
		fleet: f,
		bw:    bw,
		proc:  NewFaultProcess(sched),
		coord: core.NewCoordinator(bw, cfg),
	}
	s.eng = engine.New(engine.Options{
		Workers: newEngineWorkers(f, fc, cfg),
		Planner: s,
		Shards:  fc.RuntimeShards,
	})
	return s
}

// Name implements Algorithm.
func (s *SAPSFaults) Name() string { return "SAPS-PSGD(faults)" }

// Models implements Algorithm.
func (s *SAPSFaults) Models() []*nn.Model { return s.fleet.Models }

// Close releases the engine's worker pool.
func (s *SAPSFaults) Close() { s.eng.Close() }

// Plan implements engine.Planner: advance the fault process, then run
// Algorithm 3 over the surviving workers only.
func (s *SAPSFaults) Plan(t int) core.RoundPlan {
	active, err := s.proc.Step(t)
	if err != nil {
		panic(err)
	}
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	s.ActiveHistory = append(s.ActiveHistory, n)
	return s.coord.PlanActive(t, active)
}

// Step implements Algorithm.
func (s *SAPSFaults) Step(round int, led engine.Ledger) float64 {
	stats, err := s.eng.Step(round, led)
	if err != nil {
		panic(err)
	}
	if s.Trace != nil {
		payload := compress.MaskedBytes(stats.PayloadLen)
		s.Trace.Record(round, stats.Plan.Matching(), s.bw, stats.Plan.Forced,
			payload, s.ActiveHistory[len(s.ActiveHistory)-1], stats.Loss)
	}
	return stats.Loss
}

var (
	_ Algorithm      = (*SAPSFaults)(nil)
	_ engine.Planner = (*SAPSFaults)(nil)
)
