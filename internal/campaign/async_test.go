package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sapspsgd/internal/scenario"
)

// loadAsyncBase loads the committed asynchronous base scenario.
func loadAsyncBase(t *testing.T) *scenario.Spec {
	t.Helper()
	base, err := scenario.Load(filepath.Join("testdata", "async-base.json"))
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// TestAsyncAlgoAxisExpands pins the sync-vs-async grid axis: a mixed
// algorithm sweep over an async base yields synchronous cells with the
// async block dropped, asynchronous cells with it kept, and a shards axis
// that collapses for async cells (and only for them).
func TestAsyncAlgoAxisExpands(t *testing.T) {
	c := &Spec{
		SchemaVersion: SpecSchemaVersion,
		Name:          "mixed",
		Base:          "testdata/async-base.json",
		Grid: Grid{
			Algo:        []string{"saps", "psgd", "adpsgd", "gradpush"},
			Compression: []float64{100},
			Shards:      []int{1, 2},
		},
	}
	cells, err := c.Expand(loadAsyncBase(t))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, cell := range cells {
		ids = append(ids, cell.ID)
	}
	want := []string{"saps_sh1_c100", "saps_sh2_c100", "psgd_sh1", "psgd_sh2", "adpsgd", "gradpush"}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("cells %v, want %v", ids, want)
	}
	for _, cell := range cells {
		async := scenario.AsyncAlgo(cell.Spec.Algo)
		if async != (cell.Spec.Async != nil) {
			t.Fatalf("cell %s: async block presence does not match algo %s", cell.ID, cell.Spec.Algo)
		}
		if async && cell.Spec.Shards != 0 {
			t.Fatalf("async cell %s carries %d shards", cell.ID, cell.Spec.Shards)
		}
		if err := cell.Spec.Validate(); err != nil {
			t.Fatalf("cell %s does not validate: %v", cell.ID, err)
		}
	}
}

// TestAsyncCampaignRuns executes a small sync-vs-async campaign end to end:
// every cell (one synchronous, two asynchronous) runs through the shared
// runner, persists a series-bearing cell record, and aggregates.
func TestAsyncCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (if tiny) campaign")
	}
	c := &Spec{
		SchemaVersion: SpecSchemaVersion,
		Name:          "mixed-run",
		Base:          "testdata/async-base.json",
		Grid:          Grid{Algo: []string{"psgd", "adpsgd", "gradpush"}},
	}
	dir := t.TempDir()
	stats, err := Run(c, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planned != 3 || stats.Executed != 3 || !stats.Aggregated {
		t.Fatalf("campaign stats %+v", stats)
	}
	for _, id := range []string{"psgd", "adpsgd", "gradpush"} {
		data, err := os.ReadFile(filepath.Join(dir, "cells", id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var rec CellResult
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.TotalBytes <= 0 || len(rec.Losses) == 0 || len(rec.Losses) != len(rec.CumBytes) {
			t.Fatalf("cell %s: degenerate record %+v", id, rec)
		}
		if rec.SimSeconds <= 0 {
			t.Fatalf("cell %s: no simulated time", id)
		}
	}
}
