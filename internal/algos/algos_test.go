package algos

import (
	"math"
	"testing"

	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// testSetup builds a small shared task: n workers, tiny synthetic task, MLP.
func testSetup(t *testing.T, n int) (FleetConfig, *netsim.Bandwidth, *dataset.Dataset) {
	t.Helper()
	tr, va := dataset.TinyTask(400, 4, 31)
	shards := dataset.PartitionIID(tr, n, 1)
	fc := FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), []int{16}, 4, 5) },
		Shards:  shards,
		LR:      0.1,
		Batch:   16,
		Seed:    3,
	}
	bw := netsim.RandomUniform(n, 1, 5, rng.New(7))
	return fc, bw, va
}

func sapsConfig(n int) core.Config {
	return core.Config{
		Workers:     n,
		Compression: 4,
		LR:          0.1,
		Batch:       16,
		LocalSteps:  1,
		Gossip:      gossip.Config{BThres: 2, TThres: 5},
		Seed:        3,
	}
}

func meanAcc(t *testing.T, alg Algorithm, va *dataset.Dataset) float64 {
	t.Helper()
	models := alg.Models()
	host := models[0]
	dim := host.ParamCount()
	mean := make([]float64, dim)
	for _, m := range models {
		tensor.Axpy(1/float64(len(models)), m.FlatParams(nil), mean)
	}
	saved := host.FlatParams(nil)
	host.SetFlatParams(mean)
	_, acc := nn.EvaluateDataset(host, va, 128)
	host.SetFlatParams(saved)
	return acc
}

// runRounds drives an algorithm and returns final mean-model accuracy plus
// the ledger.
func runRounds(t *testing.T, alg Algorithm, bw *netsim.Bandwidth, va *dataset.Dataset, rounds int) (float64, *netsim.Ledger) {
	t.Helper()
	led := netsim.NewLedger(bw)
	for r := 0; r < rounds; r++ {
		loss := alg.Step(r, led)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s: loss diverged to %v at round %d", alg.Name(), loss, r)
		}
	}
	if !led.ConservationOK() {
		t.Fatalf("%s: ledger conservation violated", alg.Name())
	}
	return meanAcc(t, alg, va), led
}

func TestAllAlgorithmsLearn(t *testing.T) {
	const n, rounds = 8, 250
	builders := []struct {
		name  string
		build func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm
		min   float64
	}{
		{"PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewPSGD(fc) }, 0.8},
		{"TopK-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewTopKPSGD(fc, 20) }, 0.75},
		{"FedAvg", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewFedAvg(fc, bw, 0.5, 3) }, 0.75},
		{"S-FedAvg", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewSFedAvg(fc, bw, 0.5, 3, 10) }, 0.7},
		{"D-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewDPSGD(fc) }, 0.75},
		{"DCD-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewDCDPSGD(fc, 4) }, 0.7},
		{"SAPS-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewSAPS(fc, bw, sapsConfig(n)) }, 0.7},
		{"RandomChoose", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewRandomChoose(fc, bw, sapsConfig(n)) }, 0.7},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			fc, bw, va := testSetup(t, n)
			alg := b.build(fc, bw)
			if alg.Name() != b.name {
				t.Fatalf("Name() = %q, want %q", alg.Name(), b.name)
			}
			acc, _ := runRounds(t, alg, bw, va, rounds)
			if acc < b.min {
				t.Fatalf("%s accuracy %v, want >= %v", b.name, acc, b.min)
			}
		})
	}
}

func TestTrafficOrdering(t *testing.T) {
	// The paper's headline claim (Table I / Fig. 4): per-worker traffic of
	// SAPS-PSGD is far below PSGD, D-PSGD and TopK-PSGD for the same number
	// of rounds.
	const n, rounds = 8, 30
	traffic := map[string]float64{}
	for _, build := range []func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm{
		func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewPSGD(fc) },
		func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewTopKPSGD(fc, 100) },
		func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewDPSGD(fc) },
		func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewDCDPSGD(fc, 4) },
		func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm {
			c := sapsConfig(n)
			c.Compression = 100
			return NewSAPS(fc, bw, c)
		},
	} {
		fc, bw, _ := testSetup(t, n)
		alg := build(fc, bw)
		led := netsim.NewLedger(bw)
		for r := 0; r < rounds; r++ {
			alg.Step(r, led)
		}
		traffic[alg.Name()] = led.MeanWorkerTrafficMB()
	}
	saps := traffic["SAPS-PSGD"]
	for name, v := range traffic {
		if name == "SAPS-PSGD" {
			continue
		}
		if saps >= v {
			t.Fatalf("SAPS traffic %v MB not below %s traffic %v MB", saps, name, v)
		}
	}
	// D-PSGD must be the most expensive decentralized scheme (dense, two
	// neighbors).
	if traffic["D-PSGD"] <= traffic["DCD-PSGD"] {
		t.Fatalf("D-PSGD %v should exceed DCD-PSGD %v", traffic["D-PSGD"], traffic["DCD-PSGD"])
	}
}

func TestSAPSTrafficMatchesCostModel(t *testing.T) {
	// Per round a SAPS worker sends and receives ~N/c values at 4 bytes.
	const n, rounds = 8, 50
	fc, bw, _ := testSetup(t, n)
	cfg := sapsConfig(n)
	cfg.Compression = 10
	alg := NewSAPS(fc, bw, cfg)
	led := netsim.NewLedger(bw)
	for r := 0; r < rounds; r++ {
		alg.Step(r, led)
	}
	dim := alg.Models()[0].ParamCount()
	wantPerRound := 2 * float64(dim) / cfg.Compression * 4 // bytes
	got := led.MeanWorkerTrafficMB() * 1e6 / rounds
	if math.Abs(got-wantPerRound)/wantPerRound > 0.15 {
		t.Fatalf("per-round traffic %v bytes, cost model says %v", got, wantPerRound)
	}
}

func TestPSGDKeepsModelsIdentical(t *testing.T) {
	const n = 4
	fc, bw, _ := testSetup(t, n)
	alg := NewPSGD(fc)
	led := netsim.NewLedger(bw)
	for r := 0; r < 10; r++ {
		alg.Step(r, led)
	}
	ref := alg.Models()[0].FlatParams(nil)
	for i, m := range alg.Models()[1:] {
		p := m.FlatParams(nil)
		for j := range p {
			if p[j] != ref[j] {
				t.Fatalf("worker %d diverged from worker 0 at coord %d", i+1, j)
			}
		}
	}
}

func TestSAPSReducesConsensusError(t *testing.T) {
	const n = 8
	fc, bw, va := testSetup(t, n)
	_ = va
	alg := NewSAPS(fc, bw, sapsConfig(n))
	led := netsim.NewLedger(bw)
	// Run a while; workers drift due to local SGD but gossip keeps the
	// disagreement bounded. Compare against a no-communication fleet.
	iso := NewFleet(fc)
	for r := 0; r < 120; r++ {
		alg.Step(r, led)
		iso.Parallel(func(i int) float64 { return iso.SGDStep(i) })
	}
	consensus := func(models []*nn.Model) float64 {
		dim := models[0].ParamCount()
		mean := make([]float64, dim)
		flats := make([][]float64, len(models))
		for i, m := range models {
			flats[i] = m.FlatParams(nil)
			tensor.Axpy(1/float64(len(models)), flats[i], mean)
		}
		tot := 0.0
		for _, f := range flats {
			for j := range f {
				d := f[j] - mean[j]
				tot += d * d
			}
		}
		return tot
	}
	gossiped := consensus(alg.Models())
	isolated := consensus(iso.Models)
	if gossiped >= isolated/2 {
		t.Fatalf("gossip consensus %v not well below isolated drift %v", gossiped, isolated)
	}
}

func TestSAPSPrefersBandwidthOverRandom(t *testing.T) {
	const n = 14
	tr, _ := dataset.TinyTask(280, 4, 31)
	shards := dataset.PartitionIID(tr, n, 1)
	fc := FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), []int{8}, 4, 5) },
		Shards:  shards,
		LR:      0.1,
		Batch:   8,
		Seed:    3,
	}
	bw := netsim.FourteenCities()
	cfg := sapsConfig(n)
	cfg.Gossip.BThres = 2
	saps := NewSAPS(fc, bw, cfg)
	random := NewRandomChoose(fc, bw, cfg)
	ledA := netsim.NewLedger(bw)
	ledB := netsim.NewLedger(bw)
	var sumS, sumR float64
	const rounds = 60
	for r := 0; r < rounds; r++ {
		saps.Step(r, ledA)
		random.Step(r, ledB)
		sumS += saps.LastMatchedBandwidth
		sumR += random.LastMatchedBandwidth
	}
	if sumS <= sumR {
		t.Fatalf("SAPS mean matched bandwidth %v not above random %v", sumS/rounds, sumR/rounds)
	}
}

func TestFedAvgSelectsFraction(t *testing.T) {
	const n = 8
	chosen := func(fraction float64) int {
		r := Recipe{Algo: "fedavg", Workers: n, LR: 0.1, Batch: 8, Seed: 3, Fraction: fraction, LocalSteps: 1}
		plan := r.Planner(nil, defaultRecipeGossip()).Plan(0)
		k := 0
		for i := 0; i < n; i++ { // exclude the always-active server rank
			if plan.Active[i] {
				k++
			}
		}
		return k
	}
	if got := chosen(0.5); got != 4 {
		t.Fatalf("selected %d, want 4", got)
	}
	if got := chosen(0.01); got != 1 {
		t.Fatalf("selected %d, want floor of 1", got)
	}
}

func TestFleetValidation(t *testing.T) {
	fc, _, _ := testSetup(t, 4)
	bads := []func() FleetConfig{
		func() FleetConfig { c := fc; c.N = 1; return c },
		func() FleetConfig { c := fc; c.Shards = c.Shards[:2]; return c },
		func() FleetConfig { c := fc; c.Factory = nil; return c },
		func() FleetConfig { c := fc; c.LR = 0; return c },
	}
	for i, mk := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad fleet config %d accepted", i)
				}
			}()
			NewFleet(mk())
		}()
	}
}

func TestDCDHighCompressionDegrades(t *testing.T) {
	// The paper notes DCD-PSGD cannot tolerate aggressive compression
	// (c = 100 "would not converge at all"): the replicas lag far behind the
	// true models, so worker disagreement blows up relative to c = 4. Use a
	// non-IID partition so local models actively drift apart.
	const n, rounds = 8, 120
	consensusAfter := func(c float64) float64 {
		tr, _ := dataset.TinyTask(400, 4, 31)
		shards := dataset.PartitionByLabel(tr, n, 1, 3)
		fc := FleetConfig{
			N:       n,
			Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), []int{16}, 4, 5) },
			Shards:  shards,
			LR:      0.1,
			Batch:   16,
			Seed:    3,
		}
		bw := netsim.RandomUniform(n, 1, 5, rng.New(7))
		alg := NewDCDPSGD(fc, c)
		led := netsim.NewLedger(bw)
		for r := 0; r < rounds; r++ {
			if loss := alg.Step(r, led); math.IsNaN(loss) || loss > 1e6 {
				return math.Inf(1) // diverged — maximal degradation
			}
		}
		models := alg.Models()
		dim := models[0].ParamCount()
		mean := make([]float64, dim)
		flats := make([][]float64, len(models))
		for i, m := range models {
			flats[i] = m.FlatParams(nil)
			tensor.Axpy(1/float64(len(models)), flats[i], mean)
		}
		tot := 0.0
		for _, f := range flats {
			for j := range f {
				d := f[j] - mean[j]
				tot += d * d
			}
		}
		return tot
	}
	good := consensusAfter(4)
	bad := consensusAfter(100)
	if bad < 3*good {
		t.Fatalf("DCD c=100 consensus error %v not well above c=4 error %v", bad, good)
	}
}
