// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the SAPS-PSGD reproduction.
//
// Determinism across processes is load-bearing for the paper's protocol: the
// coordinator broadcasts only a 64-bit seed each round (Algorithm 1, line 5)
// and every worker must regenerate the exact same Bernoulli mask vector from
// it (Algorithm 2, line 6). Relying on math/rand would tie the protocol to a
// particular Go release's generator, so the generator is implemented here:
// SplitMix64 for seeding/stream derivation and xoshiro256** for the stream.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic PRNG. It is NOT safe for concurrent use; derive
// one Source per goroutine with Derive.
type Source struct {
	s [4]uint64
	// spare holds a cached second Gaussian sample from Box-Muller.
	spare    float64
	hasSpare bool
}

// splitMix64 advances x and returns the next SplitMix64 output. It is used to
// expand a single seed into the 256-bit xoshiro state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// seedState expands x into a full xoshiro state via SplitMix64. xoshiro must
// not start from the all-zero state; SplitMix64 of any seed cannot produce
// four zero words, but guard anyway. This is the single seed-expansion used
// by New, Derive, and Reseed — their streams must stay in lockstep (mask
// determinism across processes is protocol-load-bearing).
func seedState(s *[4]uint64, x uint64) {
	for i := range s {
		s[i] = splitMix64(&x)
	}
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 1
	}
}

// deriveKey mixes a parent state with a stream identifier.
func deriveKey(s *[4]uint64, id uint64) uint64 {
	return s[0] ^ (s[1] << 1) ^ id*0x9e3779b97f4a7c15
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	s := &Source{}
	seedState(&s.s, seed)
	return s
}

// Derive returns an independent Source whose stream is a deterministic
// function of the parent seed stream and the given stream identifier. Two
// Sources derived with different ids produce statistically independent
// sequences; the parent is not advanced.
func (r *Source) Derive(id uint64) *Source {
	s := &Source{}
	seedState(&s.s, deriveKey(&r.s, id))
	return s
}

// Reseed reinitializes r in place to the exact stream of New(seed).Derive(id)
// — the allocation-free variant for hot paths that regenerate a derived
// stream every round (mask regeneration in Algorithm 2 line 6).
func (r *Source) Reseed(seed, id uint64) {
	var ps [4]uint64
	seedState(&ps, seed)
	seedState(&r.s, deriveKey(&ps, id))
	r.spare = 0
	r.hasSpare = false
}

// State is a Source's complete serializable position in its stream: the
// xoshiro256** words plus the cached Box-Muller spare. Capturing and later
// restoring a State resumes the stream exactly where it left off, which is
// what round-boundary checkpoints rely on (DESIGN.md §3: RNG cursors are part
// of a rank's snapshot).
type State struct {
	S        [4]uint64
	Spare    float64
	HasSpare bool
}

// State returns the Source's current stream position.
func (r *Source) State() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState restores a position captured by State, making r's subsequent
// outputs identical to the captured Source's.
func (r *Source) SetState(st State) {
	r.s = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to avoid
	// modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// NormFloat64 returns a standard normal sample (Box-Muller, polar form).
func (r *Source) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Gamma returns a Gamma(alpha, 1) sample via Marsaglia-Tsang squeeze
// rejection, with the standard U^(1/alpha) boost for shape < 1. It panics if
// alpha is not positive. Dirichlet draws (non-IID data partitions) normalize
// a vector of these.
func (r *Source) Gamma(alpha float64) float64 {
	if !(alpha > 0) {
		panic("rng: Gamma with non-positive alpha")
	}
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a); 1-Float64 keeps U in (0, 1].
		u := 1 - r.Float64()
		return r.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Mask fills out with a Bernoulli(p) 0/1 mask (Eq. (3) of the paper): each
// element is independently 1 with probability p. The mask depends only on the
// Source state, so two Sources constructed from the same seed produce
// identical masks — this is how all workers agree on the sparsification
// pattern without communicating it.
func (r *Source) Mask(out []bool, p float64) {
	for i := range out {
		out[i] = r.Float64() < p
	}
}

// MaskSeed is a convenience constructor: the mask for round t under seed s is
// Mask generated by a Source derived from (s, t). All workers call this with
// identical arguments and obtain identical masks.
func MaskSeed(seed uint64, round int, n int, p float64) []bool {
	return MaskSeedInto(nil, seed, round, n, p)
}

// MaskSeedInto is MaskSeed writing into dst, allocating only when dst does
// not have length n. Hot paths (one mask per worker per round) pass their
// scratch buffer to stay allocation-free in steady state.
func MaskSeedInto(dst []bool, seed uint64, round int, n int, p float64) []bool {
	if len(dst) != n {
		dst = make([]bool, n)
	}
	var src Source // stack-local: the steady state allocates nothing
	src.Reseed(seed, uint64(round)+1)
	src.Mask(dst, p)
	return dst
}
