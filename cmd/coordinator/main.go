// Command coordinator runs the training coordinator (Algorithm 1) as a TCP
// server for any of the paper's algorithms: it registers the task's worker
// processes, drives -rounds communication rounds of control broadcasts
// (adaptive peer selection + mask seed for SAPS; participation sampling for
// the federated schemes), and writes the collected final model to -out
// (gob-encoded []float64).
//
// Example (six terminals):
//
//	coordinator -addr 127.0.0.1:7000 -n 4 -rounds 100 -arch mnist-cnn
//	worker -coordinator 127.0.0.1:7000   # ×4
//
// Hub algorithms (-algo ps-psgd|fedavg|s-fedavg) need one extra worker
// process: the last registered rank becomes the parameter server.
//
// Fault injection (-algo saps): -crash "2:30:10" kills the rank-2 worker
// process at the round-30 boundary and re-admits it 10 rounds later (the
// worker must be restarted with -resume; the coordinator holds the boundary
// up to -rejoin-wait for its handshake). -mortality "0.01:4" adds seeded
// random permanent deaths down to a floor of 4 workers. Unscheduled worker
// losses are detected, the affected round is aborted and rolled back on
// every survivor, and training re-plans over the remaining fleet.
//
// Trace replay (DESIGN.md §11): -trace fleet.csv replays a committed
// per-node bandwidth-multiplier trace over the environment (configured or
// -measure'd); -trace-events additionally replays its join/leave events as
// scripted membership (saps only — absent workers stay connected but sit
// rounds out, exactly as the simulated backends exclude them).
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/fleettrace"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/obs"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7000", "listen address")
		n           = flag.Int("n", 4, "number of trainer workers")
		rounds      = flag.Int("rounds", 100, "communication rounds T")
		algo        = flag.String("algo", "saps", "algorithm: "+strings.Join(algos.AlgoNames, "|"))
		arch        = flag.String("arch", "mnist-cnn", "model: mlp|mnist-cnn|cifar-cnn|resnet")
		width       = flag.Float64("width", 0.25, "model width multiplier")
		size        = flag.Int("size", 16, "input spatial size (divisible by 4)")
		channels    = flag.Int("channels", 1, "input channels")
		classes     = flag.Int("classes", 10, "classes")
		samples     = flag.Int("samples", 2048, "total training samples")
		lr          = flag.Float64("lr", 0.05, "learning rate")
		batch       = flag.Int("batch", 16, "batch size")
		compression = flag.Float64("c", 100, "SAPS mask compression ratio c")
		algoC       = flag.Float64("algo-c", 100, "sparsifier ratio for topk-psgd/dcd-psgd/s-fedavg")
		levels      = flag.Int("qsgd-levels", 4, "QSGD quantization levels")
		fraction    = flag.Float64("fraction", 0.5, "FedAvg participation fraction")
		localSteps  = flag.Int("local-steps", 1, "local SGD steps per round")
		nonIID      = flag.Bool("non-iid", false, "label-sharded non-IID partition")
		seed        = flag.Uint64("seed", 1, "global seed")
		bthres      = flag.Float64("bthres", 0, "bandwidth threshold B_thres (MB/s)")
		tthres      = flag.Int("tthres", 10, "recency window T_thres (rounds)")
		measure     = flag.Bool("measure", false, "probe pairwise worker bandwidth before training (paper §II-C fn.3)")
		probeKB     = flag.Int("probe-kb", 64, "probe payload size in KiB when -measure is set")
		crash       = flag.String("crash", "", "fault injection (saps only): comma-separated rank:round[:rejoin_after] crash events, e.g. 2:30:10,5:40")
		mortality   = flag.String("mortality", "", "fault injection (saps only): prob:min_alive seeded random permanent worker deaths, e.g. 0.01:4")
		traceFile   = flag.String("trace", "", "fleet trace CSV to replay (per-round bandwidth multipliers; see internal/fleettrace)")
		traceInterp = flag.String("trace-interp", "hold", "trace multiplier interpolation: hold|linear")
		traceEvents = flag.Bool("trace-events", false, "replay the trace's join/leave membership events (saps only)")
		rejoinWait  = flag.Duration("rejoin-wait", time.Minute, "how long to hold a round boundary for a scheduled rejoiner")
		out         = flag.String("out", "model.gob", "output file for the final model")
	)
	var obsFlags obs.FlagConfig
	obsFlags.AddFlags(nil)
	flag.Parse()

	// The observability sink must be live before the server is constructed:
	// components capture their metric bundles at construction time.
	obsSrv, err := obsFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer obsSrv.Close()
	if obsSrv != nil {
		log.Printf("observability server on %s (/metrics, /healthz, /runs, /debug/pprof)", obsSrv.Addr)
	}

	faults, err := parseFaults(*crash, *mortality, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := parseTrace(*traceFile, *traceInterp, *n)
	if err != nil {
		log.Fatal(err)
	}
	if *traceEvents && replay == nil {
		log.Fatal("-trace-events requires -trace")
	}

	spec := transport.TaskSpec{
		Arch: *arch, C: *channels, H: *size, W: *size, Classes: *classes,
		Width: *width, Hidden: []int{64}, Samples: *samples, DataSeed: *seed + 100,
		NonIID: *nonIID, LR: *lr, Batch: *batch, Compression: *compression,
		LocalSteps: *localSteps, Rounds: *rounds, Seed: *seed,
		Algo: *algo, AlgoC: *algoC, QLevels: *levels, Fraction: *fraction,
	}
	rec := spec.Recipe(*n)
	if err := rec.Validate(); err != nil {
		log.Fatal(err)
	}
	srv := &transport.CoordinatorServer{
		N:    *n,
		Task: spec,
		// Without real link measurements, the coordinator assumes a random
		// uniform environment; in production each worker pair would report
		// measured speeds (paper §II-C footnote 3).
		BW:           netsim.RandomUniform(rec.Nodes(), 1, 5, rng.New(*seed)),
		Measure:      *measure,
		ProbeBytes:   *probeKB << 10,
		Gossip:       gossip.Config{BThres: *bthres, TThres: *tthres},
		Faults:       faults,
		Replay:       replay,
		ReplayEvents: *traceEvents,
		RejoinWait:   *rejoinWait,
		Logf:         log.Printf,
	}
	led := &engine.CountingLedger{}
	srv.Ledger = led
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinator listening on %s: algorithm %q, waiting for %d worker processes (%d trainers%s)",
		bound, rec.Algo, rec.Nodes(), *n, serverNote(rec))
	params, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("total measured traffic: %.2f MB over %d rounds", float64(led.TotalBytes())/1e6, led.Rounds())
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(params); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final model (%d parameters) written to %s\n", len(params), *out)
}

func serverNote(rec algos.Recipe) string {
	if rec.Hub() {
		return " + 1 parameter server"
	}
	return ""
}

// parseTrace loads and binds the -trace replay for the fleet size. An empty
// path returns nil.
func parseTrace(path, interpName string, n int) (*fleettrace.Replay, error) {
	if path == "" {
		return nil, nil
	}
	tr, err := fleettrace.ParseFile(path)
	if err != nil {
		return nil, err
	}
	interp, err := fleettrace.ParseInterp(interpName)
	if err != nil {
		return nil, fmt.Errorf("-trace-interp: %v", err)
	}
	return fleettrace.NewReplay(tr, n, interp)
}

// parseFaults builds the fault schedule from the -crash and -mortality
// flags. Crash events are rank:round[:rejoin_after]; mortality is
// prob:min_alive. An empty schedule returns nil.
func parseFaults(crash, mortality string, n int, seed uint64) (*algos.FaultSchedule, error) {
	if crash == "" && mortality == "" {
		return nil, nil
	}
	sched := &algos.FaultSchedule{N: n, Seed: seed}
	if crash != "" {
		for _, part := range strings.Split(crash, ",") {
			fields := strings.Split(strings.TrimSpace(part), ":")
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("bad -crash event %q, want rank:round[:rejoin_after]", part)
			}
			var ev algos.FaultEvent
			var err error
			if ev.Rank, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("bad -crash rank in %q: %v", part, err)
			}
			if ev.Round, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("bad -crash round in %q: %v", part, err)
			}
			if len(fields) == 3 {
				if ev.RejoinAfter, err = strconv.Atoi(fields[2]); err != nil {
					return nil, fmt.Errorf("bad -crash rejoin_after in %q: %v", part, err)
				}
			}
			sched.Events = append(sched.Events, ev)
		}
	}
	if mortality != "" {
		fields := strings.Split(mortality, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad -mortality %q, want prob:min_alive", mortality)
		}
		prob, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -mortality prob: %v", err)
		}
		minAlive, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad -mortality min_alive: %v", err)
		}
		sched.Mortality = &algos.FaultMortality{Prob: prob, MinAlive: minAlive}
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}
