// Package sapspsgd is a from-scratch Go reproduction of "Communication-
// Efficient Decentralized Learning with Sparsification and Adaptive Peer
// Selection" (Tang, Shi, Chu — ICDCS 2020): the SAPS-PSGD algorithm, the six
// baselines it is compared against, the network/dataset/neural-net
// substrates they train on, and a benchmark harness that regenerates every
// table and figure of the paper's evaluation.
//
// This root package is the public façade. The three ways to use the library:
//
//   - Simulation: build an algorithm with BuildAlgorithm (or NewSAPS for the
//     paper's algorithm alone) and drive it with Run — all traffic and
//     communication time is accounted against a bandwidth environment such
//     as FourteenCities or RandomUniform.
//
//   - Deployment: run a CoordinatorServer and WorkerClients over TCP
//     (cmd/coordinator -algo <name>, cmd/worker); the identical engine
//     round logic exchanges real gob-encoded payloads peer-to-peer, for
//     SAPS and every baseline alike (hub algorithms run the parameter
//     server as one extra worker process).
//
//   - Experiments: the drivers in internal/experiments (surfaced by
//     cmd/sapsbench and bench_test.go) regenerate Tables I–IV and
//     Figures 1/3/4/5/6.
//
// All three run the same execution core: the round loop of Algorithms 1–3
// lives once, in the engine layer (Engine, EngineTransport, EngineLedger),
// and the simulation/deployment paths differ only in which transport and
// ledger back it. See DESIGN.md §2 for the layering and for how to add a
// new backend.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package sapspsgd

import (
	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/engine/memtransport"
	"sapspsgd/internal/engine/simtransport"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/trainer"
	"sapspsgd/internal/transport"
)

// Core algorithm (Algorithms 1–3 of the paper).
type (
	// Config carries the SAPS-PSGD hyperparameters (workers, compression
	// ratio c, learning rate, gossip thresholds).
	Config = core.Config
	// Coordinator is the lightweight tracker of Algorithm 1.
	Coordinator = core.Coordinator
	// Worker is one training peer (Algorithm 2).
	Worker = core.Worker
	// GossipConfig holds Algorithm 3's B_thres / T_thres knobs.
	GossipConfig = gossip.Config
)

// Simulation harness.
type (
	// Algorithm is one distributed training scheme (SAPS or a baseline).
	Algorithm = algos.Algorithm
	// FleetConfig describes a set of identically initialized workers.
	FleetConfig = algos.FleetConfig
	// TrainConfig controls a simulated run.
	TrainConfig = trainer.Config
	// Record is one evaluation point (round, accuracy, traffic, time).
	Record = trainer.Record
	// Result is a full run's series plus its traffic ledger.
	Result = trainer.Result
	// Bandwidth is a symmetric pairwise link-speed environment.
	Bandwidth = netsim.Bandwidth
	// Ledger accounts bytes and simulated communication time.
	Ledger = netsim.Ledger
	// Dataset is an in-memory labeled image collection.
	Dataset = dataset.Dataset
	// Model is a neural network with a flat parameter vector.
	Model = nn.Model
	// Shape is image geometry (channels × height × width).
	Shape = nn.Shape
)

// TCP deployment.
type (
	// TaskSpec tells workers what to train (broadcast at registration).
	TaskSpec = transport.TaskSpec
	// CoordinatorServer drives training over TCP.
	CoordinatorServer = transport.CoordinatorServer
	// WorkerClient is the TCP worker process.
	WorkerClient = transport.WorkerClient
)

// Engine layer: the canonical round loop and its pluggable backends
// (DESIGN.md §2). An algorithm is a Planner + ExchangePattern + Codec
// composition over Nodes; the seven baselines in this package are exactly
// such compositions (see AlgoRecipe).
type (
	// Engine runs the round loop over an in-process node pool.
	Engine = engine.Engine
	// EngineOptions configures an Engine (nodes/workers, pattern, codecs,
	// planner, transport).
	EngineOptions = engine.Options
	// EngineTransport is the peer-to-peer data plane a backend implements.
	EngineTransport = engine.Transport
	// EngineLedger is the traffic/time accounting a backend charges.
	EngineLedger = engine.Ledger
	// CountingLedger tallies exact per-round and per-worker byte totals.
	CountingLedger = engine.CountingLedger
	// RoundStats summarizes one engine round.
	RoundStats = engine.RoundStats
	// EngineNode is one participant's algorithm state machine.
	EngineNode = engine.Node
	// ExchangePattern describes who talks to whom within a round
	// (pairwise matched gossip, static neighborhood, hub fan-in, exact
	// all-reduce collective, complete all-gather).
	ExchangePattern = engine.Pattern
	// PayloadCodec encodes model/gradient vectors to exact wire bytes
	// (dense, shared-seed masked, top-k + error feedback, QSGD,
	// random-k).
	PayloadCodec = engine.Codec
	// AlgoRecipe assembles a named algorithm's pattern, codecs, nodes and
	// planner for any deployment (in-process or TCP).
	AlgoRecipe = algos.Recipe
)

// NewEngine builds the in-process engine over the given options; pair it
// with NewMemTransport (pure in-memory) or NewSimTransport (bandwidth-
// accounted) — or leave Options.Transport nil for the in-memory default.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// NewMemTransport returns the in-process rendezvous transport for n workers.
func NewMemTransport(n int) EngineTransport { return memtransport.NewHub(n) }

// NewSimTransport returns an in-process transport plus a ledger that charges
// every exchange against the bandwidth environment bw.
func NewSimTransport(bw *Bandwidth) (EngineTransport, *Ledger) { return simtransport.New(bw) }

// DefaultConfig returns the paper's hyperparameters (c = 100, one local SGD
// step per round) for the given worker count.
func DefaultConfig(workers int) Config { return core.DefaultConfig(workers) }

// NewCoordinator builds the Algorithm 1 coordinator over a bandwidth
// environment.
func NewCoordinator(bw *Bandwidth, cfg Config) *Coordinator {
	return core.NewCoordinator(bw, cfg)
}

// NewWorker builds one Algorithm 2 worker from its model and data shard.
func NewWorker(rank int, model *Model, shard *Dataset, cfg Config) *Worker {
	return core.NewWorker(rank, model, shard, cfg)
}

// NewSAPS assembles the full SAPS-PSGD algorithm (coordinator + n workers)
// ready for the Run harness.
func NewSAPS(fc FleetConfig, bw *Bandwidth, cfg Config) Algorithm {
	return algos.NewSAPS(fc, bw, cfg)
}

// NewRandomChoose is SAPS-PSGD with uniformly random peer matching instead
// of adaptive selection — the paper's RandomChoose ablation.
func NewRandomChoose(fc FleetConfig, bw *Bandwidth, cfg Config) Algorithm {
	return algos.NewRandomChoose(fc, bw, cfg)
}

// Baselines: the six algorithms the paper compares against (Table I).
func NewPSGD(fc FleetConfig) Algorithm { return algos.NewPSGD(fc) }

// NewTopKPSGD is PSGD with Top-k sparsified gradients and error feedback.
func NewTopKPSGD(fc FleetConfig, c float64) Algorithm { return algos.NewTopKPSGD(fc, c) }

// NewFedAvg is centralized federated averaging.
func NewFedAvg(fc FleetConfig, bw *Bandwidth, fraction float64, localSteps int) Algorithm {
	return algos.NewFedAvg(fc, bw, fraction, localSteps)
}

// NewSFedAvg is FedAvg with sparse random structured uploads.
func NewSFedAvg(fc FleetConfig, bw *Bandwidth, fraction float64, localSteps int, c float64) Algorithm {
	return algos.NewSFedAvg(fc, bw, fraction, localSteps, c)
}

// NewDPSGD is decentralized SGD on the static ring.
func NewDPSGD(fc FleetConfig) Algorithm { return algos.NewDPSGD(fc) }

// NewDCDPSGD is difference-compressed decentralized SGD on the ring.
func NewDCDPSGD(fc FleetConfig, c float64) Algorithm { return algos.NewDCDPSGD(fc, c) }

// NewPSPSGD is classical parameter-server PSGD (dense push/pull each round).
func NewPSPSGD(fc FleetConfig, bw *Bandwidth) Algorithm { return algos.NewPSPSGD(fc, bw) }

// NewQSGDPSGD is PSGD with QSGD-quantized gradient all-gather.
func NewQSGDPSGD(fc FleetConfig, levels int) Algorithm { return algos.NewQSGDPSGD(fc, levels) }

// Run trains any Algorithm over the bandwidth environment, evaluating the
// worker-averaged model periodically.
func Run(alg Algorithm, bw *Bandwidth, cfg TrainConfig) Result {
	return trainer.Run(alg, bw, cfg)
}

// FourteenCities returns the paper's measured 14-city bandwidth matrix
// (Fig. 1) in MB/s.
func FourteenCities() *Bandwidth { return netsim.FourteenCities() }

// RandomUniform returns an n-worker environment with link speeds uniform in
// (lo, hi] MB/s, as in the paper's 32-worker experiments.
func RandomUniform(n int, lo, hi float64, seed uint64) *Bandwidth {
	return netsim.RandomUniform(n, lo, hi, rng.New(seed))
}

// MNISTLike generates the synthetic 28×28 10-class task standing in for
// MNIST (train and validation splits).
func MNISTLike(train, valid int, seed uint64) (tr, va *Dataset) {
	return dataset.MNISTLike(train, valid, seed)
}

// CIFARLike generates the synthetic 32×32×3 10-class task standing in for
// CIFAR-10.
func CIFARLike(train, valid int, seed uint64) (tr, va *Dataset) {
	return dataset.CIFARLike(train, valid, seed)
}

// PartitionIID shards a dataset across n workers uniformly.
func PartitionIID(d *Dataset, n int, seed uint64) []*Dataset {
	return dataset.PartitionIID(d, n, seed)
}

// PartitionByLabel shards a dataset non-IID (label-sorted shards, federated
// style).
func PartitionByLabel(d *Dataset, n, shardsPerWorker int, seed uint64) []*Dataset {
	return dataset.PartitionByLabel(d, n, shardsPerWorker, seed)
}

// NewMNISTCNN, NewCIFARCNN and NewResNet build the paper's three model
// families; width 1.0 is paper scale.
func NewMNISTCNN(in Shape, classes int, width float64, seed uint64) *Model {
	return nn.NewMNISTCNN(in, classes, width, seed)
}

// NewCIFARCNN builds the paper's CIFAR10-CNN family.
func NewCIFARCNN(in Shape, classes int, width float64, seed uint64) *Model {
	return nn.NewCIFARCNN(in, classes, width, seed)
}

// NewResNet builds a CIFAR-style ResNet-(6k+2); blocksPerStage 3 = ResNet-20.
func NewResNet(in Shape, classes, blocksPerStage int, width float64, seed uint64) *Model {
	return nn.NewResNet(in, classes, blocksPerStage, width, seed)
}

// NewMLP builds a plain multilayer perceptron.
func NewMLP(inDim int, hidden []int, classes int, seed uint64) *Model {
	return nn.NewMLP(inDim, hidden, classes, seed)
}
