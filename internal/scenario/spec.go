// Package scenario is the declarative experiment layer over the engine: a
// JSON Spec names an algorithm, a fleet size, a synthetic workload, a
// bandwidth distribution (or an explicit measured trace), and optional churn
// and straggler models, and the package assembles the corresponding
// algorithm over the sharded engine runtime and runs it against a
// bandwidth-accounted ledger. cmd/fleetbench sweeps directories of specs
// across shard counts and emits the stable-schema BENCH.json this package
// also knows how to regression-diff (see bench.go).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/fleettrace"
)

// SpecSchemaVersion is the scenario file schema this package reads and
// writes. Bump it when a field changes meaning; Parse rejects other
// versions so stale specs fail loudly instead of silently misconfiguring a
// sweep. Version 2 renamed the recorder flag to record_trace and gave
// "trace" to the fleet-replay block (with its sibling "partition").
const SpecSchemaVersion = 2

// Spec is one declarative fleet experiment.
type Spec struct {
	// SchemaVersion must equal SpecSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Name identifies the scenario in sweeps and BENCH.json rows.
	Name string `json:"name"`
	// Algo is the algorithm to run: saps | psgd | topk-psgd | qsgd-psgd |
	// d-psgd | dcd-psgd | ps-psgd | fedavg | s-fedavg, or one of the
	// asynchronous recipes adpsgd | gradpush (which require the async
	// block).
	Algo string `json:"algo"`
	// Nodes is the trainer count (hub algorithms add their server rank on
	// top, exactly as algos.Recipe does).
	Nodes int `json:"nodes"`
	// Rounds is the number of synchronous communication rounds.
	Rounds int `json:"rounds"`
	// Seed derives every random stream of the run (model init, data,
	// matching, codecs), so a spec is a complete reproducibility capsule.
	Seed uint64 `json:"seed"`

	LR    float64 `json:"lr"`
	Batch int     `json:"batch"`
	// LocalSteps is the local SGD steps per round (SAPS, FedAvg); 0 means 1.
	LocalSteps int `json:"local_steps,omitempty"`
	// Compression is the SAPS shared-mask ratio c.
	Compression float64 `json:"compression,omitempty"`
	// C is the sparsifier ratio for topk-psgd, dcd-psgd and s-fedavg.
	C float64 `json:"c,omitempty"`
	// Levels is the QSGD level count.
	Levels int `json:"levels,omitempty"`
	// Fraction is the FedAvg per-round participation ratio.
	Fraction float64 `json:"fraction,omitempty"`

	// Gossip tunes Algorithm 3's thresholds (SAPS only).
	Gossip *GossipSpec `json:"gossip,omitempty"`

	Model     ModelSpec     `json:"model"`
	Data      DataSpec      `json:"data"`
	Bandwidth BandwidthSpec `json:"bandwidth"`

	// Trace replays a committed per-node CSV series (internal/fleettrace):
	// bandwidth multipliers reshape every algorithm's link environment each
	// round, and — with events enabled — join/leave events drive SAPS
	// membership, identically in the sim, sharded, and TCP backends. The
	// multipliers compose on top of bandwidth.jitter and the straggler
	// block; events compose with faults. Mutually exclusive with churn.
	Trace *TraceSpec `json:"trace,omitempty"`

	// Partition selects how the synthetic training set is split across the
	// fleet: IID (the default), Dirichlet label skew, or quantity skew —
	// the FedAvg-setting heterogeneity axis.
	Partition *PartitionSpec `json:"partition,omitempty"`

	// Churn switches SAPS to dynamic membership (leave/rejoin per round).
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Faults is the declarative fault-injection schedule (SAPS only):
	// scheduled crash/rejoin windows and seeded random worker mortality,
	// honored identically by the in-process engine (scheduled-dead workers
	// are excluded from the round plan) and the TCP runtime (the
	// coordinator crashes the corresponding worker processes and re-admits
	// scheduled rejoiners). Mutually exclusive with Churn.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// Straggler slows a deterministic subset of workers' links, modelling
	// bandwidth-starved stragglers in an otherwise healthy fleet.
	Straggler *StragglerSpec `json:"straggler,omitempty"`

	// Async switches the run to the barrier-free event-driven engine and is
	// required exactly when Algo is an asynchronous recipe (adpsgd or
	// gradpush). Rounds then counts the gossip cycles each rank initiates
	// rather than synchronous rounds. Async runs are single-process
	// discrete-event simulations, so they exclude churn, faults, trace,
	// planner_only, bandwidth jitter, and engine sharding; the straggler
	// block still applies (it shapes the bandwidth environment).
	Async *AsyncSpec `json:"async,omitempty"`

	// Shards is the default engine shard count for this scenario (0 = the
	// engine's goroutine-per-node pool). Sweeps usually override it.
	Shards int `json:"shards,omitempty"`

	// RecordTrace attaches a trace.Recorder to the run (RunFull returns
	// it): one event per round with the matched pairs, their link
	// bandwidths, the forced-reconnection flag, payload size, active-worker
	// count and loss. Only the SAPS family records traces, so record_trace
	// requires algo saps (with or without churn/faults/trace).
	RecordTrace bool `json:"record_trace,omitempty"`

	// PlannerOnly runs the coordinator side alone (Algorithm 3 matching +
	// mask accounting + ledger charging) with no models, data, or workers —
	// the large-N scaling harness, where 50k-node planning fits in memory
	// that the full training fleet never could. The byte and simulated-time
	// totals are exactly what the full run would charge (the mask seed
	// stream and matchings are identical); FinalLoss is 0. Requires algo
	// saps without churn/faults/trace.
	PlannerOnly bool `json:"planner_only,omitempty"`

	// dir is the directory the spec was loaded from; trace files resolve
	// against it, so a spec's relative paths stay machine-independent (and
	// the canonical form never embeds an absolute path). Set by Load or
	// SetDir; empty means the current working directory.
	dir string
}

// SetDir sets the directory the spec's relative file references (the trace
// block) resolve against — what Load does automatically.
func (s *Spec) SetDir(dir string) { s.dir = dir }

// TracePath resolves the trace block's file against the spec's directory.
// It returns "" when the spec has no trace block.
func (s *Spec) TracePath() string {
	if s.Trace == nil {
		return ""
	}
	if filepath.IsAbs(s.Trace.File) || s.dir == "" {
		return s.Trace.File
	}
	return filepath.Join(s.dir, s.Trace.File)
}

// TraceSpec replays a committed fleet trace (see internal/fleettrace for
// the CSV schema and semantics).
type TraceSpec struct {
	// File is the CSV path, resolved relative to the spec file's directory.
	File string `json:"file"`
	// Interp evaluates bandwidth multipliers between samples: "hold" (the
	// default — each sample holds until the next) or "linear".
	Interp string `json:"interp,omitempty"`
	// Events enables membership replay: the trace's join/leave events
	// decide which workers are present each round. Requires algo saps (the
	// baselines have fixed topologies); without events only the bandwidth
	// multipliers apply, which every algorithm honors.
	Events bool `json:"events,omitempty"`
}

// PartitionSpec selects the data split across the fleet.
type PartitionSpec struct {
	// Kind is "iid" (the default when the block is omitted), "dirichlet"
	// (label skew: each class spread over workers by a symmetric
	// Dirichlet-alpha draw), or "quantity" (size skew: shard sizes follow
	// the Dirichlet draw).
	Kind string `json:"kind"`
	// Alpha is the Dirichlet concentration (> 0; smaller = more skew).
	// Required by dirichlet and quantity, meaningless for iid.
	Alpha float64 `json:"alpha,omitempty"`
	// MinPerNode floors every shard's sample count (default 1 — every
	// worker must be able to run a loader).
	MinPerNode int `json:"min_per_node,omitempty"`
}

// GossipSpec is Algorithm 3's tuning (SAPS only).
type GossipSpec struct {
	// BThres is the bandwidth threshold (MB/s) of the B* filter.
	BThres float64 `json:"b_thres"`
	// TThres is the recency window (rounds) of the reconnection rule.
	TThres int `json:"t_thres"`
}

// ModelSpec describes the per-worker model. The input dimension and class
// count come from the data spec; the architecture is an MLP with the given
// hidden widths.
type ModelSpec struct {
	Hidden []int `json:"hidden"`
}

// DataSpec describes the synthetic training task, sharded IID across the
// fleet.
type DataSpec struct {
	// Samples is the total training-set size before sharding.
	Samples int `json:"samples"`
	// Classes is the label count (also the model's output width).
	Classes int `json:"classes"`
}

// BandwidthSpec describes the pairwise link environment.
type BandwidthSpec struct {
	// Kind selects the generator: "uniform" (links drawn from (Lo, Hi]
	// MB/s), "clustered" (Fast within clusters, Slow across, ±50% jitter),
	// "cities" (the paper's measured 14-city matrix; requires Nodes == 14),
	// "matrix" (an explicit symmetric trace in MB/s), or the large-N sparse
	// generators "sparse-uniform" / "sparse-clustered" (ring-plus-random-
	// chords topologies of the given Degree whose adjacency-list environment
	// never materializes the N² matrix).
	Kind string `json:"kind"`
	// Lo and Hi bound the uniform draw in MB/s.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Clusters, Fast and Slow parameterize the clustered generator.
	Clusters int     `json:"clusters,omitempty"`
	Fast     float64 `json:"fast,omitempty"`
	Slow     float64 `json:"slow,omitempty"`
	// Degree is the sparse generators' target mean degree (links per node,
	// in [2, Nodes-1]); sparse topologies need at least 3 nodes.
	Degree int `json:"degree,omitempty"`
	// Matrix is the explicit Nodes×Nodes link-speed trace for kind
	// "matrix" (MB/s; asymmetric entries are min-symmetrized like every
	// other environment).
	Matrix [][]float64 `json:"matrix,omitempty"`
	// Jitter, when positive, makes the environment time-varying
	// (netsim.DynamicBandwidth): every round each link's speed is its base
	// value scaled by an independent multiplicative draw from
	// [1-jitter, 1+jitter] — the paper's "the bandwidth between two
	// workers may also vary". Must lie in [0, 1); 0 keeps the links
	// static. The jitter stream derives from the spec seed.
	Jitter float64 `json:"jitter,omitempty"`
}

// ChurnSpec mirrors algos.ChurnModel.
type ChurnSpec struct {
	LeaveProb float64 `json:"leave_prob"`
	JoinProb  float64 `json:"join_prob"`
	MinActive int     `json:"min_active"`
}

// FaultsSpec mirrors algos.FaultSchedule: the declarative fault-injection
// block of a scenario.
type FaultsSpec struct {
	// Crashes are scheduled crash/rejoin windows.
	Crashes []CrashSpec `json:"crashes,omitempty"`
	// Mortality adds seeded random permanent worker deaths.
	Mortality *MortalitySpec `json:"mortality,omitempty"`
}

// CrashSpec kills one worker at a round boundary: the rank is dead for
// rounds [round, round+rejoin_after) and rejoins at round+rejoin_after;
// rejoin_after 0 (or omitted) means it never returns.
type CrashSpec struct {
	Rank        int `json:"rank"`
	Round       int `json:"round"`
	RejoinAfter int `json:"rejoin_after,omitempty"`
}

// MortalitySpec is seeded random permanent worker death: before each round
// every surviving worker dies with probability prob (drawn from the spec
// seed), never to return; deaths stop at the min_alive floor.
type MortalitySpec struct {
	Prob     float64 `json:"prob"`
	MinAlive int     `json:"min_alive"`
}

// Schedule converts the block to the algos-layer schedule for n workers.
func (f *FaultsSpec) Schedule(n int, seed uint64) algos.FaultSchedule {
	sched := algos.FaultSchedule{N: n, Seed: seed}
	for _, c := range f.Crashes {
		sched.Events = append(sched.Events, algos.FaultEvent{Rank: c.Rank, Round: c.Round, RejoinAfter: c.RejoinAfter})
	}
	if m := f.Mortality; m != nil {
		sched.Mortality = &algos.FaultMortality{Prob: m.Prob, MinAlive: m.MinAlive}
	}
	return sched
}

// AsyncSpec is the virtual-compute model of an asynchronous run: how long
// each rank's local SGD block takes on the event clock between gossips.
// Durations are virtual time only — they shape the event timeline (and so
// the rendezvous order), never the numerics of the training streams.
type AsyncSpec struct {
	// ComputeSeconds is the mean virtual compute duration per gossip cycle
	// (> 0).
	ComputeSeconds float64 `json:"compute_seconds"`
	// Jitter in [0, 1) scales each compute block by an independent uniform
	// draw from [1-jitter, 1+jitter].
	Jitter float64 `json:"jitter,omitempty"`
	// SlowFraction in [0, 1] marks that share of ranks (rounded up, drawn
	// from the spec seed) as compute stragglers.
	SlowFraction float64 `json:"slow_fraction,omitempty"`
	// SlowFactor (≥ 1, required when slow_fraction > 0) multiplies the
	// slow ranks' compute durations.
	SlowFactor float64 `json:"slow_factor,omitempty"`
	// SampleEvery emits one convergence-series sample per that many
	// completed gossips fleet-wide (0 = one per node count, roughly a
	// synchronous round's worth).
	SampleEvery int `json:"sample_every,omitempty"`
}

// StragglerSpec slows a deterministic worker subset's links.
type StragglerSpec struct {
	// Fraction of workers (rounded up, at least one when positive) whose
	// links are slowed. The subset is drawn from the spec seed.
	Fraction float64 `json:"fraction"`
	// Slowdown divides every link touching a straggler (≥ 1).
	Slowdown float64 `json:"slowdown"`
}

// AsyncAlgo reports whether algo names an asynchronous recipe — one that
// requires the spec's async block and runs on the event-driven engine.
func AsyncAlgo(algo string) bool {
	for _, a := range algos.AsyncAlgoNames {
		if a == algo {
			return true
		}
	}
	return false
}

// Parse decodes a strict-schema spec: unknown fields are rejected, and the
// result is validated.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses one spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.dir = filepath.Dir(path)
	return s, nil
}

// LoadPath loads specs from a file or a directory: a directory loads every
// *.json spec in it (LoadDir), a file loads that one spec. cmd/fleetbench
// and cmd/campaign share this resolution rule.
func LoadPath(path string) ([]*Spec, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return LoadDir(path)
	}
	s, err := Load(path)
	if err != nil {
		return nil, err
	}
	return []*Spec{s}, nil
}

// LoadDir loads every *.json spec under dir (non-recursive), sorted by file
// name so sweep order is stable.
func LoadDir(dir string) ([]*Spec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", dir)
	}
	specs := make([]*Spec, 0, len(names))
	for _, name := range names {
		s, err := Load(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Traceable reports whether a run of this spec can record a per-round
// trace: only the SAPS family implements SetTrace (planner_only records
// coordinator-side rounds through the same recorder). Callers that
// stream traces to disk use this to decide up front whether to open the
// file.
func (s *Spec) Traceable() bool { return s.Algo == "saps" && s.Async == nil }

// Clone returns a deep copy of the spec: mutating the copy (sweep round
// overrides, campaign grid cells) never alters the loaded original. Every
// pointer block and slice is duplicated.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Model.Hidden = append([]int(nil), s.Model.Hidden...)
	if s.Bandwidth.Matrix != nil {
		c.Bandwidth.Matrix = make([][]float64, len(s.Bandwidth.Matrix))
		for i, row := range s.Bandwidth.Matrix {
			c.Bandwidth.Matrix[i] = append([]float64(nil), row...)
		}
	}
	if s.Gossip != nil {
		g := *s.Gossip
		c.Gossip = &g
	}
	if s.Churn != nil {
		ch := *s.Churn
		c.Churn = &ch
	}
	if s.Faults != nil {
		f := FaultsSpec{Crashes: append([]CrashSpec(nil), s.Faults.Crashes...)}
		if s.Faults.Mortality != nil {
			m := *s.Faults.Mortality
			f.Mortality = &m
		}
		c.Faults = &f
	}
	if s.Trace != nil {
		tr := *s.Trace
		c.Trace = &tr
	}
	if s.Partition != nil {
		p := *s.Partition
		c.Partition = &p
	}
	if s.Straggler != nil {
		st := *s.Straggler
		c.Straggler = &st
	}
	if s.Async != nil {
		a := *s.Async
		c.Async = &a
	}
	return &c
}

// Canonical renders the spec in the stable on-disk form (indented JSON with
// a trailing newline) — what the golden-file tests pin.
func (s *Spec) Canonical() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// recipe maps the spec onto the algorithm recipe used for validation.
func (s *Spec) recipe() algos.Recipe {
	return algos.Recipe{
		Algo:        s.Algo,
		Workers:     s.Nodes,
		LR:          s.LR,
		Batch:       s.Batch,
		Seed:        s.Seed,
		Compression: s.Compression,
		LocalSteps:  s.localSteps(),
		C:           s.C,
		Levels:      s.Levels,
		Fraction:    s.Fraction,
	}
}

func (s *Spec) localSteps() int {
	if s.LocalSteps < 1 {
		return 1
	}
	return s.LocalSteps
}

// Validate returns an error describing the first invalid field, if any.
func (s *Spec) Validate() error {
	switch {
	case s.SchemaVersion != SpecSchemaVersion:
		return fmt.Errorf("scenario: schema_version %d, want %d", s.SchemaVersion, SpecSchemaVersion)
	case s.Name == "":
		return fmt.Errorf("scenario: missing name")
	case s.Nodes < 1:
		return fmt.Errorf("scenario %s: %d nodes", s.Name, s.Nodes)
	case s.Rounds < 1:
		return fmt.Errorf("scenario %s: %d rounds", s.Name, s.Rounds)
	case s.Shards < 0:
		return fmt.Errorf("scenario %s: %d shards", s.Name, s.Shards)
	case s.Data.Samples < s.Nodes:
		return fmt.Errorf("scenario %s: %d samples for %d nodes", s.Name, s.Data.Samples, s.Nodes)
	case s.Data.Classes < 2:
		return fmt.Errorf("scenario %s: %d classes", s.Name, s.Data.Classes)
	}
	for _, h := range s.Model.Hidden {
		if h < 1 {
			return fmt.Errorf("scenario %s: hidden width %d", s.Name, h)
		}
	}
	// The recipe validation owns the per-algorithm parameter rules (and the
	// unknown-algorithm rejection).
	if err := s.recipe().Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Bandwidth.validate(s.Name, s.Nodes); err != nil {
		return err
	}
	if s.RecordTrace && s.Algo != "saps" {
		return fmt.Errorf("scenario %s: record_trace requires algo saps, have %s", s.Name, s.Algo)
	}
	if s.PlannerOnly {
		if s.Algo != "saps" {
			return fmt.Errorf("scenario %s: planner_only requires algo saps, have %s", s.Name, s.Algo)
		}
		if s.Churn != nil || s.Faults != nil || s.RecordTrace || s.Trace != nil || s.Partition != nil {
			return fmt.Errorf("scenario %s: planner_only excludes churn/faults/trace/partition/record_trace", s.Name)
		}
	}
	if tr := s.Trace; tr != nil {
		if tr.File == "" {
			return fmt.Errorf("scenario %s: trace block missing file", s.Name)
		}
		if _, err := fleettrace.ParseInterp(tr.Interp); err != nil {
			return fmt.Errorf("scenario %s: trace interp %q (want hold or linear)", s.Name, tr.Interp)
		}
		if tr.Events && s.Algo != "saps" {
			return fmt.Errorf("scenario %s: trace events require algo saps, have %s (drop events to replay bandwidth only)", s.Name, s.Algo)
		}
		if s.Churn != nil {
			return fmt.Errorf("scenario %s: trace and churn are mutually exclusive (trace events already script membership)", s.Name)
		}
	}
	if p := s.Partition; p != nil {
		switch p.Kind {
		case "iid":
			if p.Alpha != 0 {
				return fmt.Errorf("scenario %s: partition iid takes no alpha", s.Name)
			}
		case "dirichlet", "quantity":
			if !(p.Alpha > 0) {
				return fmt.Errorf("scenario %s: partition %s needs alpha > 0, have %v", s.Name, p.Kind, p.Alpha)
			}
		default:
			return fmt.Errorf("scenario %s: unknown partition kind %q (want iid, dirichlet or quantity)", s.Name, p.Kind)
		}
		if p.MinPerNode < 0 {
			return fmt.Errorf("scenario %s: partition min_per_node %d", s.Name, p.MinPerNode)
		}
		floor := p.MinPerNode
		if floor < 1 {
			floor = 1
		}
		if floor*s.Nodes > s.Data.Samples {
			return fmt.Errorf("scenario %s: partition floor %d × %d nodes exceeds %d samples", s.Name, floor, s.Nodes, s.Data.Samples)
		}
	}
	if g := s.Gossip; g != nil {
		if s.Algo != "saps" {
			return fmt.Errorf("scenario %s: gossip thresholds require algo saps, have %s", s.Name, s.Algo)
		}
		if g.BThres < 0 || g.TThres < 1 {
			return fmt.Errorf("scenario %s: gossip b_thres %v / t_thres %d", s.Name, g.BThres, g.TThres)
		}
	}
	if c := s.Churn; c != nil {
		if s.Algo != "saps" {
			return fmt.Errorf("scenario %s: churn model requires algo saps, have %s", s.Name, s.Algo)
		}
		if c.LeaveProb < 0 || c.LeaveProb >= 1 || c.JoinProb <= 0 || c.JoinProb > 1 {
			return fmt.Errorf("scenario %s: churn probabilities %v/%v", s.Name, c.LeaveProb, c.JoinProb)
		}
		if c.MinActive < 2 || c.MinActive > s.Nodes {
			return fmt.Errorf("scenario %s: churn min_active %d of %d", s.Name, c.MinActive, s.Nodes)
		}
	}
	if f := s.Faults; f != nil {
		if s.Algo != "saps" {
			return fmt.Errorf("scenario %s: faults require algo saps, have %s", s.Name, s.Algo)
		}
		if s.Churn != nil {
			return fmt.Errorf("scenario %s: faults and churn are mutually exclusive", s.Name)
		}
		if len(f.Crashes) == 0 && f.Mortality == nil {
			return fmt.Errorf("scenario %s: empty faults block (drop it or add crashes/mortality)", s.Name)
		}
		for _, c := range f.Crashes {
			if c.Round >= s.Rounds {
				return fmt.Errorf("scenario %s: crash of rank %d at round %d, but the run has only %d rounds",
					s.Name, c.Rank, c.Round, s.Rounds)
			}
			if c.RejoinAfter < 0 {
				return fmt.Errorf("scenario %s: crash of rank %d has negative rejoin_after %d", s.Name, c.Rank, c.RejoinAfter)
			}
		}
		sched := f.Schedule(s.Nodes, s.Seed)
		if err := sched.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if st := s.Straggler; st != nil {
		if st.Fraction < 0 || st.Fraction > 1 {
			return fmt.Errorf("scenario %s: straggler fraction %v", s.Name, st.Fraction)
		}
		if st.Slowdown < 1 {
			return fmt.Errorf("scenario %s: straggler slowdown %v", s.Name, st.Slowdown)
		}
	}
	// The async block and the asynchronous recipes come as a pair; the
	// churn/faults/trace/planner_only/gossip exclusions hold automatically
	// (each of those already requires algo saps).
	if s.recipe().Async() != (s.Async != nil) {
		if s.Async == nil {
			return fmt.Errorf("scenario %s: algo %s requires the async block", s.Name, s.Algo)
		}
		return fmt.Errorf("scenario %s: async block requires an asynchronous algo (adpsgd or gradpush), have %s", s.Name, s.Algo)
	}
	if a := s.Async; a != nil {
		switch {
		case a.ComputeSeconds <= 0:
			return fmt.Errorf("scenario %s: async compute_seconds %v", s.Name, a.ComputeSeconds)
		case a.Jitter < 0 || a.Jitter >= 1:
			return fmt.Errorf("scenario %s: async jitter %v outside [0, 1)", s.Name, a.Jitter)
		case a.SlowFraction < 0 || a.SlowFraction > 1:
			return fmt.Errorf("scenario %s: async slow_fraction %v", s.Name, a.SlowFraction)
		case a.SlowFraction > 0 && a.SlowFactor < 1:
			return fmt.Errorf("scenario %s: async slow_factor %v with slow_fraction %v (need ≥ 1)", s.Name, a.SlowFactor, a.SlowFraction)
		case a.SampleEvery < 0:
			return fmt.Errorf("scenario %s: async sample_every %d", s.Name, a.SampleEvery)
		case s.Shards != 0:
			return fmt.Errorf("scenario %s: async runs have no engine shards (drop shards)", s.Name)
		case s.Bandwidth.Jitter > 0:
			return fmt.Errorf("scenario %s: async runs use a static bandwidth environment (drop bandwidth.jitter)", s.Name)
		case s.Trace != nil:
			return fmt.Errorf("scenario %s: async runs use a static bandwidth environment (drop trace)", s.Name)
		}
	}
	return nil
}

func (b *BandwidthSpec) validate(name string, nodes int) error {
	switch b.Kind {
	case "uniform":
		if b.Lo < 0 || b.Hi <= 0 || b.Hi < b.Lo {
			return fmt.Errorf("scenario %s: uniform bandwidth (%v, %v] MB/s", name, b.Lo, b.Hi)
		}
	case "clustered":
		if b.Clusters < 1 || b.Fast <= 0 || b.Slow <= 0 {
			return fmt.Errorf("scenario %s: clustered bandwidth %d clusters fast=%v slow=%v", name, b.Clusters, b.Fast, b.Slow)
		}
	case "sparse-uniform":
		if b.Lo < 0 || b.Hi <= 0 || b.Hi < b.Lo {
			return fmt.Errorf("scenario %s: sparse-uniform bandwidth (%v, %v] MB/s", name, b.Lo, b.Hi)
		}
		if err := b.validateDegree(name, nodes); err != nil {
			return err
		}
	case "sparse-clustered":
		if b.Clusters < 1 || b.Fast <= 0 || b.Slow <= 0 {
			return fmt.Errorf("scenario %s: sparse-clustered bandwidth %d clusters fast=%v slow=%v", name, b.Clusters, b.Fast, b.Slow)
		}
		if err := b.validateDegree(name, nodes); err != nil {
			return err
		}
	case "cities":
		if nodes != 14 {
			return fmt.Errorf("scenario %s: cities bandwidth needs 14 nodes, have %d", name, nodes)
		}
	case "matrix":
		if len(b.Matrix) != nodes {
			return fmt.Errorf("scenario %s: bandwidth matrix of %d rows for %d nodes", name, len(b.Matrix), nodes)
		}
		for i, row := range b.Matrix {
			if len(row) != nodes {
				return fmt.Errorf("scenario %s: bandwidth matrix row %d has %d entries", name, i, len(row))
			}
			for j, v := range row {
				if v < 0 {
					return fmt.Errorf("scenario %s: negative bandwidth %v on link %d-%d", name, v, i, j)
				}
				if i != j && v == 0 {
					return fmt.Errorf("scenario %s: zero-bandwidth link %d-%d", name, i, j)
				}
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown bandwidth kind %q", name, b.Kind)
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		return fmt.Errorf("scenario %s: bandwidth jitter %v outside [0, 1)", name, b.Jitter)
	}
	return nil
}

func (b *BandwidthSpec) validateDegree(name string, nodes int) error {
	if nodes < 3 {
		return fmt.Errorf("scenario %s: sparse bandwidth needs at least 3 nodes, have %d", name, nodes)
	}
	if b.Degree < 2 || b.Degree > nodes-1 {
		return fmt.Errorf("scenario %s: sparse bandwidth degree %d outside [2, %d]", name, b.Degree, nodes-1)
	}
	return nil
}
