package algos

import (
	"fmt"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// Recipe is the deployment-neutral description of one algorithm run: enough
// to assemble the engine.Pattern, the per-rank engine.Codecs, each rank's
// engine.Node, and the coordinator-side engine.Planner — whether all ranks
// live in one process (the fleet constructors below) or one per machine (the
// TCP transport builds its single rank from the same recipe, so both
// deployments produce bit-identical trajectories).
type Recipe struct {
	// Algo selects the algorithm: saps | psgd | topk-psgd | qsgd-psgd |
	// d-psgd | dcd-psgd | ps-psgd | fedavg | s-fedavg, or the asynchronous
	// recipes adpsgd | gradpush (driven by engine.AsyncEngine instead of
	// the round loop — see Async).
	Algo string
	// Workers is the trainer count n. Hub algorithms add the parameter
	// server as one extra rank (rank n), so Nodes() is n or n+1.
	Workers int
	LR      float64
	Batch   int
	Seed    uint64
	// Compression is the SAPS shared-mask ratio c.
	Compression float64
	// LocalSteps is the local SGD steps per round (SAPS, FedAvg).
	LocalSteps int
	// C is the sparsifier ratio for topk-psgd, dcd-psgd and s-fedavg.
	C float64
	// Levels is the QSGD level count s.
	Levels int
	// Fraction is the FedAvg per-round participation ratio.
	Fraction float64
}

// AlgoNames lists the recipes' canonical -algo values.
var AlgoNames = []string{
	"saps", "psgd", "topk-psgd", "qsgd-psgd", "d-psgd", "dcd-psgd", "ps-psgd", "fedavg", "s-fedavg",
	"adpsgd", "gradpush",
}

// AsyncAlgoNames lists the asynchronous recipes (the tail of AlgoNames):
// barrier-free algorithms the event-driven async engine executes.
var AsyncAlgoNames = []string{"adpsgd", "gradpush"}

// Validate returns an error describing the first invalid field, if any.
func (r Recipe) Validate() error {
	switch {
	case r.Workers < 2:
		return fmt.Errorf("algos: recipe for %d workers", r.Workers)
	case r.LR <= 0 || r.Batch < 1:
		return fmt.Errorf("algos: recipe LR %v batch %d", r.LR, r.Batch)
	}
	switch r.Algo {
	case "saps":
		if r.Compression < 1 {
			return fmt.Errorf("algos: saps compression %v", r.Compression)
		}
	case "psgd", "d-psgd", "ps-psgd", "adpsgd", "gradpush":
	case "topk-psgd", "dcd-psgd":
		if r.C < 1 {
			return fmt.Errorf("algos: %s ratio c=%v", r.Algo, r.C)
		}
	case "qsgd-psgd":
		if r.Levels < 1 {
			return fmt.Errorf("algos: qsgd levels %d", r.Levels)
		}
	case "fedavg", "s-fedavg":
		if r.Fraction <= 0 || r.Fraction > 1 {
			return fmt.Errorf("algos: fedavg fraction %v", r.Fraction)
		}
		if r.LocalSteps < 1 {
			return fmt.Errorf("algos: fedavg local steps %d", r.LocalSteps)
		}
		if r.Algo == "s-fedavg" && r.C < 1 {
			return fmt.Errorf("algos: s-fedavg ratio c=%v", r.C)
		}
	default:
		return fmt.Errorf("algos: unknown algorithm %q (have %v)", r.Algo, AlgoNames)
	}
	return nil
}

// Hub reports whether the recipe deploys a parameter server.
func (r Recipe) Hub() bool {
	return r.Algo == "ps-psgd" || r.Algo == "fedavg" || r.Algo == "s-fedavg"
}

// Async reports whether the recipe is an asynchronous (barrier-free)
// algorithm: it has no synchronous Pattern and runs on engine.AsyncEngine
// (see NewAsyncFleet).
func (r Recipe) Async() bool {
	return r.Algo == "adpsgd" || r.Algo == "gradpush"
}

// OneWay reports whether the async recipe gossips one-way (push) instead of
// by bidirectional rendezvous.
func (r Recipe) OneWay() bool { return r.Algo == "gradpush" }

// Nodes is the total rank count (trainers plus server).
func (r Recipe) Nodes() int {
	if r.Hub() {
		return r.Workers + 1
	}
	return r.Workers
}

// ServerRank is the hub rank, or -1 for serverless algorithms.
func (r Recipe) ServerRank() int {
	if r.Hub() {
		return r.Workers
	}
	return -1
}

// localSteps returns the configured local steps, defaulting to 1.
func (r Recipe) localSteps() int {
	if r.LocalSteps < 1 {
		return 1
	}
	return r.LocalSteps
}

// sparseK is the sparsifier budget N/c, at least 1.
func sparseK(dim int, c float64) int {
	k := int(float64(dim) / c)
	if k < 1 {
		k = 1
	}
	return k
}

// ringAdjacency is the static ring the paper's decentralized baselines run
// on.
func ringAdjacency(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		prev, next := gossip.RingNeighbors(i, n)
		if prev == next { // n == 2: one neighbor
			adj[i] = []int{prev}
		} else {
			adj[i] = []int{prev, next}
		}
	}
	return adj
}

// ringWeights are the uniform 1/3 mixing weights of the paper's ring
// (1/(deg+1) in general), with the self weight absorbing the remainder.
func ringWeights(i, n int) (mix map[int]float64, self map[int]float64) {
	prev, next := gossip.RingNeighbors(i, n)
	mix = map[int]float64{}
	deg := 2
	if prev == next {
		deg = 1
	}
	w := 1 / float64(deg+1)
	mix[prev] = w
	mix[next] = w
	withSelf := map[int]float64{i: 1 - float64(len(mix))*w}
	for j, v := range mix {
		withSelf[j] = v
	}
	return mix, withSelf
}

// Pattern assembles the recipe's exchange pattern.
func (r Recipe) Pattern() engine.Pattern {
	switch r.Algo {
	case "saps":
		return engine.Pairwise{}
	case "psgd":
		return engine.Collective{}
	case "topk-psgd", "qsgd-psgd":
		return engine.AllGather{}
	case "d-psgd":
		return engine.NewNeighborhood(ringAdjacency(r.Workers), false)
	case "dcd-psgd":
		return engine.NewNeighborhood(ringAdjacency(r.Workers), true)
	case "ps-psgd", "fedavg", "s-fedavg":
		return engine.Hub{Server: r.ServerRank()}
	case "adpsgd", "gradpush":
		panic("algos: asynchronous recipe " + r.Algo + " has no synchronous pattern (run it on engine.NewAsync)")
	}
	panic("algos: Pattern on invalid recipe: " + r.Algo)
}

// Codecs assembles the per-rank codec table for models of the given
// dimension. Stateful codecs get rank-derived deterministic seeds, so every
// process (or the single in-process fleet) builds identical streams.
func (r Recipe) Codecs(dim int) []engine.Codec {
	n := r.Nodes()
	out := make([]engine.Codec, n)
	// The masked codec's round mask is identical across ranks, so every
	// codec in one table (= one process) shares a single cached mask.
	var masks *compress.MaskCache
	for rank := 0; rank < n; rank++ {
		switch r.Algo {
		case "saps":
			if masks == nil {
				masks = &compress.MaskCache{}
			}
			out[rank] = engine.NewMaskedShared(r.Compression, masks)
		case "psgd", "d-psgd", "ps-psgd", "fedavg", "adpsgd", "gradpush":
			out[rank] = engine.Dense{}
		case "topk-psgd":
			out[rank] = engine.NewTopK(sparseK(dim, r.C), dim, true)
		case "dcd-psgd":
			out[rank] = engine.NewTopK(sparseK(dim, r.C), dim, false)
		case "qsgd-psgd":
			out[rank] = engine.NewQSGDCodec(r.Levels, r.Seed+uint64(rank)*31)
		case "s-fedavg":
			if rank == r.ServerRank() {
				out[rank] = engine.Dense{} // dense model downlink
			} else {
				out[rank] = engine.NewRandomK(sparseK(dim, r.C), r.Seed+uint64(rank)*2654435761)
			}
		default:
			panic("algos: Codecs on invalid recipe: " + r.Algo)
		}
	}
	return out
}

// NewNode builds rank's engine.Node. model must come from the shared
// identically-seeded factory; shard is the rank's data shard (ignored for
// the hub server rank, which owns the global model instead and may pass
// nil). mirror, when non-nil on a hub server rank, receives the updated
// global parameters each round (the in-process harness evaluates on a worker
// model; TCP deployments pass nil).
func (r Recipe) NewNode(rank int, model *nn.Model, shard *dataset.Dataset, mirror *nn.Model) engine.Node {
	if r.Hub() && rank == r.ServerRank() {
		switch r.Algo {
		case "ps-psgd":
			return &psServerNode{model: model, mirror: mirror, lr: r.LR}
		case "fedavg":
			return &fedServerNode{model: model, mirror: mirror}
		case "s-fedavg":
			return &fedServerNode{model: model, mirror: mirror, counted: true}
		}
	}
	t := newLocalTrainer(rank, model, shard, r.Batch, r.LR, r.Seed)
	switch r.Algo {
	case "saps":
		cfg := core.Config{
			Workers:     r.Workers,
			Compression: r.Compression,
			LR:          r.LR,
			Batch:       r.Batch,
			LocalSteps:  r.localSteps(),
			Gossip:      gossip.Config{BThres: 0, TThres: 10},
			Seed:        r.Seed,
		}
		return engine.NewMaskedGossipNode(core.NewWorker(rank, model, shard, cfg))
	case "psgd":
		return &gradAvgNode{t: t, lr: r.LR, n: r.Workers}
	case "topk-psgd", "qsgd-psgd":
		return &gradAvgNode{t: t, lr: r.LR, n: r.Workers}
	case "d-psgd":
		_, withSelf := ringWeights(rank, r.Workers)
		return &neighborMixNode{t: t, lr: r.LR, weights: withSelf}
	case "dcd-psgd":
		mix, _ := ringWeights(rank, r.Workers)
		return newDCDNode(t, r.LR, mix, rank)
	case "ps-psgd":
		return &psWorkerNode{t: t}
	case "fedavg":
		return &fedWorkerNode{t: t, localSteps: r.localSteps()}
	case "s-fedavg":
		return &fedWorkerNode{t: t, localSteps: r.localSteps(), delta: true}
	case "adpsgd":
		return &adpsgdNode{t: t, localSteps: r.localSteps()}
	case "gradpush":
		return newGradPushNode(t, r.LR, r.localSteps())
	}
	panic("algos: NewNode on invalid recipe: " + r.Algo)
}

// Planner assembles the coordinator-side planner. bw and gcfg matter only
// for saps (Algorithm 3's bandwidth-aware matching); static algorithms plan
// trivial rounds and fedavg samples its participation fraction.
func (r Recipe) Planner(bw *netsim.Bandwidth, gcfg gossip.Config) engine.Planner {
	switch r.Algo {
	case "saps":
		cfg := core.Config{
			Workers:     r.Workers,
			Compression: r.Compression,
			LR:          r.LR,
			Batch:       r.Batch,
			LocalSteps:  r.localSteps(),
			Gossip:      gcfg,
			Seed:        r.Seed,
		}
		return core.NewCoordinator(bw, cfg)
	case "fedavg", "s-fedavg":
		k := int(r.Fraction * float64(r.Workers))
		if k < 1 {
			k = 1
		}
		return &fractionPlanner{
			n:      r.Workers,
			server: r.ServerRank(),
			k:      k,
			rnd:    rng.New(r.Seed).Derive(0xfeda),
		}
	default:
		return engine.PlannerFunc(func(t int) core.RoundPlan { return core.RoundPlan{Round: t} })
	}
}

// fractionPlanner draws max(1, fraction·n) distinct workers per round; the
// server is always active.
type fractionPlanner struct {
	n      int
	server int
	k      int
	rnd    *rng.Source
}

// Plan implements engine.Planner.
func (p *fractionPlanner) Plan(t int) core.RoundPlan {
	active := make([]bool, p.n+1)
	active[p.server] = true
	perm := p.rnd.Perm(p.n)
	for _, i := range perm[:p.k] {
		active[i] = true
	}
	return core.RoundPlan{Round: t, Active: active}
}
