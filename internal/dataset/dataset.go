// Package dataset provides the synthetic image-classification tasks that
// stand in for MNIST and CIFAR-10 (which are unavailable offline — see
// DESIGN.md §2), plus the IID / non-IID partitioning used to shard training
// data across decentralized workers.
//
// Each class is defined by a small number of smooth prototype images; a
// sample is a randomly scaled prototype plus Gaussian pixel noise. The tasks
// are learnable by the same CNN architectures the paper trains, have held-out
// validation splits, and give the same accuracy-vs-communication curve shapes
// the paper reports.
package dataset

import (
	"fmt"
	"math"

	"sapspsgd/internal/rng"
)

// Sample is one labeled image, stored channel-major (C×H×W flattened).
type Sample struct {
	X     []float64
	Label int
}

// Dataset is an in-memory labeled image collection.
type Dataset struct {
	Name    string
	C, H, W int
	Classes int
	Samples []Sample
}

// Dim returns the flattened input dimension C*H*W.
func (d *Dataset) Dim() int { return d.C * d.H * d.W }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// SynthConfig parameterizes the synthetic generator.
type SynthConfig struct {
	Name    string
	C, H, W int
	Classes int
	// PerClass is the number of prototype variants per class; more variants
	// make the task harder (intra-class variability).
	PerClass int
	// Noise is the standard deviation of the additive pixel noise.
	Noise float64
}

// prototypes builds smooth per-class pattern banks: low-frequency random
// fields obtained by mixing a few sinusoidal components with class-specific
// phases. Smoothness matters: it gives convolutions local structure to learn.
func prototypes(cfg SynthConfig, r *rng.Source) [][][]float64 {
	protos := make([][][]float64, cfg.Classes)
	for k := range protos {
		protos[k] = make([][]float64, cfg.PerClass)
		for v := range protos[k] {
			img := make([]float64, cfg.C*cfg.H*cfg.W)
			// Sum of a few random low-frequency plane waves per channel.
			for ch := 0; ch < cfg.C; ch++ {
				fx := 1 + r.Float64()*2
				fy := 1 + r.Float64()*2
				px := r.Float64() * 6.28318
				py := r.Float64() * 6.28318
				amp := 0.6 + 0.4*r.Float64()
				for y := 0; y < cfg.H; y++ {
					for x := 0; x < cfg.W; x++ {
						vv := amp * math.Sin(fx*float64(x)/float64(cfg.W)*6.28318+px) *
							math.Sin(fy*float64(y)/float64(cfg.H)*6.28318+py)
						img[ch*cfg.H*cfg.W+y*cfg.W+x] = vv
					}
				}
			}
			protos[k][v] = img
		}
	}
	return protos
}

// Synthetic generates n samples from cfg using the seed. Labels are balanced
// round-robin so every class appears ⌈n/Classes⌉ or ⌊n/Classes⌋ times.
func Synthetic(cfg SynthConfig, n int, seed uint64) *Dataset {
	if cfg.Classes < 2 || cfg.PerClass < 1 {
		panic(fmt.Sprintf("dataset: bad config %+v", cfg))
	}
	r := rng.New(seed)
	protos := prototypes(cfg, r.Derive(1))
	gen := r.Derive(2)
	d := &Dataset{
		Name:    cfg.Name,
		C:       cfg.C,
		H:       cfg.H,
		W:       cfg.W,
		Classes: cfg.Classes,
		Samples: make([]Sample, 0, n),
	}
	dim := cfg.C * cfg.H * cfg.W
	for i := 0; i < n; i++ {
		label := i % cfg.Classes
		proto := protos[label][gen.Intn(cfg.PerClass)]
		scale := 0.8 + 0.4*gen.Float64()
		x := make([]float64, dim)
		for j := range x {
			x[j] = scale*proto[j] + cfg.Noise*gen.NormFloat64()
		}
		d.Samples = append(d.Samples, Sample{X: x, Label: label})
	}
	// Shuffle so class order is not round-robin in storage.
	gen.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
	return d
}

// MNISTLike returns a 28×28×1, 10-class synthetic task sized like a scaled
// MNIST (train samples and an extra valid samples generated with a disjoint
// seed stream but the same prototypes would differ; instead, generate
// train+valid together and split — both splits share prototypes).
func MNISTLike(train, valid int, seed uint64) (tr, va *Dataset) {
	cfg := SynthConfig{Name: "mnist-like", C: 1, H: 28, W: 28, Classes: 10, PerClass: 2, Noise: 0.35}
	return split(Synthetic(cfg, train+valid, seed), train)
}

// CIFARLike returns a 32×32×3, 10-class synthetic task (noisier and with
// more intra-class variability than MNISTLike, mirroring CIFAR-10's relative
// difficulty).
func CIFARLike(train, valid int, seed uint64) (tr, va *Dataset) {
	cfg := SynthConfig{Name: "cifar-like", C: 3, H: 32, W: 32, Classes: 10, PerClass: 4, Noise: 0.6}
	return split(Synthetic(cfg, train+valid, seed), train)
}

// TinyInputDim is TinyTask's flattened input dimension (1×8×8). Planner-only
// scenario runs derive the model's parameter count from it without ever
// generating the dataset.
const TinyInputDim = 64

// TinyTask returns a small low-dimensional task for fast unit tests: 8×8×1,
// nclasses classes.
func TinyTask(n, nclasses int, seed uint64) (tr, va *Dataset) {
	cfg := SynthConfig{Name: "tiny", C: 1, H: 8, W: 8, Classes: nclasses, PerClass: 1, Noise: 0.25}
	return split(Synthetic(cfg, n+n/4, seed), n)
}

func split(d *Dataset, train int) (tr, va *Dataset) {
	if train > len(d.Samples) {
		train = len(d.Samples)
	}
	tr = &Dataset{Name: d.Name, C: d.C, H: d.H, W: d.W, Classes: d.Classes, Samples: d.Samples[:train]}
	va = &Dataset{Name: d.Name + "-valid", C: d.C, H: d.H, W: d.W, Classes: d.Classes, Samples: d.Samples[train:]}
	return tr, va
}
