package algos

// PSGD is synchronous data-parallel SGD over an exact all-reduce of dense
// gradients (Eq. (1) of the paper): every round all n workers average their
// minibatch gradients exactly and take the same step, so all models stay
// bit-identical. Composed as Collective pattern + Dense codec: power-of-two
// fleets run the bandwidth-optimal recursive halving/doubling butterfly
// (each worker ships exactly 2·N·(n-1)/n values per round — the classic
// ring-all-reduce cost of Table I — and receives the same), other sizes a
// complete all-gather. Both directions of every transfer are charged with
// measured codec bytes.
type PSGD struct {
	*engineAlgo
}

// NewPSGD builds the all-reduce baseline.
func NewPSGD(fc FleetConfig) *PSGD {
	r := Recipe{Algo: "psgd", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed}
	a, _ := newEngineAlgo("PSGD", fc, r, r.Planner(nil, defaultRecipeGossip()), nil)
	return &PSGD{engineAlgo: a}
}

var _ Algorithm = (*PSGD)(nil)

// TopKPSGD is PSGD with Top-k gradient sparsification and error feedback
// (DGC-style): each worker transmits only its N/c largest-magnitude
// compensated gradient entries, but must all-gather every other worker's
// sparse gradient, so per-worker traffic stays O(n·N/c). Composed as
// AllGather pattern + TopK codec (explicit 32-bit indices: 8 wire bytes per
// surviving value); every worker applies the average of the *decoded*
// gradients, its own included.
type TopKPSGD struct {
	*engineAlgo
}

// NewTopKPSGD builds the Top-k baseline with compression ratio c (the paper
// uses c = 1000).
func NewTopKPSGD(fc FleetConfig, c float64) *TopKPSGD {
	r := Recipe{Algo: "topk-psgd", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed, C: c}
	a, _ := newEngineAlgo("TopK-PSGD", fc, r, r.Planner(nil, defaultRecipeGossip()), nil)
	return &TopKPSGD{engineAlgo: a}
}

var _ Algorithm = (*TopKPSGD)(nil)
