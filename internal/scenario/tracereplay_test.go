// Trace-replay scenario tests: the committed saps-trace-noniid spec (edge
// trace + Dirichlet partition) is the determinism property's subject — its
// replay must be bit-identical at every shard count — and the trace/
// partition blocks' spec-level behavior is pinned here.
package scenario

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestTraceReplayDeterministicAcrossShards is the tentpole's shard-sweep
// property: replaying a trace scenario serially, at 1, 4, and NumCPU engine
// shards yields bit-identical traffic, loss, and simulated time. (The
// sim-vs-TCP half of the property lives in internal/transport.)
func TestTraceReplayDeterministicAcrossShards(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-trace-noniid.json"))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := spec.Run(-1) // goroutine-per-node pool reference
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, shards := range counts {
		got, err := spec.Run(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalBytes != serial.TotalBytes {
			t.Errorf("shards=%d: %d bytes, serial moved %d", shards, got.TotalBytes, serial.TotalBytes)
		}
		if got.FinalLoss != serial.FinalLoss {
			t.Errorf("shards=%d: final loss %v, serial %v", shards, got.FinalLoss, serial.FinalLoss)
		}
		if got.SimSeconds != serial.SimSeconds {
			t.Errorf("shards=%d: sim time %v, serial %v", shards, got.SimSeconds, serial.SimSeconds)
		}
	}
}

// TestTraceMembershipReplayed checks the events actually drive membership:
// the edge trace's scripted absences show up in the round recorder's
// active-worker counts at exactly the scripted rounds.
func TestTraceMembershipReplayed(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-trace-noniid.json"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.RunFull(RunOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Len() != spec.Rounds {
		t.Fatalf("trace recorder: %v", out.Trace)
	}
	// edge.csv: node 6 is away for [10, 18), node 7 for [12, 22); every
	// other node stays for the spec's 24 rounds.
	want := map[int]int{0: 12, 9: 12, 10: 11, 12: 10, 18: 11, 22: 12, 23: 12}
	events := out.Trace.Events()
	for round, active := range want {
		if events[round].ActiveWorkers != active {
			t.Errorf("round %d: %d active workers, trace scripts %d", round, events[round].ActiveWorkers, active)
		}
	}
}

// TestTraceMultipliersApplyToBaselines checks the algo-agnostic half of the
// replay: a bandwidth-only trace reshapes a baseline's link environment
// (simulated time shifts) without touching its numerics (loss and bytes are
// bandwidth-independent for psgd).
func TestTraceMultipliersApplyToBaselines(t *testing.T) {
	base := minimal()
	base.Nodes, base.Data.Samples = 12, 240
	plain, err := base.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	traced := base.Clone()
	traced.Trace = &TraceSpec{File: filepath.Join("testdata", "traces", "edge.csv")}
	got, err := traced.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalLoss != plain.FinalLoss || got.TotalBytes != plain.TotalBytes {
		t.Errorf("bandwidth-only trace changed numerics: loss %v vs %v, bytes %d vs %d",
			got.FinalLoss, plain.FinalLoss, got.TotalBytes, plain.TotalBytes)
	}
	if got.SimSeconds == plain.SimSeconds {
		t.Errorf("trace multipliers did not move simulated time (%v)", got.SimSeconds)
	}
}

// TestTraceComposesWithJitterAndFaults runs the full composition: jittered
// base bandwidth, trace multipliers on top, trace membership intersected
// with a scheduled crash — and the result must still be shard-deterministic.
func TestTraceComposesWithJitterAndFaults(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-trace-noniid.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec.Bandwidth.Jitter = 0.2
	spec.Faults = &FaultsSpec{Crashes: []CrashSpec{{Rank: 0, Round: 2, RejoinAfter: 3}}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := spec.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes != b.TotalBytes || a.FinalLoss != b.FinalLoss || a.SimSeconds != b.SimSeconds {
		t.Errorf("composed run diverges across shards: %+v vs %+v", a, b)
	}
	out, err := spec.RunFull(RunOptions{Shards: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: rank 0 crashed on top of full trace membership.
	if got := out.Trace.Events()[2].ActiveWorkers; got != 11 {
		t.Errorf("round 2 active workers %d, want 11 (scheduled crash on top of trace)", got)
	}
}

// TestTraceFileErrors pins the runtime (non-Validate) failures: a missing
// file and a trace larger than the fleet fail with actionable errors.
func TestTraceFileErrors(t *testing.T) {
	spec := minimal()
	spec.Trace = &TraceSpec{File: filepath.Join("testdata", "traces", "no-such.csv")}
	if _, err := spec.Run(1); err == nil {
		t.Error("missing trace file accepted")
	}
	small := minimal() // 4 nodes, edge.csv references 12
	small.Trace = &TraceSpec{File: filepath.Join("testdata", "traces", "edge.csv")}
	_, err := small.Run(1)
	if err == nil || !strings.Contains(err.Error(), "node 11") {
		t.Errorf("oversized trace: err = %v", err)
	}
}

// TestSpecDirResolution: Load resolves the trace file against the spec's
// directory, and SetDir rebinds it (what the campaign layer does for cells).
func TestSpecDirResolution(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-trace-noniid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spec.TracePath(), filepath.Join("testdata", "traces", "edge.csv"); got != want {
		t.Fatalf("TracePath = %q, want %q", got, want)
	}
	spec.SetDir("elsewhere")
	if got, want := spec.TracePath(), filepath.Join("elsewhere", "traces", "edge.csv"); got != want {
		t.Fatalf("after SetDir, TracePath = %q, want %q", got, want)
	}
	if minimalSpec := minimal(); minimalSpec.TracePath() != "" {
		t.Fatal("TracePath without a trace block")
	}
}

// TestNonIIDPartitionRuns pins the partition block end to end: the two skew
// kinds run, are shard-deterministic, and differ from the IID split.
func TestNonIIDPartitionRuns(t *testing.T) {
	base := minimal()
	base.Nodes, base.Data.Samples, base.Rounds = 8, 240, 3
	iid, err := base.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"dirichlet", "quantity"} {
		spec := base.Clone()
		spec.Partition = &PartitionSpec{Kind: kind, Alpha: 0.3, MinPerNode: 2}
		a, err := spec.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := spec.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if a.FinalLoss != b.FinalLoss || a.TotalBytes != b.TotalBytes {
			t.Errorf("%s: shard-dependent result", kind)
		}
		if a.FinalLoss == iid.FinalLoss {
			t.Errorf("%s: loss identical to IID split (%v) — partition not applied", kind, a.FinalLoss)
		}
	}
}
