package algos

import (
	"fmt"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/trace"
)

// ChurnModel describes per-round worker availability dynamics: an active
// worker leaves with probability LeaveProb, an inactive one rejoins with
// probability JoinProb. At least MinActive workers are always kept active
// (the longest-absent workers are recalled first).
type ChurnModel struct {
	LeaveProb float64
	JoinProb  float64
	MinActive int
}

func (c ChurnModel) validate(n int) {
	if c.LeaveProb < 0 || c.LeaveProb >= 1 || c.JoinProb <= 0 || c.JoinProb > 1 {
		panic(fmt.Sprintf("algos: churn probabilities %v/%v", c.LeaveProb, c.JoinProb))
	}
	if c.MinActive < 2 || c.MinActive > n {
		panic(fmt.Sprintf("algos: MinActive %d of %d", c.MinActive, n))
	}
}

// SAPSChurn is SAPS-PSGD under dynamic membership: each round a random
// subset of workers is offline — they neither train nor communicate, and
// the coordinator matches only the present workers (paper §I: workers "may
// join/leave the training randomly due to the battery power, network
// connection, ..."). Returning workers are re-synchronized by the gossip
// itself; no special recovery protocol is needed. SAPSChurn is itself the
// engine's Planner: membership evolves inside Plan, and the resulting
// RoundPlan carries the Active set the engine honors.
type SAPSChurn struct {
	fleet  *Fleet
	eng    *engine.Engine
	coord  *core.Coordinator
	churn  ChurnModel
	rnd    *rng.Source
	active []bool
	absent []int // rounds since last active (for MinActive recall)
	// ActiveHistory records the number of active workers each round.
	ActiveHistory []int
	// Trace, when set, records one event per round like SAPS.Trace, with
	// ActiveWorkers reflecting the round's surviving membership.
	Trace *trace.Recorder
	bw    *netsim.Bandwidth
}

// SetTrace attaches a round recorder (scenario.RunFull's hook).
func (s *SAPSChurn) SetTrace(r *trace.Recorder) { s.Trace = r }

// NewSAPSChurn builds SAPS-PSGD with the given churn model.
func NewSAPSChurn(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config, churn ChurnModel) *SAPSChurn {
	churn.validate(fc.N)
	f := NewFleet(fc)
	s := &SAPSChurn{
		fleet:  f,
		bw:     bw,
		churn:  churn,
		rnd:    rng.New(cfg.Seed).Derive(0xc4012),
		active: make([]bool, f.N),
		absent: make([]int, f.N),
		coord:  core.NewCoordinator(bw, cfg),
	}
	for i := range s.active {
		s.active[i] = true
	}
	s.eng = engine.New(engine.Options{
		Workers: newEngineWorkers(f, fc, cfg),
		Planner: s,
		Shards:  fc.RuntimeShards,
	})
	return s
}

// Name implements Algorithm.
func (s *SAPSChurn) Name() string { return "SAPS-PSGD(churn)" }

// Models implements Algorithm.
func (s *SAPSChurn) Models() []*nn.Model { return s.fleet.Models }

// Close releases the engine's worker pool.
func (s *SAPSChurn) Close() { s.eng.Close() }

// step churn: flip availability, then enforce MinActive by recalling the
// longest-absent workers.
func (s *SAPSChurn) updateMembership() {
	for i := range s.active {
		if s.active[i] {
			if s.rnd.Bernoulli(s.churn.LeaveProb) {
				s.active[i] = false
			}
		} else if s.rnd.Bernoulli(s.churn.JoinProb) {
			s.active[i] = true
		}
	}
	count := 0
	for _, a := range s.active {
		if a {
			count++
		}
	}
	for count < s.churn.MinActive {
		// Recall the longest-absent worker.
		best, bestAbsent := -1, -1
		for i, a := range s.active {
			if !a && s.absent[i] > bestAbsent {
				best, bestAbsent = i, s.absent[i]
			}
		}
		s.active[best] = true
		count++
	}
	for i, a := range s.active {
		if a {
			s.absent[i] = 0
		} else {
			s.absent[i]++
		}
	}
}

// Plan implements engine.Planner: advance the membership process, then run
// Algorithm 3 over the present workers only.
func (s *SAPSChurn) Plan(t int) core.RoundPlan {
	s.updateMembership()
	nActive := 0
	for _, a := range s.active {
		if a {
			nActive++
		}
	}
	s.ActiveHistory = append(s.ActiveHistory, nActive)
	return s.coord.PlanActive(t, s.active)
}

// Step implements Algorithm.
func (s *SAPSChurn) Step(round int, led engine.Ledger) float64 {
	stats, err := s.eng.Step(round, led)
	if err != nil {
		panic(err)
	}
	if s.Trace != nil {
		payload := compress.MaskedBytes(stats.PayloadLen)
		s.Trace.Record(round, stats.Plan.Matching(), s.bw, stats.Plan.Forced,
			payload, s.ActiveHistory[len(s.ActiveHistory)-1], stats.Loss)
	}
	return stats.Loss
}

var _ Algorithm = (*SAPSChurn)(nil)
var _ engine.Planner = (*SAPSChurn)(nil)

// Active exposes the current membership (matched pairs must both be active;
// verified by the tests).
func (s *SAPSChurn) Active() []bool { return s.active }
