package nn

import (
	"fmt"
	"math"

	"sapspsgd/internal/tensor"
)

// BatchNorm2D normalizes each channel over the batch and spatial positions
// (the standard spatial batch norm of ResNet). Running statistics accumulate
// with exponential decay for inference mode.
//
// The running mean/variance are internal statistics, not trained parameters,
// so they are intentionally NOT exposed via Params(): workers exchange only
// the learned γ/β (plus conv/dense weights), matching how the flat parameter
// vector is defined in the paper's algorithms.
type BatchNorm2D struct {
	In       Shape
	Eps      float64
	Momentum float64 // running-stat decay, e.g. 0.9

	gamma, beta   []float64
	dgamma, dbeta []float64

	runMean, runVar []float64

	// Backward caches.
	xhat   *tensor.Matrix
	invStd []float64
	rows   int
}

// NewBatchNorm2D returns a batch norm layer with γ=1, β=0.
func NewBatchNorm2D(in Shape) *BatchNorm2D {
	b := &BatchNorm2D{
		In:       in,
		Eps:      1e-5,
		Momentum: 0.9,
		gamma:    make([]float64, in.C),
		beta:     make([]float64, in.C),
		dgamma:   make([]float64, in.C),
		dbeta:    make([]float64, in.C),
		runMean:  make([]float64, in.C),
		runVar:   make([]float64, in.C),
	}
	for i := range b.gamma {
		b.gamma[i] = 1
		b.runVar[i] = 1
	}
	return b
}

// Forward normalizes per channel; training mode uses batch statistics and
// updates running statistics.
func (b *BatchNorm2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != b.In.Dim() {
		panic(fmt.Sprintf("nn: BatchNorm2D input %d, want %d", x.Cols, b.In.Dim()))
	}
	hw := b.In.H * b.In.W
	out := tensor.NewMatrix(x.Rows, x.Cols)

	if !train {
		for i := 0; i < x.Rows; i++ {
			in := x.Row(i)
			o := out.Row(i)
			for c := 0; c < b.In.C; c++ {
				inv := 1 / math.Sqrt(b.runVar[c]+b.Eps)
				g, bt, mu := b.gamma[c], b.beta[c], b.runMean[c]
				for j := c * hw; j < (c+1)*hw; j++ {
					o[j] = g*(in[j]-mu)*inv + bt
				}
			}
		}
		return out
	}

	n := float64(x.Rows * hw)
	b.rows = x.Rows
	b.xhat = tensor.NewMatrix(x.Rows, x.Cols)
	if len(b.invStd) != b.In.C {
		b.invStd = make([]float64, b.In.C)
	}
	for c := 0; c < b.In.C; c++ {
		mean := 0.0
		for i := 0; i < x.Rows; i++ {
			in := x.Row(i)
			for j := c * hw; j < (c+1)*hw; j++ {
				mean += in[j]
			}
		}
		mean /= n
		variance := 0.0
		for i := 0; i < x.Rows; i++ {
			in := x.Row(i)
			for j := c * hw; j < (c+1)*hw; j++ {
				d := in[j] - mean
				variance += d * d
			}
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+b.Eps)
		b.invStd[c] = inv
		g, bt := b.gamma[c], b.beta[c]
		for i := 0; i < x.Rows; i++ {
			in := x.Row(i)
			xh := b.xhat.Row(i)
			o := out.Row(i)
			for j := c * hw; j < (c+1)*hw; j++ {
				h := (in[j] - mean) * inv
				xh[j] = h
				o[j] = g*h + bt
			}
		}
		b.runMean[c] = b.Momentum*b.runMean[c] + (1-b.Momentum)*mean
		b.runVar[c] = b.Momentum*b.runVar[c] + (1-b.Momentum)*variance
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if b.xhat == nil {
		panic("nn: BatchNorm2D.Backward before training Forward")
	}
	hw := b.In.H * b.In.W
	n := float64(b.rows * hw)
	dx := tensor.NewMatrix(b.rows, b.In.Dim())
	for c := 0; c < b.In.C; c++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < b.rows; i++ {
			dr := dout.Row(i)
			xh := b.xhat.Row(i)
			for j := c * hw; j < (c+1)*hw; j++ {
				sumDy += dr[j]
				sumDyXhat += dr[j] * xh[j]
			}
		}
		b.dbeta[c] += sumDy
		b.dgamma[c] += sumDyXhat
		coef := b.gamma[c] * b.invStd[c]
		for i := 0; i < b.rows; i++ {
			dr := dout.Row(i)
			xh := b.xhat.Row(i)
			dxr := dx.Row(i)
			for j := c * hw; j < (c+1)*hw; j++ {
				dxr[j] = coef * (dr[j] - sumDy/n - xh[j]*sumDyXhat/n)
			}
		}
	}
	b.xhat = nil
	return dx
}

// Params returns γ and β.
func (b *BatchNorm2D) Params() []Param {
	return []Param{
		{Name: "bn.gamma", Data: b.gamma, Grad: b.dgamma},
		{Name: "bn.beta", Data: b.beta, Grad: b.dbeta},
	}
}

// RunningState implements Stateful: running mean followed by running
// variance.
func (b *BatchNorm2D) RunningState() []float64 {
	out := make([]float64, 0, 2*b.In.C)
	out = append(out, b.runMean...)
	return append(out, b.runVar...)
}

// SetRunningState implements Stateful.
func (b *BatchNorm2D) SetRunningState(s []float64) {
	if len(s) != 2*b.In.C {
		panic(fmt.Sprintf("nn: BatchNorm2D state length %d, want %d", len(s), 2*b.In.C))
	}
	copy(b.runMean, s[:b.In.C])
	copy(b.runVar, s[b.In.C:])
}

var _ Layer = (*BatchNorm2D)(nil)
