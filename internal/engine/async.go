package engine

import (
	"fmt"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/obs"
	"sapspsgd/internal/rng"
)

// This file is the engine's asynchronous driver: a single-goroutine
// discrete-event simulation over netsim's virtual-time EventQueue, in which
// ranks gossip without a global barrier. Each rank loops compute → gossip
// against the event clock; a slow or jittered rank delays only the partners
// that rendezvous with it, never the fleet. Because the whole execution is
// one goroutine draining a totally-ordered queue, and every random draw
// comes from seeded per-rank streams, a run is bit-reproducible regardless
// of GOMAXPROCS or Go's scheduler — the property the async-determinism CI
// job replays.

// AsyncNode extends Node for the barrier-free driver: a passive rendezvous
// partner must surrender its current parameter vector at any virtual time,
// not only after a Compute of its own.
type AsyncNode interface {
	Node
	// Snapshot returns the node's current shareable vector (the same
	// semantics as Compute's out). The returned slice may be node-owned
	// scratch; the driver consumes it before the node runs again.
	Snapshot() []float64
}

// AsyncComputeModel is the virtual-duration model of one rank's local
// compute block between gossips. Durations are virtual time only — they
// shape the event timeline, never the numerics drawn from the training
// streams.
type AsyncComputeModel struct {
	// MeanSeconds is the mean virtual compute duration (> 0).
	MeanSeconds float64
	// Jitter in [0, 1) scales each block by an independent uniform draw
	// from [1-Jitter, 1+Jitter].
	Jitter float64
	// SlowFactor (≥ 1) multiplies the duration of the ranks in SlowRanks —
	// the honest straggler model: only their rendezvous partners wait.
	SlowFactor float64
	// SlowRanks lists the straggling ranks.
	SlowRanks []int
}

// AsyncOptions configures one asynchronous execution.
type AsyncOptions struct {
	// Nodes holds every rank's state machine.
	Nodes []AsyncNode
	// Codecs is the shared per-rank codec table (receivers decode with the
	// sender's codec, as in the synchronous engine).
	Codecs []Codec
	// Bandwidth is the link environment; gossip partners are drawn
	// uniformly from a rank's positive-bandwidth neighbors.
	Bandwidth *netsim.Bandwidth
	// Seed derives every random stream of the run (partner choice, compute
	// jitter) via per-rank substreams.
	Seed uint64
	// Steps is the number of gossip cycles each rank initiates.
	Steps int
	// OneWay selects push gossip (Gradient Push): the initiator's payload
	// is delivered one-way and the receiver is never blocked. Default is
	// the bidirectional rendezvous (AD-PSGD): both endpoints exchange and
	// are busy for the transfer.
	OneWay bool
	// LatencySec is the fixed per-transfer latency added to each gossip.
	LatencySec float64
	// Compute is the virtual compute-duration model.
	Compute AsyncComputeModel
	// SampleEvery emits one series sample per that many completed gossips
	// fleet-wide (0 = one per len(Nodes), roughly a synchronous round's
	// worth).
	SampleEvery int
	// Sink, when non-nil, receives every processed event in virtual-time
	// order — the determinism gate's byte-comparison artifact.
	Sink *netsim.EventLog
}

// AsyncSample is one point of the virtual-time convergence series.
type AsyncSample struct {
	// Steps is the fleet-wide completed-gossip count at the sample.
	Steps int
	// Time is the virtual time of the sample.
	Time float64
	// MeanLoss is the mean training loss over the window's compute blocks.
	MeanLoss float64
	// CumBytes is the cumulative fleet traffic at the sample.
	CumBytes int64
}

// AsyncResult is one asynchronous execution's outcome.
type AsyncResult struct {
	// Steps is the total completed gossip count (len(Nodes) · Steps).
	Steps int
	// FinalTime is the virtual time of the last processed event.
	FinalTime float64
	// TotalBytes is the fleet traffic total (every endpoint's sent +
	// received).
	TotalBytes int64
	// FinalLoss is the mean loss of the last sample window.
	FinalLoss float64
	// Samples is the virtual-time convergence series.
	Samples []AsyncSample
	// SentBytes and RecvBytes are the cumulative per-rank byte totals —
	// the async ledger the determinism gate serializes.
	SentBytes, RecvBytes []int64
}

// pendingTransfer is one in-flight gossip, keyed by its initiator (a rank
// initiates at most one transfer at a time: it is blocked until delivery).
type pendingTransfer struct {
	peer  int
	words []float64 // copied payload: codec buffers are reused across events
	bytes int64
	step  int
}

// AsyncEngine executes an asynchronous gossip run. Construct with NewAsync,
// run once with Run.
type AsyncEngine struct {
	opts    AsyncOptions
	n       int
	nbrs    [][]int       // positive-bandwidth neighbors, ascending
	streams []*rng.Source // per-rank draw stream (durations, partners)
	freeAt  []float64     // when the rank's committed engagements end
	pending []pendingTransfer
	sent    []int64
	recv    []int64
	q       netsim.EventQueue
	// nm/em are the observability sinks (zero value = disabled), captured
	// once at construction.
	nm obs.NetsimMetrics
	em obs.EngineMetrics
}

// NewAsync validates the options and builds the driver.
func NewAsync(opts AsyncOptions) (*AsyncEngine, error) {
	n := len(opts.Nodes)
	switch {
	case n < 2:
		return nil, fmt.Errorf("engine: async fleet of %d", n)
	case len(opts.Codecs) != n:
		return nil, fmt.Errorf("engine: %d codecs for %d async nodes", len(opts.Codecs), n)
	case opts.Bandwidth == nil || opts.Bandwidth.N != n:
		return nil, fmt.Errorf("engine: async bandwidth environment does not cover %d nodes", n)
	case opts.Steps < 1:
		return nil, fmt.Errorf("engine: async steps %d", opts.Steps)
	case opts.Compute.MeanSeconds <= 0:
		return nil, fmt.Errorf("engine: async compute mean %v", opts.Compute.MeanSeconds)
	case opts.Compute.Jitter < 0 || opts.Compute.Jitter >= 1:
		return nil, fmt.Errorf("engine: async compute jitter %v outside [0, 1)", opts.Compute.Jitter)
	case opts.LatencySec < 0:
		return nil, fmt.Errorf("engine: async latency %v", opts.LatencySec)
	}
	if opts.Compute.SlowFactor != 0 && opts.Compute.SlowFactor < 1 {
		return nil, fmt.Errorf("engine: async slow factor %v < 1", opts.Compute.SlowFactor)
	}
	for _, r := range opts.Compute.SlowRanks {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("engine: async slow rank %d of %d", r, n)
		}
	}
	nbrs := make([][]int, n)
	opts.Bandwidth.ForEachEdge(0, func(u, v int, _ float64) {
		nbrs[u] = append(nbrs[u], v)
		nbrs[v] = append(nbrs[v], u)
	})
	for r, adj := range nbrs {
		if len(adj) == 0 {
			return nil, fmt.Errorf("engine: async rank %d has no positive-bandwidth neighbor", r)
		}
	}
	e := &AsyncEngine{
		opts:    opts,
		n:       n,
		nbrs:    nbrs,
		streams: make([]*rng.Source, n),
		freeAt:  make([]float64, n),
		pending: make([]pendingTransfer, n),
		sent:    make([]int64, n),
		recv:    make([]int64, n),
		nm:      obs.Current().NetsimM(),
		em:      obs.Current().EngineM(),
	}
	base := rng.New(opts.Seed)
	for r := 0; r < n; r++ {
		e.streams[r] = base.Derive(0xa0000 + uint64(r))
	}
	return e, nil
}

// slow reports the rank's compute-duration multiplier.
func (e *AsyncEngine) slow(rank int) float64 {
	f := e.opts.Compute.SlowFactor
	if f == 0 {
		return 1
	}
	for _, r := range e.opts.Compute.SlowRanks {
		if r == rank {
			return f
		}
	}
	return 1
}

// computeDur draws one compute block's virtual duration from the rank's
// stream.
func (e *AsyncEngine) computeDur(rank int) float64 {
	c := e.opts.Compute
	dur := c.MeanSeconds
	if c.Jitter > 0 {
		dur *= 1 + c.Jitter*(2*e.streams[rank].Float64()-1)
	}
	return dur * e.slow(rank)
}

// ctx builds a rank's RoundContext at a gossip step. Round carries the
// step index so stateful codecs stay coherent; there is no coordinator
// plan in async mode.
func (e *AsyncEngine) ctx(rank, step int) RoundContext {
	return RoundContext{Round: step, Seed: e.opts.Seed, Self: rank, N: e.n}
}

// emit forwards a processed event to the sink.
func (e *AsyncEngine) emit(ev netsim.Event) {
	if e.opts.Sink != nil {
		e.opts.Sink.Append(ev)
	}
}

// Run executes the whole asynchronous run on the calling goroutine and
// returns its measurements. It must be called exactly once.
func (e *AsyncEngine) Run() (*AsyncResult, error) {
	sampleEvery := e.opts.SampleEvery
	if sampleEvery < 1 {
		sampleEvery = e.n
	}
	res := &AsyncResult{
		Steps:     e.n * e.opts.Steps,
		SentBytes: e.sent,
		RecvBytes: e.recv,
		Samples:   make([]AsyncSample, 0, e.n*e.opts.Steps/sampleEvery+1),
	}
	// Every rank begins its first compute block at virtual time zero.
	for r := 0; r < e.n; r++ {
		dur := e.computeDur(r)
		e.freeAt[r] = dur
		e.q.Push(netsim.Event{Time: dur, Kind: netsim.EventComputeDone, Rank: int32(r), Peer: -1})
	}
	var (
		fleetDone int     // completed gossips fleet-wide
		lossSum   float64 // window loss accumulator
		lossN     int
		cumBytes  int64
		lastLoss  float64
	)
	for {
		ev, ok := e.q.Pop()
		if !ok {
			break
		}
		e.emit(ev)
		res.FinalTime = ev.Time
		e.nm.EventsTotal.Inc()
		e.nm.VirtualSeconds.Set(ev.Time)
		e.nm.EventQueueDepth.Set(int64(e.q.Len()))
		r := int(ev.Rank)
		switch ev.Kind {
		case netsim.EventComputeDone:
			step := int(ev.Round)
			loss, out, err := e.opts.Nodes[r].Compute(e.ctx(r, step))
			if err != nil {
				return nil, fmt.Errorf("engine: async rank %d step %d: %w", r, step, err)
			}
			lossSum += loss
			lossN++
			words, err := e.opts.Codecs[r].Encode(e.ctx(r, step), out)
			if err != nil {
				return nil, fmt.Errorf("engine: async rank %d step %d encode: %w", r, step, err)
			}
			p := e.nbrs[r][e.streams[r].Intn(len(e.nbrs[r]))]
			pend := &e.pending[r]
			pend.peer = p
			pend.step = step
			pend.words = append(pend.words[:0], words...)
			pend.bytes = e.opts.Codecs[r].WireBytes(words)
			mbps := e.opts.Bandwidth.MBps(r, p)
			// A passive rendezvous may have extended this rank's own
			// commitments while it computed; the new transfer queues behind
			// them.
			start := ev.Time
			if e.freeAt[r] > start {
				start = e.freeAt[r]
			}
			var total int64
			if e.opts.OneWay {
				// Push gossip: the receiver is never blocked, the sender's
				// NIC carries one payload.
				total = pend.bytes
			} else {
				// Rendezvous: also wait out the partner's committed
				// engagements (its current compute block or transfer), then
				// exchange payloads both ways on the shared link.
				if e.freeAt[p] > start {
					start = e.freeAt[p]
				}
				total = 2 * pend.bytes
			}
			end := start + float64(total)/(mbps*1e6) + e.opts.LatencySec
			e.freeAt[r] = end
			if !e.opts.OneWay {
				e.freeAt[p] = end
			}
			e.q.Push(netsim.Event{Time: start, Kind: netsim.EventTransferStart,
				Rank: int32(r), Peer: int32(p), Round: int32(step), Bytes: total})
			e.q.Push(netsim.Event{Time: end, Kind: netsim.EventTransferComplete,
				Rank: int32(r), Peer: int32(p), Round: int32(step), Bytes: total})

		case netsim.EventTransferStart:
			// Bookkeeping only: the payload is committed, delivery happens at
			// the completion event.

		case netsim.EventTransferComplete:
			pend := &e.pending[r]
			p := pend.peer
			step := pend.step
			rctx, pctx := e.ctx(r, step), e.ctx(p, step)
			vals, err := e.opts.Codecs[r].Decode(pctx, pend.words)
			if err != nil {
				return nil, fmt.Errorf("engine: async rank %d step %d decode: %w", r, step, err)
			}
			e.sent[r] += pend.bytes
			e.recv[p] += pend.bytes
			cumBytes += pend.bytes
			e.em.WireBytesTotal.Add(2 * pend.bytes)
			if !e.opts.OneWay {
				// The rendezvous is atomic at delivery time: the partner
				// surrenders its *current* vector, so both endpoints average
				// exactly the same pair of states (the initiator's is frozen —
				// it has been blocked since its Compute).
				snap := e.opts.Nodes[p].Snapshot()
				back, err := e.opts.Codecs[p].Encode(pctx, snap)
				if err != nil {
					return nil, fmt.Errorf("engine: async rank %d step %d snapshot encode: %w", p, step, err)
				}
				backBytes := e.opts.Codecs[p].WireBytes(back)
				if backBytes != pend.bytes {
					return nil, fmt.Errorf("engine: async rendezvous %d↔%d payloads differ (%d vs %d bytes); bidirectional gossip needs symmetric codecs",
						r, p, pend.bytes, backBytes)
				}
				backVals, err := e.opts.Codecs[p].Decode(rctx, back)
				if err != nil {
					return nil, fmt.Errorf("engine: async rank %d step %d snapshot decode: %w", p, step, err)
				}
				e.sent[p] += backBytes
				e.recv[r] += backBytes
				cumBytes += backBytes
				e.em.WireBytesTotal.Add(2 * backBytes)
				if err := e.opts.Nodes[r].Merge(rctx, []PeerMsg{{From: p, Vals: backVals, Words: back, Bytes: backBytes}}); err != nil {
					return nil, fmt.Errorf("engine: async rank %d step %d merge: %w", r, step, err)
				}
			}
			if err := e.opts.Nodes[p].Merge(pctx, []PeerMsg{{From: r, Vals: vals, Words: pend.words, Bytes: pend.bytes}}); err != nil {
				return nil, fmt.Errorf("engine: async rank %d step %d merge: %w", p, step, err)
			}
			fleetDone++
			if step+1 < e.opts.Steps {
				// The next compute block queues behind any rendezvous the
				// rank was passively committed to during the transfer.
				begin := ev.Time
				if e.freeAt[r] > begin {
					begin = e.freeAt[r]
				}
				done := begin + e.computeDur(r)
				e.freeAt[r] = done
				e.q.Push(netsim.Event{Time: done, Kind: netsim.EventComputeDone,
					Rank: int32(r), Peer: -1, Round: int32(step + 1)})
			}
			if fleetDone%sampleEvery == 0 {
				if lossN > 0 {
					lastLoss = lossSum / float64(lossN)
				}
				res.Samples = append(res.Samples, AsyncSample{
					Steps: fleetDone, Time: ev.Time, MeanLoss: lastLoss, CumBytes: cumBytes,
				})
				lossSum, lossN = 0, 0
			}
		}
	}
	if lossN > 0 {
		lastLoss = lossSum / float64(lossN)
		res.Samples = append(res.Samples, AsyncSample{
			Steps: fleetDone, Time: res.FinalTime, MeanLoss: lastLoss, CumBytes: cumBytes,
		})
	}
	res.FinalLoss = lastLoss
	for r := 0; r < e.n; r++ {
		res.TotalBytes += e.sent[r] + e.recv[r]
	}
	return res, nil
}
