package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sapspsgd/internal/scenario"
)

// loadExample loads the committed example campaign and its base scenario.
func loadExample(t *testing.T) (*Spec, *scenario.Spec) {
	t.Helper()
	c, err := Load(filepath.Join("testdata", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.LoadBase()
	if err != nil {
		t.Fatal(err)
	}
	return c, base
}

// TestExpandDeterministic pins the run-matrix contract: the committed
// example expands to at least eight cells, expansion is a pure function of
// the specs (identical IDs, order and SHAs on repeat), IDs are unique, and
// every cell spec validates.
func TestExpandDeterministic(t *testing.T) {
	c, base := loadExample(t)
	first, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) < 8 {
		t.Fatalf("example campaign expands to %d cells, want >= 8", len(first))
	}
	second, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("expansion size changed: %d vs %d", len(first), len(second))
	}
	seen := map[string]bool{}
	for i := range first {
		if first[i].ID != second[i].ID || first[i].SHA != second[i].SHA || first[i].Index != i {
			t.Fatalf("cell %d drifted: (%s, %s, %d) vs (%s, %s, %d)",
				i, first[i].ID, first[i].SHA, first[i].Index, second[i].ID, second[i].SHA, second[i].Index)
		}
		if seen[first[i].ID] {
			t.Fatalf("duplicate cell id %s", first[i].ID)
		}
		seen[first[i].ID] = true
		if err := first[i].Spec.Validate(); err != nil {
			t.Fatalf("cell %s does not validate: %v", first[i].ID, err)
		}
	}
}

// TestCompressionAxisCollapses pins the ratio-knob rule: algorithms without
// a compression knob yield one cell per remaining grid point however many
// ratios are swept, while knobbed algorithms get one cell per ratio.
func TestCompressionAxisCollapses(t *testing.T) {
	c, base := loadExample(t)
	c.Grid = Grid{Algo: []string{"saps", "psgd"}, Compression: []float64{10, 100}}
	cells, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, cell := range cells {
		ids = append(ids, cell.ID)
	}
	want := []string{"saps_c10", "saps_c100", "psgd"}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("cells %v, want %v", ids, want)
	}
	if cells[0].Spec.Compression != 10 || cells[1].Spec.Compression != 100 {
		t.Fatalf("saps compression knobs %v/%v", cells[0].Spec.Compression, cells[1].Spec.Compression)
	}
	if cells[2].Spec.Compression != 0 || cells[2].Compression != 0 {
		t.Fatalf("psgd cell carries a compression ratio")
	}

	// A compression-only grid over a knobless base algorithm collapses to
	// one cell with the fallback ID (no swept axis contributes a part).
	c.Grid = Grid{Compression: []float64{10, 100}}
	base2 := base.Clone()
	base2.Algo, base2.Compression = "psgd", 0
	only, err := c.Expand(base2)
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 1 || only[0].ID != "base" {
		t.Fatalf("fully collapsed grid: %d cells, id %q", len(only), only[0].ID)
	}
}

func TestCampaignRejectsMalformed(t *testing.T) {
	valid := `{
		"schema_version": 1, "name": "t", "base": "tiny-base.json",
		"grid": {"seeds": [1, 2]}
	}`
	cases := []struct {
		name string
		json string
		want string
	}{
		{"wrong schema version", strings.Replace(valid, `"schema_version": 1`, `"schema_version": 9`, 1), "schema_version"},
		{"missing name", strings.Replace(valid, `"name": "t"`, `"name": ""`, 1), "missing name"},
		{"missing base", strings.Replace(valid, `"base": "tiny-base.json"`, `"base": ""`, 1), "missing base"},
		{"empty grid", strings.Replace(valid, `{"seeds": [1, 2]}`, `{}`, 1), "empty grid"},
		{"unknown field", strings.Replace(valid, `"name": "t"`, `"name": "t", "warp": 9`, 1), "warp"},
		{"compression below one", strings.Replace(valid, `{"seeds": [1, 2]}`, `{"compression": [0.5]}`, 1), "compression ratio"},
		{"zero grid nodes", strings.Replace(valid, `{"seeds": [1, 2]}`, `{"nodes": [0]}`, 1), "grid nodes"},
		{"zero grid rounds", strings.Replace(valid, `{"seeds": [1, 2]}`, `{"rounds": [0]}`, 1), "grid rounds"},
		{"zero grid shards", strings.Replace(valid, `{"seeds": [1, 2]}`, `{"shards": [0]}`, 1), "grid shards"},
		{"negative workers", strings.Replace(valid, `"base": "tiny-base.json"`, `"base": "tiny-base.json", "workers": -1`, 1), "workers"},
		{"duplicate bandwidth labels", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"bandwidth": [{"kind": "uniform", "lo": 1, "hi": 5}, {"kind": "uniform", "lo": 2, "hi": 9}]}`, 1), "duplicate bandwidth label"},
		{"path-traversal bandwidth name", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"bandwidth": [{"name": "../escape", "kind": "uniform", "lo": 1, "hi": 5}]}`, 1), "not filename-safe"},
		{"separator in bandwidth name", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"bandwidth": [{"name": "a/b", "kind": "uniform", "lo": 1, "hi": 5}]}`, 1), "not filename-safe"},
		{"duplicate trace labels", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"traces": [{"file": "a/edge.csv"}, {"file": "b/edge.csv"}]}`, 1), "duplicate trace label"},
		{"path-traversal trace name", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"traces": [{"name": "../escape", "file": "edge.csv"}]}`, 1), "not filename-safe"},
		{"anonymous no-trace entry", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"traces": [{"events": true}]}`, 1), "neither file nor name"},
		{"duplicate partition labels", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"partition": [{"kind": "dirichlet", "alpha": 0.1}, {"kind": "dirichlet", "alpha": 0.5}]}`, 1), "duplicate partition label"},
		{"anonymous kindless partition entry", strings.Replace(valid, `{"seeds": [1, 2]}`,
			`{"partition": [{"alpha": 0.5}]}`, 1), "neither name nor kind"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json), "testdata")
			if err == nil {
				t.Fatalf("accepted a campaign with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExpandRejectsInvalidCells checks grid-level problems that only
// surface per cell: invalid derived scenarios are reported with the cell
// ID, and duplicate axis values collide on their IDs.
func TestExpandRejectsInvalidCells(t *testing.T) {
	c, base := loadExample(t)
	c.Grid = Grid{Bandwidth: []GridBandwidth{{
		Name:          "cities",
		BandwidthSpec: scenario.BandwidthSpec{Kind: "cities"},
	}}}
	if _, err := c.Expand(base); err == nil || !strings.Contains(err.Error(), "cell cities") || !strings.Contains(err.Error(), "14 nodes") {
		t.Fatalf("cities/nodes mismatch not reported per cell: %v", err)
	}
	c.Grid = Grid{Seeds: []uint64{7, 7}}
	if _, err := c.Expand(base); err == nil || !strings.Contains(err.Error(), "share id") {
		t.Fatalf("duplicate axis values not caught: %v", err)
	}
}

// runExample executes the committed example campaign into dir and returns
// the executed cell IDs in completion order.
func runExample(t *testing.T, dir string, opts Options) (Stats, []string) {
	t.Helper()
	c, _ := loadExample(t)
	var (
		mu  sync.Mutex
		ids []string
	)
	opts.OutDir = dir
	opts.Observer = func(id string) {
		mu.Lock()
		ids = append(ids, id)
		mu.Unlock()
	}
	stats, err := Run(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	return stats, ids
}

// aggregateArtifacts are the campaign outputs pinned byte-for-byte across
// repeat and resumed runs.
var aggregateArtifacts = []string{
	"aggregate.json", "summary.md", "summary.csv",
	"traffic_by_algo.md", "traffic_by_algo.csv",
	"loss_vs_round.csv", "loss_vs_bytes.csv",
}

// TestRunResumeAndDeterminism is the campaign acceptance gate: interrupt a
// campaign mid-flight (MaxCells), resume it, and verify no cell executed
// twice and every aggregate artifact is byte-identical to an uninterrupted
// run's. A third no-op invocation must skip everything.
func TestRunResumeAndDeterminism(t *testing.T) {
	full := t.TempDir()
	statsFull, idsFull := runExample(t, full, Options{})
	if statsFull.Planned < 8 || statsFull.Executed != statsFull.Planned || !statsFull.Aggregated {
		t.Fatalf("uninterrupted run: %+v", statsFull)
	}

	resumed := t.TempDir()
	statsA, idsA := runExample(t, resumed, Options{MaxCells: 3})
	if statsA.Executed != 3 || statsA.Remaining != statsFull.Planned-3 || statsA.Aggregated {
		t.Fatalf("interrupted run: %+v", statsA)
	}
	statsB, idsB := runExample(t, resumed, Options{})
	if statsB.Skipped != 3 || statsB.Executed != statsFull.Planned-3 || statsB.Remaining != 0 || !statsB.Aggregated {
		t.Fatalf("resumed run: %+v", statsB)
	}
	ran := map[string]int{}
	for _, id := range append(idsA, idsB...) {
		ran[id]++
	}
	if len(ran) != statsFull.Planned {
		t.Fatalf("interrupt+resume covered %d cells, want %d", len(ran), statsFull.Planned)
	}
	for id, n := range ran {
		if n != 1 {
			t.Fatalf("cell %s executed %d times across interrupt+resume", id, n)
		}
	}
	if len(idsFull) != statsFull.Planned {
		t.Fatalf("observer saw %d executions on the full run, want %d", len(idsFull), statsFull.Planned)
	}
	for _, name := range aggregateArtifacts {
		a, err := os.ReadFile(filepath.Join(full, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(resumed, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between the uninterrupted and resumed campaigns", name)
		}
	}

	statsC, idsC := runExample(t, resumed, Options{})
	if statsC.Executed != 0 || statsC.Skipped != statsFull.Planned || len(idsC) != 0 {
		t.Fatalf("no-op re-run executed cells: %+v", statsC)
	}
}

// TestLargeNCampaignExpands validates the committed large-N campaign capsule
// without running it (the 50k cell is an off-CI artifact, ~7 s/round on one
// core): every cell must stay planner-only over a sparse environment — the
// point of the capsule is that no cell ever materializes an N² bandwidth
// matrix or a per-rank model fleet.
func TestLargeNCampaignExpands(t *testing.T) {
	c, err := Load(filepath.Join("testdata", "largen.json"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.LoadBase()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("largen expands to %d cells, want 3", len(cells))
	}
	want50k := false
	for _, cell := range cells {
		if !cell.Spec.PlannerOnly {
			t.Errorf("cell %s lost planner_only", cell.ID)
		}
		if !strings.HasPrefix(cell.Spec.Bandwidth.Kind, "sparse-") {
			t.Errorf("cell %s runs over dense bandwidth kind %q", cell.ID, cell.Spec.Bandwidth.Kind)
		}
		if cell.Spec.Nodes == 50000 {
			want50k = true
		}
	}
	if !want50k {
		t.Fatal("largen campaign has no 50k-node cell")
	}
}

// TestPlannerOnlyCampaignRuns executes a scaled-down planner-only campaign
// end to end through the orchestrator: cells complete, account deterministic
// traffic, and aggregate without ever training a model (final loss is zero
// by construction on the planner-only path).
func TestPlannerOnlyCampaignRuns(t *testing.T) {
	spec := `{
		"schema_version": 1, "name": "largen-smoke", "base": "largen-base.json",
		"grid": {"nodes": [16, 32]}
	}`
	c, err := Parse([]byte(spec), "testdata")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stats, err := Run(c, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planned != 2 || stats.Executed != 2 || !stats.Aggregated {
		t.Fatalf("planner-only campaign: %+v", stats)
	}
	for _, id := range []string{"n16", "n32"} {
		data, err := os.ReadFile(cellFile(dir, id))
		if err != nil {
			t.Fatal(err)
		}
		var res CellResult
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatal(err)
		}
		if res.TotalBytes <= 0 || res.SimSeconds <= 0 {
			t.Errorf("cell %s accounted nothing: %+v", id, res)
		}
		if res.FinalLoss != 0 {
			t.Errorf("cell %s reports a loss %v from a planner-only run", id, res.FinalLoss)
		}
	}
}

// TestManifestToleratesTornTail simulates the kill-mid-journal case: a
// truncated trailing line must not poison resume — its cell simply runs
// again.
func TestManifestToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	stats, _ := runExample(t, dir, Options{MaxCells: 2})
	if stats.Executed != 2 {
		t.Fatalf("setup: %+v", stats)
	}
	path := filepath.Join(dir, ManifestName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"cell":"saps_jittery_s1_c50","spec_sha":"deadbeef`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	stats2, _ := runExample(t, dir, Options{})
	if stats2.Skipped != 2 || stats2.Remaining != 0 || !stats2.Aggregated {
		t.Fatalf("resume over torn manifest: %+v", stats2)
	}
}

// TestManifestRejectsStaleSpec pins the spec-hash guard: an entry recorded
// under a different cell definition must not count as done.
func TestManifestRejectsStaleSpec(t *testing.T) {
	entries, err := ReadManifest(filepath.Join(t.TempDir(), "missing.jsonl"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("missing manifest: %v, %d entries", err, len(entries))
	}

	dir := t.TempDir()
	if _, ids := runExample(t, dir, Options{}); len(ids) < 8 {
		t.Fatalf("setup executed %d cells", len(ids))
	}
	// Tamper with one journaled hash: exactly that cell must re-run.
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	lines[0] = strings.Replace(lines[0], `"spec_sha":"`, `"spec_sha":"0000`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stats, ids := runExample(t, dir, Options{})
	if stats.Executed != 1 || len(ids) != 1 {
		t.Fatalf("stale-hash cell did not re-run exactly once: %+v (%v)", stats, ids)
	}
}

// TestEnableTraceOnFinishedCampaign pins the trace/resume interaction:
// turning tracing on for an already-completed campaign must re-run exactly
// the traceable cells (instead of reporting success with no traces), and
// the untouched cells stay cached.
func TestEnableTraceOnFinishedCampaign(t *testing.T) {
	dir := t.TempDir()
	c, base := loadExample(t)
	c.Trace = false
	if _, err := Run(c, Options{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "traces")); err == nil {
		t.Fatal("traceless campaign wrote traces/")
	}
	c.Trace = true
	stats, err := Run(c, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	traceable := 0
	for _, cell := range cells {
		if cell.Spec.Algo == "saps" {
			traceable++
			if _, err := os.Stat(traceFile(dir, cell.ID)); err != nil {
				t.Errorf("cell %s: no trace after enabling tracing: %v", cell.ID, err)
			}
		}
	}
	if stats.Executed != traceable || stats.Skipped != stats.Planned-traceable {
		t.Fatalf("trace enablement re-ran %d of %d cells, want the %d traceable ones", stats.Executed, stats.Planned, traceable)
	}
}

// TestTraceArtifacts verifies the per-cell trace CSVs: every saps cell of
// the example campaign (trace: true) gets one with a line per round, and
// non-traceable algorithms get none.
func TestTraceArtifacts(t *testing.T) {
	dir := t.TempDir()
	runExample(t, dir, Options{})
	c, base := loadExample(t)
	cells, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		path := traceFile(dir, cell.ID)
		data, err := os.ReadFile(path)
		if cell.Spec.Algo != "saps" {
			if err == nil {
				t.Errorf("cell %s (algo %s) has a trace CSV", cell.ID, cell.Spec.Algo)
			}
			continue
		}
		if err != nil {
			t.Errorf("cell %s: %v", cell.ID, err)
			continue
		}
		lines := strings.Count(string(data), "\n")
		if lines != cell.Spec.Rounds+1 {
			t.Errorf("cell %s trace has %d lines, want %d rounds + header", cell.ID, lines, cell.Spec.Rounds)
		}
	}
}
