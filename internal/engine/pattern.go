package engine

import (
	"fmt"
	"math/bits"
	"sort"

	"sapspsgd/internal/core"
)

// Pattern is a round's communication shape: who a node talks to and in what
// order, independent of what travels (the Codec) and of how it travels (the
// Transport). RunRound executes one node's complete round — local compute,
// encoded exchanges, merge — so each pattern owns its choreography (the hub
// pattern, for instance, delivers the downlink before the worker computes).
//
// Liveness: the pairwise, neighborhood, hub, and all-gather patterns order
// their blocking exchanges by ascending peer rank, which is deadlock-free
// with rendezvous transports — a cyclic wait a₁→a₂→…→a₁ would need every
// aᵢ₊₁ to be held at a strictly earlier (lower-ranked) edge than
// (aᵢ, aᵢ₊₁), forcing an infinite descent of ranks around a finite cycle.
// The collective butterfly instead visits partners in the fixed self^mask
// phase sequence (not ascending); it is deadlock-free because every phase is
// a perfect matching executed by all nodes in the same order, and a node
// reaches phase p with a partner only after both completed phase p-1, so
// per-pair meetings pair up FIFO. New patterns must pick one of these two
// disciplines (or prove their own).
type Pattern interface {
	// Name identifies the pattern family ("pairwise", "hub", ...).
	Name() string
	// Validate rejects malformed plans before dispatch. This matters for
	// liveness, not just correctness: a malformed plan can leave a node
	// blocked in a rendezvous with nobody coming.
	Validate(plan core.RoundPlan, n int) error
	// RunRound executes one node's full round over the transport. gate
	// bounds the CPU-heavy sections (compute, encode, decode, merge) and is
	// released around blocking exchanges.
	RunRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error)
}

// ---------------------------------------------------------------------------
// Pairwise (matched gossip — SAPS, RandomChoose)

// Pairwise is the matched-pair gossip of Algorithm 1: plan.Peer assigns each
// node at most one symmetric partner per round; both encode, swap, and
// merge. Peer[self] == -1 skips the exchange (the node only trains).
type Pairwise struct{}

// Name implements Pattern.
func (Pairwise) Name() string { return "pairwise" }

// Validate implements Pattern: the peer table must be a symmetric matching
// over active nodes.
func (Pairwise) Validate(plan core.RoundPlan, n int) error {
	if len(plan.Peer) != n {
		return fmt.Errorf("engine: plan for %d workers, have %d", len(plan.Peer), n)
	}
	if plan.Active != nil && len(plan.Active) != n {
		return fmt.Errorf("engine: plan active set for %d workers, have %d", len(plan.Active), n)
	}
	for i, p := range plan.Peer {
		if p == -1 {
			continue
		}
		switch {
		case p < 0 || p >= n || p == i:
			return fmt.Errorf("engine: plan assigns worker %d the peer %d", i, p)
		case plan.Peer[p] != i:
			return fmt.Errorf("engine: asymmetric plan: %d→%d but %d→%d", i, p, p, plan.Peer[p])
		case plan.Active != nil && (!plan.Active[i] || !plan.Active[p]):
			return fmt.Errorf("engine: plan matches inactive worker in pair %d-%d", i, p)
		}
	}
	return nil
}

// RunRound implements Pattern.
func (Pairwise) RunRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	gate.Acquire()
	loss, out, err := node.Compute(ctx)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep := NodeReport{Loss: loss, Trained: trained(loss)}
	peer := -1
	if ctx.Self < len(ctx.Plan.Peer) {
		peer = ctx.Plan.Peer[ctx.Self]
	}
	if peer < 0 {
		gate.Release()
		return rep, nil
	}
	words, err := encodeTimed(codecs[ctx.Self], ctx, out)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	sent := codecs[ctx.Self].WireBytes(words)
	rep.PayloadLen = len(words)
	gate.Release()

	peerWords, err := tr.Exchange(ctx.Round, ctx.Self, peer, words)
	if err != nil {
		return NodeReport{}, err
	}

	gate.Acquire()
	defer gate.Release()
	vals, err := decodeTimed(codecs[peer], ctx, peerWords)
	if err != nil {
		return NodeReport{}, err
	}
	recv := codecs[peer].WireBytes(peerWords)
	rep.Flows = append(rep.Flows, Flow{Peer: peer, Sent: sent, Recv: recv})
	if err := node.Merge(ctx, []PeerMsg{{From: peer, Vals: vals, Words: peerWords, Bytes: recv}}); err != nil {
		return NodeReport{}, err
	}
	return rep, nil
}

// ---------------------------------------------------------------------------
// Neighborhood (static-topology gossip — D-PSGD, DCD-PSGD)

// Neighborhood is static-neighborhood gossip: every round each node
// broadcasts one encoded payload to all its topology neighbors and merges
// everything it hears. With IncludeSelf the node's own payload is decoded
// and delivered too — difference-compressed schemes need the node to apply
// the same lossy delta to its own public replica that its neighbors apply to
// theirs.
type Neighborhood struct {
	adj         [][]int
	includeSelf bool
}

// NewNeighborhood builds the pattern over a symmetric adjacency. Neighbor
// lists are copied and sorted ascending.
func NewNeighborhood(adj [][]int, includeSelf bool) *Neighborhood {
	n := len(adj)
	p := &Neighborhood{adj: make([][]int, n), includeSelf: includeSelf}
	for i, ns := range adj {
		p.adj[i] = append([]int(nil), ns...)
		sort.Ints(p.adj[i])
		for _, j := range p.adj[i] {
			if j < 0 || j >= n || j == i {
				panic(fmt.Sprintf("engine: neighborhood adjacency %d→%d over %d nodes", i, j, n))
			}
		}
	}
	// Symmetry: gossip is bidirectional; a one-sided edge would deadlock.
	for i, ns := range p.adj {
		for _, j := range ns {
			if !contains(p.adj[j], i) {
				panic(fmt.Sprintf("engine: asymmetric neighborhood edge %d→%d", i, j))
			}
		}
	}
	return p
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Name implements Pattern.
func (p *Neighborhood) Name() string { return "neighborhood" }

// Validate implements Pattern: the static topology has no dynamic
// membership — every node must be active.
func (p *Neighborhood) Validate(plan core.RoundPlan, n int) error {
	if len(p.adj) != n {
		return fmt.Errorf("engine: neighborhood over %d nodes, plan has %d", len(p.adj), n)
	}
	return requireAllActive(plan, n, "neighborhood")
}

// RunRound implements Pattern.
func (p *Neighborhood) RunRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	gate.Acquire()
	loss, out, err := node.Compute(ctx)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep := NodeReport{Loss: loss, Trained: trained(loss)}
	peers := p.adj[ctx.Self]
	if len(peers) == 0 {
		gate.Release()
		return rep, nil
	}
	words, err := encodeTimed(codecs[ctx.Self], ctx, out)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	sent := codecs[ctx.Self].WireBytes(words)
	rep.PayloadLen = len(words)
	msgs := make([]PeerMsg, 0, len(peers)+1)
	if p.includeSelf {
		vals, err := decodeTimed(codecs[ctx.Self], ctx, words)
		if err != nil {
			gate.Release()
			return NodeReport{}, err
		}
		msgs = append(msgs, PeerMsg{From: ctx.Self, Vals: vals, Words: words, Bytes: sent})
	}
	gate.Release()

	recvWords := make([][]float64, len(peers))
	for i, q := range peers {
		w, err := tr.Exchange(ctx.Round, ctx.Self, q, words)
		if err != nil {
			return NodeReport{}, err
		}
		recvWords[i] = w
	}

	gate.Acquire()
	defer gate.Release()
	for i, q := range peers {
		vals, err := decodeTimed(codecs[q], ctx, recvWords[i])
		if err != nil {
			return NodeReport{}, err
		}
		b := codecs[q].WireBytes(recvWords[i])
		rep.Flows = append(rep.Flows, Flow{Peer: q, Sent: sent, Recv: b})
		msgs = append(msgs, PeerMsg{From: q, Vals: vals, Words: recvWords[i], Bytes: b})
	}
	if err := node.Merge(ctx, msgs); err != nil {
		return NodeReport{}, err
	}
	return rep, nil
}

// ---------------------------------------------------------------------------
// Hub (parameter-server fan-in — PS-PSGD, FedAvg, S-FedAvg)

// Hub is the star pattern: one server rank and its chosen workers per round.
// The choreography is pull → train → push: the server computes its payload
// (the current global model) and sends it down to every chosen worker; a
// worker merges the downlink *before* computing, then pushes its own encoded
// payload up; finally the server merges all uploads. The chosen set is
// plan.Active (nil = every worker); the server is always chosen.
//
// Up- and downlink codecs differ per rank: workers encode with their own
// codec (sparse deltas for S-FedAvg), the server with its own (dense model).
type Hub struct {
	// Server is the hub's node rank (by convention the last rank, so n
	// trainers + 1 server occupy ranks 0..n).
	Server int
}

// Name implements Pattern.
func (Hub) Name() string { return "hub" }

// Validate implements Pattern.
func (h Hub) Validate(plan core.RoundPlan, n int) error {
	if h.Server < 0 || h.Server >= n {
		return fmt.Errorf("engine: hub server rank %d of %d nodes", h.Server, n)
	}
	if plan.Active != nil {
		if len(plan.Active) != n {
			return fmt.Errorf("engine: plan active set for %d nodes, have %d", len(plan.Active), n)
		}
		if !plan.Active[h.Server] {
			return fmt.Errorf("engine: hub plan deactivates the server")
		}
	}
	return nil
}

// chosen returns the round's participating worker ranks, ascending.
func (h Hub) chosen(plan core.RoundPlan, n int) []int {
	return h.chosenInto(make([]int, 0, n-1), plan, n)
}

// chosenInto appends the participating worker ranks to dst in ascending
// order — the pooled form the phased hot path uses.
func (h Hub) chosenInto(dst []int, plan core.RoundPlan, n int) []int {
	for i := 0; i < n; i++ {
		if i == h.Server {
			continue
		}
		if plan.Active == nil || plan.Active[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// RunRound implements Pattern.
func (h Hub) RunRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	if ctx.Self == h.Server {
		return h.serverRound(ctx, node, codecs, tr, gate)
	}
	return h.workerRound(ctx, node, codecs, tr, gate)
}

func (h Hub) serverRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	gate.Acquire()
	loss, out, err := node.Compute(ctx)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep := NodeReport{Loss: loss, Trained: trained(loss)}
	words, err := encodeTimed(codecs[ctx.Self], ctx, out)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	down := codecs[ctx.Self].WireBytes(words)
	rep.PayloadLen = len(words)
	gate.Release()

	chosen := h.chosen(ctx.Plan, ctx.N)
	// Downlink: broadcast the model; each exchange also drains the worker's
	// empty down-phase payload, keeping the per-pair rendezvous in lockstep.
	for _, w := range chosen {
		if _, err := tr.Exchange(ctx.Round, ctx.Self, w, words); err != nil {
			return NodeReport{}, err
		}
	}
	// Uplink: collect every chosen worker's payload.
	ups := make([][]float64, len(chosen))
	for i, w := range chosen {
		uw, err := tr.Exchange(ctx.Round, ctx.Self, w, nil)
		if err != nil {
			return NodeReport{}, err
		}
		ups[i] = uw
	}

	gate.Acquire()
	defer gate.Release()
	msgs := make([]PeerMsg, 0, len(chosen))
	for i, w := range chosen {
		vals, err := decodeTimed(codecs[w], ctx, ups[i])
		if err != nil {
			return NodeReport{}, err
		}
		b := codecs[w].WireBytes(ups[i])
		rep.Flows = append(rep.Flows, Flow{Peer: w, Sent: down, Recv: b})
		msgs = append(msgs, PeerMsg{From: w, Vals: vals, Words: ups[i], Bytes: b})
	}
	if err := node.Merge(ctx, msgs); err != nil {
		return NodeReport{}, err
	}
	return rep, nil
}

func (h Hub) workerRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	// Pull: the empty payload keeps the rendezvous symmetric; the reply is
	// the server's encoded model.
	downWords, err := tr.Exchange(ctx.Round, ctx.Self, h.Server, nil)
	if err != nil {
		return NodeReport{}, err
	}

	gate.Acquire()
	vals, err := decodeTimed(codecs[h.Server], ctx, downWords)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	down := codecs[h.Server].WireBytes(downWords)
	if err := node.Merge(ctx, []PeerMsg{{From: h.Server, Vals: vals, Words: downWords, Bytes: down}}); err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	loss, out, err := node.Compute(ctx)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep := NodeReport{Loss: loss, Trained: trained(loss)}
	words, err := encodeTimed(codecs[ctx.Self], ctx, out)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	up := codecs[ctx.Self].WireBytes(words)
	rep.PayloadLen = len(words)
	rep.Flows = append(rep.Flows, Flow{Peer: h.Server, Sent: up, Recv: down})
	gate.Release()

	// Push: the server's reply is its empty up-phase payload.
	if _, err := tr.Exchange(ctx.Round, ctx.Self, h.Server, words); err != nil {
		return NodeReport{}, err
	}
	return rep, nil
}

// ---------------------------------------------------------------------------
// Collective (exact all-reduce — PSGD)

// Collective is the exact all-reduce: after the round every node's Merge
// receives the element-wise sum of all nodes' outbound vectors as a single
// PeerMsg{From: -1}. For power-of-two fleets it runs recursive
// halving/doubling (reduce-scatter + all-gather), the butterfly equivalent
// of the classic ring all-reduce: every node sends and receives exactly
// 2·D·(n-1)/n values, matching Table I's ring cost, with every transfer a
// pairwise swap the Transport can carry. Other fleet sizes fall back to a
// complete all-gather (everyone swaps full vectors with everyone, n-1
// transfers of D values each), which is exact but costlier — callers wanting
// the bandwidth-optimal path should size fleets to powers of two.
type Collective struct{}

// Name implements Pattern.
func (Collective) Name() string { return "collective" }

// Validate implements Pattern: a collective needs every node present.
func (Collective) Validate(plan core.RoundPlan, n int) error {
	return requireAllActive(plan, n, "collective")
}

// RunRound implements Pattern.
func (Collective) RunRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	gate.Acquire()
	loss, out, err := node.Compute(ctx)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep := NodeReport{Loss: loss, Trained: trained(loss), PayloadLen: len(out)}
	sum := append([]float64(nil), out...)
	gate.Release()

	if ctx.N > 1 {
		if ctx.N&(ctx.N-1) == 0 {
			err = halvingDoubling(ctx, codecs, tr, gate, sum, &rep)
		} else {
			gate.Acquire()
			words, encErr := encodeTimed(codecs[ctx.Self], ctx, out)
			gate.Release()
			if encErr != nil {
				return NodeReport{}, encErr
			}
			err = sumAllGather(ctx, codecs, tr, gate, words, sum, &rep)
		}
		if err != nil {
			return NodeReport{}, err
		}
	}

	gate.Acquire()
	defer gate.Release()
	if err := node.Merge(ctx, []PeerMsg{{From: -1, Vals: sum}}); err != nil {
		return NodeReport{}, err
	}
	return rep, nil
}

// segAfter returns the [lo, hi) segment of a D-length vector that rank owns
// after depth reduce-scatter halvings over n = 2^q nodes.
func segAfter(rank, depth, D, n int) (int, int) {
	lo, hi := 0, D
	for k := 0; k < depth; k++ {
		mask := n >> (k + 1)
		mid := lo + (hi-lo)/2
		if rank&mask == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, hi
}

// exchangeChunk encodes a copy of vec[lo:hi] with the node's own codec,
// swaps it with partner, and returns the decoded reply. Copies are required:
// the codec's scratch is reused across the collective's steps while the
// transport still borrows earlier payloads.
func exchangeChunk(ctx RoundContext, codecs []Codec, tr Transport, gate Gate, vec []float64, lo, hi, partner int, rep *NodeReport) ([]float64, error) {
	gate.Acquire()
	chunk := append([]float64(nil), vec[lo:hi]...)
	words, err := encodeTimed(codecs[ctx.Self], ctx, chunk)
	if err != nil {
		gate.Release()
		return nil, err
	}
	wcopy := append([]float64(nil), words...)
	sent := codecs[ctx.Self].WireBytes(wcopy)
	gate.Release()

	pw, err := tr.Exchange(ctx.Round, ctx.Self, partner, wcopy)
	if err != nil {
		return nil, err
	}

	gate.Acquire()
	defer gate.Release()
	vals, err := decodeTimed(codecs[partner], ctx, pw)
	if err != nil {
		return nil, err
	}
	rep.Flows = append(rep.Flows, Flow{Peer: partner, Sent: sent, Recv: codecs[partner].WireBytes(pw)})
	return vals, nil
}

// halvingDoubling is the power-of-two exact all-reduce; vec is reduced in
// place to the global sum.
func halvingDoubling(ctx RoundContext, codecs []Codec, tr Transport, gate Gate, vec []float64, rep *NodeReport) error {
	self, n, D := ctx.Self, ctx.N, len(vec)
	q := bits.Len(uint(n)) - 1
	// Reduce-scatter: each step halves the owned segment, swapping the
	// discarded half with the partner and accumulating the kept half.
	lo, hi := 0, D
	for k := 0; k < q; k++ {
		mask := n >> (k + 1)
		partner := self ^ mask
		mid := lo + (hi-lo)/2
		sendLo, sendHi, keepLo, keepHi := mid, hi, lo, mid
		if self&mask != 0 {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		vals, err := exchangeChunk(ctx, codecs, tr, gate, vec, sendLo, sendHi, partner, rep)
		if err != nil {
			return err
		}
		if len(vals) != keepHi-keepLo {
			return fmt.Errorf("engine: collective chunk of %d values, want %d", len(vals), keepHi-keepLo)
		}
		for i, v := range vals {
			vec[keepLo+i] += v
		}
		lo, hi = keepLo, keepHi
	}
	// All-gather: mirror the halvings, swapping fully reduced segments.
	for g := 0; g < q; g++ {
		partner := self ^ (1 << g)
		myLo, myHi := segAfter(self, q-g, D, n)
		pLo, pHi := segAfter(partner, q-g, D, n)
		vals, err := exchangeChunk(ctx, codecs, tr, gate, vec, myLo, myHi, partner, rep)
		if err != nil {
			return err
		}
		if len(vals) != pHi-pLo {
			return fmt.Errorf("engine: collective gather chunk of %d values, want %d", len(vals), pHi-pLo)
		}
		copy(vec[pLo:pHi], vals)
	}
	return nil
}

// sumAllGather swaps one already-encoded payload with every other node and
// sums the decoded replies into vec (which already holds the node's own
// contribution). words must be encoded exactly once by the caller — encoding
// here would advance stateful codecs (error feedback, RNG) twice per round.
func sumAllGather(ctx RoundContext, codecs []Codec, tr Transport, gate Gate, words, vec []float64, rep *NodeReport) error {
	sent := codecs[ctx.Self].WireBytes(words)
	recvWords := make([][]float64, 0, ctx.N-1)
	peers := make([]int, 0, ctx.N-1)
	for p := 0; p < ctx.N; p++ {
		if p == ctx.Self {
			continue
		}
		pw, err := tr.Exchange(ctx.Round, ctx.Self, p, words)
		if err != nil {
			return err
		}
		peers = append(peers, p)
		recvWords = append(recvWords, pw)
	}
	gate.Acquire()
	defer gate.Release()
	for i, p := range peers {
		vals, err := decodeTimed(codecs[p], ctx, recvWords[i])
		if err != nil {
			return err
		}
		if len(vals) != len(vec) {
			return fmt.Errorf("engine: all-gather payload of %d values, want %d", len(vals), len(vec))
		}
		rep.Flows = append(rep.Flows, Flow{Peer: p, Sent: sent, Recv: codecs[p].WireBytes(recvWords[i])})
		for j, v := range vals {
			vec[j] += v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// AllGather (complete-graph gossip of compressed payloads — TopK, QSGD)

// AllGather is the complete-graph gossip used by the compressed all-gather
// baselines: every node broadcasts one encoded payload to every other node,
// and Merge receives the element-wise sum of all *decoded* payloads
// (including the node's own, passed through its codec — lossy compressors
// must see their own loss, or the fleet would silently disagree on the
// aggregate).
type AllGather struct{}

// Name implements Pattern.
func (AllGather) Name() string { return "all-gather" }

// Validate implements Pattern.
func (AllGather) Validate(plan core.RoundPlan, n int) error {
	return requireAllActive(plan, n, "all-gather")
}

// RunRound implements Pattern.
func (AllGather) RunRound(ctx RoundContext, node Node, codecs []Codec, tr Transport, gate Gate) (NodeReport, error) {
	gate.Acquire()
	loss, out, err := node.Compute(ctx)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep := NodeReport{Loss: loss, Trained: trained(loss)}
	words, err := encodeTimed(codecs[ctx.Self], ctx, out)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	rep.PayloadLen = len(words)
	own, err := decodeTimed(codecs[ctx.Self], ctx, words)
	if err != nil {
		gate.Release()
		return NodeReport{}, err
	}
	sum := append([]float64(nil), own...)
	gate.Release()

	if err := sumAllGather(ctx, codecs, tr, gate, words, sum, &rep); err != nil {
		return NodeReport{}, err
	}

	gate.Acquire()
	defer gate.Release()
	if err := node.Merge(ctx, []PeerMsg{{From: -1, Vals: sum}}); err != nil {
		return NodeReport{}, err
	}
	return rep, nil
}

// requireAllActive rejects plans with dynamic membership for patterns whose
// shape has no notion of absence.
func requireAllActive(plan core.RoundPlan, n int, pattern string) error {
	if plan.Active == nil {
		return nil
	}
	if len(plan.Active) != n {
		return fmt.Errorf("engine: plan active set for %d nodes, have %d", len(plan.Active), n)
	}
	for i, a := range plan.Active {
		if !a {
			return fmt.Errorf("engine: %s pattern cannot run with node %d inactive", pattern, i)
		}
	}
	return nil
}
