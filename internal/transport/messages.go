// Package transport implements the deployable training system over TCP —
// algorithm-agnostic since the Pattern/Codec generalization: a coordinator
// server (Algorithm 1) that registers workers, broadcasts the per-round
// control messages (peer assignment / participation set + mask seed — never
// model payloads), and worker clients that assemble their engine node from
// the broadcast algos.Recipe and exchange encoded payloads peer-to-peer over
// their own listeners. Any recipe algorithm deploys: SAPS's masked pairwise
// gossip, the ring and all-gather decentralized baselines, and the hub
// schemes (the last registered rank becomes the parameter server).
//
// All control-plane and data-plane messages are gob-encoded. The data two
// workers exchange is exactly the codec's wire words — for SAPS the packed
// masked values, whose indices travel as a 64-bit seed inside the control
// message, reproducing the paper's wire economics.
package transport

import (
	"encoding/gob"
	"fmt"
	"io"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
)

// TaskSpec tells every worker what to train; broadcast once at registration.
// The training data itself never crosses the network: workers regenerate the
// deterministic synthetic dataset locally and take their own shard.
type TaskSpec struct {
	// Arch selects the model family: "mlp", "mnist-cnn", "cifar-cnn",
	// "resnet".
	Arch    string
	C, H, W int
	Classes int
	Width   float64
	Hidden  []int // MLP only
	Blocks  int   // ResNet blocks per stage

	Samples  int // total training samples across all workers
	DataSeed uint64
	NonIID   bool

	LR          float64
	Batch       int
	Compression float64
	LocalSteps  int
	Rounds      int
	Seed        uint64

	// Algo selects the training algorithm (see algos.AlgoNames); empty
	// defaults to "saps". Hub algorithms (ps-psgd, fedavg, s-fedavg) need
	// one extra worker process: the last registered rank becomes the
	// parameter server.
	Algo string
	// AlgoC is the sparsifier ratio for topk-psgd, dcd-psgd and s-fedavg.
	AlgoC float64
	// QLevels is the QSGD level count.
	QLevels int
	// Fraction is the FedAvg per-round participation ratio.
	Fraction float64
}

// AlgoName returns the spec's algorithm, defaulting to "saps".
func (s TaskSpec) AlgoName() string {
	if s.Algo == "" {
		return "saps"
	}
	return s.Algo
}

// Recipe assembles the deployment-neutral algorithm recipe for the given
// trainer count. Every process derives the identical recipe from the
// broadcast spec, so codec seeds, node state, and loader streams agree
// bit-for-bit with an in-process run.
func (s TaskSpec) Recipe(trainers int) algos.Recipe {
	return algos.Recipe{
		Algo:        s.AlgoName(),
		Workers:     trainers,
		LR:          s.LR,
		Batch:       s.Batch,
		Seed:        s.Seed,
		Compression: s.Compression,
		LocalSteps:  s.LocalSteps,
		C:           s.AlgoC,
		Levels:      s.QLevels,
		Fraction:    s.Fraction,
	}
}

// Trainers converts a total registered-node count back to the trainer count
// (hub algorithms register one extra process for the server rank).
func (s TaskSpec) Trainers(totalNodes int) int {
	if s.Recipe(2).Hub() {
		return totalNodes - 1
	}
	return totalNodes
}

// BuildModel constructs the worker model for the spec. All workers pass the
// same spec, so initial parameters agree bit-for-bit.
func (s TaskSpec) BuildModel() (*nn.Model, error) {
	in := nn.Shape{C: s.C, H: s.H, W: s.W}
	switch s.Arch {
	case "mlp":
		return nn.NewMLP(in.Dim(), s.Hidden, s.Classes, s.Seed), nil
	case "mnist-cnn":
		return nn.NewMNISTCNN(in, s.Classes, s.Width, s.Seed), nil
	case "cifar-cnn":
		return nn.NewCIFARCNN(in, s.Classes, s.Width, s.Seed), nil
	case "resnet":
		blocks := s.Blocks
		if blocks < 1 {
			blocks = 3
		}
		return nn.NewResNet(in, s.Classes, blocks, s.Width, s.Seed), nil
	default:
		return nil, fmt.Errorf("transport: unknown arch %q", s.Arch)
	}
}

// BuildShards regenerates the full synthetic dataset and partitions it for n
// workers. Every worker calls this with identical arguments and takes its
// rank's shard.
func (s TaskSpec) BuildShards(n int) ([]*dataset.Dataset, *dataset.Dataset) {
	cfg := dataset.SynthConfig{
		Name: s.Arch, C: s.C, H: s.H, W: s.W,
		Classes: s.Classes, PerClass: 2, Noise: 0.35,
	}
	full := dataset.Synthetic(cfg, s.Samples+s.Samples/5, s.DataSeed)
	train := &dataset.Dataset{Name: full.Name, C: full.C, H: full.H, W: full.W, Classes: full.Classes, Samples: full.Samples[:s.Samples]}
	valid := &dataset.Dataset{Name: full.Name + "-valid", C: full.C, H: full.H, W: full.W, Classes: full.Classes, Samples: full.Samples[s.Samples:]}
	if s.NonIID {
		return dataset.PartitionByLabel(train, n, 2, s.DataSeed+1), valid
	}
	return dataset.PartitionIID(train, n, s.DataSeed+1), valid
}

// Control-plane messages (coordinator ↔ worker).
type (
	// Hello is the worker's registration: where peers can reach it.
	Hello struct {
		ListenAddr string
	}
	// Welcome assigns the worker its rank and delivers the task and the
	// peer address book.
	Welcome struct {
		Rank  int
		N     int
		Task  TaskSpec
		Addrs []string
	}
	// RoundMsg is Algorithm 1 line 6: the control message for one round.
	// Peer is this worker's pairwise partner (-1: none; meaningful only
	// for the pairwise pattern); Active, when non-nil, is the round's
	// participation set over all node ranks (hub algorithms' chosen
	// fraction, or the fault schedule's survivors). Attempt numbers the
	// round's execution attempts: it starts at 0 and increments each time
	// the coordinator aborts and re-plans the round after losing a worker.
	// Addrs, when non-nil, is a fresh peer address book (rebroadcast after
	// a rejoin changed a worker's listener).
	RoundMsg struct {
		Round   int
		Seed    uint64
		Peer    int
		Active  []bool
		Attempt int
		Addrs   []string
	}
	// RoundEnd is the worker's end-of-round notification: the measured
	// outcome of its engine round. Flows carries the exact wire bytes the
	// worker's codec produced per peer, which is what the coordinator's
	// ledger charges. Workers excluded by Active stay silent instead.
	RoundEnd struct {
		Rank       int
		Round      int
		Attempt    int
		Loss       float64
		Trained    bool
		PayloadLen int
		Flows      []engine.Flow
	}
	// RoundFailed is a worker's report that its round attempt died on a
	// peer exchange (the peer's process is gone): the coordinator marks the
	// peer dead, aborts the round on every survivor, and re-plans it.
	RoundFailed struct {
		Rank   int
		Round  int
		Peer   int // the peer whose exchange failed, -1 if unknown
		Reason string
	}
	// Abort tells every surviving worker to discard the named round's
	// attempt: roll back to the round-boundary snapshot, drop stashed peer
	// connections, and acknowledge. A re-planned RoundMsg (Attempt+1)
	// follows.
	Abort struct {
		Round int
	}
	// AbortAck confirms a worker has rolled back to the round boundary.
	AbortAck struct {
		Rank  int
		Round int
	}
	// CrashMsg is the coordinator's fault-injection kill: the scenario's
	// fault schedule says this worker crashes at this round boundary. The
	// worker flushes its committed snapshot and tears down exactly as a
	// killed process would; WorkerClient.Run returns ErrCrashed.
	CrashMsg struct {
		Round int
	}
	// Rejoin is a restarted worker's registration: instead of Hello it
	// announces the rank it held and the round its snapshot resumes from
	// (which must equal the round the coordinator saw it die at).
	Rejoin struct {
		Rank       int
		NextRound  int
		ListenAddr string
	}
	// RejoinAck re-admits a rejoining worker: the coordinator's current
	// round, the node count, and the fresh peer address book.
	RejoinAck struct {
		Round int
		N     int
		Addrs []string
	}
	// RejoinNack rejects a rejoin attempt with an actionable reason (wrong
	// rank, stale snapshot, rank still alive).
	RejoinNack struct {
		Reason string
	}
	// CollectRequest asks a worker for its full model (Algorithm 1 line 8).
	CollectRequest struct{}
	// FinalModel is the collected model payload.
	FinalModel struct {
		Params []float64
	}
	// Done terminates the worker.
	Done struct{}
)

// PeerPayload is the data-plane message two exchanging workers swap: the
// encoded wire words for the given round. Seq orders multiple meetings of
// the same pair within one round (hub pull/push, collective phases): both
// endpoints count their exchanges per (round, peer) and the numbers must
// agree, which catches mispaired connections under out-of-order arrival.
// Attempt distinguishes a re-planned round's exchanges from a stale aborted
// attempt's. From -2 is the abort sentinel a worker dials into its own
// listener to unblock a pending Accept.
type PeerPayload struct {
	Round   int
	From    int
	Seq     int
	Attempt int
	Vals    []float64
}

// abortSentinel is the PeerPayload.From value of the self-dialed wake-up
// connection used to interrupt a blocked Accept during an abort.
const abortSentinel = -2

// wire is the gob envelope: encoding an interface value requires concrete
// type registration, done in registerTypes.
type wire struct {
	M any
}

func registerTypes() {
	gob.Register(Hello{})
	gob.Register(Welcome{})
	gob.Register(RoundMsg{})
	gob.Register(RoundEnd{})
	gob.Register(RoundFailed{})
	gob.Register(Abort{})
	gob.Register(AbortAck{})
	gob.Register(CrashMsg{})
	gob.Register(Rejoin{})
	gob.Register(RejoinAck{})
	gob.Register(RejoinNack{})
	gob.Register(CollectRequest{})
	gob.Register(FinalModel{})
	gob.Register(Done{})
	gob.Register(PeerPayload{})
	gob.Register(MeasureRequest{})
	gob.Register(MeasureReport{})
	gob.Register(Probe{})
}

// Conn wraps a stream with gob encode/decode of wire envelopes.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	c   io.Closer
}

// NewConn wraps rwc. Both sides must wrap their end.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	registerTypes()
	return &Conn{enc: gob.NewEncoder(rwc), dec: gob.NewDecoder(rwc), c: rwc}
}

// Send encodes one message.
func (c *Conn) Send(m any) error {
	if err := c.enc.Encode(wire{M: m}); err != nil {
		return fmt.Errorf("transport: send %T: %w", m, err)
	}
	return nil
}

// Recv decodes one message.
func (c *Conn) Recv() (any, error) {
	var w wire
	if err := c.dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return w.M, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.c.Close() }
