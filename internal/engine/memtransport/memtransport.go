// Package memtransport is the in-process engine backend: nodes swap their
// encoded payloads through per-directed-pair rendezvous channels, with no
// wire format and no time model. It is the backend behind every
// internal/algos simulation; pair it with engine.CountingLedger for pure
// traffic totals or with a *netsim.Ledger (via simtransport) for
// bandwidth-accounted time.
package memtransport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sapspsgd/internal/obs"
)

// denseSlotLimit bounds the dense slot array: fleets with at most this many
// directed pairs get a flat preallocated pointer array (one atomic load per
// slot lookup, no locks); larger fleets fall back to sharded-mutex striping
// so a sparse communication pattern does not pin O(n²) memory. 2²⁰ pointers
// is 8 MB — n ≤ 1024 stays dense, which covers every fleet the repository's
// scenarios run in one process.
const denseSlotLimit = 1 << 20

// slotStripes is the stripe count of the large-n fallback. Power of two so
// the stripe index is a shift-free mask; 64 stripes keep the per-stripe
// mutexes effectively uncontended at realistic shard counts.
const slotStripes = 64

// Hub pairs in-process nodes for payload swaps. Exchange deposits the
// caller's payload in the self→peer slot and blocks until the peer→self
// slot fills. Slots are FIFO per directed pair, so a pattern may meet the
// same pair several times within a round (hub pull/push, collective
// reduce+gather) as long as both endpoints issue their exchanges in the same
// per-pair order — which every engine pattern guarantees by construction.
// The engine's round barrier guarantees all slots are drained before the
// next round starts. Payload slices are handed over by reference — the
// channel send is the happens-before edge that makes the peer's read
// race-free.
//
// Slot lookup is lock-free for fleets up to 1024 nodes: the hub preallocates
// a dense per-directed-pair pointer array and materializes each pair's
// channel at most once with a compare-and-swap, so the steady-state path is
// a single atomic load — no mutex, no map hash. Larger fleets stripe the
// lazily-built pair map across independently locked shards.
type Hub struct {
	n int
	// dense[from*n+to] is the from→to channel, nil until first use.
	// Non-nil only when n*n <= denseSlotLimit.
	dense []atomic.Pointer[chan []float64]
	// stripes is the sparse fallback for large n.
	stripes []slotStripe
	// wait observes how long blocking receives stall for the peer's
	// deposit; nil (observability off) costs one pointer check per recv.
	wait *obs.Histogram
}

// slotStripe is one lock shard of the sparse slot table.
type slotStripe struct {
	mu    sync.Mutex
	slots map[uint64]chan []float64
}

// NewHub returns a hub for n nodes. A single-node hub is legal — it can
// never be asked to exchange, and Exchange rejects any peer it is asked for.
func NewHub(n int) *Hub {
	if n < 1 {
		panic(fmt.Sprintf("memtransport: hub of %d", n))
	}
	h := &Hub{n: n, wait: obs.Current().EngineM().RendezvousWaitSeconds}
	if n*n <= denseSlotLimit {
		h.dense = make([]atomic.Pointer[chan []float64], n*n)
	} else {
		h.stripes = make([]slotStripe, slotStripes)
		for i := range h.stripes {
			h.stripes[i].slots = make(map[uint64]chan []float64)
		}
	}
	return h
}

// slot returns (lazily creating) the from→to channel. A small buffer keeps a
// sender from blocking on its own deposit. The blocking Exchange path never
// has more than one message per directed pair outstanding (a pattern's next
// meeting with the same pair starts only after the previous rendezvous
// completed on both sides); the phased Send/Recv path can briefly hold two —
// the sharded collective deposits its next butterfly chunk while the peer is
// still draining the previous phase's — so the capacity is 2.
func (h *Hub) slot(from, to int) chan []float64 {
	if h.dense != nil {
		p := &h.dense[from*h.n+to]
		if c := p.Load(); c != nil {
			return *c
		}
		// First meeting of this pair: materialize the channel. A losing CAS
		// means a concurrent caller won; both sides then share the winner's.
		c := make(chan []float64, 2)
		if p.CompareAndSwap(nil, &c) {
			return c
		}
		return *p.Load()
	}
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	// Fibonacci mixing spreads sequential rank pairs across stripes.
	st := &h.stripes[(key*0x9e3779b97f4a7c15)>>(64-6)&(slotStripes-1)]
	st.mu.Lock()
	c, ok := st.slots[key]
	if !ok {
		c = make(chan []float64, 2)
		st.slots[key] = c
	}
	st.mu.Unlock()
	return c
}

func (h *Hub) check(self, peer int) error {
	if self == peer || self < 0 || self >= h.n || peer < 0 || peer >= h.n {
		return fmt.Errorf("memtransport: worker %d exchanging with %d", self, peer)
	}
	return nil
}

// Exchange implements engine.Transport.
func (h *Hub) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	if err := h.check(self, peer); err != nil {
		return nil, err
	}
	h.slot(self, peer) <- payload
	return h.recv(peer, self), nil
}

// recv drains the from→to FIFO, timing the blocked wait when
// observability is on.
func (h *Hub) recv(from, to int) []float64 {
	c := h.slot(from, to)
	if h.wait == nil {
		return <-c
	}
	start := time.Now()
	p := <-c
	h.wait.Observe(time.Since(start).Seconds())
	return p
}

// Send implements engine.PhasedTransport: a one-way deposit into the
// self→peer FIFO, with no reciprocal payload. It pairs with the receiver's
// Recv. The sharded runtime's phase barriers guarantee at most two deposits
// per directed pair are ever outstanding, so Send never blocks there.
func (h *Hub) Send(round, self, peer int, payload []float64) error {
	if err := h.check(self, peer); err != nil {
		return err
	}
	h.slot(self, peer) <- payload
	return nil
}

// Recv implements engine.PhasedTransport: take the oldest payload from the
// peer→self FIFO. Under the sharded runtime a Recv only ever consumes a
// deposit made in a strictly earlier (barrier-separated) phase, so it never
// blocks; a Recv with nothing deposited would indicate a malformed phase
// program and would deadlock — which the engine's tests would catch.
func (h *Hub) Recv(round, self, peer int) ([]float64, error) {
	if err := h.check(self, peer); err != nil {
		return nil, err
	}
	return h.recv(peer, self), nil
}
