// Command campaign executes a declarative experiment campaign: a JSON spec
// (internal/campaign) names a base scenario and a parameter grid, and the
// command expands the grid into its deterministic run matrix, runs the
// cells across a bounded worker pool, journals completions to
// <out>/manifest.jsonl, and — once every cell is done — writes the
// aggregate figure artifacts (aggregate.json, summary.{md,csv},
// traffic_by_algo.{md,csv}, loss_vs_round.csv, loss_vs_bytes.csv, and
// per-cell traces/ CSVs when the spec enables tracing).
//
// An interrupted campaign resumes by re-running the same command: cells
// already journaled (same ID and spec hash) are skipped, so only the
// missing work executes. Aggregates are byte-deterministic — repeat or
// resumed runs of an unchanged campaign produce identical artifacts.
//
//	campaign -spec internal/campaign/testdata/example.json -out /tmp/sweep
//	campaign -spec sweep.json -out out -workers 4
//	campaign -spec sweep.json -dry-run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sapspsgd/internal/campaign"
	"sapspsgd/internal/obs"
)

var (
	flagSpec      = flag.String("spec", "", "campaign spec file (required)")
	flagOut       = flag.String("out", "campaign-out", "output directory (manifest, cells/, aggregates)")
	flagWorkers   = flag.Int("workers", 0, "concurrent cells (0 = spec value, then GOMAXPROCS)")
	flagMaxCells  = flag.Int("max-cells", 0, "stop after executing this many cells (0 = run all; the campaign stays resumable)")
	flagDryRun    = flag.Bool("dry-run", false, "print the expanded run matrix and exit without running")
	flagObsLinger = flag.Duration("obs-linger", 0, "keep the -obs-addr server up this long after the campaign finishes (lets a scraper take a final /metrics sample)")
	obsFlags      obs.FlagConfig
)

func main() {
	obsFlags.AddFlags(nil)
	flag.Parse()
	obsSrv, err := obsFlags.Start()
	if err == nil {
		err = run()
		if obsSrv != nil && *flagObsLinger > 0 {
			time.Sleep(*flagObsLinger)
		}
	}
	obsSrv.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	if *flagSpec == "" {
		return fmt.Errorf("-spec is required")
	}
	spec, err := campaign.Load(*flagSpec)
	if err != nil {
		return err
	}
	if *flagDryRun {
		base, err := spec.LoadBase()
		if err != nil {
			return err
		}
		cells, err := spec.Expand(base)
		if err != nil {
			return err
		}
		fmt.Printf("campaign %s: %d cell(s)\n", spec.Name, len(cells))
		for _, cell := range cells {
			fmt.Printf("  %3d  %-40s algo=%-10s nodes=%-4d rounds=%-4d seed=%-6d shards=%d  sha=%s\n",
				cell.Index, cell.ID, cell.Spec.Algo, cell.Spec.Nodes, cell.Spec.Rounds,
				cell.Spec.Seed, cell.Spec.Shards, cell.SHA)
		}
		return nil
	}
	stats, err := campaign.Run(spec, campaign.Options{
		OutDir:   *flagOut,
		Workers:  *flagWorkers,
		MaxCells: *flagMaxCells,
		Log:      os.Stdout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s: %d planned, %d skipped, %d executed, %d remaining\n",
		spec.Name, stats.Planned, stats.Skipped, stats.Executed, stats.Remaining)
	return nil
}
