package engine_test

import (
	"testing"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/engine/memtransport"
)

// TestHubSendRecvFIFO pins the one-way primitives the sharded runtime uses:
// deposits drain in FIFO order per directed pair, independently per
// direction, and rank validation matches Exchange.
func TestHubSendRecvFIFO(t *testing.T) {
	h := memtransport.NewHub(3)
	if err := h.Send(0, 0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(0, 0, 1, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(0, 2, 1, []float64{3}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []struct {
		from int
		v    float64
	}{{0, 1}, {0, 2}, {2, 3}} {
		got, err := h.Recv(0, 1, want.from)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != want.v {
			t.Fatalf("recv %d: got %v, want [%v]", i, got, want.v)
		}
	}
	if err := h.Send(0, 0, 0, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if _, err := h.Recv(0, 1, 3); err == nil {
		t.Fatal("out-of-range recv accepted")
	}
}

// exchangeOnly hides the Hub's phased methods, modelling a custom transport
// that predates the sharded runtime.
type exchangeOnly struct{ hub *memtransport.Hub }

func (e exchangeOnly) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	return e.hub.Exchange(round, self, peer, payload)
}

// TestShardsFallbackWithoutPhasedTransport: a Shards request over a
// transport with no phased path must degrade to the blocking pool and still
// reproduce the serial run bit for bit.
func TestShardsFallbackWithoutPhasedTransport(t *testing.T) {
	const n = 4
	spec := testSpec(4)
	ref, refTraj := inProcRun(t, spec, n, nil, nil)

	workers := buildWorkers(t, spec, n)
	eng := engine.New(engine.Options{
		Workers:   workers,
		Planner:   core.NewCoordinator(testEnv(n), coreConfig(spec, n)),
		Transport: exchangeOnly{hub: memtransport.NewHub(n)},
		Shards:    2,
	})
	defer eng.Close()
	led := &engine.CountingLedger{}
	for round := 0; round < spec.Rounds; round++ {
		if _, err := eng.Step(round, led); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, w := range workers {
			params := w.Params()
			for j, v := range params {
				if v != refTraj[round][i][j] {
					t.Fatalf("round %d worker %d param %d: fallback %v != serial %v", round, i, j, v, refTraj[round][i][j])
				}
			}
		}
	}
	got := led.RoundBytes()
	for r := range ref {
		if ref[r] != got[r] {
			t.Fatalf("round %d bytes: fallback %d != serial %d", r, got[r], ref[r])
		}
	}
}
