package scenario

import (
	"bytes"
	"path/filepath"
	"testing"
)

// asyncMinimal returns a valid asynchronous spec the rejection tests mutate.
func asyncMinimal() Spec {
	s := minimal()
	s.Algo = "adpsgd"
	s.Async = &AsyncSpec{ComputeSeconds: 0.01}
	return s
}

// TestAsyncSpecValidation pins the async block's coupling rules: the block
// and the asynchronous recipes come as a pair, and async runs exclude the
// synchronous-only machinery.
func TestAsyncSpecValidation(t *testing.T) {
	if s := asyncMinimal(); s.Validate() != nil {
		t.Fatalf("minimal async spec invalid: %v", s.Validate())
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"async block on sync algo", func(s *Spec) { s.Algo = "psgd" }},
		{"async algo without block", func(s *Spec) { s.Async = nil }},
		{"gradpush without block", func(s *Spec) { s.Algo = "gradpush"; s.Async = nil }},
		{"zero compute_seconds", func(s *Spec) { s.Async.ComputeSeconds = 0 }},
		{"jitter out of range", func(s *Spec) { s.Async.Jitter = 1 }},
		{"slow_fraction out of range", func(s *Spec) { s.Async.SlowFraction = 1.5 }},
		{"slow_fraction without factor", func(s *Spec) { s.Async.SlowFraction = 0.25 }},
		{"slow_factor below one", func(s *Spec) { s.Async.SlowFraction = 0.25; s.Async.SlowFactor = 0.5 }},
		{"negative sample_every", func(s *Spec) { s.Async.SampleEvery = -1 }},
		{"engine shards", func(s *Spec) { s.Shards = 4 }},
		{"bandwidth jitter", func(s *Spec) { s.Bandwidth.Jitter = 0.2 }},
		{"record_trace", func(s *Spec) { s.RecordTrace = true }},
		{"trace block", func(s *Spec) { s.Trace = &TraceSpec{File: "traces/edge.csv"} }},
		{"churn", func(s *Spec) { s.Churn = &ChurnSpec{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 2} }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := asyncMinimal()
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("validated")
			}
		})
	}
}

// TestAsyncScenarioRuns drives both committed async specs end to end: the
// run trains, the sample series is monotone in virtual time, the event log
// and per-rank ledgers materialize, and every requested artifact arrives.
func TestAsyncScenarioRuns(t *testing.T) {
	for _, name := range []string{"adpsgd-async", "gradpush-async"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Load(filepath.Join("testdata", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			out, err := spec.RunFull(RunOptions{Series: true, Events: true, Params: true})
			if err != nil {
				t.Fatal(err)
			}
			res := out.Result
			if res.Shards != 0 {
				t.Fatalf("async run reported %d shards", res.Shards)
			}
			if res.TotalBytes <= 0 || res.SimSeconds <= 0 {
				t.Fatalf("degenerate totals: %d bytes, %v sim seconds", res.TotalBytes, res.SimSeconds)
			}
			if len(out.Losses) == 0 || len(out.Losses) != len(out.CumSimSeconds) || len(out.Losses) != len(out.CumBytes) {
				t.Fatalf("ragged series: %d losses, %d times, %d bytes", len(out.Losses), len(out.CumSimSeconds), len(out.CumBytes))
			}
			for k := 1; k < len(out.CumSimSeconds); k++ {
				if out.CumSimSeconds[k] < out.CumSimSeconds[k-1] || out.CumBytes[k] < out.CumBytes[k-1] {
					t.Fatalf("series not monotone at sample %d", k)
				}
			}
			if out.Events == nil || out.Events.Len() == 0 {
				t.Fatal("no event log")
			}
			if len(out.Params) != spec.Nodes {
				t.Fatalf("%d parameter vectors for %d nodes", len(out.Params), spec.Nodes)
			}
			if len(out.SentBytes) != spec.Nodes || len(out.RecvBytes) != spec.Nodes {
				t.Fatal("missing per-rank ledgers")
			}
			var endpoint int64
			for r := 0; r < spec.Nodes; r++ {
				endpoint += out.SentBytes[r] + out.RecvBytes[r]
			}
			if endpoint != res.TotalBytes {
				t.Fatalf("TotalBytes %d, endpoint sum %d", res.TotalBytes, endpoint)
			}
		})
	}
}

// TestAsyncScenarioDeterministic is the scenario-level half of the
// determinism gate: two RunFull executions of the same committed spec
// produce byte-identical event logs and bitwise-identical parameters.
func TestAsyncScenarioDeterministic(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "adpsgd-async.json"))
	if err != nil {
		t.Fatal(err)
	}
	var logs [2][]byte
	var params [2][][]float64
	for rep := 0; rep < 2; rep++ {
		out, err := spec.RunFull(RunOptions{Events: true, Params: true})
		if err != nil {
			t.Fatal(err)
		}
		logs[rep] = out.Events.Bytes()
		params[rep] = out.Params
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatal("event logs differ between identical runs")
	}
	for i := range params[0] {
		for j := range params[0][i] {
			if params[0][i][j] != params[1][i][j] {
				t.Fatalf("rank %d param %d differs bitwise", i, j)
			}
		}
	}
}
