package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestCompressionSweepTrafficScales(t *testing.T) {
	w := quickWorkload().WithRounds(40)
	tb, err := CompressionSweep(w, 4, []float64{2, 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Traffic at c=2 must be ~4× the traffic at c=8.
	t2, err := strconv.ParseFloat(tb.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := strconv.ParseFloat(tb.Rows[1][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	ratio := t2 / t8
	if ratio < 3 || ratio > 5 {
		t.Fatalf("traffic ratio c2/c8 = %v, want ~4", ratio)
	}
}

func TestPeerSelectionAblation(t *testing.T) {
	w := quickWorkload().WithRounds(30)
	tb, err := PeerSelectionAblation(w, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tb.WriteMarkdown(&sb)
	for _, name := range []string{"SAPS-PSGD", "RandomChoose", "churn"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("missing %s:\n%s", name, sb.String())
		}
	}
}

func TestLocalStepsSweep(t *testing.T) {
	w := quickWorkload().WithRounds(40)
	tb, err := LocalStepsSweep(w, 4, []int{1, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// 4 local steps with constant gradient work → 1/4 the rounds → ~1/4 the
	// traffic.
	t1, _ := strconv.ParseFloat(tb.Rows[0][3], 64)
	t4, _ := strconv.ParseFloat(tb.Rows[1][3], 64)
	if t4 >= t1 {
		t.Fatalf("local-steps=4 traffic %v not below local-steps=1 traffic %v", t4, t1)
	}
	if _, err := LocalStepsSweep(w, 4, []int{0}, 7); err == nil {
		t.Fatal("zero local steps accepted")
	}
}
