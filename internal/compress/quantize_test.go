package compress

import (
	"math"
	"testing"
	"testing/quick"

	"sapspsgd/internal/rng"
)

func TestQSGDRoundTripShape(t *testing.T) {
	q := NewQSGD(4, 1)
	x := []float64{1, -2, 0, 0.5}
	enc := q.Quantize(x)
	dec := enc.Decode()
	if len(dec) != len(x) {
		t.Fatal("length")
	}
	// Signs must be preserved for clearly nonzero entries.
	if dec[0] < 0 || dec[1] > 0 {
		t.Fatalf("signs broken: %v", dec)
	}
}

func TestQSGDZeroVector(t *testing.T) {
	q := NewQSGD(4, 1)
	enc := q.Quantize(make([]float64, 8))
	if enc.Norm != 0 {
		t.Fatal("norm")
	}
	for _, v := range enc.Decode() {
		if v != 0 {
			t.Fatal("zero vector must decode to zero")
		}
	}
}

func TestQSGDUnbiased(t *testing.T) {
	// E[Decode(Quantize(x))] == x: average many independent encodings.
	q := NewQSGD(2, 7)
	r := rng.New(3)
	x := make([]float64, 16)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	const trials = 20000
	mean := make([]float64, len(x))
	for tr := 0; tr < trials; tr++ {
		dec := q.Quantize(x).Decode()
		for i, v := range dec {
			mean[i] += v / trials
		}
	}
	for i := range x {
		if math.Abs(mean[i]-x[i]) > 0.05 {
			t.Fatalf("coord %d: mean %v vs true %v", i, mean[i], x[i])
		}
	}
}

func TestQSGDCodesWithinRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		levels := 1 + r.Intn(127)
		q := NewQSGD(levels, seed)
		x := make([]float64, 1+r.Intn(100))
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		enc := q.Quantize(x)
		for _, c := range enc.Codes {
			if int(c) > levels || int(c) < -levels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQSGDWireBytes(t *testing.T) {
	// levels=1 → 3 values → 2 bits/code. 16 codes → 4 bytes + 4 norm = 8.
	q := NewQSGD(1, 1)
	enc := q.Quantize(make([]float64, 16))
	if got := enc.WireBytes(); got != 8 {
		t.Fatalf("WireBytes = %d, want 8", got)
	}
	// levels=127 → 255 values → 8 bits/code. 10 codes → 10 bytes + 4.
	q2 := NewQSGD(127, 1)
	enc2 := q2.Quantize(make([]float64, 10))
	if got := enc2.WireBytes(); got != 14 {
		t.Fatalf("WireBytes = %d, want 14", got)
	}
}

func TestQSGDCompressionWeakerThanMask(t *testing.T) {
	// The paper's argument: quantization saturates at 32× while mask
	// sparsification reaches c=100 and beyond. Dense float32 payload of n
	// values = 4n bytes; ternary QSGD ≈ n/4 bytes (16×); mask c=100 = 0.04n.
	const n = 10000
	q := NewQSGD(1, 1)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	qBytes := q.Quantize(x).WireBytes()
	maskBytes := MaskedBytes(n / 100)
	if qBytes <= maskBytes {
		t.Fatalf("QSGD %d bytes unexpectedly below mask-c100 %d bytes", qBytes, maskBytes)
	}
	if qBytes >= DenseBytes(n) {
		t.Fatalf("QSGD %d bytes not below dense %d", qBytes, DenseBytes(n))
	}
}

func TestQSGDBadLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQSGD(0, 1)
}
