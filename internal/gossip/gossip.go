// Package gossip implements the gossip-matrix machinery of SAPS-PSGD:
// Algorithm 3 (GenerateGossipMatrix) with its recency-constrained,
// bandwidth-aware maximum matching, plus the static topologies used by the
// baselines (ring for D-PSGD/DCD-PSGD, uniform random matching for the
// RandomChoose comparison) and conversions to doubly stochastic matrices.
package gossip

import (
	"fmt"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Config carries the two knobs of Algorithm 3.
type Config struct {
	// BThres is the bandwidth threshold (MB/s) defining the filtered matrix
	// B*: only links at least this fast are eligible while the
	// recently-connected graph stays connected (Algorithm 1, lines 9–12).
	BThres float64
	// TThres is the communication iteration gap: an edge used within the
	// last TThres rounds counts as "recently connected" (RC). Smaller values
	// force re-connection more often (faster mixing, lower bandwidth);
	// larger values favor bandwidth. Must be >= 1.
	TThres int
}

// Round is the output of one gossip-matrix generation: the peer matching,
// with the doubly stochastic matrix W_t available on demand via W.
type Round struct {
	Match graph.Matching
	// Forced reports whether this round had to inject connectivity-restoring
	// edges (the RC graph had gone stale/disconnected).
	Forced bool
}

// W materializes the round's doubly stochastic gossip matrix. The matrix is
// dense N×N — small-N diagnostics and spectral tests only; the training path
// applies Match directly and never builds it.
func (r Round) W() *tensor.Matrix { return MatchingW(r.Match) }

// edgeKey packs an unordered vertex pair into one map key (smaller vertex in
// the high half, so unpacking recovers u < v).
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// edgeStamp is one timestamp-matrix update awaiting TThres-window expiry.
type edgeStamp struct {
	key   uint64
	round int
}

// Generator produces the per-round gossip matchings for a fixed bandwidth
// environment, maintaining the timestamp matrix R across rounds. It is the
// coordinator-side state of Algorithm 3.
//
// The implementation is fully sparse — O(E + N) per round and O(N·TThres)
// state, never O(N²) — so it plans for 50k-node fleets in seconds. The
// timestamp matrix lives as an edge-keyed map whose entries expire once they
// leave the TThres recency window, the RC graph is maintained incrementally
// as edges are stamped and expired, and candidate edges stream out of the
// Bandwidth representation in lexicographic order. The matching sequence is
// bit-identical to the retained dense formulation (ReferenceGenerator);
// the equivalence suite pins that across N, seeds, churn, and forced rounds.
//
// One consequence of eviction: rounds must be generated in non-decreasing
// order (Next(t) then Next(t') with t' < t panics). The dense reference has
// no such restriction, but every driver advances rounds monotonically.
type Generator struct {
	bw   *netsim.Bandwidth
	cfg  Config
	seed uint64
	n    int

	// lastUsed is the sparse timestamp matrix R. Invariant: a key is
	// present iff its edge is currently recently-connected, i.e. its last
	// stamp is inside the TThres window of the most recent round — the map
	// and rcAdj always describe the same edge set.
	lastUsed map[uint64]int
	recent   []edgeStamp // FIFO of stamps awaiting expiry
	head     int         // index of the oldest un-expired stamp in recent
	rcAdj    [][]int32   // incremental RC adjacency (mirrors lastUsed)
	lastT    int         // most recent round generated

	// Per-round scratch, reused across rounds so steady-state planning
	// allocates only what the matching itself needs.
	candidate []graph.WeightedEdge
	extra     []graph.WeightedEdge
	seen      []bool
	stack     []int32
	compOf    []int32
}

// NewGenerator returns a Generator over the environment bw. The seed drives
// the RandomlyMaxMatch randomization; generators constructed with equal
// arguments produce identical matching sequences.
func NewGenerator(bw *netsim.Bandwidth, cfg Config, seed uint64) *Generator {
	if cfg.TThres < 1 {
		panic(fmt.Sprintf("gossip: TThres %d < 1", cfg.TThres))
	}
	n := bw.N
	return &Generator{
		bw:       bw,
		cfg:      cfg,
		seed:     seed,
		n:        n,
		lastUsed: make(map[uint64]int),
		rcAdj:    make([][]int32, n),
		lastT:    -1,
		seen:     make([]bool, n),
		compOf:   make([]int32, n),
	}
}

// expire pops every stamp that left the recency window at round t. A stamp
// only retires its edge if it is still the edge's latest use — a refreshed
// edge has a younger stamp later in the FIFO.
func (g *Generator) expire(t int) {
	cut := t - g.cfg.TThres
	for g.head < len(g.recent) && g.recent[g.head].round <= cut {
		st := g.recent[g.head]
		g.head++
		if last, ok := g.lastUsed[st.key]; ok && last == st.round {
			delete(g.lastUsed, st.key)
			u, v := int(st.key>>32), int(uint32(st.key))
			g.rcAdj[u] = removeNeighbor(g.rcAdj[u], int32(v))
			g.rcAdj[v] = removeNeighbor(g.rcAdj[v], int32(u))
		}
	}
	if g.head == len(g.recent) {
		g.recent, g.head = g.recent[:0], 0
	} else if g.head >= 1024 && g.head*2 >= len(g.recent) {
		n := copy(g.recent, g.recent[g.head:])
		g.recent, g.head = g.recent[:n], 0
	}
}

// removeNeighbor swap-deletes one occurrence of v (RC adjacency order is
// immaterial: only connectivity and the component partition are read).
func removeNeighbor(adj []int32, v int32) []int32 {
	for i, w := range adj {
		if w == v {
			adj[i] = adj[len(adj)-1]
			return adj[:len(adj)-1]
		}
	}
	return adj
}

// stamp records that edge (u, v) carried an exchange at round t.
func (g *Generator) stamp(u, v, t int) {
	key := edgeKey(u, v)
	if _, ok := g.lastUsed[key]; !ok {
		g.rcAdj[u] = append(g.rcAdj[u], int32(v))
		g.rcAdj[v] = append(g.rcAdj[v], int32(u))
	}
	g.lastUsed[key] = t
	g.recent = append(g.recent, edgeStamp{key: key, round: t})
}

// virtuallyComplete reports whether round t is early enough that never-used
// edges still count as recently connected. The timestamp matrix initializes
// to -1, and -1 > t-TThres holds through round TThres-2 — until then the RC
// graph contains every pair and is trivially connected, so neither it nor
// its components ever need materializing.
func (g *Generator) virtuallyComplete(t int) bool { return t <= g.cfg.TThres-2 }

// rcConnected reports whether the active-induced RC subgraph is connected at
// round t (vacuously true for fewer than two active vertices).
func (g *Generator) rcConnected(t int, active []bool) bool {
	if g.virtuallyComplete(t) {
		return true
	}
	n := g.n
	start, count := 0, n
	if active != nil {
		start, count = -1, 0
		for i := 0; i < n; i++ {
			if active[i] {
				count++
				if start == -1 {
					start = i
				}
			}
		}
	}
	if count <= 1 {
		return true
	}
	seen := g.seen
	for i := range seen {
		seen[i] = false
	}
	stack := g.stack[:0]
	stack = append(stack, int32(start))
	seen[start] = true
	reached := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.rcAdj[v] {
			if seen[w] || (active != nil && !active[w]) {
				continue
			}
			seen[w] = true
			reached++
			stack = append(stack, w)
		}
	}
	g.stack = stack
	return reached == count
}

// rcComponents labels every vertex with its RC component. Labels follow the
// smallest-vertex discovery order, matching the dense FindConnectedSubgraph;
// only label equality is consumed downstream.
func (g *Generator) rcComponents() []int32 {
	compOf := g.compOf
	for i := range compOf {
		compOf[i] = -1
	}
	stack := g.stack[:0]
	var c int32
	for s := 0; s < g.n; s++ {
		if compOf[s] != -1 {
			continue
		}
		compOf[s] = c
		stack = append(stack, int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.rcAdj[v] {
				if compOf[w] == -1 {
					compOf[w] = c
					stack = append(stack, w)
				}
			}
		}
		c++
	}
	g.stack = stack[:0]
	return compOf
}

// Next runs Algorithm 3 for round t: it returns the matching and updates the
// timestamp matrix R.
func (g *Generator) Next(t int) Round { return g.NextActive(t, nil) }

// NextActive is Next restricted to the currently active workers (nil means
// all active). Inactive workers are excluded from matching entirely — the
// federated-dynamics case the paper motivates (§I: workers "may join/leave
// the training randomly"). Connectivity bookkeeping (the RC graph) also
// restricts to active workers, so a long-absent worker cannot block the
// recency check.
func (g *Generator) NextActive(t int, active []bool) Round {
	n := g.n
	if t < g.lastT {
		panic(fmt.Sprintf("gossip: rounds must be non-decreasing (round %d after %d)", t, g.lastT))
	}
	g.lastT = t
	g.expire(t)
	rnd := rng.New(g.seed).Derive(uint64(t) + 0x90551b)
	isActive := func(i int) bool { return active == nil || active[i] }

	connected := g.rcConnected(t, active)

	candidate := g.candidate[:0]
	forced := false
	if connected {
		// Line 2: E = B* — the bandwidth-filtered graph.
		g.bw.ForEachEdge(g.cfg.BThres, func(u, v int, w float64) {
			if isActive(u) && isActive(v) {
				candidate = append(candidate, graph.WeightedEdge{U: u, V: v, Weight: w})
			}
		})
	} else {
		// Lines 4: connect the RC components using any available links.
		forced = true
		compOf := g.rcComponents()
		g.bw.ForEachEdge(0, func(u, v int, w float64) {
			if isActive(u) && isActive(v) && compOf[u] != compOf[v] {
				candidate = append(candidate, graph.WeightedEdge{U: u, V: v, Weight: w})
			}
		})
	}
	g.candidate = candidate

	// Line 5: bandwidth-preferring maximum match on the candidate edges.
	match := graph.BandwidthAwareMaximumMatching(n, candidate, rnd)

	// Lines 6–8: complete the matching over still-unmatched active workers
	// using the unfiltered bandwidth matrix.
	if match.Size() < n/2 {
		extra := g.extra[:0]
		g.bw.ForEachEdge(0, func(u, v int, w float64) {
			if match[u] == -1 && match[v] == -1 && isActive(u) && isActive(v) {
				extra = append(extra, graph.WeightedEdge{U: u, V: v, Weight: w})
			}
		})
		g.extra = extra
		second := graph.BandwidthAwareMaximumMatching(n, extra, rnd)
		for v, p := range second {
			if p > v && match[v] == -1 && match[p] == -1 {
				match[v] = p
				match[p] = v
			}
		}
	}

	// Record timestamps for the edges used this round.
	for v, p := range match {
		if p > v {
			g.stamp(v, p, t)
		}
	}

	return Round{Match: match, Forced: forced}
}

// LastUsed exposes R[i][j] (for tests and diagnostics). Unlike the dense
// reference, entries that fell out of the TThres recency window read as -1:
// an expired timestamp and a never-used edge are indistinguishable, which is
// exactly the distinction Algorithm 3 never needs.
func (g *Generator) LastUsed(i, j int) int {
	if last, ok := g.lastUsed[edgeKey(i, j)]; ok {
		return last
	}
	return -1
}

// MatchingW converts a matching into the doubly stochastic gossip matrix of
// Algorithm 3's GenerateW: matched pairs average (W_ii = W_jj = W_ij = W_ji
// = 1/2); unmatched workers keep their model (W_ii = 1).
func MatchingW(m graph.Matching) *tensor.Matrix {
	n := len(m)
	w := tensor.NewMatrix(n, n)
	for v, p := range m {
		switch {
		case p == -1:
			w.Set(v, v, 1)
		default:
			w.Set(v, v, 0.5)
			w.Set(v, p, 0.5)
		}
	}
	return w
}

// RandomMatching returns a uniformly random maximum matching of the complete
// graph on n vertices — the paper's RandomChoose baseline ("another way to
// choose the communication peers ... randomly do maximum match").
func RandomMatching(n int, rnd *rng.Source) graph.Matching {
	perm := rnd.Perm(n)
	m := make(graph.Matching, n)
	for i := range m {
		m[i] = -1
	}
	for i := 0; i+1 < n; i += 2 {
		a, b := perm[i], perm[i+1]
		m[a] = b
		m[b] = a
	}
	return m
}

// RingW returns the static ring gossip matrix used by D-PSGD and DCD-PSGD in
// the paper's experiments: worker i averages with its two ring neighbors
// (weights 1/3 each, 1/3 self).
func RingW(n int) *tensor.Matrix {
	w := tensor.NewMatrix(n, n)
	if n == 1 {
		w.Set(0, 0, 1)
		return w
	}
	if n == 2 {
		// Degenerate ring: the two neighbors coincide.
		w.Set(0, 0, 0.5)
		w.Set(0, 1, 0.5)
		w.Set(1, 0, 0.5)
		w.Set(1, 1, 0.5)
		return w
	}
	for i := 0; i < n; i++ {
		w.Set(i, i, 1.0/3)
		w.Set(i, (i+1)%n, 1.0/3)
		w.Set(i, (i+n-1)%n, 1.0/3)
	}
	return w
}

// RingNeighbors returns the two ring neighbors of worker i among n workers.
func RingNeighbors(i, n int) (prev, next int) {
	return (i + n - 1) % n, (i + 1) % n
}

// MeanMatchedBandwidth returns the mean bandwidth (MB/s) over the matched
// pairs — the per-iteration series plotted in Fig. 5. It returns 0 for an
// empty matching.
func MeanMatchedBandwidth(m graph.Matching, bw *netsim.Bandwidth) float64 {
	sum, k := 0.0, 0
	for v, p := range m {
		if p > v {
			sum += bw.MBps(v, p)
			k++
		}
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k)
}

// RingMeanBandwidth returns the mean link bandwidth along the canonical ring
// 0→1→…→n-1→0, the quantity the paper averages over 5000 random matrices for
// the D-PSGD/DCD-PSGD rows of Fig. 5.
func RingMeanBandwidth(bw *netsim.Bandwidth) float64 {
	n := bw.N
	if n < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += bw.MBps(i, (i+1)%n)
	}
	return sum / float64(n)
}
