package engine

import (
	"fmt"

	"sapspsgd/internal/core"
)

// shardRunner is the sharded phased runtime: ranks are partitioned into
// contiguous shards, each served by one long-lived executor goroutine. A
// round executes as PhaseCount barrier-separated phases; within a phase
// every shard runs its ranks' RunPhase slices serially in ascending rank
// order while shards proceed concurrently. Determinism does not depend on
// the shard count:
//
//   - each rank's floating-point work is confined to its own state and runs
//     in the same per-rank operation order as the blocking pool (the
//     PhasedPattern contract), so trajectories are bit-identical;
//   - cross-rank data moves only through the transport's keyed FIFOs, and
//     every Recv consumes a deposit from an earlier phase (the phase barrier
//     is the happens-before edge);
//   - reports are collected rank-indexed and the Driver charges the ledger
//     from the rank-ordered pair aggregation, so traffic accounting is
//     byte-identical regardless of completion order.
type shardRunner struct {
	n       int
	pattern PhasedPattern
	nodes   []Node
	codecs  []Codec
	tr      PhasedTransport

	cmds []chan int // one per shard, carrying the phase index
	done chan error // one message per shard per phase

	// Per-round scratch, written only between barriers or by the owning
	// shard's ranks.
	states  []PhaseState
	ctxs    []RoundContext
	active  []bool
	reports []NodeReport
}

// newShardRunner spawns shards executor goroutines over the rank space.
// shards is clamped to [1, n].
func newShardRunner(nodes []Node, codecs []Codec, pat PhasedPattern, tr PhasedTransport, shards int) *shardRunner {
	n := len(nodes)
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	s := &shardRunner{
		n:       n,
		pattern: pat,
		nodes:   nodes,
		codecs:  codecs,
		tr:      tr,
		cmds:    make([]chan int, shards),
		done:    make(chan error, shards),
		states:  make([]PhaseState, n),
		ctxs:    make([]RoundContext, n),
		active:  make([]bool, n),
		reports: make([]NodeReport, n),
	}
	for i := range s.cmds {
		lo, hi := i*n/shards, (i+1)*n/shards
		s.cmds[i] = make(chan int)
		go s.shardLoop(lo, hi, s.cmds[i])
	}
	return s
}

// shardLoop serves one shard's ranks phase by phase until the command
// channel closes. It deliberately holds no reference to the Engine, so an
// abandoned engine stays collectable.
func (s *shardRunner) shardLoop(lo, hi int, cmds <-chan int) {
	for phase := range cmds {
		var firstErr error
		for r := lo; r < hi; r++ {
			if !s.active[r] {
				continue
			}
			if err := s.pattern.RunPhase(s.ctxs[r], phase, s.nodes[r], s.codecs, s.tr, &s.states[r]); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("engine: node %d: %w", r, err)
			}
		}
		s.done <- firstErr
	}
}

// runRound executes one validated plan across the shards. An error aborts
// the remaining phases and leaves the engine unusable (undelivered deposits
// may linger in the transport); in-process patterns over valid plans cannot
// fail, so this only matters for defective custom codecs or transports.
func (s *shardRunner) runRound(plan core.RoundPlan) (ControlReport, error) {
	for r := 0; r < s.n; r++ {
		s.states[r] = PhaseState{}
		s.ctxs[r] = RoundContext{Round: plan.Round, Seed: plan.Seed, Self: r, N: s.n, Plan: plan}
		s.active[r] = plan.Active == nil || plan.Active[r]
	}
	phases := s.pattern.PhaseCount(plan, s.n)
	for p := 0; p < phases; p++ {
		for _, c := range s.cmds {
			c <- p
		}
		var firstErr error
		for range s.cmds {
			if err := <-s.done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return ControlReport{}, firstErr
		}
	}
	for r := 0; r < s.n; r++ {
		s.reports[r] = s.states[r].Rep
	}
	return buildReport(s.reports), nil
}
