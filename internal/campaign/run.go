package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"sapspsgd/internal/obs"
	"sapspsgd/internal/scenario"
)

// CellResultSchemaVersion is the cells/<id>.json schema.
const CellResultSchemaVersion = 1

// CellResult is one executed cell's persisted record
// (cells/<id>.json). Every field is deterministic — a repeat run of the
// same campaign writes byte-identical files — so the aggregates derived
// from these records are reproducible too; wall timings live only in the
// manifest.
type CellResult struct {
	// SchemaVersion must equal CellResultSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Cell and SpecSHA key the record to the run matrix.
	Cell    string `json:"cell"`
	SpecSHA string `json:"spec_sha"`
	// Algo through Compression label the cell for aggregation (Bandwidth,
	// FleetTrace, Partition and Compression are the grid labels;
	// empty/zero when the axis is not swept).
	Algo        string  `json:"algo"`
	Nodes       int     `json:"nodes"`
	Rounds      int     `json:"rounds"`
	Seed        uint64  `json:"seed"`
	Shards      int     `json:"shards"`
	Bandwidth   string  `json:"bandwidth,omitempty"`
	FleetTrace  string  `json:"fleet_trace,omitempty"`
	Partition   string  `json:"partition,omitempty"`
	Compression float64 `json:"compression,omitempty"`
	// TotalBytes is the fleet's deterministic traffic total, FinalLoss the
	// last round's mean training loss, SimSeconds the simulated
	// communication time.
	TotalBytes int64   `json:"total_bytes"`
	FinalLoss  float64 `json:"final_loss"`
	SimSeconds float64 `json:"sim_seconds"`
	// Losses, CumBytes and CumSimSeconds are the per-round convergence
	// series (loss vs round, loss vs cumulative traffic, and the
	// simulated-time axis for time-to-accuracy reads).
	Losses        []float64 `json:"losses"`
	CumBytes      []int64   `json:"cum_bytes"`
	CumSimSeconds []float64 `json:"cum_sim_seconds"`
}

// tracesRounds reports whether the cell's algorithm records a round trace
// (the SAPS family — the only implementers of SetTrace).
func tracesRounds(s *scenario.Spec) bool { return s.Traceable() }

// cellFile is the cell's result path under the campaign output directory.
func cellFile(outDir, id string) string {
	return filepath.Join(outDir, "cells", id+".json")
}

// traceFile is the cell's per-round trace CSV path.
func traceFile(outDir, id string) string {
	return filepath.Join(outDir, "traces", id+".csv")
}

// writeFileAtomic writes via a temp file + rename so a kill mid-write never
// leaves a truncated artifact behind (resume treats a missing file as
// not-done, a corrupt one would poison the aggregates).
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// Options tunes one campaign invocation (everything not declared in the
// spec itself).
type Options struct {
	// OutDir is the campaign's output directory: manifest.jsonl, cells/,
	// traces/ and the aggregate artifacts all live under it. Created if
	// missing; an existing manifest drives resume.
	OutDir string
	// Workers overrides the spec's concurrency bound (0 defers to the
	// spec, which defaults to GOMAXPROCS).
	Workers int
	// MaxCells, when positive, stops the invocation after executing that
	// many cells — the smoke-test and interruption-simulation hook. The
	// campaign is left resumable; aggregates are only written once every
	// cell is done.
	MaxCells int
	// Log receives progress lines (nil discards them).
	Log io.Writer
	// Observer, when set, is called once per actually executed cell (not
	// for skipped ones) — a test seam for resume accounting.
	Observer func(cellID string)
}

// Stats summarizes one Run invocation.
type Stats struct {
	// Planned is the full run-matrix size.
	Planned int
	// Skipped cells were already journaled (same ID and spec SHA, result
	// file present) and did not re-run.
	Skipped int
	// Executed cells ran in this invocation.
	Executed int
	// Remaining cells are still pending (only non-zero under MaxCells or
	// after an error).
	Remaining int
	// Aggregated reports whether the aggregate artifacts were (re)written
	// — true exactly when Remaining is zero and no error occurred.
	Aggregated bool
}

// Run executes the campaign into opts.OutDir: expand the grid, skip the
// cells the manifest already records, run the rest across the worker pool,
// journal each completion, and — once every cell is done — write the
// aggregate artifacts. Safe to invoke repeatedly; each invocation does only
// the missing work.
func Run(c *Spec, opts Options) (Stats, error) {
	var st Stats
	if opts.OutDir == "" {
		return st, fmt.Errorf("campaign %s: no output directory", c.Name)
	}
	base, err := c.LoadBase()
	if err != nil {
		return st, fmt.Errorf("campaign %s: base scenario: %w", c.Name, err)
	}
	cells, err := c.Expand(base)
	if err != nil {
		return st, err
	}
	st.Planned = len(cells)
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}
	if err := os.MkdirAll(filepath.Join(opts.OutDir, "cells"), 0o755); err != nil {
		return st, err
	}
	if c.Trace {
		if err := os.MkdirAll(filepath.Join(opts.OutDir, "traces"), 0o755); err != nil {
			return st, err
		}
	}
	manifestPath := filepath.Join(opts.OutDir, ManifestName)
	done, err := ReadManifest(manifestPath)
	if err != nil {
		return st, err
	}
	var pending []Cell
	for _, cell := range cells {
		if e, ok := done[cell.ID]; ok && e.SpecSHA == cell.SHA {
			if _, err := os.Stat(cellFile(opts.OutDir, cell.ID)); err == nil {
				// With tracing on, a traceable cell's CSV is part of the
				// contract: enabling trace on a finished campaign re-runs
				// those cells rather than silently reporting success with
				// an empty traces/ directory.
				if c.Trace && tracesRounds(cell.Spec) {
					if _, err := os.Stat(traceFile(opts.OutDir, cell.ID)); err != nil {
						pending = append(pending, cell)
						continue
					}
				}
				st.Skipped++
				continue
			}
		}
		pending = append(pending, cell)
	}
	capped := pending
	if opts.MaxCells > 0 && len(capped) > opts.MaxCells {
		capped = capped[:opts.MaxCells]
	}
	cm := obs.Current().CampaignM()
	cm.CellsPlanned.Set(int64(st.Planned))
	cm.CellsResumedTotal.Add(int64(st.Skipped))
	fmt.Fprintf(logw, "campaign %s: %d cell(s), %d already done, running %d\n",
		c.Name, st.Planned, st.Skipped, len(capped))

	journal, err := openManifest(manifestPath)
	if err != nil {
		return st, err
	}
	defer journal.Close()

	workers := opts.Workers
	if workers <= 0 {
		workers = c.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(capped) {
		workers = len(capped)
	}

	jobs := make(chan Cell)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		executed int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				if failed() {
					continue
				}
				start := time.Now()
				cm.CellsRunning.Inc()
				res, err := runCell(c, cell, opts.OutDir)
				cm.CellsRunning.Dec()
				if err != nil {
					cm.CellsFailedTotal.Inc()
					if l := obs.Logger(); l != nil {
						l.Error("cell failed", "campaign", c.Name, "cell", cell.ID, "err", err)
					}
					fail(fmt.Errorf("campaign %s: cell %s: %w", c.Name, cell.ID, err))
					continue
				}
				cm.CellsDoneTotal.Inc()
				if l := obs.Logger(); l != nil {
					l.Info("cell complete", "campaign", c.Name, "cell", cell.ID,
						"bytes", res.TotalBytes, "sim_seconds", res.SimSeconds,
						"loss", res.FinalLoss, "wall_seconds", time.Since(start).Seconds())
				}
				if err := journal.Append(ManifestEntry{
					Cell:        cell.ID,
					SpecSHA:     cell.SHA,
					TotalBytes:  res.TotalBytes,
					FinalLoss:   res.FinalLoss,
					SimSeconds:  res.SimSeconds,
					WallSeconds: time.Since(start).Seconds(),
				}); err != nil {
					fail(fmt.Errorf("campaign %s: cell %s: journal: %w", c.Name, cell.ID, err))
					continue
				}
				mu.Lock()
				executed++
				n := executed
				mu.Unlock()
				if opts.Observer != nil {
					opts.Observer(cell.ID)
				}
				fmt.Fprintf(logw, "  [%d/%d] %-40s %12d B  sim %8.2fs  loss %.4f\n",
					n, len(capped), cell.ID, res.TotalBytes, res.SimSeconds, res.FinalLoss)
			}
		}()
	}
	for _, cell := range capped {
		jobs <- cell
	}
	close(jobs)
	wg.Wait()
	st.Executed = executed
	st.Remaining = st.Planned - st.Skipped - st.Executed
	if firstErr != nil {
		return st, firstErr
	}
	if st.Remaining > 0 {
		fmt.Fprintf(logw, "campaign %s: stopped with %d cell(s) remaining (re-run to resume)\n", c.Name, st.Remaining)
		return st, nil
	}
	if err := Aggregate(c, cells, opts.OutDir); err != nil {
		return st, err
	}
	st.Aggregated = true
	fmt.Fprintf(logw, "campaign %s: complete — aggregates written to %s\n", c.Name, opts.OutDir)
	return st, nil
}

// runCell executes one cell and persists its result (and trace, when
// enabled) under outDir. The written artifacts are fully deterministic.
func runCell(c *Spec, cell Cell, outDir string) (*CellResult, error) {
	out, err := cell.Spec.RunFull(scenario.RunOptions{Series: true, Trace: c.Trace})
	if err != nil {
		return nil, err
	}
	res := &CellResult{
		SchemaVersion: CellResultSchemaVersion,
		Cell:          cell.ID,
		SpecSHA:       cell.SHA,
		Algo:          cell.Spec.Algo,
		Nodes:         cell.Spec.Nodes,
		Rounds:        cell.Spec.Rounds,
		Seed:          cell.Spec.Seed,
		Shards:        cell.Spec.Shards,
		Bandwidth:     cell.Bandwidth,
		FleetTrace:    cell.Trace,
		Partition:     cell.Partition,
		Compression:   cell.Compression,
		TotalBytes:    out.Result.TotalBytes,
		FinalLoss:     out.Result.FinalLoss,
		SimSeconds:    out.Result.SimSeconds,
		Losses:        out.Losses,
		CumBytes:      out.CumBytes,
		CumSimSeconds: out.CumSimSeconds,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(cellFile(outDir, cell.ID), append(data, '\n')); err != nil {
		return nil, err
	}
	if out.Trace != nil {
		var buf bytes.Buffer
		if err := out.Trace.WriteCSV(&buf); err != nil {
			return nil, err
		}
		// A recorder can also come from the cell scenario's own trace flag
		// (not just the campaign's), so ensure the directory here rather
		// than relying on the upfront creation.
		path := traceFile(outDir, cell.ID)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, err
		}
		if err := writeFileAtomic(path, buf.Bytes()); err != nil {
			return nil, err
		}
	}
	return res, nil
}
