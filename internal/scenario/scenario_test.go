package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

var update = flag.Bool("update", false, "rewrite the golden spec files")

// TestSpecGoldenRoundTrip pins every example spec's parsed, canonical form:
// load → re-marshal must match the committed golden byte for byte, and the
// canonical form must re-parse to the same canonical form (a stable
// fixpoint). Run with -update to regenerate after an intentional schema
// change (which also requires bumping SpecSchemaVersion).
func TestSpecGoldenRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata specs (%v)", err)
	}
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			spec, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Fatalf("spec name %q does not match file name %q", spec.Name, name)
			}
			canon, err := spec.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(golden, canon, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run Golden -update ./internal/scenario`): %v", err)
			}
			if !bytes.Equal(canon, want) {
				t.Errorf("canonical form drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, canon, want)
			}
			reparsed, err := Parse(canon)
			if err != nil {
				t.Fatalf("canonical form does not re-parse: %v", err)
			}
			canon2, err := reparsed.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, canon2) {
				t.Errorf("canonical form is not a fixpoint")
			}
		})
	}
}

// minimal returns a valid spec the rejection tests mutate.
func minimal() Spec {
	return Spec{
		SchemaVersion: SpecSchemaVersion,
		Name:          "t",
		Algo:          "psgd",
		Nodes:         4,
		Rounds:        2,
		Seed:          3,
		LR:            0.1,
		Batch:         8,
		Model:         ModelSpec{Hidden: []int{8}},
		Data:          DataSpec{Samples: 64, Classes: 4},
		Bandwidth:     BandwidthSpec{Kind: "uniform", Lo: 1, Hi: 5},
	}
}

func TestSpecRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown algo", func(s *Spec) { s.Algo = "warp-sgd" }, "unknown algorithm"},
		{"zero nodes", func(s *Spec) { s.Nodes = 0 }, "0 nodes"},
		{"zero rounds", func(s *Spec) { s.Rounds = 0 }, "0 rounds"},
		{"negative uniform bandwidth", func(s *Spec) { s.Bandwidth.Lo, s.Bandwidth.Hi = -1, 5 }, "uniform bandwidth"},
		{"inverted uniform bandwidth", func(s *Spec) { s.Bandwidth.Lo, s.Bandwidth.Hi = 5, 1 }, "uniform bandwidth"},
		{"unknown bandwidth kind", func(s *Spec) { s.Bandwidth.Kind = "wormhole" }, "unknown bandwidth kind"},
		{"cities with wrong fleet", func(s *Spec) { s.Bandwidth = BandwidthSpec{Kind: "cities"} }, "needs 14 nodes"},
		{"negative matrix entry", func(s *Spec) {
			s.Nodes, s.Data.Samples = 2, 64
			s.Bandwidth = BandwidthSpec{Kind: "matrix", Matrix: [][]float64{{0, -3}, {-3, 0}}}
		}, "negative bandwidth"},
		{"matrix shape mismatch", func(s *Spec) {
			s.Bandwidth = BandwidthSpec{Kind: "matrix", Matrix: [][]float64{{0, 1}, {1, 0}}}
		}, "matrix of 2 rows for 4 nodes"},
		{"churn on non-saps", func(s *Spec) { s.Churn = &ChurnSpec{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 2} }, "requires algo saps"},
		{"bad churn probability", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Churn = &ChurnSpec{LeaveProb: 1.5, JoinProb: 0.5, MinActive: 2}
		}, "churn probabilities"},
		{"straggler slowdown below one", func(s *Spec) { s.Straggler = &StragglerSpec{Fraction: 0.5, Slowdown: 0.5} }, "straggler slowdown"},
		{"jitter at one", func(s *Spec) { s.Bandwidth.Jitter = 1 }, "jitter"},
		{"negative jitter", func(s *Spec) { s.Bandwidth.Jitter = -0.2 }, "jitter"},
		{"record_trace on non-saps", func(s *Spec) { s.RecordTrace = true }, "record_trace requires algo saps"},
		{"trace without file", func(s *Spec) { s.Trace = &TraceSpec{} }, "trace block missing file"},
		{"trace bad interp", func(s *Spec) { s.Trace = &TraceSpec{File: "t.csv", Interp: "cubic"} }, "trace interp"},
		{"trace events on non-saps", func(s *Spec) { s.Trace = &TraceSpec{File: "t.csv", Events: true} }, "trace events require algo saps"},
		{"trace with churn", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Trace = &TraceSpec{File: "t.csv", Events: true}
			s.Churn = &ChurnSpec{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 2}
		}, "trace and churn are mutually exclusive"},
		{"planner_only with trace block", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.PlannerOnly = true
			s.Trace = &TraceSpec{File: "t.csv"}
		}, "excludes churn/faults/trace"},
		{"partition unknown kind", func(s *Spec) { s.Partition = &PartitionSpec{Kind: "sorted"} }, "unknown partition kind"},
		{"partition dirichlet without alpha", func(s *Spec) { s.Partition = &PartitionSpec{Kind: "dirichlet"} }, "needs alpha > 0"},
		{"partition quantity negative alpha", func(s *Spec) { s.Partition = &PartitionSpec{Kind: "quantity", Alpha: -1} }, "needs alpha > 0"},
		{"partition iid with alpha", func(s *Spec) { s.Partition = &PartitionSpec{Kind: "iid", Alpha: 0.5} }, "iid takes no alpha"},
		{"partition negative floor", func(s *Spec) { s.Partition = &PartitionSpec{Kind: "dirichlet", Alpha: 1, MinPerNode: -1} }, "min_per_node -1"},
		{"partition floor exceeds samples", func(s *Spec) {
			s.Partition = &PartitionSpec{Kind: "quantity", Alpha: 1, MinPerNode: 100}
		}, "exceeds 64 samples"},
		{"negative shards", func(s *Spec) { s.Shards = -2 }, "-2 shards"},
		{"wrong schema version", func(s *Spec) { s.SchemaVersion = 99 }, "schema_version"},
		{"saps without compression", func(s *Spec) { s.Algo = "saps" }, "compression"},
		{"fedavg without fraction", func(s *Spec) { s.Algo = "fedavg"; s.LocalSteps = 2 }, "fraction"},
		{"gossip on non-saps", func(s *Spec) { s.Gossip = &GossipSpec{BThres: 1, TThres: 5} }, "require algo saps"},
		{"gossip with zero recency window", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Gossip = &GossipSpec{BThres: 1} // t_thres omitted in JSON decodes to 0
		}, "t_thres 0"},
		{"faults on non-saps", func(s *Spec) {
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Rank: 1, Round: 1, RejoinAfter: 1}}}
		}, "faults require algo saps"},
		{"faults with churn", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Churn = &ChurnSpec{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 2}
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Rank: 1, Round: 1, RejoinAfter: 1}}}
		}, "mutually exclusive"},
		{"empty faults block", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Faults = &FaultsSpec{}
		}, "empty faults block"},
		{"crash beyond the run", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Rank: 1, Round: 7}}}
		}, "only 2 rounds"},
		{"crash rank out of range", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Rank: 4, Round: 1}}}
		}, "rank 4 of 4"},
		{"negative rejoin_after", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Rank: 1, Round: 1, RejoinAfter: -2}}}
		}, "negative rejoin_after"},
		{"overlapping crash windows", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Rounds = 6
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{
				{Rank: 1, Round: 1, RejoinAfter: 3},
				{Rank: 1, Round: 2, RejoinAfter: 1},
			}}
		}, "overlapping fault windows"},
		{"crashes leaving one worker", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Faults = &FaultsSpec{Crashes: []CrashSpec{
				{Rank: 0, Round: 1, RejoinAfter: 1},
				{Rank: 1, Round: 1, RejoinAfter: 1},
				{Rank: 2, Round: 1, RejoinAfter: 1},
			}}
		}, "leave 1 of 4 workers"},
		{"mortality floor below two", func(s *Spec) {
			s.Algo, s.Compression = "saps", 10
			s.Faults = &FaultsSpec{Mortality: &MortalitySpec{Prob: 0.1, MinAlive: 1}}
		}, "min_alive 1 of 4"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := minimal()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("validated a spec with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"schema_version":1,"name":"t","algo":"psgd","nodes":4,"rounds":2,
		"lr":0.1,"batch":8,"model":{"hidden":[8]},"data":{"samples":64,"classes":4},
		"bandwidth":{"kind":"uniform","lo":1,"hi":5},"warp_factor":9}`))
	if err == nil || !strings.Contains(err.Error(), "warp_factor") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

// TestRunDeterministicAcrossShards is the scenario-level determinism gate:
// the same spec at different shard counts must move exactly the same bytes
// and end at exactly the same loss.
func TestRunDeterministicAcrossShards(t *testing.T) {
	for _, file := range []string{"fedavg-uniform", "psgd-clustered", "dpsgd-trace", "topk-straggler"} {
		file := file
		t.Run(file, func(t *testing.T) {
			t.Parallel()
			spec, err := Load(filepath.Join("testdata", file+".json"))
			if err != nil {
				t.Fatal(err)
			}
			serial, err := spec.Run(-1) // goroutine-per-node pool reference
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4} {
				got, err := spec.Run(shards)
				if err != nil {
					t.Fatal(err)
				}
				if got.TotalBytes != serial.TotalBytes {
					t.Errorf("shards=%d: %d bytes, serial moved %d", shards, got.TotalBytes, serial.TotalBytes)
				}
				if got.FinalLoss != serial.FinalLoss {
					t.Errorf("shards=%d: final loss %v, serial %v", shards, got.FinalLoss, serial.FinalLoss)
				}
				if got.SimSeconds != serial.SimSeconds {
					t.Errorf("shards=%d: sim time %v, serial %v", shards, got.SimSeconds, serial.SimSeconds)
				}
			}
		})
	}
}

// TestRunFaultScenario smoke-tests the fault path end to end: the golden
// crash+rejoin scenario must run deterministically across shard counts, move
// bytes, and actually exclude the crashed workers from traffic during their
// windows (absent workers neither train nor communicate).
func TestRunFaultScenario(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-crash-rejoin.json"))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := spec.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := spec.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalBytes != sharded.TotalBytes || serial.FinalLoss != sharded.FinalLoss {
		t.Fatalf("fault scenario diverged: serial %d B loss %v, sharded %d B loss %v",
			serial.TotalBytes, serial.FinalLoss, sharded.TotalBytes, sharded.FinalLoss)
	}
	if serial.TotalBytes == 0 {
		t.Fatal("fault scenario moved no bytes")
	}
	// The same spec without faults must move strictly more bytes: crashed
	// workers stop communicating.
	healthy := *spec
	healthy.Faults = nil
	full, err := healthy.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalBytes <= serial.TotalBytes {
		t.Fatalf("faults did not reduce traffic: %d B with faults, %d B without", serial.TotalBytes, full.TotalBytes)
	}
}

// TestStragglerSlowsSimTime checks the straggler model actually reaches the
// ledger: slowing a quarter of the fleet must strictly increase simulated
// communication time while moving identical bytes.
func TestStragglerSlowsSimTime(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "topk-straggler.json"))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := spec.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	healthy := *spec
	healthy.Straggler = nil
	fast, err := healthy.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalBytes != fast.TotalBytes {
		t.Errorf("straggler changed traffic: %d vs %d bytes", slow.TotalBytes, fast.TotalBytes)
	}
	if slow.SimSeconds <= fast.SimSeconds {
		t.Errorf("straggler did not slow the fleet: %v <= %v sim seconds", slow.SimSeconds, fast.SimSeconds)
	}
}

// TestScaledBandwidth pins the straggler scaling itself.
func TestScaledBandwidth(t *testing.T) {
	bw := netsim.RandomUniform(4, 1, 5, rng.New(3))
	scaled := bw.Scaled([]int{1}, 2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := bw.MBps(i, j)
			if i != j && (i == 1 || j == 1) {
				want /= 2
			}
			if got := scaled.MBps(i, j); got != want {
				t.Fatalf("link %d-%d: %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestJitterScenario covers the time-varying environment end to end: the
// golden jitter spec must run deterministically across shard counts, and
// the jitter must actually reach the run — dropping it changes the
// simulated communication time.
func TestJitterScenario(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-jitter.json"))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := spec.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalBytes == 0 {
		t.Fatal("jitter scenario moved no bytes")
	}
	for _, shards := range []int{1, 3} {
		got, err := spec.Run(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalBytes != serial.TotalBytes || got.FinalLoss != serial.FinalLoss || got.SimSeconds != serial.SimSeconds {
			t.Errorf("shards=%d diverged: %d B loss %v sim %v, serial %d B loss %v sim %v",
				shards, got.TotalBytes, got.FinalLoss, got.SimSeconds,
				serial.TotalBytes, serial.FinalLoss, serial.SimSeconds)
		}
	}
	static := spec.Clone()
	static.Bandwidth.Jitter = 0
	flat, err := static.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if flat.SimSeconds == serial.SimSeconds {
		t.Error("jitter did not change the simulated communication time")
	}
}

// TestTraceFromEngineRuns pins the trace hook on the canonical engine path:
// a spec with trace set yields a recorder with one event per round (plain
// SAPS via the spec flag; churned SAPS via the run option), with sane
// active-worker counts.
func TestTraceFromEngineRuns(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-jitter.json"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.RunFull(RunOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("spec trace flag did not attach a recorder")
	}
	if out.Trace.Len() != spec.Rounds {
		t.Fatalf("recorded %d rounds, ran %d", out.Trace.Len(), spec.Rounds)
	}
	if out.Trace.MeanMatchedBandwidth() <= 0 {
		t.Error("trace recorded no matched bandwidth")
	}

	churn, err := Load(filepath.Join("testdata", "saps-cities-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	cout, err := churn.RunFull(RunOptions{Shards: 2, Trace: true, Series: true})
	if err != nil {
		t.Fatal(err)
	}
	if cout.Trace == nil || cout.Trace.Len() != churn.Rounds {
		t.Fatalf("churn trace: %v", cout.Trace)
	}
	for _, ev := range cout.Trace.Events() {
		if ev.ActiveWorkers < 1 || ev.ActiveWorkers > churn.Nodes {
			t.Fatalf("round %d: %d active workers of %d", ev.Round, ev.ActiveWorkers, churn.Nodes)
		}
	}
	if len(cout.Losses) != churn.Rounds || len(cout.CumBytes) != churn.Rounds {
		t.Fatalf("series lengths %d/%d, want %d", len(cout.Losses), len(cout.CumBytes), churn.Rounds)
	}
	if cout.CumBytes[churn.Rounds-1] != cout.Result.TotalBytes {
		t.Errorf("cumulative series ends at %d bytes, total is %d", cout.CumBytes[churn.Rounds-1], cout.Result.TotalBytes)
	}
	for i := 1; i < len(cout.CumBytes); i++ {
		if cout.CumBytes[i] < cout.CumBytes[i-1] {
			t.Fatalf("cumulative bytes decreased at round %d", i)
		}
	}
}

// TestClone pins the deep copy: mutating every shared block of a clone must
// leave the original untouched (the fleetbench -rounds fix and the campaign
// grid expansion both rely on it).
func TestClone(t *testing.T) {
	orig := minimal()
	orig.Algo, orig.Compression = "saps", 10
	orig.Bandwidth = BandwidthSpec{Kind: "matrix", Matrix: [][]float64{{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}}}
	orig.Gossip = &GossipSpec{BThres: 1, TThres: 5}
	orig.Churn = &ChurnSpec{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 2}
	orig.Straggler = &StragglerSpec{Fraction: 0.25, Slowdown: 2}
	orig.Partition = &PartitionSpec{Kind: "dirichlet", Alpha: 0.3, MinPerNode: 2}
	clone := orig.Clone()
	clone.Rounds = 99
	clone.Model.Hidden[0] = 77
	clone.Bandwidth.Matrix[0][1] = 42
	clone.Gossip.TThres = 42
	clone.Churn.MinActive = 3
	clone.Straggler.Slowdown = 9
	clone.Partition.Alpha = 7
	if orig.Rounds == 99 || orig.Model.Hidden[0] == 77 || orig.Bandwidth.Matrix[0][1] == 42 ||
		orig.Gossip.TThres == 42 || orig.Churn.MinActive == 3 || orig.Straggler.Slowdown == 9 ||
		orig.Partition.Alpha == 7 {
		t.Fatalf("clone shares state with the original: %+v", orig)
	}
	traced := minimal()
	traced.Algo, traced.Compression = "saps", 10
	traced.Trace = &TraceSpec{File: "traces/edge.csv", Events: true}
	traced.SetDir("testdata")
	tclone := traced.Clone()
	tclone.Trace.Events = false
	tclone.Trace.File = "other.csv"
	if !traced.Trace.Events || traced.Trace.File != "traces/edge.csv" {
		t.Fatalf("trace block shared between clone and original")
	}
	if tclone.TracePath() != filepath.Join("testdata", "other.csv") {
		t.Fatalf("clone lost the spec directory: %q", tclone.TracePath())
	}
	fault := minimal()
	fault.Algo, fault.Compression, fault.Rounds = "saps", 10, 6
	fault.Faults = &FaultsSpec{
		Crashes:   []CrashSpec{{Rank: 1, Round: 1, RejoinAfter: 2}},
		Mortality: &MortalitySpec{Prob: 0.01, MinAlive: 3},
	}
	fclone := fault.Clone()
	fclone.Faults.Crashes[0].Round = 4
	fclone.Faults.Mortality.MinAlive = 2
	if fault.Faults.Crashes[0].Round == 4 || fault.Faults.Mortality.MinAlive == 2 {
		t.Fatalf("fault blocks shared between clone and original")
	}
}

// TestBenchDiff covers the regression gate: byte drift and wall blowups
// fail, wall noise within tolerance and baseline-absent rows pass.
func TestBenchDiff(t *testing.T) {
	base := &BenchFile{
		SchemaVersion: BenchSchemaVersion,
		Algorithms:    []AlgoRow{{Algorithm: "SAPS-PSGD", BytesPerRound: 1000, WallMsPerRound: 100}},
		Scenarios: []ScenarioSweep{{
			Name: "s", Runs: []Result{
				{Shards: 1, WallSeconds: 2, TotalBytes: 5000},
				{Shards: 8, WallSeconds: 1, TotalBytes: 5000},
			},
		}},
	}
	clone := func() *BenchFile {
		f := *base
		f.Algorithms = append([]AlgoRow(nil), base.Algorithms...)
		f.Scenarios = append([]ScenarioSweep(nil), base.Scenarios...)
		f.Scenarios[0].Runs = append([]Result(nil), base.Scenarios[0].Runs...)
		return &f
	}

	if err := Diff(base, clone(), 0.25); err != nil {
		t.Fatalf("identical files diffed dirty: %v", err)
	}

	f := clone()
	f.Algorithms[0].BytesPerRound = 1001
	if err := Diff(base, f, 0.25); err == nil || !strings.Contains(err.Error(), "bytes/round") {
		t.Fatalf("byte drift not caught: %v", err)
	}

	f = clone()
	f.Scenarios[0].Runs[1].TotalBytes = 4999
	err := Diff(base, f, 0.25)
	if err == nil || !strings.Contains(err.Error(), "sharding changed traffic") {
		t.Fatalf("cross-shard byte disagreement not caught: %v", err)
	}

	f = clone()
	f.Algorithms[0].WallMsPerRound = 120 // +20ms on a 3.1s shared total: noise
	if err := Diff(base, f, 0.25); err != nil {
		t.Fatalf("wall noise within tolerance rejected: %v", err)
	}

	f = clone()
	f.Scenarios[0].Runs[0].WallSeconds = 4 // 3s → 5s scenario pool: regression
	if err := Diff(base, f, 0.25); err == nil || !strings.Contains(err.Error(), "scenario wall time") {
		t.Fatalf("scenario wall regression not caught: %v", err)
	}

	f = clone()
	f.Algorithms[0].WallMsPerRound = 200 // algorithm pool alone doubles: must
	// be caught even though it is negligible next to the scenario seconds
	if err := Diff(base, f, 0.25); err == nil || !strings.Contains(err.Error(), "algorithm wall time") {
		t.Fatalf("algorithm wall regression not caught: %v", err)
	}

	f = clone()
	f.Scenarios = append(f.Scenarios, ScenarioSweep{Name: "new", Runs: []Result{{Shards: 1, TotalBytes: 9, WallSeconds: 99}}})
	if err := Diff(base, f, 0.25); err != nil {
		t.Fatalf("baseline-absent scenario should be ignored: %v", err)
	}

	f = clone()
	f.SchemaVersion = BenchSchemaVersion + 1
	if err := Diff(base, f, 0.25); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("schema mismatch not caught: %v", err)
	}

	f = clone()
	f.Scenarios[0].Runs = nil // truncated summary must error, not panic
	if err := Diff(base, f, 0.25); err == nil || !strings.Contains(err.Error(), "no runs") {
		t.Fatalf("runs-less scenario not caught: %v", err)
	}

	f = clone()
	f.GoMaxProcs = base.GoMaxProcs + 7
	f.Scenarios[0].Runs[0].WallSeconds = 400 // huge, but cross-machine: skipped
	if err := Diff(base, f, 0.25); err != nil {
		t.Fatalf("cross-machine wall timings compared: %v", err)
	}
}

// TestRunChurnScenario smoke-tests the churn path end to end on the sharded
// runtime (14-city SAPS with leave/rejoin).
func TestRunChurnScenario(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "saps-cities-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := spec.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := spec.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalBytes != sharded.TotalBytes || serial.FinalLoss != sharded.FinalLoss {
		t.Fatalf("churn scenario diverged: serial %d B loss %v, sharded %d B loss %v",
			serial.TotalBytes, serial.FinalLoss, sharded.TotalBytes, sharded.FinalLoss)
	}
	if serial.TotalBytes == 0 {
		t.Fatal("churn scenario moved no bytes")
	}
}
