// Comparison: the paper's seven-algorithm evaluation (Fig. 3/4/6, Tables
// III/IV) on a laptop-scale workload — 16 workers, scaled MNIST-CNN,
// identical data and initialization for every algorithm.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"os"
	"time"

	"sapspsgd/internal/experiments"
)

func main() {
	w := experiments.MNISTWorkload().WithRounds(120)
	const n = 16
	fmt.Printf("workload %s (%s): %d workers, %d rounds\n\n", w.Name, w.PaperName, n, w.Rounds)

	start := time.Now()
	suite := experiments.ConvergenceSuite{Workload: w, N: n, Seed: 7, EvalEvery: 30}
	results, err := suite.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("all 7 algorithms trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	experiments.Table3(w.Name, results).WriteMarkdown(os.Stdout)
	fmt.Println()
	experiments.Table4(w.Name, 0.85, results).WriteMarkdown(os.Stdout)
	fmt.Println()
	experiments.TrafficSummary(results).WriteMarkdown(os.Stdout)
}
