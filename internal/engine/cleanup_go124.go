//go:build go1.24

package engine

import "runtime"

// registerEngineCleanup releases an un-Closed engine's runtime goroutines
// when the engine becomes unreachable. On Go 1.24+ this is runtime.AddCleanup
// on the stop handle, which the runtime goroutines deliberately do not
// reference.
func registerEngineCleanup(e *Engine, s *poolStop) {
	runtime.AddCleanup(e, (*poolStop).shutdown, s)
}
