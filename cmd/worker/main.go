// Command worker runs one SAPS-PSGD training peer (Algorithm 2) as a TCP
// client: it registers with the coordinator, receives the task spec and its
// rank, regenerates its data shard locally, and trains — exchanging
// sparsified models peer-to-peer each round.
package main

import (
	"flag"
	"log"

	"sapspsgd/internal/transport"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "127.0.0.1:7000", "coordinator address")
		peerAddr    = flag.String("peer-addr", "127.0.0.1:0", "address to listen on for peer exchanges")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	wc := &transport.WorkerClient{}
	if !*quiet {
		wc.Logf = log.Printf
	}
	if _, err := wc.Run(*coordinator, *peerAddr); err != nil {
		log.Fatal(err)
	}
	log.Printf("worker %d finished", wc.Rank())
}
