package engine

import (
	"fmt"
	"math/bits"

	"sapspsgd/internal/core"
)

// PhasedTransport is the one-way data plane of the sharded runtime: Send
// deposits a payload into the from→to FIFO without waiting for a reciprocal
// payload, and Recv takes the oldest deposit from the peer→self FIFO.
// *memtransport.Hub implements it (and therefore so does the simtransport
// backend, which returns a Hub).
//
// Recv must block until the matching deposit arrives: when a pattern fuses
// adjacent phases (PhaseFuser) the runtime elides the barrier between them,
// so a receive may run before the peer's send and synchronizes on the FIFO
// itself. Every Recv still consumes a deposit made in a strictly earlier
// phase of the same round, and each shard executes its phases in order with
// all of a phase's sends issued before the next phase begins, so waits only
// ever point at earlier phases of other shards — the wait graph is acyclic
// and a conforming phase program cannot deadlock.
type PhasedTransport interface {
	Send(round, from, to int, payload []float64) error
	Recv(round, from, to int) ([]float64, error)
}

// PhasedPattern is the optional Pattern extension the sharded runtime
// executes: the round split into barrier-separated phases. Within a phase a
// rank may compute, encode, decode, merge, and Send; every Recv must consume
// a deposit made in an earlier phase (the barrier — or, for fused phases,
// the transport FIFO — is the happens-before edge). All built-in patterns
// implement PhasedPattern with per-rank operation sequences identical to
// their blocking RunRound, which is what makes the sharded runtime
// bit-identical to the goroutine-per-node pool.
type PhasedPattern interface {
	Pattern
	// PhaseCount returns the number of barrier-separated phases one round
	// needs over n nodes under plan.
	PhaseCount(plan core.RoundPlan, n int) int
	// RunPhase executes rank ctx.Self's slice of phase p. st is the rank's
	// private in-flight state, reset by the runtime at round start.
	RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error
}

// PhaseFuser is an optional PhasedPattern extension for barrier elision: a
// false entry in PhaseDeps tells the sharded runtime that the boundary
// between phases p and p+1 needs no barrier, so the two phases fuse into one
// dispatch per shard. A boundary may be declared fusable only when (a) every
// buffer a rank deposits before the boundary stays unwritten by its owner
// until the round completes (receivers may still be reading it), and (b) all
// post-boundary receives tolerate blocking in Recv for the deposit (see
// PhasedTransport). Patterns that rewrite their send scratch phase over
// phase — the butterfly collective — must not fuse.
type PhaseFuser interface {
	// PhaseDeps appends PhaseCount-1 booleans to deps, one per adjacent
	// phase boundary in order: true keeps the barrier, false fuses.
	PhaseDeps(plan core.RoundPlan, n int, deps []bool) []bool
}

// PhaseParticipants is an optional PhasedPattern extension for dispatch
// elision: PhaseRanks names the half-open rank interval [lo, hi) that has
// work in a phase, and the runtime skips shards entirely outside it (their
// reports read as zero for the round unless another phase involves them).
// Over-approximating is always safe — RunPhase on a rank with nothing to do
// is a no-op.
type PhaseParticipants interface {
	PhaseRanks(plan core.RoundPlan, n int, phase int) (lo, hi int)
}

// PhaseState carries one rank's in-flight round state across the round's
// phases. The sharded runtime owns one per rank and recycles it round over
// round via reset, so all scratch below keeps its capacity and a
// steady-state round allocates nothing.
type PhaseState struct {
	// Rep accumulates the rank's NodeReport across phases.
	Rep NodeReport

	skip   bool      // round finished early (e.g. unmatched pairwise rank)
	sent   int64     // wire bytes of the in-flight outbound payload
	vec    []float64 // running sum (collective / all-gather)
	msgs   []PeerMsg // pending merge messages
	lo, hi int       // owned segment (halving/doubling)
	peers  []int     // chosen-worker scratch (hub server)

	// dec is the single-slot decode scratch for payloads consumed within
	// the same phase; decBufs hold per-message decodes that must stay alive
	// together until a Merge. Both only ever store buffers produced by a
	// codec's DecodeInto — a plain Decode result may alias the sender's
	// storage, which the receiver must never write into.
	dec     []float64
	decBufs [][]float64
	decUsed int

	// wbufs double-buffer the butterfly's outbound chunk words by phase
	// parity: a deposit made in phase p is drained in p+1, so its buffer is
	// reusable at p+2 — which is exactly when the parity index repeats.
	wbufs [2][]float64
}

// reset prepares the state for a new round, keeping every buffer's capacity.
func (st *PhaseState) reset() {
	st.Rep = NodeReport{Flows: st.Rep.Flows[:0]}
	st.skip = false
	st.sent = 0
	st.vec = st.vec[:0]
	st.msgs = st.msgs[:0]
	st.lo, st.hi = 0, 0
	st.decUsed = 0
}

// decodeScratch decodes words with c into the single-slot scratch when the
// codec supports DecodeInto. The result is only valid until the next
// decodeScratch call on the same state — callers consume it immediately.
func (st *PhaseState) decodeScratch(c Codec, ctx RoundContext, words []float64) ([]float64, error) {
	if d, ok := c.(DecoderInto); ok {
		out, err := decodeIntoTimed(d, st.dec, ctx, words)
		if err != nil {
			return nil, err
		}
		st.dec = out
		return out, nil
	}
	return decodeTimed(c, ctx, words)
}

// decodeMsg decodes words into the next pooled per-message buffer; results
// from consecutive calls stay valid together until the round's Merge. Codecs
// without DecodeInto fall back to Decode and their result is not pooled (it
// may alias sender-owned storage).
func (st *PhaseState) decodeMsg(c Codec, ctx RoundContext, words []float64) ([]float64, error) {
	d, ok := c.(DecoderInto)
	if !ok {
		return decodeTimed(c, ctx, words)
	}
	if st.decUsed == len(st.decBufs) {
		st.decBufs = append(st.decBufs, nil)
	}
	out, err := decodeIntoTimed(d, st.decBufs[st.decUsed], ctx, words)
	if err != nil {
		return nil, err
	}
	st.decBufs[st.decUsed] = out
	st.decUsed++
	return out, nil
}

// mergeOne hands a single peer message to the node through the pooled
// message slice.
func (st *PhaseState) mergeOne(ctx RoundContext, node Node, msg PeerMsg) error {
	st.msgs = append(st.msgs[:0], msg)
	return node.Merge(ctx, st.msgs)
}

// ---------------------------------------------------------------------------
// Pairwise

// PhaseCount implements PhasedPattern: encode+send, then recv+merge.
func (Pairwise) PhaseCount(core.RoundPlan, int) int { return 2 }

// PhaseDeps implements PhaseFuser: the two phases fuse. A rank's payload is
// immutable from its Send until the round barrier (the codec re-encodes only
// next round), so the only cross-rank dependency is the deposit itself and
// the FIFO orders it.
func (Pairwise) PhaseDeps(_ core.RoundPlan, _ int, deps []bool) []bool {
	return append(deps, false)
}

// RunPhase implements PhasedPattern.
func (Pairwise) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	peer := -1
	if ctx.Self < len(ctx.Plan.Peer) {
		peer = ctx.Plan.Peer[ctx.Self]
	}
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep.Loss, st.Rep.Trained = loss, trained(loss)
		if peer < 0 {
			st.skip = true
			return nil
		}
		words, err := encodeTimed(codecs[ctx.Self], ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words)
		st.Rep.PayloadLen = len(words)
		return tr.Send(ctx.Round, ctx.Self, peer, words)
	case 1:
		if st.skip {
			return nil
		}
		peerWords, err := tr.Recv(ctx.Round, ctx.Self, peer)
		if err != nil {
			return err
		}
		vals, err := st.decodeScratch(codecs[peer], ctx, peerWords)
		if err != nil {
			return err
		}
		recv := codecs[peer].WireBytes(peerWords)
		st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: peer, Sent: st.sent, Recv: recv})
		return st.mergeOne(ctx, node, PeerMsg{From: peer, Vals: vals, Words: peerWords, Bytes: recv})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Neighborhood

// PhaseCount implements PhasedPattern: broadcast, then gather+merge.
func (p *Neighborhood) PhaseCount(core.RoundPlan, int) int { return 2 }

// PhaseDeps implements PhaseFuser: broadcast payloads are immutable after
// their sends, so gather fuses onto broadcast and synchronizes on the FIFOs.
func (p *Neighborhood) PhaseDeps(_ core.RoundPlan, _ int, deps []bool) []bool {
	return append(deps, false)
}

// RunPhase implements PhasedPattern.
func (p *Neighborhood) RunPhase(ctx RoundContext, phase int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	peers := p.adj[ctx.Self]
	switch phase {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep.Loss, st.Rep.Trained = loss, trained(loss)
		if len(peers) == 0 {
			st.skip = true
			return nil
		}
		words, err := encodeTimed(codecs[ctx.Self], ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words)
		st.Rep.PayloadLen = len(words)
		st.msgs = st.msgs[:0]
		if p.includeSelf {
			vals, err := st.decodeMsg(codecs[ctx.Self], ctx, words)
			if err != nil {
				return err
			}
			st.msgs = append(st.msgs, PeerMsg{From: ctx.Self, Vals: vals, Words: words, Bytes: st.sent})
		}
		for _, q := range peers {
			if err := tr.Send(ctx.Round, ctx.Self, q, words); err != nil {
				return err
			}
		}
		return nil
	case 1:
		if st.skip {
			return nil
		}
		for _, q := range peers {
			w, err := tr.Recv(ctx.Round, ctx.Self, q)
			if err != nil {
				return err
			}
			vals, err := st.decodeMsg(codecs[q], ctx, w)
			if err != nil {
				return err
			}
			b := codecs[q].WireBytes(w)
			st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: q, Sent: st.sent, Recv: b})
			st.msgs = append(st.msgs, PeerMsg{From: q, Vals: vals, Words: w, Bytes: b})
		}
		return node.Merge(ctx, st.msgs)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Hub

// PhaseCount implements PhasedPattern: server downlink; worker
// pull-train-push; server uplink merge.
func (Hub) PhaseCount(core.RoundPlan, int) int { return 3 }

// PhaseRanks implements PhaseParticipants: the downlink and uplink phases
// touch only the server's rank, so worker shards are dispatched for the
// middle phase alone (and hand their reports over as soon as it completes).
func (h Hub) PhaseRanks(_ core.RoundPlan, n int, phase int) (int, int) {
	if phase == 1 {
		return 0, n
	}
	return h.Server, h.Server + 1
}

// RunPhase implements PhasedPattern. The runtime never calls RunPhase for an
// inactive rank, so a worker reaching here is always chosen.
func (h Hub) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	if ctx.Self == h.Server {
		return h.serverPhase(ctx, p, node, codecs, tr, st)
	}
	return h.workerPhase(ctx, p, node, codecs, tr, st)
}

func (h Hub) serverPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep.Loss, st.Rep.Trained = loss, trained(loss)
		words, err := encodeTimed(codecs[ctx.Self], ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words) // downlink bytes
		st.Rep.PayloadLen = len(words)
		st.peers = h.chosenInto(st.peers[:0], ctx.Plan, ctx.N)
		for _, w := range st.peers {
			if err := tr.Send(ctx.Round, ctx.Self, w, words); err != nil {
				return err
			}
		}
		return nil
	case 2:
		st.peers = h.chosenInto(st.peers[:0], ctx.Plan, ctx.N)
		st.msgs = st.msgs[:0]
		for _, w := range st.peers {
			uw, err := tr.Recv(ctx.Round, ctx.Self, w)
			if err != nil {
				return err
			}
			vals, err := st.decodeMsg(codecs[w], ctx, uw)
			if err != nil {
				return err
			}
			b := codecs[w].WireBytes(uw)
			st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: w, Sent: st.sent, Recv: b})
			st.msgs = append(st.msgs, PeerMsg{From: w, Vals: vals, Words: uw, Bytes: b})
		}
		return node.Merge(ctx, st.msgs)
	}
	return nil
}

func (h Hub) workerPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	if p != 1 {
		return nil
	}
	downWords, err := tr.Recv(ctx.Round, ctx.Self, h.Server)
	if err != nil {
		return err
	}
	vals, err := st.decodeScratch(codecs[h.Server], ctx, downWords)
	if err != nil {
		return err
	}
	down := codecs[h.Server].WireBytes(downWords)
	if err := st.mergeOne(ctx, node, PeerMsg{From: h.Server, Vals: vals, Words: downWords, Bytes: down}); err != nil {
		return err
	}
	loss, out, err := node.Compute(ctx)
	if err != nil {
		return err
	}
	st.Rep.Loss, st.Rep.Trained = loss, trained(loss)
	words, err := encodeTimed(codecs[ctx.Self], ctx, out)
	if err != nil {
		return err
	}
	up := codecs[ctx.Self].WireBytes(words)
	st.Rep.PayloadLen = len(words)
	st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: h.Server, Sent: up, Recv: down})
	return tr.Send(ctx.Round, ctx.Self, h.Server, words)
}

// ---------------------------------------------------------------------------
// Shared phased all-gather halves (AllGather, non-power-of-two Collective)

// phaseSendAll deposits words to every other rank in ascending order.
func phaseSendAll(ctx RoundContext, tr PhasedTransport, words []float64) error {
	for q := 0; q < ctx.N; q++ {
		if q == ctx.Self {
			continue
		}
		if err := tr.Send(ctx.Round, ctx.Self, q, words); err != nil {
			return err
		}
	}
	return nil
}

// phaseRecvSumAll drains every other rank's deposit in ascending order,
// decoding and accumulating into vec — the receive half of sumAllGather,
// with identical per-rank operation order.
func phaseRecvSumAll(ctx RoundContext, codecs []Codec, tr PhasedTransport, st *PhaseState, vec []float64) error {
	for q := 0; q < ctx.N; q++ {
		if q == ctx.Self {
			continue
		}
		pw, err := tr.Recv(ctx.Round, ctx.Self, q)
		if err != nil {
			return err
		}
		vals, err := st.decodeScratch(codecs[q], ctx, pw)
		if err != nil {
			return err
		}
		if len(vals) != len(vec) {
			return fmt.Errorf("engine: all-gather payload of %d values, want %d", len(vals), len(vec))
		}
		st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: q, Sent: st.sent, Recv: codecs[q].WireBytes(pw)})
		for j, v := range vals {
			vec[j] += v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// AllGather

// PhaseCount implements PhasedPattern: broadcast, then gather+sum+merge.
func (AllGather) PhaseCount(core.RoundPlan, int) int { return 2 }

// PhaseDeps implements PhaseFuser: as with Neighborhood, the broadcast
// payload is immutable after its sends, so the gather phase fuses.
func (AllGather) PhaseDeps(_ core.RoundPlan, _ int, deps []bool) []bool {
	return append(deps, false)
}

// RunPhase implements PhasedPattern.
func (AllGather) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep.Loss, st.Rep.Trained = loss, trained(loss)
		words, err := encodeTimed(codecs[ctx.Self], ctx, out)
		if err != nil {
			return err
		}
		st.Rep.PayloadLen = len(words)
		own, err := st.decodeScratch(codecs[ctx.Self], ctx, words)
		if err != nil {
			return err
		}
		st.vec = append(st.vec[:0], own...)
		st.sent = codecs[ctx.Self].WireBytes(words)
		return phaseSendAll(ctx, tr, words)
	case 1:
		if err := phaseRecvSumAll(ctx, codecs, tr, st, st.vec); err != nil {
			return err
		}
		return st.mergeOne(ctx, node, PeerMsg{From: -1, Vals: st.vec})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Collective

// PhaseCount implements PhasedPattern. Power-of-two fleets run the butterfly
// (2·log₂n exchange steps, each split across adjacent phases: the deposit in
// phase p, the matching receive in phase p+1), other sizes the two-phase
// exact all-gather, and a single node trains and merges in one phase.
// Collective deliberately does not implement PhaseFuser: the butterfly
// rewrites its parity-indexed chunk buffers phase over phase, so every
// barrier is load-bearing (see PhaseState.wbufs).
func (Collective) PhaseCount(_ core.RoundPlan, n int) int {
	if n <= 1 {
		return 1
	}
	if n&(n-1) == 0 {
		q := bits.Len(uint(n)) - 1
		return 2*q + 1
	}
	return 2
}

// RunPhase implements PhasedPattern.
func (c Collective) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	if ctx.N > 1 && ctx.N&(ctx.N-1) == 0 {
		return c.butterflyPhase(ctx, p, node, codecs, tr, st)
	}
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep.Loss, st.Rep.Trained, st.Rep.PayloadLen = loss, trained(loss), len(out)
		st.vec = append(st.vec[:0], out...)
		if ctx.N == 1 {
			return st.mergeOne(ctx, node, PeerMsg{From: -1, Vals: st.vec})
		}
		words, err := encodeTimed(codecs[ctx.Self], ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words)
		return phaseSendAll(ctx, tr, words)
	case 1:
		if err := phaseRecvSumAll(ctx, codecs, tr, st, st.vec); err != nil {
			return err
		}
		return st.mergeOne(ctx, node, PeerMsg{From: -1, Vals: st.vec})
	}
	return nil
}

// sendChunk encodes vec[lo:hi] and deposits a copy of the words with partner
// — the send half of the blocking path's exchangeChunk, encoding the same
// values in the same order. The copy lands in the phase-parity wire buffer:
// a deposit made in phase p is drained (and, for identity codecs, read) in
// the barrier-separated phase p+1, so the buffer is free again when the
// parity repeats at p+2.
func (st *PhaseState) sendChunk(ctx RoundContext, codecs []Codec, tr PhasedTransport, lo, hi, partner, p int) error {
	words, err := encodeTimed(codecs[ctx.Self], ctx, st.vec[lo:hi])
	if err != nil {
		return err
	}
	w := append(st.wbufs[p&1][:0], words...)
	st.wbufs[p&1] = w
	st.sent = codecs[ctx.Self].WireBytes(w)
	return tr.Send(ctx.Round, ctx.Self, partner, w)
}

// recvChunk drains partner's deposit and decodes it — the receive half of
// exchangeChunk. The flow pairs this receive with the bytes of the chunk
// sent to the same partner one phase earlier. The returned values live in
// the single-slot decode scratch (or the sender's deposit, for identity
// codecs) and are consumed before the phase ends.
func (st *PhaseState) recvChunk(ctx RoundContext, codecs []Codec, tr PhasedTransport, partner int) ([]float64, error) {
	pw, err := tr.Recv(ctx.Round, ctx.Self, partner)
	if err != nil {
		return nil, err
	}
	vals, err := st.decodeScratch(codecs[partner], ctx, pw)
	if err != nil {
		return nil, err
	}
	st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: partner, Sent: st.sent, Recv: codecs[partner].WireBytes(pw)})
	return vals, nil
}

// rsGeometry is reduce-scatter step k's exchange geometry given the owned
// segment [lo, hi) before the step.
func rsGeometry(self, n, k, lo, hi int) (partner, sendLo, sendHi, keepLo, keepHi int) {
	mask := n >> (k + 1)
	partner = self ^ mask
	mid := lo + (hi-lo)/2
	sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
	if self&mask != 0 {
		sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
	}
	return
}

// butterflyPhase is the power-of-two halving/doubling all-reduce split into
// 2q+1 phases: phase 0 computes and deposits reduce-scatter step 0; phase
// p ∈ [1, q] drains step p-1, accumulates, and deposits the next step (the
// first all-gather chunk at p == q); phase q+g drains gather step g-1 and
// deposits step g; phase 2q drains the last chunk and merges the sum.
func (Collective) butterflyPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	self, n := ctx.Self, ctx.N
	q := bits.Len(uint(n)) - 1
	if p == 0 {
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep.Loss, st.Rep.Trained, st.Rep.PayloadLen = loss, trained(loss), len(out)
		st.vec = append(st.vec[:0], out...)
		st.lo, st.hi = 0, len(st.vec)
		partner, sendLo, sendHi, _, _ := rsGeometry(self, n, 0, st.lo, st.hi)
		return st.sendChunk(ctx, codecs, tr, sendLo, sendHi, partner, p)
	}
	D := len(st.vec)
	if p <= q {
		// Drain reduce-scatter step p-1.
		k := p - 1
		partner, _, _, keepLo, keepHi := rsGeometry(self, n, k, st.lo, st.hi)
		vals, err := st.recvChunk(ctx, codecs, tr, partner)
		if err != nil {
			return err
		}
		if len(vals) != keepHi-keepLo {
			return fmt.Errorf("engine: collective chunk of %d values, want %d", len(vals), keepHi-keepLo)
		}
		for i, v := range vals {
			st.vec[keepLo+i] += v
		}
		st.lo, st.hi = keepLo, keepHi
		if p < q {
			// Deposit reduce-scatter step p.
			partner, sendLo, sendHi, _, _ := rsGeometry(self, n, p, st.lo, st.hi)
			return st.sendChunk(ctx, codecs, tr, sendLo, sendHi, partner, p)
		}
		// Deposit all-gather step 0.
		partner = self ^ 1
		myLo, myHi := segAfter(self, q, D, n)
		return st.sendChunk(ctx, codecs, tr, myLo, myHi, partner, p)
	}
	// Drain all-gather step g-1.
	g := p - q
	partner := self ^ (1 << (g - 1))
	pLo, pHi := segAfter(partner, q-(g-1), D, n)
	vals, err := st.recvChunk(ctx, codecs, tr, partner)
	if err != nil {
		return err
	}
	if len(vals) != pHi-pLo {
		return fmt.Errorf("engine: collective gather chunk of %d values, want %d", len(vals), pHi-pLo)
	}
	copy(st.vec[pLo:pHi], vals)
	if g < q {
		// Deposit all-gather step g.
		partner := self ^ (1 << g)
		myLo, myHi := segAfter(self, q-g, D, n)
		return st.sendChunk(ctx, codecs, tr, myLo, myHi, partner, p)
	}
	return st.mergeOne(ctx, node, PeerMsg{From: -1, Vals: st.vec})
}

// Compile-time checks: every built-in pattern supports the sharded runtime,
// and the barrier/dispatch elision extensions stay wired to their patterns.
var (
	_ PhasedPattern = Pairwise{}
	_ PhasedPattern = (*Neighborhood)(nil)
	_ PhasedPattern = Hub{}
	_ PhasedPattern = Collective{}
	_ PhasedPattern = AllGather{}

	_ PhaseFuser        = Pairwise{}
	_ PhaseFuser        = (*Neighborhood)(nil)
	_ PhaseFuser        = AllGather{}
	_ PhaseParticipants = Hub{}
)
