package netsim

import (
	"testing"

	"sapspsgd/internal/rng"
)

func TestNodeScaledDense(t *testing.T) {
	base := RandomUniform(4, 1, 5, rng.New(7))
	s := NewNodeScaledBandwidth(base)
	cur := s.Current()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if cur.MBps(i, j) != base.MBps(i, j) {
				t.Fatalf("initial snapshot link %d-%d = %v, want base %v", i, j, cur.MBps(i, j), base.MBps(i, j))
			}
		}
	}
	mult := []float64{0.5, 1, 0.25, 2}
	if got := s.Apply(mult); got != cur {
		t.Fatal("Apply returned a different snapshot pointer")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i != j {
				scale := mult[i]
				if mult[j] < scale {
					scale = mult[j]
				}
				want = base.MBps(i, j) * scale
			}
			if cur.MBps(i, j) != want {
				t.Fatalf("scaled link %d-%d = %v, want %v", i, j, cur.MBps(i, j), want)
			}
		}
	}
	// nil restores unit multipliers on the same pointer.
	s.Apply(nil)
	if cur.MBps(0, 1) != base.MBps(0, 1) {
		t.Fatal("Apply(nil) did not restore base speeds")
	}
}

func TestNodeScaledSparse(t *testing.T) {
	base := SparseRandomUniform(16, 4, 1, 5, rng.New(9))
	s := NewNodeScaledBandwidth(base)
	mult := make([]float64, 16)
	r := rng.New(11)
	for i := range mult {
		mult[i] = 0.25 + r.Float64()
	}
	cur := s.Apply(mult)
	if !cur.Sparse() {
		t.Fatal("snapshot of a sparse base is dense")
	}
	links := 0
	base.ForEachEdge(0, func(u, v int, w float64) {
		links++
		scale := mult[u]
		if mult[v] < scale {
			scale = mult[v]
		}
		if got, want := cur.MBps(u, v), w*scale; got != want {
			t.Fatalf("sparse link %d-%d = %v, want %v", u, v, got, want)
		}
		if cur.MBps(u, v) != cur.MBps(v, u) {
			t.Fatalf("asymmetric scaled link %d-%d", u, v)
		}
	})
	if links == 0 {
		t.Fatal("sparse base has no edges")
	}
}

// TestNodeScaledOverDynamic pins the composition order the scenario runner
// relies on: the scaler's base may be a DynamicBandwidth snapshot, and
// because Apply rereads the base, a Tick-then-Apply sequence yields
// jittered-then-scaled speeds on the scaler's stable pointer.
func TestNodeScaledOverDynamic(t *testing.T) {
	env := RandomUniform(4, 1, 5, rng.New(3))
	dyn := NewDynamicBandwidth(env, 0.3, 99)
	s := NewNodeScaledBandwidth(dyn.Current())
	mult := []float64{1, 0.5, 1, 1}
	for tick := 0; tick < 3; tick++ {
		dyn.Tick()
		cur := s.Apply(mult)
		want := dyn.Current().MBps(0, 1) * 0.5
		if got := cur.MBps(0, 1); got != want {
			t.Fatalf("tick %d: composed link 0-1 = %v, want %v", tick, got, want)
		}
	}
}
