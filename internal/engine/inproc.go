package engine

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine/memtransport"
	"sapspsgd/internal/obs"
)

// Options configures an in-process Engine.
type Options struct {
	// Nodes are the participants, indexed by rank (trainers plus, for hub
	// patterns, the server as the last rank).
	Nodes []Node
	// Codecs is the per-rank codec table: Codecs[r] encodes rank r's
	// outbound payloads, and every other rank decodes r's payloads with
	// it. Must be the same length as Nodes. Stateful codecs (error
	// feedback, RNG) must be distinct instances per rank.
	Codecs []Codec
	// Pattern is the round's communication shape (nil defaults to the
	// pairwise matched-gossip pattern of Algorithm 1).
	Pattern Pattern

	// Workers is the SAPS convenience form: each *core.Worker is wrapped
	// in a MaskedGossipNode with a Masked codec at the worker's configured
	// compression ratio, over the pairwise pattern. Mutually exclusive
	// with Nodes.
	Workers []*core.Worker

	// Planner produces the per-round control message (Algorithm 1/3).
	Planner Planner
	// Transport carries the payload swaps (nil defaults to an in-process
	// rendezvous hub over the node count).
	Transport Transport
	// MaxParallel bounds concurrent CPU-heavy work (local SGD, merges);
	// values < 1 default to GOMAXPROCS. Exchanges are not counted against
	// the bound, so any positive value is deadlock-free. Ignored by the
	// sharded runtime (Shards > 0), whose parallelism is the shard count.
	MaxParallel int

	// Shards > 0 selects the sharded phased runtime instead of the
	// goroutine-per-node pool: ranks are partitioned into Shards contiguous
	// shards, each executed serially by one long-lived goroutine, with the
	// round split into barrier-separated Compute/Encode/Decode phases (see
	// PhasedPattern). Shards == 1 is the fully serial reference execution;
	// any other count produces bit-identical trajectories and byte-identical
	// ledgers. Requires a PhasedPattern and a PhasedTransport; other
	// pattern/transport combinations fall back to the blocking pool with
	// MaxParallel = Shards. 0 keeps the default pool.
	Shards int
}

// Engine runs the canonical round loop over an in-process fleet, with two
// interchangeable runtimes producing bit-identical results: the default
// goroutine-per-node pool (spawned once, reused every round, gate-bounded
// compute) executing each pattern's blocking round, and — when
// Options.Shards > 0 — the sharded phased runtime (one executor goroutine
// per shard of ranks, barrier-separated Compute/Encode/Decode phases; see
// DESIGN.md §2). Engine implements Control for its own Driver.
//
// Close releases the pool; a finalizer-style cleanup also releases it when
// an un-Closed Engine becomes unreachable, so dropping an Engine on the
// floor does not leak goroutines.
type Engine struct {
	nodes   []Node
	codecs  []Codec
	workers []*core.Worker // non-nil only for the Workers convenience form
	pattern Pattern
	driver  Driver
	gate    Gate
	cmds    []chan core.RoundPlan
	results chan nodeResult
	stop    *poolStop
	closed  bool
	// sharded is non-nil when the phased sharded runtime replaces the
	// goroutine-per-node pool (Options.Shards > 0).
	sharded *shardRunner
	// Per-round collection scratch (RunRound is single-threaded).
	reports []NodeReport
	agg     flowAgg
}

// poolStop closes the runtime's command channels exactly once, whether via
// an explicit Close or the unreachability cleanup.
type poolStop struct {
	once   sync.Once
	cmds   []chan core.RoundPlan
	phased []chan shardCmd
}

func (s *poolStop) shutdown() {
	s.once.Do(func() {
		for _, c := range s.cmds {
			close(c)
		}
		for _, c := range s.phased {
			close(c)
		}
	})
}

type nodeResult struct {
	rank int
	rep  NodeReport
	err  error
}

// New builds the engine and spawns its node pool.
func New(opts Options) *Engine {
	nodes, codecs, workers := opts.Nodes, opts.Codecs, []*core.Worker(nil)
	if nodes == nil {
		if len(opts.Workers) == 0 {
			panic("engine: no nodes")
		}
		workers = opts.Workers
		nodes = make([]Node, len(workers))
		codecs = make([]Codec, len(workers))
		// One mask per round per fleet, not per rank: all in-process ranks
		// share a single mask cache, keeping per-rank state O(model).
		mc := &compress.MaskCache{}
		for i, w := range workers {
			w.ShareMasks(mc)
			nodes[i] = NewMaskedGossipNode(w)
			codecs[i] = NewMaskedShared(w.CompressionRatio(), mc)
		}
	} else if len(opts.Workers) != 0 {
		panic("engine: both Nodes and Workers set")
	}
	n := len(nodes)
	if n < 1 {
		panic("engine: no nodes")
	}
	if len(codecs) != n {
		panic(fmt.Sprintf("engine: %d codecs for %d nodes", len(codecs), n))
	}
	if opts.Planner == nil {
		panic("engine: nil planner")
	}
	pat := opts.Pattern
	if pat == nil {
		pat = Pairwise{}
	}
	tr := opts.Transport
	if tr == nil {
		tr = memtransport.NewHub(n)
	}
	e := &Engine{
		nodes:   nodes,
		codecs:  codecs,
		workers: workers,
		pattern: pat,
	}
	e.driver = Driver{Planner: opts.Planner, Control: e, Metrics: obs.Current().EngineM()}
	limit := opts.MaxParallel
	if opts.Shards > 0 {
		pp, okPat := pat.(PhasedPattern)
		pt, okTr := tr.(PhasedTransport)
		if okPat && okTr {
			e.sharded = newShardRunner(nodes, codecs, pp, pt, opts.Shards)
			e.stop = &poolStop{phased: e.sharded.cmds}
			registerEngineCleanup(e, e.stop)
			return e
		}
		// No phased path for this pattern/transport: honor the shard count
		// as the blocking pool's compute-parallelism bound instead.
		limit = opts.Shards
	}
	if limit < 1 {
		limit = runtime.GOMAXPROCS(0)
	}
	e.gate = NewGate(limit)
	e.cmds = make([]chan core.RoundPlan, n)
	e.results = make(chan nodeResult, n)
	e.reports = make([]NodeReport, n)
	for i := range e.cmds {
		e.cmds[i] = make(chan core.RoundPlan)
		go nodeLoop(i, n, nodes[i], pat, codecs, tr, e.gate, e.cmds[i], e.results)
	}
	// The runtime goroutines deliberately do not reference e, so an
	// abandoned Engine is collectable; the cleanup then closes its command
	// channels.
	e.stop = &poolStop{cmds: e.cmds}
	registerEngineCleanup(e, e.stop)
	return e
}

// nodeLoop is one pool member: it serves its node's rounds until the
// command channel closes.
func nodeLoop(self, n int, node Node, pat Pattern, codecs []Codec, tr Transport, gate Gate, cmds <-chan core.RoundPlan, results chan<- nodeResult) {
	for plan := range cmds {
		if plan.Active != nil && !plan.Active[self] {
			results <- nodeResult{rank: self}
			continue
		}
		ctx := RoundContext{Round: plan.Round, Seed: plan.Seed, Self: self, N: n, Plan: plan}
		rep, err := pat.RunRound(ctx, node, codecs, tr, gate)
		results <- nodeResult{rank: self, rep: rep, err: err}
	}
}

// RunRound implements Control: broadcast the plan to the active runtime and
// wait for every node to finish the round.
func (e *Engine) RunRound(plan core.RoundPlan) (ControlReport, error) {
	if e.closed {
		return ControlReport{}, fmt.Errorf("engine: RunRound after Close")
	}
	if err := e.pattern.Validate(plan, len(e.nodes)); err != nil {
		return ControlReport{}, err
	}
	if e.sharded != nil {
		return e.sharded.runRound(plan)
	}
	for _, c := range e.cmds {
		c <- plan
	}
	// Collect rank-indexed so the loss mean and flow aggregation run in
	// deterministic order regardless of completion order.
	for i := range e.reports {
		e.reports[i] = NodeReport{}
	}
	var firstErr error
	for range e.nodes {
		r := <-e.results
		e.reports[r.rank] = r.rep
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: node %d: %w", r.rank, r.err)
		}
	}
	if firstErr != nil {
		return ControlReport{}, firstErr
	}
	return buildReport(&e.agg, e.reports), nil
}

// buildReport folds the rank-indexed node reports into the round's control
// report: rank-ordered flow aggregation, loss mean over trained nodes, and
// the largest payload. Both runtimes funnel through it, which is one of the
// two deterministic commit points (the other is the Driver's rank-ordered
// ledger charge). The report's Pairs alias agg's pooled storage and stay
// valid until the runtime's next round.
func buildReport(agg *flowAgg, reports []NodeReport) ControlReport {
	rep := ControlReport{Pairs: agg.aggregate(reports)}
	sum, k := 0.0, 0
	for _, nr := range reports {
		if nr.PayloadLen > rep.PayloadLen {
			rep.PayloadLen = nr.PayloadLen
		}
		if nr.Trained && !math.IsNaN(nr.Loss) {
			sum += nr.Loss
			k++
		}
	}
	if k > 0 {
		rep.MeanLoss = sum / float64(k)
	}
	return rep
}

// Step runs one full round — plan, execute, account — against the ledger.
func (e *Engine) Step(t int, led Ledger) (RoundStats, error) {
	return e.driver.Round(t, led)
}

// Workers exposes the fleet when the engine was built from the Workers
// convenience form (nil otherwise).
func (e *Engine) Workers() []*core.Worker { return e.workers }

// Nodes exposes the rank-indexed participants.
func (e *Engine) Nodes() []Node { return e.nodes }

// Close shuts down the node pool. The engine must not be stepped after
// Close. Close is idempotent.
func (e *Engine) Close() {
	e.closed = true
	e.stop.shutdown()
}
