// Package engine owns the canonical SAPS-PSGD execution core: Algorithm 1
// (coordinator round loop), Algorithm 2 (worker round), and — via the
// pluggable Planner — Algorithm 3 (adaptive peer selection). The engine talks
// to the world only through two small interfaces:
//
//   - Transport: the peer-to-peer sparse-model exchange (data plane);
//   - Ledger: traffic and communication-time accounting (clock).
//
// Three backends run the identical round logic:
//
//   - memtransport: in-process channel rendezvous, zero-time CountingLedger —
//     the pure-algorithm backend used by the internal/algos simulations;
//   - simtransport: the same in-process rendezvous charged against a
//     netsim bandwidth matrix (*netsim.Ledger satisfies Ledger), reproducing
//     the paper's byte- and second-accurate simulation;
//   - internal/transport: real TCP — WorkerClient runs WorkerRound over gob
//     connections and CoordinatorServer runs Driver over its control conns.
//
// See DESIGN.md for the layering and for how to add a new backend.
package engine

import "sapspsgd/internal/core"

// Transport is a worker's handle to the data plane: Exchange swaps the
// round's packed masked payload with the assigned peer and returns the peer's
// payload. Implementations must support concurrent calls from distinct
// workers; both endpoints of a matched pair call Exchange exactly once per
// round. The payload slice is borrowed by the transport (and, in-process, by
// the peer) until the round barrier, so callers must not mutate it until the
// round completes.
//
// Liveness contract for custom backends: when one endpoint's Exchange fails,
// the peer's Exchange must also return (with a payload or an error) rather
// than block forever — the engine's round barrier waits for every worker.
// TCP satisfies this naturally (a dead endpoint breaks the peer's
// connection); the in-process hub cannot fail between validly matched peers,
// and the engine rejects malformed matchings before dispatch.
type Transport interface {
	Exchange(round, self, peer int, payload []float64) ([]float64, error)
}

// Ledger is the engine's clock and traffic account. *netsim.Ledger satisfies
// it (bandwidth-modelled simulated time); CountingLedger is the zero-time
// variant for in-memory and real-network runs. Implementations need not be
// safe for concurrent use: the Driver charges exchanges centrally, once per
// matched pair, from the coordinator loop.
type Ledger interface {
	// Exchange records a bidirectional transfer between workers i and j in
	// the current round: i sends sendBytes to j and receives recvBytes.
	Exchange(i, j int, sendBytes, recvBytes int64)
	// EndRound closes the current round and returns its wall time in
	// seconds (0 for ledgers without a time model).
	EndRound() float64
}

// Planner produces the per-round control message (W_t, t, s) — Algorithm 1
// line 6, with Algorithm 3 inside. *core.Coordinator satisfies it; the
// RandomChoose and churn variants plug in their own planners.
type Planner interface {
	Plan(t int) core.RoundPlan
}

// PlannerFunc adapts a function to the Planner interface.
type PlannerFunc func(t int) core.RoundPlan

// Plan implements Planner.
func (f PlannerFunc) Plan(t int) core.RoundPlan { return f(t) }

// Control is the coordinator's channel to its workers: RunRound delivers the
// plan to every worker, executes Algorithm 2 on each, and blocks until all
// complete (the synchronous round barrier of Algorithm 1 line 7). It returns
// the mean training loss over participating workers and the shared-mask
// payload length (values per matched worker) for traffic accounting.
type Control interface {
	RunRound(plan core.RoundPlan) (meanLoss float64, payloadLen int, err error)
}

// RoundStats summarizes one completed round.
type RoundStats struct {
	// Plan is the control message the round ran under.
	Plan core.RoundPlan
	// PayloadLen is the number of values each matched worker transmitted
	// (the shared-mask population count; 0 when no worker was matched).
	PayloadLen int
	// Loss is the mean local training loss over participating workers.
	Loss float64
}
