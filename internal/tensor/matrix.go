package tensor

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero-initialized Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix size %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFrom wraps data as a rows×cols matrix without copying. It panics if
// len(data) != rows*cols.
func MatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// T returns a new matrix that is the transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// MatMul returns a*b. It panics on incompatible shapes.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, reusing dst's storage. dst must not alias a
// or b. The k-loop is hoisted outside the j-loop (ikj order) so the inner
// loop streams over contiguous rows of b — this is the difference between a
// usable CPU conv layer and an unusable one.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	Fill(dst.Data, 0)
	for i := 0; i < a.Rows; i++ {
		aRow := a.Row(i)
		dRow := dst.Row(i)
		for k, aik := range aRow {
			if aik == 0 {
				continue
			}
			bRow := b.Row(k)
			for j, bkj := range bRow {
				dRow[j] += aik * bkj
			}
		}
	}
}

// MatVec returns a·x for a column vector x.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("tensor: MatVec shape mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// VecMat returns xᵀ·a as a row vector for a row vector x.
func VecMat(x []float64, a *Matrix) []float64 {
	if a.Rows != len(x) {
		panic("tensor: VecMat shape mismatch")
	}
	out := make([]float64, a.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		Axpy(xi, a.Row(i), out)
	}
	return out
}

// IsDoublyStochastic reports whether every entry of m is non-negative and
// every row and column sums to 1 within tol. Gossip matrices W_t must satisfy
// this (Assumption 2 of the paper).
func (m *Matrix) IsDoublyStochastic(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	colSums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		rowSum := 0.0
		for j, v := range m.Row(i) {
			if v < -tol {
				return false
			}
			rowSum += v
			colSums[j] += v
		}
		if abs(rowSum-1) > tol {
			return false
		}
	}
	for _, s := range colSums {
		if abs(s-1) > tol {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
