package netsim

import (
	"math"
	"testing"

	"sapspsgd/internal/rng"
)

func TestDynamicBandwidthJitterBounds(t *testing.T) {
	base := RandomUniform(8, 2, 4, rng.New(1))
	d := NewDynamicBandwidth(base, 0.3, 5)
	for tick := 0; tick < 20; tick++ {
		cur := d.Tick()
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i == j {
					if cur.MBps(i, j) != 0 {
						t.Fatal("diagonal")
					}
					continue
				}
				ratio := cur.MBps(i, j) / base.MBps(i, j)
				if ratio < 0.7-1e-9 || ratio > 1.3+1e-9 {
					t.Fatalf("jitter ratio %v out of [0.7, 1.3]", ratio)
				}
				if cur.MBps(i, j) != cur.MBps(j, i) {
					t.Fatal("asymmetric after jitter")
				}
			}
		}
	}
}

func TestDynamicBandwidthVaries(t *testing.T) {
	base := RandomUniform(4, 2, 4, rng.New(1))
	d := NewDynamicBandwidth(base, 0.3, 5)
	a := d.Current().MBps(0, 1)
	changed := false
	for tick := 0; tick < 10; tick++ {
		if math.Abs(d.Tick().MBps(0, 1)-a) > 1e-12 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("bandwidth never changed across ticks")
	}
	if d.Base() != base {
		t.Fatal("Base lost")
	}
}

func TestDynamicBandwidthBadJitterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDynamicBandwidth(RandomUniform(2, 1, 2, rng.New(1)), 1.0, 1)
}
