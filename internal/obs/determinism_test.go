package obs_test

import (
	"bytes"
	"testing"

	"sapspsgd/internal/obs"
	"sapspsgd/internal/scenario"
)

// loadSpec pulls a committed scenario spec from the scenario package's
// testdata — the same specs the determinism CI jobs replay.
func loadSpec(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	s, err := scenario.Load("../scenario/testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSyncArtifactsUnchangedByObs is the package's core promise: enabling
// the metrics sink must not change a single bit of a synchronous run's
// results — loss, traffic, virtual time, or the per-round trace CSV.
func TestSyncArtifactsUnchangedByObs(t *testing.T) {
	spec := loadSpec(t, "saps-jitter.json")

	run := func() (*scenario.RunOutput, string) {
		out, err := spec.RunFull(scenario.RunOptions{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if out.Trace != nil {
			if err := out.Trace.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
		}
		return out, csv.String()
	}

	obs.Disable()
	off, offCSV := run()

	m := obs.New()
	obs.Enable(m)
	defer obs.Disable()
	on, onCSV := run()

	if off.Result.TotalBytes != on.Result.TotalBytes {
		t.Fatalf("TotalBytes: off=%d on=%d", off.Result.TotalBytes, on.Result.TotalBytes)
	}
	if off.Result.FinalLoss != on.Result.FinalLoss {
		t.Fatalf("FinalLoss: off=%v on=%v", off.Result.FinalLoss, on.Result.FinalLoss)
	}
	if off.Result.SimSeconds != on.Result.SimSeconds {
		t.Fatalf("SimSeconds: off=%v on=%v", off.Result.SimSeconds, on.Result.SimSeconds)
	}
	if offCSV != onCSV {
		t.Fatal("trace CSV differs with obs enabled")
	}

	// And the sink actually recorded the run: the instrumented layers saw
	// every round and byte the disabled run produced.
	if got := m.Engine.RoundsTotal.Value(); got < int64(spec.Rounds) {
		t.Fatalf("engine_rounds_total = %d, want >= %d", got, spec.Rounds)
	}
	if got := m.Engine.WireBytesTotal.Value(); got != on.Result.TotalBytes {
		t.Fatalf("engine_wire_bytes_total = %d, want %d", got, on.Result.TotalBytes)
	}
	if m.Engine.RoundSeconds.Count() == 0 {
		t.Fatal("engine_round_seconds recorded no observations")
	}
}

// TestAsyncArtifactsUnchangedByObs replays the async determinism gate
// with the sink enabled: the virtual-time event stream, final model bits
// and per-rank ledgers must be byte-identical to the disabled run.
func TestAsyncArtifactsUnchangedByObs(t *testing.T) {
	spec := loadSpec(t, "adpsgd-async.json")

	run := func() *scenario.RunOutput {
		out, err := spec.RunFull(scenario.RunOptions{Events: true, Params: true})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	obs.Disable()
	off := run()

	m := obs.New()
	obs.Enable(m)
	defer obs.Disable()
	on := run()

	if !bytes.Equal(off.Events.Bytes(), on.Events.Bytes()) {
		t.Fatal("async event log differs with obs enabled")
	}
	if len(off.Params) != len(on.Params) {
		t.Fatalf("param rank count: off=%d on=%d", len(off.Params), len(on.Params))
	}
	for rank := range off.Params {
		for i := range off.Params[rank] {
			if off.Params[rank][i] != on.Params[rank][i] {
				t.Fatalf("rank %d param %d: off=%v on=%v", rank, i, off.Params[rank][i], on.Params[rank][i])
			}
		}
	}
	for i := range off.SentBytes {
		if off.SentBytes[i] != on.SentBytes[i] || off.RecvBytes[i] != on.RecvBytes[i] {
			t.Fatalf("rank %d ledger differs with obs enabled", i)
		}
	}
	if off.Result.SimSeconds != on.Result.SimSeconds {
		t.Fatalf("SimSeconds: off=%v on=%v", off.Result.SimSeconds, on.Result.SimSeconds)
	}

	// The simulator side of the sink saw the run.
	if m.Netsim.EventsTotal.Value() == 0 {
		t.Fatal("netsim_events_total stayed zero during an async run")
	}
	if m.Engine.WireBytesTotal.Value() != on.Result.TotalBytes {
		t.Fatalf("engine_wire_bytes_total = %d, want %d", m.Engine.WireBytesTotal.Value(), on.Result.TotalBytes)
	}
}
