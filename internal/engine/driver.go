package engine

// Driver is Algorithm 1's round loop, backend- and algorithm-agnostic: plan
// the round (Algorithm 3 via the Planner), run it on every node through the
// Control barrier, then account the round's traffic in the Ledger — one
// bidirectional charge per communicating pair, sized by the wire bytes the
// nodes' codecs actually produced.
type Driver struct {
	Planner Planner
	Control Control
}

// Round executes round t against the ledger and returns its stats.
func (d *Driver) Round(t int, led Ledger) (RoundStats, error) {
	plan := d.Planner.Plan(t)
	rep, err := d.Control.RunRound(plan)
	if err != nil {
		return RoundStats{}, err
	}
	var total int64
	for _, p := range rep.Pairs {
		led.Exchange(p.I, p.J, p.IToJ, p.JToI)
		total += p.IToJ + p.JToI
	}
	secs := led.EndRound()
	return RoundStats{
		Plan:        plan,
		PayloadLen:  rep.PayloadLen,
		Loss:        rep.MeanLoss,
		Bytes:       total,
		CommSeconds: secs,
	}, nil
}
