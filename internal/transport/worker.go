package transport

import (
	"fmt"
	"net"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
)

// WorkerClient runs one engine node over TCP: it registers with the
// coordinator, assembles its node/pattern/codecs from the broadcast task
// recipe, trains locally, and exchanges encoded payloads with its per-round
// peers over direct worker-to-worker connections. For hub algorithms the
// last rank hosts the parameter server instead of training.
type WorkerClient struct {
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)

	rank  int
	n     int // total node count (trainers + server for hub recipes)
	coord *Conn

	model   *nn.Model
	node    engine.Node
	pattern engine.Pattern
	codecs  []engine.Codec

	peerLn net.Listener
	addrs  []string
	// pending stashes accepted peer connections that arrived while this
	// worker was waiting for a different peer (multi-peer patterns accept
	// in no guaranteed order); FIFO per sender.
	pending map[int][]*pendingConn
	// seq counts this round's exchanges per peer; both endpoints of every
	// meeting must agree on the sequence number.
	seq map[int]int
}

// pendingConn is one accepted-but-not-yet-consumed peer connection with its
// opening payload.
type pendingConn struct {
	conn *Conn
	pp   PeerPayload
}

// Rank returns the coordinator-assigned rank (valid after Run registers).
func (w *WorkerClient) Rank() int { return w.rank }

func (w *WorkerClient) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run connects to the coordinator at coordAddr, participates in the full
// training, and returns the node's final parameters. peerAddr is the
// address to listen on for peer exchanges ("127.0.0.1:0" for an ephemeral
// port).
func (w *WorkerClient) Run(coordAddr, peerAddr string) ([]float64, error) {
	var err error
	w.peerLn, err = net.Listen("tcp", peerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: worker peer listen: %w", err)
	}
	defer w.peerLn.Close()

	nc, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial coordinator: %w", err)
	}
	w.coord = NewConn(nc)
	defer w.coord.Close()

	if err := w.coord.Send(Hello{ListenAddr: w.peerLn.Addr().String()}); err != nil {
		return nil, err
	}
	msg, err := w.coord.Recv()
	if err != nil {
		return nil, err
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		return nil, fmt.Errorf("transport: expected Welcome, got %T", msg)
	}
	w.rank = welcome.Rank
	w.n = welcome.N
	w.addrs = welcome.Addrs
	w.pending = map[int][]*pendingConn{}
	spec := welcome.Task

	trainers := spec.Trainers(w.n)
	rec := spec.Recipe(trainers)
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	w.model, err = spec.BuildModel()
	if err != nil {
		return nil, err
	}
	w.pattern = rec.Pattern()
	w.codecs = rec.Codecs(w.model.ParamCount())
	if rec.Hub() && w.rank == rec.ServerRank() {
		w.node = rec.NewNode(w.rank, w.model, nil, nil)
		w.logf("worker %d: parameter server for %q (%d params)", w.rank, rec.Algo, w.model.ParamCount())
	} else {
		shards, _ := spec.BuildShards(trainers)
		w.node = rec.NewNode(w.rank, w.model, shards[w.rank], nil)
		w.logf("worker %d: ready for %q (%d params, %d local samples)",
			w.rank, rec.Algo, w.model.ParamCount(), shards[w.rank].Len())
	}

	for {
		msg, err := w.coord.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d: %w", w.rank, err)
		}
		switch m := msg.(type) {
		case MeasureRequest:
			rep := w.measurePeers(m)
			if err := w.coord.Send(rep); err != nil {
				return nil, err
			}
		case RoundMsg:
			end, err := w.runRound(m)
			if err != nil {
				return nil, err
			}
			if err := w.coord.Send(end); err != nil {
				return nil, err
			}
		case CollectRequest:
			if err := w.coord.Send(FinalModel{Params: w.model.FlatParams(nil)}); err != nil {
				return nil, err
			}
		case Done:
			w.logf("worker %d: done", w.rank)
			return w.model.FlatParams(nil), nil
		default:
			return nil, fmt.Errorf("transport: worker %d: unexpected %T", w.rank, msg)
		}
	}
}

// runRound executes one engine round from the coordinator's control message.
func (w *WorkerClient) runRound(m RoundMsg) (RoundEnd, error) {
	if m.Active != nil && !m.Active[w.rank] {
		// Not chosen this round: hold the barrier without training.
		return RoundEnd{Rank: w.rank, Round: m.Round}, nil
	}
	plan := core.RoundPlan{Round: m.Round, Seed: m.Seed, Active: m.Active, Peer: peerTable(m.Peer, w.rank, w.n)}
	ctx := engine.RoundContext{Round: m.Round, Seed: m.Seed, Self: w.rank, N: w.n, Plan: plan}
	w.seq = map[int]int{}
	rep, err := engine.WorkerRound(w.node, w.pattern, w.codecs, peerDialer{w}, nil, ctx)
	if err != nil {
		return RoundEnd{}, err
	}
	return RoundEnd{
		Rank:       w.rank,
		Round:      m.Round,
		Loss:       rep.Loss,
		Trained:    rep.Trained,
		PayloadLen: rep.PayloadLen,
		Flows:      rep.Flows,
	}, nil
}

// peerTable reconstructs the pairwise peer table from this worker's own
// assignment (only Peer[self] and the symmetric entry are ever read by the
// pairwise pattern; other patterns ignore the table).
func peerTable(peer, self, n int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = -1
	}
	if self < n {
		t[self] = peer
	}
	if peer >= 0 && peer < n {
		t[peer] = self
	}
	return t
}

// peerDialer adapts the worker's peer connections to engine.Transport, so
// the canonical engine round drives the TCP deployment: the round logic
// lives in internal/engine, and only the payload swap below is
// transport-specific.
type peerDialer struct{ w *WorkerClient }

// Exchange implements engine.Transport.
func (d peerDialer) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	return d.w.exchange(round, peer, payload)
}

// exchange swaps encoded payloads with the peer: the lower rank dials, the
// higher rank accepts. Multi-peer patterns can make the accept side receive
// connections out of order, so accepted connections self-identify via their
// opening PeerPayload and are stashed until their exchange comes up; the
// per-(round, peer) sequence number verifies both sides agree on which
// meeting this is.
func (w *WorkerClient) exchange(round, peer int, payload []float64) ([]float64, error) {
	seq := w.seq[peer]
	w.seq[peer]++
	out := PeerPayload{Round: round, From: w.rank, Seq: seq, Vals: payload}

	if w.rank < peer {
		nc, err := net.Dial("tcp", w.addrs[peer])
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d dial peer %d: %w", w.rank, peer, err)
		}
		conn := NewConn(nc)
		defer conn.Close()
		if err := conn.Send(out); err != nil {
			return nil, err
		}
		msg, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		pp, ok := msg.(PeerPayload)
		if !ok {
			return nil, fmt.Errorf("transport: worker %d: peer sent %T", w.rank, msg)
		}
		if err := checkPayload(pp, round, peer, seq, w.rank); err != nil {
			return nil, err
		}
		return pp.Vals, nil
	}

	pc, err := w.awaitPeer(peer)
	if err != nil {
		return nil, err
	}
	defer pc.conn.Close()
	if err := checkPayload(pc.pp, round, peer, seq, w.rank); err != nil {
		return nil, err
	}
	if err := pc.conn.Send(out); err != nil {
		return nil, err
	}
	return pc.pp.Vals, nil
}

// awaitPeer returns the oldest stashed connection from peer, accepting (and
// stashing) incoming connections until one arrives.
func (w *WorkerClient) awaitPeer(peer int) (*pendingConn, error) {
	for {
		if list := w.pending[peer]; len(list) > 0 {
			pc := list[0]
			w.pending[peer] = list[1:]
			return pc, nil
		}
		nc, err := w.peerLn.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d accept peer %d: %w", w.rank, peer, err)
		}
		conn := NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: worker %d: peer hello: %w", w.rank, err)
		}
		pp, ok := msg.(PeerPayload)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("transport: worker %d: accepted %T", w.rank, msg)
		}
		w.pending[pp.From] = append(w.pending[pp.From], &pendingConn{conn: conn, pp: pp})
	}
}

// checkPayload validates an inbound payload's routing metadata.
func checkPayload(pp PeerPayload, round, peer, seq, self int) error {
	if pp.Round != round || pp.From != peer || pp.Seq != seq {
		return fmt.Errorf("transport: worker %d: stale payload round=%d from=%d seq=%d, want round=%d from=%d seq=%d",
			self, pp.Round, pp.From, pp.Seq, round, peer, seq)
	}
	return nil
}
