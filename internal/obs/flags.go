package obs

import (
	"flag"
	"log/slog"
	"os"
)

// FlagConfig is the shared -obs-addr / -obs-log wiring for the cmd
// binaries: register the flags, then Start once at startup. Leaving
// -obs-addr empty keeps the whole layer disabled (the default), which
// is the zero-cost path the determinism CI job compares against.
type FlagConfig struct {
	// Addr is the -obs-addr listen address; empty disables the server
	// and the metrics sink.
	Addr string
	// Log is the -obs-log format: off, text or json (stderr).
	Log string
}

// AddFlags registers -obs-addr and -obs-log on fs (the default
// CommandLine set when fs is nil).
func (c *FlagConfig) AddFlags(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&c.Addr, "obs-addr", "", "observability HTTP listen address (/metrics, /healthz, /runs, /debug/pprof); empty disables")
	fs.StringVar(&c.Log, "obs-log", "off", "structured log format on stderr: off|text|json")
}

// Start applies the flags: it installs the structured logger (if
// requested), and when Addr is set, enables the global metrics sink and
// serves it. The returned server is nil when Addr is empty; Close is
// nil-safe either way.
func (c FlagConfig) Start() (*Server, error) {
	if err := EnableLogging(os.Stderr, c.Log, slog.LevelInfo); err != nil {
		return nil, err
	}
	if c.Addr == "" {
		return nil, nil
	}
	m := New()
	Enable(m)
	return StartServer(c.Addr, m)
}
