package netsim

import (
	"math"
	"testing"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/rng"
)

// denseTwin materializes a sparse environment as a dense one over the same
// links, for API-equivalence checks.
func denseTwin(b *Bandwidth) *Bandwidth {
	raw := make([][]float64, b.N)
	for i := range raw {
		raw[i] = make([]float64, b.N)
	}
	b.ForEachEdge(0, func(u, v int, w float64) {
		raw[u][v] = w
		raw[v][u] = w
	})
	return NewBandwidth(raw)
}

// TestSparseMatchesDenseAPI pins the dual-mode contract: a sparse
// environment and its dense twin must be indistinguishable through every
// read path — MBps, Edges, Filter, Links, MeanBandwidth.
func TestSparseMatchesDenseAPI(t *testing.T) {
	sp := SparseRandomUniform(40, 6, 0.5, 5, rng.New(9))
	if !sp.Sparse() {
		t.Fatal("SparseRandomUniform returned a dense environment")
	}
	dn := denseTwin(sp)
	for i := 0; i < sp.N; i++ {
		for j := 0; j < sp.N; j++ {
			if sp.MBps(i, j) != dn.MBps(i, j) {
				t.Fatalf("MBps(%d,%d): sparse %v, dense %v", i, j, sp.MBps(i, j), dn.MBps(i, j))
			}
		}
	}
	for _, thresh := range []float64{0, 1, 3} {
		se, de := sp.Edges(thresh), dn.Edges(thresh)
		if len(se) != len(de) {
			t.Fatalf("thresh %v: %d sparse edges, %d dense", thresh, len(se), len(de))
		}
		for k := range se {
			if se[k] != de[k] {
				t.Fatalf("thresh %v edge %d: %+v vs %+v", thresh, k, se[k], de[k])
			}
		}
		sf, df := sp.Filter(thresh), dn.Filter(thresh)
		for i := range sf {
			for j := range sf[i] {
				if sf[i][j] != df[i][j] {
					t.Fatalf("thresh %v Filter[%d][%d] differs", thresh, i, j)
				}
			}
		}
	}
	if sp.Links() != dn.Links() {
		t.Fatalf("links: sparse %d, dense %d", sp.Links(), dn.Links())
	}
	if math.Abs(sp.MeanBandwidth()-dn.MeanBandwidth()) > 1e-12 {
		t.Fatalf("mean bandwidth: sparse %v, dense %v", sp.MeanBandwidth(), dn.MeanBandwidth())
	}
}

// TestSparseTopologyConnectedAndDeterministic pins the generator contract:
// same seed, same environment; the topology is connected; every link speed
// lies in (lo, hi]; and the edge count tracks the mean-degree target.
func TestSparseTopologyConnectedAndDeterministic(t *testing.T) {
	const n, degree = 200, 8
	a := SparseRandomUniform(n, degree, 0.5, 5, rng.New(3))
	b := SparseRandomUniform(n, degree, 0.5, 5, rng.New(3))
	ae, be := a.Edges(0), b.Edges(0)
	if len(ae) != len(be) {
		t.Fatalf("same seed, different edge counts: %d vs %d", len(ae), len(be))
	}
	for k := range ae {
		if ae[k] != be[k] {
			t.Fatalf("same seed, edge %d differs: %+v vs %+v", k, ae[k], be[k])
		}
	}
	if !a.FilterGraph(0).IsConnected() {
		t.Fatal("sparse topology is not connected")
	}
	for _, e := range ae {
		if e.Weight <= 0.5 || e.Weight > 5 {
			t.Fatalf("edge (%d,%d) speed %v outside (0.5, 5]", e.U, e.V, e.Weight)
		}
	}
	// Ring (n edges) <= total <= target (n*degree/2).
	if len(ae) < n || len(ae) > n*degree/2 {
		t.Fatalf("%d edges for n=%d degree=%d", len(ae), n, degree)
	}
	if got := SparseRandomUniform(n, degree, 0.5, 5, rng.New(4)).Edges(0); len(got) == len(ae) {
		same := true
		for k := range got {
			if got[k] != ae[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical environments")
		}
	}
}

// TestSparseClusteredFasterInside mirrors TestClusteredFasterInside for the
// sparse generator: intra-cluster links must be faster on average.
func TestSparseClusteredFasterInside(t *testing.T) {
	b := SparseClustered(60, 3, 10, 8, 0.5, rng.New(5))
	var fastSum, slowSum float64
	var fastN, slowN int
	b.ForEachEdge(0, func(u, v int, w float64) {
		if u%3 == v%3 {
			fastSum += w
			fastN++
		} else {
			slowSum += w
			slowN++
		}
	})
	if fastN == 0 || slowN == 0 {
		t.Fatalf("degenerate topology: %d intra, %d cross links", fastN, slowN)
	}
	if fastSum/float64(fastN) <= slowSum/float64(slowN) {
		t.Fatalf("intra-cluster mean %v not above cross-cluster mean %v",
			fastSum/float64(fastN), slowSum/float64(slowN))
	}
}

// TestSparseScaledAndDynamic pins the straggler and jitter paths on the CSR
// representation: Scaled divides exactly the links touching a straggler and
// shares the immutable topology; DynamicBandwidth ticks stay symmetric and
// within the jitter envelope without ever leaving sparse mode.
func TestSparseScaledAndDynamic(t *testing.T) {
	base := SparseRandomUniform(30, 4, 1, 4, rng.New(7))
	sc := base.Scaled([]int{2, 5}, 4)
	if !sc.Sparse() || sc.Links() != base.Links() {
		t.Fatal("Scaled changed the representation or topology")
	}
	base.ForEachEdge(0, func(u, v int, w float64) {
		want := w
		if u == 2 || v == 2 || u == 5 || v == 5 {
			want = w / 4
		}
		if got := sc.MBps(u, v); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Scaled link (%d,%d): %v, want %v", u, v, got, want)
		}
	})

	d := NewDynamicBandwidth(base, 0.3, 11)
	for tick := 0; tick < 5; tick++ {
		cur := d.Tick()
		if !cur.Sparse() || cur.Links() != base.Links() {
			t.Fatal("Tick changed the representation or topology")
		}
		base.ForEachEdge(0, func(u, v int, w float64) {
			ratio := cur.MBps(u, v) / w
			if ratio < 0.7-1e-9 || ratio > 1.3+1e-9 {
				t.Fatalf("tick %d link (%d,%d) jitter ratio %v", tick, u, v, ratio)
			}
			if cur.MBps(u, v) != cur.MBps(v, u) {
				t.Fatalf("tick %d link (%d,%d) asymmetric", tick, u, v)
			}
		})
	}
}

// TestNewSparseBandwidthValidation pins the constructor's edge rules:
// self-loops, out-of-range endpoints and duplicate pairs panic; zero and
// negative weights drop the link entirely.
func TestNewSparseBandwidthValidation(t *testing.T) {
	mustPanic := func(name string, edges []graph.WeightedEdge) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted", name)
			}
		}()
		NewSparseBandwidth(4, edges)
	}
	mustPanic("self-loop", []graph.WeightedEdge{{U: 1, V: 1, Weight: 2}})
	mustPanic("out of range", []graph.WeightedEdge{{U: 0, V: 9, Weight: 2}})
	mustPanic("duplicate pair", []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 2}, {U: 1, V: 0, Weight: 3},
	})

	b := NewSparseBandwidth(4, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 2},
		{U: 1, V: 2, Weight: 0},
		{U: 2, V: 3, Weight: -1},
	})
	if b.Links() != 1 || b.MBps(0, 1) != 2 {
		t.Fatalf("kept %d links, MBps(0,1)=%v", b.Links(), b.MBps(0, 1))
	}
	if b.MBps(1, 2) != 0 || b.MBps(2, 3) != 0 {
		t.Fatal("zero/negative-weight links not dropped")
	}
}

// TestEdgeAndFilterBufferReuse pins the allocation-free per-round forms:
// AppendEdges extends the caller's buffer in place when capacity suffices,
// and FilterInto reuses the destination rows.
func TestEdgeAndFilterBufferReuse(t *testing.T) {
	b := SparseRandomUniform(20, 4, 1, 5, rng.New(2))
	buf := make([]graph.WeightedEdge, 0, 4*b.Links())
	out := b.AppendEdges(buf, 0)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendEdges reallocated despite sufficient capacity")
	}
	again := b.AppendEdges(out[:0], 0)
	if &again[0] != &out[0] || len(again) != len(out) {
		t.Fatal("AppendEdges did not reuse the buffer on the second round")
	}

	dst := b.FilterInto(nil, 0)
	rows := make([]*bool, len(dst))
	for i := range dst {
		rows[i] = &dst[i][0]
	}
	dst2 := b.FilterInto(dst, 2)
	if &dst2[0] != &dst[0] {
		t.Fatal("FilterInto reallocated the row index")
	}
	for i := range dst2 {
		if &dst2[i][0] != rows[i] {
			t.Fatalf("FilterInto reallocated row %d", i)
		}
	}
	// The reused rows must reflect only the new threshold.
	want := b.Filter(2)
	for i := range want {
		for j := range want[i] {
			if dst2[i][j] != want[i][j] {
				t.Fatalf("stale bit at (%d,%d) after row reuse", i, j)
			}
		}
	}
}
