package netsim

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Ledger accounts for every byte each worker sends and receives and converts
// payloads into simulated communication time using a Bandwidth environment.
// Rounds are synchronous (as in the paper): a round's wall time is the
// maximum over workers of that worker's communication time in the round.
type Ledger struct {
	bw *Bandwidth
	// LatencySec, when set, adds a fixed per-message latency to each
	// exchange direction and server transfer — a realism extension beyond
	// the paper's pure-bandwidth time model (geo-distributed RTTs are tens
	// of milliseconds, which matters for the small control-size payloads
	// SAPS sends at high compression ratios).
	LatencySec float64
	// Cumulative per-worker totals.
	sentBytes []int64
	recvBytes []int64
	// Per-round scratch.
	roundTime []float64
	// Accumulated simulated wall-clock communication time (seconds).
	totalTime float64
	// Server-side traffic for centralized baselines (bytes).
	serverSent int64 // bytes the server sent (workers' downstream)
	serverRecv int64 // bytes the server received (workers' upstream)
	rounds     int
}

// NewLedger returns a ledger over the given bandwidth environment.
func NewLedger(bw *Bandwidth) *Ledger {
	return &Ledger{
		bw:        bw,
		sentBytes: make([]int64, bw.N),
		recvBytes: make([]int64, bw.N),
		roundTime: make([]float64, bw.N),
	}
}

// Exchange records a bidirectional transfer between workers i and j in the
// current round: i sends sendBytes to j and receives recvBytes from j. Both
// directions ride the same (symmetric) link, and each worker's round time
// grows by its transfer volume over the link bandwidth.
func (l *Ledger) Exchange(i, j int, sendBytes, recvBytes int64) {
	if i == j {
		panic(fmt.Sprintf("netsim: self exchange on worker %d", i))
	}
	l.sentBytes[i] += sendBytes
	l.recvBytes[j] += sendBytes
	l.sentBytes[j] += recvBytes
	l.recvBytes[i] += recvBytes
	mbps := l.bw.MBps(i, j)
	if mbps > 0 {
		secs := float64(sendBytes+recvBytes)/(mbps*1e6) + l.LatencySec
		l.roundTime[i] += secs
		l.roundTime[j] += secs
	} else {
		// A zero-bandwidth link should never carry traffic; make it visible.
		panic(fmt.Sprintf("netsim: exchange over zero-bandwidth link %d-%d", i, j))
	}
}

// ServerTransfer records traffic between worker i and a central server (used
// by the PS-architecture baselines). serverMBps is the server's link speed to
// that worker.
func (l *Ledger) ServerTransfer(i int, upBytes, downBytes int64, serverMBps float64) {
	l.sentBytes[i] += upBytes
	l.recvBytes[i] += downBytes
	l.serverRecv += upBytes
	l.serverSent += downBytes
	if serverMBps > 0 {
		l.roundTime[i] += float64(upBytes+downBytes)/(serverMBps*1e6) + l.LatencySec
	}
}

// EndRound closes the current round, adding its wall time (max over workers)
// to the cumulative total, and returns that wall time in seconds.
func (l *Ledger) EndRound() float64 {
	maxT := 0.0
	for i, t := range l.roundTime {
		if t > maxT {
			maxT = t
		}
		l.roundTime[i] = 0
	}
	l.totalTime += maxT
	l.rounds++
	return maxT
}

// Rounds returns the number of completed rounds.
func (l *Ledger) Rounds() int { return l.rounds }

// TotalTime returns the cumulative simulated communication time in seconds.
func (l *Ledger) TotalTime() float64 { return l.totalTime }

// WorkerBytes returns the cumulative bytes sent and received by worker i.
func (l *Ledger) WorkerBytes(i int) (sent, recv int64) {
	return l.sentBytes[i], l.recvBytes[i]
}

// ServerBytes returns the cumulative traffic through the central server
// (bytes sent plus received).
func (l *Ledger) ServerBytes() int64 { return l.serverSent + l.serverRecv }

// MaxWorkerTraffic returns the largest sent+received total over workers —
// the per-worker communication size the paper plots in Fig. 4.
func (l *Ledger) MaxWorkerTraffic() int64 {
	var m int64
	for i := range l.sentBytes {
		if t := l.sentBytes[i] + l.recvBytes[i]; t > m {
			m = t
		}
	}
	return m
}

// MeanWorkerTrafficMB returns the mean per-worker traffic in megabytes.
func (l *Ledger) MeanWorkerTrafficMB() float64 {
	var sum int64
	for i := range l.sentBytes {
		sum += l.sentBytes[i] + l.recvBytes[i]
	}
	return float64(sum) / float64(len(l.sentBytes)) / 1e6
}

// LedgerState is the ledger's serialized round-boundary checkpoint form
// (engine.LedgerCheckpointer): cumulative per-worker and server byte totals
// plus the simulated clock. Per-round scratch is zero at a boundary and is
// not captured.
type LedgerState struct {
	SentBytes, RecvBytes   []int64
	TotalTime              float64
	ServerSent, ServerRecv int64
	Rounds                 int
}

// CaptureState implements engine.LedgerCheckpointer. It must be called at a
// round boundary (after EndRound).
func (l *Ledger) CaptureState() ([]byte, error) {
	var buf bytes.Buffer
	st := LedgerState{
		SentBytes:  append([]int64(nil), l.sentBytes...),
		RecvBytes:  append([]int64(nil), l.recvBytes...),
		TotalTime:  l.totalTime,
		ServerSent: l.serverSent,
		ServerRecv: l.serverRecv,
		Rounds:     l.rounds,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState implements engine.LedgerCheckpointer: it restores totals into
// a freshly constructed ledger over the same environment.
func (l *Ledger) RestoreState(data []byte) error {
	var st LedgerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.SentBytes) != len(l.sentBytes) {
		return fmt.Errorf("netsim: ledger state for %d workers, have %d", len(st.SentBytes), len(l.sentBytes))
	}
	copy(l.sentBytes, st.SentBytes)
	copy(l.recvBytes, st.RecvBytes)
	l.totalTime = st.TotalTime
	l.serverSent = st.ServerSent
	l.serverRecv = st.ServerRecv
	l.rounds = st.Rounds
	return nil
}

// ConservationOK verifies that every byte sent by some party was received by
// another: workers' sent + server's sent == workers' received + server's
// received. A ledger sanity invariant checked by the integration tests.
func (l *Ledger) ConservationOK() bool {
	var s, r int64
	for i := range l.sentBytes {
		s += l.sentBytes[i]
		r += l.recvBytes[i]
	}
	return s+l.serverSent == r+l.serverRecv
}
