package graph

import (
	"testing"

	"sapspsgd/internal/rng"
)

// randomEdgeList draws a duplicate-free random edge list on n vertices.
func randomEdgeList(n, count int, r *rng.Source) []WeightedEdge {
	seen := map[[2]int]bool{}
	var edges []WeightedEdge
	for len(edges) < count {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, WeightedEdge{U: u, V: v, Weight: 1 + r.Float64()})
	}
	return edges
}

// TestNewFromEdgesMatchesAddEdge pins the bulk constructor's contract: the
// graph must behave exactly like one built by repeated AddEdge calls in the
// same edge order — identical neighbor order (which downstream DFS and
// matching draws depend on), connectivity, components, and HasEdge answers.
func TestNewFromEdgesMatchesAddEdge(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		const n = 50
		edges := randomEdgeList(n, 120, rng.New(seed))
		bulk := NewFromEdges(n, edges)
		inc := New(n)
		for _, e := range edges {
			inc.AddEdge(e.U, e.V)
		}
		for v := 0; v < n; v++ {
			bn, in := bulk.Neighbors(v), inc.Neighbors(v)
			if len(bn) != len(in) {
				t.Fatalf("seed %d vertex %d: %d neighbors, want %d", seed, v, len(bn), len(in))
			}
			for k := range bn {
				if bn[k] != in[k] {
					t.Fatalf("seed %d vertex %d: neighbor order %v, want %v", seed, v, bn, in)
				}
			}
		}
		if bulk.EdgeCount() != inc.EdgeCount() || bulk.IsConnected() != inc.IsConnected() {
			t.Fatalf("seed %d: edge count/connectivity diverged", seed)
		}
		bc, ic := bulk.Components(), inc.Components()
		if len(bc) != len(ic) {
			t.Fatalf("seed %d: %d components, want %d", seed, len(bc), len(ic))
		}
		for _, e := range edges {
			if !bulk.HasEdge(e.U, e.V) || !bulk.HasEdge(e.V, e.U) {
				t.Fatalf("seed %d: edge (%d,%d) missing", seed, e.U, e.V)
			}
		}
		if bulk.HasEdge(0, 0) {
			t.Fatal("self-loop reported present")
		}
	}
}

// TestNewFromEdgesRejectsBadEdges pins the panic contract shared with
// netsim.NewSparseBandwidth: self-loops and out-of-range endpoints are
// construction bugs, not data.
func TestNewFromEdgesRejectsBadEdges(t *testing.T) {
	for name, edges := range map[string][]WeightedEdge{
		"self-loop":    {{U: 2, V: 2}},
		"out of range": {{U: 0, V: 5}},
		"negative":     {{U: -1, V: 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			NewFromEdges(4, edges)
		}()
	}
}

// TestNewFromEdgesEmpty covers the degenerate shapes the planner hits under
// heavy thresholding: no edges, and n = 0.
func TestNewFromEdgesEmpty(t *testing.T) {
	g := NewFromEdges(3, nil)
	if g.EdgeCount() != 0 || g.IsConnected() {
		t.Fatalf("empty graph: %d edges, connected=%v", g.EdgeCount(), g.IsConnected())
	}
	if comps := g.Components(); len(comps) != 3 {
		t.Fatalf("empty graph has %d components, want 3", len(comps))
	}
	if NewFromEdges(0, nil).N != 0 {
		t.Fatal("n=0 graph")
	}
}
