package nn

import (
	"fmt"

	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Dropout randomly zeroes activations at the given rate during training and
// scales the survivors by 1/(1-rate) (inverted dropout), so inference is an
// identity pass.
type Dropout struct {
	Rate float64
	rnd  *rng.Source
	mask []bool
}

// NewDropout returns a dropout layer; rate must lie in [0, 1).
func NewDropout(rate float64, seed uint64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v", rate))
	}
	return &Dropout{Rate: rate, rnd: rng.New(seed)}
}

// Forward applies the mask in training mode; identity in inference.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.Rate == 0 {
		out := tensor.NewMatrix(x.Rows, x.Cols)
		copy(out.Data, x.Data)
		return out
	}
	if len(d.mask) != len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	scale := 1 / (1 - d.Rate)
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rnd.Float64() >= d.Rate {
			d.mask[i] = true
			out.Data[i] = v * scale
		} else {
			d.mask[i] = false
		}
	}
	return out
}

// Backward routes gradients through the surviving units with the same scale.
func (d *Dropout) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := tensor.NewMatrix(dout.Rows, dout.Cols)
	scale := 1 / (1 - d.Rate)
	for i, v := range dout.Data {
		if d.mask[i] {
			dx.Data[i] = v * scale
		}
	}
	return dx
}

// Params returns nothing: dropout is stateless (the RNG is not a parameter).
func (d *Dropout) Params() []Param { return nil }

var _ Layer = (*Dropout)(nil)

// AvgPool2D is average pooling with square window and equal stride.
type AvgPool2D struct {
	In       Shape
	K        int
	OutShape Shape
	rows     int
}

// NewAvgPool2D returns a K×K average pool with stride K; spatial dims must
// divide by K.
func NewAvgPool2D(in Shape, k int) *AvgPool2D {
	if in.H%k != 0 || in.W%k != 0 {
		panic(fmt.Sprintf("nn: AvgPool2D %v not divisible by %d", in, k))
	}
	return &AvgPool2D{In: in, K: k, OutShape: Shape{C: in.C, H: in.H / k, W: in.W / k}}
}

// Forward averages each window.
func (p *AvgPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	oH, oW := p.OutShape.H, p.OutShape.W
	inv := 1 / float64(p.K*p.K)
	out := tensor.NewMatrix(x.Rows, p.OutShape.Dim())
	p.rows = x.Rows
	for i := 0; i < x.Rows; i++ {
		in := x.Row(i)
		o := out.Row(i)
		for c := 0; c < p.In.C; c++ {
			chIn := in[c*p.In.H*p.In.W:]
			for oy := 0; oy < oH; oy++ {
				for ox := 0; ox < oW; ox++ {
					s := 0.0
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							s += chIn[(oy*p.K+ky)*p.In.W+ox*p.K+kx]
						}
					}
					o[(c*oH+oy)*oW+ox] = s * inv
				}
			}
		}
	}
	return out
}

// Backward spreads each output gradient uniformly over its window.
func (p *AvgPool2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	oH, oW := p.OutShape.H, p.OutShape.W
	inv := 1 / float64(p.K*p.K)
	dx := tensor.NewMatrix(p.rows, p.In.Dim())
	for i := 0; i < dout.Rows; i++ {
		dr := dout.Row(i)
		dxr := dx.Row(i)
		for c := 0; c < p.In.C; c++ {
			chDx := dxr[c*p.In.H*p.In.W:]
			for oy := 0; oy < oH; oy++ {
				for ox := 0; ox < oW; ox++ {
					g := dr[(c*oH+oy)*oW+ox] * inv
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							chDx[(oy*p.K+ky)*p.In.W+ox*p.K+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns nothing: pooling is stateless.
func (p *AvgPool2D) Params() []Param { return nil }

var _ Layer = (*AvgPool2D)(nil)
