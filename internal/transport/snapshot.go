package transport

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"sapspsgd/internal/engine"
	"sapspsgd/internal/obs"
)

// WorkerSnapshotVersion is the on-disk worker snapshot schema.
// LoadWorkerSnapshot rejects other versions so stale files fail loudly.
const WorkerSnapshotVersion = 1

// WorkerSnapshot is a worker process's persisted round-boundary state: the
// task spec (so `worker -resume` needs nothing but the file), the rank, the
// first round the state is valid for, and the rank's engine snapshot — model
// parameters plus normalization statistics, optimizer momentum, minibatch
// RNG cursors, and the encoder codec's state (error-feedback residual,
// quantizer RNG). A snapshot is written only for *committed* rounds (the
// coordinator has charged the ledger), so resuming from it can never replay
// or skip accounted work.
type WorkerSnapshot struct {
	Version   int
	Rank      int
	NextRound int
	Task      TaskSpec
	State     engine.RankSnapshot
}

// SaveWorkerSnapshot writes the snapshot atomically (temp file + rename in
// the destination directory), so a crash mid-write leaves the previous
// snapshot intact.
func SaveWorkerSnapshot(path string, s *WorkerSnapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("transport: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(s); err != nil {
		tmp.Close()
		return fmt.Errorf("transport: encode snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("transport: commit snapshot: %w", err)
	}
	obs.Current().TransportM().SnapshotWritesTotal.Inc()
	return nil
}

// LoadWorkerSnapshot reads a snapshot written by SaveWorkerSnapshot.
func LoadWorkerSnapshot(path string) (*WorkerSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("transport: open snapshot: %w", err)
	}
	defer f.Close()
	var s WorkerSnapshot
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("transport: decode snapshot %s: %w", path, err)
	}
	if s.Version != WorkerSnapshotVersion {
		return nil, fmt.Errorf("transport: snapshot %s is version %d, want %d", path, s.Version, WorkerSnapshotVersion)
	}
	return &s, nil
}
