package graph

import (
	"math"
	"sort"

	"sapspsgd/internal/rng"
)

// WeightedEdge is an undirected edge with a weight (bandwidth, in this
// repository's use).
type WeightedEdge struct {
	U, V   int
	Weight float64
}

// GreedyWeightedMatching returns a maximal matching built by scanning edges
// in descending weight order — a 1/2-approximation of the maximum weight
// matching, good enough for bandwidth preference and cheap.
//
// When rnd is nil the scan order is exact descending weight (deterministic).
// With rnd, two randomizations are applied so that *every* candidate edge
// has positive selection probability across rounds — without this, a purely
// deterministic weight order can lock consecutive rounds into alternating
// between two fixed matchings whose union is disconnected, making the second
// eigenvalue of E[WᵀW] exactly 1 and breaking Assumption 3 (the repository's
// spectral tests reproduce this failure mode):
//
//  1. weights are compared by ~25% buckets, with ties in shuffled order, and
//  2. each edge is skipped with small probability on the first pass
//     (reconsidered afterwards, so the seed matching stays maximal).
func GreedyWeightedMatching(n int, edges []WeightedEdge, rnd *rng.Source) Matching {
	sorted := make([]WeightedEdge, len(edges))
	copy(sorted, edges)
	if rnd != nil {
		rnd.Shuffle(len(sorted), func(i, j int) { sorted[i], sorted[j] = sorted[j], sorted[i] })
		sort.SliceStable(sorted, func(i, j int) bool {
			return weightBucket(sorted[i].Weight) > weightBucket(sorted[j].Weight)
		})
	} else {
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Weight > sorted[j].Weight })
	}

	m := make(Matching, n)
	for i := range m {
		m[i] = -1
	}
	const skipProb = 0.1
	var skipped []WeightedEdge
	take := func(e WeightedEdge) {
		if e.U == e.V || e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return
		}
		if m[e.U] == -1 && m[e.V] == -1 {
			m[e.U] = e.V
			m[e.V] = e.U
		}
	}
	for _, e := range sorted {
		if rnd != nil && rnd.Float64() < skipProb {
			skipped = append(skipped, e)
			continue
		}
		take(e)
	}
	for _, e := range skipped {
		take(e)
	}
	return m
}

// weightBucket maps a weight onto a coarse logarithmic scale (~25% bands):
// weights in the same band count as equal for sorting, so their relative
// order is randomized by the pre-shuffle.
func weightBucket(w float64) int {
	if w <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log(w) / math.Log(1.25)))
}

// BandwidthAwareMaximumMatching computes a maximum cardinality matching that
// prefers high-weight edges: a greedy weighted matching seeds the solution,
// then Edmonds augmentation completes it to maximum cardinality (never
// un-matching a seeded vertex). This realizes the paper's "maximum match
// using the filtered bandwidth matrix B*" with its bandwidth preference.
// The candidate list must be duplicate-free (every caller enumerates each
// link once), which lets the graph build map-free in O(E).
func BandwidthAwareMaximumMatching(n int, edges []WeightedEdge, rnd *rng.Source) Matching {
	g := NewFromEdges(n, edges)
	seed := GreedyWeightedMatching(n, edges, rnd)
	return AugmentToMaximum(g, seed, rnd)
}

// MatchingWeight sums the weights of matched pairs under the weight lookup.
func MatchingWeight(m Matching, weight func(u, v int) float64) float64 {
	total := 0.0
	for v, p := range m {
		if p > v {
			total += weight(v, p)
		}
	}
	return total
}

// MinMatchedWeight returns the minimum edge weight used by the matching, or 0
// if the matching is empty. The slowest matched link bounds the round time in
// synchronous gossip.
func MinMatchedWeight(m Matching, weight func(u, v int) float64) float64 {
	first := true
	minW := 0.0
	for v, p := range m {
		if p > v {
			w := weight(v, p)
			if first || w < minW {
				minW = w
				first = false
			}
		}
	}
	return minW
}
