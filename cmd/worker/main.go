// Command worker runs one training peer (Algorithm 2) as a TCP client: it
// registers with the coordinator, receives the task spec and its rank,
// regenerates its data shard locally, and trains — exchanging sparsified
// models peer-to-peer each round.
//
// Fault tolerance: with -snapshot set the worker persists its committed
// round-boundary state (model, optimizer momentum, data-stream cursors,
// codec residuals) after every round. If the process is killed — by the
// coordinator's fault schedule or for real — restart it with the same
// -snapshot path plus -resume and it rejoins the training from the
// snapshot, continuing the fleet's trajectory bit-identically to a run
// where it had merely been excluded from the missed rounds. A fault-injected
// kill exits with status 3 so supervisors can distinguish it from errors.
package main

import (
	"errors"
	"flag"
	"log"
	"os"

	"sapspsgd/internal/transport"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "127.0.0.1:7000", "coordinator address")
		peerAddr    = flag.String("peer-addr", "127.0.0.1:0", "address to listen on for peer exchanges")
		snapshot    = flag.String("snapshot", "", "path for the round-boundary state snapshot (enables crash recovery)")
		resume      = flag.Bool("resume", false, "rejoin an in-flight training from the -snapshot file")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	wc := &transport.WorkerClient{SnapshotPath: *snapshot, Resume: *resume}
	if !*quiet {
		wc.Logf = log.Printf
	}
	if _, err := wc.Run(*coordinator, *peerAddr); err != nil {
		if errors.Is(err, transport.ErrCrashed) {
			log.Printf("worker %d: %v", wc.Rank(), err)
			os.Exit(3)
		}
		log.Fatal(err)
	}
	log.Printf("worker %d finished", wc.Rank())
}
