package engine

import (
	"fmt"
	"math/bits"

	"sapspsgd/internal/core"
)

// PhasedTransport is the one-way data plane of the sharded runtime: Send
// deposits a payload into the from→to FIFO without waiting for a reciprocal
// payload, and Recv takes the oldest deposit from the peer→self FIFO.
// *memtransport.Hub implements it (and therefore so does the simtransport
// backend, which returns a Hub).
//
// The sharded runtime only ever calls Recv for a payload deposited in a
// strictly earlier, barrier-separated phase, so a conforming phase program
// never blocks in Recv.
type PhasedTransport interface {
	Send(round, from, to int, payload []float64) error
	Recv(round, from, to int) ([]float64, error)
}

// PhasedPattern is the optional Pattern extension the sharded runtime
// executes: the round split into barrier-separated phases. Within a phase a
// rank may compute, encode, decode, merge, and Send; every Recv must consume
// a deposit made in an earlier phase (the barrier is the happens-before
// edge). All built-in patterns implement PhasedPattern with per-rank
// operation sequences identical to their blocking RunRound, which is what
// makes the sharded runtime bit-identical to the goroutine-per-node pool.
type PhasedPattern interface {
	Pattern
	// PhaseCount returns the number of barrier-separated phases one round
	// needs over n nodes under plan.
	PhaseCount(plan core.RoundPlan, n int) int
	// RunPhase executes rank ctx.Self's slice of phase p. st is the rank's
	// private in-flight state, zeroed by the runtime at round start.
	RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error
}

// PhaseState carries one rank's in-flight round state across the round's
// phases. The sharded runtime owns one per rank; patterns use the private
// fields as scratch.
type PhaseState struct {
	// Rep accumulates the rank's NodeReport across phases.
	Rep NodeReport

	skip   bool      // round finished early (e.g. unmatched pairwise rank)
	sent   int64     // wire bytes of the in-flight outbound payload
	vec    []float64 // running sum (collective / all-gather)
	msgs   []PeerMsg // pending merge messages (neighborhood)
	lo, hi int       // owned segment (halving/doubling)
}

// ---------------------------------------------------------------------------
// Pairwise

// PhaseCount implements PhasedPattern: encode+send, then recv+merge.
func (Pairwise) PhaseCount(core.RoundPlan, int) int { return 2 }

// RunPhase implements PhasedPattern.
func (Pairwise) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	peer := -1
	if ctx.Self < len(ctx.Plan.Peer) {
		peer = ctx.Plan.Peer[ctx.Self]
	}
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep = NodeReport{Loss: loss, Trained: trained(loss)}
		if peer < 0 {
			st.skip = true
			return nil
		}
		words, err := codecs[ctx.Self].Encode(ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words)
		st.Rep.PayloadLen = len(words)
		return tr.Send(ctx.Round, ctx.Self, peer, words)
	case 1:
		if st.skip {
			return nil
		}
		peerWords, err := tr.Recv(ctx.Round, ctx.Self, peer)
		if err != nil {
			return err
		}
		vals, err := codecs[peer].Decode(ctx, peerWords)
		if err != nil {
			return err
		}
		recv := codecs[peer].WireBytes(peerWords)
		st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: peer, Sent: st.sent, Recv: recv})
		return node.Merge(ctx, []PeerMsg{{From: peer, Vals: vals, Words: peerWords, Bytes: recv}})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Neighborhood

// PhaseCount implements PhasedPattern: broadcast, then gather+merge.
func (p *Neighborhood) PhaseCount(core.RoundPlan, int) int { return 2 }

// RunPhase implements PhasedPattern.
func (p *Neighborhood) RunPhase(ctx RoundContext, phase int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	peers := p.adj[ctx.Self]
	switch phase {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep = NodeReport{Loss: loss, Trained: trained(loss)}
		if len(peers) == 0 {
			st.skip = true
			return nil
		}
		words, err := codecs[ctx.Self].Encode(ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words)
		st.Rep.PayloadLen = len(words)
		st.msgs = st.msgs[:0]
		if p.includeSelf {
			vals, err := codecs[ctx.Self].Decode(ctx, words)
			if err != nil {
				return err
			}
			st.msgs = append(st.msgs, PeerMsg{From: ctx.Self, Vals: vals, Words: words, Bytes: st.sent})
		}
		for _, q := range peers {
			if err := tr.Send(ctx.Round, ctx.Self, q, words); err != nil {
				return err
			}
		}
		return nil
	case 1:
		if st.skip {
			return nil
		}
		for _, q := range peers {
			w, err := tr.Recv(ctx.Round, ctx.Self, q)
			if err != nil {
				return err
			}
			vals, err := codecs[q].Decode(ctx, w)
			if err != nil {
				return err
			}
			b := codecs[q].WireBytes(w)
			st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: q, Sent: st.sent, Recv: b})
			st.msgs = append(st.msgs, PeerMsg{From: q, Vals: vals, Words: w, Bytes: b})
		}
		return node.Merge(ctx, st.msgs)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Hub

// PhaseCount implements PhasedPattern: server downlink; worker
// pull-train-push; server uplink merge.
func (Hub) PhaseCount(core.RoundPlan, int) int { return 3 }

// RunPhase implements PhasedPattern. The runtime never calls RunPhase for an
// inactive rank, so a worker reaching here is always chosen.
func (h Hub) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	if ctx.Self == h.Server {
		return h.serverPhase(ctx, p, node, codecs, tr, st)
	}
	return h.workerPhase(ctx, p, node, codecs, tr, st)
}

func (h Hub) serverPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep = NodeReport{Loss: loss, Trained: trained(loss)}
		words, err := codecs[ctx.Self].Encode(ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words) // downlink bytes
		st.Rep.PayloadLen = len(words)
		for _, w := range h.chosen(ctx.Plan, ctx.N) {
			if err := tr.Send(ctx.Round, ctx.Self, w, words); err != nil {
				return err
			}
		}
		return nil
	case 2:
		chosen := h.chosen(ctx.Plan, ctx.N)
		msgs := make([]PeerMsg, 0, len(chosen))
		for _, w := range chosen {
			uw, err := tr.Recv(ctx.Round, ctx.Self, w)
			if err != nil {
				return err
			}
			vals, err := codecs[w].Decode(ctx, uw)
			if err != nil {
				return err
			}
			b := codecs[w].WireBytes(uw)
			st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: w, Sent: st.sent, Recv: b})
			msgs = append(msgs, PeerMsg{From: w, Vals: vals, Words: uw, Bytes: b})
		}
		return node.Merge(ctx, msgs)
	}
	return nil
}

func (h Hub) workerPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	if p != 1 {
		return nil
	}
	downWords, err := tr.Recv(ctx.Round, ctx.Self, h.Server)
	if err != nil {
		return err
	}
	vals, err := codecs[h.Server].Decode(ctx, downWords)
	if err != nil {
		return err
	}
	down := codecs[h.Server].WireBytes(downWords)
	if err := node.Merge(ctx, []PeerMsg{{From: h.Server, Vals: vals, Words: downWords, Bytes: down}}); err != nil {
		return err
	}
	loss, out, err := node.Compute(ctx)
	if err != nil {
		return err
	}
	st.Rep = NodeReport{Loss: loss, Trained: trained(loss)}
	words, err := codecs[ctx.Self].Encode(ctx, out)
	if err != nil {
		return err
	}
	up := codecs[ctx.Self].WireBytes(words)
	st.Rep.PayloadLen = len(words)
	st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: h.Server, Sent: up, Recv: down})
	return tr.Send(ctx.Round, ctx.Self, h.Server, words)
}

// ---------------------------------------------------------------------------
// Shared phased all-gather halves (AllGather, non-power-of-two Collective)

// phaseSendAll deposits words to every other rank in ascending order.
func phaseSendAll(ctx RoundContext, tr PhasedTransport, words []float64) error {
	for q := 0; q < ctx.N; q++ {
		if q == ctx.Self {
			continue
		}
		if err := tr.Send(ctx.Round, ctx.Self, q, words); err != nil {
			return err
		}
	}
	return nil
}

// phaseRecvSumAll drains every other rank's deposit in ascending order,
// decoding and accumulating into vec — the receive half of sumAllGather,
// with identical per-rank operation order.
func phaseRecvSumAll(ctx RoundContext, codecs []Codec, tr PhasedTransport, st *PhaseState, vec []float64) error {
	for q := 0; q < ctx.N; q++ {
		if q == ctx.Self {
			continue
		}
		pw, err := tr.Recv(ctx.Round, ctx.Self, q)
		if err != nil {
			return err
		}
		vals, err := codecs[q].Decode(ctx, pw)
		if err != nil {
			return err
		}
		if len(vals) != len(vec) {
			return fmt.Errorf("engine: all-gather payload of %d values, want %d", len(vals), len(vec))
		}
		st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: q, Sent: st.sent, Recv: codecs[q].WireBytes(pw)})
		for j, v := range vals {
			vec[j] += v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// AllGather

// PhaseCount implements PhasedPattern: broadcast, then gather+sum+merge.
func (AllGather) PhaseCount(core.RoundPlan, int) int { return 2 }

// RunPhase implements PhasedPattern.
func (AllGather) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep = NodeReport{Loss: loss, Trained: trained(loss)}
		words, err := codecs[ctx.Self].Encode(ctx, out)
		if err != nil {
			return err
		}
		st.Rep.PayloadLen = len(words)
		own, err := codecs[ctx.Self].Decode(ctx, words)
		if err != nil {
			return err
		}
		st.vec = append([]float64(nil), own...)
		st.sent = codecs[ctx.Self].WireBytes(words)
		return phaseSendAll(ctx, tr, words)
	case 1:
		if err := phaseRecvSumAll(ctx, codecs, tr, st, st.vec); err != nil {
			return err
		}
		return node.Merge(ctx, []PeerMsg{{From: -1, Vals: st.vec}})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Collective

// PhaseCount implements PhasedPattern. Power-of-two fleets run the butterfly
// (2·log₂n exchange steps, each split across adjacent phases: the deposit in
// phase p, the matching receive in phase p+1), other sizes the two-phase
// exact all-gather, and a single node trains and merges in one phase.
func (Collective) PhaseCount(_ core.RoundPlan, n int) int {
	if n <= 1 {
		return 1
	}
	if n&(n-1) == 0 {
		q := bits.Len(uint(n)) - 1
		return 2*q + 1
	}
	return 2
}

// RunPhase implements PhasedPattern.
func (c Collective) RunPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	if ctx.N > 1 && ctx.N&(ctx.N-1) == 0 {
		return c.butterflyPhase(ctx, p, node, codecs, tr, st)
	}
	switch p {
	case 0:
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep = NodeReport{Loss: loss, Trained: trained(loss), PayloadLen: len(out)}
		st.vec = append([]float64(nil), out...)
		if ctx.N == 1 {
			return node.Merge(ctx, []PeerMsg{{From: -1, Vals: st.vec}})
		}
		words, err := codecs[ctx.Self].Encode(ctx, out)
		if err != nil {
			return err
		}
		st.sent = codecs[ctx.Self].WireBytes(words)
		return phaseSendAll(ctx, tr, words)
	case 1:
		if err := phaseRecvSumAll(ctx, codecs, tr, st, st.vec); err != nil {
			return err
		}
		return node.Merge(ctx, []PeerMsg{{From: -1, Vals: st.vec}})
	}
	return nil
}

// sendChunk encodes a copy of vec[lo:hi] and deposits it with partner — the
// send half of the blocking path's exchangeChunk, same copies, same order.
func (st *PhaseState) sendChunk(ctx RoundContext, codecs []Codec, tr PhasedTransport, lo, hi, partner int) error {
	chunk := append([]float64(nil), st.vec[lo:hi]...)
	words, err := codecs[ctx.Self].Encode(ctx, chunk)
	if err != nil {
		return err
	}
	wcopy := append([]float64(nil), words...)
	st.sent = codecs[ctx.Self].WireBytes(wcopy)
	return tr.Send(ctx.Round, ctx.Self, partner, wcopy)
}

// recvChunk drains partner's deposit and decodes it — the receive half of
// exchangeChunk. The flow pairs this receive with the bytes of the chunk
// sent to the same partner one phase earlier.
func (st *PhaseState) recvChunk(ctx RoundContext, codecs []Codec, tr PhasedTransport, partner int) ([]float64, error) {
	pw, err := tr.Recv(ctx.Round, ctx.Self, partner)
	if err != nil {
		return nil, err
	}
	vals, err := codecs[partner].Decode(ctx, pw)
	if err != nil {
		return nil, err
	}
	st.Rep.Flows = append(st.Rep.Flows, Flow{Peer: partner, Sent: st.sent, Recv: codecs[partner].WireBytes(pw)})
	return vals, nil
}

// rsGeometry is reduce-scatter step k's exchange geometry given the owned
// segment [lo, hi) before the step.
func rsGeometry(self, n, k, lo, hi int) (partner, sendLo, sendHi, keepLo, keepHi int) {
	mask := n >> (k + 1)
	partner = self ^ mask
	mid := lo + (hi-lo)/2
	sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
	if self&mask != 0 {
		sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
	}
	return
}

// butterflyPhase is the power-of-two halving/doubling all-reduce split into
// 2q+1 phases: phase 0 computes and deposits reduce-scatter step 0; phase
// p ∈ [1, q] drains step p-1, accumulates, and deposits the next step (the
// first all-gather chunk at p == q); phase q+g drains gather step g-1 and
// deposits step g; phase 2q drains the last chunk and merges the sum.
func (Collective) butterflyPhase(ctx RoundContext, p int, node Node, codecs []Codec, tr PhasedTransport, st *PhaseState) error {
	self, n := ctx.Self, ctx.N
	q := bits.Len(uint(n)) - 1
	if p == 0 {
		loss, out, err := node.Compute(ctx)
		if err != nil {
			return err
		}
		st.Rep = NodeReport{Loss: loss, Trained: trained(loss), PayloadLen: len(out)}
		st.vec = append([]float64(nil), out...)
		st.lo, st.hi = 0, len(st.vec)
		partner, sendLo, sendHi, _, _ := rsGeometry(self, n, 0, st.lo, st.hi)
		return st.sendChunk(ctx, codecs, tr, sendLo, sendHi, partner)
	}
	D := len(st.vec)
	if p <= q {
		// Drain reduce-scatter step p-1.
		k := p - 1
		partner, _, _, keepLo, keepHi := rsGeometry(self, n, k, st.lo, st.hi)
		vals, err := st.recvChunk(ctx, codecs, tr, partner)
		if err != nil {
			return err
		}
		if len(vals) != keepHi-keepLo {
			return fmt.Errorf("engine: collective chunk of %d values, want %d", len(vals), keepHi-keepLo)
		}
		for i, v := range vals {
			st.vec[keepLo+i] += v
		}
		st.lo, st.hi = keepLo, keepHi
		if p < q {
			// Deposit reduce-scatter step p.
			partner, sendLo, sendHi, _, _ := rsGeometry(self, n, p, st.lo, st.hi)
			return st.sendChunk(ctx, codecs, tr, sendLo, sendHi, partner)
		}
		// Deposit all-gather step 0.
		partner = self ^ 1
		myLo, myHi := segAfter(self, q, D, n)
		return st.sendChunk(ctx, codecs, tr, myLo, myHi, partner)
	}
	// Drain all-gather step g-1.
	g := p - q
	partner := self ^ (1 << (g - 1))
	pLo, pHi := segAfter(partner, q-(g-1), D, n)
	vals, err := st.recvChunk(ctx, codecs, tr, partner)
	if err != nil {
		return err
	}
	if len(vals) != pHi-pLo {
		return fmt.Errorf("engine: collective gather chunk of %d values, want %d", len(vals), pHi-pLo)
	}
	copy(st.vec[pLo:pHi], vals)
	if g < q {
		// Deposit all-gather step g.
		partner := self ^ (1 << g)
		myLo, myHi := segAfter(self, q-g, D, n)
		return st.sendChunk(ctx, codecs, tr, myLo, myHi, partner)
	}
	return node.Merge(ctx, []PeerMsg{{From: -1, Vals: st.vec}})
}

// Compile-time checks: every built-in pattern supports the sharded runtime.
var (
	_ PhasedPattern = Pairwise{}
	_ PhasedPattern = (*Neighborhood)(nil)
	_ PhasedPattern = Hub{}
	_ PhasedPattern = Collective{}
	_ PhasedPattern = AllGather{}
)
