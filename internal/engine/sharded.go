package engine

import (
	"fmt"
	"time"

	"sapspsgd/internal/core"
	"sapspsgd/internal/obs"
)

// shardRunner is the sharded phased runtime: ranks are partitioned into
// contiguous shards, each served by one long-lived executor goroutine. A
// round executes as PhaseCount barrier-separated phases; within a phase
// every shard runs its ranks' RunPhase slices serially in ascending rank
// order while shards proceed concurrently. Determinism does not depend on
// the shard count:
//
//   - each rank's floating-point work is confined to its own state and runs
//     in the same per-rank operation order as the blocking pool (the
//     PhasedPattern contract), so trajectories are bit-identical;
//   - cross-rank data moves only through the transport's keyed FIFOs, and
//     every Recv consumes a deposit from an earlier phase (the phase barrier
//     is the happens-before edge);
//   - reports are collected rank-indexed and the Driver charges the ledger
//     from the rank-ordered pair aggregation, so traffic accounting is
//     byte-identical regardless of completion order.
//
// Synchronization is minimized three ways (DESIGN.md, performance chapter):
// adjacent phases with no cross-rank dependency fuse into one dispatch (per
// the pattern's PhaseDeps — and with a single shard every boundary fuses,
// because one executor already runs the phases in the barriered order);
// phases naming a participant interval (PhaseParticipants) are dispatched
// only to the shards that intersect it; and each shard hands its ranks'
// reports over in one batch as part of its final command of the round.
// Per-round scratch (phase states, contexts, reports) is pooled, so a
// steady-state round performs no heap allocations.
type shardRunner struct {
	n       int
	pattern PhasedPattern
	nodes   []Node
	codecs  []Codec
	tr      PhasedTransport

	cmds []chan shardCmd // one per shard
	done chan error      // one message per shard per dispatched command

	// plan is the round's control message, written by runRound before the
	// first dispatch (the command-channel send is the happens-before edge
	// that publishes it to the shard goroutines).
	plan core.RoundPlan

	// Per-round scratch, written only between barriers or by the owning
	// shard's ranks.
	states  []PhaseState
	ctxs    []RoundContext
	active  []bool
	reports []NodeReport

	// Dispatch scratch, coordinator-owned.
	deps     []bool
	runs     []phaseRun
	firstRun []int // per shard: index into runs of its first dispatch, -1 if none
	lastRun  []int // per shard: index of its last dispatch
	bounds   []int // shard i covers ranks [bounds[i], bounds[i+1])
	agg      flowAgg

	// metrics is the coordinator-side observability sink (zero value =
	// disabled), captured once at construction.
	metrics obs.EngineMetrics
}

// shardCmd is one dispatch to a shard: execute phases [lo, hi) over the
// shard's ranks. first marks the shard's first command of the round (reset
// per-rank state before executing); last marks its final one (publish the
// shard's reports after executing).
type shardCmd struct {
	lo, hi      int
	first, last bool
}

// phaseRun is a maximal fused range of phases [lo, hi) with the union of the
// phases' participant ranks [rankLo, rankHi).
type phaseRun struct {
	lo, hi         int
	rankLo, rankHi int
}

// newShardRunner spawns shards executor goroutines over the rank space.
// shards is clamped to [1, n].
func newShardRunner(nodes []Node, codecs []Codec, pat PhasedPattern, tr PhasedTransport, shards int) *shardRunner {
	n := len(nodes)
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	s := &shardRunner{
		n:        n,
		pattern:  pat,
		nodes:    nodes,
		codecs:   codecs,
		tr:       tr,
		cmds:     make([]chan shardCmd, shards),
		done:     make(chan error, shards),
		metrics:  obs.Current().EngineM(),
		states:   make([]PhaseState, n),
		ctxs:     make([]RoundContext, n),
		active:   make([]bool, n),
		reports:  make([]NodeReport, n),
		firstRun: make([]int, shards),
		lastRun:  make([]int, shards),
		bounds:   make([]int, shards+1),
	}
	for i := range s.cmds {
		s.bounds[i] = i * n / shards
		s.cmds[i] = make(chan shardCmd)
		go s.shardLoop(i*n/shards, (i+1)*n/shards, s.cmds[i])
	}
	s.bounds[shards] = n
	return s
}

// shardLoop serves one shard's ranks command by command until the command
// channel closes. It deliberately holds no reference to the Engine, so an
// abandoned engine stays collectable.
func (s *shardRunner) shardLoop(lo, hi int, cmds <-chan shardCmd) {
	for cmd := range cmds {
		if cmd.first {
			for r := lo; r < hi; r++ {
				s.states[r].reset()
				s.ctxs[r] = RoundContext{Round: s.plan.Round, Seed: s.plan.Seed, Self: r, N: s.n, Plan: s.plan}
				s.active[r] = s.plan.Active == nil || s.plan.Active[r]
			}
		}
		var firstErr error
		for phase := cmd.lo; phase < cmd.hi; phase++ {
			for r := lo; r < hi; r++ {
				if !s.active[r] {
					continue
				}
				if err := s.pattern.RunPhase(s.ctxs[r], phase, s.nodes[r], s.codecs, s.tr, &s.states[r]); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("engine: node %d: %w", r, err)
				}
			}
		}
		if cmd.last {
			// Batched report handoff: the shard publishes all its ranks'
			// reports with its final done signal instead of the coordinator
			// walking every rank afterwards.
			for r := lo; r < hi; r++ {
				s.reports[r] = s.states[r].Rep
			}
		}
		s.done <- firstErr
	}
}

// planRuns groups the round's phases into maximal fused runs: a barrier is
// kept between adjacent phases only when the pattern declares a cross-rank
// dependency there (PhaseDeps; absent = every boundary) AND more than one
// shard exists — a single executor already runs fused phases in exactly the
// barriered order, so one shard always collapses the round into one command.
func (s *shardRunner) planRuns(plan core.RoundPlan, phases int) {
	s.deps = s.deps[:0]
	if len(s.cmds) > 1 {
		if f, ok := s.pattern.(PhaseFuser); ok {
			s.deps = f.PhaseDeps(plan, s.n, s.deps)
		} else {
			for p := 0; p < phases-1; p++ {
				s.deps = append(s.deps, true)
			}
		}
	}
	s.runs = s.runs[:0]
	lo := 0
	for p := 0; p < phases; p++ {
		if p == phases-1 || (p < len(s.deps) && s.deps[p]) {
			run := phaseRun{lo: lo, hi: p + 1, rankLo: s.n, rankHi: 0}
			for q := run.lo; q < run.hi; q++ {
				pl, ph := 0, s.n
				if pp, ok := s.pattern.(PhaseParticipants); ok {
					pl, ph = pp.PhaseRanks(plan, s.n, q)
				}
				run.rankLo = min(run.rankLo, pl)
				run.rankHi = max(run.rankHi, ph)
			}
			s.runs = append(s.runs, run)
			lo = p + 1
		}
	}
}

// runRound executes one validated plan across the shards. An error aborts
// the remaining phases and leaves the engine unusable (undelivered deposits
// may linger in the transport); in-process patterns over valid plans cannot
// fail, so this only matters for defective custom codecs or transports.
// The returned report's Pairs slice aliases pooled storage valid until the
// next runRound call — the Driver consumes it before planning the next
// round.
func (s *shardRunner) runRound(plan core.RoundPlan) (ControlReport, error) {
	phases := s.pattern.PhaseCount(plan, s.n)
	s.plan = plan
	s.planRuns(plan, phases)

	// Per-shard first/last dispatch indices; shards outside every run's
	// participant interval are never dispatched, so the coordinator zeroes
	// their ranks' reports itself.
	for i := range s.cmds {
		s.firstRun[i], s.lastRun[i] = -1, -1
		for ri, run := range s.runs {
			if run.rankLo < s.bounds[i+1] && s.bounds[i] < run.rankHi {
				if s.firstRun[i] < 0 {
					s.firstRun[i] = ri
				}
				s.lastRun[i] = ri
			}
		}
		if s.firstRun[i] < 0 {
			for r := s.bounds[i]; r < s.bounds[i+1]; r++ {
				s.reports[r] = NodeReport{}
			}
		}
	}

	for ri, run := range s.runs {
		var start time.Time
		if s.metrics.Enabled() {
			start = time.Now()
		}
		dispatched := 0
		for i, c := range s.cmds {
			if ri < s.firstRun[i] || ri > s.lastRun[i] {
				continue
			}
			c <- shardCmd{lo: run.lo, hi: run.hi, first: ri == s.firstRun[i], last: ri == s.lastRun[i]}
			dispatched++
		}
		var firstErr error
		for k := 0; k < dispatched; k++ {
			if err := <-s.done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return ControlReport{}, firstErr
		}
		if s.metrics.Enabled() {
			s.metrics.PhaseSeconds.Observe(time.Since(start).Seconds())
		}
	}
	return buildReport(&s.agg, s.reports), nil
}
