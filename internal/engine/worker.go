package engine

// Gate bounds the engine's CPU-heavy sections (local SGD, encode/decode,
// merge) without serializing the network exchanges between them: a pattern
// holds the gate while computing, releases it before blocking in
// Transport.Exchange, and re-acquires it to merge. This is what lets a
// bounded pool drive many more workers than cores with no rendezvous
// deadlock.
type Gate interface {
	Acquire()
	Release()
}

// NewGate returns a counting-semaphore Gate admitting at most limit
// concurrent holders. limit < 1 panics.
func NewGate(limit int) Gate {
	if limit < 1 {
		panic("engine: gate limit < 1")
	}
	return semGate(make(chan struct{}, limit))
}

type semGate chan struct{}

func (g semGate) Acquire() { g <- struct{}{} }
func (g semGate) Release() { <-g }

// nopGate is the ungated variant used by single-worker deployments (one
// process per worker, e.g. the TCP client), where the OS already schedules.
type nopGate struct{}

func (nopGate) Acquire() {}
func (nopGate) Release() {}

// WorkerRound executes one node's full round — local compute, the pattern's
// encoded exchanges over the transport, and the merge. This is the single
// canonical implementation of the worker round: every backend (in-memory,
// simulated-bandwidth, TCP) funnels through it.
//
// pat nil defaults to the pairwise matched-gossip pattern; gate nil runs
// ungated. codecs is the shared per-rank codec table: the node encodes with
// codecs[ctx.Self] and decodes inbound payloads with the sender's codec.
func WorkerRound(node Node, pat Pattern, codecs []Codec, tr Transport, gate Gate, ctx RoundContext) (NodeReport, error) {
	if pat == nil {
		pat = Pairwise{}
	}
	if gate == nil {
		gate = nopGate{}
	}
	return pat.RunRound(ctx, node, codecs, tr, gate)
}
