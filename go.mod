module sapspsgd

go 1.24
