// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the index). Each benchmark runs a
// CPU-scaled version of the corresponding experiment and reports its
// headline numbers as benchmark metrics; `go run ./cmd/sapsbench` prints the
// full rows/series. The bench-scale runs use fewer rounds and workers than
// the paper-scale configs in internal/experiments so the whole suite
// completes in minutes on a laptop.
package sapspsgd_test

import (
	"io"
	"runtime"
	"testing"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/experiments"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/scenario"
	"sapspsgd/internal/spectral"
	"sapspsgd/internal/tensor"
	"sapspsgd/internal/trainer"
)

// benchWorkload shrinks a paper workload to bench scale.
func benchWorkload(w experiments.Workload, rounds int) experiments.Workload {
	w.Rounds = rounds
	w.TrainSamples = 1024
	w.ValidSamples = 256
	// Bench models are ~40k params; scale the most aggressive ratios so the
	// sparsifiers still transmit a meaningful number of coordinates.
	w.Ratios = experiments.Ratios{TopK: 200, SFed: 50, DCD: 4, SAPS: 50}
	return w
}

// runSuite executes the 7-algorithm convergence suite at bench scale and
// reports the SAPS metrics against the best baseline. The suites are the
// long pole of the benchmark set, so they honor -short (see DESIGN.md §6:
// `go test -short ./...` is the quick tier-1 sweep, the full run exercises
// everything).
func runSuite(b *testing.B, w experiments.Workload, rounds, n int) []trainer.Result {
	b.Helper()
	if testing.Short() {
		b.Skip("convergence suite skipped in -short mode")
	}
	var results []trainer.Result
	for i := 0; i < b.N; i++ {
		suite := experiments.ConvergenceSuite{
			Workload:  benchWorkload(w, rounds),
			N:         n,
			Seed:      uint64(7 + i),
			EvalEvery: rounds / 8,
		}
		var err error
		results, err = suite.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return results
}

func reportSAPS(b *testing.B, results []trainer.Result) {
	b.Helper()
	for _, r := range results {
		if r.Algorithm == "SAPS-PSGD" {
			f := r.Final()
			b.ReportMetric(f.ValAcc*100, "saps-acc-%")
			b.ReportMetric(f.TrafficMB, "saps-traffic-MB")
			b.ReportMetric(f.TimeSec, "saps-commtime-s")
		}
		if r.Algorithm == "D-PSGD" {
			b.ReportMetric(r.Final().TrafficMB, "dpsgd-traffic-MB")
		}
	}
}

// --- Table I: analytic communication cost model -----------------------------

func BenchmarkTable1CostModel(b *testing.B) {
	p := experiments.NewCostParams(32, 6653628, 100, 1000, 2)
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(p)
		t.WriteMarkdown(io.Discard)
	}
	costs := experiments.WorkerCostValues(p)
	b.ReportMetric(costs["SAPS-PSGD"]*4/1e6, "saps-MB")
	b.ReportMetric(costs["D-PSGD"]*4/1e6, "dpsgd-MB")
}

// --- Fig. 1: the 14-city bandwidth matrix ----------------------------------

func BenchmarkFig1BandwidthMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1Table().WriteMarkdown(io.Discard)
	}
	bw := netsim.FourteenCities()
	b.ReportMetric(bw.MeanBandwidth(), "mean-MBps")
}

// --- Fig. 3 + Table III: convergence, 7 algorithms, 3 models ---------------

func BenchmarkFig3ConvergenceMNIST(b *testing.B) {
	results := runSuite(b, experiments.MNISTWorkload(), 64, 8)
	reportSAPS(b, results)
}

func BenchmarkFig3ConvergenceCIFAR(b *testing.B) {
	results := runSuite(b, experiments.CIFARWorkload(), 64, 8)
	reportSAPS(b, results)
}

func BenchmarkFig3ConvergenceResNet(b *testing.B) {
	results := runSuite(b, experiments.ResNetWorkload(), 48, 8)
	reportSAPS(b, results)
}

// --- Fig. 4: accuracy vs communication size --------------------------------

func BenchmarkFig4TrafficMNIST(b *testing.B) {
	results := runSuite(b, experiments.MNISTWorkload(), 64, 8)
	experiments.WriteFig4(io.Discard, results)
	reportSAPS(b, results)
}

// --- Fig. 5: bandwidth utilization ------------------------------------------

func BenchmarkFig5Bandwidth14Cities(b *testing.B) {
	var series map[string][]float64
	for i := 0; i < b.N; i++ {
		series = experiments.Fig5Fourteen(400, uint64(3+i))
	}
	b.ReportMetric(experiments.MeanOf(series["SAPS-PSGD"]), "saps-MBps")
	b.ReportMetric(experiments.MeanOf(series["RandomChoose"]), "random-MBps")
	b.ReportMetric(experiments.MeanOf(series["D-PSGD"]), "ring-MBps")
}

func BenchmarkFig5Bandwidth32Workers(b *testing.B) {
	var series map[string][]float64
	for i := 0; i < b.N; i++ {
		series = experiments.Fig5ThirtyTwo(400, uint64(9+i))
	}
	b.ReportMetric(experiments.MeanOf(series["SAPS-PSGD"]), "saps-MBps")
	b.ReportMetric(experiments.MeanOf(series["RandomChoose"]), "random-MBps")
	b.ReportMetric(experiments.MeanOf(series["D-PSGD"]), "ring-MBps")
}

// --- Fig. 6 + Table IV: communication time to target accuracy --------------

func BenchmarkFig6CommTimeMNIST(b *testing.B) {
	results := runSuite(b, experiments.MNISTWorkload(), 64, 8)
	experiments.WriteFig6(io.Discard, results)
	target := 0.75
	for _, r := range results {
		if rec, ok := r.FirstReaching(target); ok && r.Algorithm == "SAPS-PSGD" {
			b.ReportMetric(rec.TimeSec, "saps-time-to-75%")
		}
		if rec, ok := r.FirstReaching(target); ok && r.Algorithm == "D-PSGD" {
			b.ReportMetric(rec.TimeSec, "dpsgd-time-to-75%")
		}
	}
}

// --- Ablations (DESIGN.md §5 A5) --------------------------------------------

// BenchmarkAblationTThres sweeps Algorithm 3's recency window: smaller
// TThres forces reconnection more often (better mixing, lower matched
// bandwidth).
func BenchmarkAblationTThres(b *testing.B) {
	bw := netsim.FourteenCities()
	for _, tt := range []int{2, 5, 10, 20} {
		b.Run(map[int]string{2: "T2", 5: "T5", 10: "T10", 20: "T20"}[tt], func(b *testing.B) {
			var mean float64
			var rho float64
			for i := 0; i < b.N; i++ {
				gen := gossip.NewGenerator(bw, gossip.Config{BThres: 2, TThres: tt}, uint64(11+i))
				var ws []*tensor.Matrix
				total := 0.0
				const iters = 200
				for t := 0; t < iters; t++ {
					r := gen.Next(t)
					total += gossip.MeanMatchedBandwidth(r.Match, bw)
					if t < 100 {
						ws = append(ws, r.W())
					}
				}
				mean = total / iters
				rho = spectral.RhoOfExpectedWtW(ws, 200)
			}
			b.ReportMetric(mean, "matched-MBps")
			b.ReportMetric(rho, "rho")
		})
	}
}

// BenchmarkAblationCompression sweeps SAPS's compression ratio c on the
// MNIST workload: traffic scales as 1/c while accuracy degrades gracefully.
func BenchmarkAblationCompression(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark skipped in -short mode")
	}
	for _, c := range []float64{4, 20, 100} {
		name := map[float64]string{4: "c4", 20: "c20", 100: "c100"}[c]
		b.Run(name, func(b *testing.B) {
			var final trainer.Record
			for i := 0; i < b.N; i++ {
				w := benchWorkload(experiments.MNISTWorkload(), 48)
				w.Ratios.SAPS = c
				n := 8
				bw := experiments.EnvN(n, 7)
				alg, err := experiments.BuildAlgorithm("SAPS-PSGD", w, n, bw, 7)
				if err != nil {
					b.Fatal(err)
				}
				_, valid := w.Dataset()
				res := trainer.Run(alg, bw, trainer.Config{Rounds: w.Rounds, EvalEvery: w.Rounds, Valid: valid})
				final = res.Final()
			}
			b.ReportMetric(final.ValAcc*100, "acc-%")
			b.ReportMetric(final.TrafficMB, "traffic-MB")
		})
	}
}

// BenchmarkAblationMatchingPolicy compares adaptive vs random peer selection
// end to end (bandwidth utilization + accuracy).
func BenchmarkAblationMatchingPolicy(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark skipped in -short mode")
	}
	for _, name := range []string{"SAPS-PSGD", "RandomChoose"} {
		b.Run(name, func(b *testing.B) {
			var res trainer.Result
			for i := 0; i < b.N; i++ {
				w := benchWorkload(experiments.MNISTWorkload(), 48)
				n := 14
				bw := netsim.FourteenCities()
				alg, err := experiments.BuildAlgorithm(name, w, n, bw, 5)
				if err != nil {
					b.Fatal(err)
				}
				_, valid := w.Dataset()
				res = trainer.Run(alg, bw, trainer.Config{Rounds: w.Rounds, EvalEvery: w.Rounds, Valid: valid})
			}
			f := res.Final()
			b.ReportMetric(f.ValAcc*100, "acc-%")
			b.ReportMetric(f.TimeSec, "commtime-s")
		})
	}
}

// BenchmarkAblationBThres sweeps the bandwidth threshold of Algorithm 1:
// higher thresholds concentrate traffic on fast links until B* fragments and
// the recency fallback dominates.
func BenchmarkAblationBThres(b *testing.B) {
	bw := netsim.FourteenCities()
	for _, bt := range []float64{0, 2, 5, 10} {
		name := map[float64]string{0: "B0", 2: "B2", 5: "B5", 10: "B10"}[bt]
		b.Run(name, func(b *testing.B) {
			var mean float64
			forced := 0
			for i := 0; i < b.N; i++ {
				gen := gossip.NewGenerator(bw, gossip.Config{BThres: bt, TThres: 8}, uint64(13+i))
				total := 0.0
				forced = 0
				const iters = 200
				for t := 0; t < iters; t++ {
					r := gen.Next(t)
					total += gossip.MeanMatchedBandwidth(r.Match, bw)
					if r.Forced {
						forced++
					}
				}
				mean = total / iters
			}
			b.ReportMetric(mean, "matched-MBps")
			b.ReportMetric(float64(forced), "forced-rounds")
		})
	}
}

// BenchmarkAblationChurn compares SAPS under stable membership vs 10%/50%
// leave/rejoin churn (extension E1).
func BenchmarkAblationChurn(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark skipped in -short mode")
	}
	for _, name := range []string{"SAPS-PSGD", "SAPS-PSGD(churn)"} {
		sub := "stable"
		if name == "SAPS-PSGD(churn)" {
			sub = "churn"
		}
		b.Run(sub, func(b *testing.B) {
			var res trainer.Result
			for i := 0; i < b.N; i++ {
				w := benchWorkload(experiments.MNISTWorkload(), 48)
				n := 8
				bw := experiments.EnvN(n, 11)
				alg, err := experiments.BuildAlgorithm(name, w, n, bw, 11)
				if err != nil {
					b.Fatal(err)
				}
				_, valid := w.Dataset()
				res = trainer.Run(alg, bw, trainer.Config{Rounds: w.Rounds, EvalEvery: w.Rounds, Valid: valid})
			}
			b.ReportMetric(res.Final().ValAcc*100, "acc-%")
		})
	}
}

// BenchmarkAblationQuantizationVsSparsification quantifies the related-work
// argument: QSGD quantization cannot reach the mask sparsifier's
// compression (extension E3).
func BenchmarkAblationQuantizationVsSparsification(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark skipped in -short mode")
	}
	for _, name := range []string{"QSGD-PSGD", "SAPS-PSGD"} {
		b.Run(name, func(b *testing.B) {
			var res trainer.Result
			for i := 0; i < b.N; i++ {
				w := benchWorkload(experiments.MNISTWorkload(), 48)
				n := 8
				bw := experiments.EnvN(n, 13)
				alg, err := experiments.BuildAlgorithm(name, w, n, bw, 13)
				if err != nil {
					b.Fatal(err)
				}
				_, valid := w.Dataset()
				res = trainer.Run(alg, bw, trainer.Config{Rounds: w.Rounds, EvalEvery: w.Rounds, Valid: valid})
			}
			f := res.Final()
			b.ReportMetric(f.ValAcc*100, "acc-%")
			b.ReportMetric(f.TrafficMB, "traffic-MB")
		})
	}
}

// --- End-to-end training throughput -----------------------------------------

func BenchmarkSAPSRoundThroughput32Workers(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark skipped in -short mode")
	}
	w := benchWorkload(experiments.MNISTWorkload(), 1)
	n := 32
	bw := experiments.EnvN(n, 3)
	alg, err := experiments.BuildAlgorithm("SAPS-PSGD", w, n, bw, 3)
	if err != nil {
		b.Fatal(err)
	}
	led := netsim.NewLedger(bw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Step(i, led)
	}
	b.ReportMetric(float64(alg.Models()[0].ParamCount()), "params")
}

// BenchmarkResNet20ForwardBackward exercises the paper-scale ResNet-20 on a
// CIFAR-sized input — the full model, not the bench-scaled one.
func BenchmarkResNet20ForwardBackward(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark skipped in -short mode")
	}
	m := nn.NewResNet20(1)
	r := rng.New(1)
	x := tensor.NewMatrix(4, 3*32*32)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	ys := []int{0, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, dl := nn.SoftmaxCrossEntropy(logits, ys)
		m.Backward(dl)
	}
	b.ReportMetric(float64(m.ParamCount()), "params")
}

// --- BENCH.json: traffic smoke + fleet shard sweep ---------------------------

// BenchmarkTrafficSmoke runs every baseline for a handful of rounds at tiny
// scale on the engine's Pattern/Codec compositions, then sweeps the 512-node
// SAPS fleet scenario across engine shard counts (1 vs 8 — the serial
// reference against the parallel sharded runtime). It stays enabled under
// -short so CI's bench step (`go test -bench . -benchtime 1x -short`) always
// produces the schema-versioned BENCH.json summary that the bench-regression
// job diffs against the committed bench_baseline.json (byte counts are
// deterministic and must match exactly; wall time may regress at most 25%).
func BenchmarkTrafficSmoke(b *testing.B) {
	const n, rounds = 8, 3
	tr, _ := dataset.TinyTask(240, 4, 31)
	shards := dataset.PartitionIID(tr, n, 1)
	bw := netsim.RandomUniform(n, 1, 5, rng.New(7))
	var rows []scenario.AlgoRow
	var sweep scenario.ScenarioSweep
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range append(append([]string{}, experiments.AlgorithmNames...), "QSGD-PSGD", "PS-PSGD") {
			fc := algos.FleetConfig{
				N:       n,
				Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), []int{12}, 4, 5) },
				Shards:  shards,
				LR:      0.1,
				Batch:   8,
				Seed:    3,
			}
			var alg algos.Algorithm
			switch name {
			case "PSGD":
				alg = algos.NewPSGD(fc)
			case "TopK-PSGD":
				alg = algos.NewTopKPSGD(fc, 20)
			case "FedAvg":
				alg = algos.NewFedAvg(fc, bw, 0.5, 2)
			case "S-FedAvg":
				alg = algos.NewSFedAvg(fc, bw, 0.5, 2, 10)
			case "D-PSGD":
				alg = algos.NewDPSGD(fc)
			case "DCD-PSGD":
				alg = algos.NewDCDPSGD(fc, 4)
			case "QSGD-PSGD":
				alg = algos.NewQSGDPSGD(fc, 4)
			case "PS-PSGD":
				alg = algos.NewPSPSGD(fc, bw)
			case "SAPS-PSGD":
				cfg := core.Config{
					Workers: n, Compression: 10, LR: 0.1, Batch: 8, LocalSteps: 1,
					Gossip: gossip.Config{BThres: 2, TThres: 5}, Seed: 3,
				}
				alg = algos.NewSAPS(fc, bw, cfg)
			}
			sim := netsim.NewLedger(bw)
			start := time.Now()
			for r := 0; r < rounds; r++ {
				alg.Step(r, sim)
			}
			wall := time.Since(start)
			var volume int64
			for w := 0; w < n; w++ {
				s, rcv := sim.WorkerBytes(w)
				volume += s + rcv
			}
			rows = append(rows, scenario.AlgoRow{
				Algorithm:      name,
				BytesPerRound:  volume / int64(n) / int64(rounds),
				SimSeconds:     sim.TotalTime(),
				WallMsPerRound: float64(wall.Microseconds()) / 1000 / rounds,
			})
			if c, ok := alg.(interface{ Close() }); ok {
				c.Close()
			}
		}
		sweep = fleetShardSweep(b)
	}
	// The declarative fault scenario (scheduled crash/rejoin + seeded
	// mortality) rides in the summary too, so fault-injection traffic is
	// regression-gated like every other row.
	faults := scenarioSweep(b, "internal/scenario/testdata/saps-crash-rejoin.json", 1, 4)
	out := &scenario.BenchFile{
		SchemaVersion: scenario.BenchSchemaVersion,
		Source:        "go-test-bench",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Algorithms:    rows,
		Scenarios:     []scenario.ScenarioSweep{sweep, faults},
	}
	if err := scenario.WriteBench("BENCH.json", out); err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		if r.Algorithm == "SAPS-PSGD" {
			b.ReportMetric(float64(r.BytesPerRound), "saps-B/round")
		}
		if r.Algorithm == "D-PSGD" {
			b.ReportMetric(float64(r.BytesPerRound), "dpsgd-B/round")
		}
	}
	b.ReportMetric(sweep.Speedup, "saps512-speedup-8shards")
}

// fleetShardSweep executes the 512-node SAPS scenario serially (1 shard) and
// across the 8-shard parallel runtime, verifying byte determinism on the
// spot. Wall-clock speedup depends on the machine's core count.
func fleetShardSweep(b *testing.B) scenario.ScenarioSweep {
	b.Helper()
	return scenarioSweep(b, "internal/scenario/testdata/saps-512.json", 1, 8)
}

// scenarioSweep runs one scenario spec across the given shard counts,
// asserting byte determinism on the spot.
func scenarioSweep(b *testing.B, path string, shardCounts ...int) scenario.ScenarioSweep {
	b.Helper()
	spec, err := scenario.Load(path)
	if err != nil {
		b.Fatal(err)
	}
	sweep := scenario.ScenarioSweep{Name: spec.Name, Algo: spec.Algo, Nodes: spec.Nodes, Rounds: spec.Rounds}
	for _, shards := range shardCounts {
		res, err := spec.Run(shards)
		if err != nil {
			b.Fatal(err)
		}
		sweep.Runs = append(sweep.Runs, res)
	}
	for _, run := range sweep.Runs[1:] {
		if run.TotalBytes != sweep.Runs[0].TotalBytes {
			b.Fatalf("shard sweep traffic diverged: %d vs %d bytes", run.TotalBytes, sweep.Runs[0].TotalBytes)
		}
	}
	sweep.ComputeSpeedup()
	return sweep
}
