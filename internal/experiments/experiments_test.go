package experiments

import (
	"math"
	"strings"
	"testing"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/trainer"
)

// quickWorkload is a miniature task so the full 7-algorithm suite runs in
// seconds inside the unit tests.
func quickWorkload() Workload {
	in := nn.Shape{C: 1, H: 8, W: 8}
	return Workload{
		Name:      "quick",
		PaperName: "unit-test",
		In:        in,
		Classes:   4,
		Factory: func(seed uint64) *nn.Model {
			return nn.NewMLP(in.Dim(), []int{16}, 4, seed)
		},
		TrainSamples: 320,
		ValidSamples: 80,
		DataSeed:     3,
		LR:           0.1,
		Batch:        16,
		Rounds:       60,
		TargetAcc:    0.5,
		// The unit-test MLP has only ~1.5k parameters, so the paper's
		// ratios (meant for million-parameter CNNs) would transmit almost
		// nothing; scale them down proportionally.
		Ratios: Ratios{TopK: 50, SFed: 8, DCD: 4, SAPS: 10},
	}
}

func TestConvergenceSuiteAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence suite skipped in -short mode")
	}
	suite := ConvergenceSuite{Workload: quickWorkload(), N: 4, Seed: 7, EvalEvery: 15}
	results, err := suite.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AlgorithmNames) {
		t.Fatalf("got %d results", len(results))
	}
	traffic := map[string]float64{}
	for i, r := range results {
		if r.Algorithm != AlgorithmNames[i] {
			t.Fatalf("order: %s vs %s", r.Algorithm, AlgorithmNames[i])
		}
		f := r.Final()
		if math.IsNaN(f.ValAcc) || f.ValAcc < 0.3 {
			t.Fatalf("%s final accuracy %v", r.Algorithm, f.ValAcc)
		}
		if f.TrafficMB <= 0 || f.TimeSec <= 0 {
			t.Fatalf("%s ledger empty: %+v", r.Algorithm, f)
		}
		traffic[r.Algorithm] = f.TrafficMB
	}
	// Headline claim: SAPS has the lowest per-worker traffic of all seven.
	for name, v := range traffic {
		if name != "SAPS-PSGD" && traffic["SAPS-PSGD"] >= v {
			t.Fatalf("SAPS traffic %v >= %s traffic %v", traffic["SAPS-PSGD"], name, v)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	suite := ConvergenceSuite{
		Workload:   quickWorkload().WithRounds(20),
		N:          4,
		Seed:       5,
		EvalEvery:  10,
		Algorithms: []string{"SAPS-PSGD", "D-PSGD"},
	}
	results, err := suite.Run()
	if err != nil {
		t.Fatal(err)
	}
	var f3, f4, f6 strings.Builder
	WriteFig3(&f3, results)
	WriteFig4(&f4, results)
	WriteFig6(&f6, results)
	for name, s := range map[string]string{"fig3": f3.String(), "fig4": f4.String(), "fig6": f6.String()} {
		if !strings.Contains(s, "SAPS-PSGD") && !strings.Contains(s, "index") {
			t.Fatalf("%s output suspicious:\n%s", name, s)
		}
		if len(strings.Split(strings.TrimSpace(s), "\n")) < 3 {
			t.Fatalf("%s too short:\n%s", name, s)
		}
	}
	var t3, t4, ts strings.Builder
	Table3("quick", results).WriteMarkdown(&t3)
	Table4("quick", 0.5, results).WriteMarkdown(&t4)
	TrafficSummary(results).WriteMarkdown(&ts)
	if !strings.Contains(t3.String(), "SAPS-PSGD") || !strings.Contains(t4.String(), "Traffic") {
		t.Fatal("tables missing content")
	}
}

func TestTable2ListsAllWorkloads(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 3 {
		t.Fatalf("Table II rows = %d", len(tb.Rows))
	}
	var sb strings.Builder
	tb.WriteMarkdown(&sb)
	for _, name := range []string{"MNIST-CNN", "CIFAR10-CNN", "ResNet-20"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("Table II missing %s:\n%s", name, sb.String())
		}
	}
}

func TestFig1TableShape(t *testing.T) {
	tb := Fig1Table()
	if len(tb.Rows) != 14 || len(tb.Headers) != 15 {
		t.Fatalf("Fig1 table %dx%d", len(tb.Rows), len(tb.Headers))
	}
}

func TestFig5FourteenCities(t *testing.T) {
	series := Fig5Fourteen(100, 3)
	saps := MeanOf(series["SAPS-PSGD"])
	random := MeanOf(series["RandomChoose"])
	ring := MeanOf(series["D-PSGD"])
	if saps <= random {
		t.Fatalf("SAPS bandwidth %v not above random %v", saps, random)
	}
	if ring <= 0 || saps <= 0 {
		t.Fatalf("degenerate series: saps=%v ring=%v", saps, ring)
	}
	// Ring is constant.
	for _, v := range series["D-PSGD"] {
		if v != series["D-PSGD"][0] {
			t.Fatal("ring series not constant")
		}
	}
	// Paper's Fig. 5 finding: random maximum match beats the ring topology.
	if random <= ring {
		t.Logf("note: random %v vs ring %v (paper finds random > ring for 32 workers)", random, ring)
	}
}

func TestFig5ThirtyTwoWorkers(t *testing.T) {
	series := Fig5ThirtyTwo(60, 9)
	saps := MeanOf(series["SAPS-PSGD"])
	random := MeanOf(series["RandomChoose"])
	ring := MeanOf(series["D-PSGD"])
	if saps <= random || random <= ring {
		t.Fatalf("expected saps > random > ring, got %v, %v, %v", saps, random, ring)
	}
}

func TestCostModelMatchesPaperOrdering(t *testing.T) {
	p := NewCostParams(32, 6653628, 100, 1000, 2)
	costs := WorkerCostValues(p)
	saps := costs["SAPS-PSGD"]
	for name, v := range costs {
		if name == "SAPS-PSGD" {
			continue
		}
		if saps >= v {
			t.Fatalf("Table I: SAPS cost %v not below %s cost %v", saps, name, v)
		}
	}
	// Spot-check two symbolic evaluations.
	if got, want := costs["PSGD (all-reduce)"], 2.0*6653628*1000; got != want {
		t.Fatalf("PSGD cost %v, want %v", got, want)
	}
	if got, want := costs["SAPS-PSGD"], 2.0*6653628/100*1000; got != want {
		t.Fatalf("SAPS cost %v, want %v", got, want)
	}
}

func TestMeasuredSAPSTrafficMatchesTable1(t *testing.T) {
	// Tie the simulation back to the analytic model: measured per-worker
	// traffic of SAPS ≈ 2(N/c)T values × 4 bytes.
	w := quickWorkload().WithRounds(40)
	n := 4
	bw := EnvN(n, 7)
	alg, err := BuildAlgorithm("SAPS-PSGD", w, n, bw, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := trainer.Run(alg, bw, trainer.Config{Rounds: w.Rounds, EvalEvery: w.Rounds})
	dim := alg.Models()[0].ParamCount()
	p := NewCostParams(n, dim, w.ratios().SAPS, w.Rounds, 2)
	wantMB := WorkerCostValues(p)["SAPS-PSGD"] * 4 / 1e6
	gotMB := res.Ledger.MeanWorkerTrafficMB()
	if math.Abs(gotMB-wantMB)/wantMB > 0.25 {
		t.Fatalf("measured %v MB vs Table I %v MB", gotMB, wantMB)
	}
}

func TestBuildAlgorithmUnknown(t *testing.T) {
	if _, err := BuildAlgorithm("nope", quickWorkload(), 4, EnvN(4, 1), 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestWorkloadsHaveDistinctSeedsAndTargets(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 {
		t.Fatal("want 3 workloads")
	}
	for _, w := range ws {
		tr, va := w.Dataset()
		if tr.Len() != w.TrainSamples || va.Len() != w.ValidSamples {
			t.Fatalf("%s: dataset sizes %d/%d", w.Name, tr.Len(), va.Len())
		}
		if w.TargetAcc <= 0.5 || w.TargetAcc >= 1 {
			t.Fatalf("%s: target %v", w.Name, w.TargetAcc)
		}
	}
}

func TestBandwidthThresholdPercentile(t *testing.T) {
	bw := netsim.NewBandwidth([][]float64{
		{0, 1, 2},
		{1, 0, 3},
		{2, 3, 0},
	})
	// links: 1, 2, 3 → 60th percentile index = int(0.6*3) = 1 → value 2.
	if got := bandwidthThreshold(bw); got != 2 {
		t.Fatalf("threshold = %v, want 2", got)
	}
}
