package nn

import (
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/tensor"
)

// BatchMatrix packs per-sample vectors into one batch matrix (copying).
func BatchMatrix(xs [][]float64) *tensor.Matrix {
	if len(xs) == 0 {
		panic("nn: empty batch")
	}
	m := tensor.NewMatrix(len(xs), len(xs[0]))
	for i, x := range xs {
		copy(m.Row(i), x)
	}
	return m
}

// SGD is the plain stochastic gradient descent update of Algorithm 2
// (net.x ← net.x − γ∇net.x), with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []float64
}

// Step applies one update using the model's accumulated gradients.
func (s *SGD) Step(m *Model) {
	if s.Momentum == 0 {
		for _, p := range m.Params() {
			tensor.Axpy(-s.LR, p.Grad, p.Data)
		}
		return
	}
	if len(s.velocity) != m.ParamCount() {
		s.velocity = make([]float64, m.ParamCount())
	}
	off := 0
	for _, p := range m.Params() {
		v := s.velocity[off : off+len(p.Data)]
		for i, g := range p.Grad {
			v[i] = s.Momentum*v[i] + g
			p.Data[i] -= s.LR * v[i]
		}
		off += len(p.Data)
	}
}

// Velocity returns a copy of the optimizer's momentum buffer (nil when
// momentum is unused or no step has run yet). It belongs in a worker's
// round-boundary checkpoint alongside the model parameters.
func (s *SGD) Velocity() []float64 {
	if s.velocity == nil {
		return nil
	}
	return append([]float64(nil), s.velocity...)
}

// SetVelocity restores a momentum buffer captured by Velocity (nil clears
// it, matching a freshly constructed optimizer).
func (s *SGD) SetVelocity(v []float64) {
	if v == nil {
		s.velocity = nil
		return
	}
	s.velocity = append(s.velocity[:0], v...)
}

// TrainBatch performs one forward/backward/update cycle on a minibatch and
// returns the batch loss.
func TrainBatch(m *Model, opt *SGD, xs [][]float64, labels []int) float64 {
	x := BatchMatrix(xs)
	m.ZeroGrads()
	logits := m.Forward(x, true)
	loss, dl := SoftmaxCrossEntropy(logits, labels)
	m.Backward(dl)
	opt.Step(m)
	return loss
}

// ComputeGrads runs forward/backward on a minibatch without updating,
// leaving the gradients in the model's accumulators — the building block for
// the all-reduce style baselines that average gradients before stepping.
func ComputeGrads(m *Model, xs [][]float64, labels []int) float64 {
	x := BatchMatrix(xs)
	m.ZeroGrads()
	logits := m.Forward(x, true)
	loss, dl := SoftmaxCrossEntropy(logits, labels)
	m.Backward(dl)
	return loss
}

// EvaluateDataset returns the mean loss and top-1 accuracy of the model over
// the dataset, in inference mode, processed in batches of batchSize.
func EvaluateDataset(m *Model, d *dataset.Dataset, batchSize int) (loss, acc float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	if batchSize < 1 {
		batchSize = 64
	}
	totalLoss := 0.0
	correct := 0
	for start := 0; start < d.Len(); start += batchSize {
		end := start + batchSize
		if end > d.Len() {
			end = d.Len()
		}
		xs := make([][]float64, 0, end-start)
		ys := make([]int, 0, end-start)
		for _, s := range d.Samples[start:end] {
			xs = append(xs, s.X)
			ys = append(ys, s.Label)
		}
		x := BatchMatrix(xs)
		logits := m.Forward(x, false)
		l, _ := SoftmaxCrossEntropy(logits, ys)
		totalLoss += l * float64(len(ys))
		for i := 0; i < logits.Rows; i++ {
			if tensor.ArgMax(logits.Row(i)) == ys[i] {
				correct++
			}
		}
	}
	return totalLoss / float64(d.Len()), float64(correct) / float64(d.Len())
}
