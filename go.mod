module sapspsgd

go 1.23
