package algos

import (
	"bytes"
	"encoding/gob"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
)

// This file implements engine.Stateful for every baseline node, so any
// recipe algorithm can be checkpointed at a round boundary and resumed
// bit-identically: model parameters (plus normalization running statistics),
// optimizer momentum, and minibatch-stream RNG cursors all ride in the
// snapshot. Codec-side state (error-feedback residuals, quantizer RNG) is
// captured by the codecs themselves (see internal/engine/codec.go).

// trainerState is a localTrainer's serialized round-boundary state.
type trainerState struct {
	Model    []byte // nn checkpoint: parameters + running statistics
	Loader   dataset.LoaderState
	Velocity []float64
}

func (t *localTrainer) captureState() (trainerState, error) {
	var buf bytes.Buffer
	if err := t.model.Save(&buf); err != nil {
		return trainerState{}, err
	}
	return trainerState{
		Model:    buf.Bytes(),
		Loader:   t.loader.State(),
		Velocity: t.opt.Velocity(),
	}, nil
}

func (t *localTrainer) restoreState(st trainerState) error {
	if err := t.model.Load(bytes.NewReader(st.Model)); err != nil {
		return err
	}
	t.loader.SetState(st.Loader)
	t.opt.SetVelocity(st.Velocity)
	return nil
}

func blob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func unblob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// CaptureState implements engine.Stateful.
func (g *gradAvgNode) CaptureState() ([]byte, error) {
	st, err := g.t.captureState()
	if err != nil {
		return nil, err
	}
	return blob(st)
}

// RestoreState implements engine.Stateful.
func (g *gradAvgNode) RestoreState(data []byte) error {
	var st trainerState
	if err := unblob(data, &st); err != nil {
		return err
	}
	return g.t.restoreState(st)
}

// CaptureState implements engine.Stateful.
func (d *neighborMixNode) CaptureState() ([]byte, error) {
	st, err := d.t.captureState()
	if err != nil {
		return nil, err
	}
	return blob(st)
}

// RestoreState implements engine.Stateful.
func (d *neighborMixNode) RestoreState(data []byte) error {
	var st trainerState
	if err := unblob(data, &st); err != nil {
		return err
	}
	return d.t.restoreState(st)
}

// dcdState adds the public replicas to the trainer state — they evolve by
// lossy deltas and cannot be reconstructed from the model alone.
type dcdState struct {
	Trainer  trainerState
	Replicas map[int][]float64
}

// CaptureState implements engine.Stateful.
func (n *dcdNode) CaptureState() ([]byte, error) {
	ts, err := n.t.captureState()
	if err != nil {
		return nil, err
	}
	st := dcdState{Trainer: ts, Replicas: map[int][]float64{}}
	for j, r := range n.replicas {
		st.Replicas[j] = append([]float64(nil), r...)
	}
	return blob(st)
}

// RestoreState implements engine.Stateful.
func (n *dcdNode) RestoreState(data []byte) error {
	var st dcdState
	if err := unblob(data, &st); err != nil {
		return err
	}
	if err := n.t.restoreState(st.Trainer); err != nil {
		return err
	}
	for j := range n.replicas {
		copy(n.replicas[j], st.Replicas[j])
	}
	return nil
}

// CaptureState implements engine.Stateful.
func (p *psWorkerNode) CaptureState() ([]byte, error) {
	st, err := p.t.captureState()
	if err != nil {
		return nil, err
	}
	return blob(st)
}

// RestoreState implements engine.Stateful.
func (p *psWorkerNode) RestoreState(data []byte) error {
	var st trainerState
	if err := unblob(data, &st); err != nil {
		return err
	}
	return p.t.restoreState(st)
}

// fedWorkerState adds the last pulled server model: S-FedAvg's delta upload
// is relative to it, so a worker restored mid-schedule must remember it.
type fedWorkerState struct {
	Trainer trainerState
	Pulled  []float64
}

// CaptureState implements engine.Stateful.
func (f *fedWorkerNode) CaptureState() ([]byte, error) {
	ts, err := f.t.captureState()
	if err != nil {
		return nil, err
	}
	return blob(fedWorkerState{Trainer: ts, Pulled: append([]float64(nil), f.pulled...)})
}

// RestoreState implements engine.Stateful.
func (f *fedWorkerNode) RestoreState(data []byte) error {
	var st fedWorkerState
	if err := unblob(data, &st); err != nil {
		return err
	}
	if err := f.t.restoreState(st.Trainer); err != nil {
		return err
	}
	f.pulled = append(f.pulled[:0], st.Pulled...)
	return nil
}

// serverState is a hub server's round-boundary state: the global model.
type serverState struct {
	Model []byte
}

// CaptureState implements engine.Stateful.
func (s *psServerNode) CaptureState() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.model.Save(&buf); err != nil {
		return nil, err
	}
	return blob(serverState{Model: buf.Bytes()})
}

// RestoreState implements engine.Stateful.
func (s *psServerNode) RestoreState(data []byte) error {
	var st serverState
	if err := unblob(data, &st); err != nil {
		return err
	}
	return s.model.Load(bytes.NewReader(st.Model))
}

// CaptureState implements engine.Stateful.
func (s *fedServerNode) CaptureState() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.model.Save(&buf); err != nil {
		return nil, err
	}
	return blob(serverState{Model: buf.Bytes()})
}

// RestoreState implements engine.Stateful.
func (s *fedServerNode) RestoreState(data []byte) error {
	var st serverState
	if err := unblob(data, &st); err != nil {
		return err
	}
	return s.model.Load(bytes.NewReader(st.Model))
}

// Compile-time checks: every baseline node supports checkpointing.
var (
	_ engine.Stateful = (*gradAvgNode)(nil)
	_ engine.Stateful = (*neighborMixNode)(nil)
	_ engine.Stateful = (*dcdNode)(nil)
	_ engine.Stateful = (*psWorkerNode)(nil)
	_ engine.Stateful = (*fedWorkerNode)(nil)
	_ engine.Stateful = (*psServerNode)(nil)
	_ engine.Stateful = (*fedServerNode)(nil)
)
