// Package gossip implements the gossip-matrix machinery of SAPS-PSGD:
// Algorithm 3 (GenerateGossipMatrix) with its recency-constrained,
// bandwidth-aware maximum matching, plus the static topologies used by the
// baselines (ring for D-PSGD/DCD-PSGD, uniform random matching for the
// RandomChoose comparison) and conversions to doubly stochastic matrices.
package gossip

import (
	"fmt"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Config carries the two knobs of Algorithm 3.
type Config struct {
	// BThres is the bandwidth threshold (MB/s) defining the filtered matrix
	// B*: only links at least this fast are eligible while the
	// recently-connected graph stays connected (Algorithm 1, lines 9–12).
	BThres float64
	// TThres is the communication iteration gap: an edge used within the
	// last TThres rounds counts as "recently connected" (RC). Smaller values
	// force re-connection more often (faster mixing, lower bandwidth);
	// larger values favor bandwidth. Must be >= 1.
	TThres int
}

// Round is the output of one gossip-matrix generation: the peer matching and
// its doubly stochastic matrix W_t.
type Round struct {
	Match graph.Matching
	W     *tensor.Matrix
	// Forced reports whether this round had to inject connectivity-restoring
	// edges (the RC graph had gone stale/disconnected).
	Forced bool
}

// Generator produces the per-round gossip matchings for a fixed bandwidth
// environment, maintaining the timestamp matrix R across rounds. It is the
// coordinator-side state of Algorithm 3.
type Generator struct {
	bw   *netsim.Bandwidth
	cfg  Config
	seed uint64
	// lastUsed is the timestamp matrix R: lastUsed[i][j] is the last round
	// in which edge (i,j) carried an exchange, or -1 if never.
	lastUsed [][]int
}

// NewGenerator returns a Generator over the environment bw. The seed drives
// the RandomlyMaxMatch randomization; generators constructed with equal
// arguments produce identical matching sequences.
func NewGenerator(bw *netsim.Bandwidth, cfg Config, seed uint64) *Generator {
	if cfg.TThres < 1 {
		panic(fmt.Sprintf("gossip: TThres %d < 1", cfg.TThres))
	}
	n := bw.N
	last := make([][]int, n)
	for i := range last {
		last[i] = make([]int, n)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	return &Generator{bw: bw, cfg: cfg, seed: seed, lastUsed: last}
}

// rcGraph builds the graph of recently-connected edges at round t.
func (g *Generator) rcGraph(t int) *graph.Graph {
	rc := graph.New(g.bw.N)
	for i := 0; i < g.bw.N; i++ {
		for j := i + 1; j < g.bw.N; j++ {
			if g.lastUsed[i][j] > t-g.cfg.TThres {
				rc.AddEdge(i, j)
			}
		}
	}
	return rc
}

// Next runs Algorithm 3 for round t and returns the matching, its gossip
// matrix, and updates the timestamp matrix R.
func (g *Generator) Next(t int) Round { return g.NextActive(t, nil) }

// NextActive is Next restricted to the currently active workers (nil means
// all active). Inactive workers are excluded from matching entirely — the
// federated-dynamics case the paper motivates (§I: workers "may join/leave
// the training randomly"). Connectivity bookkeeping (the RC graph) also
// restricts to active workers, so a long-absent worker cannot block the
// recency check.
func (g *Generator) NextActive(t int, active []bool) Round {
	n := g.bw.N
	rnd := rng.New(g.seed).Derive(uint64(t) + 0x90551b)
	isActive := func(i int) bool { return active == nil || active[i] }

	rc := g.rcGraph(t)
	// Restrict the connectivity question to active workers: build the
	// induced subgraph's component structure over active vertices only.
	connected := activeConnected(rc, active)

	var candidate []graph.WeightedEdge
	forced := false
	if connected {
		// Line 2: E = B* — the bandwidth-filtered graph.
		for _, e := range g.bw.Edges(g.cfg.BThres) {
			if isActive(e.U) && isActive(e.V) {
				candidate = append(candidate, e)
			}
		}
	} else {
		// Lines 4: connect the RC components using any available links.
		forced = true
		comps := rc.Components()
		compOf := make([]int, n)
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		for i := 0; i < n; i++ {
			if !isActive(i) {
				continue
			}
			for j := i + 1; j < n; j++ {
				if isActive(j) && compOf[i] != compOf[j] && g.bw.MBps(i, j) > 0 {
					candidate = append(candidate, graph.WeightedEdge{U: i, V: j, Weight: g.bw.MBps(i, j)})
				}
			}
		}
	}

	// Line 5: bandwidth-preferring maximum match on the candidate edges.
	match := graph.BandwidthAwareMaximumMatching(n, candidate, rnd)

	// Lines 6–8: complete the matching over still-unmatched active workers
	// using the unfiltered bandwidth matrix.
	if match.Size() < n/2 {
		var extra []graph.WeightedEdge
		for i := 0; i < n; i++ {
			if match[i] != -1 || !isActive(i) {
				continue
			}
			for j := i + 1; j < n; j++ {
				if isActive(j) && match[j] == -1 && g.bw.MBps(i, j) > 0 {
					extra = append(extra, graph.WeightedEdge{U: i, V: j, Weight: g.bw.MBps(i, j)})
				}
			}
		}
		second := graph.BandwidthAwareMaximumMatching(n, extra, rnd)
		for v, p := range second {
			if p > v && match[v] == -1 && match[p] == -1 {
				match[v] = p
				match[p] = v
			}
		}
	}

	// Record timestamps for the edges used this round.
	for v, p := range match {
		if p > v {
			g.lastUsed[v][p] = t
			g.lastUsed[p][v] = t
		}
	}

	return Round{Match: match, W: MatchingW(match), Forced: forced}
}

// LastUsed exposes R[i][j] (for tests and diagnostics).
func (g *Generator) LastUsed(i, j int) int { return g.lastUsed[i][j] }

// activeConnected reports whether the active-induced subgraph of rc is
// connected (vacuously true for fewer than two active vertices).
func activeConnected(rc *graph.Graph, active []bool) bool {
	if active == nil {
		return rc.IsConnected()
	}
	var start = -1
	count := 0
	for i := 0; i < rc.N; i++ {
		if active[i] {
			count++
			if start == -1 {
				start = i
			}
		}
	}
	if count <= 1 {
		return true
	}
	seen := make([]bool, rc.N)
	stack := []int{start}
	seen[start] = true
	reached := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range rc.Neighbors(v) {
			if active[w] && !seen[w] {
				seen[w] = true
				reached++
				stack = append(stack, w)
			}
		}
	}
	return reached == count
}

// MatchingW converts a matching into the doubly stochastic gossip matrix of
// Algorithm 3's GenerateW: matched pairs average (W_ii = W_jj = W_ij = W_ji
// = 1/2); unmatched workers keep their model (W_ii = 1).
func MatchingW(m graph.Matching) *tensor.Matrix {
	n := len(m)
	w := tensor.NewMatrix(n, n)
	for v, p := range m {
		switch {
		case p == -1:
			w.Set(v, v, 1)
		default:
			w.Set(v, v, 0.5)
			w.Set(v, p, 0.5)
		}
	}
	return w
}

// RandomMatching returns a uniformly random maximum matching of the complete
// graph on n vertices — the paper's RandomChoose baseline ("another way to
// choose the communication peers ... randomly do maximum match").
func RandomMatching(n int, rnd *rng.Source) graph.Matching {
	perm := rnd.Perm(n)
	m := make(graph.Matching, n)
	for i := range m {
		m[i] = -1
	}
	for i := 0; i+1 < n; i += 2 {
		a, b := perm[i], perm[i+1]
		m[a] = b
		m[b] = a
	}
	return m
}

// RingW returns the static ring gossip matrix used by D-PSGD and DCD-PSGD in
// the paper's experiments: worker i averages with its two ring neighbors
// (weights 1/3 each, 1/3 self).
func RingW(n int) *tensor.Matrix {
	w := tensor.NewMatrix(n, n)
	if n == 1 {
		w.Set(0, 0, 1)
		return w
	}
	if n == 2 {
		// Degenerate ring: the two neighbors coincide.
		w.Set(0, 0, 0.5)
		w.Set(0, 1, 0.5)
		w.Set(1, 0, 0.5)
		w.Set(1, 1, 0.5)
		return w
	}
	for i := 0; i < n; i++ {
		w.Set(i, i, 1.0/3)
		w.Set(i, (i+1)%n, 1.0/3)
		w.Set(i, (i+n-1)%n, 1.0/3)
	}
	return w
}

// RingNeighbors returns the two ring neighbors of worker i among n workers.
func RingNeighbors(i, n int) (prev, next int) {
	return (i + n - 1) % n, (i + 1) % n
}

// MeanMatchedBandwidth returns the mean bandwidth (MB/s) over the matched
// pairs — the per-iteration series plotted in Fig. 5. It returns 0 for an
// empty matching.
func MeanMatchedBandwidth(m graph.Matching, bw *netsim.Bandwidth) float64 {
	sum, k := 0.0, 0
	for v, p := range m {
		if p > v {
			sum += bw.MBps(v, p)
			k++
		}
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k)
}

// RingMeanBandwidth returns the mean link bandwidth along the canonical ring
// 0→1→…→n-1→0, the quantity the paper averages over 5000 random matrices for
// the D-PSGD/DCD-PSGD rows of Fig. 5.
func RingMeanBandwidth(bw *netsim.Bandwidth) float64 {
	n := bw.N
	if n < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += bw.MBps(i, (i+1)%n)
	}
	return sum / float64(n)
}
