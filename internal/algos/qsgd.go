package algos

// QSGDPSGD is an extension baseline (the paper's related work positions
// sparsification against quantization): PSGD with QSGD-quantized gradients
// all-gathered among workers. Quantization caps compression at 32/bits per
// value, so even aggressive 4-level QSGD cannot approach the mask
// sparsifier's 100× — the ablation benches quantify the gap. Composed as
// AllGather pattern + QSGD codec (4-byte norm + bit-packed level codes,
// charged at the exact packed size).
type QSGDPSGD struct {
	*engineAlgo
}

// NewQSGDPSGD builds the quantized all-gather baseline with the given level
// count (levels=1 is ternary TernGrad-style, 127 is 8-bit).
func NewQSGDPSGD(fc FleetConfig, levels int) *QSGDPSGD {
	r := Recipe{Algo: "qsgd-psgd", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed, Levels: levels}
	a, _ := newEngineAlgo("QSGD-PSGD", fc, r, r.Planner(nil, defaultRecipeGossip()), nil)
	return &QSGDPSGD{engineAlgo: a}
}

var _ Algorithm = (*QSGDPSGD)(nil)
