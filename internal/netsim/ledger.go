package netsim

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sapspsgd/internal/obs"
)

// Ledger accounts for every byte each worker sends and receives and converts
// payloads into simulated communication time using a Bandwidth environment.
// Rounds are synchronous (as in the paper): a round's wall time is the
// maximum over workers of that worker's communication time in the round.
//
// Underneath the per-round accounting the ledger is an event simulator:
// every charge schedules transfer-start/transfer-complete events for each
// endpoint's NIC on a virtual-time EventQueue (a rank's transfers within a
// round serialize back to back from the round's start, which is exactly the
// additive time model the per-round totals implement), and EndRound drains
// the queue in total order into the attached sink. The per-round arithmetic
// is unchanged — same charges, same order, same float operations — so the
// totals are bit-identical to the historical per-round ledger; the event
// stream is a second, equivalent view of the same virtual timeline (the
// equivalence suite in internal/algos pins both claims).
type Ledger struct {
	bw *Bandwidth
	// LatencySec, when set, adds a fixed per-message latency to each
	// exchange direction and server transfer — a realism extension beyond
	// the paper's pure-bandwidth time model (geo-distributed RTTs are tens
	// of milliseconds, which matters for the small control-size payloads
	// SAPS sends at high compression ratios).
	LatencySec float64
	// Cumulative per-worker totals.
	sentBytes []int64
	recvBytes []int64
	// Per-round scratch.
	roundTime []float64
	// Accumulated simulated wall-clock communication time (seconds).
	totalTime float64
	// Server-side traffic for centralized baselines (bytes).
	serverSent int64 // bytes the server sent (workers' downstream)
	serverRecv int64 // bytes the server received (workers' upstream)
	rounds     int
	// Event view of the round under construction.
	q           EventQueue
	sink        *EventLog
	completions []float64
	// nm is the observability sink (zero value = disabled), captured once
	// at construction.
	nm obs.NetsimMetrics
}

// NewLedger returns a ledger over the given bandwidth environment.
func NewLedger(bw *Bandwidth) *Ledger {
	return &Ledger{
		bw:          bw,
		sentBytes:   make([]int64, bw.N),
		recvBytes:   make([]int64, bw.N),
		roundTime:   make([]float64, bw.N),
		completions: make([]float64, bw.N),
		nm:          obs.Current().NetsimM(),
	}
}

// SetSink attaches an event log: from now on EndRound drains each round's
// transfer events into it in virtual-time total order. Pass nil to detach.
func (l *Ledger) SetSink(sink *EventLog) { l.sink = sink }

// schedule pushes one endpoint's NIC busy interval for a transfer of the
// given total payload: the rank's transfers serialize from the round's start
// (the additive model), so the interval is [clock+before, clock+after) on
// the absolute virtual timeline.
func (l *Ledger) schedule(rank, peer int, before, after float64, bytes int64) {
	l.q.Push(Event{
		Time: l.totalTime + before, Kind: EventTransferStart,
		Rank: int32(rank), Peer: int32(peer), Round: int32(l.rounds), Bytes: bytes,
	})
	l.q.Push(Event{
		Time: l.totalTime + after, Kind: EventTransferComplete,
		Rank: int32(rank), Peer: int32(peer), Round: int32(l.rounds), Bytes: bytes,
	})
}

// Exchange records a bidirectional transfer between workers i and j in the
// current round: i sends sendBytes to j and receives recvBytes from j. Both
// directions ride the same (symmetric) link, and each worker's round time
// grows by its transfer volume over the link bandwidth.
func (l *Ledger) Exchange(i, j int, sendBytes, recvBytes int64) {
	if i == j {
		panic(fmt.Sprintf("netsim: self exchange on worker %d", i))
	}
	l.sentBytes[i] += sendBytes
	l.recvBytes[j] += sendBytes
	l.sentBytes[j] += recvBytes
	l.recvBytes[i] += recvBytes
	mbps := l.bw.MBps(i, j)
	if mbps > 0 {
		ti, tj := l.roundTime[i], l.roundTime[j]
		secs := float64(sendBytes+recvBytes)/(mbps*1e6) + l.LatencySec
		l.roundTime[i] += secs
		l.roundTime[j] += secs
		l.schedule(i, j, ti, l.roundTime[i], sendBytes+recvBytes)
		l.schedule(j, i, tj, l.roundTime[j], sendBytes+recvBytes)
	} else {
		// A zero-bandwidth link should never carry traffic; make it visible.
		panic(fmt.Sprintf("netsim: exchange over zero-bandwidth link %d-%d", i, j))
	}
}

// ServerTransfer records traffic between worker i and a central server (used
// by the PS-architecture baselines). serverMBps is the server's link speed to
// that worker. The event view carries the worker endpoint only (Peer -1):
// the server is not a rank and its aggregate NIC is not modelled, exactly as
// in the per-round totals.
func (l *Ledger) ServerTransfer(i int, upBytes, downBytes int64, serverMBps float64) {
	l.sentBytes[i] += upBytes
	l.recvBytes[i] += downBytes
	l.serverRecv += upBytes
	l.serverSent += downBytes
	if serverMBps > 0 {
		ti := l.roundTime[i]
		l.roundTime[i] += float64(upBytes+downBytes)/(serverMBps*1e6) + l.LatencySec
		l.schedule(i, -1, ti, l.roundTime[i], upBytes+downBytes)
	}
}

// EndRound closes the current round, adding its wall time (max over workers)
// to the cumulative total, and returns that wall time in seconds. The
// round's scheduled events drain into the sink (when one is attached) in
// virtual-time total order; every drained event's time is ≤ the new clock,
// so the sink's stream is globally ordered across rounds.
func (l *Ledger) EndRound() float64 {
	maxT := 0.0
	for i, t := range l.roundTime {
		if t > maxT {
			maxT = t
		}
		l.completions[i] = l.totalTime + t
		l.roundTime[i] = 0
	}
	l.nm.EventsTotal.Add(int64(l.q.Len()))
	if l.sink != nil {
		for {
			e, ok := l.q.Pop()
			if !ok {
				break
			}
			l.sink.Append(e)
		}
	} else {
		l.q.Reset()
	}
	l.totalTime += maxT
	l.rounds++
	l.nm.VirtualSeconds.Set(l.totalTime)
	l.nm.EventQueueDepth.Set(int64(l.q.Len()))
	return maxT
}

// RoundCompletions returns each rank's absolute virtual completion time of
// the most recently closed round (the clock at that round's start plus the
// rank's communication time in it) — the per-rank virtual-time completion
// series behind loss-vs-simtime figures. The slice is reused across rounds.
func (l *Ledger) RoundCompletions() []float64 { return l.completions }

// Clock returns the current virtual time: identical to TotalTime, named for
// the event-simulator reading of the same number.
func (l *Ledger) Clock() float64 { return l.totalTime }

// Rounds returns the number of completed rounds.
func (l *Ledger) Rounds() int { return l.rounds }

// TotalTime returns the cumulative simulated communication time in seconds.
func (l *Ledger) TotalTime() float64 { return l.totalTime }

// WorkerBytes returns the cumulative bytes sent and received by worker i.
func (l *Ledger) WorkerBytes(i int) (sent, recv int64) {
	return l.sentBytes[i], l.recvBytes[i]
}

// ServerBytes returns the cumulative traffic through the central server
// (bytes sent plus received).
func (l *Ledger) ServerBytes() int64 { return l.serverSent + l.serverRecv }

// MaxWorkerTraffic returns the largest sent+received total over workers —
// the per-worker communication size the paper plots in Fig. 4.
func (l *Ledger) MaxWorkerTraffic() int64 {
	var m int64
	for i := range l.sentBytes {
		if t := l.sentBytes[i] + l.recvBytes[i]; t > m {
			m = t
		}
	}
	return m
}

// MeanWorkerTrafficMB returns the mean per-worker traffic in megabytes.
func (l *Ledger) MeanWorkerTrafficMB() float64 {
	var sum int64
	for i := range l.sentBytes {
		sum += l.sentBytes[i] + l.recvBytes[i]
	}
	return float64(sum) / float64(len(l.sentBytes)) / 1e6
}

// LedgerState is the ledger's serialized round-boundary checkpoint form
// (engine.LedgerCheckpointer): cumulative per-worker and server byte totals
// plus the simulated clock. Per-round scratch is zero at a boundary and is
// not captured.
type LedgerState struct {
	SentBytes, RecvBytes   []int64
	TotalTime              float64
	ServerSent, ServerRecv int64
	Rounds                 int
}

// CaptureState implements engine.LedgerCheckpointer. It must be called at a
// round boundary (after EndRound).
func (l *Ledger) CaptureState() ([]byte, error) {
	var buf bytes.Buffer
	st := LedgerState{
		SentBytes:  append([]int64(nil), l.sentBytes...),
		RecvBytes:  append([]int64(nil), l.recvBytes...),
		TotalTime:  l.totalTime,
		ServerSent: l.serverSent,
		ServerRecv: l.serverRecv,
		Rounds:     l.rounds,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState implements engine.LedgerCheckpointer: it restores totals into
// a freshly constructed ledger over the same environment.
func (l *Ledger) RestoreState(data []byte) error {
	var st LedgerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.SentBytes) != len(l.sentBytes) {
		return fmt.Errorf("netsim: ledger state for %d workers, have %d", len(st.SentBytes), len(l.sentBytes))
	}
	copy(l.sentBytes, st.SentBytes)
	copy(l.recvBytes, st.RecvBytes)
	l.totalTime = st.TotalTime
	l.serverSent = st.ServerSent
	l.serverRecv = st.ServerRecv
	l.rounds = st.Rounds
	return nil
}

// ConservationOK verifies that every byte sent by some party was received by
// another: workers' sent + server's sent == workers' received + server's
// received. A ledger sanity invariant checked by the integration tests.
func (l *Ledger) ConservationOK() bool {
	var s, r int64
	for i := range l.sentBytes {
		s += l.sentBytes[i]
		r += l.recvBytes[i]
	}
	return s+l.serverSent == r+l.serverRecv
}
