package nn

import (
	"math"
	"testing"

	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// lossOf runs a training-mode forward pass and returns the batch loss.
func lossOf(m *Model, x *tensor.Matrix, ys []int) float64 {
	logits := m.Forward(x, true)
	loss, _ := SoftmaxCrossEntropy(logits, ys)
	return loss
}

// checkGradients compares analytic gradients against central finite
// differences at nChecks randomly chosen parameter coordinates.
func checkGradients(t *testing.T, m *Model, x *tensor.Matrix, ys []int, nChecks int, tol float64) {
	t.Helper()
	m.ZeroGrads()
	logits := m.Forward(x, true)
	_, dl := SoftmaxCrossEntropy(logits, ys)
	m.Backward(dl)
	analytic := m.FlatGrads(nil)
	params := m.FlatParams(nil)

	r := rng.New(12345)
	const eps = 1e-5
	for c := 0; c < nChecks; c++ {
		i := r.Intn(len(params))
		orig := params[i]
		params[i] = orig + eps
		m.SetFlatParams(params)
		lp := lossOf(m, x, ys)
		params[i] = orig - eps
		m.SetFlatParams(params)
		lm := lossOf(m, x, ys)
		params[i] = orig
		m.SetFlatParams(params)
		numeric := (lp - lm) / (2 * eps)
		scale := math.Max(1, math.Max(math.Abs(analytic[i]), math.Abs(numeric)))
		if math.Abs(analytic[i]-numeric)/scale > tol {
			t.Fatalf("param %d: analytic %v vs numeric %v", i, analytic[i], numeric)
		}
	}
}

func randomBatch(in Shape, classes, batch int, seed uint64) (*tensor.Matrix, []int) {
	r := rng.New(seed)
	x := tensor.NewMatrix(batch, in.Dim())
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	ys := make([]int, batch)
	for i := range ys {
		ys[i] = r.Intn(classes)
	}
	return x, ys
}

func TestGradCheckMLP(t *testing.T) {
	m := NewMLP(12, []int{9, 7}, 4, 1)
	x, ys := randomBatch(Shape{C: 1, H: 1, W: 12}, 4, 5, 2)
	checkGradients(t, m, x, ys, 60, 1e-4)
}

func TestGradCheckConvNet(t *testing.T) {
	in := Shape{C: 2, H: 8, W: 8}
	r := rng.New(3)
	c1 := NewConv2D(in, 4, 3, 1, 1, r)
	p1 := NewMaxPool2D(c1.OutShape, 2)
	c2 := NewConv2D(p1.OutShape, 6, 3, 2, 1, r)
	fc := NewDense(c2.OutShape.Dim(), 3, r)
	m := NewModel("gradcheck-conv", in, 3, c1, NewReLU(), p1, c2, NewReLU(), fc)
	x, ys := randomBatch(in, 3, 4, 7)
	checkGradients(t, m, x, ys, 60, 1e-4)
}

func TestGradCheckBatchNorm(t *testing.T) {
	in := Shape{C: 3, H: 4, W: 4}
	r := rng.New(5)
	c1 := NewConv2D(in, 4, 3, 1, 1, r)
	bn := NewBatchNorm2D(c1.OutShape)
	fc := NewDense(c1.OutShape.Dim(), 3, r)
	m := NewModel("gradcheck-bn", in, 3, c1, bn, NewReLU(), fc)
	x, ys := randomBatch(in, 3, 6, 11)
	checkGradients(t, m, x, ys, 60, 1e-4)
}

func TestGradCheckResidualIdentity(t *testing.T) {
	in := Shape{C: 4, H: 6, W: 6}
	r := rng.New(7)
	blk := NewResidual(in, 4, 1, r) // identity shortcut
	fc := NewDense(blk.OutShape.Dim(), 3, r)
	m := NewModel("gradcheck-res-id", in, 3, blk, fc)
	x, ys := randomBatch(in, 3, 4, 13)
	checkGradients(t, m, x, ys, 50, 1e-4)
}

func TestGradCheckResidualProjection(t *testing.T) {
	in := Shape{C: 4, H: 6, W: 6}
	r := rng.New(9)
	blk := NewResidual(in, 8, 2, r) // 1×1 stride-2 projection shortcut
	fc := NewDense(blk.OutShape.Dim(), 3, r)
	m := NewModel("gradcheck-res-proj", in, 3, blk, fc)
	x, ys := randomBatch(in, 3, 4, 17)
	checkGradients(t, m, x, ys, 50, 1e-4)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	in := Shape{C: 5, H: 4, W: 4}
	r := rng.New(11)
	gap := NewGlobalAvgPool(in)
	fc := NewDense(5, 3, r)
	m := NewModel("gradcheck-gap", in, 3, gap, fc)
	x, ys := randomBatch(in, 3, 5, 19)
	checkGradients(t, m, x, ys, 40, 1e-4)
}

func TestGradCheckTinyResNet(t *testing.T) {
	in := Shape{C: 1, H: 8, W: 8}
	m := NewResNet(in, 3, 1, 0.25, 21) // ResNet-8 at quarter width
	x, ys := randomBatch(in, 3, 4, 23)
	checkGradients(t, m, x, ys, 40, 1e-4)
}
