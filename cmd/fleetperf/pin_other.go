//go:build !linux

package main

import "fmt"

// pinCPUs is unavailable off Linux; -pin fails loudly rather than silently
// measuring unpinned.
func pinCPUs(n int) error {
	if n < 1 {
		return nil
	}
	return fmt.Errorf("-pin requires Linux sched_setaffinity; run without -pin on this platform")
}
