package algos

import (
	"sapspsgd/internal/compress"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
)

// PSPSGD is the classical parameter-server PSGD of Table I's first row:
// every round each worker pushes its dense gradient to the server, the
// server averages and updates the global model, and every worker pulls the
// fresh dense model. Distinct from FedAvg (which averages models after
// multiple local steps) and from PSGD all-reduce (which has no server).
type PSPSGD struct {
	fleet      *Fleet
	server     *nn.Model
	lr         float64
	serverLink []float64
	avg        []float64
	grads      [][]float64
	scratch    []float64
}

// NewPSPSGD builds the parameter-server baseline.
func NewPSPSGD(fc FleetConfig, bw *netsim.Bandwidth) *PSPSGD {
	f := NewFleet(fc)
	p := &PSPSGD{
		fleet:      f,
		server:     fc.Factory(),
		lr:         fc.LR,
		serverLink: serverLinks(bw),
		avg:        make([]float64, f.Dim),
		grads:      make([][]float64, f.N),
		scratch:    make([]float64, f.Dim),
	}
	for i := range p.grads {
		p.grads[i] = make([]float64, f.Dim)
	}
	return p
}

// Name implements Algorithm.
func (p *PSPSGD) Name() string { return "PS-PSGD" }

// Models implements Algorithm: worker 0 mirrors the server parameters after
// every Step so evaluation uses trained normalization statistics (the
// server model itself never forward-passes).
func (p *PSPSGD) Models() []*nn.Model { return []*nn.Model{p.fleet.Models[0]} }

// Step implements Algorithm.
func (p *PSPSGD) Step(round int, led *netsim.Ledger) float64 {
	// Workers pull the current model, compute a gradient, and push it.
	serverParams := p.server.FlatParams(p.scratch)
	loss := p.fleet.Parallel(func(i int) float64 {
		p.fleet.Models[i].SetFlatParams(serverParams)
		l := p.fleet.GradStep(i)
		p.grads[i] = p.fleet.Models[i].FlatGrads(p.grads[i])
		return l
	})
	tensor.Fill(p.avg, 0)
	for i := 0; i < p.fleet.N; i++ {
		tensor.Axpy(1/float64(p.fleet.N), p.grads[i], p.avg)
	}
	tensor.Axpy(-p.lr, p.avg, serverParams)
	p.server.SetFlatParams(serverParams)
	p.fleet.Models[0].SetFlatParams(serverParams) // eval mirror (see Models)

	dense := compress.DenseBytes(p.fleet.Dim)
	for i := 0; i < p.fleet.N; i++ {
		// Upstream: dense gradient. Downstream: dense model.
		led.ServerTransfer(i, dense, dense, p.serverLink[i])
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*PSPSGD)(nil)
