package experiments

import (
	"fmt"

	"sapspsgd/internal/metrics"
	"sapspsgd/internal/trainer"
)

// CompressionSweep trains SAPS-PSGD at several compression ratios on one
// workload and tabulates the accuracy/traffic trade-off — the ablation
// behind the paper's choice of c = 100.
func CompressionSweep(w Workload, n int, ratios []float64, seed uint64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("SAPS-PSGD compression sweep (%s, %d workers, %d rounds)", w.Name, n, w.Rounds),
		"c", "Final accuracy", "Traffic (MB/worker)", "Comm time (s)")
	bw := EnvN(n, seed)
	_, valid := w.Dataset()
	for _, c := range ratios {
		wc := w
		wc.Ratios = w.ratios()
		wc.Ratios.SAPS = c
		alg, err := BuildAlgorithm("SAPS-PSGD", wc, n, bw, seed)
		if err != nil {
			return nil, err
		}
		res := trainer.Run(alg, bw, trainer.Config{
			Rounds: wc.Rounds, EvalEvery: wc.Rounds / 4, Valid: valid,
		})
		f := res.Final()
		t.Add(metrics.F(c), metrics.Pct(f.ValAcc), metrics.F(f.TrafficMB), metrics.F(f.TimeSec))
	}
	return t, nil
}

// PeerSelectionAblation compares adaptive, random and churned SAPS variants
// end to end on one environment.
func PeerSelectionAblation(w Workload, n int, seed uint64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Peer-selection ablation (%s, %d workers, %d rounds)", w.Name, n, w.Rounds),
		"Variant", "Final accuracy", "Traffic (MB/worker)", "Comm time (s)")
	bw := EnvN(n, seed)
	_, valid := w.Dataset()
	for _, name := range []string{"SAPS-PSGD", "RandomChoose", "SAPS-PSGD(churn)"} {
		alg, err := BuildAlgorithm(name, w, n, bw, seed)
		if err != nil {
			return nil, err
		}
		res := trainer.Run(alg, bw, trainer.Config{
			Rounds: w.Rounds, EvalEvery: w.Rounds / 4, Valid: valid,
		})
		f := res.Final()
		t.Add(name, metrics.Pct(f.ValAcc), metrics.F(f.TrafficMB), metrics.F(f.TimeSec))
	}
	return t, nil
}

// LocalStepsSweep varies the number of local SGD steps per communication
// round — an extension exploring the FedAvg-style local-update axis on top
// of SAPS's sparsified gossip.
func LocalStepsSweep(w Workload, n int, stepsList []int, seed uint64) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("SAPS-PSGD local-steps sweep (%s, %d workers)", w.Name, n),
		"Local steps", "Rounds", "Final accuracy", "Traffic (MB/worker)")
	bw := EnvN(n, seed)
	_, valid := w.Dataset()
	for _, steps := range stepsList {
		if steps < 1 {
			return nil, fmt.Errorf("experiments: local steps %d", steps)
		}
		// Keep total gradient work constant: more local steps, fewer rounds.
		rounds := w.Rounds / steps
		if rounds < 1 {
			rounds = 1
		}
		alg, err := buildSAPSWithLocalSteps(w, n, bw, seed, steps)
		if err != nil {
			return nil, err
		}
		res := trainer.Run(alg, bw, trainer.Config{
			Rounds: rounds, EvalEvery: max(1, rounds/4), Valid: valid,
		})
		f := res.Final()
		t.Add(fmt.Sprintf("%d", steps), fmt.Sprintf("%d", rounds), metrics.Pct(f.ValAcc), metrics.F(f.TrafficMB))
	}
	return t, nil
}
