package scenario

import (
	"fmt"
	"math"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// Env builds the spec's bandwidth environment, including the straggler
// scaling. Every random draw derives from the spec seed, so the environment
// is part of the reproducibility capsule.
func (s *Spec) Env() *netsim.Bandwidth {
	var bw *netsim.Bandwidth
	switch s.Bandwidth.Kind {
	case "uniform":
		bw = netsim.RandomUniform(s.Nodes, s.Bandwidth.Lo, s.Bandwidth.Hi, rng.New(s.Seed).Derive(0xba7d))
	case "clustered":
		bw = netsim.Clustered(s.Nodes, s.Bandwidth.Clusters, s.Bandwidth.Fast, s.Bandwidth.Slow, rng.New(s.Seed).Derive(0xba7d))
	case "cities":
		bw = netsim.FourteenCities()
	case "matrix":
		bw = netsim.NewBandwidth(s.Bandwidth.Matrix)
	default:
		panic("scenario: Env on unvalidated spec: " + s.Bandwidth.Kind)
	}
	if st := s.Straggler; st != nil && st.Fraction > 0 {
		k := int(math.Ceil(st.Fraction * float64(s.Nodes)))
		perm := rng.New(s.Seed).Derive(0x57a6).Perm(s.Nodes)
		bw = bw.Scaled(perm[:k], st.Slowdown)
	}
	return bw
}

// gossipConfig returns the spec's Algorithm 3 thresholds. When the spec
// omits the gossip section the defaults are BThres 0 (every link admitted)
// and TThres 10 (the repository's usual recency window); explicit values
// are validated by Spec.Validate (TThres must be ≥ 1).
func (s *Spec) gossipConfig() gossip.Config {
	if s.Gossip == nil {
		return gossip.Config{BThres: 0, TThres: 10}
	}
	return gossip.Config{BThres: s.Gossip.BThres, TThres: s.Gossip.TThres}
}

// Build assembles the spec's algorithm over the sharded engine runtime.
// shards overrides the spec's default shard count when > 0; pass 0 to use
// the spec's and -1 to force the serial goroutine-per-node pool.
func (s *Spec) Build(shards int) (algos.Algorithm, *netsim.Bandwidth, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	runtimeShards := s.effectiveShards(shards)
	tr, _ := dataset.TinyTask(s.Data.Samples, s.Data.Classes, s.Seed)
	fc := algos.FleetConfig{
		N:             s.Nodes,
		Factory:       func() *nn.Model { return nn.NewMLP(tr.Dim(), s.Model.Hidden, s.Data.Classes, s.Seed) },
		Shards:        dataset.PartitionIID(tr, s.Nodes, s.Seed),
		LR:            s.LR,
		Batch:         s.Batch,
		Seed:          s.Seed,
		RuntimeShards: runtimeShards,
	}
	bw := s.Env()
	var alg algos.Algorithm
	switch s.Algo {
	case "saps":
		cfg := core.Config{
			Workers:     s.Nodes,
			Compression: s.Compression,
			LR:          s.LR,
			Batch:       s.Batch,
			LocalSteps:  s.localSteps(),
			Gossip:      s.gossipConfig(),
			Seed:        s.Seed,
		}
		switch {
		case s.Churn != nil:
			alg = algos.NewSAPSChurn(fc, bw, cfg, algos.ChurnModel{
				LeaveProb: s.Churn.LeaveProb, JoinProb: s.Churn.JoinProb, MinActive: s.Churn.MinActive,
			})
		case s.Faults != nil:
			alg = algos.NewSAPSFaults(fc, bw, cfg, s.Faults.Schedule(s.Nodes, s.Seed))
		default:
			alg = algos.NewSAPS(fc, bw, cfg)
		}
	case "psgd":
		alg = algos.NewPSGD(fc)
	case "topk-psgd":
		alg = algos.NewTopKPSGD(fc, s.C)
	case "qsgd-psgd":
		alg = algos.NewQSGDPSGD(fc, s.Levels)
	case "d-psgd":
		alg = algos.NewDPSGD(fc)
	case "dcd-psgd":
		alg = algos.NewDCDPSGD(fc, s.C)
	case "ps-psgd":
		alg = algos.NewPSPSGD(fc, bw)
	case "fedavg":
		alg = algos.NewFedAvg(fc, bw, s.Fraction, s.localSteps())
	case "s-fedavg":
		alg = algos.NewSFedAvg(fc, bw, s.Fraction, s.localSteps(), s.C)
	default:
		return nil, nil, fmt.Errorf("scenario %s: unknown algorithm %q", s.Name, s.Algo)
	}
	return alg, bw, nil
}

// effectiveShards resolves a sweep override against the spec default:
// override > 0 wins, 0 defers to the spec, and -1 forces the serial
// goroutine-per-node pool (engine shard count 0).
func (s *Spec) effectiveShards(override int) int {
	switch {
	case override > 0:
		return override
	case override < 0:
		return 0
	}
	return s.Shards
}

// Result is one scenario execution's measurements — the per-run row of
// BENCH.json. TotalBytes is the deterministic traffic total (the sum of
// every endpoint's sent+received bytes, server included); wall fields are
// machine-dependent.
type Result struct {
	Shards       int     `json:"shards"`
	WallSeconds  float64 `json:"wall_seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	TotalBytes   int64   `json:"total_bytes"`
	SimSeconds   float64 `json:"sim_seconds"`
	FinalLoss    float64 `json:"final_loss"`
}

// Run builds and executes the scenario with the given shard override (see
// Build) against a bandwidth-accounted ledger.
func (s *Spec) Run(shards int) (Result, error) {
	alg, bw, err := s.Build(shards)
	if err != nil {
		return Result{}, err
	}
	led := netsim.NewLedger(bw)
	var loss float64
	start := time.Now()
	for r := 0; r < s.Rounds; r++ {
		loss = alg.Step(r, led)
	}
	wall := time.Since(start).Seconds()
	if c, ok := alg.(interface{ Close() }); ok {
		c.Close()
	}
	var total int64
	for w := 0; w < s.Nodes; w++ {
		snt, rcv := led.WorkerBytes(w)
		total += snt + rcv
	}
	total += led.ServerBytes()
	res := Result{
		Shards:      s.effectiveShards(shards),
		WallSeconds: wall,
		TotalBytes:  total,
		SimSeconds:  led.TotalTime(),
		FinalLoss:   loss,
	}
	if wall > 0 {
		res.RoundsPerSec = float64(s.Rounds) / wall
	}
	return res, nil
}
