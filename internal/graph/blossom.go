package graph

import "sapspsgd/internal/rng"

// Matching maps each vertex to its partner, or -1 if unmatched. It always has
// length N of the graph it was computed on.
type Matching []int

// Size returns the number of matched pairs.
func (m Matching) Size() int {
	n := 0
	for v, p := range m {
		if p > v {
			n++
		}
	}
	return n
}

// Pairs returns the matched pairs with u < v, sorted by u.
func (m Matching) Pairs() [][2]int {
	out := make([][2]int, 0, len(m)/2)
	for v, p := range m {
		if p > v {
			out = append(out, [2]int{v, p})
		}
	}
	return out
}

// Valid reports whether m is a consistent matching on a graph with n
// vertices: symmetric and within range.
func (m Matching) Valid(n int) bool {
	if len(m) != n {
		return false
	}
	for v, p := range m {
		if p == -1 {
			continue
		}
		if p < 0 || p >= n || p == v || m[p] != v {
			return false
		}
	}
	return true
}

// blossomSolver implements Edmonds' maximum cardinality matching for general
// graphs in O(V^3). The structure follows the classic contraction-free
// formulation: a BFS forest is grown from each unmatched root; odd cycles
// (blossoms) are contracted implicitly by re-basing vertices.
type blossomSolver struct {
	g       *Graph
	match   []int
	parent  []int
	base    []int
	queue   []int
	used    []bool
	inPath  []bool
	lcaMark []bool
}

// MaximumMatching computes a maximum cardinality matching of g using Edmonds'
// blossom algorithm. If rnd is non-nil, the vertex processing order and the
// neighbor iteration order are randomized — this is the paper's
// RandomlyMaxMatch ("by randomly starting from different node in a graph").
// The result is deterministic for a given rnd state.
func MaximumMatching(g *Graph, rnd *rng.Source) Matching {
	return AugmentToMaximum(g, nil, rnd)
}

// AugmentToMaximum grows an initial matching (nil means empty) to a maximum
// cardinality matching; vertices matched in the initial matching remain
// matched (augmenting paths only flip partners, never expose a vertex). This
// is how the bandwidth-greedy seed matching is completed to a perfect-as-
// possible matching without sacrificing its high-bandwidth pairs.
func AugmentToMaximum(g *Graph, initial Matching, rnd *rng.Source) Matching {
	n := g.N
	s := &blossomSolver{
		g:       g,
		match:   make([]int, n),
		parent:  make([]int, n),
		base:    make([]int, n),
		used:    make([]bool, n),
		inPath:  make([]bool, n),
		lcaMark: make([]bool, n),
	}
	for i := range s.match {
		s.match[i] = -1
	}
	if initial != nil {
		copy(s.match, initial)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	adj := g.adj
	if rnd != nil {
		rnd.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Copy-and-shuffle adjacency so neighbor exploration order (and hence
		// tie-breaking among equal-cardinality matchings) is randomized.
		adj = make([][]int, n)
		for v := range adj {
			a := make([]int, len(g.adj[v]))
			copy(a, g.adj[v])
			rnd.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
			adj[v] = a
		}
	}
	sg := &Graph{N: n, adj: adj, has: g.has}
	s.g = sg

	for _, v := range order {
		if s.match[v] == -1 {
			if end := s.findPath(v); end != -1 {
				s.augment(end)
			}
		}
	}
	return Matching(s.match)
}

// lca finds the lowest common ancestor of a and b in the alternating forest,
// walking via blossom bases.
func (s *blossomSolver) lca(a, b int) int {
	for i := range s.lcaMark {
		s.lcaMark[i] = false
	}
	for {
		a = s.base[a]
		s.lcaMark[a] = true
		if s.match[a] == -1 {
			break
		}
		a = s.parent[s.match[a]]
	}
	for {
		b = s.base[b]
		if s.lcaMark[b] {
			return b
		}
		b = s.parent[s.match[b]]
	}
}

// markPath marks all blossom bases on the path from v down to base b and
// rewires parents through child so the contracted blossom stays traversable.
func (s *blossomSolver) markPath(v, b, child int) {
	for s.base[v] != b {
		s.inPath[s.base[v]] = true
		s.inPath[s.base[s.match[v]]] = true
		s.parent[v] = child
		child = s.match[v]
		v = s.parent[s.match[v]]
	}
}

// findPath grows a BFS alternating tree from root and returns the free vertex
// terminating an augmenting path, or -1 if none exists.
func (s *blossomSolver) findPath(root int) int {
	n := s.g.N
	for i := 0; i < n; i++ {
		s.used[i] = false
		s.parent[i] = -1
		s.base[i] = i
	}
	s.used[root] = true
	s.queue = s.queue[:0]
	s.queue = append(s.queue, root)

	for qi := 0; qi < len(s.queue); qi++ {
		v := s.queue[qi]
		for _, to := range s.g.adj[v] {
			if s.base[v] == s.base[to] || s.match[v] == to {
				continue
			}
			if to == root || (s.match[to] != -1 && s.parent[s.match[to]] != -1) {
				// Odd cycle: contract the blossom rooted at the LCA.
				curBase := s.lca(v, to)
				for i := 0; i < n; i++ {
					s.inPath[i] = false
				}
				s.markPath(v, curBase, to)
				s.markPath(to, curBase, v)
				for i := 0; i < n; i++ {
					if s.inPath[s.base[i]] {
						s.base[i] = curBase
						if !s.used[i] {
							s.used[i] = true
							s.queue = append(s.queue, i)
						}
					}
				}
			} else if s.parent[to] == -1 {
				s.parent[to] = v
				if s.match[to] == -1 {
					return to
				}
				s.used[s.match[to]] = true
				s.queue = append(s.queue, s.match[to])
			}
		}
	}
	return -1
}

// augment flips matched/unmatched edges along the found path ending at v.
func (s *blossomSolver) augment(v int) {
	for v != -1 {
		pv := s.parent[v]
		next := s.match[pv]
		s.match[v] = pv
		s.match[pv] = v
		v = next
	}
}
