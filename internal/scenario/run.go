package scenario

import (
	"fmt"
	"math"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/fleettrace"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/obs"
	"sapspsgd/internal/profiling"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/trace"
)

// Env builds the spec's static bandwidth environment, including the
// straggler scaling. Every random draw derives from the spec seed, so the
// environment is part of the reproducibility capsule. When the spec sets
// bandwidth.jitter this is the *base* of the time-varying environment;
// Build layers the netsim.DynamicBandwidth wrapper on top.
func (s *Spec) Env() *netsim.Bandwidth {
	var bw *netsim.Bandwidth
	switch s.Bandwidth.Kind {
	case "uniform":
		bw = netsim.RandomUniform(s.Nodes, s.Bandwidth.Lo, s.Bandwidth.Hi, rng.New(s.Seed).Derive(0xba7d))
	case "clustered":
		bw = netsim.Clustered(s.Nodes, s.Bandwidth.Clusters, s.Bandwidth.Fast, s.Bandwidth.Slow, rng.New(s.Seed).Derive(0xba7d))
	case "cities":
		bw = netsim.FourteenCities()
	case "matrix":
		bw = netsim.NewBandwidth(s.Bandwidth.Matrix)
	case "sparse-uniform":
		bw = netsim.SparseRandomUniform(s.Nodes, s.Bandwidth.Degree, s.Bandwidth.Lo, s.Bandwidth.Hi, rng.New(s.Seed).Derive(0xba7d))
	case "sparse-clustered":
		bw = netsim.SparseClustered(s.Nodes, s.Bandwidth.Clusters, s.Bandwidth.Degree, s.Bandwidth.Fast, s.Bandwidth.Slow, rng.New(s.Seed).Derive(0xba7d))
	default:
		panic("scenario: Env on unvalidated spec: " + s.Bandwidth.Kind)
	}
	if st := s.Straggler; st != nil && st.Fraction > 0 {
		k := int(math.Ceil(st.Fraction * float64(s.Nodes)))
		perm := rng.New(s.Seed).Derive(0x57a6).Perm(s.Nodes)
		bw = bw.Scaled(perm[:k], st.Slowdown)
	}
	return bw
}

// gossipConfig returns the spec's Algorithm 3 thresholds. When the spec
// omits the gossip section the defaults are BThres 0 (every link admitted)
// and TThres 10 (the repository's usual recency window); explicit values
// are validated by Spec.Validate (TThres must be ≥ 1).
func (s *Spec) gossipConfig() gossip.Config {
	if s.Gossip == nil {
		return gossip.Config{BThres: 0, TThres: 10}
	}
	return gossip.Config{BThres: s.Gossip.BThres, TThres: s.Gossip.TThres}
}

// Build assembles the spec's algorithm over the sharded engine runtime.
// shards overrides the spec's default shard count when > 0; pass 0 to use
// the spec's and -1 to force the serial goroutine-per-node pool. With
// bandwidth.jitter or a trace block set, the returned *netsim.Bandwidth is
// the time-varying environment's stable snapshot (rewritten in place every
// round by Run).
func (s *Spec) Build(shards int) (algos.Algorithm, *netsim.Bandwidth, error) {
	alg, bw, _, err := s.build(shards)
	return alg, bw, err
}

// roundEnv is the per-round environment machinery RunFull advances at every
// round boundary: the jitter resampler and/or the trace-multiplier scaler.
// The composition order is fixed — straggler scaling is baked into the base
// environment, jitter resamples from that base, and the trace multipliers
// scale the jittered links — so every backend evaluating the same spec
// walks the same bandwidth sequence.
type roundEnv struct {
	dyn     *netsim.DynamicBandwidth
	scaler  *netsim.NodeScaledBandwidth
	replay  *fleettrace.Replay
	multBuf []float64
}

// tick advances the environment to round r. Round 0's state was produced at
// construction time.
func (e *roundEnv) tick(r int) {
	if e == nil || r == 0 {
		return
	}
	if e.dyn != nil {
		e.dyn.Tick()
	}
	if e.scaler != nil {
		e.multBuf = e.replay.Multipliers(r, e.multBuf)
		e.scaler.Apply(e.multBuf)
	}
}

// traceReplay parses the spec's trace block and binds it to the fleet.
func (s *Spec) traceReplay() (*fleettrace.Replay, error) {
	tr, err := fleettrace.ParseFile(s.TracePath())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	interp, err := fleettrace.ParseInterp(s.Trace.Interp)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	rp, err := fleettrace.NewReplay(tr, s.Nodes, interp)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return rp, nil
}

// partitionShards splits the training set per the partition block (IID when
// absent).
func (s *Spec) partitionShards(tr *dataset.Dataset) []*dataset.Dataset {
	p := s.Partition
	if p == nil || p.Kind == "iid" {
		return dataset.PartitionIID(tr, s.Nodes, s.Seed)
	}
	switch p.Kind {
	case "dirichlet":
		return dataset.PartitionDirichlet(tr, s.Nodes, p.Alpha, p.MinPerNode, s.Seed)
	case "quantity":
		return dataset.PartitionQuantitySkew(tr, s.Nodes, p.Alpha, p.MinPerNode, s.Seed)
	}
	panic("scenario: partitionShards on unvalidated spec: " + p.Kind)
}

// build is Build plus the per-round environment machinery Run ticks each
// round (nil when the environment is static).
func (s *Spec) build(shards int) (algos.Algorithm, *netsim.Bandwidth, *roundEnv, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, nil, err
	}
	runtimeShards := s.effectiveShards(shards)
	tr, _ := dataset.TinyTask(s.Data.Samples, s.Data.Classes, s.Seed)
	fc := algos.FleetConfig{
		N:             s.Nodes,
		Factory:       func() *nn.Model { return nn.NewMLP(tr.Dim(), s.Model.Hidden, s.Data.Classes, s.Seed) },
		Shards:        s.partitionShards(tr),
		LR:            s.LR,
		Batch:         s.Batch,
		Seed:          s.Seed,
		RuntimeShards: runtimeShards,
	}
	bw := s.Env()
	env := &roundEnv{}
	if s.Bandwidth.Jitter > 0 {
		// The dynamic wrapper's snapshot pointer is stable, so the planner
		// and ledger built over it observe the fresh speeds after every
		// Tick. Round 0 uses the constructor's initial sample.
		env.dyn = netsim.NewDynamicBandwidth(bw, s.Bandwidth.Jitter, rng.New(s.Seed).Derive(0xd14a).Uint64())
		bw = env.dyn.Current()
	}
	if s.Trace != nil {
		rp, err := s.traceReplay()
		if err != nil {
			return nil, nil, nil, err
		}
		// The scaler stacks on the (possibly jittered) environment; its
		// snapshot pointer is what the algorithm, planner, and ledger see.
		env.replay = rp
		env.scaler = netsim.NewNodeScaledBandwidth(bw)
		env.multBuf = rp.Multipliers(0, nil)
		bw = env.scaler.Apply(env.multBuf)
	}
	if env.dyn == nil && env.scaler == nil {
		env = nil
	}
	var alg algos.Algorithm
	switch s.Algo {
	case "saps":
		cfg := core.Config{
			Workers:     s.Nodes,
			Compression: s.Compression,
			LR:          s.LR,
			Batch:       s.Batch,
			LocalSteps:  s.localSteps(),
			Gossip:      s.gossipConfig(),
			Seed:        s.Seed,
		}
		switch {
		case s.Trace != nil && s.Trace.Events:
			var sched *algos.FaultSchedule
			if s.Faults != nil {
				fs := s.Faults.Schedule(s.Nodes, s.Seed)
				sched = &fs
			}
			alg = algos.NewSAPSTrace(fc, bw, cfg, env.replay, sched)
		case s.Churn != nil:
			alg = algos.NewSAPSChurn(fc, bw, cfg, algos.ChurnModel{
				LeaveProb: s.Churn.LeaveProb, JoinProb: s.Churn.JoinProb, MinActive: s.Churn.MinActive,
			})
		case s.Faults != nil:
			alg = algos.NewSAPSFaults(fc, bw, cfg, s.Faults.Schedule(s.Nodes, s.Seed))
		default:
			alg = algos.NewSAPS(fc, bw, cfg)
		}
	case "psgd":
		alg = algos.NewPSGD(fc)
	case "topk-psgd":
		alg = algos.NewTopKPSGD(fc, s.C)
	case "qsgd-psgd":
		alg = algos.NewQSGDPSGD(fc, s.Levels)
	case "d-psgd":
		alg = algos.NewDPSGD(fc)
	case "dcd-psgd":
		alg = algos.NewDCDPSGD(fc, s.C)
	case "ps-psgd":
		alg = algos.NewPSPSGD(fc, bw)
	case "fedavg":
		alg = algos.NewFedAvg(fc, bw, s.Fraction, s.localSteps())
	case "s-fedavg":
		alg = algos.NewSFedAvg(fc, bw, s.Fraction, s.localSteps(), s.C)
	default:
		return nil, nil, nil, fmt.Errorf("scenario %s: unknown algorithm %q", s.Name, s.Algo)
	}
	return alg, bw, env, nil
}

// effectiveShards resolves a sweep override against the spec default:
// override > 0 wins, 0 defers to the spec, and -1 forces the serial
// goroutine-per-node pool (engine shard count 0).
func (s *Spec) effectiveShards(override int) int {
	switch {
	case override > 0:
		return override
	case override < 0:
		return 0
	}
	return s.Shards
}

// Result is one scenario execution's measurements — the per-run row of
// BENCH.json. TotalBytes is the deterministic traffic total (the sum of
// every endpoint's sent+received bytes, server included); wall fields are
// machine-dependent.
type Result struct {
	Shards       int     `json:"shards"`
	WallSeconds  float64 `json:"wall_seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	TotalBytes   int64   `json:"total_bytes"`
	SimSeconds   float64 `json:"sim_seconds"`
	FinalLoss    float64 `json:"final_loss"`
	// PeakRSSBytes is the process's peak resident memory over the run
	// (informational: process-wide, so concurrent runs in one process
	// attribute each other's peaks; 0 when unreadable).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// Run builds and executes the scenario with the given shard override (see
// Build) against a bandwidth-accounted ledger.
func (s *Spec) Run(shards int) (Result, error) {
	out, err := s.RunFull(RunOptions{Shards: shards})
	if err != nil {
		return Result{}, err
	}
	return out.Result, nil
}

// RunOptions tunes one scenario execution beyond what the spec declares.
type RunOptions struct {
	// Shards is the engine shard override, interpreted exactly as Build's
	// parameter (0 = spec default, -1 = serial pool).
	Shards int
	// Trace attaches a trace.Recorder even when the spec does not set
	// trace; it is ignored for algorithms that cannot record one (only
	// the SAPS family can).
	Trace bool
	// Recorder, when non-nil, is the trace recorder to attach instead of
	// a fresh one (implies Trace). Pass a streaming recorder
	// (trace.Recorder.Stream) to write rows incrementally — the way long
	// large-N runs avoid holding every round in memory. Honored by SAPS
	// runs and by planner_only (which records loss-less rounds).
	Recorder *trace.Recorder
	// Series collects the per-round convergence series (Losses, CumBytes,
	// CumSimSeconds) the campaign aggregator turns into paper figures.
	Series bool
	// Events attaches a netsim.EventLog to the run and returns it in
	// RunOutput.Events — the virtual-time transfer/compute event stream.
	// Only async runs emit events; synchronous runs ignore the flag.
	Events bool
	// Params returns every rank's final flat parameter vector in
	// RunOutput.Params — the determinism gate's model artifact. Only async
	// runs honor the flag.
	Params bool
}

// RunOutput is one execution's full yield: the BENCH-row Result plus the
// optional per-round series and trace.
type RunOutput struct {
	// Result is the summary row (also what Run returns).
	Result Result
	// Losses is the per-round mean training loss (Series only).
	Losses []float64
	// CumBytes is the cumulative fleet traffic after each round (Series
	// only) — the x-axis of the paper's convergence-vs-traffic figures.
	CumBytes []int64
	// CumSimSeconds is the cumulative simulated communication time after
	// each round (Series only).
	CumSimSeconds []float64
	// Trace is the round recorder, non-nil when the spec or options asked
	// for tracing and the algorithm supports it.
	Trace *trace.Recorder
	// Events is the virtual-time event stream (async runs with
	// RunOptions.Events only).
	Events *netsim.EventLog
	// Params holds every rank's final flat parameter vector (async runs
	// with RunOptions.Params only).
	Params [][]float64
	// SentBytes and RecvBytes are the per-rank cumulative byte ledgers
	// (async runs only; synchronous runs read them off the netsim ledger).
	SentBytes, RecvBytes []int64
}

// RunFull builds and executes the scenario against a bandwidth-accounted
// ledger, ticking the dynamic environment (bandwidth.jitter) at every round
// boundary and collecting whatever extras the options request.
func (s *Spec) RunFull(opts RunOptions) (*RunOutput, error) {
	if s.PlannerOnly {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s.runPlannerOnly(opts)
	}
	if s.Async != nil {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s.runAsync(opts)
	}
	alg, bw, env, err := s.build(opts.Shards)
	if err != nil {
		return nil, err
	}
	profiling.ResetPeakRSS()
	out := &RunOutput{}
	if opts.Series {
		// The series lengths are known up front; preallocating keeps the
		// round loop free of append regrowth (which would otherwise copy
		// O(rounds) elements log(rounds) times over a long campaign run).
		out.Losses = make([]float64, 0, s.Rounds)
		out.CumBytes = make([]int64, 0, s.Rounds)
		out.CumSimSeconds = make([]float64, 0, s.Rounds)
	}
	if opts.Recorder != nil || opts.Trace || s.RecordTrace {
		if tr, ok := alg.(interface{ SetTrace(*trace.Recorder) }); ok {
			out.Trace = opts.Recorder
			if out.Trace == nil {
				out.Trace = trace.NewRecorder()
			}
			tr.SetTrace(out.Trace)
		}
	}
	led := netsim.NewLedger(bw)
	ri := obs.Current().RunsM().Start(s.Name, s.Algo, s.Nodes, s.Rounds)
	var loss float64
	start := time.Now()
	for r := 0; r < s.Rounds; r++ {
		// Round 0 runs on the environment built at construction; every
		// later round advances the jitter and/or trace multipliers in
		// place before planning.
		env.tick(r)
		loss = alg.Step(r, led)
		ri.SetRound(r + 1)
		if opts.Series {
			out.Losses = append(out.Losses, loss)
			out.CumBytes = append(out.CumBytes, fleetBytes(led, s.Nodes))
			out.CumSimSeconds = append(out.CumSimSeconds, led.TotalTime())
		}
	}
	wall := time.Since(start).Seconds()
	obs.Current().RunsM().Done(ri)
	if c, ok := alg.(interface{ Close() }); ok {
		c.Close()
	}
	out.Result = Result{
		Shards:       s.effectiveShards(opts.Shards),
		WallSeconds:  wall,
		TotalBytes:   fleetBytes(led, s.Nodes),
		SimSeconds:   led.TotalTime(),
		FinalLoss:    loss,
		PeakRSSBytes: profiling.PeakRSS(),
	}
	if wall > 0 {
		out.Result.RoundsPerSec = float64(s.Rounds) / wall
	}
	s.logRunSummary("sync", out)
	return out, nil
}

// runPlannerOnly executes the coordinator side alone: Algorithm 3 planning,
// the shared round mask's byte accounting, and the ledger charges — exactly
// the Exchange(v, p, payload, payload) per matched pair that the engine's
// driver issues — with no models, data, or worker state. TotalBytes and
// SimSeconds are bit-identical to the full run's (the coordinator's mask-seed
// stream and matchings are the same); the per-round series carry zero losses.
func (s *Spec) runPlannerOnly(opts RunOptions) (*RunOutput, error) {
	profiling.ResetPeakRSS()
	bw := s.Env()
	var dyn *netsim.DynamicBandwidth
	if s.Bandwidth.Jitter > 0 {
		dyn = netsim.NewDynamicBandwidth(bw, s.Bandwidth.Jitter, rng.New(s.Seed).Derive(0xd14a).Uint64())
		bw = dyn.Current()
	}
	coord := core.NewCoordinator(bw, core.Config{
		Workers:     s.Nodes,
		Compression: s.Compression,
		LR:          s.LR,
		Batch:       s.Batch,
		LocalSteps:  s.localSteps(),
		Gossip:      s.gossipConfig(),
		Seed:        s.Seed,
	})
	// The model is never instantiated; only its parameter count matters for
	// the mask dimension, and MLP geometry determines it exactly.
	dim := nn.MLPParamCount(dataset.TinyInputDim, s.Model.Hidden, s.Data.Classes)
	led := netsim.NewLedger(bw)
	out := &RunOutput{}
	if opts.Series {
		out.Losses = make([]float64, 0, s.Rounds)
		out.CumBytes = make([]int64, 0, s.Rounds)
		out.CumSimSeconds = make([]float64, 0, s.Rounds)
	}
	if opts.Recorder != nil {
		out.Trace = opts.Recorder
	} else if opts.Trace {
		out.Trace = trace.NewRecorder()
	}
	ri := obs.Current().RunsM().Start(s.Name, s.Algo+"/planner", s.Nodes, s.Rounds)
	var mask []bool
	start := time.Now()
	for r := 0; r < s.Rounds; r++ {
		if dyn != nil && r > 0 {
			dyn.Tick()
		}
		plan := coord.PlanActive(r, nil)
		mask = compress.MaskInto(mask, plan.Seed, r, dim, s.Compression)
		payload := compress.MaskedBytes(compress.CountOnes(mask))
		for v, p := range plan.Peer {
			if p > v {
				led.Exchange(v, p, payload, payload)
			}
		}
		led.EndRound()
		ri.SetRound(r + 1)
		if out.Trace != nil {
			// The plan's peer array is the round's matching; losses are not
			// computed on the coordinator side, so the column reads zero.
			out.Trace.Record(r, graph.Matching(plan.Peer), bw, plan.Forced, payload, s.Nodes, 0)
		}
		if opts.Series {
			out.Losses = append(out.Losses, 0)
			out.CumBytes = append(out.CumBytes, fleetBytes(led, s.Nodes))
			out.CumSimSeconds = append(out.CumSimSeconds, led.TotalTime())
		}
	}
	wall := time.Since(start).Seconds()
	obs.Current().RunsM().Done(ri)
	out.Result = Result{
		Shards:       s.effectiveShards(opts.Shards),
		WallSeconds:  wall,
		TotalBytes:   fleetBytes(led, s.Nodes),
		SimSeconds:   led.TotalTime(),
		PeakRSSBytes: profiling.PeakRSS(),
	}
	if wall > 0 {
		out.Result.RoundsPerSec = float64(s.Rounds) / wall
	}
	s.logRunSummary("planner_only", out)
	return out, nil
}

// runAsync executes an asynchronous spec on the engine's event-driven
// driver: the fleet gossips without a global barrier against the virtual
// clock, and the per-round series slots carry the sample series instead
// (Losses[k] is sample k's window-mean loss, CumSimSeconds[k] its virtual
// time). Result.Shards is always 0 — async runs have no engine sharding —
// and the run is bit-reproducible regardless of GOMAXPROCS.
func (s *Spec) runAsync(opts RunOptions) (*RunOutput, error) {
	profiling.ResetPeakRSS()
	a := s.Async
	tr, _ := dataset.TinyTask(s.Data.Samples, s.Data.Classes, s.Seed)
	fc := algos.FleetConfig{
		N:       s.Nodes,
		Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), s.Model.Hidden, s.Data.Classes, s.Seed) },
		Shards:  s.partitionShards(tr),
		LR:      s.LR,
		Batch:   s.Batch,
		Seed:    s.Seed,
	}
	rec := s.recipe()
	af := algos.NewAsyncFleet(fc, rec)
	var slow []int
	if a.SlowFraction > 0 {
		k := int(math.Ceil(a.SlowFraction * float64(s.Nodes)))
		perm := rng.New(s.Seed).Derive(0xa51c).Perm(s.Nodes)
		slow = append([]int(nil), perm[:k]...)
	}
	eopts := engine.AsyncOptions{
		Nodes:     af.Nodes,
		Codecs:    af.Codecs,
		Bandwidth: s.Env(),
		Seed:      s.Seed,
		Steps:     s.Rounds,
		OneWay:    rec.OneWay(),
		Compute: engine.AsyncComputeModel{
			MeanSeconds: a.ComputeSeconds,
			Jitter:      a.Jitter,
			SlowFactor:  a.SlowFactor,
			SlowRanks:   slow,
		},
		SampleEvery: a.SampleEvery,
	}
	out := &RunOutput{}
	if opts.Events {
		out.Events = &netsim.EventLog{}
		eopts.Sink = out.Events
	}
	eng, err := engine.NewAsync(eopts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	ri := obs.Current().RunsM().Start(s.Name, s.Algo+"/async", s.Nodes, s.Rounds)
	start := time.Now()
	res, err := eng.Run()
	obs.Current().RunsM().Done(ri)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	wall := time.Since(start).Seconds()
	if opts.Series {
		for _, smp := range res.Samples {
			out.Losses = append(out.Losses, smp.MeanLoss)
			out.CumBytes = append(out.CumBytes, smp.CumBytes)
			out.CumSimSeconds = append(out.CumSimSeconds, smp.Time)
		}
	}
	if opts.Params {
		for _, m := range af.Models {
			out.Params = append(out.Params, m.FlatParams(nil))
		}
	}
	out.SentBytes = res.SentBytes
	out.RecvBytes = res.RecvBytes
	out.Result = Result{
		WallSeconds:  wall,
		TotalBytes:   res.TotalBytes,
		SimSeconds:   res.FinalTime,
		FinalLoss:    res.FinalLoss,
		PeakRSSBytes: profiling.PeakRSS(),
	}
	if wall > 0 {
		out.Result.RoundsPerSec = float64(s.Rounds) / wall
	}
	s.logRunSummary("async", out)
	return out, nil
}

// logRunSummary emits the structured end-of-run line through the global
// logger (a no-op when logging is off), making batch logs greppable
// without parsing artifacts.
func (s *Spec) logRunSummary(mode string, out *RunOutput) {
	l := obs.Logger()
	if l == nil {
		return
	}
	l.Info("run complete",
		"scenario", s.Name,
		"algo", s.Algo,
		"mode", mode,
		"nodes", s.Nodes,
		"rounds", s.Rounds,
		"total_bytes", out.Result.TotalBytes,
		"wall_seconds", out.Result.WallSeconds,
		"sim_seconds", out.Result.SimSeconds,
		"final_loss", out.Result.FinalLoss,
		"peak_rss_bytes", out.Result.PeakRSSBytes,
	)
}

// fleetBytes sums every endpoint's sent+received bytes, server included.
func fleetBytes(led *netsim.Ledger, nodes int) int64 {
	var total int64
	for w := 0; w < nodes; w++ {
		snt, rcv := led.WorkerBytes(w)
		total += snt + rcv
	}
	return total + led.ServerBytes()
}
