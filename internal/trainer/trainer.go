// Package trainer drives any algos.Algorithm round by round over a simulated
// bandwidth environment, evaluating the global (worker-averaged) model
// periodically and recording the accuracy / traffic / simulated-time series
// from which every figure and table of the paper's evaluation is
// regenerated.
package trainer

import (
	"fmt"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
)

// Config controls one training run.
type Config struct {
	// Rounds is the number of communication rounds T.
	Rounds int
	// EvalEvery evaluates the global model every this many rounds (and
	// always on the final round). Values < 1 default to Rounds/20.
	EvalEvery int
	// Valid is the held-out evaluation set.
	Valid *dataset.Dataset
	// BatchesPerEpoch converts rounds to epochs in the records (0 disables
	// the conversion).
	BatchesPerEpoch int
}

// Record is one evaluation point of a run.
type Record struct {
	Round     int
	Epoch     float64
	TrainLoss float64
	ValLoss   float64
	ValAcc    float64
	// TrafficMB is the mean cumulative per-worker communication volume in
	// megabytes (the x-axis of Fig. 4).
	TrafficMB float64
	// TimeSec is the cumulative simulated communication time in seconds
	// (the x-axis of Fig. 6).
	TimeSec float64
}

// Result is a full run: the algorithm name, its evaluation series, and the
// final ledger.
type Result struct {
	Algorithm string
	Records   []Record
	Ledger    *netsim.Ledger
}

// Final returns the last record (zero value if none).
func (r Result) Final() Record {
	if len(r.Records) == 0 {
		return Record{}
	}
	return r.Records[len(r.Records)-1]
}

// FirstReaching returns the first record with ValAcc >= target, and whether
// one exists — the "traffic/time to reach target accuracy" query of
// Table IV.
func (r Result) FirstReaching(target float64) (Record, bool) {
	for _, rec := range r.Records {
		if rec.ValAcc >= target {
			return rec, true
		}
	}
	return Record{}, false
}

// Run trains alg for cfg.Rounds rounds over the bandwidth environment. An
// algorithm holding background resources (the engine's worker pool) exposes
// Close; Run releases it when the run completes, so the algorithm cannot be
// stepped again afterwards (its models and diagnostics stay readable).
func Run(alg algos.Algorithm, bw *netsim.Bandwidth, cfg Config) Result {
	if cfg.Rounds < 1 {
		panic(fmt.Sprintf("trainer: rounds %d", cfg.Rounds))
	}
	if c, ok := alg.(interface{ Close() }); ok {
		defer c.Close()
	}
	evalEvery := cfg.EvalEvery
	if evalEvery < 1 {
		evalEvery = cfg.Rounds / 20
		if evalEvery < 1 {
			evalEvery = 1
		}
	}
	led := netsim.NewLedger(bw)
	res := Result{Algorithm: alg.Name(), Ledger: led}
	recentLoss := 0.0
	for t := 0; t < cfg.Rounds; t++ {
		recentLoss = alg.Step(t, led)
		if (t+1)%evalEvery == 0 || t == cfg.Rounds-1 {
			vl, va := 0.0, 0.0
			if cfg.Valid != nil {
				vl, va = EvalMean(alg.Models(), cfg.Valid)
			}
			rec := Record{
				Round:     t + 1,
				TrainLoss: recentLoss,
				ValLoss:   vl,
				ValAcc:    va,
				TrafficMB: led.MeanWorkerTrafficMB(),
				TimeSec:   led.TotalTime(),
			}
			if cfg.BatchesPerEpoch > 0 {
				rec.Epoch = float64(t+1) / float64(cfg.BatchesPerEpoch)
			}
			res.Records = append(res.Records, rec)
		}
	}
	return res
}

// EvalMean evaluates the parameter average of the given models on the
// validation set, using the first model's instance (and hence its
// normalization running statistics) as the evaluation vehicle. The model's
// parameters are restored afterwards.
func EvalMean(models []*nn.Model, valid *dataset.Dataset) (loss, acc float64) {
	if len(models) == 0 {
		return 0, 0
	}
	host := models[0]
	if len(models) == 1 {
		return nn.EvaluateDataset(host, valid, 128)
	}
	dim := host.ParamCount()
	mean := tensor.GetVec(dim)
	flat := tensor.GetVecRaw(dim)  // fully written by FlatParams
	saved := tensor.GetVecRaw(dim) // fully written by FlatParams
	defer func() {
		tensor.PutVec(mean)
		tensor.PutVec(flat)
		tensor.PutVec(saved)
	}()
	for _, m := range models {
		tensor.Axpy(1/float64(len(models)), m.FlatParams(flat), mean)
	}
	saved = host.FlatParams(saved)
	host.SetFlatParams(mean)
	loss, acc = nn.EvaluateDataset(host, valid, 128)
	host.SetFlatParams(saved)
	return loss, acc
}

// Consensus returns Σ_i ‖x_i − x̄‖² across the models — the disagreement
// quantity bounded by Theorem 1.
func Consensus(models []*nn.Model) float64 {
	if len(models) < 2 {
		return 0
	}
	dim := models[0].ParamCount()
	mean := tensor.GetVec(dim)
	defer tensor.PutVec(mean)
	flats := make([][]float64, len(models))
	for i, m := range models {
		flats[i] = m.FlatParams(tensor.GetVecRaw(dim))
		tensor.Axpy(1/float64(len(models)), flats[i], mean)
	}
	total := 0.0
	for _, f := range flats {
		for j := range f {
			d := f[j] - mean[j]
			total += d * d
		}
	}
	for _, f := range flats {
		tensor.PutVec(f)
	}
	return total
}
