// Package simtransport is the simulated-bandwidth engine backend: the same
// in-process payload rendezvous as memtransport, but every exchange is
// charged against a netsim bandwidth matrix so round wall time and per-worker
// traffic reproduce the paper's simulation exactly. The *netsim.Ledger it
// returns satisfies engine.Ledger directly.
package simtransport

import (
	"sapspsgd/internal/engine/memtransport"
	"sapspsgd/internal/netsim"
)

// New returns the transport and bandwidth-accounted ledger for an engine run
// over the environment bw: pass both to engine.New / engine.Step and the run
// is charged byte-for-byte and second-for-second as in the netsim harness.
func New(bw *netsim.Bandwidth) (*memtransport.Hub, *netsim.Ledger) {
	return memtransport.NewHub(bw.N), netsim.NewLedger(bw)
}
