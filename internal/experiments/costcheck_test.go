package experiments

import (
	"math"
	"testing"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
)

// TestMeasuredTrafficMatchesTableI cross-checks the engine's *measured*
// per-round wire bytes (what the codecs actually encoded) against the
// paper's analytic Table I cost model for every compared algorithm.
//
// The measured quantity is a worker's mean per-round volume: sent + received
// bytes at the worker's endpoints (the convention of Fig. 4's per-worker
// communication size). Table I counts transmitted float32 values, so each
// algorithm carries a documented conversion factor and tolerance:
//
//   - PS-PSGD (dense codec): factor 1 — 2N values = N up + N down, exact.
//   - FedAvg (dense): factor = participation fraction — Table I assumes
//     every worker participates every round; only the chosen fraction does.
//   - S-FedAvg (random-k + dense down): factor = fraction. The (N + 2N/c)
//     row already prices the k explicit indices at one extra value each, so
//     only participation scales it. Evaluated at k = ⌊N/c⌋ (tolerance 5%).
//   - PSGD (dense, halving/doubling collective): factor 2(n-1)/n — the
//     butterfly ships 2·N·(n-1)/n values each way, and volume counts both
//     directions where Table I's 2N counts the classic ring's per-worker
//     send volume. Exact for power-of-two n with n | N.
//   - TopK-PSGD (top-k codec): factor 2(n-1)/n — the 8-byte (index, value)
//     entries double the 4-byte value count, cancelling against Table I's
//     n-vs-(n-1) gather count. Evaluated at k = ⌊N/c⌋ (tolerance 5%).
//   - D-PSGD (dense, ring neighborhood): factor 1/2 — Table I's 4·np·N
//     prices each neighbor coordinate at both endpoints; a single worker's
//     endpoint volume is half that.
//   - DCD-PSGD (top-k): factor 1 — the halved endpoint volume and the
//     doubled entry size cancel exactly. Tolerance 5% for ⌊N/c⌋.
//   - SAPS-PSGD (shared-seed masked codec): factor 1, tolerance 15% — the
//     Bernoulli(1/c) mask makes the payload stochastic around N/c.
func TestMeasuredTrafficMatchesTableI(t *testing.T) {
	const n, rounds, seed = 8, 4, 7
	w := Workload{
		Name: "traffic-check", PaperName: "-",
		In: nn.Shape{C: 1, H: 8, W: 8}, Classes: 4,
		Factory: func(s uint64) *nn.Model {
			return nn.NewMLP(64, []int{12}, 4, s)
		},
		TrainSamples: 256, ValidSamples: 64, DataSeed: 3,
		LR: 0.05, Batch: 8, Rounds: rounds,
		Ratios: Ratios{TopK: 20, SFed: 10, DCD: 4, SAPS: 10},
	}
	dim := w.Factory(1).ParamCount()
	bw := EnvN(n, seed)
	ratios := w.ratios()

	// Table I per-round worker cost in values (T = 1, np = 2 on the ring),
	// straight from the costmodel.go rows. The sparsifying codecs run at
	// k = ⌊N/c⌋ while the table divides by real-valued c; the 5% tolerance
	// absorbs the flooring.
	costAt := func(name string, c float64) float64 {
		if c == 0 {
			c = 1
		}
		row := name
		if name == "PSGD" {
			row = "PSGD (all-reduce)"
		}
		costs := WorkerCostValues(NewCostParams(n, dim, c, 1, 2))
		v, ok := costs[row]
		if !ok {
			t.Fatalf("no Table I row for %s", row)
		}
		return v
	}

	cases := []struct {
		name      string
		c         float64
		factor    float64
		tolerance float64
	}{
		{"PSGD", 0, 2 * float64(n-1) / float64(n), 1e-9},
		{"TopK-PSGD", ratios.TopK, 2 * float64(n-1) / float64(n), 0.05},
		{"FedAvg", 0, FedFrac, 1e-9},
		{"S-FedAvg", ratios.SFed, FedFrac, 0.05},
		{"D-PSGD", 0, 0.5, 1e-9},
		{"DCD-PSGD", ratios.DCD, 1, 0.05},
		{"PS-PSGD", 0, 1, 1e-9},
		{"SAPS-PSGD", ratios.SAPS, 1, 0.15},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			alg, err := BuildAlgorithm(tc.name, w, n, bw, seed)
			if err != nil {
				t.Fatal(err)
			}
			led := &engine.CountingLedger{}
			for r := 0; r < rounds; r++ {
				alg.Step(r, led)
			}
			var volume int64
			for i := 0; i < n; i++ {
				s, rcv := led.WorkerBytes(i)
				volume += s + rcv
			}
			measured := float64(volume) / float64(n) / float64(rounds)
			want := tc.factor * costAt(tc.name, tc.c) * compress.BytesPerValue
			if diff := math.Abs(measured-want) / want; diff > tc.tolerance {
				t.Fatalf("%s: measured %.1f bytes/worker/round, Table I × %.3f = %.1f (off by %.1f%%, tolerance %.0f%%)",
					tc.name, measured, tc.factor, want, 100*diff, 100*tc.tolerance)
			}
		})
	}

	// QSGD has no Table I row; check its exact packed wire size instead:
	// per pair and direction, 4 norm bytes + 4 bits per coordinate at
	// s = 4 levels (9 symbols).
	t.Run("QSGD-PSGD", func(t *testing.T) {
		t.Parallel()
		alg, err := BuildAlgorithm("QSGD-PSGD", w, n, bw, seed)
		if err != nil {
			t.Fatal(err)
		}
		led := &engine.CountingLedger{}
		for r := 0; r < rounds; r++ {
			alg.Step(r, led)
		}
		perPayload := compress.QuantizedWireBytes(dim, 4)
		want := int64(n) * int64(n-1) * perPayload * int64(rounds)
		if led.TotalBytes() != want {
			t.Fatalf("QSGD total %d bytes, want %d (n·(n-1) payloads of %d bytes per round)",
				led.TotalBytes(), want, perPayload)
		}
	})
}
