package scenario

import (
	"strings"
	"testing"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/nn"
)

// plannerBase is a full-training SAPS spec small enough to run both ways.
func plannerBase() *Spec {
	return &Spec{
		SchemaVersion: SpecSchemaVersion,
		Name:          "planner-equiv",
		Algo:          "saps",
		Nodes:         10,
		Rounds:        8,
		Seed:          21,
		LR:            0.05,
		Batch:         8,
		Compression:   20,
		Gossip:        &GossipSpec{BThres: 1, TThres: 4},
		Model:         ModelSpec{Hidden: []int{16}},
		Data:          DataSpec{Samples: 120, Classes: 4},
		Bandwidth:     BandwidthSpec{Kind: "uniform", Lo: 0.5, Hi: 5},
	}
}

// TestPlannerOnlyMatchesFullRun is the planner-only path's correctness
// anchor: on a spec small enough to train, the coordinator-side replay must
// charge exactly the bytes and simulated seconds of the full run — same mask
// seed stream, same matchings, same per-pair payloads.
func TestPlannerOnlyMatchesFullRun(t *testing.T) {
	for _, kind := range []string{"uniform", "sparse-uniform"} {
		full := plannerBase()
		if kind == "sparse-uniform" {
			full.Bandwidth = BandwidthSpec{Kind: "sparse-uniform", Lo: 0.5, Hi: 5, Degree: 4}
		}
		fr, err := full.Run(0)
		if err != nil {
			t.Fatalf("%s full run: %v", kind, err)
		}
		planner := full.Clone()
		planner.PlannerOnly = true
		pr, err := planner.Run(0)
		if err != nil {
			t.Fatalf("%s planner run: %v", kind, err)
		}
		if fr.TotalBytes == 0 {
			t.Fatalf("%s: full run moved no bytes", kind)
		}
		if pr.TotalBytes != fr.TotalBytes {
			t.Errorf("%s: planner-only bytes %d, full run %d", kind, pr.TotalBytes, fr.TotalBytes)
		}
		if pr.SimSeconds != fr.SimSeconds {
			t.Errorf("%s: planner-only sim time %v, full run %v", kind, pr.SimSeconds, fr.SimSeconds)
		}
	}
}

// TestMLPParamCountMatchesModel guards the dimension the planner-only path
// masks over: the closed-form count must equal the real model's.
func TestMLPParamCountMatchesModel(t *testing.T) {
	for _, hidden := range [][]int{nil, {16}, {64, 32}} {
		want := nn.NewMLP(dataset.TinyInputDim, hidden, 10, 1).ParamCount()
		if got := nn.MLPParamCount(dataset.TinyInputDim, hidden, 10); got != want {
			t.Fatalf("hidden %v: MLPParamCount %d, model has %d", hidden, got, want)
		}
	}
}

// TestSparseScenarioTrains runs full SAPS training over a sparse CSR
// environment end to end (the sparse kinds are not planner-only-restricted).
func TestSparseScenarioTrains(t *testing.T) {
	s, err := Load("testdata/saps-sparse-small.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes <= 0 || res.SimSeconds <= 0 {
		t.Fatalf("sparse training run accounted nothing: %+v", res)
	}
	if res.FinalLoss <= 0 {
		t.Fatalf("sparse training run has no loss: %+v", res)
	}
}

// TestLargeNSpecsLoad validates the committed large-N capsules without
// running them (the 50k run is the BENCH harness's job), and pins that they
// live outside the default sweep directory.
func TestLargeNSpecsLoad(t *testing.T) {
	for _, path := range []string{
		"testdata/largen/saps-10k-planner.json",
		"testdata/largen/saps-50k-planner.json",
	} {
		s, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if !s.PlannerOnly || !strings.HasPrefix(s.Bandwidth.Kind, "sparse-") {
			t.Fatalf("%s: large-N capsule must be planner_only over a sparse environment", path)
		}
	}
	sweep, err := LoadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		if s.Nodes > 1000 {
			t.Fatalf("default sweep picked up large-N spec %s (%d nodes)", s.Name, s.Nodes)
		}
	}
}

// TestPlannerOnlyValidation pins the planner_only and sparse-kind rejection
// rules.
func TestPlannerOnlyValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"planner_only on non-saps", func(s *Spec) { s.Algo, s.Compression = "psgd", 0; s.PlannerOnly = true }, "requires algo saps"},
		{"planner_only with churn", func(s *Spec) {
			s.PlannerOnly = true
			s.Churn = &ChurnSpec{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 2}
		}, "excludes churn"},
		{"planner_only with record_trace", func(s *Spec) { s.PlannerOnly, s.RecordTrace = true, true }, "excludes churn/faults/trace"},
		{"sparse degree too small", func(s *Spec) {
			s.Bandwidth = BandwidthSpec{Kind: "sparse-uniform", Lo: 1, Hi: 5, Degree: 1}
		}, "degree 1"},
		{"sparse degree too large", func(s *Spec) {
			s.Bandwidth = BandwidthSpec{Kind: "sparse-uniform", Lo: 1, Hi: 5, Degree: 10}
		}, "degree 10"},
		{"sparse-clustered without speeds", func(s *Spec) {
			s.Bandwidth = BandwidthSpec{Kind: "sparse-clustered", Clusters: 2, Degree: 4}
		}, "sparse-clustered bandwidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := plannerBase()
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestBenchDiffRSSGate pins the peak-RSS regression gate on perf rows: gated
// on every machine (unlike ns/op), with the fraction+absolute-slack rule, and
// skipped when either side lacks a reading.
func TestBenchDiffRSSGate(t *testing.T) {
	row := PerfRow{Name: "planner/sparse-uniform/n10000/d4810/s0/p1",
		BytesMoved: 100, PeakRSSBytes: 200 << 20}
	mk := func(mut func(*PerfRow)) *BenchFile {
		r := row
		mut(&r)
		return &BenchFile{SchemaVersion: BenchSchemaVersion, Perf: []PerfRow{r}}
	}
	base := mk(func(*PerfRow) {})

	if err := Diff(base, mk(func(*PerfRow) {}), 0.25); err != nil {
		t.Fatalf("identical RSS diffed dirty: %v", err)
	}
	// Within +50% + 64MB: clean.
	if err := Diff(base, mk(func(r *PerfRow) { r.PeakRSSBytes = 300 << 20 }), 0.25); err != nil {
		t.Fatalf("in-tolerance RSS growth rejected: %v", err)
	}
	// 200MB → 2GB (a dense-path reintroduction at 10k nodes): caught, even
	// cross-machine.
	f := mk(func(r *PerfRow) { r.PeakRSSBytes = 2 << 30 })
	f.GoMaxProcs = base.GoMaxProcs + 7
	if err := Diff(base, f, 0.25); err == nil || !strings.Contains(err.Error(), "peak RSS") {
		t.Fatalf("RSS blow-up not caught: %v", err)
	}
	// A baseline row carrying its own tolerance overrides the default.
	wide := mk(func(r *PerfRow) { r.MaxRSSRegress = 12 })
	if err := Diff(wide, mk(func(r *PerfRow) { r.PeakRSSBytes = 2 << 30 }), 0.25); err != nil {
		t.Fatalf("per-row RSS tolerance ignored: %v", err)
	}
	// No reading on one side: skipped.
	if err := Diff(mk(func(r *PerfRow) { r.PeakRSSBytes = 0 }), mk(func(r *PerfRow) { r.PeakRSSBytes = 4 << 30 }), 0.25); err != nil {
		t.Fatalf("unreadable baseline RSS gated: %v", err)
	}
}
