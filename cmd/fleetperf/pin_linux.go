//go:build linux

package main

import (
	"fmt"
	"syscall"
	"unsafe"
)

// pinCPUs restricts the process to the first n logical CPUs via
// sched_setaffinity, the same discipline benchmark drivers use to keep
// multicore numbers stable on shared machines. It must run before the
// measurement spawns its worker threads: Linux affinity is per-thread and
// inherited on clone, so threads created after the call stay pinned while
// pre-existing runtime threads may not be. fleetperf pins first thing in
// run(), before any engine exists.
func pinCPUs(n int) error {
	if n < 1 {
		return nil
	}
	const maxCPUs = 1024
	if n > maxCPUs {
		n = maxCPUs
	}
	var mask [maxCPUs / 64]uint64
	for i := 0; i < n; i++ {
		mask[i/64] |= 1 << (i % 64)
	}
	if _, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY, 0,
		uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0]))); errno != 0 {
		return fmt.Errorf("sched_setaffinity: %v", errno)
	}
	return nil
}
