// Command fleetperf is the pinned multicore throughput harness for the
// engine's hot path: it sweeps the round loop over a grid of pattern × codec
// × fleet size × model size × shard count, measures wall time, allocations,
// and wire traffic per round, and emits the rows into the stable-schema
// BENCH.json summary (schema v2 "perf" section) that cmd/fleetbench -diff
// gates in CI.
//
// Unlike cmd/fleetbench, which executes full declarative scenarios (real
// models, bandwidth ledgers), fleetperf drives the engine with a deliberately
// trivial node so the measurement isolates the runtime itself: rendezvous,
// barriers, codecs, and report plumbing.
//
//	fleetperf -short -out PERF.json              # CI single-core smoke grid
//	fleetperf -procs 1,0 -pin 8 -out PERF.json   # dev box: pinned, 1-core + all-core rows
//	fleetperf -short -base BENCH.json -out bench_baseline.json
//
// Every row records the GOMAXPROCS it ran under, so single-core rows taken
// on a wide machine stay comparable against a single-core CI baseline. -pin
// restricts the process to the first N logical CPUs (Linux only), keeping
// multicore numbers stable on shared machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/profiling"
	"sapspsgd/internal/scenario"
)

var (
	flagOut    = flag.String("out", "PERF.json", "summary output path")
	flagBase   = flag.String("base", "", "existing BENCH.json to merge the perf rows into (its algorithm/scenario sections are kept)")
	flagShort  = flag.Bool("short", false, "small single-machine smoke grid (the CI perf gate)")
	flagGrid   = flag.String("grid", "all", "which sweep to run: all | engine (round-loop cells) | planner (large-N planner-only cells)")
	flagRounds = flag.Int("rounds", 0, "override measured rounds per cell (0 = grid default)")
	flagWarm   = flag.Int("warm", 0, "override warmup rounds per cell (0 = grid default)")
	flagProcs  = flag.String("procs", "0", "comma-separated GOMAXPROCS values to run the grid under (0 = current setting)")
	flagPin    = flag.Int("pin", 0, "pin the process to the first N logical CPUs before measuring (Linux; 0 = no pinning)")

	prof profiling.Config
)

func main() {
	prof.AddFlags(nil)
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetperf:", err)
		os.Exit(1)
	}
}

// cell is one grid point of the sweep. Planner cells (pattern "planner")
// measure the coordinator-side large-N path instead of the engine round loop:
// codec holds the sparse bandwidth kind, dim the mask dimension, and shards
// is always 0 (there is no engine).
type cell struct {
	pattern string
	codec   string
	nodes   int
	dim     int
	shards  int
	degree  int // planner cells: sparse topology mean degree
}

func (c cell) name(procs int) string {
	return fmt.Sprintf("%s/%s/n%d/d%d/s%d/p%d", c.pattern, c.codec, c.nodes, c.dim, c.shards, procs)
}

// grid returns the sweep cells plus the per-cell round counts. The short
// grid is sized for the single-core CI container; the full grid adds the
// hub and collective patterns, a larger model, and the 512-node SAPS-shaped
// headline cells behind the paper's multicore speedup claim.
func grid(short bool) (cells []cell, rounds, warm int) {
	codecs := []string{"dense", "masked", "topk", "qsgd"}
	if short {
		for _, cd := range codecs {
			for _, sh := range []int{1, 2} {
				cells = append(cells, cell{pattern: "pairwise", codec: cd, nodes: 64, dim: 1024, shards: sh})
			}
		}
		cells = append(cells,
			cell{pattern: "hub", codec: "dense", nodes: 33, dim: 1024, shards: 2},
			cell{pattern: "collective", codec: "dense", nodes: 32, dim: 1024, shards: 2},
		)
		return cells, 25, 5
	}
	for _, pat := range []string{"pairwise", "hub", "collective"} {
		for _, cd := range codecs {
			for _, dim := range []int{1024, 8192} {
				for _, sh := range []int{1, 2, 4, 8} {
					n := 64
					if pat == "hub" {
						n = 65 // 64 trainers + server
					}
					cells = append(cells, cell{pattern: pat, codec: cd, nodes: n, dim: dim, shards: sh})
				}
			}
		}
	}
	// Headline: the paper's 512-node SAPS fleet shape (pairwise masked
	// gossip) across shard counts — the ≥1.5× multicore throughput row.
	for _, sh := range []int{1, 2, 4, 8} {
		cells = append(cells, cell{pattern: "pairwise", codec: "masked", nodes: 512, dim: 4096, shards: sh})
	}
	return cells, 50, 8
}

// plannerDim is the planner cells' mask dimension: the TinyTask MLP with one
// 64-wide hidden layer and 10 classes (the same geometry the large-N scenario
// capsules declare).
var plannerDim = nn.MLPParamCount(dataset.TinyInputDim, []int{64}, 10)

// plannerGrid returns the large-N planner-only cells: Algorithm 3 planning +
// mask accounting + ledger charging over a sparse environment, no engine. The
// short grid's 10k-node cell is the CI large-N smoke gate; the full grid adds
// the 50k-node headline cell (the fleet scaled 100× past the paper's 512).
func plannerGrid(short bool) (cells []cell, rounds, warm int) {
	sizes := []int{10000}
	if !short {
		sizes = append(sizes, 50000)
	}
	for _, n := range sizes {
		cells = append(cells, cell{pattern: "planner", codec: "sparse-uniform", nodes: n, dim: plannerDim, degree: 8})
	}
	return cells, 20, 5
}

func run() error {
	procs, err := parseProcs(*flagProcs)
	if err != nil {
		return err
	}
	if *flagPin > 0 {
		if err := pinCPUs(*flagPin); err != nil {
			return fmt.Errorf("pin: %w", err)
		}
	}
	// Profiling starts after pinning so the profile covers only the
	// measured grid, never the setup.
	return prof.Run(func() error { return measure(procs) })
}

func measure(procs []int) error {
	type sweep struct {
		cells        []cell
		rounds, warm int
	}
	var sweeps []sweep
	switch *flagGrid {
	case "all", "engine":
		cells, rounds, warm := grid(*flagShort)
		sweeps = append(sweeps, sweep{cells, rounds, warm})
	}
	switch *flagGrid {
	case "all", "planner":
		cells, rounds, warm := plannerGrid(*flagShort)
		sweeps = append(sweeps, sweep{cells, rounds, warm})
	}
	if len(sweeps) == 0 {
		return fmt.Errorf("unknown -grid %q (want all, engine, or planner)", *flagGrid)
	}

	var rows []scenario.PerfRow
	defaultProcs := runtime.GOMAXPROCS(0)
	for _, p := range procs {
		target := p
		if target == 0 {
			target = defaultProcs
		}
		prev := runtime.GOMAXPROCS(target)
		for _, sw := range sweeps {
			rounds, warm := sw.rounds, sw.warm
			if *flagRounds > 0 {
				rounds = *flagRounds
			}
			if *flagWarm > 0 {
				warm = *flagWarm
			}
			for _, c := range sw.cells {
				var row scenario.PerfRow
				var err error
				if c.pattern == "planner" {
					row, err = runPlannerCell(c, rounds, warm)
				} else {
					row, err = runCell(c, rounds, warm)
				}
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return fmt.Errorf("%s: %w", c.name(target), err)
				}
				rows = append(rows, row)
				fmt.Printf("BENCH %-40s %10.0f ns/op %8.2f allocs/op %12d bytes %7d MB rss %8.3fs wall\n",
					row.Name, row.NsPerOp, row.AllocsPerOp, row.BytesMoved, row.PeakRSSBytes>>20, row.WallSeconds)
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	out := &scenario.BenchFile{
		SchemaVersion: scenario.BenchSchemaVersion,
		Source:        "fleetperf",
		GoMaxProcs:    defaultProcs,
	}
	if *flagBase != "" {
		base, err := scenario.ReadBench(*flagBase)
		if err != nil {
			return err
		}
		if base.SchemaVersion != scenario.BenchSchemaVersion {
			return fmt.Errorf("%s: schema_version %d, want %d", *flagBase, base.SchemaVersion, scenario.BenchSchemaVersion)
		}
		out.Algorithms = base.Algorithms
		out.Scenarios = base.Scenarios
		out.Perf = base.Perf
	}
	out.Perf = mergeRows(out.Perf, rows)
	if err := scenario.WriteBench(*flagOut, out); err != nil {
		return err
	}
	fmt.Printf("fleetperf: wrote %s (%d perf row(s))\n", *flagOut, len(out.Perf))
	return nil
}

// mergeRows replaces same-name rows and appends new ones, keeping the
// existing order stable so baseline diffs stay reviewable.
func mergeRows(existing, fresh []scenario.PerfRow) []scenario.PerfRow {
	idx := map[string]int{}
	for i, r := range existing {
		idx[r.Name] = i
	}
	for _, r := range fresh {
		if i, ok := idx[r.Name]; ok {
			existing[i] = r
		} else {
			idx[r.Name] = len(existing)
			existing = append(existing, r)
		}
	}
	return existing
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -procs entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -procs")
	}
	return out, nil
}

// runCell measures one grid point: build the fleet, warm the pools, then
// time the steady-state round loop and count its heap allocations via the
// runtime's exact Mallocs counter (one ReadMemStats on each side of the
// measured window — the same accounting testing.AllocsPerRun uses).
func runCell(c cell, rounds, warm int) (scenario.PerfRow, error) {
	nodes, codecs, pat, planner, err := buildCell(c)
	if err != nil {
		return scenario.PerfRow{}, err
	}
	eng := engine.New(engine.Options{Nodes: nodes, Codecs: codecs, Pattern: pat, Planner: planner, Shards: c.shards})
	defer eng.Close()
	led := &engine.CountingLedger{}
	led.Reserve(c.nodes, warm+rounds)

	for t := 0; t < warm; t++ {
		if _, err := eng.Step(t, led); err != nil {
			return scenario.PerfRow{}, err
		}
	}
	baseBytes := led.TotalBytes()
	runtime.GC()
	profiling.ResetPeakRSS()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for t := warm; t < warm+rounds; t++ {
		if _, err := eng.Step(t, led); err != nil {
			return scenario.PerfRow{}, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	return scenario.PerfRow{
		Name:         c.name(runtime.GOMAXPROCS(0)),
		Pattern:      c.pattern,
		Codec:        c.codec,
		Nodes:        c.nodes,
		Dim:          c.dim,
		Shards:       c.shards,
		Procs:        runtime.GOMAXPROCS(0),
		Rounds:       rounds,
		WallSeconds:  wall.Seconds(),
		NsPerOp:      float64(wall.Nanoseconds()) / float64(rounds),
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / float64(rounds),
		BytesMoved:   led.TotalBytes() - baseBytes,
		PeakRSSBytes: profiling.PeakRSS(),
		// Seed a conservative timing tolerance: short sweeps on shared CI
		// runners see ±30-40% jitter per row. Tighten by hand in the
		// committed baseline when measuring on quiet dedicated hardware.
		MaxNsRegress: 0.5,
		// RSS is process-wide (the GC's retained heap floats under it), so
		// seed the same generous fraction; the differ adds a 64 MB absolute
		// slack on top.
		MaxRSSRegress: 0.5,
	}, nil
}

// plannerSpec assembles the scenario capsule a planner cell measures.
func plannerSpec(c cell, rounds int) *scenario.Spec {
	return &scenario.Spec{
		SchemaVersion: scenario.SpecSchemaVersion,
		Name:          fmt.Sprintf("planner-n%d", c.nodes),
		Algo:          "saps",
		Nodes:         c.nodes,
		Rounds:        rounds,
		Seed:          42,
		LR:            0.05,
		Batch:         8,
		Compression:   100,
		Gossip:        &scenario.GossipSpec{BThres: 1, TThres: 10},
		Model:         scenario.ModelSpec{Hidden: []int{64}},
		Data:          scenario.DataSpec{Samples: c.nodes, Classes: 10},
		Bandwidth:     scenario.BandwidthSpec{Kind: c.codec, Lo: 0.5, Hi: 5, Degree: c.degree},
		PlannerOnly:   true,
	}
}

// runPlannerCell measures one large-N planner-only cell: a warmup run primes
// the code paths, then the measured run times Algorithm 3 planning + mask
// accounting + ledger charging end to end (environment construction
// included — building the topology is part of the large-N path). BytesMoved
// is the run's deterministic ledger total; PeakRSSBytes is the cell's own
// high-water mark (the warmup's peak is cleared first), which is what the
// regression gate watches for an O(N²) reintroduction.
func runPlannerCell(c cell, rounds, warm int) (scenario.PerfRow, error) {
	if warm > 0 {
		if _, err := plannerSpec(c, warm).Run(0); err != nil {
			return scenario.PerfRow{}, err
		}
	}
	spec := plannerSpec(c, rounds)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := spec.Run(0) // brackets ResetPeakRSS/PeakRSS itself
	if err != nil {
		return scenario.PerfRow{}, err
	}
	runtime.ReadMemStats(&m1)

	return scenario.PerfRow{
		Name:          c.name(runtime.GOMAXPROCS(0)),
		Pattern:       c.pattern,
		Codec:         c.codec,
		Nodes:         c.nodes,
		Dim:           c.dim,
		Shards:        0,
		Procs:         runtime.GOMAXPROCS(0),
		Rounds:        rounds,
		WallSeconds:   res.WallSeconds,
		NsPerOp:       res.WallSeconds * 1e9 / float64(rounds),
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(rounds),
		BytesMoved:    res.TotalBytes,
		PeakRSSBytes:  res.PeakRSSBytes,
		MaxNsRegress:  0.5,
		MaxRSSRegress: 0.5,
	}, nil
}

// buildCell assembles the fleet for one grid point: trivial nodes, per-rank
// codecs, and a static allocation-free planner.
func buildCell(c cell) ([]engine.Node, []engine.Codec, engine.Pattern, engine.Planner, error) {
	n := c.nodes
	nodes := make([]engine.Node, n)
	codecs := make([]engine.Codec, n)
	for r := range nodes {
		nodes[r] = newBenchNode(c.dim, uint64(r))
		cd, err := buildCodec(c, uint64(r))
		if err != nil {
			return nil, nil, nil, nil, err
		}
		codecs[r] = cd
	}
	var pat engine.Pattern
	var planner engine.Planner
	switch c.pattern {
	case "pairwise":
		if n%2 != 0 {
			return nil, nil, nil, nil, fmt.Errorf("pairwise needs an even fleet, have %d", n)
		}
		// Static neighbor matching; the peer table is shared across rounds
		// so planning allocates nothing.
		peers := make([]int, n)
		for i := range peers {
			peers[i] = i ^ 1
		}
		pat = engine.Pairwise{}
		planner = engine.PlannerFunc(func(t int) core.RoundPlan {
			return core.RoundPlan{Round: t, Seed: roundSeed(t), Peer: peers}
		})
	case "hub":
		pat = engine.Hub{Server: n - 1}
		planner = engine.PlannerFunc(func(t int) core.RoundPlan {
			return core.RoundPlan{Round: t, Seed: roundSeed(t)}
		})
	case "collective":
		pat = engine.Collective{}
		planner = engine.PlannerFunc(func(t int) core.RoundPlan {
			return core.RoundPlan{Round: t, Seed: roundSeed(t)}
		})
	default:
		return nil, nil, nil, nil, fmt.Errorf("unknown pattern %q", c.pattern)
	}
	return nodes, codecs, pat, planner, nil
}

// roundSeed derives a per-round mask seed the way the coordinator would:
// deterministic, distinct per round.
func roundSeed(t int) uint64 {
	return (uint64(t) + 1) * 0x9e3779b97f4a7c15
}

func buildCodec(c cell, rank uint64) (engine.Codec, error) {
	switch c.codec {
	case "dense":
		return engine.Dense{}, nil
	case "masked":
		return engine.NewMasked(100), nil
	case "topk":
		return engine.NewTopK(max(1, c.dim/100), c.dim, true), nil
	case "qsgd":
		return engine.NewQSGDCodec(127, rank*0x9e3779b97f4a7c15+0x51), nil
	default:
		return nil, fmt.Errorf("unknown codec %q", c.codec)
	}
}

// benchNode is the deliberately trivial participant: a cheap deterministic
// local update and a bounded merge, so cell timings measure the engine, not
// a model. The shared payload is a copy of the model (the transport borrows
// payloads until the round barrier, so Merge must not write into the slice
// Compute returned).
type benchNode struct {
	model []float64
	out   []float64
}

func newBenchNode(dim int, seed uint64) *benchNode {
	b := &benchNode{model: make([]float64, dim), out: make([]float64, dim)}
	x := seed*2654435761 + 1
	for i := range b.model {
		x = x*6364136223846793005 + 1442695040888963407
		b.model[i] = float64(int64(x>>33)) / float64(1<<31)
	}
	return b
}

// Compute implements engine.Node.
func (b *benchNode) Compute(engine.RoundContext) (float64, []float64, error) {
	s := 0.0
	for i := range b.model {
		b.model[i] *= 0.999
		s += b.model[i]
	}
	copy(b.out, b.model)
	return s / float64(len(b.model)), b.out, nil
}

// Merge implements engine.Node: average full-dimension peer vectors into the
// model; sub-dimension payloads (masked values, which need the shared mask
// to place) only contribute to the traffic measurement.
func (b *benchNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		if len(m.Vals) != len(b.model) {
			continue
		}
		for i, v := range m.Vals {
			b.model[i] = 0.5*b.model[i] + 0.5*v
		}
	}
	return nil
}
