package nn

import (
	"fmt"
	"math"

	"sapspsgd/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of a batch of
// logits against integer labels and the gradient dL/dlogits (already scaled
// by 1/batch, ready for Model.Backward).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, dlogits *tensor.Matrix) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logit rows vs %d labels", logits.Rows, len(labels)))
	}
	batch := logits.Rows
	dlogits = tensor.NewMatrix(batch, logits.Cols)
	invB := 1 / float64(batch)
	for i := 0; i < batch; i++ {
		row := logits.Row(i)
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, logits.Cols))
		}
		// Numerically stable log-sum-exp.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logZ := maxV + math.Log(sum)
		loss += (logZ - row[y]) * invB
		d := dlogits.Row(i)
		for j, v := range row {
			p := math.Exp(v - logZ)
			d[j] = p * invB
		}
		d[y] -= invB
	}
	return loss, dlogits
}

// Accuracy returns the top-1 accuracy of logits against labels.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		if tensor.ArgMax(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
