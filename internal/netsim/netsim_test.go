package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"sapspsgd/internal/rng"
)

func TestFourteenCitiesShape(t *testing.T) {
	bw := FourteenCities()
	if bw.N != 14 || len(Cities) != 14 {
		t.Fatalf("N = %d", bw.N)
	}
	for i := 0; i < 14; i++ {
		if bw.MBps(i, i) != 0 {
			t.Fatalf("diagonal %d not zero", i)
		}
		for j := 0; j < 14; j++ {
			if bw.MBps(i, j) != bw.MBps(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestFourteenCitiesKnownValues(t *testing.T) {
	bw := FourteenCities()
	// AliBeijing <-> AliShanghai: min(1.3, 1.3)/8 MB/s.
	if got, want := bw.MBps(0, 1), 1.3/8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Beijing-Shanghai = %v, want %v", got, want)
	}
	// AmaFrankfurt <-> AmaLondon: min(331.2, 276.2)/8.
	if got, want := bw.MBps(6, 7), 276.2/8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Frankfurt-London = %v, want %v", got, want)
	}
	// AliBeijing <-> AmaLondon is the paper's bottleneck link: min(1.6, 0.2)/8.
	if got, want := bw.MBps(0, 7), 0.2/8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Beijing-London = %v, want %v", got, want)
	}
}

func TestRandomUniformRange(t *testing.T) {
	r := rng.New(1)
	bw := RandomUniform(32, 0, 5, r)
	if bw.N != 32 {
		t.Fatal("N")
	}
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			v := bw.MBps(i, j)
			if i == j {
				if v != 0 {
					t.Fatal("diagonal")
				}
				continue
			}
			if v <= 0 || v > 5 {
				t.Fatalf("bandwidth %v out of (0,5]", v)
			}
			if v != bw.MBps(j, i) {
				t.Fatal("asymmetric")
			}
		}
	}
}

func TestFilterAndEdges(t *testing.T) {
	bw := NewBandwidth([][]float64{
		{0, 10, 1},
		{10, 0, 5},
		{1, 5, 0},
	})
	adj := bw.Filter(4)
	if !adj[0][1] || !adj[1][2] || adj[0][2] || adj[0][0] {
		t.Fatalf("Filter wrong: %v", adj)
	}
	edges := bw.Edges(4)
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	g := bw.FilterGraph(4)
	if !g.IsConnected() {
		t.Fatal("filtered graph should be connected at thresh 4")
	}
	if g2 := bw.FilterGraph(100); g2.IsConnected() {
		t.Fatal("filtered graph should be disconnected at thresh 100")
	}
}

func TestSymmetrizationUsesMin(t *testing.T) {
	bw := NewBandwidth([][]float64{
		{0, 9},
		{3, 0},
	})
	if bw.MBps(0, 1) != 3 || bw.MBps(1, 0) != 3 {
		t.Fatalf("min symmetrization failed: %v", bw.MBps(0, 1))
	}
}

func TestClusteredFasterInside(t *testing.T) {
	r := rng.New(2)
	bw := Clustered(16, 4, 100, 1, r)
	// Same cluster (i%4 == j%4) should on average be much faster.
	var inSum, outSum float64
	var inN, outN int
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if i%4 == j%4 {
				inSum += bw.MBps(i, j)
				inN++
			} else {
				outSum += bw.MBps(i, j)
				outN++
			}
		}
	}
	if inSum/float64(inN) < 10*outSum/float64(outN) {
		t.Fatalf("intra-cluster %v not >> inter-cluster %v", inSum/float64(inN), outSum/float64(outN))
	}
}

func TestLedgerExchange(t *testing.T) {
	bw := NewBandwidth([][]float64{
		{0, 2},
		{2, 0},
	})
	l := NewLedger(bw)
	l.Exchange(0, 1, 1e6, 1e6) // 1MB each way over a 2MB/s link
	rt := l.EndRound()
	if math.Abs(rt-1.0) > 1e-9 { // 2MB total / 2MB/s = 1s for each endpoint
		t.Fatalf("round time = %v, want 1.0", rt)
	}
	s0, r0 := l.WorkerBytes(0)
	s1, r1 := l.WorkerBytes(1)
	if s0 != 1e6 || r0 != 1e6 || s1 != 1e6 || r1 != 1e6 {
		t.Fatalf("bytes: %d %d %d %d", s0, r0, s1, r1)
	}
	if !l.ConservationOK() {
		t.Fatal("conservation violated")
	}
	if l.Rounds() != 1 || l.TotalTime() != rt {
		t.Fatal("round accounting")
	}
}

func TestLedgerRoundTimeIsMax(t *testing.T) {
	bw := NewBandwidth([][]float64{
		{0, 10, 1},
		{10, 0, 1},
		{1, 1, 0},
	})
	l := NewLedger(bw)
	l.Exchange(0, 1, 1e6, 1e6) // fast pair: 0.2s
	l.Exchange(0, 2, 1e6, 0)   // slow link: adds 1s to workers 0 and 2
	rt := l.EndRound()
	if math.Abs(rt-1.2) > 1e-9 { // worker 0: 0.2 + 1.0
		t.Fatalf("round time = %v, want 1.2", rt)
	}
}

func TestLedgerServerTransfer(t *testing.T) {
	bw := NewBandwidth([][]float64{{0, 1}, {1, 0}})
	l := NewLedger(bw)
	l.ServerTransfer(0, 500, 1500, 2)
	if l.ServerBytes() != 2000 {
		t.Fatalf("ServerBytes = %d", l.ServerBytes())
	}
	if !l.ConservationOK() {
		t.Fatal("server conservation violated")
	}
	rt := l.EndRound()
	if math.Abs(rt-0.001) > 1e-9 { // 2000B / 2MB/s
		t.Fatalf("round time = %v", rt)
	}
}

func TestLedgerSelfExchangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewLedger(NewBandwidth([][]float64{{0, 1}, {1, 0}}))
	l.Exchange(0, 0, 1, 1)
}

func TestLedgerZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewLedger(NewBandwidth([][]float64{{0, 0}, {0, 0}}))
	l.Exchange(0, 1, 1, 1)
}

func TestLedgerConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		bw := RandomUniform(n, 1, 5, r)
		l := NewLedger(bw)
		for round := 0; round < 5; round++ {
			for k := 0; k < 3; k++ {
				i := r.Intn(n)
				j := r.Intn(n)
				if i == j {
					continue
				}
				l.Exchange(i, j, int64(r.Intn(1000)), int64(r.Intn(1000)))
			}
			l.ServerTransfer(r.Intn(n), int64(r.Intn(1000)), int64(r.Intn(1000)), 5)
			l.EndRound()
		}
		return l.ConservationOK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWorkerTraffic(t *testing.T) {
	bw := NewBandwidth([][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	})
	l := NewLedger(bw)
	l.Exchange(0, 1, 100, 200)
	l.Exchange(1, 2, 300, 0)
	// worker1: sent 200+300, recv 100 => 600 total.
	if got := l.MaxWorkerTraffic(); got != 600 {
		t.Fatalf("MaxWorkerTraffic = %d, want 600", got)
	}
	wantMean := float64(100+200+200+100+300+300) / 3 / 1e6
	if got := l.MeanWorkerTrafficMB(); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("MeanWorkerTrafficMB = %v, want %v", got, wantMean)
	}
}

func TestLedgerLatency(t *testing.T) {
	bw := NewBandwidth([][]float64{{0, 2}, {2, 0}})
	l := NewLedger(bw)
	l.LatencySec = 0.05
	l.Exchange(0, 1, 1e6, 1e6)
	rt := l.EndRound()
	if math.Abs(rt-1.05) > 1e-9 {
		t.Fatalf("round time with latency = %v, want 1.05", rt)
	}
	l2 := NewLedger(bw)
	l2.LatencySec = 0.05
	l2.ServerTransfer(0, 1000, 1000, 2)
	if rt2 := l2.EndRound(); math.Abs(rt2-(0.001+0.05)) > 1e-9 {
		t.Fatalf("server round time with latency = %v", rt2)
	}
}

func TestMeanBandwidth(t *testing.T) {
	bw := NewBandwidth([][]float64{
		{0, 2},
		{2, 0},
	})
	if got := bw.MeanBandwidth(); got != 2 {
		t.Fatalf("MeanBandwidth = %v", got)
	}
}
