package graph

import (
	"testing"
	"testing/quick"

	"sapspsgd/internal/rng"
)

func TestGreedyMatchingIsMaximal(t *testing.T) {
	// Even with random skips, the greedy seed must be maximal: no edge may
	// remain with both endpoints free (skipped edges are reconsidered).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bernoulli(0.4) {
					edges = append(edges, WeightedEdge{U: i, V: j, Weight: r.Float64() * 10})
				}
			}
		}
		m := GreedyWeightedMatching(n, edges, r)
		if !m.Valid(n) {
			return false
		}
		for _, e := range edges {
			if m[e.U] == -1 && m[e.V] == -1 {
				return false // maximality violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMatchingVariesAcrossSeeds(t *testing.T) {
	// With near-equal weights the randomized greedy must produce different
	// matchings across seeds — the property that keeps the PC-edge union
	// connected (see the TThres=2 regression in internal/experiments).
	n := 8
	var edges []WeightedEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, WeightedEdge{U: i, V: j, Weight: 1 + 0.01*float64(i+j)})
		}
	}
	seen := map[string]bool{}
	for seed := uint64(0); seed < 30; seed++ {
		m := GreedyWeightedMatching(n, edges, rng.New(seed))
		key := ""
		for _, p := range m {
			key += string(rune('a' + p + 1))
		}
		seen[key] = true
	}
	if len(seen) < 3 {
		t.Fatalf("greedy produced only %d distinct matchings over 30 seeds", len(seen))
	}
}

func TestWeightBucket(t *testing.T) {
	// Weights within ~25% share a bucket; weights 2× apart never do.
	if weightBucket(1.0) != weightBucket(1.05) {
		t.Fatal("1.0 and 1.05 should share a bucket")
	}
	if weightBucket(1.0) == weightBucket(2.0) {
		t.Fatal("1.0 and 2.0 must differ")
	}
	if weightBucket(0) != weightBucket(-1) {
		t.Fatal("non-positive weights share the sentinel bucket")
	}
	if weightBucket(0) >= weightBucket(0.001) {
		t.Fatal("sentinel bucket must sort below any positive weight")
	}
}

func TestGreedyDeterministicWithoutRNG(t *testing.T) {
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 5},
		{U: 2, V: 3, Weight: 3},
		{U: 1, V: 2, Weight: 4},
	}
	a := GreedyWeightedMatching(4, edges, nil)
	b := GreedyWeightedMatching(4, edges, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nil-rng greedy must be deterministic")
		}
	}
	// Exact weight order: (0,1) then (1,2) blocked, then (2,3).
	if a[0] != 1 || a[2] != 3 {
		t.Fatalf("greedy = %v", a)
	}
}
