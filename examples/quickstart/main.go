// Quickstart: train 8 SAPS-PSGD workers on the synthetic MNIST-like task in
// simulation and print the accuracy / traffic series.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	saps "sapspsgd"
)

func main() {
	const (
		workers = 8
		rounds  = 150
	)

	// Synthetic stand-in for MNIST (28×28, 10 classes), sharded IID.
	train, valid := saps.MNISTLike(2048, 512, 42)
	shards := saps.PartitionIID(train, workers, 1)

	// The paper's MNIST-CNN at quarter width so a laptop trains it in
	// seconds; every worker starts from identical parameters.
	in := saps.Shape{C: 1, H: 28, W: 28}
	factory := func() *saps.Model { return saps.NewMNISTCNN(in, 10, 0.25, 7) }

	// The paper's hyperparameters: compression ratio c=100, single-peer
	// masked gossip, adaptive matching over a random (0,5] MB/s fabric.
	cfg := saps.DefaultConfig(workers)
	cfg.Compression = 100
	cfg.Batch = 16
	bw := saps.RandomUniform(workers, 0, 5, 3)

	alg := saps.NewSAPS(saps.FleetConfig{
		N:       workers,
		Factory: factory,
		Shards:  shards,
		LR:      cfg.LR,
		Batch:   cfg.Batch,
		Seed:    1,
	}, bw, cfg)

	fmt.Printf("SAPS-PSGD: %d workers, %d params, c=%.0f\n",
		workers, factory().ParamCount(), cfg.Compression)
	res := saps.Run(alg, bw, saps.TrainConfig{
		Rounds:    rounds,
		EvalEvery: 25,
		Valid:     valid,
	})

	fmt.Println("round  acc      traffic/worker  comm-time")
	for _, r := range res.Records {
		fmt.Printf("%5d  %6.2f%%  %8.3f MB     %7.3f s\n",
			r.Round, 100*r.ValAcc, r.TrafficMB, r.TimeSec)
	}
	final := res.Final()
	fmt.Printf("\nfinal: %.2f%% accuracy with %.3f MB per worker (dense model is %.3f MB per exchange)\n",
		100*final.ValAcc, final.TrafficMB, float64(factory().ParamCount())*4/1e6)
}
