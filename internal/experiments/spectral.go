package experiments

import (
	"fmt"

	"sapspsgd/internal/gossip"
	"sapspsgd/internal/graph"
	"sapspsgd/internal/metrics"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/spectral"
)

// SpectralDiagnostics quantifies the theory section's quantities for a given
// environment and Algorithm 3 configuration: the second largest eigenvalue ρ
// of the empirical E[WᵀW] (Assumption 3 requires ρ < 1), the Lemma 2 mixing
// rate (q + p·ρ²), and the mean matched bandwidth — exposing the
// communication-efficiency vs mixing-speed trade-off the paper discusses in
// §II-C.
type SpectralDiagnostics struct {
	Rho          float64
	MixingRate   float64 // for the given mask keep-probability
	MeanMatched  float64 // MB/s
	ForcedRounds int     // rounds where connectivity had to be restored
	Samples      int
}

// DiagnoseGossip samples `rounds` gossip matchings from Algorithm 3 and
// computes the diagnostics matrix-free (ρ via spectral.RhoOfMatchings, so
// the ablation runs at large N without ever building a dense W). keepP is
// the mask keep-probability 1/c.
func DiagnoseGossip(bw *netsim.Bandwidth, cfg gossip.Config, keepP float64, rounds int, seed uint64) SpectralDiagnostics {
	gen := gossip.NewGenerator(bw, cfg, seed)
	ms := make([]graph.Matching, 0, rounds)
	total := 0.0
	forced := 0
	for t := 0; t < rounds; t++ {
		r := gen.Next(t)
		ms = append(ms, r.Match)
		total += gossip.MeanMatchedBandwidth(r.Match, bw)
		if r.Forced {
			forced++
		}
	}
	rho := spectral.RhoOfMatchings(ms, 400)
	return SpectralDiagnostics{
		Rho:          rho,
		MixingRate:   spectral.MixingRate(keepP, rho),
		MeanMatched:  total / float64(rounds),
		ForcedRounds: forced,
		Samples:      rounds,
	}
}

// SpectralSweep renders the TThres trade-off table for an environment: as
// the recency window grows, matched bandwidth rises while mixing slows
// (ρ grows toward 1).
func SpectralSweep(bw *netsim.Bandwidth, bThres float64, keepP float64, tThresValues []int, rounds int, seed uint64) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Spectral diagnostics sweep (B_thres=%.1f MB/s, p=%.3f, %d rounds)", bThres, keepP, rounds),
		"T_thres", "rho(E[WtW])", "mixing rate (q+p·rho²)", "matched MB/s", "forced rounds")
	for _, tt := range tThresValues {
		d := DiagnoseGossip(bw, gossip.Config{BThres: bThres, TThres: tt}, keepP, rounds, seed)
		t.Add(fmt.Sprintf("%d", tt), metrics.F(d.Rho), metrics.F(d.MixingRate),
			metrics.F(d.MeanMatched), fmt.Sprintf("%d", d.ForcedRounds))
	}
	return t
}
