package algos

import "sapspsgd/internal/netsim"

// FedAvg is the centralized federated averaging baseline (McMahan et al.):
// each round a fraction of workers pulls the server model, runs several
// local SGD steps, and pushes its full model back; the server averages.
// Composed as Hub pattern (pull → train → push; the per-round chosen set is
// the plan's active set, drawn by the fraction planner) + Dense codecs.
type FedAvg struct {
	*engineAlgo
}

// NewFedAvg builds the baseline. fraction is the per-round participation
// ratio (the paper uses 0.5); localSteps is the number of local minibatch
// steps per round. The server is placed optimistically: its link to worker i
// is the best bandwidth worker i has to anyone.
func NewFedAvg(fc FleetConfig, bw *netsim.Bandwidth, fraction float64, localSteps int) *FedAvg {
	r := Recipe{
		Algo: "fedavg", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed,
		Fraction: fraction, LocalSteps: localSteps,
	}
	a, _ := newEngineAlgo("FedAvg", fc, r, r.Planner(nil, defaultRecipeGossip()), serverLinks(bw))
	return &FedAvg{engineAlgo: a}
}

var _ Algorithm = (*FedAvg)(nil)

// SFedAvg is FedAvg with sparse random structured uploads (Konečný et al.):
// the downstream model stays dense, but each chosen worker uploads only a
// random N/c subset of its model delta with explicit indices (RandomK
// codec), and the server applies count-normalized sparse aggregation — each
// received coordinate is averaged over the workers that actually reported
// it.
type SFedAvg struct {
	*engineAlgo
}

// NewSFedAvg builds the sparse FedAvg baseline with compression ratio c (the
// paper uses c = 100, fraction 0.5).
func NewSFedAvg(fc FleetConfig, bw *netsim.Bandwidth, fraction float64, localSteps int, c float64) *SFedAvg {
	r := Recipe{
		Algo: "s-fedavg", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed,
		Fraction: fraction, LocalSteps: localSteps, C: c,
	}
	a, _ := newEngineAlgo("S-FedAvg", fc, r, r.Planner(nil, defaultRecipeGossip()), serverLinks(bw))
	return &SFedAvg{engineAlgo: a}
}

var _ Algorithm = (*SFedAvg)(nil)
