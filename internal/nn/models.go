package nn

import (
	"fmt"

	"sapspsgd/internal/rng"
)

// scaleC scales a channel count by width, with a floor of 1.
func scaleC(base int, width float64) int {
	c := int(float64(base)*width + 0.5)
	if c < 1 {
		return 1
	}
	return c
}

// NewMNISTCNN builds the paper's MNIST-CNN (the CNN of McMahan et al.,
// FedAvg): conv5×5-32 → pool2 → conv5×5-64 → pool2 → fc-512 → fc-classes.
// width scales all channel/hidden sizes (1.0 = paper scale); in must have
// spatial dims divisible by 4.
func NewMNISTCNN(in Shape, classes int, width float64, seed uint64) *Model {
	r := rng.New(seed)
	c1 := NewConv2D(in, scaleC(32, width), 5, 1, 2, r)
	p1 := NewMaxPool2D(c1.OutShape, 2)
	c2 := NewConv2D(p1.OutShape, scaleC(64, width), 5, 1, 2, r)
	p2 := NewMaxPool2D(c2.OutShape, 2)
	fc1 := NewDense(p2.OutShape.Dim(), scaleC(512, width), r)
	fc2 := NewDense(fc1.OutDim, classes, r)
	return NewModel(fmt.Sprintf("mnist-cnn(w=%.2f)", width), in, classes,
		c1, NewReLU(), p1,
		c2, NewReLU(), p2,
		fc1, NewReLU(), fc2,
	)
}

// NewCIFARCNN builds the paper's CIFAR10-CNN (the TensorFlow-tutorial style
// CNN McMahan et al. use for CIFAR-10): conv5×5-64 → pool2 → conv5×5-64 →
// pool2 → fc-384 → fc-192 → fc-classes.
func NewCIFARCNN(in Shape, classes int, width float64, seed uint64) *Model {
	r := rng.New(seed)
	c1 := NewConv2D(in, scaleC(64, width), 5, 1, 2, r)
	p1 := NewMaxPool2D(c1.OutShape, 2)
	c2 := NewConv2D(p1.OutShape, scaleC(64, width), 5, 1, 2, r)
	p2 := NewMaxPool2D(c2.OutShape, 2)
	fc1 := NewDense(p2.OutShape.Dim(), scaleC(384, width), r)
	fc2 := NewDense(fc1.OutDim, scaleC(192, width), r)
	fc3 := NewDense(fc2.OutDim, classes, r)
	return NewModel(fmt.Sprintf("cifar10-cnn(w=%.2f)", width), in, classes,
		c1, NewReLU(), p1,
		c2, NewReLU(), p2,
		fc1, NewReLU(), fc2, NewReLU(), fc3,
	)
}

// NewResNet builds a CIFAR-style ResNet-(6k+2): conv3×3 stem, three stages
// of blocksPerStage basic blocks with 16/32/64 channels (scaled by width)
// and strides 1/2/2, global average pooling, and a linear classifier.
// blocksPerStage = 3 gives the paper's ResNet-20.
func NewResNet(in Shape, classes, blocksPerStage int, width float64, seed uint64) *Model {
	if blocksPerStage < 1 {
		panic(fmt.Sprintf("nn: ResNet blocksPerStage %d", blocksPerStage))
	}
	r := rng.New(seed)
	stemC := scaleC(16, width)
	stem := NewConv2D(in, stemC, 3, 1, 1, r)
	layers := []Layer{stem, NewBatchNorm2D(stem.OutShape), NewReLU()}
	shape := stem.OutShape
	for stage, baseC := range []int{16, 32, 64} {
		outC := scaleC(baseC, width)
		for b := 0; b < blocksPerStage; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			blk := NewResidual(shape, outC, stride, r)
			layers = append(layers, blk)
			shape = blk.OutShape
		}
	}
	gap := NewGlobalAvgPool(shape)
	layers = append(layers, gap, NewDense(shape.C, classes, r))
	depth := 6*blocksPerStage + 2
	return NewModel(fmt.Sprintf("resnet-%d(w=%.2f)", depth, width), in, classes, layers...)
}

// NewResNet20 is the paper's third model at full scale.
func NewResNet20(seed uint64) *Model {
	return NewResNet(Shape{C: 3, H: 32, W: 32}, 10, 3, 1, seed)
}

// NewMLP builds a plain multilayer perceptron — used by fast unit tests and
// the quadratic-convergence checks.
func NewMLP(inDim int, hidden []int, classes int, seed uint64) *Model {
	r := rng.New(seed)
	var layers []Layer
	prev := inDim
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, r), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, r))
	return NewModel("mlp", Shape{C: 1, H: 1, W: inDim}, classes, layers...)
}

// MLPParamCount returns NewMLP's parameter count without building the model
// (dense layers: weights + biases). Planner-only scenario runs use it to
// size the round mask with no per-rank model in memory.
func MLPParamCount(inDim int, hidden []int, classes int) int {
	total, prev := 0, inDim
	for _, h := range hidden {
		total += prev*h + h
		prev = h
	}
	return total + prev*classes + classes
}
