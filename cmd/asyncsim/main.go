// Command asyncsim runs one asynchronous scenario on the event-driven
// engine and writes its determinism artifacts: the virtual-time event log
// (byte-exact text and CSV forms), the final per-rank model bits, and the
// per-rank byte ledger. Every artifact is a pure function of the spec —
// bit-reproducible regardless of GOMAXPROCS, the Go scheduler, or -race —
// which is exactly what the async-determinism CI job replays and compares:
//
//	asyncsim -spec internal/scenario/testdata/adpsgd-async.json -out run1
//	asyncsim -spec internal/scenario/testdata/adpsgd-async.json -out run2
//	cmp run1/events.log run2/events.log   # byte-identical, always
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"sapspsgd/internal/obs"
	"sapspsgd/internal/scenario"
)

var (
	flagSpec = flag.String("spec", "", "asynchronous scenario spec (required; algo adpsgd or gradpush)")
	flagOut  = flag.String("out", "asyncsim-out", "artifact output directory")
	obsFlags obs.FlagConfig
)

// ledgerFile is the deterministic ledger.json artifact: every field is a
// pure function of the spec (no wall timings).
type ledgerFile struct {
	Name       string  `json:"name"`
	Algo       string  `json:"algo"`
	Nodes      int     `json:"nodes"`
	Steps      int     `json:"steps"`
	TotalBytes int64   `json:"total_bytes"`
	SimSeconds float64 `json:"sim_seconds"`
	FinalLoss  float64 `json:"final_loss"`
	SentBytes  []int64 `json:"sent_bytes"`
	RecvBytes  []int64 `json:"recv_bytes"`
}

func main() {
	obsFlags.AddFlags(nil)
	flag.Parse()
	obsSrv, err := obsFlags.Start()
	if err == nil {
		err = run()
	}
	obsSrv.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsim:", err)
		os.Exit(1)
	}
}

func run() error {
	if *flagSpec == "" {
		return fmt.Errorf("missing -spec")
	}
	spec, err := scenario.Load(*flagSpec)
	if err != nil {
		return err
	}
	if spec.Async == nil {
		return fmt.Errorf("%s: not an asynchronous scenario (no async block)", *flagSpec)
	}
	if err := os.MkdirAll(*flagOut, 0o755); err != nil {
		return err
	}
	out, err := spec.RunFull(scenario.RunOptions{Events: true, Params: true})
	if err != nil {
		return err
	}

	// events.log: the canonical byte-exact event stream (hex float bits).
	if err := os.WriteFile(filepath.Join(*flagOut, "events.log"), out.Events.Bytes(), 0o644); err != nil {
		return err
	}
	// events.csv: the human-readable view (decimal and bit time columns).
	csv, err := os.Create(filepath.Join(*flagOut, "events.csv"))
	if err != nil {
		return err
	}
	if err := out.Events.WriteCSV(csv); err != nil {
		csv.Close()
		return err
	}
	if err := csv.Close(); err != nil {
		return err
	}
	// model.bin: every rank's final parameters as little-endian float64
	// bits, rank-major.
	var bin []byte
	for _, params := range out.Params {
		for _, v := range params {
			bin = binary.LittleEndian.AppendUint64(bin, math.Float64bits(v))
		}
	}
	if err := os.WriteFile(filepath.Join(*flagOut, "model.bin"), bin, 0o644); err != nil {
		return err
	}
	// ledger.json: the deterministic byte and virtual-time totals.
	led := ledgerFile{
		Name:       spec.Name,
		Algo:       spec.Algo,
		Nodes:      spec.Nodes,
		Steps:      spec.Rounds,
		TotalBytes: out.Result.TotalBytes,
		SimSeconds: out.Result.SimSeconds,
		FinalLoss:  out.Result.FinalLoss,
		SentBytes:  out.SentBytes,
		RecvBytes:  out.RecvBytes,
	}
	enc, err := json.MarshalIndent(&led, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*flagOut, "ledger.json"), append(enc, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("asyncsim: %s (%s, %d ranks × %d gossips) → %s: %d events, %d B traffic, sim %.3fs, loss %.4f\n",
		spec.Name, spec.Algo, spec.Nodes, spec.Rounds, *flagOut,
		out.Events.Len(), out.Result.TotalBytes, out.Result.SimSeconds, out.Result.FinalLoss)
	return nil
}
