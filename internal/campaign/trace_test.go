// Trace- and partition-axis campaign tests: the committed edge-fleet
// campaign ("a day in the life of an edge fleet") is both the expansion
// fixture and the end-to-end subject whose aggregates must separate
// SAPS-PSGD from the dense baselines under replayed churn.
package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sapspsgd/internal/scenario"
)

// loadEdgeFleet loads the committed edge-fleet campaign and its base.
func loadEdgeFleet(t *testing.T) (*Spec, *scenario.Spec) {
	t.Helper()
	c, err := Load(filepath.Join("testdata", "edge-fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.LoadBase()
	if err != nil {
		t.Fatal(err)
	}
	return c, base
}

// TestTraceAndPartitionAxesExpand pins the new axes' expansion semantics on
// the committed edge-fleet campaign: the run matrix crosses algo × trace ×
// partition in the fixed order, membership events survive only on saps
// cells, the static entry clears the trace block, the iid entry clears the
// partition block, and every referenced trace file exists on disk.
func TestTraceAndPartitionAxesExpand(t *testing.T) {
	c, base := loadEdgeFleet(t)
	cells, err := c.Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, cell := range cells {
		ids = append(ids, cell.ID)
	}
	want := []string{
		"saps_edge_noniid_c25", "saps_edge_iid_c25", "saps_static_noniid_c25", "saps_static_iid_c25",
		"psgd_edge_noniid", "psgd_edge_iid", "psgd_static_noniid", "psgd_static_iid",
		"topk-psgd_edge_noniid_c25", "topk-psgd_edge_iid_c25", "topk-psgd_static_noniid_c25", "topk-psgd_static_iid_c25",
	}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("cells %v, want %v", ids, want)
	}
	for _, cell := range cells {
		s := cell.Spec
		switch cell.Trace {
		case "edge":
			if s.Trace == nil {
				t.Fatalf("cell %s lost its trace block", cell.ID)
			}
			if got, want := s.Trace.Events, s.Algo == "saps"; got != want {
				t.Errorf("cell %s (algo %s): trace events %v, want %v", cell.ID, s.Algo, got, want)
			}
			if _, err := os.Stat(s.TracePath()); err != nil {
				t.Errorf("cell %s: trace file unresolvable: %v", cell.ID, err)
			}
		case "static":
			if s.Trace != nil {
				t.Errorf("cell %s: static entry kept a trace block", cell.ID)
			}
		default:
			t.Errorf("cell %s: unexpected trace label %q", cell.ID, cell.Trace)
		}
		switch cell.Partition {
		case "noniid":
			if s.Partition == nil || s.Partition.Kind != "dirichlet" {
				t.Errorf("cell %s: partition block %+v, want dirichlet", cell.ID, s.Partition)
			}
		case "iid":
			if s.Partition != nil {
				t.Errorf("cell %s: iid entry kept a partition block", cell.ID)
			}
		default:
			t.Errorf("cell %s: unexpected partition label %q", cell.ID, cell.Partition)
		}
	}
}

// TestTraceAxisCollapsesForAsync pins the async interaction: asynchronous
// cells run on a static bandwidth environment, so the trace axis collapses
// for them exactly like the shards axis (one cell, no trace block, no ID
// part) while synchronous cells still sweep it.
func TestTraceAxisCollapsesForAsync(t *testing.T) {
	c := &Spec{
		SchemaVersion: SpecSchemaVersion,
		Name:          "mixed-traced",
		Base:          "testdata/async-base.json",
		Grid: Grid{
			Algo:        []string{"saps", "adpsgd"},
			Compression: []float64{50},
			Traces: []GridTrace{
				{TraceSpec: scenario.TraceSpec{File: filepath.Join("..", "..", "scenario", "testdata", "traces", "cloud.csv")}},
				{Name: "static"},
			},
		},
	}
	cells, err := c.Expand(loadAsyncBase(t))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, cell := range cells {
		ids = append(ids, cell.ID)
	}
	want := []string{"saps_cloud_c50", "saps_static_c50", "adpsgd"}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("cells %v, want %v", ids, want)
	}
	if cells[0].Spec.Trace == nil || cells[1].Spec.Trace != nil {
		t.Errorf("sync cells: trace blocks %v / %v, want present / absent", cells[0].Spec.Trace, cells[1].Spec.Trace)
	}
	if cells[2].Spec.Trace != nil || cells[2].Trace != "" {
		t.Errorf("async cell kept a trace: block %v, label %q", cells[2].Spec.Trace, cells[2].Trace)
	}
}

// TestEdgeFleetCampaignRuns is the tentpole's figure-level acceptance: the
// committed campaign runs end to end, its aggregate rows carry the trace and
// partition labels, and under the replayed edge-fleet day SAPS-PSGD moves an
// order less traffic than the dense baseline while the sparsified baseline
// sits in between — the loss-vs-traffic separation the campaign exists to
// show. A second invocation must be a no-op resume.
func TestEdgeFleetCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full edge-fleet campaign")
	}
	c, _ := loadEdgeFleet(t)
	dir := t.TempDir()
	stats, err := Run(c, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planned != 12 || stats.Executed != 12 || !stats.Aggregated {
		t.Fatalf("edge-fleet campaign: %+v", stats)
	}

	data, err := os.ReadFile(filepath.Join(dir, "aggregate.json"))
	if err != nil {
		t.Fatal(err)
	}
	var agg AggregateFile
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	rows := map[string]AggregateRow{}
	for _, r := range agg.Cells {
		rows[r.Cell] = r
		if r.FleetTrace == "" || r.Partition == "" {
			t.Errorf("row %s missing axis labels: trace %q partition %q", r.Cell, r.FleetTrace, r.Partition)
		}
	}
	saps, topk, psgd := rows["saps_edge_noniid_c25"], rows["topk-psgd_edge_noniid_c25"], rows["psgd_edge_noniid"]
	if !(saps.TotalBytes < topk.TotalBytes && topk.TotalBytes < psgd.TotalBytes) {
		t.Errorf("traffic under churn not separated: saps %d, topk %d, psgd %d bytes",
			saps.TotalBytes, topk.TotalBytes, psgd.TotalBytes)
	}
	if psgd.TotalBytes < 8*saps.TotalBytes {
		t.Errorf("saps moved %d bytes vs psgd's %d — expected ~an order of magnitude apart", saps.TotalBytes, psgd.TotalBytes)
	}
	// The replayed day reshapes the link environment: simulated time under
	// the edge trace must differ from the static control's.
	static := rows["saps_static_noniid_c25"]
	if saps.SimSeconds == static.SimSeconds {
		t.Errorf("edge trace left simulated time at the static value (%v)", saps.SimSeconds)
	}

	again, err := Run(c, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Skipped != 12 {
		t.Fatalf("re-run was not a no-op resume: %+v", again)
	}
}
