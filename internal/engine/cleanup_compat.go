//go:build !go1.24

package engine

import "runtime"

// registerEngineCleanup releases an un-Closed engine's runtime goroutines
// when the engine becomes unreachable. Before Go 1.24 (no runtime.AddCleanup)
// this is a finalizer; it only captures the stop handle, never the engine,
// so the engine stays collectable.
func registerEngineCleanup(e *Engine, s *poolStop) {
	runtime.SetFinalizer(e, func(*Engine) { s.shutdown() })
}
