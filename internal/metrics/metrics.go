// Package metrics provides the small table/series rendering helpers the
// experiment drivers use to print paper-style outputs (markdown tables and
// CSV series).
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple string table rendered as markdown or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; the cell count must match the header count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteMarkdown renders the table with aligned pipes.
func (t *Table) WriteMarkdown(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	writeRow(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	writeRow(seps)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// WriteCSV renders the table as comma-separated values (cells containing
// commas are quoted).
func (t *Table) WriteCSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}

// F formats a float compactly (trailing zeros trimmed, 4 significant
// decimals).
func F(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Pct formats a fraction as a percentage with 2 decimals.
func Pct(v float64) string { return strconv.FormatFloat(100*v, 'f', 2, 64) + "%" }

// MB formats a byte count as megabytes.
func MB(bytes int64) string { return F(float64(bytes)/1e6) + " MB" }

// Series renders named float series as CSV: one column per series, one row
// per index (series may have different lengths; missing cells are empty).
func Series(w io.Writer, names []string, series map[string][]float64) {
	writeCSVRow(w, append([]string{"index"}, names...))
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := []string{strconv.Itoa(i)}
		for _, n := range names {
			s := series[n]
			if i < len(s) {
				row = append(row, F(s[i]))
			} else {
				row = append(row, "")
			}
		}
		writeCSVRow(w, row)
	}
}
