package algos

import (
	"sapspsgd/internal/compress"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
)

// PSGD is synchronous data-parallel SGD with a ring all-reduce over dense
// gradients (Eq. (1) of the paper): every round all n workers average their
// minibatch gradients exactly and take the same step, so all models stay
// bit-identical.
type PSGD struct {
	fleet *Fleet
	lr    float64
	avg   []float64
	grads [][]float64
}

// NewPSGD builds the all-reduce baseline.
func NewPSGD(fc FleetConfig) *PSGD {
	f := NewFleet(fc)
	p := &PSGD{fleet: f, lr: fc.LR, avg: make([]float64, f.Dim), grads: make([][]float64, f.N)}
	for i := range p.grads {
		p.grads[i] = make([]float64, f.Dim)
	}
	return p
}

// Name implements Algorithm.
func (p *PSGD) Name() string { return "PSGD" }

// Models implements Algorithm.
func (p *PSGD) Models() []*nn.Model { return p.fleet.Models }

// Step implements Algorithm.
func (p *PSGD) Step(round int, led *netsim.Ledger) float64 {
	loss := p.fleet.Parallel(func(i int) float64 {
		l := p.fleet.GradStep(i)
		p.fleet.Models[i].FlatGrads(p.grads[i])
		return l
	})
	tensor.Fill(p.avg, 0)
	for i := 0; i < p.fleet.N; i++ {
		tensor.Axpy(1/float64(p.fleet.N), p.grads[i], p.avg)
	}
	p.fleet.Parallel(func(i int) float64 {
		p.fleet.Models[i].AddFlatToParams(-p.lr, p.avg)
		return 0
	})

	// Ring all-reduce traffic: each worker streams 2·N·(n-1)/n values to its
	// ring successor (reduce-scatter + all-gather), and receives the same
	// volume from its predecessor.
	n := p.fleet.N
	perWorker := int64(2) * int64(p.fleet.Dim) * int64(n-1) / int64(n) * compress.BytesPerValue
	for i := 0; i < n; i++ {
		led.Exchange(i, (i+1)%n, perWorker, 0)
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*PSGD)(nil)

// TopKPSGD is PSGD with Top-k gradient sparsification and error feedback
// (DGC-style): each worker transmits only its N/c largest-magnitude
// compensated gradient entries, but must all-gather every other worker's
// sparse gradient, so per-worker traffic stays O(n·N/c).
type TopKPSGD struct {
	fleet *Fleet
	lr    float64
	c     float64
	efs   []*compress.ErrorFeedback
	avg   []float64
}

// NewTopKPSGD builds the Top-k baseline with compression ratio c (the paper
// uses c = 1000).
func NewTopKPSGD(fc FleetConfig, c float64) *TopKPSGD {
	f := NewFleet(fc)
	t := &TopKPSGD{fleet: f, lr: fc.LR, c: c, avg: make([]float64, f.Dim)}
	for i := 0; i < f.N; i++ {
		t.efs = append(t.efs, compress.NewErrorFeedback(f.Dim))
	}
	return t
}

// Name implements Algorithm.
func (t *TopKPSGD) Name() string { return "TopK-PSGD" }

// Models implements Algorithm.
func (t *TopKPSGD) Models() []*nn.Model { return t.fleet.Models }

// Step implements Algorithm.
func (t *TopKPSGD) Step(round int, led *netsim.Ledger) float64 {
	k := int(float64(t.fleet.Dim) / t.c)
	if k < 1 {
		k = 1
	}
	sparse := make([]compress.SparseVec, t.fleet.N)
	grad := make([][]float64, t.fleet.N)
	loss := t.fleet.Parallel(func(i int) float64 {
		l := t.fleet.GradStep(i)
		grad[i] = t.fleet.Models[i].FlatGrads(grad[i])
		sparse[i] = t.efs[i].CompressTopK(grad[i], k)
		return l
	})

	tensor.Fill(t.avg, 0)
	for i := 0; i < t.fleet.N; i++ {
		sparse[i].AddTo(t.avg, 1/float64(t.fleet.N))
	}
	t.fleet.Parallel(func(i int) float64 {
		t.fleet.Models[i].AddFlatToParams(-t.lr, t.avg)
		return 0
	})

	// All-gather of sparse gradients: every ordered pair exchanges one
	// sparse vector (explicit indices + values).
	for i := 0; i < t.fleet.N; i++ {
		for j := i + 1; j < t.fleet.N; j++ {
			led.Exchange(i, j, sparse[i].WireBytes(), sparse[j].WireBytes())
		}
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*TopKPSGD)(nil)
