// Geo-distributed scenario: 14 workers placed at the paper's 14 measured
// data-center locations (Fig. 1). Compares SAPS-PSGD's adaptive peer
// selection with random matching and the static ring, both in matched
// bandwidth (Fig. 5a) and in end-to-end communication time for the same
// accuracy.
//
//	go run ./examples/geodistributed
package main

import (
	"fmt"

	saps "sapspsgd"
)

func main() {
	bw := saps.FourteenCities()
	const workers = 14

	fmt.Println("Fig. 1 environment: 14 cities, min-symmetrized bandwidths (MB/s)")
	fmt.Printf("mean link bandwidth: %.3f MB/s\n\n", bw.MeanBandwidth())

	train, valid := saps.MNISTLike(1400, 350, 9)
	shards := saps.PartitionIID(train, workers, 2)
	in := saps.Shape{C: 1, H: 28, W: 28}
	factory := func() *saps.Model { return saps.NewMNISTCNN(in, 10, 0.25, 7) }

	cfg := saps.DefaultConfig(workers)
	cfg.Compression = 100
	cfg.Batch = 16
	cfg.Gossip = saps.GossipConfig{BThres: 4, TThres: 10} // prefer links ≥ 4 MB/s

	fc := saps.FleetConfig{N: workers, Factory: factory, Shards: shards, LR: cfg.LR, Batch: cfg.Batch, Seed: 1}
	run := func(alg saps.Algorithm) saps.Result {
		return saps.Run(alg, bw, saps.TrainConfig{Rounds: 120, EvalEvery: 30, Valid: valid})
	}

	adaptive := run(saps.NewSAPS(fc, bw, cfg))
	fmt.Println("SAPS-PSGD (adaptive peer selection):")
	report(adaptive)

	// Same sparsified gossip, but peers chosen uniformly at random — the
	// paper's RandomChoose comparison.
	random := run(saps.NewRandomChoose(fc, bw, cfg))
	fmt.Println("RandomChoose (uniform random matching):")
	report(random)

	fa, fr := adaptive.Final(), random.Final()
	fmt.Printf("speedup from adaptive selection: %.1f×  (%.3f s vs %.3f s of simulated comm time)\n",
		fr.TimeSec/fa.TimeSec, fa.TimeSec, fr.TimeSec)
}

func report(r saps.Result) {
	f := r.Final()
	fmt.Printf("  final accuracy %.2f%%, %.3f MB/worker, %.3f s communication\n\n",
		100*f.ValAcc, f.TrafficMB, f.TimeSec)
}
