package tensor

import "sync"

// Vector scratch pool: evaluation and consensus paths repeatedly need
// model-dimension float64 buffers (hundreds of KB each) for a few
// microseconds. Pooling them by power-of-two size class keeps the steady
// state allocation-free without pinning one buffer per caller.

const poolClasses = 32

var vecPools [poolClasses]sync.Pool

func classOf(n int) int {
	c := 0
	for s := 1; s < n; s <<= 1 {
		c++
	}
	return c
}

// GetVec returns a zeroed []float64 of length n from the pool (allocating
// when the pool is empty). Return it with PutVec when done.
func GetVec(n int) []float64 {
	out := GetVecRaw(n)
	for i := range out {
		out[i] = 0
	}
	return out
}

// GetVecRaw is GetVec without the zero fill: the contents are arbitrary, for
// callers that overwrite the whole buffer anyway (FlatParams, Sub, ...).
func GetVecRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := classOf(n)
	if v, ok := vecPools[c].Get().(*[]float64); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutVec recycles a vector obtained from GetVec. The caller must not use v
// afterwards.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	c := classOf(cap(v))
	if 1<<c != cap(v) {
		// Foreign capacity (not from GetVec): round down to the class that
		// can still serve requests up to cap(v)... a smaller class would
		// under-serve, so drop it instead of poisoning the pool.
		return
	}
	vecPools[c].Put(&v)
}
