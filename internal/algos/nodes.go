package algos

import (
	"fmt"
	"math"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
)

// This file holds the engine.Node implementations behind the seven baseline
// algorithms. Each node owns exactly one rank's local state (model,
// optimizer, loader, scratch), so the same types serve the in-process fleet
// simulations and the one-node-per-process TCP deployment.

// localTrainer bundles one rank's training state.
type localTrainer struct {
	rank   int
	model  *nn.Model
	opt    *nn.SGD
	loader *dataset.Loader
}

// newLocalTrainer builds the training state with the fleet's deterministic
// per-rank loader stream, so in-process and TCP runs draw identical batches.
func newLocalTrainer(rank int, model *nn.Model, shard *dataset.Dataset, batch int, lr float64, seed uint64) *localTrainer {
	return &localTrainer{
		rank:   rank,
		model:  model,
		opt:    &nn.SGD{LR: lr},
		loader: dataset.NewLoader(shard, batch, seed+uint64(rank)*104729),
	}
}

// gradStep computes gradients on the next minibatch without applying them.
func (t *localTrainer) gradStep() float64 {
	xs, ys := t.loader.Next()
	return nn.ComputeGrads(t.model, xs, ys)
}

// sgdStep runs one full local SGD step.
func (t *localTrainer) sgdStep() float64 {
	xs, ys := t.loader.Next()
	return nn.TrainBatch(t.model, t.opt, xs, ys)
}

// serverLoss marks a node as a non-training participant.
func serverLoss() float64 { return math.NaN() }

// ---------------------------------------------------------------------------
// Gradient-averaging nodes (PSGD, TopK-PSGD, QSGD-PSGD)

// gradAvgNode is synchronous data-parallel SGD: each round it shares its
// minibatch gradient and applies the fleet-wide average. Composed with the
// Collective pattern + dense codec it is PSGD (exact all-reduce); with the
// AllGather pattern + a lossy codec it is the compressed all-gather family
// (TopK-PSGD, QSGD-PSGD), where the merged sum is the sum of *decoded*
// gradients, the node's own included.
type gradAvgNode struct {
	t     *localTrainer
	lr    float64
	n     int // trainer count the sum is averaged over
	grads []float64
}

// Compute implements engine.Node.
func (g *gradAvgNode) Compute(engine.RoundContext) (float64, []float64, error) {
	loss := g.t.gradStep()
	g.grads = g.t.model.FlatGrads(g.grads)
	return loss, g.grads, nil
}

// Merge implements engine.Node: apply −lr · (Σ g_j)/n.
func (g *gradAvgNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	if len(msgs) != 1 || msgs[0].From != -1 {
		return fmt.Errorf("algos: gradient-average node expects one collective sum, got %d messages", len(msgs))
	}
	g.t.model.AddFlatToParams(-g.lr/float64(g.n), msgs[0].Vals)
	return nil
}

// ---------------------------------------------------------------------------
// Neighborhood mixing node (D-PSGD and its topology variants)

// neighborMixNode is D-PSGD (Lian et al.): each round it shares its dense
// model with its static neighbors and applies
// x ← Σ_j W_ij x_j − lr·∇F(x), with W rows given per node. Composed with
// the Neighborhood pattern + dense codec.
type neighborMixNode struct {
	t       *localTrainer
	lr      float64
	weights map[int]float64 // W row, self weight included
	params  []float64
	grads   []float64
	mixed   []float64
}

// Compute implements engine.Node.
func (d *neighborMixNode) Compute(engine.RoundContext) (float64, []float64, error) {
	loss := d.t.gradStep()
	d.params = d.t.model.FlatParams(d.params)
	d.grads = d.t.model.FlatGrads(d.grads)
	return loss, d.params, nil
}

// Merge implements engine.Node.
func (d *neighborMixNode) Merge(ctx engine.RoundContext, msgs []engine.PeerMsg) error {
	if cap(d.mixed) < len(d.params) {
		d.mixed = make([]float64, len(d.params))
	}
	d.mixed = d.mixed[:len(d.params)]
	wSelf := d.weights[ctx.Self]
	for j := range d.mixed {
		d.mixed[j] = wSelf * d.params[j]
	}
	for _, m := range msgs {
		w, ok := d.weights[m.From]
		if !ok {
			return fmt.Errorf("algos: D-PSGD node %d received model from non-neighbor %d", ctx.Self, m.From)
		}
		tensor.Axpy(w, m.Vals, d.mixed)
	}
	tensor.Axpy(-d.lr, d.grads, d.mixed)
	d.t.model.SetFlatParams(d.mixed)
	return nil
}

// ---------------------------------------------------------------------------
// Difference-compressed node (DCD-PSGD)

// dcdNode is difference-compressed decentralized SGD (Tang et al.): it keeps
// public replicas x̂ of itself and its neighbors, gossips over the replicas,
// and shares only a top-k compressed difference between its new model and
// its own replica. Composed with the Neighborhood pattern (IncludeSelf: the
// node must apply its own *lossy* delta to its own replica, exactly as its
// neighbors do) + a top-k codec without error feedback.
type dcdNode struct {
	t        *localTrainer
	lr       float64
	weights  map[int]float64 // gossip weights over neighbors (no self entry)
	replicas map[int][]float64
	params   []float64
	grads    []float64
	diff     []float64
}

// newDCDNode initializes the replicas at the shared initial model, so they
// are exact at round 0.
func newDCDNode(t *localTrainer, lr float64, weights map[int]float64, self int) *dcdNode {
	n := &dcdNode{t: t, lr: lr, weights: weights, replicas: map[int][]float64{}}
	init := t.model.FlatParams(nil)
	n.replicas[self] = init
	for j := range weights {
		n.replicas[j] = append([]float64(nil), init...)
	}
	return n
}

// Compute implements engine.Node: replica-based gossip + gradient step, then
// publish the compressed model/replica difference.
func (n *dcdNode) Compute(ctx engine.RoundContext) (float64, []float64, error) {
	loss := n.t.gradStep()
	n.params = n.t.model.FlatParams(n.params)
	n.grads = n.t.model.FlatGrads(n.grads)
	self := n.replicas[ctx.Self]
	for j := range n.params {
		gossip := 0.0
		for nb, w := range n.weights {
			gossip += w * (n.replicas[nb][j] - self[j])
		}
		n.params[j] += gossip - n.lr*n.grads[j]
	}
	n.t.model.SetFlatParams(n.params)
	if cap(n.diff) < len(n.params) {
		n.diff = make([]float64, len(n.params))
	}
	n.diff = n.diff[:len(n.params)]
	tensor.Sub(n.diff, n.params, self)
	return loss, n.diff, nil
}

// Merge implements engine.Node: every published delta (the node's own
// included) advances the corresponding public replica.
func (n *dcdNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		repl, ok := n.replicas[m.From]
		if !ok {
			return fmt.Errorf("algos: DCD node received delta from non-neighbor %d", m.From)
		}
		tensor.Axpy(1, m.Vals, repl)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Parameter-server nodes (PS-PSGD)

// psWorkerNode pulls the fresh dense model (hub downlink, merged before
// Compute), computes one minibatch gradient on it, and pushes the dense
// gradient up.
type psWorkerNode struct {
	t     *localTrainer
	grads []float64
}

// Compute implements engine.Node.
func (p *psWorkerNode) Compute(engine.RoundContext) (float64, []float64, error) {
	loss := p.t.gradStep()
	p.grads = p.t.model.FlatGrads(p.grads)
	return loss, p.grads, nil
}

// Merge implements engine.Node (hub downlink: adopt the server model).
func (p *psWorkerNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		p.t.model.SetFlatParams(m.Vals)
	}
	return nil
}

// psServerNode owns the global model: it broadcasts it down and applies the
// average of the uploaded gradients. mirror, when set, receives the updated
// parameters too — the in-process harness evaluates on worker 0's model
// because the server model never forward-passes and therefore has no trained
// normalization statistics.
type psServerNode struct {
	model  *nn.Model
	mirror *nn.Model
	lr     float64
	params []float64
	acc    []float64
}

// Compute implements engine.Node.
func (s *psServerNode) Compute(engine.RoundContext) (float64, []float64, error) {
	s.params = s.model.FlatParams(s.params)
	return serverLoss(), s.params, nil
}

// Merge implements engine.Node: x ← x − lr · mean(uploaded gradients).
func (s *psServerNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	if len(msgs) == 0 {
		return nil
	}
	if cap(s.acc) < len(s.params) {
		s.acc = make([]float64, len(s.params))
	}
	s.acc = s.acc[:len(s.params)]
	tensor.Fill(s.acc, 0)
	for _, m := range msgs {
		tensor.Axpy(1/float64(len(msgs)), m.Vals, s.acc)
	}
	tensor.Axpy(-s.lr, s.acc, s.params)
	s.model.SetFlatParams(s.params)
	if s.mirror != nil {
		s.mirror.SetFlatParams(s.params)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Federated-averaging nodes (FedAvg, S-FedAvg)

// fedWorkerNode pulls the dense model, runs localSteps minibatch SGD steps,
// and pushes either its full model (FedAvg, dense codec) or its model delta
// (S-FedAvg, random-k codec).
type fedWorkerNode struct {
	t          *localTrainer
	localSteps int
	delta      bool
	pulled     []float64 // server params at this round's pull
	out        []float64
}

// Merge implements engine.Node (hub downlink).
func (f *fedWorkerNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		f.pulled = append(f.pulled[:0], m.Vals...)
		f.t.model.SetFlatParams(f.pulled)
	}
	return nil
}

// Compute implements engine.Node.
func (f *fedWorkerNode) Compute(engine.RoundContext) (float64, []float64, error) {
	total := 0.0
	for s := 0; s < f.localSteps; s++ {
		total += f.t.sgdStep()
	}
	f.out = f.t.model.FlatParams(f.out)
	if f.delta {
		tensor.Sub(f.out, f.out, f.pulled)
	}
	return total / float64(f.localSteps), f.out, nil
}

// fedServerNode aggregates uploads into the global model. With counted unset
// it averages full uploaded models (FedAvg); with counted set it applies
// count-normalized sparse deltas (S-FedAvg): each received coordinate is
// averaged over the workers that actually reported it, which keeps the
// update variance bounded at high compression.
type fedServerNode struct {
	model   *nn.Model
	mirror  *nn.Model
	counted bool
	params  []float64
	acc     []float64
	counts  []int32
}

// Compute implements engine.Node.
func (s *fedServerNode) Compute(engine.RoundContext) (float64, []float64, error) {
	s.params = s.model.FlatParams(s.params)
	return serverLoss(), s.params, nil
}

// Merge implements engine.Node.
func (s *fedServerNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	if len(msgs) == 0 {
		return nil
	}
	dim := len(s.params)
	if cap(s.acc) < dim {
		s.acc = make([]float64, dim)
	}
	s.acc = s.acc[:dim]
	tensor.Fill(s.acc, 0)
	if !s.counted {
		for _, m := range msgs {
			tensor.Axpy(1/float64(len(msgs)), m.Vals, s.acc)
		}
		copy(s.params, s.acc)
	} else {
		if cap(s.counts) < dim {
			s.counts = make([]int32, dim)
		}
		s.counts = s.counts[:dim]
		for j := range s.counts {
			s.counts[j] = 0
		}
		for _, m := range msgs {
			_, idx, vals, err := engine.SparseWords(m.Words)
			if err != nil {
				return err
			}
			for i, ix := range idx {
				j := int(ix)
				s.acc[j] += vals[i]
				s.counts[j]++
			}
		}
		for j, c := range s.counts {
			if c > 0 {
				s.params[j] += s.acc[j] / float64(c)
			}
		}
	}
	s.model.SetFlatParams(s.params)
	if s.mirror != nil {
		s.mirror.SetFlatParams(s.params)
	}
	return nil
}
