package experiments

import (
	"fmt"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/metrics"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/spectral"
	"sapspsgd/internal/topology"
	"sapspsgd/internal/trainer"
)

// TopologyAblation compares D-PSGD across static topologies and SAPS-PSGD's
// dynamic matching on one workload: spectral gap, per-worker traffic, final
// accuracy, and simulated communication time. It quantifies the §II-C
// trade-off — more neighbors mix faster but cost proportionally more — and
// shows where single-peer sparsified gossip sits on that frontier.
func TopologyAblation(w Workload, n int, seed uint64) (*metrics.Table, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("experiments: topology ablation needs a power-of-two n for the hypercube, got %d", n)
	}
	d := 0
	for v := n; v > 1; v >>= 1 {
		d++
	}
	tops := []topology.Topology{
		topology.Ring(n),
		topology.Hypercube(d),
		topology.RandomRegular(n, 3, rng.New(seed)),
	}

	t := metrics.NewTable(
		fmt.Sprintf("Topology ablation (%s, %d workers, %d rounds)", w.Name, n, w.Rounds),
		"Variant", "ρ(W)", "Final accuracy", "Traffic (MB/worker)", "Comm time (s)")

	bw := EnvN(n, seed)
	_, valid := w.Dataset()
	tr, _ := w.Dataset()
	newFleetCfg := func() algos.FleetConfig {
		return algos.FleetConfig{
			N:       n,
			Factory: func() *nn.Model { return w.Factory(seed) },
			Shards:  dataset.PartitionIID(tr, n, seed),
			LR:      w.LR,
			Batch:   w.Batch,
			Seed:    seed,
		}
	}

	for _, tp := range tops {
		rho := spectral.SecondLargestEigenvalue(topology.MetropolisW(tp), 500)
		alg := algos.NewDPSGDTopology(newFleetCfg(), tp)
		res := trainer.Run(alg, bw, trainer.Config{
			Rounds: w.Rounds, EvalEvery: w.Rounds / 4, Valid: valid,
		})
		f := res.Final()
		t.Add(alg.Name(), metrics.F(rho), metrics.Pct(f.ValAcc), metrics.F(f.TrafficMB), metrics.F(f.TimeSec))
	}

	// SAPS for reference: its "topology" is the dynamic matching; report the
	// measured ρ of its sampled gossip matrices instead.
	saps, err := BuildAlgorithm("SAPS-PSGD", w, n, bw, seed)
	if err != nil {
		return nil, err
	}
	diag := DiagnoseGossip(bw, defaultGossipConfig(bw), 1/w.ratios().SAPS, 100, seed)
	res := trainer.Run(saps, bw, trainer.Config{
		Rounds: w.Rounds, EvalEvery: w.Rounds / 4, Valid: valid,
	})
	f := res.Final()
	t.Add("SAPS-PSGD (dynamic)", metrics.F(diag.Rho), metrics.Pct(f.ValAcc), metrics.F(f.TrafficMB), metrics.F(f.TimeSec))
	return t, nil
}
