package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Stateful is implemented by layers that carry non-parameter internal state
// which must survive a save/load cycle — BatchNorm's running mean/variance.
// Such state is deliberately excluded from the flat parameter vector (it is
// not exchanged between workers) but belongs in a checkpoint.
type Stateful interface {
	// RunningState returns a copy of the layer's internal statistics.
	RunningState() []float64
	// SetRunningState restores statistics captured by RunningState. It
	// panics on a length mismatch.
	SetRunningState(s []float64)
}

// checkpoint is the serialized form of a model: the flat parameter vector
// plus the per-layer running state. Architecture is reconstructed by the
// caller (the same convention the coordinator's final-model collection
// uses); Name guards against loading into the wrong architecture.
type checkpoint struct {
	Name   string
	Params []float64
	State  [][]float64
}

// collectState gathers the Stateful layers' state, walking nested layers
// through composite blocks.
func (m *Model) collectState() [][]float64 {
	var out [][]float64
	for _, l := range m.layers {
		out = append(out, layerStates(l)...)
	}
	return out
}

// layerStates returns the running state of l and (for composite layers) its
// children, in deterministic order.
func layerStates(l Layer) [][]float64 {
	switch v := l.(type) {
	case Stateful:
		return [][]float64{v.RunningState()}
	case *Residual:
		var out [][]float64
		out = append(out, v.bn1.RunningState(), v.bn2.RunningState())
		if v.projBN != nil {
			out = append(out, v.projBN.RunningState())
		}
		return out
	default:
		return nil
	}
}

// applyStates restores collected running state; it returns the number of
// entries consumed.
func applyStates(l Layer, states [][]float64, pos int) int {
	switch v := l.(type) {
	case Stateful:
		v.SetRunningState(states[pos])
		return pos + 1
	case *Residual:
		v.bn1.SetRunningState(states[pos])
		v.bn2.SetRunningState(states[pos+1])
		pos += 2
		if v.projBN != nil {
			v.projBN.SetRunningState(states[pos])
			pos++
		}
		return pos
	default:
		return pos
	}
}

// Save writes the model's parameters and running statistics to w.
func (m *Model) Save(w io.Writer) error {
	cp := checkpoint{Name: m.Name, Params: m.FlatParams(nil), State: m.collectState()}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save %s: %w", m.Name, err)
	}
	return nil
}

// Load restores a checkpoint saved by Save into an identically constructed
// model. It fails if the architecture name, parameter count, or state shape
// differs.
func (m *Model) Load(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	if cp.Name != m.Name {
		return fmt.Errorf("nn: checkpoint is %q, model is %q", cp.Name, m.Name)
	}
	if len(cp.Params) != m.ParamCount() {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(cp.Params), m.ParamCount())
	}
	if want := len(m.collectState()); len(cp.State) != want {
		return fmt.Errorf("nn: checkpoint has %d state entries, model has %d", len(cp.State), want)
	}
	m.SetFlatParams(cp.Params)
	pos := 0
	for _, l := range m.layers {
		pos = applyStates(l, cp.State, pos)
	}
	return nil
}
