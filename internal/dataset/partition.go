package dataset

import (
	"fmt"

	"sapspsgd/internal/rng"
)

// PartitionIID splits d into n shards of (nearly) equal size after a seeded
// shuffle. Shards share the parent's image geometry and class count.
func PartitionIID(d *Dataset, n int, seed uint64) []*Dataset {
	if n < 1 {
		panic(fmt.Sprintf("dataset: PartitionIID with n=%d", n))
	}
	r := rng.New(seed)
	idx := r.Perm(len(d.Samples))
	shards := make([]*Dataset, n)
	for w := 0; w < n; w++ {
		shards[w] = emptyLike(d, fmt.Sprintf("%s/worker%d", d.Name, w))
	}
	for pos, i := range idx {
		w := pos % n
		shards[w].Samples = append(shards[w].Samples, d.Samples[i])
	}
	return shards
}

// PartitionByLabel produces a non-IID partition in the federated-learning
// style: samples are sorted by label into contiguous shards and each worker
// receives shardsPerWorker of them, so most workers see only a few classes.
// This reproduces the data heterogeneity (ζ² > 0 in Assumption 4) under
// which decentralized methods are evaluated.
func PartitionByLabel(d *Dataset, n, shardsPerWorker int, seed uint64) []*Dataset {
	if n < 1 || shardsPerWorker < 1 {
		panic(fmt.Sprintf("dataset: PartitionByLabel n=%d spw=%d", n, shardsPerWorker))
	}
	r := rng.New(seed)
	// Stable ordering by label, randomized within a label.
	byLabel := make([][]int, d.Classes)
	for i, s := range d.Samples {
		byLabel[s.Label] = append(byLabel[s.Label], i)
	}
	var order []int
	for _, idxs := range byLabel {
		r.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		order = append(order, idxs...)
	}
	totalShards := n * shardsPerWorker
	shardSize := len(order) / totalShards
	if shardSize == 0 {
		panic("dataset: too few samples for requested shards")
	}
	shardIDs := r.Perm(totalShards)
	shards := make([]*Dataset, n)
	for w := 0; w < n; w++ {
		shards[w] = emptyLike(d, fmt.Sprintf("%s/worker%d-noniid", d.Name, w))
		for s := 0; s < shardsPerWorker; s++ {
			id := shardIDs[w*shardsPerWorker+s]
			lo := id * shardSize
			hi := lo + shardSize
			if id == totalShards-1 {
				hi = len(order) // last shard absorbs the remainder
			}
			for _, i := range order[lo:hi] {
				shards[w].Samples = append(shards[w].Samples, d.Samples[i])
			}
		}
	}
	return shards
}

// PartitionDirichlet produces the FedAvg-style label-skew partition: for
// each class, the class's samples are split among the n workers in
// proportions drawn from a symmetric Dirichlet(alpha) — small alpha
// concentrates each class on few workers (strong heterogeneity), large
// alpha approaches IID. Counts are rounded by largest remainder so every
// sample lands in exactly one shard, and workers below minPerNode steal
// from the largest shards so no loader ever starves. Shards alias the
// parent's sample storage (headers are copied, pixels are not), exactly
// like PartitionIID. Everything derives from seed.
func PartitionDirichlet(d *Dataset, n int, alpha float64, minPerNode int, seed uint64) []*Dataset {
	if n < 1 || !(alpha > 0) {
		panic(fmt.Sprintf("dataset: PartitionDirichlet n=%d alpha=%v", n, alpha))
	}
	r := rng.New(seed)
	draws := r.Derive(0xd112)
	byLabel := make([][]int, d.Classes)
	for i, s := range d.Samples {
		byLabel[s.Label] = append(byLabel[s.Label], i)
	}
	assign := make([][]int, n)
	weights := make([]float64, n)
	for _, idxs := range byLabel {
		r.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for w := range weights {
			weights[w] = draws.Gamma(alpha)
		}
		pos := 0
		for w, cnt := range apportion(weights, len(idxs)) {
			assign[w] = append(assign[w], idxs[pos:pos+cnt]...)
			pos += cnt
		}
	}
	rebalance(assign, minPerNode, len(d.Samples))
	return shardsFrom(d, assign, "dirichlet")
}

// PartitionQuantitySkew splits d IID in content but unevenly in size: shard
// sizes follow a symmetric Dirichlet(alpha) over the workers (small alpha =
// a few data-rich workers and many data-poor ones), with the same
// largest-remainder rounding, minPerNode floor, and storage aliasing as
// PartitionDirichlet.
func PartitionQuantitySkew(d *Dataset, n int, alpha float64, minPerNode int, seed uint64) []*Dataset {
	if n < 1 || !(alpha > 0) {
		panic(fmt.Sprintf("dataset: PartitionQuantitySkew n=%d alpha=%v", n, alpha))
	}
	r := rng.New(seed)
	draws := r.Derive(0xd112)
	idx := r.Perm(len(d.Samples))
	weights := make([]float64, n)
	for w := range weights {
		weights[w] = draws.Gamma(alpha)
	}
	assign := make([][]int, n)
	pos := 0
	for w, cnt := range apportion(weights, len(idx)) {
		assign[w] = append(assign[w], idx[pos:pos+cnt]...)
		pos += cnt
	}
	rebalance(assign, minPerNode, len(d.Samples))
	return shardsFrom(d, assign, "qskew")
}

// apportion rounds total·weights[i]/sum(weights) to integers summing to
// total by largest remainder (ties to the lower index).
func apportion(weights []float64, total int) []int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	counts := make([]int, len(weights))
	fracs := make([]float64, len(weights))
	used := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < total {
		best := 0
		for i := 1; i < len(fracs); i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		used++
	}
	return counts
}

// rebalance enforces the minPerNode floor (at least 1: every worker runs a
// loader) by moving samples, one at a time, from the currently largest
// shard to the most starved one. Deterministic: ties resolve to the lowest
// index, and the donor always gives up its last sample.
func rebalance(assign [][]int, minPerNode, samples int) {
	floor := minPerNode
	if floor < 1 {
		floor = 1
	}
	if floor*len(assign) > samples {
		panic(fmt.Sprintf("dataset: %d samples cannot give %d workers %d each", samples, len(assign), floor))
	}
	for {
		need, donor := -1, 0
		for i, a := range assign {
			if len(a) < floor && (need < 0 || len(a) < len(assign[need])) {
				need = i
			}
			if len(a) > len(assign[donor]) {
				donor = i
			}
		}
		if need < 0 {
			return
		}
		last := assign[donor][len(assign[donor])-1]
		assign[donor] = assign[donor][:len(assign[donor])-1]
		assign[need] = append(assign[need], last)
	}
}

// shardsFrom materializes per-worker shards from sample-index assignments.
func shardsFrom(d *Dataset, assign [][]int, kind string) []*Dataset {
	shards := make([]*Dataset, len(assign))
	for w, idxs := range assign {
		shards[w] = emptyLike(d, fmt.Sprintf("%s/worker%d-%s", d.Name, w, kind))
		for _, i := range idxs {
			shards[w].Samples = append(shards[w].Samples, d.Samples[i])
		}
	}
	return shards
}

func emptyLike(d *Dataset, name string) *Dataset {
	return &Dataset{Name: name, C: d.C, H: d.H, W: d.W, Classes: d.Classes}
}

// Loader yields minibatches cyclically, reshuffling at each epoch boundary.
type Loader struct {
	d     *Dataset
	batch int
	r     *rng.Source
	order []int
	pos   int
	// Epochs counts completed passes over the shard.
	Epochs int
}

// NewLoader returns a loader with the given batch size. Batch is clamped to
// the dataset size.
func NewLoader(d *Dataset, batch int, seed uint64) *Loader {
	if d.Len() == 0 {
		panic("dataset: loader over empty dataset")
	}
	if batch < 1 {
		panic(fmt.Sprintf("dataset: batch %d < 1", batch))
	}
	if batch > d.Len() {
		batch = d.Len()
	}
	l := &Loader{d: d, batch: batch, r: rng.New(seed)}
	l.reshuffle()
	return l
}

func (l *Loader) reshuffle() {
	l.order = l.r.Perm(l.d.Len())
	l.pos = 0
}

// Next returns the next minibatch (views into the dataset, not copies).
func (l *Loader) Next() (xs [][]float64, labels []int) {
	xs = make([][]float64, 0, l.batch)
	labels = make([]int, 0, l.batch)
	for len(xs) < l.batch {
		if l.pos == len(l.order) {
			l.Epochs++
			l.reshuffle()
		}
		s := l.d.Samples[l.order[l.pos]]
		l.pos++
		xs = append(xs, s.X)
		labels = append(labels, s.Label)
	}
	return xs, labels
}

// LoaderState is a Loader's complete serializable position in its minibatch
// stream: the shuffle RNG cursor, the current epoch's sample order, and the
// position within it. Restoring it resumes Next exactly where the captured
// loader left off — data cursors are part of a rank's round-boundary
// checkpoint (DESIGN.md §3).
type LoaderState struct {
	RNG    rng.State
	Order  []int
	Pos    int
	Epochs int
}

// State captures the loader's current position (the order slice is copied).
func (l *Loader) State() LoaderState {
	return LoaderState{
		RNG:    l.r.State(),
		Order:  append([]int(nil), l.order...),
		Pos:    l.pos,
		Epochs: l.Epochs,
	}
}

// SetState restores a position captured by State. It panics if the captured
// order does not index this loader's dataset.
func (l *Loader) SetState(st LoaderState) {
	for _, i := range st.Order {
		if i < 0 || i >= l.d.Len() {
			panic(fmt.Sprintf("dataset: loader state order entry %d for dataset of %d", i, l.d.Len()))
		}
	}
	if st.Pos < 0 || st.Pos > len(st.Order) {
		panic(fmt.Sprintf("dataset: loader state pos %d of %d", st.Pos, len(st.Order)))
	}
	l.r.SetState(st.RNG)
	l.order = append(l.order[:0], st.Order...)
	l.pos = st.Pos
	l.Epochs = st.Epochs
}

// BatchesPerEpoch returns the number of Next calls per full pass.
func (l *Loader) BatchesPerEpoch() int {
	b := l.d.Len() / l.batch
	if b == 0 {
		return 1
	}
	return b
}

// LabelHistogram counts samples per class — used by the non-IID tests.
func LabelHistogram(d *Dataset) []int {
	h := make([]int, d.Classes)
	for _, s := range d.Samples {
		h[s.Label]++
	}
	return h
}
