// Package algos implements the seven training algorithms the paper
// evaluates — SAPS-PSGD and its six comparators (PSGD all-reduce,
// TopK-PSGD, FedAvg, S-FedAvg, D-PSGD, DCD-PSGD) plus the RandomChoose
// matching ablation — behind a common Algorithm interface consumed by the
// trainer harness. Every algorithm accounts its exact wire traffic in a
// netsim.Ledger so the Fig. 4/6 and Table IV comparisons are byte-accurate.
package algos

import (
	"fmt"
	"runtime"
	"sync"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
)

// Algorithm is one distributed training scheme, driven round by round.
// Implementations are not safe for concurrent use.
type Algorithm interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Step executes one synchronous communication round: local compute for
	// every worker plus all model/gradient exchanges, recorded in the
	// ledger (which must wrap the same bandwidth environment the algorithm
	// was constructed with). It returns the mean local training loss.
	Step(round int, led *netsim.Ledger) float64
	// Models returns the live models whose parameter average is the
	// algorithm's current global model (a single server model for
	// centralized schemes).
	Models() []*nn.Model
}

// FleetConfig is the shared construction recipe for the decentralized
// algorithms: n workers with identical initial parameters and per-worker
// data shards.
type FleetConfig struct {
	N       int
	Factory func() *nn.Model // must produce identically initialized models
	Shards  []*dataset.Dataset
	LR      float64
	Batch   int
	Seed    uint64
}

func (c FleetConfig) validate() {
	if c.N < 2 {
		panic(fmt.Sprintf("algos: fleet of %d", c.N))
	}
	if len(c.Shards) != c.N {
		panic(fmt.Sprintf("algos: %d shards for %d workers", len(c.Shards), c.N))
	}
	if c.Factory == nil {
		panic("algos: nil model factory")
	}
	if c.LR <= 0 || c.Batch < 1 {
		panic("algos: bad LR/batch")
	}
}

// Fleet is the shared worker plumbing.
type Fleet struct {
	N       int
	Models  []*nn.Model
	Opts    []*nn.SGD
	Loaders []*dataset.Loader
	Dim     int
}

// NewFleet builds the workers. All models come from the same factory so
// X₀ is identical across workers (the paper's initial-consensus condition).
func NewFleet(cfg FleetConfig) *Fleet {
	cfg.validate()
	f := &Fleet{N: cfg.N}
	for i := 0; i < cfg.N; i++ {
		m := cfg.Factory()
		if i == 0 {
			f.Dim = m.ParamCount()
		} else if m.ParamCount() != f.Dim {
			panic("algos: factory produced models of different sizes")
		}
		f.Models = append(f.Models, m)
		f.Opts = append(f.Opts, &nn.SGD{LR: cfg.LR})
		f.Loaders = append(f.Loaders, dataset.NewLoader(cfg.Shards[i], cfg.Batch, cfg.Seed+uint64(i)*104729))
	}
	return f
}

// Parallel runs fn(i) for every worker concurrently (bounded by GOMAXPROCS)
// and returns the mean of the returned values. Worker state is disjoint, so
// this is safe as long as fn(i) touches only worker i.
func (f *Fleet) Parallel(fn func(i int) float64) float64 {
	results := make([]float64, f.N)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < f.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			results[i] = fn(i)
			<-sem
		}(i)
	}
	wg.Wait()
	sum := 0.0
	for _, v := range results {
		sum += v
	}
	return sum / float64(f.N)
}

// GradStep computes gradients for worker i on its next minibatch without
// applying them, returning the loss. Gradients remain in Models[i].
func (f *Fleet) GradStep(i int) float64 {
	xs, ys := f.Loaders[i].Next()
	return nn.ComputeGrads(f.Models[i], xs, ys)
}

// SGDStep runs one full local SGD step for worker i and returns the loss.
func (f *Fleet) SGDStep(i int) float64 {
	xs, ys := f.Loaders[i].Next()
	return nn.TrainBatch(f.Models[i], f.Opts[i], xs, ys)
}
