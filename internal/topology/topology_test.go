package topology

import (
	"testing"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/spectral"
	"sapspsgd/internal/tensor"
)

func TestRing(t *testing.T) {
	tp := Ring(8)
	if tp.G.EdgeCount() != 8 || !tp.G.IsConnected() {
		t.Fatalf("ring: %d edges", tp.G.EdgeCount())
	}
	for v := 0; v < 8; v++ {
		if len(tp.G.Neighbors(v)) != 2 {
			t.Fatalf("ring degree at %d", v)
		}
	}
}

func TestTorus(t *testing.T) {
	tp := Torus(3, 4)
	if tp.G.N != 12 || !tp.G.IsConnected() {
		t.Fatal("torus shape")
	}
	for v := 0; v < 12; v++ {
		if len(tp.G.Neighbors(v)) != 4 {
			t.Fatalf("torus degree %d at %d", len(tp.G.Neighbors(v)), v)
		}
	}
}

func TestHypercube(t *testing.T) {
	tp := Hypercube(4)
	if tp.G.N != 16 || !tp.G.IsConnected() {
		t.Fatal("hypercube shape")
	}
	for v := 0; v < 16; v++ {
		if len(tp.G.Neighbors(v)) != 4 {
			t.Fatal("hypercube degree")
		}
	}
	// Neighbors differ in exactly one bit.
	for v := 0; v < 16; v++ {
		for _, u := range tp.G.Neighbors(v) {
			x := uint(v ^ u)
			if x&(x-1) != 0 {
				t.Fatalf("edge %d-%d differs in >1 bit", v, u)
			}
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(5)
	tp := RandomRegular(16, 3, r)
	if !tp.G.IsConnected() {
		t.Fatal("not connected")
	}
	for v := 0; v < 16; v++ {
		if len(tp.G.Neighbors(v)) != 3 {
			t.Fatalf("degree %d at %d", len(tp.G.Neighbors(v)), v)
		}
	}
}

func TestRandomRegularBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd n·d")
		}
	}()
	RandomRegular(5, 3, rng.New(1))
}

func TestMetropolisWDoublyStochastic(t *testing.T) {
	r := rng.New(7)
	tops := []Topology{
		Ring(9),
		Torus(3, 3),
		Hypercube(3),
		RandomRegular(12, 3, r),
	}
	for _, tp := range tops {
		w := MetropolisW(tp)
		if !w.IsDoublyStochastic(1e-12) {
			t.Fatalf("%s: MetropolisW not doubly stochastic", tp.Name)
		}
		// Symmetry.
		for i := 0; i < w.Rows; i++ {
			for j := 0; j < w.Cols; j++ {
				if w.At(i, j) != w.At(j, i) {
					t.Fatalf("%s: asymmetric at (%d,%d)", tp.Name, i, j)
				}
			}
		}
	}
}

func TestExpanderMixesFasterThanRing(t *testing.T) {
	// Spectral comparison at equal size: the hypercube (degree 4) and a
	// random 4-regular graph must have smaller second eigenvalue than the
	// ring (degree 2) on 16 vertices — more edges, faster consensus. This
	// quantifies the communication/mixing trade-off of §II-C.
	const iters = 600
	ring := spectral.SecondLargestEigenvalue(MetropolisW(Ring(16)), iters)
	cube := spectral.SecondLargestEigenvalue(MetropolisW(Hypercube(4)), iters)
	rnd4 := spectral.SecondLargestEigenvalue(MetropolisW(RandomRegular(16, 4, rng.New(3))), iters)
	if cube >= ring {
		t.Fatalf("hypercube rho %v not below ring rho %v", cube, ring)
	}
	if rnd4 >= ring {
		t.Fatalf("random 4-regular rho %v not below ring rho %v", rnd4, ring)
	}
}

func TestMeanLinkBandwidthAndTraffic(t *testing.T) {
	bw := netsim.RandomUniform(8, 1, 5, rng.New(2))
	tp := Ring(8)
	m := MeanLinkBandwidth(tp, bw)
	if m <= 0 || m > 5 {
		t.Fatalf("mean link bandwidth %v", m)
	}
	if got := PerWorkerTrafficPerRound(tp, 0); got != 4 {
		t.Fatalf("ring per-round payloads = %d, want 4", got)
	}
	if got := PerWorkerTrafficPerRound(Hypercube(3), 0); got != 6 {
		t.Fatalf("hypercube payloads = %d, want 6", got)
	}
}

func TestGossipConsensusOnTopologies(t *testing.T) {
	// Iterating x ← Wx on any connected topology must contract disagreement.
	r := rng.New(11)
	for _, tp := range []Topology{Ring(12), Torus(3, 4), Hypercube(3)} {
		w := MetropolisW(tp)
		x := make([]float64, tp.G.N)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		dis := func(x []float64) float64 {
			m := tensor.Mean(x)
			s := 0.0
			for _, v := range x {
				s += (v - m) * (v - m)
			}
			return s
		}
		d0 := dis(x)
		for it := 0; it < 200; it++ {
			x = tensor.MatVec(w, x)
		}
		if dis(x) > d0*1e-6 {
			t.Fatalf("%s: consensus not reached (%v -> %v)", tp.Name, d0, dis(x))
		}
	}
}
