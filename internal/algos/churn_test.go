package algos

import (
	"math"
	"testing"

	"sapspsgd/internal/netsim"
)

func TestSAPSChurnConverges(t *testing.T) {
	const n, rounds = 8, 250
	fc, bw, va := testSetup(t, n)
	alg := NewSAPSChurn(fc, bw, sapsConfig(n), ChurnModel{
		LeaveProb: 0.15,
		JoinProb:  0.5,
		MinActive: 4,
	})
	acc, led := runRounds(t, alg, bw, va, rounds)
	if acc < 0.7 {
		t.Fatalf("churn accuracy %v, want >= 0.7", acc)
	}
	if !led.ConservationOK() {
		t.Fatal("conservation")
	}
	// Churn actually happened: some round had fewer than n active workers.
	sawChurn := false
	for _, a := range alg.ActiveHistory {
		if a < n {
			sawChurn = true
		}
		if a < 4 {
			t.Fatalf("active count %d below MinActive", a)
		}
	}
	if !sawChurn {
		t.Fatal("no churn occurred with LeaveProb=0.15 over 250 rounds")
	}
}

func TestSAPSChurnMatchesOnlyActive(t *testing.T) {
	const n = 8
	fc, bw, _ := testSetup(t, n)
	alg := NewSAPSChurn(fc, bw, sapsConfig(n), ChurnModel{
		LeaveProb: 0.4,
		JoinProb:  0.3,
		MinActive: 2,
	})
	led := netsim.NewLedger(bw)
	for r := 0; r < 60; r++ {
		alg.Step(r, led)
		active := alg.Active()
		// Internal invariant is checked indirectly: MergePeer panics on
		// mismatched payloads, and the Step would have paniced if an
		// inactive worker had been matched (its payload is nil).
		count := 0
		for _, a := range active {
			if a {
				count++
			}
		}
		if count < 2 {
			t.Fatalf("round %d: %d active", r, count)
		}
	}
}

func TestChurnModelValidation(t *testing.T) {
	fc, bw, _ := testSetup(t, 4)
	bads := []ChurnModel{
		{LeaveProb: -0.1, JoinProb: 0.5, MinActive: 2},
		{LeaveProb: 1.0, JoinProb: 0.5, MinActive: 2},
		{LeaveProb: 0.1, JoinProb: 0, MinActive: 2},
		{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 1},
		{LeaveProb: 0.1, JoinProb: 0.5, MinActive: 99},
	}
	for i, cm := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad churn model %d accepted", i)
				}
			}()
			NewSAPSChurn(fc, bw, sapsConfig(4), cm)
		}()
	}
}

func TestPSPSGDLearnsAndAccountsServerTraffic(t *testing.T) {
	const n, rounds = 8, 200
	fc, bw, va := testSetup(t, n)
	alg := NewPSPSGD(fc, bw)
	if alg.Name() != "PS-PSGD" {
		t.Fatal("name")
	}
	acc, led := runRounds(t, alg, bw, va, rounds)
	if acc < 0.8 {
		t.Fatalf("PS-PSGD accuracy %v", acc)
	}
	// Server carries 2·N·n values per round (Table I row 1).
	dim := alg.Models()[0].ParamCount()
	want := int64(rounds) * int64(n) * 2 * int64(dim) * 4
	if got := led.ServerBytes(); got != want {
		t.Fatalf("server bytes %d, want %d", got, want)
	}
}

func TestQSGDPSGDLearns(t *testing.T) {
	const n, rounds = 6, 250
	fc, bw, va := testSetup(t, n)
	alg := NewQSGDPSGD(fc, 4)
	if alg.Name() != "QSGD-PSGD" {
		t.Fatal("name")
	}
	acc, _ := runRounds(t, alg, bw, va, rounds)
	if acc < 0.7 {
		t.Fatalf("QSGD-PSGD accuracy %v", acc)
	}
}

func TestQSGDTrafficBetweenDenseAndMask(t *testing.T) {
	const n, rounds = 6, 20
	fcQ, bwQ, _ := testSetup(t, n)
	q := NewQSGDPSGD(fcQ, 1)
	ledQ := netsim.NewLedger(bwQ)
	for r := 0; r < rounds; r++ {
		q.Step(r, ledQ)
	}
	fcP, bwP, _ := testSetup(t, n)
	p := NewPSGD(fcP)
	ledP := netsim.NewLedger(bwP)
	for r := 0; r < rounds; r++ {
		p.Step(r, ledP)
	}
	fcS, bwS, _ := testSetup(t, n)
	s := NewSAPS(fcS, bwS, sapsConfig(n))
	ledS := netsim.NewLedger(bwS)
	for r := 0; r < rounds; r++ {
		s.Step(r, ledS)
	}
	// QSGD is an all-gather, so with n-1 peers it may exceed dense
	// ring-all-reduce per worker; but per payload it must be well under a
	// dense payload and well above SAPS's masked one.
	perPeerQ := ledQ.MeanWorkerTrafficMB() / float64(rounds) / float64(n-1)
	denseMB := float64(q.Models()[0].ParamCount()) * 4 / 1e6
	if perPeerQ >= denseMB {
		t.Fatalf("QSGD payload %v MB not below dense %v MB", perPeerQ, denseMB)
	}
	if ledS.MeanWorkerTrafficMB() >= ledQ.MeanWorkerTrafficMB() {
		t.Fatalf("SAPS traffic %v not below QSGD %v", ledS.MeanWorkerTrafficMB(), ledQ.MeanWorkerTrafficMB())
	}
	if math.IsNaN(perPeerQ) {
		t.Fatal("NaN traffic")
	}
}
