// Package obs is the fleet's observability layer: an atomic metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text-format and JSON exposition, a run tracker for live progress, and
// log/slog-based structured logging — all dependency-free and, by
// construction, off the deterministic path.
//
// The package is built around a nil-safe sink. Every metric method is a
// no-op on a nil receiver, and the per-subsystem bundles (EngineMetrics,
// TransportMetrics, ...) are value structs of metric pointers, so a
// disabled run pays exactly one atomic pointer load per instrumentation
// site capture and one nil check per hot-path event. Enabling
// observability (Enable) never draws randomness, never reorders events,
// and records only monotonic wall-clock timings and atomic tallies, so
// run artifacts are byte-identical with obs on or off — a property CI
// enforces by diffing golden sync and async scenario outputs.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Collector is the interface the Registry exposes over every metric it
// holds. Only types in this package implement it: the unexported methods
// keep the exposition formats (Prometheus text, JSON snapshot) in one
// place.
type Collector interface {
	// Name returns the full metric name, e.g. "sapspsgd_engine_rounds_total".
	Name() string
	// Help returns the one-line metric description.
	Help() string
	// Kind returns the Prometheus type: "counter", "gauge" or "histogram".
	Kind() string

	writeProm(w io.Writer) error
	snapshot() any
}

// desc carries the name/help pair shared by every metric type.
type desc struct {
	name string
	help string
}

// Name returns the full metric name.
func (d desc) Name() string { return d.name }

// Help returns the metric description.
func (d desc) Help() string { return d.help }

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (no-ops), so instrumented code never branches
// on whether observability is enabled.
type Counter struct {
	desc
	v atomic.Int64
}

// NewCounter creates an unregistered counter.
func NewCounter(name, help string) *Counter { return &Counter{desc: desc{name, help}} }

// Kind returns "counter".
func (c *Counter) Kind() string { return "counter" }

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) writeProm(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
	return err
}

func (c *Counter) snapshot() any { return c.Value() }

// Gauge is an integer metric that can go up and down. All methods are
// safe on a nil receiver.
type Gauge struct {
	desc
	v atomic.Int64
}

// NewGauge creates an unregistered gauge.
func NewGauge(name, help string) *Gauge { return &Gauge{desc: desc{name, help}} }

// Kind returns "gauge".
func (g *Gauge) Kind() string { return "gauge" }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) writeProm(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
	return err
}

func (g *Gauge) snapshot() any { return g.Value() }

// FloatCounter is a monotonically increasing float64 metric (e.g.
// accumulated simulated seconds). All methods are safe on a nil
// receiver.
type FloatCounter struct {
	desc
	bits atomic.Uint64
}

// NewFloatCounter creates an unregistered float counter.
func NewFloatCounter(name, help string) *FloatCounter {
	return &FloatCounter{desc: desc{name, help}}
}

// Kind returns "counter".
func (c *FloatCounter) Kind() string { return "counter" }

// Add accumulates v via a CAS loop. No-op on a nil receiver.
func (c *FloatCounter) Add(v float64) {
	if c != nil {
		addFloat(&c.bits, v)
	}
}

// Value returns the accumulated total (0 on a nil receiver).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *FloatCounter) writeProm(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", c.name, formatFloat(c.Value()))
	return err
}

func (c *FloatCounter) snapshot() any { return c.Value() }

// FloatGauge is a float64 gauge (e.g. the simulator's virtual clock).
// All methods are safe on a nil receiver.
type FloatGauge struct {
	desc
	bits atomic.Uint64
}

// NewFloatGauge creates an unregistered float gauge.
func NewFloatGauge(name, help string) *FloatGauge {
	return &FloatGauge{desc: desc{name, help}}
}

// Kind returns "gauge".
func (g *FloatGauge) Kind() string { return "gauge" }

// Set stores v. No-op on a nil receiver.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *FloatGauge) writeProm(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
	return err
}

func (g *FloatGauge) snapshot() any { return g.Value() }

// Histogram is a fixed-bucket histogram with Prometheus cumulative-bucket
// semantics: an observation v lands in the first bucket whose upper bound
// satisfies v <= le, with an implicit +Inf overflow bucket. Observe is a
// linear scan over the (small, fixed) bound slice plus three atomic adds
// — no allocation, no locks. All methods are safe on a nil receiver.
type Histogram struct {
	desc
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram creates an unregistered histogram over the given strictly
// increasing upper bounds. It panics if the bounds are unsorted or
// duplicated — bucket layout is part of the metric contract.
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted: " + name)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("obs: duplicate histogram bound: " + name)
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{desc: desc{name, help}, bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Kind returns "histogram".
func (h *Histogram) Kind() string { return "histogram" }

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative count at each bound, ending with
// the +Inf bucket (equal to Count). Nil receivers return nil.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) writeProm(w io.Writer) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
	return err
}

func (h *Histogram) snapshot() any {
	snap := struct {
		Bounds  []float64 `json:"bounds"`
		Buckets []int64   `json:"buckets"`
		Sum     float64   `json:"sum"`
		Count   int64     `json:"count"`
	}{Bounds: h.bounds, Buckets: h.BucketCounts(), Sum: h.Sum(), Count: h.Count()}
	return snap
}

// Registry holds an ordered set of metrics and renders them as
// Prometheus text exposition or a JSON snapshot. Registration order is
// exposition order, which keeps golden-file tests and scrapes stable.
type Registry struct {
	mu      sync.Mutex
	metrics []Collector
	byName  map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]bool)} }

// MustRegister adds metrics to the registry, panicking on a duplicate
// name — duplicates would emit invalid exposition.
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		if r.byName[c.Name()] {
			panic("obs: duplicate metric name: " + c.Name())
		}
		r.byName[c.Name()] = true
		r.metrics = append(r.metrics, c)
	}
}

// collectors returns a stable copy of the registered metrics.
func (r *Registry) collectors() []Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Collector(nil), r.metrics...)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, c := range r.collectors() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.Name(), c.Help(), c.Name(), c.Kind()); err != nil {
			return err
		}
		if err := c.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders a point-in-time snapshot of every registered metric
// as a JSON object keyed by metric name.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs := r.collectors()
	type entry struct {
		Kind  string `json:"kind"`
		Help  string `json:"help"`
		Value any    `json:"value"`
	}
	out := make(map[string]entry, len(cs))
	for _, c := range cs {
		out[c.Name()] = entry{Kind: c.Kind(), Help: c.Help(), Value: c.snapshot()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// addFloat atomically accumulates v into the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
