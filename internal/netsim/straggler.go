package netsim

import "fmt"

// Scaled returns a copy of b with every link that touches one of the given
// workers divided by factor — the bandwidth-straggler model: a straggling
// worker drags down all of its links, and a link between two stragglers is
// divided once (not twice). factor must be ≥ 1 and the matrix stays
// symmetric by construction.
func (b *Bandwidth) Scaled(workers []int, factor float64) *Bandwidth {
	if factor < 1 {
		panic(fmt.Sprintf("netsim: straggler factor %v < 1", factor))
	}
	slow := make([]bool, b.N)
	for _, w := range workers {
		if w < 0 || w >= b.N {
			panic(fmt.Sprintf("netsim: straggler rank %d of %d", w, b.N))
		}
		slow[w] = true
	}
	if b.Sparse() {
		// Topology is immutable — share it; only the weights fork.
		out := &Bandwidth{N: b.N, off: b.off, nbr: b.nbr, wts: append([]float64(nil), b.wts...)}
		for u := 0; u < b.N; u++ {
			for k := b.off[u]; k < b.off[u+1]; k++ {
				if slow[u] || slow[int(b.nbr[k])] {
					out.wts[k] /= factor
				}
			}
		}
		return out
	}
	out := &Bandwidth{N: b.N, mbps: append([]float64(nil), b.mbps...)}
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			if i != j && (slow[i] || slow[j]) {
				out.mbps[i*b.N+j] /= factor
			}
		}
	}
	return out
}
