package graph

import (
	"testing"
	"testing/quick"

	"sapspsgd/internal/rng"
)

func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 0) // self loop ignored
	g.AddEdge(0, 5) // out of range ignored
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestIsConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"twoIsolated", New(2), false},
		{"ring8", ring(8), true},
		{"path", func() *Graph {
			g := New(4)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 3)
			return g
		}(), true},
		{"twoTriangles", func() *Graph {
			g := New(6)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 0)
			g.AddEdge(3, 4)
			g.AddEdge(4, 5)
			g.AddEdge(5, 3)
			return g
		}(), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.IsConnected(); got != tc.want {
				t.Fatalf("IsConnected = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestUnionFindMatchesBFSConnectivity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		g := New(n)
		uf := NewUnionFind(n)
		edges := r.Intn(2 * n)
		for i := 0; i < edges; i++ {
			u, v := r.Intn(n), r.Intn(n)
			g.AddEdge(u, v)
			if u != v {
				uf.Union(u, v)
			}
		}
		// Isolated-vertex-aware comparison: number of UF sets must equal the
		// number of graph components.
		return uf.Sets() == len(g.Components())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximumMatchingRing(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{2, 1}, {3, 1}, {4, 2}, {5, 2}, {8, 4}, {9, 4}, {32, 16},
	}
	for _, tc := range tests {
		g := ring(tc.n)
		m := MaximumMatching(g, nil)
		if !m.Valid(tc.n) {
			t.Fatalf("n=%d: invalid matching %v", tc.n, m)
		}
		if m.Size() != tc.want {
			t.Fatalf("n=%d: matching size %d, want %d", tc.n, m.Size(), tc.want)
		}
		for v, p := range m {
			if p != -1 && !g.HasEdge(v, p) {
				t.Fatalf("n=%d: matched non-edge (%d,%d)", tc.n, v, p)
			}
		}
	}
}

func TestMaximumMatchingPetersen(t *testing.T) {
	// The Petersen graph has a perfect matching (5 edges) but is not
	// bipartite — a classic blossom stress case.
	g := New(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, e := range append(append(outer, inner...), spokes...) {
		g.AddEdge(e[0], e[1])
	}
	m := MaximumMatching(g, nil)
	if !m.Valid(10) || m.Size() != 5 {
		t.Fatalf("Petersen matching size %d, want 5 (%v)", m.Size(), m)
	}
}

func TestMaximumMatchingOddBlossoms(t *testing.T) {
	// Two triangles joined by a bridge: maximum matching is 3.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}} {
		g.AddEdge(e[0], e[1])
	}
	m := MaximumMatching(g, nil)
	if m.Size() != 3 {
		t.Fatalf("matching size %d, want 3", m.Size())
	}
}

func TestMaximumMatchingStar(t *testing.T) {
	// A star can only match one pair regardless of leaves.
	g := New(6)
	for i := 1; i < 6; i++ {
		g.AddEdge(0, i)
	}
	m := MaximumMatching(g, nil)
	if m.Size() != 1 {
		t.Fatalf("star matching size %d, want 1", m.Size())
	}
}

// bruteForceMaxMatching enumerates all matchings on small graphs.
func bruteForceMaxMatching(g *Graph) int {
	edges := g.Edges()
	best := 0
	var recurse func(i int, used uint32, size int)
	recurse = func(i int, used uint32, size int) {
		if size > best {
			best = size
		}
		for j := i; j < len(edges); j++ {
			u, v := edges[j][0], edges[j][1]
			if used&(1<<u) != 0 || used&(1<<v) != 0 {
				continue
			}
			recurse(j+1, used|1<<u|1<<v, size+1)
		}
	}
	recurse(0, 0, 0)
	return best
}

func TestMaximumMatchingAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(9) // up to 10 vertices
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bernoulli(0.4) {
					g.AddEdge(i, j)
				}
			}
		}
		m := MaximumMatching(g, r)
		if !m.Valid(n) {
			return false
		}
		for v, p := range m {
			if p != -1 && !g.HasEdge(v, p) {
				return false
			}
		}
		return m.Size() == bruteForceMaxMatching(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentToMaximumKeepsSeededVerticesMatched(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(12)
		g := New(n)
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bernoulli(0.5) {
					g.AddEdge(i, j)
					edges = append(edges, WeightedEdge{U: i, V: j, Weight: r.Float64()})
				}
			}
		}
		seeded := GreedyWeightedMatching(n, edges, nil)
		final := AugmentToMaximum(g, seeded, r)
		if !final.Valid(n) {
			return false
		}
		// Every vertex matched by the seed stays matched.
		for v, p := range seeded {
			if p != -1 && final[v] == -1 {
				return false
			}
		}
		// And the final matching is maximum.
		return final.Size() == bruteForceMaxMatching(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyWeightedMatchingPrefersHeavyEdge(t *testing.T) {
	// Triangle with one heavy edge: greedy must take the heavy edge.
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 10},
		{U: 1, V: 2, Weight: 1},
		{U: 0, V: 2, Weight: 1},
	}
	m := GreedyWeightedMatching(3, edges, nil)
	if m[0] != 1 || m[1] != 0 || m[2] != -1 {
		t.Fatalf("greedy matching = %v", m)
	}
	if w := MatchingWeight(m, func(u, v int) float64 { return 10 }); w != 10 {
		t.Fatalf("MatchingWeight = %v", w)
	}
}

func TestBandwidthAwareMaximumMatchingIsMaximumAndHeavy(t *testing.T) {
	// Path 0-1-2-3 with weights 1, 100, 1. Max cardinality is 2 and must use
	// edges (0,1) and (2,3) — the bandwidth-aware matching cannot keep the
	// heavy middle edge AND stay maximum, so cardinality wins.
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 100},
		{U: 2, V: 3, Weight: 1},
	}
	m := BandwidthAwareMaximumMatching(4, edges, nil)
	if m.Size() != 2 {
		t.Fatalf("size = %d, want 2", m.Size())
	}
	if m[0] != 1 || m[2] != 3 {
		t.Fatalf("matching = %v, want 0-1, 2-3", m)
	}
}

func TestBandwidthAwareChoosesHeavyWhenFree(t *testing.T) {
	// Complete graph on 4 vertices; edge (0,1) and (2,3) heavy. The
	// bandwidth-aware matching should pick exactly those.
	var edges []WeightedEdge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			w := 1.0
			if (i == 0 && j == 1) || (i == 2 && j == 3) {
				w = 50
			}
			edges = append(edges, WeightedEdge{U: i, V: j, Weight: w})
		}
	}
	m := BandwidthAwareMaximumMatching(4, edges, nil)
	if m[0] != 1 || m[2] != 3 {
		t.Fatalf("matching = %v, want heavy pairs", m)
	}
}

func TestMinMatchedWeight(t *testing.T) {
	m := Matching{1, 0, 3, 2}
	w := func(u, v int) float64 {
		if u == 0 {
			return 5
		}
		return 2
	}
	if got := MinMatchedWeight(m, w); got != 2 {
		t.Fatalf("MinMatchedWeight = %v, want 2", got)
	}
	empty := Matching{-1, -1}
	if got := MinMatchedWeight(empty, w); got != 0 {
		t.Fatalf("MinMatchedWeight(empty) = %v, want 0", got)
	}
}

func TestRandomizedMatchingVariesAcrossSeeds(t *testing.T) {
	// On a complete graph many maximum matchings exist; RandomlyMaxMatch
	// should not always return the same one.
	g := complete(8)
	seen := map[string]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		m := MaximumMatching(g, rng.New(seed))
		if m.Size() != 4 {
			t.Fatalf("complete(8) matching size %d", m.Size())
		}
		key := ""
		for _, p := range m {
			key += string(rune('a' + p))
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Fatalf("randomized matching produced only %d distinct matchings", len(seen))
	}
}

func BenchmarkBlossomN32Dense(b *testing.B) {
	g := complete(32)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximumMatching(g, r)
	}
}

func BenchmarkBlossomN64Sparse(b *testing.B) {
	r := rng.New(2)
	g := New(64)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			if r.Bernoulli(0.1) {
				g.AddEdge(i, j)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximumMatching(g, r)
	}
}
