package nn

import (
	"math"
	"testing"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

func TestParamCounts(t *testing.T) {
	// MNIST-CNN at full width: conv(1→32,5) + conv(32→64,5) + fc(3136→512)
	// + fc(512→10) = 832 + 51264 + 1606144 + 5130.
	m := NewMNISTCNN(Shape{C: 1, H: 28, W: 28}, 10, 1, 1)
	if got, want := m.ParamCount(), 832+51264+1606144+5130; got != want {
		t.Fatalf("MNIST-CNN params = %d, want %d", got, want)
	}
	// ResNet-20 is ~0.27M parameters (the paper reports 269,722).
	rn := NewResNet20(1)
	if rn.ParamCount() < 250000 || rn.ParamCount() > 300000 {
		t.Fatalf("ResNet-20 params = %d, want ~270k", rn.ParamCount())
	}
}

func TestFlatParamsRoundTrip(t *testing.T) {
	m := NewMLP(10, []int{8}, 3, 2)
	flat := m.FlatParams(nil)
	if len(flat) != m.ParamCount() {
		t.Fatal("length")
	}
	for i := range flat {
		flat[i] = float64(i) * 0.001
	}
	m.SetFlatParams(flat)
	got := m.FlatParams(nil)
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestSetFlatParamsWrongLenPanics(t *testing.T) {
	m := NewMLP(4, nil, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetFlatParams(make([]float64, 3))
}

func TestAddFlatToParams(t *testing.T) {
	m := NewMLP(4, nil, 2, 3)
	before := m.FlatParams(nil)
	delta := make([]float64, m.ParamCount())
	for i := range delta {
		delta[i] = 1
	}
	m.AddFlatToParams(-0.5, delta)
	after := m.FlatParams(nil)
	for i := range after {
		if math.Abs(after[i]-(before[i]-0.5)) > 1e-12 {
			t.Fatalf("AddFlatToParams wrong at %d", i)
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	logits := tensor.MatrixFrom(1, 2, []float64{0, 0})
	loss, dl := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(dl.At(0, 0)-(-0.5)) > 1e-12 || math.Abs(dl.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("dlogits = %v", dl.Data)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.MatrixFrom(1, 3, []float64{1000, 999, -1000})
	loss, dl := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	for _, v := range dl.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MatrixFrom(2, 3, []float64{
		1, 5, 2,
		9, 0, 0,
	})
	if got := Accuracy(logits, []int{1, 0}); got != 1 {
		t.Fatalf("acc = %v", got)
	}
	if got := Accuracy(logits, []int{0, 0}); got != 0.5 {
		t.Fatalf("acc = %v", got)
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	in := Shape{C: 2, H: 2, W: 2}
	bn := NewBatchNorm2D(in)
	r := rng.New(4)
	x := tensor.NewMatrix(16, in.Dim())
	for i := range x.Data {
		x.Data[i] = 3 + 2*r.NormFloat64()
	}
	out := bn.Forward(x, true)
	// Per channel, output should have ~0 mean, ~1 variance.
	hw := 4
	for c := 0; c < 2; c++ {
		var sum, sumSq float64
		n := 0
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j := c * hw; j < (c+1)*hw; j++ {
				sum += row[j]
				sumSq += row[j] * row[j]
				n++
			}
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean %v var %v", c, mean, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	in := Shape{C: 1, H: 1, W: 4}
	bn := NewBatchNorm2D(in)
	r := rng.New(8)
	// Train on shifted data so running stats move away from (0,1).
	for it := 0; it < 200; it++ {
		x := tensor.NewMatrix(8, 4)
		for i := range x.Data {
			x.Data[i] = 5 + r.NormFloat64()
		}
		bn.Forward(x, true)
	}
	// Inference on the same distribution should now be roughly normalized.
	x := tensor.NewMatrix(64, 4)
	for i := range x.Data {
		x.Data[i] = 5 + r.NormFloat64()
	}
	out := bn.Forward(x, false)
	mean := tensor.Mean(out.Data)
	if math.Abs(mean) > 0.2 {
		t.Fatalf("inference mean %v, want ~0", mean)
	}
}

func TestMaxPoolForwardExact(t *testing.T) {
	in := Shape{C: 1, H: 4, W: 4}
	p := NewMaxPool2D(in, 2)
	x := tensor.MatrixFrom(1, 16, []float64{
		1, 2, 0, 0,
		3, 4, 0, 9,
		0, 0, 5, 6,
		0, -1, 7, 8,
	})
	out := p.Forward(x, true)
	want := []float64{4, 9, 0, 8}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", out.Data, want)
		}
	}
	// Backward: gradient routes to argmax positions only.
	dout := tensor.MatrixFrom(1, 4, []float64{1, 1, 1, 1})
	dx := p.Backward(dout)
	if dx.Data[5] != 1 || dx.Data[7] != 1 || dx.Data[15] != 1 {
		t.Fatalf("maxpool backward = %v", dx.Data)
	}
	total := tensor.Sum(dx.Data)
	if total != 4 {
		t.Fatalf("gradient mass = %v, want 4", total)
	}
}

func TestReLUTrainEvalAgree(t *testing.T) {
	re := NewReLU()
	x := tensor.MatrixFrom(1, 4, []float64{-1, 2, 0, 3})
	a := re.Forward(x, true)
	b := re.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("train/eval mismatch")
		}
	}
}

func TestModelDeterministicInit(t *testing.T) {
	a := NewCIFARCNN(Shape{C: 3, H: 8, W: 8}, 10, 0.25, 5)
	b := NewCIFARCNN(Shape{C: 3, H: 8, W: 8}, 10, 0.25, 5)
	fa := a.FlatParams(nil)
	fb := b.FlatParams(nil)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed produced different init")
		}
	}
	c := NewCIFARCNN(Shape{C: 3, H: 8, W: 8}, 10, 0.25, 6)
	fc := c.FlatParams(nil)
	same := true
	for i := range fa {
		if fa[i] != fc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical init")
	}
}

func TestTrainingLearnsTinyTask(t *testing.T) {
	tr, va := dataset.TinyTask(400, 4, 31)
	m := NewMLP(tr.Dim(), []int{32}, 4, 7)
	opt := &SGD{LR: 0.1}
	loader := dataset.NewLoader(tr, 32, 3)
	for it := 0; it < 300; it++ {
		xs, ys := loader.Next()
		TrainBatch(m, opt, xs, ys)
	}
	_, acc := EvaluateDataset(m, va, 64)
	if acc < 0.8 {
		t.Fatalf("MLP accuracy %v after training, want >= 0.8", acc)
	}
}

func TestTrainingLearnsWithCNN(t *testing.T) {
	tr, va := dataset.TinyTask(300, 3, 37)
	in := Shape{C: 1, H: 8, W: 8}
	m := NewMNISTCNN(in, 3, 0.25, 9)
	opt := &SGD{LR: 0.05}
	loader := dataset.NewLoader(tr, 20, 5)
	for it := 0; it < 150; it++ {
		xs, ys := loader.Next()
		TrainBatch(m, opt, xs, ys)
	}
	_, acc := EvaluateDataset(m, va, 64)
	if acc < 0.7 {
		t.Fatalf("CNN accuracy %v after training, want >= 0.7", acc)
	}
}

func TestSGDMomentumMatchesManual(t *testing.T) {
	m := NewMLP(2, nil, 2, 1)
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	// Fixed fake gradients twice; velocity accumulates.
	g := make([]float64, m.ParamCount())
	for i := range g {
		g[i] = 1
	}
	setGrads := func() {
		off := 0
		for _, p := range m.Params() {
			copy(p.Grad, g[off:off+len(p.Data)])
			off += len(p.Data)
		}
	}
	before := m.FlatParams(nil)
	setGrads()
	opt.Step(m)
	setGrads()
	opt.Step(m)
	after := m.FlatParams(nil)
	// Step1: v=1 → -0.1. Step2: v=1.9 → -0.19. Total -0.29.
	for i := range after {
		if math.Abs(after[i]-(before[i]-0.29)) > 1e-12 {
			t.Fatalf("momentum math wrong at %d: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	m := NewMLP(4, nil, 2, 1)
	loss, acc := EvaluateDataset(m, &dataset.Dataset{Classes: 2}, 8)
	if loss != 0 || acc != 0 {
		t.Fatal("empty dataset should evaluate to zeros")
	}
}

func BenchmarkForwardBackwardMNISTCNNQuarter(b *testing.B) {
	in := Shape{C: 1, H: 28, W: 28}
	m := NewMNISTCNN(in, 10, 0.25, 1)
	x, ys := randomBatch(in, 10, 8, 1)
	opt := &SGD{LR: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, dl := SoftmaxCrossEntropy(logits, ys)
		m.Backward(dl)
		opt.Step(m)
	}
}
