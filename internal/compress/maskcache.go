package compress

import "sync"

// MaskCache shares one round mask across every rank of an in-process fleet.
// The mask is a pure function of (seed, round, n, c), and the engine's round
// barrier means all ranks ask for the same key within a round — so a single
// cached entry turns N per-rank O(model) mask buffers into one fleet-wide
// buffer plus one MaskInto evaluation per round.
//
// Get is safe for concurrent use. The returned slice is shared and must be
// treated as read-only; it stays valid until the key changes *twice* (the
// cache double-buffers, so the previous generation's slice is never
// overwritten while a barrier-lagged reader could still hold it).
type MaskCache struct {
	mu    sync.Mutex
	seed  uint64
	round int
	n     int
	c     float64
	cur   []bool
	prev  []bool // retired generation, reused as scratch on the next miss
}

// Get returns the shared mask for (seed, round, n, c), recomputing it only
// when the key differs from the cached one.
func (mc *MaskCache) Get(seed uint64, round, n int, c float64) []bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.cur != nil && mc.seed == seed && mc.round == round && mc.n == n && mc.c == c {
		return mc.cur
	}
	mc.cur, mc.prev = MaskInto(mc.prev, seed, round, n, c), mc.cur
	mc.seed, mc.round, mc.n, mc.c = seed, round, n, c
	return mc.cur
}
