package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestEnableLogging(t *testing.T) {
	defer SetLogger(nil)
	var buf bytes.Buffer

	if err := EnableLogging(&buf, "json", slog.LevelInfo); err != nil {
		t.Fatal(err)
	}
	Logger().Info("run complete", "scenario", "saps-512", "rounds", 300)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json log line invalid: %v\n%s", err, buf.Bytes())
	}
	if line["scenario"] != "saps-512" || line["rounds"] != float64(300) {
		t.Fatalf("log line = %v", line)
	}

	buf.Reset()
	if err := EnableLogging(&buf, "text", slog.LevelInfo); err != nil {
		t.Fatal(err)
	}
	Logger().Info("cell complete", "cell", "c1")
	if !strings.Contains(buf.String(), "cell=c1") {
		t.Fatalf("text log line = %q", buf.String())
	}

	if err := EnableLogging(&buf, "off", slog.LevelInfo); err != nil {
		t.Fatal(err)
	}
	if Logger() != nil {
		t.Fatal("off did not remove the logger")
	}

	if err := EnableLogging(&buf, "yaml", slog.LevelInfo); err == nil {
		t.Fatal("unknown format accepted")
	}
}
