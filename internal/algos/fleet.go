// Package algos implements the seven training algorithms the paper
// evaluates — SAPS-PSGD and its six comparators (PSGD all-reduce,
// TopK-PSGD, FedAvg, S-FedAvg, D-PSGD, DCD-PSGD) plus the QSGD and
// RandomChoose ablations — behind a common Algorithm interface consumed by
// the trainer harness. Every algorithm is a thin Planner + Pattern + Codec
// composition over the internal/engine round loop (see Recipe), so the same
// definitions run in-process, against a simulated-bandwidth ledger, and over
// TCP; all wire traffic is measured from the bytes the codecs actually
// encode, never from analytic formulas.
package algos

import (
	"fmt"
	"runtime"
	"sync"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
)

// Algorithm is one distributed training scheme, driven round by round.
// Implementations are not safe for concurrent use.
type Algorithm interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Step executes one synchronous communication round: local compute for
	// every worker plus all model/gradient exchanges, recorded in the
	// ledger (a *netsim.Ledger for bandwidth-accounted simulation or an
	// engine.CountingLedger for pure byte totals). It returns the mean
	// local training loss.
	Step(round int, led engine.Ledger) float64
	// Models returns the live models whose parameter average is the
	// algorithm's current global model (a single server model for
	// centralized schemes).
	Models() []*nn.Model
}

// FleetConfig is the shared construction recipe for the decentralized
// algorithms: n workers with identical initial parameters and per-worker
// data shards.
type FleetConfig struct {
	N       int
	Factory func() *nn.Model // must produce identically initialized models
	Shards  []*dataset.Dataset
	LR      float64
	Batch   int
	Seed    uint64
	// RuntimeShards selects the engine's sharded phased runtime (see
	// engine.Options.Shards): ranks are partitioned into this many
	// serially-executed shards running concurrently, with bit-identical
	// trajectories at any shard count. 0 keeps the goroutine-per-node pool.
	RuntimeShards int
}

func (c FleetConfig) validate() {
	if c.N < 2 {
		panic(fmt.Sprintf("algos: fleet of %d", c.N))
	}
	if len(c.Shards) != c.N {
		panic(fmt.Sprintf("algos: %d shards for %d workers", len(c.Shards), c.N))
	}
	if c.Factory == nil {
		panic("algos: nil model factory")
	}
	if c.LR <= 0 || c.Batch < 1 {
		panic("algos: bad LR/batch")
	}
}

// Fleet is the shared worker plumbing.
type Fleet struct {
	N       int
	Models  []*nn.Model
	Opts    []*nn.SGD
	Loaders []*dataset.Loader
	Dim     int
}

// NewFleet builds the workers. All models come from the same factory so
// X₀ is identical across workers (the paper's initial-consensus condition).
func NewFleet(cfg FleetConfig) *Fleet {
	cfg.validate()
	f := &Fleet{N: cfg.N}
	for i := 0; i < cfg.N; i++ {
		m := cfg.Factory()
		if i == 0 {
			f.Dim = m.ParamCount()
		} else if m.ParamCount() != f.Dim {
			panic("algos: factory produced models of different sizes")
		}
		f.Models = append(f.Models, m)
		f.Opts = append(f.Opts, &nn.SGD{LR: cfg.LR})
		f.Loaders = append(f.Loaders, dataset.NewLoader(cfg.Shards[i], cfg.Batch, cfg.Seed+uint64(i)*104729))
	}
	return f
}

// Parallel runs fn(i) for every worker concurrently (bounded by GOMAXPROCS)
// and returns the mean of the returned values. Worker state is disjoint, so
// this is safe as long as fn(i) touches only worker i.
func (f *Fleet) Parallel(fn func(i int) float64) float64 {
	results := make([]float64, f.N)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < f.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			results[i] = fn(i)
			<-sem
		}(i)
	}
	wg.Wait()
	sum := 0.0
	for _, v := range results {
		sum += v
	}
	return sum / float64(f.N)
}

// GradStep computes gradients for worker i on its next minibatch without
// applying them, returning the loss. Gradients remain in Models[i].
func (f *Fleet) GradStep(i int) float64 {
	xs, ys := f.Loaders[i].Next()
	return nn.ComputeGrads(f.Models[i], xs, ys)
}

// SGDStep runs one full local SGD step for worker i and returns the loss.
func (f *Fleet) SGDStep(i int) float64 {
	xs, ys := f.Loaders[i].Next()
	return nn.TrainBatch(f.Models[i], f.Opts[i], xs, ys)
}

// engineAlgo is the shared chassis of every baseline: an engine assembled
// from a Recipe (nodes, per-rank codecs, pattern, planner), stepped through
// engine.Driver. Per-round ledger charges come from the wire bytes the
// codecs actually produced.
type engineAlgo struct {
	name   string
	eng    *engine.Engine
	models []*nn.Model
	server int       // hub server rank, -1 for serverless algorithms
	links  []float64 // server↔worker bandwidth (MB/s), hub only
}

// newEngineAlgo assembles the chassis over a fleet. For hub recipes the
// server model comes from the shared factory (identical initialization) and
// worker 0's model doubles as the evaluation mirror; links carries the
// optimistic server placement of the paper ("choosing the server that has
// the maximum bandwidth").
func newEngineAlgo(name string, fc FleetConfig, r Recipe, planner engine.Planner, links []float64) (*engineAlgo, *Fleet) {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	f := NewFleet(fc)
	total := r.Nodes()
	nodes := make([]engine.Node, total)
	for i := 0; i < f.N; i++ {
		nodes[i] = r.NewNode(i, f.Models[i], fc.Shards[i], nil)
	}
	a := &engineAlgo{name: name, models: f.Models, server: r.ServerRank(), links: links}
	if a.server >= 0 {
		nodes[a.server] = r.NewNode(a.server, fc.Factory(), nil, f.Models[0])
		// The global model lives on the server; evaluation uses worker 0's
		// mirror because only worker models accumulate normalization
		// statistics.
		a.models = f.Models[:1]
	}
	a.eng = engine.New(engine.Options{
		Nodes:   nodes,
		Codecs:  r.Codecs(f.Dim),
		Pattern: r.Pattern(),
		Planner: planner,
		Shards:  fc.RuntimeShards,
	})
	return a, f
}

// Name implements Algorithm.
func (a *engineAlgo) Name() string { return a.name }

// Models implements Algorithm.
func (a *engineAlgo) Models() []*nn.Model { return a.models }

// Close releases the engine's node pool (also reclaimed automatically when
// the algorithm becomes unreachable).
func (a *engineAlgo) Close() { a.eng.Close() }

// Step implements Algorithm.
func (a *engineAlgo) Step(round int, led engine.Ledger) float64 {
	if a.server >= 0 {
		led = &hubLedger{inner: led, server: a.server, links: a.links}
	}
	stats, err := a.eng.Step(round, led)
	if err != nil {
		panic(err) // the in-process transport cannot fail
	}
	return stats.Loss
}

// hubLedger maps engine pair charges involving the hub's server rank onto
// netsim's server-transfer accounting (so simulated time uses the server
// link speed and server traffic lands in ServerBytes, exactly as the paper's
// centralized baselines are modelled). Non-netsim ledgers keep the plain
// pair charge — the server is just one more rank to a byte counter.
type hubLedger struct {
	inner  engine.Ledger
	server int
	links  []float64
}

// Exchange implements engine.Ledger.
func (l *hubLedger) Exchange(i, j int, sendBytes, recvBytes int64) {
	ns, ok := l.inner.(*netsim.Ledger)
	if !ok || (i != l.server && j != l.server) {
		l.inner.Exchange(i, j, sendBytes, recvBytes)
		return
	}
	if i == l.server {
		// j is the worker: it uploads recvBytes and downloads sendBytes.
		ns.ServerTransfer(j, recvBytes, sendBytes, l.link(j))
		return
	}
	ns.ServerTransfer(i, sendBytes, recvBytes, l.link(i))
}

func (l *hubLedger) link(worker int) float64 {
	if worker < len(l.links) {
		return l.links[worker]
	}
	return 0
}

// EndRound implements engine.Ledger.
func (l *hubLedger) EndRound() float64 { return l.inner.EndRound() }

// serverLinks gives each worker its best available link speed, modeling a
// server placed at the highest-bandwidth location (the paper's optimistic
// placement).
func serverLinks(bw *netsim.Bandwidth) []float64 {
	out := make([]float64, bw.N)
	bw.ForEachEdge(0, func(u, v int, w float64) {
		if w > out[u] {
			out[u] = w
		}
		if w > out[v] {
			out[v] = w
		}
	})
	return out
}
