// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md §5 for the index). Workloads are
// CPU-scaled versions of the paper's three tasks (Table II): the model
// architectures are the paper's, at reduced width and input size, trained on
// the synthetic datasets that substitute for MNIST/CIFAR-10 (DESIGN.md §2).
package experiments

import (
	"fmt"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// Workload is one evaluation task: model family + dataset + optimization
// hyperparameters (the rows of Table II, CPU-scaled).
type Workload struct {
	Name string
	// PaperName is the corresponding Table II row.
	PaperName string
	In        nn.Shape
	Classes   int
	// Factory builds the (identically initialized) model.
	Factory func(seed uint64) *nn.Model
	// TrainSamples/ValidSamples size the synthetic dataset.
	TrainSamples, ValidSamples int
	DataSeed                   uint64
	LR                         float64
	Batch                      int
	Rounds                     int
	// TargetAcc is the Table IV "reach target accuracy" threshold, scaled
	// to the synthetic task.
	TargetAcc float64
	// Ratios overrides the paper's compression settings when non-zero
	// (useful for tiny test models where N/c would round to nothing).
	Ratios Ratios
}

// Ratios bundles the per-algorithm compression ratios of §IV-A.
type Ratios struct {
	TopK float64 // TopK-PSGD (paper: 1000)
	SFed float64 // S-FedAvg (paper: 100)
	DCD  float64 // DCD-PSGD (paper: 4)
	SAPS float64 // SAPS-PSGD (paper: 100)
}

// PaperRatios returns §IV-A's settings.
func PaperRatios() Ratios { return Ratios{TopK: TopKC, SFed: SFedC, DCD: DCDC, SAPS: SAPSC} }

// ratios returns the workload's ratios, defaulting to the paper's.
func (w Workload) ratios() Ratios {
	r := w.Ratios
	if r.TopK == 0 {
		r.TopK = TopKC
	}
	if r.SFed == 0 {
		r.SFed = SFedC
	}
	if r.DCD == 0 {
		r.DCD = DCDC
	}
	if r.SAPS == 0 {
		r.SAPS = SAPSC
	}
	return r
}

// Scale multiplies the round budget (for quick benches vs full runs).
func (w Workload) WithRounds(rounds int) Workload {
	w.Rounds = rounds
	return w
}

// MNISTWorkload is the scaled MNIST-CNN task (paper: MNIST-CNN, 6.6M params,
// batch 50, LR 0.05, 100 epochs).
func MNISTWorkload() Workload {
	in := nn.Shape{C: 1, H: 16, W: 16}
	return Workload{
		Name:      "mnist-cnn-scaled",
		PaperName: "MNIST-CNN",
		In:        in,
		Classes:   10,
		Factory: func(seed uint64) *nn.Model {
			return nn.NewMNISTCNN(in, 10, 0.25, seed)
		},
		TrainSamples: 2048,
		ValidSamples: 512,
		DataSeed:     11,
		LR:           0.05,
		Batch:        16,
		Rounds:       240,
		TargetAcc:    0.90,
	}
}

// CIFARWorkload is the scaled CIFAR10-CNN task (paper: CIFAR10-CNN, 7.0M
// params, batch 100, LR 0.04, 320 epochs).
func CIFARWorkload() Workload {
	in := nn.Shape{C: 3, H: 16, W: 16}
	return Workload{
		Name:      "cifar10-cnn-scaled",
		PaperName: "CIFAR10-CNN",
		In:        in,
		Classes:   10,
		Factory: func(seed uint64) *nn.Model {
			return nn.NewCIFARCNN(in, 10, 0.25, seed)
		},
		TrainSamples: 2048,
		ValidSamples: 512,
		DataSeed:     13,
		LR:           0.04,
		Batch:        16,
		Rounds:       280,
		TargetAcc:    0.80,
	}
}

// ResNetWorkload is the scaled ResNet task (paper: ResNet-20, 270k params,
// batch 64, LR 0.1, 160 epochs). The scaled model is ResNet-8 at half width
// — same block structure, CPU-trainable.
func ResNetWorkload() Workload {
	in := nn.Shape{C: 3, H: 16, W: 16}
	return Workload{
		Name:      "resnet-scaled",
		PaperName: "ResNet-20",
		In:        in,
		Classes:   10,
		Factory: func(seed uint64) *nn.Model {
			return nn.NewResNet(in, 10, 1, 0.5, seed)
		},
		TrainSamples: 2048,
		ValidSamples: 512,
		DataSeed:     17,
		LR:           0.1,
		Batch:        16,
		// The ResNet needs the longest horizon: single-peer masked gossip
		// takes ~c rounds to touch every coordinate once, and BatchNorm
		// statistics drift amplifies early disagreement (the paper's
		// "requires some iterations to achieve the consensus").
		Rounds:    420,
		TargetAcc: 0.80,
	}
}

// Workloads returns the three evaluation tasks in paper order.
func Workloads() []Workload {
	return []Workload{MNISTWorkload(), CIFARWorkload(), ResNetWorkload()}
}

// Dataset materializes the workload's synthetic train/valid splits.
func (w Workload) Dataset() (tr, va *dataset.Dataset) {
	cfg := dataset.SynthConfig{
		Name: w.Name, C: w.In.C, H: w.In.H, W: w.In.W,
		Classes: w.Classes, PerClass: 2, Noise: 0.4,
	}
	full := dataset.Synthetic(cfg, w.TrainSamples+w.ValidSamples, w.DataSeed)
	tr = &dataset.Dataset{Name: full.Name, C: full.C, H: full.H, W: full.W, Classes: full.Classes, Samples: full.Samples[:w.TrainSamples]}
	va = &dataset.Dataset{Name: full.Name + "-valid", C: full.C, H: full.H, W: full.W, Classes: full.Classes, Samples: full.Samples[w.TrainSamples:]}
	return tr, va
}

// AlgorithmNames lists the seven algorithms of the paper's comparison, in
// the paper's order.
var AlgorithmNames = []string{
	"PSGD", "TopK-PSGD", "FedAvg", "S-FedAvg", "D-PSGD", "DCD-PSGD", "SAPS-PSGD",
}

// Paper compression settings (§IV-A): TopK c=1000, S-FedAvg c=100, DCD c=4,
// SAPS c=100. The scaled models are ~100k params, so the paper's ratios
// carry over unchanged.
const (
	TopKC   = 1000
	SFedC   = 100
	DCDC    = 4
	SAPSC   = 100
	FedFrac = 0.5
	// FedLocalSteps is the number of local minibatch steps per FedAvg
	// round (one scaled local epoch).
	FedLocalSteps = 4
)

// BuildAlgorithm constructs one of the named algorithms over the workload's
// fleet with IID shards.
func BuildAlgorithm(name string, w Workload, n int, bw *netsim.Bandwidth, seed uint64) (algos.Algorithm, error) {
	return BuildAlgorithmSharded(name, w, n, bw, seed, false)
}

// BuildAlgorithmSharded additionally selects the data partition: IID or
// label-sharded non-IID (two label shards per worker).
func BuildAlgorithmSharded(name string, w Workload, n int, bw *netsim.Bandwidth, seed uint64, nonIID bool) (algos.Algorithm, error) {
	tr, _ := w.Dataset()
	var shards []*dataset.Dataset
	if nonIID {
		shards = dataset.PartitionByLabel(tr, n, 2, seed)
	} else {
		shards = dataset.PartitionIID(tr, n, seed)
	}
	fc := algos.FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return w.Factory(seed) },
		Shards:  shards,
		LR:      w.LR,
		Batch:   w.Batch,
		Seed:    seed,
	}
	ratios := w.ratios()
	sapsCfg := core.Config{
		Workers:     n,
		Compression: ratios.SAPS,
		LR:          w.LR,
		Batch:       w.Batch,
		LocalSteps:  1,
		Gossip:      defaultGossipConfig(bw),
		Seed:        seed,
	}
	switch name {
	case "PSGD":
		return algos.NewPSGD(fc), nil
	case "TopK-PSGD":
		return algos.NewTopKPSGD(fc, ratios.TopK), nil
	case "FedAvg":
		return algos.NewFedAvg(fc, bw, FedFrac, FedLocalSteps), nil
	case "S-FedAvg":
		return algos.NewSFedAvg(fc, bw, FedFrac, FedLocalSteps, ratios.SFed), nil
	case "D-PSGD":
		return algos.NewDPSGD(fc), nil
	case "DCD-PSGD":
		return algos.NewDCDPSGD(fc, ratios.DCD), nil
	case "SAPS-PSGD":
		return algos.NewSAPS(fc, bw, sapsCfg), nil
	case "RandomChoose":
		return algos.NewRandomChoose(fc, bw, sapsCfg), nil
	case "PS-PSGD":
		return algos.NewPSPSGD(fc, bw), nil
	case "QSGD-PSGD":
		return algos.NewQSGDPSGD(fc, 4), nil
	case "SAPS-PSGD(churn)":
		return algos.NewSAPSChurn(fc, bw, sapsCfg, algos.ChurnModel{
			LeaveProb: 0.1, JoinProb: 0.5, MinActive: max(2, n/2),
		}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// buildSAPSWithLocalSteps builds SAPS with a non-default number of local
// SGD steps per communication round (used by the local-steps ablation).
func buildSAPSWithLocalSteps(w Workload, n int, bw *netsim.Bandwidth, seed uint64, localSteps int) (algos.Algorithm, error) {
	tr, _ := w.Dataset()
	fc := algos.FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return w.Factory(seed) },
		Shards:  dataset.PartitionIID(tr, n, seed),
		LR:      w.LR,
		Batch:   w.Batch,
		Seed:    seed,
	}
	cfg := core.Config{
		Workers:     n,
		Compression: w.ratios().SAPS,
		LR:          w.LR,
		Batch:       w.Batch,
		LocalSteps:  localSteps,
		Gossip:      gossip.Config{BThres: bandwidthThreshold(bw), TThres: 10},
		Seed:        seed,
	}
	return algos.NewSAPS(fc, bw, cfg), nil
}

// defaultGossipConfig is the Algorithm 3 configuration the experiment suite
// uses: 60th-percentile bandwidth threshold, 10-round recency window.
func defaultGossipConfig(bw *netsim.Bandwidth) gossip.Config {
	return gossip.Config{BThres: bandwidthThreshold(bw), TThres: 10}
}

// bandwidthThreshold picks B_thres as the 60th percentile of link
// bandwidths: high enough to prefer fast links, low enough that B* stays
// usable.
func bandwidthThreshold(bw *netsim.Bandwidth) float64 {
	var all []float64
	for i := 0; i < bw.N; i++ {
		for j := i + 1; j < bw.N; j++ {
			all = append(all, bw.MBps(i, j))
		}
	}
	if len(all) == 0 {
		return 0
	}
	// Quickselect-free percentile: simple insertion into a sorted copy is
	// fine at n<=32 (496 links).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j] < all[j-1]; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all[int(0.6*float64(len(all)))]
}

// Env32 returns the paper's 32-worker random environment ((0,5] MB/s).
func Env32(seed uint64) *netsim.Bandwidth {
	return netsim.RandomUniform(32, 0, 5, rng.New(seed))
}

// EnvN returns an n-worker random environment for scaled runs.
func EnvN(n int, seed uint64) *netsim.Bandwidth {
	return netsim.RandomUniform(n, 0, 5, rng.New(seed))
}
