package netsim

import "sapspsgd/internal/rng"

// DynamicBandwidth models time-varying link speeds: each round, every link's
// bandwidth is its base value scaled by an independent multiplicative jitter
// in [1-Jitter, 1+Jitter]. This exercises the robustness the paper motivates
// — "the bandwidth between two workers may also vary" — and lets the
// ablation benches measure how adaptive peer selection tracks a moving
// target. Advance with Tick; the snapshot is exposed as a *Bandwidth.
//
// The snapshot pointer is stable: Tick rewrites the same *Bandwidth in
// place, so a planner or ledger constructed over Current() observes the
// fresh link speeds after every Tick without re-plumbing. Consequently a
// snapshot must not be retained across ticks by code that needs the old
// values — copy it first.
type DynamicBandwidth struct {
	base    *Bandwidth
	current *Bandwidth
	// Jitter is the half-width of the per-round multiplicative noise
	// (0.3 = ±30%). Must lie in [0, 1).
	Jitter float64
	rnd    *rng.Source
	// rev maps each directed sparse entry k to the index of its reverse
	// direction, so Tick writes both halves of a link with one draw.
	rev []int32
}

// NewDynamicBandwidth wraps base with per-round jitter.
func NewDynamicBandwidth(base *Bandwidth, jitter float64, seed uint64) *DynamicBandwidth {
	if jitter < 0 || jitter >= 1 {
		panic("netsim: jitter must be in [0,1)")
	}
	d := &DynamicBandwidth{base: base, Jitter: jitter, rnd: rng.New(seed)}
	if base.Sparse() {
		d.rev = make([]int32, len(base.nbr))
		for u := 0; u < base.N; u++ {
			for k := base.off[u]; k < base.off[u+1]; k++ {
				v := int(base.nbr[k])
				lo, hi := base.off[v], base.off[v+1]
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if int(base.nbr[mid]) < u {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				d.rev[k] = int32(lo)
			}
		}
	}
	d.Tick()
	return d
}

// Tick resamples the jitter, producing the next round's snapshot. The
// returned pointer is the same *Bandwidth on every call (see the type
// comment); only its link speeds change.
func (d *DynamicBandwidth) Tick() *Bandwidth {
	n := d.base.N
	cur := d.current
	if d.base.Sparse() {
		if cur == nil {
			cur = &Bandwidth{N: n, off: d.base.off, nbr: d.base.nbr, wts: make([]float64, len(d.base.wts))}
		}
		// One draw per undirected link, in the u < v iteration order the
		// sparse layout stores; both directions get the scaled value.
		for u := 0; u < n; u++ {
			for k := d.base.off[u]; k < d.base.off[u+1]; k++ {
				if int(d.base.nbr[k]) <= u {
					continue
				}
				scale := 1 + d.Jitter*(2*d.rnd.Float64()-1)
				v := d.base.wts[k] * scale
				cur.wts[k] = v
				cur.wts[d.rev[k]] = v
			}
		}
		d.current = cur
		return cur
	}
	if cur == nil {
		cur = &Bandwidth{N: n, mbps: make([]float64, n*n)}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			scale := 1 + d.Jitter*(2*d.rnd.Float64()-1)
			v := d.base.MBps(i, j) * scale
			cur.mbps[i*n+j] = v
			cur.mbps[j*n+i] = v
		}
	}
	d.current = cur
	return cur
}

// Current returns the latest snapshot.
func (d *DynamicBandwidth) Current() *Bandwidth { return d.current }

// Base returns the underlying static environment.
func (d *DynamicBandwidth) Base() *Bandwidth { return d.base }
