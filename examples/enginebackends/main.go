// Engine backends: the same SAPS-PSGD configuration executed three times —
// over the in-memory transport, the simulated-bandwidth transport, and a
// real TCP cluster on loopback — by the one canonical engine round loop.
// The run prints each backend's final model checksum and per-round traffic,
// which agree bit-for-bit and byte-for-byte (DESIGN.md §2).
//
//	go run ./examples/enginebackends
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	saps "sapspsgd"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/transport"
)

const (
	n      = 4
	rounds = 30
)

func spec() saps.TaskSpec {
	return saps.TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4, Hidden: []int{16},
		Samples: 512, DataSeed: 21,
		LR: 0.05, Batch: 16, Compression: 10, LocalSteps: 1,
		Rounds: rounds, Seed: 9,
	}
}

func config() core.Config {
	s := spec()
	return core.Config{
		Workers: n, Compression: s.Compression, LR: s.LR, Batch: s.Batch,
		LocalSteps: s.LocalSteps, Gossip: gossip.Config{BThres: 0, TThres: 10},
		Seed: s.Seed,
	}
}

func env() *netsim.Bandwidth { return netsim.RandomUniform(n, 1, 5, rng.New(4)) }

// checksum folds a parameter vector into one printable number.
func checksum(params []float64) float64 {
	sum := 0.0
	for _, v := range params {
		sum += math.Abs(v)
	}
	return sum
}

// runInProc drives the engine over an in-process transport and returns the
// rank-0 parameters and total traffic.
func runInProc(name string, tr saps.EngineTransport, inner saps.EngineLedger) ([]float64, int64) {
	s := spec()
	shards, _ := s.BuildShards(n)
	workers := make([]*core.Worker, n)
	for i := range workers {
		model, err := s.BuildModel()
		if err != nil {
			log.Fatal(err)
		}
		workers[i] = core.NewWorker(i, model, shards[i], config())
	}
	eng := saps.NewEngine(saps.EngineOptions{
		Workers:   workers,
		Planner:   core.NewCoordinator(env(), config()),
		Transport: tr,
	})
	defer eng.Close()
	led := &saps.CountingLedger{Inner: inner}
	for t := 0; t < rounds; t++ {
		if _, err := eng.Step(t, led); err != nil {
			log.Fatalf("%s round %d: %v", name, t, err)
		}
	}
	return workers[0].Params(), led.TotalBytes()
}

// runTCP drives the identical configuration as a real loopback TCP cluster.
func runTCP() ([]float64, int64) {
	led := &engine.CountingLedger{}
	srv := &saps.CoordinatorServer{N: n, Task: spec(), BW: env(), Gossip: config().Gossip, Ledger: led}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := &transport.WorkerClient{}
			if _, err := wc.Run(addr, "127.0.0.1:0"); err != nil {
				log.Printf("worker: %v", err)
			}
		}()
	}
	params, err := srv.Run()
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	return params, led.TotalBytes()
}

func main() {
	memParams, memBytes := runInProc("memtransport", saps.NewMemTransport(n), nil)
	fmt.Printf("%-14s checksum %.9f   traffic %6d B\n", "memtransport", checksum(memParams), memBytes)

	hub, simLed := saps.NewSimTransport(env())
	simParams, simBytes := runInProc("simtransport", hub, simLed)
	fmt.Printf("%-14s checksum %.9f   traffic %6d B   simulated comm time %.2fs\n",
		"simtransport", checksum(simParams), simBytes, simLed.TotalTime())

	tcpParams, tcpBytes := runTCP()
	fmt.Printf("%-14s checksum %.9f   traffic %6d B\n", "tcptransport", checksum(tcpParams), tcpBytes)

	for i, v := range memParams {
		if simParams[i] != v || tcpParams[i] != v {
			log.Fatalf("backends diverged at parameter %d", i)
		}
	}
	if memBytes != simBytes || memBytes != tcpBytes {
		log.Fatalf("traffic diverged: mem %d, sim %d, tcp %d", memBytes, simBytes, tcpBytes)
	}
	fmt.Println("\nall three backends: bit-identical models, byte-identical traffic ✓")
}
