package metrics

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "A", "B")
	tb.Add("x", "1")
	tb.Add("longer", "2")
	var sb strings.Builder
	tb.WriteMarkdown(&sb)
	out := sb.String()
	if !strings.Contains(out, "## Demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "| longer | 2 |") {
		t.Fatalf("markdown:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, blank, header, separator, 2 rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.Add(`has,comma`, `has"quote`)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	if !strings.Contains(sb.String(), `"has,comma","has""quote"`) {
		t.Fatalf("csv: %s", sb.String())
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("", "A", "B")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Add("only one")
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{F(1.5), "1.5"},
		{F(2), "2"},
		{F(0.12345), "0.1235"},
		{Pct(0.9917), "99.17%"},
		{MB(2_500_000), "2.5 MB"},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Fatalf("got %q, want %q", tc.got, tc.want)
		}
	}
}

func TestSeriesRaggedLengths(t *testing.T) {
	var sb strings.Builder
	Series(&sb, []string{"a", "b"}, map[string][]float64{
		"a": {1, 2, 3},
		"b": {9},
	})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %s", len(lines), sb.String())
	}
	if lines[0] != "index,a,b" || lines[1] != "0,1,9" || lines[3] != "2,3," {
		t.Fatalf("series:\n%s", sb.String())
	}
}
