package algos

import (
	"fmt"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
	"sapspsgd/internal/topology"
)

// Topology aliases topology.Topology for the DPSGDTopology constructor.
type Topology = topology.Topology

// MetropolisWeights converts a topology's Metropolis–Hastings gossip matrix
// into sparse per-worker weight rows (self weight included).
func MetropolisWeights(t Topology) []map[int]float64 {
	w := topology.MetropolisW(t)
	out := make([]map[int]float64, t.G.N)
	for i := 0; i < t.G.N; i++ {
		out[i] = make(map[int]float64, len(t.G.Neighbors(i))+1)
		for j, v := range w.Row(i) {
			if v != 0 {
				out[i][j] = v
			}
		}
	}
	return out
}

// DPSGD is decentralized parallel SGD (Lian et al.) on the static ring
// topology the paper evaluates: each round worker i averages the full models
// of its two ring neighbors with its own (weights 1/3) and then takes a
// local gradient step. Every worker sends its dense model to both
// neighbors each round.
type DPSGD struct {
	fleet  *Fleet
	lr     float64
	params [][]float64 // snapshot of all models at round start
	mixed  [][]float64
	grads  [][]float64
}

// NewDPSGD builds the ring D-PSGD baseline.
func NewDPSGD(fc FleetConfig) *DPSGD {
	f := NewFleet(fc)
	d := &DPSGD{fleet: f, lr: fc.LR}
	d.params = make([][]float64, f.N)
	d.mixed = make([][]float64, f.N)
	d.grads = make([][]float64, f.N)
	for i := 0; i < f.N; i++ {
		d.params[i] = make([]float64, f.Dim)
		d.mixed[i] = make([]float64, f.Dim)
		d.grads[i] = make([]float64, f.Dim)
	}
	return d
}

// Name implements Algorithm.
func (d *DPSGD) Name() string { return "D-PSGD" }

// Models implements Algorithm.
func (d *DPSGD) Models() []*nn.Model { return d.fleet.Models }

// Step implements Algorithm: x_{t+1,i} = Σ_j W_ij x_{t,j} − γ ∇F_i(x_{t,i}).
func (d *DPSGD) Step(round int, led *netsim.Ledger) float64 {
	n := d.fleet.N
	loss := d.fleet.Parallel(func(i int) float64 {
		l := d.fleet.GradStep(i)
		d.params[i] = d.fleet.Models[i].FlatParams(d.params[i])
		d.grads[i] = d.fleet.Models[i].FlatGrads(d.grads[i])
		return l
	})
	d.fleet.Parallel(func(i int) float64 {
		prev, next := gossip.RingNeighbors(i, n)
		m := d.mixed[i]
		for j := range m {
			m[j] = (d.params[prev][j] + d.params[i][j] + d.params[next][j]) / 3
		}
		tensor.Axpy(-d.lr, d.grads[i], m)
		d.fleet.Models[i].SetFlatParams(m)
		return 0
	})

	dense := compress.DenseBytes(d.fleet.Dim)
	for i := 0; i < n; i++ {
		// Each worker sends its dense model to its ring successor and
		// receives the successor's dense model over the same link; the
		// predecessor link is accounted by iteration i-1.
		led.Exchange(i, (i+1)%n, dense, dense)
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*DPSGD)(nil)

// DPSGDTopology is D-PSGD on an arbitrary static topology with
// Metropolis–Hastings mixing weights — the extension behind the topology
// ablation (ring vs torus vs hypercube vs random regular): more neighbors
// buy faster consensus at proportionally higher per-round traffic.
type DPSGDTopology struct {
	fleet     *Fleet
	lr        float64
	name      string
	neighbors [][]int
	weights   []map[int]float64 // W row per worker (incl. self weight)
	params    [][]float64
	grads     [][]float64
}

// NewDPSGDTopology builds D-PSGD over the given topology. The topology must
// span exactly fc.N vertices and be connected.
func NewDPSGDTopology(fc FleetConfig, topo Topology) *DPSGDTopology {
	if topo.G.N != fc.N {
		panic(fmt.Sprintf("algos: topology has %d vertices for %d workers", topo.G.N, fc.N))
	}
	if !topo.G.IsConnected() {
		panic("algos: disconnected topology cannot reach consensus")
	}
	f := NewFleet(fc)
	d := &DPSGDTopology{fleet: f, lr: fc.LR, name: "D-PSGD(" + topo.Name + ")"}
	w := MetropolisWeights(topo)
	d.weights = w
	d.neighbors = make([][]int, f.N)
	d.params = make([][]float64, f.N)
	d.grads = make([][]float64, f.N)
	for i := 0; i < f.N; i++ {
		d.neighbors[i] = topo.G.Neighbors(i)
		d.params[i] = make([]float64, f.Dim)
		d.grads[i] = make([]float64, f.Dim)
	}
	return d
}

// Name implements Algorithm.
func (d *DPSGDTopology) Name() string { return d.name }

// Models implements Algorithm.
func (d *DPSGDTopology) Models() []*nn.Model { return d.fleet.Models }

// Step implements Algorithm.
func (d *DPSGDTopology) Step(round int, led *netsim.Ledger) float64 {
	loss := d.fleet.Parallel(func(i int) float64 {
		l := d.fleet.GradStep(i)
		d.params[i] = d.fleet.Models[i].FlatParams(d.params[i])
		d.grads[i] = d.fleet.Models[i].FlatGrads(d.grads[i])
		return l
	})
	d.fleet.Parallel(func(i int) float64 {
		mixed := make([]float64, d.fleet.Dim)
		for j, wij := range d.weights[i] {
			tensor.Axpy(wij, d.params[j], mixed)
		}
		tensor.Axpy(-d.lr, d.grads[i], mixed)
		d.fleet.Models[i].SetFlatParams(mixed)
		return 0
	})
	dense := compress.DenseBytes(d.fleet.Dim)
	for i := 0; i < d.fleet.N; i++ {
		for _, j := range d.neighbors[i] {
			if j > i {
				led.Exchange(i, j, dense, dense)
			}
		}
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*DPSGDTopology)(nil)

// DCDPSGD is difference-compressed decentralized SGD (Tang et al.) on the
// ring: every worker maintains public replicas x̂ of its neighbors' models
// and transmits only a Top-k compressed difference between its model and its
// own replica each round, so replicas track the true models with bounded
// error. The paper sets c = 4 — larger ratios diverge, which our
// integration tests reproduce.
type DCDPSGD struct {
	fleet *Fleet
	lr    float64
	c     float64
	// replicas[i] is the public estimate x̂_i shared by i's neighbors (all
	// neighbors see the same deltas, so one copy suffices in-process).
	replicas [][]float64
	params   [][]float64
	grads    [][]float64
	deltas   []compress.SparseVec
}

// NewDCDPSGD builds the DCD baseline with compression ratio c.
func NewDCDPSGD(fc FleetConfig, c float64) *DCDPSGD {
	f := NewFleet(fc)
	d := &DCDPSGD{fleet: f, lr: fc.LR, c: c}
	d.replicas = make([][]float64, f.N)
	d.params = make([][]float64, f.N)
	d.grads = make([][]float64, f.N)
	d.deltas = make([]compress.SparseVec, f.N)
	for i := 0; i < f.N; i++ {
		// Replicas start at the shared initial model, so they are exact at
		// round 0.
		d.replicas[i] = f.Models[i].FlatParams(nil)
		d.params[i] = make([]float64, f.Dim)
		d.grads[i] = make([]float64, f.Dim)
	}
	return d
}

// Name implements Algorithm.
func (d *DCDPSGD) Name() string { return "DCD-PSGD" }

// Models implements Algorithm.
func (d *DCDPSGD) Models() []*nn.Model { return d.fleet.Models }

// Step implements Algorithm.
func (d *DCDPSGD) Step(round int, led *netsim.Ledger) float64 {
	n := d.fleet.N
	k := int(float64(d.fleet.Dim) / d.c)
	if k < 1 {
		k = 1
	}
	// Local gradient + replica-based gossip: x_i ← x_i + Σ_j W_ij(x̂_j − x̂_i)
	// − γ g_i, with ring weights 1/3.
	loss := d.fleet.Parallel(func(i int) float64 {
		l := d.fleet.GradStep(i)
		d.params[i] = d.fleet.Models[i].FlatParams(d.params[i])
		d.grads[i] = d.fleet.Models[i].FlatGrads(d.grads[i])
		return l
	})
	d.fleet.Parallel(func(i int) float64 {
		prev, next := gossip.RingNeighbors(i, n)
		p := d.params[i]
		for j := range p {
			gossipTerm := (d.replicas[prev][j] + d.replicas[next][j] - 2*d.replicas[i][j]) / 3
			p[j] += gossipTerm - d.lr*d.grads[i][j]
		}
		return 0
	})
	// Compress the model/replica difference and publish it.
	diff := make([]float64, d.fleet.Dim)
	for i := 0; i < n; i++ {
		tensor.Sub(diff, d.params[i], d.replicas[i])
		d.deltas[i] = compress.TopK(diff, k)
	}
	// Everyone applies the published deltas to the replicas; workers adopt
	// their new parameters.
	for i := 0; i < n; i++ {
		d.deltas[i].AddTo(d.replicas[i], 1)
	}
	d.fleet.Parallel(func(i int) float64 {
		d.fleet.Models[i].SetFlatParams(d.params[i])
		return 0
	})

	for i := 0; i < n; i++ {
		// Sparse delta to successor; successor's delta back.
		led.Exchange(i, (i+1)%n, d.deltas[i].WireBytes(), d.deltas[(i+1)%n].WireBytes())
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*DCDPSGD)(nil)
