// Package memtransport is the in-process engine backend: matched workers
// swap their masked payloads through per-rank rendezvous channels, with no
// wire format and no time model. It is the backend behind every
// internal/algos simulation; pair it with engine.CountingLedger for pure
// traffic totals or with a *netsim.Ledger (via simtransport) for
// bandwidth-accounted time.
package memtransport

import "fmt"

// Hub pairs in-process workers for the per-round payload swap. Exchange
// deposits the caller's payload in its own slot and blocks until the peer's
// slot fills; because a matching is exclusive, each slot has exactly one
// writer and one reader per round, and the engine's round barrier guarantees
// both are drained before the next round starts. Payload slices are handed
// over by reference — the channel send is the happens-before edge that makes
// the peer's read race-free.
type Hub struct {
	slots []chan []float64
}

// NewHub returns a hub for n workers. A single-worker hub is legal — it can
// never be asked to exchange (every plan assigns peer -1), and Exchange
// rejects any peer it is asked for.
func NewHub(n int) *Hub {
	if n < 1 {
		panic(fmt.Sprintf("memtransport: hub of %d", n))
	}
	h := &Hub{slots: make([]chan []float64, n)}
	for i := range h.slots {
		h.slots[i] = make(chan []float64, 1)
	}
	return h
}

// Exchange implements engine.Transport.
func (h *Hub) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	if self == peer || peer < 0 || peer >= len(h.slots) {
		return nil, fmt.Errorf("memtransport: worker %d exchanging with %d", self, peer)
	}
	h.slots[self] <- payload
	return <-h.slots[peer], nil
}
