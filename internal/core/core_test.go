package core

import (
	"math"
	"testing"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

func testConfig(n int) Config {
	return Config{
		Workers:     n,
		Compression: 4,
		LR:          0.05,
		Batch:       8,
		LocalSteps:  1,
		Gossip:      gossip.Config{BThres: 0, TThres: 5},
		Seed:        3,
	}
}

func buildWorkers(t *testing.T, n int, cfg Config) []*Worker {
	t.Helper()
	tr, _ := dataset.TinyTask(200, 3, 5)
	shards := dataset.PartitionIID(tr, n, 1)
	ws := make([]*Worker, n)
	for i := range ws {
		model := nn.NewMLP(tr.Dim(), []int{8}, 3, cfg.Seed) // same init everywhere
		ws[i] = NewWorker(i, model, shards[i], cfg)
	}
	return ws
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Workers = 1 },
		func(c *Config) { c.Compression = 0.5 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.LocalSteps = 0 },
		func(c *Config) { c.Gossip.TThres = 0 },
	}
	for i, mutate := range bads {
		c := testConfig(4)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestWorkersShareMask(t *testing.T) {
	cfg := testConfig(4)
	ws := buildWorkers(t, 4, cfg)
	ref := ws[0].RoundMask(99, 7)
	for _, w := range ws[1:] {
		m := w.RoundMask(99, 7)
		for i := range m {
			if m[i] != ref[i] {
				t.Fatalf("worker %d mask differs at %d", w.Rank, i)
			}
		}
	}
}

func TestMaskedExchangeAveragesExactly(t *testing.T) {
	cfg := testConfig(2)
	ws := buildWorkers(t, 2, cfg)
	// Give the two workers different known parameters.
	n := ws[0].Model.ParamCount()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(2 * i)
	}
	ws[0].Model.SetFlatParams(a)
	ws[1].Model.SetFlatParams(b)

	mask := ws[0].RoundMask(5, 1)
	ws[1].RoundMask(5, 1)
	pa := ws[0].MaskedPayload()
	pb := ws[1].MaskedPayload()
	ws[0].MergePeer(pb)
	ws[1].MergePeer(pa)

	ga := ws[0].Params()
	gb := ws[1].Params()
	for i := range ga {
		if mask[i] {
			want := (a[i] + b[i]) / 2
			if ga[i] != want || gb[i] != want {
				t.Fatalf("masked coord %d: %v/%v, want %v", i, ga[i], gb[i], want)
			}
		} else {
			if ga[i] != a[i] || gb[i] != b[i] {
				t.Fatalf("unmasked coord %d modified", i)
			}
		}
	}
}

func TestMergePeerConservesMean(t *testing.T) {
	// The pairwise masked average must conserve the two-worker parameter sum
	// — the doubly stochastic invariant behind Theorem 1.
	cfg := testConfig(2)
	ws := buildWorkers(t, 2, cfg)
	r := rng.New(9)
	n := ws[0].Model.ParamCount()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	ws[0].Model.SetFlatParams(a)
	ws[1].Model.SetFlatParams(b)
	sumBefore := tensor.Sum(a) + tensor.Sum(b)

	ws[0].RoundMask(11, 2)
	ws[1].RoundMask(11, 2)
	pa := ws[0].MaskedPayload()
	pb := ws[1].MaskedPayload()
	ws[0].MergePeer(pb)
	ws[1].MergePeer(pa)

	sumAfter := tensor.Sum(ws[0].Params()) + tensor.Sum(ws[1].Params())
	if math.Abs(sumAfter-sumBefore) > 1e-9 {
		t.Fatalf("sum drifted: %v -> %v", sumBefore, sumAfter)
	}
}

func TestMergePeerWrongLenPanics(t *testing.T) {
	cfg := testConfig(2)
	ws := buildWorkers(t, 2, cfg)
	ws[0].RoundMask(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ws[0].MergePeer(make([]float64, 1e6))
}

func TestPayloadBeforeMaskPanics(t *testing.T) {
	cfg := testConfig(2)
	ws := buildWorkers(t, 2, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ws[0].MaskedPayload()
}

func TestGossipOnlyConsensus(t *testing.T) {
	// With learning disabled (no SGD), repeated masked gossip must drive all
	// workers to consensus — Theorem 1 with G = 0. This exercises the full
	// coordinator+worker loop.
	const n = 8
	cfg := testConfig(n)
	cfg.Compression = 2 // denser masks make the test fast
	ws := buildWorkers(t, n, cfg)
	// Distinct starting points.
	r := rng.New(13)
	for _, w := range ws {
		p := w.Params()
		for i := range p {
			p[i] = r.NormFloat64()
		}
		w.Model.SetFlatParams(p)
	}
	bw := netsim.RandomUniform(n, 1, 5, rng.New(2))
	coord := NewCoordinator(bw, cfg)

	disagreement := func() float64 {
		dim := ws[0].Model.ParamCount()
		mean := make([]float64, dim)
		for _, w := range ws {
			tensor.Axpy(1/float64(n), w.Params(), mean)
		}
		total := 0.0
		for _, w := range ws {
			d := w.Disagreement(mean)
			total += d * d
		}
		return total
	}

	before := disagreement()
	for round := 0; round < 150; round++ {
		plan := coord.Plan(round)
		for _, w := range ws {
			w.RoundMask(plan.Seed, plan.Round)
		}
		payloads := make([][]float64, n)
		for i, w := range ws {
			payloads[i] = w.MaskedPayload()
		}
		for i, w := range ws {
			if peer := plan.Peer[i]; peer != -1 {
				w.MergePeer(payloads[peer])
			}
		}
	}
	after := disagreement()
	if after > before*1e-3 {
		t.Fatalf("disagreement %v -> %v: gossip did not contract", before, after)
	}
}

func TestConsensusRateMatchesLemma2(t *testing.T) {
	// Lemma 2 predicts contraction of E‖x − x̄‖² by (q + pρ²) per round.
	// Measure the empirical contraction of scalar gossip under the
	// generator's matchings and compare with the prediction computed from
	// the sampled Ws (allowing generous tolerance: single sample path).
	const n = 14
	bw := netsim.FourteenCities()
	gcfg := gossip.Config{BThres: 0.2, TThres: 5}
	gen := gossip.NewGenerator(bw, gcfg, 7)
	const p = 0.25 // mask keep probability
	const rounds = 400

	r := rng.New(31)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	dis := func(x []float64) float64 {
		mean := tensor.Mean(x)
		s := 0.0
		for _, v := range x {
			s += (v - mean) * (v - mean)
		}
		return s
	}
	d0 := dis(x)
	maskRng := rng.New(77)
	for t2 := 0; t2 < rounds; t2++ {
		round := gen.Next(t2)
		if !maskRng.Bernoulli(p) {
			continue // this scalar coordinate not exchanged this round
		}
		for v, pr := range round.Match {
			if pr > v {
				avg := 0.5 * (x[v] + x[pr])
				x[v], x[pr] = avg, avg
			}
		}
	}
	dT := dis(x)
	if dT > d0*1e-4 {
		t.Fatalf("scalar gossip did not contract: %v -> %v over %d rounds", d0, dT, rounds)
	}
}

func TestCoordinatorPlansDeterministic(t *testing.T) {
	bw := netsim.RandomUniform(8, 1, 5, rng.New(4))
	cfg := testConfig(8)
	a := NewCoordinator(bw, cfg)
	b := NewCoordinator(bw, cfg)
	for round := 0; round < 20; round++ {
		pa := a.Plan(round)
		pb := b.Plan(round)
		if pa.Seed != pb.Seed {
			t.Fatal("seeds diverge")
		}
		for i := range pa.Peer {
			if pa.Peer[i] != pb.Peer[i] {
				t.Fatal("peers diverge")
			}
		}
	}
}
