package gossip

import (
	"testing"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

func TestNextActiveExcludesInactive(t *testing.T) {
	bw := netsim.RandomUniform(8, 1, 5, rng.New(3))
	g := NewGenerator(bw, Config{BThres: 0, TThres: 5}, 7)
	active := []bool{true, true, false, true, false, true, true, true}
	for round := 0; round < 40; round++ {
		r := g.NextActive(round, active)
		if !r.Match.Valid(8) {
			t.Fatalf("round %d invalid", round)
		}
		for v, p := range r.Match {
			if p != -1 && (!active[v] || !active[p]) {
				t.Fatalf("round %d matched inactive worker: %d-%d", round, v, p)
			}
		}
		// 6 active workers → 3 pairs possible every round on a complete
		// bandwidth graph.
		if r.Match.Size() != 3 {
			t.Fatalf("round %d: size %d, want 3", round, r.Match.Size())
		}
	}
}

func TestNextActiveOddActiveCount(t *testing.T) {
	bw := netsim.RandomUniform(5, 1, 5, rng.New(3))
	g := NewGenerator(bw, Config{BThres: 0, TThres: 5}, 7)
	active := []bool{true, true, true, false, false}
	r := g.NextActive(0, active)
	if r.Match.Size() != 1 {
		t.Fatalf("3 active workers should match 1 pair, got %d", r.Match.Size())
	}
	unmatchedActive := 0
	for v, p := range r.Match {
		if p == -1 && active[v] {
			unmatchedActive++
		}
	}
	if unmatchedActive != 1 {
		t.Fatalf("%d unmatched active workers, want 1", unmatchedActive)
	}
	// W must still be doubly stochastic: unmatched and inactive workers
	// keep their model.
	if !r.W().IsDoublyStochastic(1e-12) {
		t.Fatal("W not doubly stochastic under churn")
	}
}

func TestNextActiveAllButOneInactive(t *testing.T) {
	bw := netsim.RandomUniform(4, 1, 5, rng.New(3))
	g := NewGenerator(bw, Config{BThres: 0, TThres: 5}, 7)
	active := []bool{true, false, false, false}
	r := g.NextActive(0, active)
	if r.Match.Size() != 0 {
		t.Fatalf("single active worker cannot be matched, got %d pairs", r.Match.Size())
	}
}

func TestNextActiveRecoversConnectivityAfterAbsence(t *testing.T) {
	// Worker 0 is absent for many rounds; when it returns, the stale RC
	// graph must not block matching and 0 must eventually be matched again.
	bw := netsim.RandomUniform(6, 1, 5, rng.New(9))
	g := NewGenerator(bw, Config{BThres: 2, TThres: 4}, 11)
	absent := []bool{false, true, true, true, true, true}
	for round := 0; round < 30; round++ {
		g.NextActive(round, absent)
	}
	matchedZero := false
	for round := 30; round < 50; round++ {
		r := g.NextActive(round, nil) // everyone back
		if r.Match[0] != -1 {
			matchedZero = true
			break
		}
	}
	if !matchedZero {
		t.Fatal("returning worker was never matched in 20 rounds")
	}
}
