//go:build linux

package profiling

import (
	"bytes"
	"os"
	"strconv"
)

// PeakRSS returns the process's peak resident set size in bytes — the
// kernel's VmHWM high-water mark from /proc/self/status — or 0 when it
// cannot be read. The mark is monotone within the process; bracket a
// measurement with ResetPeakRSS to attribute the peak to one workload.
func PeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	return parseVmHWM(data)
}

func parseVmHWM(status []byte) int64 {
	for len(status) > 0 {
		line := status
		if i := bytes.IndexByte(status, '\n'); i >= 0 {
			line, status = status[:i], status[i+1:]
		} else {
			status = nil
		}
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) == 0 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024 // VmHWM is reported in kB
	}
	return 0
}

// ResetPeakRSS clears the kernel's peak-RSS watermark (best effort: writing
// "5" to /proc/self/clear_refs) so successive measurements see their own
// high-water mark rather than the largest workload run so far. Failure is
// silent — the mark then stays monotone, which only makes readings
// conservative (never under-reported).
func ResetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}
