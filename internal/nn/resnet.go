package nn

import (
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Residual is a pre-built basic ResNet block:
//
//	y = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
//
// where shortcut is the identity when geometry is preserved and a strided
// 1×1 convolution + BN otherwise (ResNet option B).
type Residual struct {
	In, OutShape Shape

	conv1 *Conv2D
	bn1   *BatchNorm2D
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm2D

	projConv *Conv2D // nil for identity shortcut
	projBN   *BatchNorm2D

	// Backward caches.
	sumMask []bool // post-add ReLU mask
	xCache  *tensor.Matrix
}

// NewResidual builds a basic block with outC output channels and the given
// stride on the first convolution.
func NewResidual(in Shape, outC, stride int, r *rng.Source) *Residual {
	b := &Residual{In: in}
	b.conv1 = NewConv2D(in, outC, 3, stride, 1, r)
	b.bn1 = NewBatchNorm2D(b.conv1.OutShape)
	b.relu1 = NewReLU()
	b.conv2 = NewConv2D(b.conv1.OutShape, outC, 3, 1, 1, r)
	b.bn2 = NewBatchNorm2D(b.conv2.OutShape)
	b.OutShape = b.conv2.OutShape
	if stride != 1 || in.C != outC {
		b.projConv = NewConv2D(in, outC, 1, stride, 0, r)
		b.projBN = NewBatchNorm2D(b.projConv.OutShape)
	}
	return b
}

// Forward runs both branches and the post-addition ReLU.
func (b *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		b.xCache = x
	}
	main := b.conv1.Forward(x, train)
	main = b.bn1.Forward(main, train)
	main = b.relu1.Forward(main, train)
	main = b.conv2.Forward(main, train)
	main = b.bn2.Forward(main, train)

	short := x
	if b.projConv != nil {
		short = b.projConv.Forward(x, train)
		short = b.projBN.Forward(short, train)
	}

	out := tensor.NewMatrix(main.Rows, main.Cols)
	if train {
		if len(b.sumMask) != len(out.Data) {
			b.sumMask = make([]bool, len(out.Data))
		}
		for i := range out.Data {
			s := main.Data[i] + short.Data[i]
			if s > 0 {
				out.Data[i] = s
				b.sumMask[i] = true
			} else {
				b.sumMask[i] = false
			}
		}
		return out
	}
	for i := range out.Data {
		if s := main.Data[i] + short.Data[i]; s > 0 {
			out.Data[i] = s
		}
	}
	return out
}

// Backward splits the gradient across both branches and sums the input
// gradients.
func (b *Residual) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dsum := tensor.NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if b.sumMask[i] {
			dsum.Data[i] = v
		}
	}
	// Main branch.
	d := b.bn2.Backward(dsum)
	d = b.conv2.Backward(d)
	d = b.relu1.Backward(d)
	d = b.bn1.Backward(d)
	dMain := b.conv1.Backward(d)
	// Shortcut branch.
	var dShort *tensor.Matrix
	if b.projConv != nil {
		ds := b.projBN.Backward(dsum)
		dShort = b.projConv.Backward(ds)
	} else {
		dShort = dsum
	}
	dx := tensor.NewMatrix(dMain.Rows, dMain.Cols)
	tensor.Add(dx.Data, dMain.Data, dShort.Data)
	b.xCache = nil
	return dx
}

// Params concatenates the parameters of all constituent layers.
func (b *Residual) Params() []Param {
	out := append([]Param{}, b.conv1.Params()...)
	out = append(out, b.bn1.Params()...)
	out = append(out, b.conv2.Params()...)
	out = append(out, b.bn2.Params()...)
	if b.projConv != nil {
		out = append(out, b.projConv.Params()...)
		out = append(out, b.projBN.Params()...)
	}
	return out
}

var _ Layer = (*Residual)(nil)
