package engine

import "sapspsgd/internal/core"

// Gate bounds the engine's CPU-heavy sections (local SGD, mask generation,
// merge) without serializing the network exchanges between them: a worker
// holds the gate while computing, releases it before blocking in
// Transport.Exchange, and re-acquires it to merge. This is what lets a
// bounded pool drive many more workers than cores with no rendezvous
// deadlock.
type Gate interface {
	Acquire()
	Release()
}

// NewGate returns a counting-semaphore Gate admitting at most limit
// concurrent holders. limit < 1 panics.
func NewGate(limit int) Gate {
	if limit < 1 {
		panic("engine: gate limit < 1")
	}
	return semGate(make(chan struct{}, limit))
}

type semGate chan struct{}

func (g semGate) Acquire() { g <- struct{}{} }
func (g semGate) Release() { <-g }

// nopGate is the ungated variant used by single-worker deployments (one
// process per worker, e.g. the TCP client), where the OS already schedules.
type nopGate struct{}

func (nopGate) Acquire() {}
func (nopGate) Release() {}

// WorkerRound executes Algorithm 2 lines 5–10 for one worker and one round:
// local SGD, shared-seed mask regeneration, masked payload extraction, the
// peer exchange over the transport, and the masked gossip average. This is
// the single canonical implementation of the worker round — every backend
// (in-memory, simulated-bandwidth, TCP) funnels through it.
//
// peer == -1 skips the exchange (the worker only trains). gate may be nil
// for ungated execution. It returns the mean local loss and the payload
// length (0 when unmatched).
func WorkerRound(w *core.Worker, tr Transport, gate Gate, round int, seed uint64, peer int) (loss float64, payloadLen int, err error) {
	if gate == nil {
		gate = nopGate{}
	}
	gate.Acquire()
	loss = w.LocalSGD()
	if peer < 0 {
		gate.Release()
		return loss, 0, nil
	}
	w.RoundMask(seed, round)
	payload := w.MaskedPayload()
	payloadLen = len(payload)
	gate.Release()

	peerVals, err := tr.Exchange(round, w.Rank, peer, payload)
	if err != nil {
		return 0, 0, err
	}

	gate.Acquire()
	w.MergePeer(peerVals)
	gate.Release()
	return loss, payloadLen, nil
}
