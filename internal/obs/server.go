package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in observability HTTP endpoint. It serves:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  JSON snapshot of the same catalog
//	/healthz       liveness probe ("ok")
//	/runs          live + recently finished runs as JSON
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The server reads atomics and snapshots; it never feeds back into the
// run, so scraping cannot perturb determinism.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartServer binds addr and serves m's endpoints in a background
// goroutine until Close.
func StartServer(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m.Runs.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
