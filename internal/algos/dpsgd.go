package algos

import (
	"fmt"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/topology"
)

// Topology aliases topology.Topology for the DPSGDTopology constructor.
type Topology = topology.Topology

// defaultRecipeGossip is the Algorithm 3 configuration for recipes that do
// not use the gossip planner (static/hub baselines ignore it).
func defaultRecipeGossip() gossip.Config { return gossip.Config{BThres: 0, TThres: 10} }

// MetropolisWeights converts a topology's Metropolis–Hastings gossip matrix
// into sparse per-worker weight rows (self weight included).
func MetropolisWeights(t Topology) []map[int]float64 {
	w := topology.MetropolisW(t)
	out := make([]map[int]float64, t.G.N)
	for i := 0; i < t.G.N; i++ {
		out[i] = make(map[int]float64, len(t.G.Neighbors(i))+1)
		for j, v := range w.Row(i) {
			if v != 0 {
				out[i][j] = v
			}
		}
	}
	return out
}

// DPSGD is decentralized parallel SGD (Lian et al.) on the static ring
// topology the paper evaluates: each round worker i averages the full models
// of its two ring neighbors with its own (weights 1/3) and then takes a
// local gradient step. Composed as Neighborhood pattern (ring adjacency) +
// Dense codec: every worker ships its dense model to both neighbors each
// round, and both directions are charged with measured bytes.
type DPSGD struct {
	*engineAlgo
}

// NewDPSGD builds the ring D-PSGD baseline.
func NewDPSGD(fc FleetConfig) *DPSGD {
	r := Recipe{Algo: "d-psgd", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed}
	a, _ := newEngineAlgo("D-PSGD", fc, r, r.Planner(nil, defaultRecipeGossip()), nil)
	return &DPSGD{engineAlgo: a}
}

var _ Algorithm = (*DPSGD)(nil)

// DPSGDTopology is D-PSGD on an arbitrary static topology with
// Metropolis–Hastings mixing weights — the extension behind the topology
// ablation (ring vs torus vs hypercube vs random regular): more neighbors
// buy faster consensus at proportionally higher per-round traffic. Same
// node/codec composition as DPSGD, with the topology's adjacency driving the
// Neighborhood pattern.
type DPSGDTopology struct {
	*engineAlgo
}

// NewDPSGDTopology builds D-PSGD over the given topology. The topology must
// span exactly fc.N vertices and be connected.
func NewDPSGDTopology(fc FleetConfig, topo Topology) *DPSGDTopology {
	if topo.G.N != fc.N {
		panic(fmt.Sprintf("algos: topology has %d vertices for %d workers", topo.G.N, fc.N))
	}
	if !topo.G.IsConnected() {
		panic("algos: disconnected topology cannot reach consensus")
	}
	f := NewFleet(fc)
	weights := MetropolisWeights(topo)
	adj := make([][]int, f.N)
	nodes := make([]engine.Node, f.N)
	codecs := make([]engine.Codec, f.N)
	for i := 0; i < f.N; i++ {
		adj[i] = topo.G.Neighbors(i)
		t := newLocalTrainer(i, f.Models[i], fc.Shards[i], fc.Batch, fc.LR, fc.Seed)
		nodes[i] = &neighborMixNode{t: t, lr: fc.LR, weights: weights[i]}
		codecs[i] = engine.Dense{}
	}
	a := &engineAlgo{name: "D-PSGD(" + topo.Name + ")", models: f.Models, server: -1}
	a.eng = engine.New(engine.Options{
		Nodes:   nodes,
		Codecs:  codecs,
		Pattern: engine.NewNeighborhood(adj, false),
		Planner: engine.PlannerFunc(func(t int) core.RoundPlan { return core.RoundPlan{Round: t} }),
	})
	return &DPSGDTopology{engineAlgo: a}
}

var _ Algorithm = (*DPSGDTopology)(nil)

// DCDPSGD is difference-compressed decentralized SGD (Tang et al.) on the
// ring: every worker maintains public replicas x̂ of its neighbors' models
// and transmits only a Top-k compressed difference between its model and its
// own replica each round, so replicas track the true models with bounded
// error. The paper sets c = 4 — larger ratios diverge, which our
// integration tests reproduce. Composed as Neighborhood pattern with
// IncludeSelf (the node applies its own lossy delta to its own replica,
// keeping all copies of x̂ identical) + TopK codec without error feedback.
type DCDPSGD struct {
	*engineAlgo
}

// NewDCDPSGD builds the DCD baseline with compression ratio c.
func NewDCDPSGD(fc FleetConfig, c float64) *DCDPSGD {
	r := Recipe{Algo: "dcd-psgd", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed, C: c}
	a, _ := newEngineAlgo("DCD-PSGD", fc, r, r.Planner(nil, defaultRecipeGossip()), nil)
	return &DCDPSGD{engineAlgo: a}
}

var _ Algorithm = (*DCDPSGD)(nil)
