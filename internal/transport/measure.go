package transport

import (
	"fmt"
	"net"
	"time"

	"sapspsgd/internal/netsim"
)

// Bandwidth measurement phase (paper §II-C footnote 3: "the communication
// speed information is measured by each pair of peers and regularly reported
// to the coordinator"). Before training starts the coordinator can ask every
// worker to probe its peers with fixed-size payloads and report the achieved
// throughput; the assembled matrix feeds Algorithm 3's adaptive matching.

// MeasureRequest asks a worker to probe every other worker, exchanging
// ProbeBytes of payload per direction. Lower ranks dial higher ranks; the
// accepting side attributes the measurement to the rank carried inside the
// probe, so arrival order does not matter.
type MeasureRequest struct {
	ProbeBytes int
}

// MeasureReport carries the measured throughput to the coordinator.
// MBps[j] is the measured speed to peer j (0 where the probe failed).
type MeasureReport struct {
	Rank int
	MBps []float64
}

// Probe is the measurement payload exchanged between two workers.
type Probe struct {
	From    int
	Payload []byte
}

// measurePeers runs the probe exchanges for one worker: first it accepts
// probes from all lower ranks (any arrival order), then dials all higher
// ranks in ascending order. This ordering is deadlock-free: rank 0 starts
// dialing immediately, and every accept has a matching dial in flight.
func (w *WorkerClient) measurePeers(req MeasureRequest) MeasureReport {
	rep := MeasureReport{Rank: w.rank, MBps: make([]float64, w.n)}
	payload := make([]byte, req.ProbeBytes)
	for k := 0; k < w.rank; k++ {
		from, mbps, err := w.acceptProbe(payload)
		if err != nil {
			w.logf("worker %d: accept probe: %v", w.rank, err)
			continue
		}
		rep.MBps[from] = mbps
	}
	for peer := w.rank + 1; peer < w.n; peer++ {
		mbps, err := w.dialProbe(peer, payload)
		if err != nil {
			w.logf("worker %d: probe to %d failed: %v", w.rank, peer, err)
			continue
		}
		rep.MBps[peer] = mbps
	}
	return rep
}

// dialProbe connects to a higher-ranked peer, sends the probe, and times the
// echoed response: MB/s over the round trip of 2×ProbeBytes.
func (w *WorkerClient) dialProbe(peer int, payload []byte) (float64, error) {
	nc, err := net.Dial("tcp", w.addrs[peer])
	if err != nil {
		return 0, err
	}
	conn := NewConn(nc)
	defer conn.Close()
	start := time.Now()
	if err := conn.Send(Probe{From: w.rank, Payload: payload}); err != nil {
		return 0, err
	}
	msg, err := conn.Recv()
	if err != nil {
		return 0, err
	}
	p, ok := msg.(Probe)
	if !ok {
		return 0, fmt.Errorf("transport: probe reply was %T", msg)
	}
	return throughputMBps(len(payload)+len(p.Payload), time.Since(start)), nil
}

// acceptProbe accepts one incoming probe, echoes it, and attributes the
// measurement to the dialer identified inside the probe.
func (w *WorkerClient) acceptProbe(payload []byte) (from int, mbps float64, err error) {
	nc, err := w.peerLn.Accept()
	if err != nil {
		return 0, 0, err
	}
	conn := NewConn(nc)
	defer conn.Close()
	start := time.Now()
	msg, err := conn.Recv()
	if err != nil {
		return 0, 0, err
	}
	p, ok := msg.(Probe)
	if !ok {
		return 0, 0, fmt.Errorf("transport: probe got %T", msg)
	}
	if p.From < 0 || p.From >= w.n {
		return 0, 0, fmt.Errorf("transport: probe from invalid rank %d", p.From)
	}
	if err := conn.Send(Probe{From: w.rank, Payload: payload}); err != nil {
		return 0, 0, err
	}
	return p.From, throughputMBps(len(p.Payload)+len(payload), time.Since(start)), nil
}

func throughputMBps(totalBytes int, elapsed time.Duration) float64 {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return float64(totalBytes) / secs / 1e6
}

// AssembleBandwidth merges per-worker measurement reports into a symmetric
// netsim.Bandwidth (min of the two directions, as in the paper). One-sided
// measurements (the reverse probe failed) are mirrored before
// symmetrization.
func AssembleBandwidth(n int, reports []MeasureReport) (*netsim.Bandwidth, error) {
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = make([]float64, n)
	}
	seen := make([]bool, n)
	for _, r := range reports {
		if r.Rank < 0 || r.Rank >= n || len(r.MBps) != n {
			return nil, fmt.Errorf("transport: malformed report from rank %d", r.Rank)
		}
		if seen[r.Rank] {
			return nil, fmt.Errorf("transport: duplicate report from rank %d", r.Rank)
		}
		seen[r.Rank] = true
		copy(raw[r.Rank], r.MBps)
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("transport: missing report from rank %d", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := raw[i][j], raw[j][i]
			switch {
			case a == 0:
				raw[i][j] = b
			case b == 0:
				raw[j][i] = a
			}
		}
	}
	return netsim.NewBandwidth(raw), nil
}
