// Command fleetbench sweeps declarative fleet scenarios across engine shard
// counts and emits the stable-schema BENCH.json benchmark summary, or diffs
// a fresh summary against a committed baseline (the CI regression gate).
//
// Sweep (default): every *.json spec in -scenarios runs once per -shards
// entry; bytes must agree across shard counts (the sharded runtime is
// deterministic), wall time should not.
//
//	fleetbench -scenarios internal/scenario/testdata -shards 1,8 -out BENCH.json
//	fleetbench -scenarios internal/scenario/testdata/saps-512.json -shards 1,2,4,8
//
// Regression gate: compare a fresh BENCH.json against the committed
// baseline; exits non-zero on any byte-count difference, on byte totals
// disagreeing across shard counts, or on total wall time regressing by more
// than -max-wall-regress.
//
//	fleetbench -diff bench_baseline.json BENCH.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"sapspsgd/internal/obs"
	"sapspsgd/internal/profiling"
	"sapspsgd/internal/scenario"
	"sapspsgd/internal/trace"
)

var (
	flagScenarios = flag.String("scenarios", "internal/scenario/testdata", "scenario spec file or directory")
	flagShards    = flag.String("shards", "1,8", "comma-separated engine shard counts to sweep")
	flagRounds    = flag.Int("rounds", 0, "override every spec's round count (0 = spec value)")
	flagOut       = flag.String("out", "BENCH.json", "summary output path")
	flagTraceDir  = flag.String("trace-dir", "", "write per-round trace CSVs (<name>-shards<k>.csv) here for traceable specs")
	flagDiff      = flag.String("diff", "", "baseline BENCH.json: diff mode, compares against the fresh file given as the positional argument (default BENCH.json)")
	flagMaxWall   = flag.Float64("max-wall-regress", 0.25, "diff mode: tolerated fractional wall-time regression")
	prof          profiling.Config
	obsFlags      obs.FlagConfig
)

func main() {
	prof.AddFlags(nil)
	obsFlags.AddFlags(nil)
	flag.Parse()
	obsSrv, err := obsFlags.Start()
	if err == nil {
		err = prof.Run(run)
	}
	obsSrv.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
}

func run() error {
	if *flagDiff != "" {
		return diff()
	}
	return sweep()
}

func diff() error {
	freshPath := "BENCH.json"
	if flag.NArg() > 0 {
		freshPath = flag.Arg(0)
	}
	baseline, err := scenario.ReadBench(*flagDiff)
	if err != nil {
		return err
	}
	fresh, err := scenario.ReadBench(freshPath)
	if err != nil {
		return err
	}
	if err := scenario.Diff(baseline, fresh, *flagMaxWall); err != nil {
		return err
	}
	wallNote := fmt.Sprintf("wall tolerance +%.0f%%", 100**flagMaxWall)
	if !scenario.WallComparable(baseline, fresh) {
		wallNote = fmt.Sprintf("wall check skipped: baseline ran on %d procs, this machine has %d — regenerate the baseline from a like-machine BENCH.json to arm it",
			baseline.GoMaxProcs, fresh.GoMaxProcs)
	}
	fmt.Printf("fleetbench: %s is within budget of %s (bytes exact; %s)\n", freshPath, *flagDiff, wallNote)
	return nil
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -shards")
	}
	return out, nil
}

func sweep() error {
	shards, err := parseShards(*flagShards)
	if err != nil {
		return err
	}
	specs, err := scenario.LoadPath(*flagScenarios)
	if err != nil {
		return err
	}
	if *flagTraceDir != "" {
		if err := os.MkdirAll(*flagTraceDir, 0o755); err != nil {
			return err
		}
	}
	out := &scenario.BenchFile{
		SchemaVersion: scenario.BenchSchemaVersion,
		Source:        "fleetbench",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	for _, loaded := range specs {
		// Sweep overrides apply to a copy: the loaded spec must survive
		// unaltered in case another sweep (or a repeated -scenarios entry)
		// reads it again in this invocation.
		spec := loaded.Clone()
		if *flagRounds > 0 {
			spec.Rounds = *flagRounds
		}
		sw := scenario.ScenarioSweep{Name: spec.Name, Algo: spec.Algo, Nodes: spec.Nodes, Rounds: spec.Rounds}
		for _, sc := range shards {
			// Traces stream straight to disk: the recorder holds one round
			// of scratch instead of the whole history, so a 50k-node
			// planner_only sweep over tens of thousands of rounds stays
			// flat in memory.
			var rec *trace.Recorder
			var tf *os.File
			if *flagTraceDir != "" && spec.Traceable() {
				path := filepath.Join(*flagTraceDir, fmt.Sprintf("%s-shards%d.csv", spec.Name, sc))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				tf = f
				rec = trace.NewRecorder()
				if err := rec.Stream(tf); err != nil {
					tf.Close()
					return err
				}
			}
			run, err := spec.RunFull(scenario.RunOptions{Shards: sc, Recorder: rec})
			if tf != nil {
				if err == nil {
					err = rec.Err()
				}
				if cerr := tf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return fmt.Errorf("scenario %s shards=%d: %w", spec.Name, sc, err)
			}
			res := run.Result
			sw.Runs = append(sw.Runs, res)
			fmt.Printf("%-24s shards=%-3d %8.3fs wall  %6.2f rounds/s  %12d B  sim %.2fs  loss %.4f\n",
				spec.Name, sc, res.WallSeconds, res.RoundsPerSec, res.TotalBytes, res.SimSeconds, res.FinalLoss)
		}
		sw.ComputeSpeedup()
		if sw.Speedup > 0 {
			lo, hi := shards[0], shards[0]
			for _, sc := range shards[1:] {
				lo, hi = min(lo, sc), max(hi, sc)
			}
			fmt.Printf("%-24s speedup ×%.2f (%d→%d shards)\n", spec.Name, sw.Speedup, lo, hi)
		}
		out.Scenarios = append(out.Scenarios, sw)
	}
	if err := scenario.WriteBench(*flagOut, out); err != nil {
		return err
	}
	fmt.Printf("fleetbench: wrote %s (%d scenario(s) × %d shard count(s))\n", *flagOut, len(specs), len(shards))
	return nil
}
