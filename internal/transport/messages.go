// Package transport implements the deployable SAPS-PSGD system over TCP:
// a coordinator server (Algorithm 1) that registers workers, broadcasts the
// per-round control messages (peer assignment + mask seed — never model
// payloads), and worker clients (Algorithm 2) that train locally and
// exchange sparsified models peer-to-peer over their own listeners.
//
// All control-plane and data-plane messages are gob-encoded. The data a
// worker exchanges with its peer is exactly the packed masked values —
// indices travel as a 64-bit seed inside the control message, reproducing
// the paper's wire economics.
package transport

import (
	"encoding/gob"
	"fmt"
	"io"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/nn"
)

// TaskSpec tells every worker what to train; broadcast once at registration.
// The training data itself never crosses the network: workers regenerate the
// deterministic synthetic dataset locally and take their own shard.
type TaskSpec struct {
	// Arch selects the model family: "mlp", "mnist-cnn", "cifar-cnn",
	// "resnet".
	Arch    string
	C, H, W int
	Classes int
	Width   float64
	Hidden  []int // MLP only
	Blocks  int   // ResNet blocks per stage

	Samples  int // total training samples across all workers
	DataSeed uint64
	NonIID   bool

	LR          float64
	Batch       int
	Compression float64
	LocalSteps  int
	Rounds      int
	Seed        uint64
}

// BuildModel constructs the worker model for the spec. All workers pass the
// same spec, so initial parameters agree bit-for-bit.
func (s TaskSpec) BuildModel() (*nn.Model, error) {
	in := nn.Shape{C: s.C, H: s.H, W: s.W}
	switch s.Arch {
	case "mlp":
		return nn.NewMLP(in.Dim(), s.Hidden, s.Classes, s.Seed), nil
	case "mnist-cnn":
		return nn.NewMNISTCNN(in, s.Classes, s.Width, s.Seed), nil
	case "cifar-cnn":
		return nn.NewCIFARCNN(in, s.Classes, s.Width, s.Seed), nil
	case "resnet":
		blocks := s.Blocks
		if blocks < 1 {
			blocks = 3
		}
		return nn.NewResNet(in, s.Classes, blocks, s.Width, s.Seed), nil
	default:
		return nil, fmt.Errorf("transport: unknown arch %q", s.Arch)
	}
}

// BuildShards regenerates the full synthetic dataset and partitions it for n
// workers. Every worker calls this with identical arguments and takes its
// rank's shard.
func (s TaskSpec) BuildShards(n int) ([]*dataset.Dataset, *dataset.Dataset) {
	cfg := dataset.SynthConfig{
		Name: s.Arch, C: s.C, H: s.H, W: s.W,
		Classes: s.Classes, PerClass: 2, Noise: 0.35,
	}
	full := dataset.Synthetic(cfg, s.Samples+s.Samples/5, s.DataSeed)
	train := &dataset.Dataset{Name: full.Name, C: full.C, H: full.H, W: full.W, Classes: full.Classes, Samples: full.Samples[:s.Samples]}
	valid := &dataset.Dataset{Name: full.Name + "-valid", C: full.C, H: full.H, W: full.W, Classes: full.Classes, Samples: full.Samples[s.Samples:]}
	if s.NonIID {
		return dataset.PartitionByLabel(train, n, 2, s.DataSeed+1), valid
	}
	return dataset.PartitionIID(train, n, s.DataSeed+1), valid
}

// Control-plane messages (coordinator ↔ worker).
type (
	// Hello is the worker's registration: where peers can reach it.
	Hello struct {
		ListenAddr string
	}
	// Welcome assigns the worker its rank and delivers the task and the
	// peer address book.
	Welcome struct {
		Rank  int
		N     int
		Task  TaskSpec
		Addrs []string
	}
	// RoundMsg is Algorithm 1 line 6: (W_t row for this worker, t, s).
	RoundMsg struct {
		Round int
		Seed  uint64
		Peer  int // -1: no exchange this round
	}
	// RoundEnd is the worker's end-of-round notification. PayloadLen is the
	// number of masked values the worker transmitted (0 when unmatched),
	// reported so the coordinator's ledger charges the exact wire size.
	RoundEnd struct {
		Rank       int
		Round      int
		Loss       float64
		PayloadLen int
	}
	// CollectRequest asks a worker for its full model (Algorithm 1 line 8).
	CollectRequest struct{}
	// FinalModel is the collected model payload.
	FinalModel struct {
		Params []float64
	}
	// Done terminates the worker.
	Done struct{}
)

// PeerPayload is the data-plane message two matched workers swap: the packed
// masked parameter values for the given round.
type PeerPayload struct {
	Round int
	From  int
	Vals  []float64
}

// wire is the gob envelope: encoding an interface value requires concrete
// type registration, done in registerTypes.
type wire struct {
	M any
}

func registerTypes() {
	gob.Register(Hello{})
	gob.Register(Welcome{})
	gob.Register(RoundMsg{})
	gob.Register(RoundEnd{})
	gob.Register(CollectRequest{})
	gob.Register(FinalModel{})
	gob.Register(Done{})
	gob.Register(PeerPayload{})
	gob.Register(MeasureRequest{})
	gob.Register(MeasureReport{})
	gob.Register(Probe{})
}

// Conn wraps a stream with gob encode/decode of wire envelopes.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	c   io.Closer
}

// NewConn wraps rwc. Both sides must wrap their end.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	registerTypes()
	return &Conn{enc: gob.NewEncoder(rwc), dec: gob.NewDecoder(rwc), c: rwc}
}

// Send encodes one message.
func (c *Conn) Send(m any) error {
	if err := c.enc.Encode(wire{M: m}); err != nil {
		return fmt.Errorf("transport: send %T: %w", m, err)
	}
	return nil
}

// Recv decodes one message.
func (c *Conn) Recv() (any, error) {
	var w wire
	if err := c.dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return w.M, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.c.Close() }
