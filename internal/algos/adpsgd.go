package algos

import (
	"fmt"

	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
)

// This file implements AD-PSGD (Lian et al., "Asynchronous Decentralized
// Parallel Stochastic Gradient Descent", ICML 2018) as an engine.AsyncNode:
// each rank loops local SGD and then rendezvouses with one uniformly drawn
// neighbor, both endpoints atomically averaging their parameter vectors
// x_i, x_j ← (x_i + x_j)/2. There is no global barrier; a slow rank delays
// only the partners that draw it. The atomic-average semantics live in the
// async driver (the passive partner surrenders its current vector at
// delivery time); this node only trains and averages.

// adpsgdNode is one AD-PSGD rank.
type adpsgdNode struct {
	t          *localTrainer
	localSteps int
	params     []float64
	mixed      []float64
}

// Compute implements engine.Node: localSteps minibatch SGD steps, then the
// dense parameter snapshot the rendezvous ships.
func (a *adpsgdNode) Compute(engine.RoundContext) (float64, []float64, error) {
	total := 0.0
	for s := 0; s < a.localSteps; s++ {
		total += a.t.sgdStep()
	}
	a.params = a.t.model.FlatParams(a.params)
	return total / float64(a.localSteps), a.params, nil
}

// Snapshot implements engine.AsyncNode: the passive side of a rendezvous
// surrenders its current parameters.
func (a *adpsgdNode) Snapshot() []float64 {
	a.params = a.t.model.FlatParams(a.params)
	return a.params
}

// Merge implements engine.Node: the pairwise average x ← (x + x_peer)/2.
func (a *adpsgdNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		a.mixed = a.t.model.FlatParams(a.mixed)
		if len(m.Vals) != len(a.mixed) {
			return fmt.Errorf("algos: adpsgd rank received %d values for %d params", len(m.Vals), len(a.mixed))
		}
		for j, v := range m.Vals {
			a.mixed[j] = 0.5 * (a.mixed[j] + v)
		}
		a.t.model.SetFlatParams(a.mixed)
	}
	return nil
}

// AsyncFleet bundles one asynchronous algorithm's per-rank state for
// engine.NewAsync: the nodes, the shared codec table, and the live models
// whose average is the current global model.
type AsyncFleet struct {
	Nodes  []engine.AsyncNode
	Codecs []engine.Codec
	Models []*nn.Model
	Dim    int
}

// NewAsyncFleet builds the async fleet for an asynchronous recipe (adpsgd or
// gradpush) over the shared fleet plumbing: identically initialized models,
// deterministic per-rank loader streams.
func NewAsyncFleet(fc FleetConfig, r Recipe) *AsyncFleet {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	if !r.Async() {
		panic("algos: NewAsyncFleet on synchronous recipe " + r.Algo)
	}
	f := NewFleet(fc)
	af := &AsyncFleet{
		Nodes:  make([]engine.AsyncNode, f.N),
		Codecs: r.Codecs(f.Dim),
		Models: f.Models,
		Dim:    f.Dim,
	}
	for i := 0; i < f.N; i++ {
		af.Nodes[i] = r.NewNode(i, f.Models[i], fc.Shards[i], nil).(engine.AsyncNode)
	}
	return af
}
