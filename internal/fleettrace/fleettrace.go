// Package fleettrace replays committed per-node CSV series — per-round
// bandwidth multipliers and join/leave events — as a deterministic fleet
// environment. A trace file is the measured counterpart of the synthetic
// jitter/churn generators: the scenario layer parses it once, wraps it in a
// Replay, and queries the replay as a pure function of the round index, so
// the sim, sharded, and TCP backends observe bit-identical environments.
//
// The CSV schema is:
//
//	round,node,bw,event
//	0,3,0.25,
//	5,3,,leave
//	9,3,1.0,join
//
// round and node are non-negative integers; bw is an optional positive
// finite multiplier applied to every link touching the node; event is an
// optional "leave" or "join". A row must carry at least one of bw/event.
// Rows for one node must appear in strictly increasing round order, events
// must alternate (a node starts active, so its first event must be "leave"),
// and lines starting with '#' are comments. Every violation is a validation
// error with the offending line number — Parse never panics on hostile
// input (the fuzz test pins this).
package fleettrace

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Header is the mandatory first non-comment line of a trace file.
const Header = "round,node,bw,event"

// Interp selects how bandwidth multipliers are evaluated between samples.
type Interp int

const (
	// InterpHold holds each sample's value until the next sample (and holds
	// the first sample's value backwards before it) — the default.
	InterpHold Interp = iota
	// InterpLinear linearly interpolates between consecutive samples and
	// holds flat outside the sampled range.
	InterpLinear
)

// ParseInterp maps the scenario-level interpolation name to an Interp.
// The empty string means hold.
func ParseInterp(name string) (Interp, error) {
	switch name {
	case "", "hold":
		return InterpHold, nil
	case "linear":
		return InterpLinear, nil
	}
	return 0, fmt.Errorf("fleettrace: unknown interpolation %q (want hold or linear)", name)
}

// bwPoint is one bandwidth sample of a node's series.
type bwPoint struct {
	round int
	mult  float64
}

// evPoint is one membership event of a node's series.
type evPoint struct {
	round int
	leave bool
}

// Trace is a parsed, validated trace: per-node bandwidth-multiplier series
// and membership-event series.
type Trace struct {
	// Nodes is 1 + the largest node id the trace references.
	Nodes int
	// MaxRound is the largest round any row references.
	MaxRound int
	bw       [][]bwPoint
	events   [][]evPoint
	nEvents  int
}

// HasEvents reports whether the trace carries any join/leave events.
func (tr *Trace) HasEvents() bool { return tr.nEvents > 0 }

// Parse decodes and validates a trace from its CSV bytes.
func Parse(data []byte) (*Trace, error) {
	lines := strings.Split(string(data), "\n")
	sawHeader := false
	type nodeState struct {
		lastRound int
		absent    bool
		seenRow   bool
	}
	states := map[int]*nodeState{}
	bw := map[int][]bwPoint{}
	events := map[int][]evPoint{}
	tr := &Trace{}
	rows := 0
	for ln, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		if !sawHeader {
			if strings.TrimSpace(line) != Header {
				return nil, fmt.Errorf("fleettrace: line %d: header %q, want %q", ln+1, line, Header)
			}
			sawHeader = true
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("fleettrace: line %d: %d fields, want 4 (%s)", ln+1, len(fields), Header)
		}
		round, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || round < 0 {
			return nil, fmt.Errorf("fleettrace: line %d: round %q is not a non-negative integer", ln+1, fields[0])
		}
		node, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil || node < 0 {
			return nil, fmt.Errorf("fleettrace: line %d: node %q is not a non-negative integer", ln+1, fields[1])
		}
		bwField := strings.TrimSpace(fields[2])
		evField := strings.TrimSpace(fields[3])
		if bwField == "" && evField == "" {
			return nil, fmt.Errorf("fleettrace: line %d: row carries neither a bw multiplier nor an event", ln+1)
		}
		st := states[node]
		if st == nil {
			st = &nodeState{}
			states[node] = st
		}
		if st.seenRow && round <= st.lastRound {
			return nil, fmt.Errorf("fleettrace: line %d: node %d round %d out of order (previous row was round %d)",
				ln+1, node, round, st.lastRound)
		}
		st.seenRow = true
		st.lastRound = round
		if bwField != "" {
			mult, err := strconv.ParseFloat(bwField, 64)
			if err != nil {
				return nil, fmt.Errorf("fleettrace: line %d: bw %q is not a number", ln+1, bwField)
			}
			if math.IsNaN(mult) || math.IsInf(mult, 0) || mult <= 0 {
				return nil, fmt.Errorf("fleettrace: line %d: bw multiplier %v must be positive and finite", ln+1, mult)
			}
			bw[node] = append(bw[node], bwPoint{round: round, mult: mult})
		}
		if evField != "" {
			switch evField {
			case "leave":
				if st.absent {
					return nil, fmt.Errorf("fleettrace: line %d: node %d leaves at round %d but is already absent", ln+1, node, round)
				}
				st.absent = true
			case "join":
				if !st.absent {
					return nil, fmt.Errorf("fleettrace: line %d: node %d joins at round %d but never left", ln+1, node, round)
				}
				st.absent = false
			default:
				return nil, fmt.Errorf("fleettrace: line %d: unknown event %q (want leave or join)", ln+1, evField)
			}
			events[node] = append(events[node], evPoint{round: round, leave: evField == "leave"})
			tr.nEvents++
		}
		if node+1 > tr.Nodes {
			tr.Nodes = node + 1
		}
		if round > tr.MaxRound {
			tr.MaxRound = round
		}
		rows++
	}
	if !sawHeader {
		return nil, fmt.Errorf("fleettrace: empty trace (missing %q header)", Header)
	}
	if rows == 0 {
		return nil, fmt.Errorf("fleettrace: trace has a header but no data rows")
	}
	tr.bw = make([][]bwPoint, tr.Nodes)
	tr.events = make([][]evPoint, tr.Nodes)
	for node, pts := range bw {
		tr.bw[node] = pts
	}
	for node, evs := range events {
		tr.events[node] = evs
	}
	return tr, nil
}

// ParseFile reads and parses one trace file.
func ParseFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// Replay evaluates a trace against a concrete fleet: Multipliers and Active
// are pure functions of the round index, so every backend (and every shard
// count) querying the same replay observes the same environment. Nodes the
// trace never mentions keep multiplier 1 and stay active.
type Replay struct {
	trace  *Trace
	interp Interp
	n      int
}

// NewReplay binds a trace to a fleet of n nodes. It fails if the trace
// references a node outside the fleet or if its events ever leave fewer than
// two nodes active (SAPS needs a pair to gossip).
func NewReplay(tr *Trace, n int, interp Interp) (*Replay, error) {
	if tr.Nodes > n {
		return nil, fmt.Errorf("fleettrace: trace references node %d but the fleet has only %d nodes", tr.Nodes-1, n)
	}
	// Membership only changes at event rounds: walk them in (round, node)
	// order and check the active count after each round's batch.
	type change struct{ round, node, delta int }
	var changes []change
	for node, evs := range tr.events {
		for _, e := range evs {
			d := 1
			if e.leave {
				d = -1
			}
			changes = append(changes, change{round: e.round, node: node, delta: d})
		}
	}
	sort.Slice(changes, func(a, b int) bool {
		if changes[a].round != changes[b].round {
			return changes[a].round < changes[b].round
		}
		return changes[a].node < changes[b].node
	})
	active := n
	for i, c := range changes {
		active += c.delta
		if i+1 < len(changes) && changes[i+1].round == c.round {
			continue
		}
		if active < 2 {
			return nil, fmt.Errorf("fleettrace: trace leaves %d of %d nodes active at round %d (need at least 2)", active, n, c.round)
		}
	}
	return &Replay{trace: tr, interp: interp, n: n}, nil
}

// N returns the fleet size the replay covers.
func (rp *Replay) N() int { return rp.n }

// HasEvents reports whether the underlying trace carries membership events.
func (rp *Replay) HasEvents() bool { return rp.trace.HasEvents() }

// Multipliers writes the fleet's per-node bandwidth multipliers at round t
// into dst (reallocated unless it has length N) and returns it.
func (rp *Replay) Multipliers(t int, dst []float64) []float64 {
	if len(dst) != rp.n {
		dst = make([]float64, rp.n)
	}
	for i := range dst {
		dst[i] = 1
	}
	for node, pts := range rp.trace.bw {
		if len(pts) > 0 {
			dst[node] = sampleAt(pts, t, rp.interp)
		}
	}
	return dst
}

// Active writes the fleet's membership at round t into dst (reallocated
// unless it has length N) and returns it. An event at round r takes effect
// at round r.
func (rp *Replay) Active(t int, dst []bool) []bool {
	if len(dst) != rp.n {
		dst = make([]bool, rp.n)
	}
	for i := range dst {
		dst[i] = true
	}
	for node, evs := range rp.trace.events {
		// Last event with round <= t decides; none means the initial state.
		k := sort.Search(len(evs), func(i int) bool { return evs[i].round > t })
		if k > 0 {
			dst[node] = !evs[k-1].leave
		}
	}
	return dst
}

// sampleAt evaluates one node's multiplier series at round t.
func sampleAt(pts []bwPoint, t int, interp Interp) float64 {
	// k is the first sample strictly after t.
	k := sort.Search(len(pts), func(i int) bool { return pts[i].round > t })
	if k == 0 {
		// Before the first sample: hold it backwards under both modes.
		return pts[0].mult
	}
	prev := pts[k-1]
	if interp == InterpHold || k == len(pts) || prev.round == t {
		return prev.mult
	}
	next := pts[k]
	frac := float64(t-prev.round) / float64(next.round-prev.round)
	v := prev.mult + (next.mult-prev.mult)*frac
	// The exact interpolant lies between the samples; clamp the floating-
	// point one there too, so extreme sample values can never cancel to a
	// non-positive multiplier.
	lo, hi := prev.mult, next.mult
	if lo > hi {
		lo, hi = hi, lo
	}
	if v < lo {
		v = lo
	} else if v > hi {
		v = hi
	}
	return v
}
