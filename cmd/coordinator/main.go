// Command coordinator runs the training coordinator (Algorithm 1) as a TCP
// server for any of the paper's algorithms: it registers the task's worker
// processes, drives -rounds communication rounds of control broadcasts
// (adaptive peer selection + mask seed for SAPS; participation sampling for
// the federated schemes), and writes the collected final model to -out
// (gob-encoded []float64).
//
// Example (six terminals):
//
//	coordinator -addr 127.0.0.1:7000 -n 4 -rounds 100 -arch mnist-cnn
//	worker -coordinator 127.0.0.1:7000   # ×4
//
// Hub algorithms (-algo ps-psgd|fedavg|s-fedavg) need one extra worker
// process: the last registered rank becomes the parameter server.
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7000", "listen address")
		n           = flag.Int("n", 4, "number of trainer workers")
		rounds      = flag.Int("rounds", 100, "communication rounds T")
		algo        = flag.String("algo", "saps", "algorithm: "+strings.Join(algos.AlgoNames, "|"))
		arch        = flag.String("arch", "mnist-cnn", "model: mlp|mnist-cnn|cifar-cnn|resnet")
		width       = flag.Float64("width", 0.25, "model width multiplier")
		size        = flag.Int("size", 16, "input spatial size (divisible by 4)")
		channels    = flag.Int("channels", 1, "input channels")
		classes     = flag.Int("classes", 10, "classes")
		samples     = flag.Int("samples", 2048, "total training samples")
		lr          = flag.Float64("lr", 0.05, "learning rate")
		batch       = flag.Int("batch", 16, "batch size")
		compression = flag.Float64("c", 100, "SAPS mask compression ratio c")
		algoC       = flag.Float64("algo-c", 100, "sparsifier ratio for topk-psgd/dcd-psgd/s-fedavg")
		levels      = flag.Int("qsgd-levels", 4, "QSGD quantization levels")
		fraction    = flag.Float64("fraction", 0.5, "FedAvg participation fraction")
		localSteps  = flag.Int("local-steps", 1, "local SGD steps per round")
		nonIID      = flag.Bool("non-iid", false, "label-sharded non-IID partition")
		seed        = flag.Uint64("seed", 1, "global seed")
		bthres      = flag.Float64("bthres", 0, "bandwidth threshold B_thres (MB/s)")
		tthres      = flag.Int("tthres", 10, "recency window T_thres (rounds)")
		measure     = flag.Bool("measure", false, "probe pairwise worker bandwidth before training (paper §II-C fn.3)")
		probeKB     = flag.Int("probe-kb", 64, "probe payload size in KiB when -measure is set")
		out         = flag.String("out", "model.gob", "output file for the final model")
	)
	flag.Parse()

	spec := transport.TaskSpec{
		Arch: *arch, C: *channels, H: *size, W: *size, Classes: *classes,
		Width: *width, Hidden: []int{64}, Samples: *samples, DataSeed: *seed + 100,
		NonIID: *nonIID, LR: *lr, Batch: *batch, Compression: *compression,
		LocalSteps: *localSteps, Rounds: *rounds, Seed: *seed,
		Algo: *algo, AlgoC: *algoC, QLevels: *levels, Fraction: *fraction,
	}
	rec := spec.Recipe(*n)
	if err := rec.Validate(); err != nil {
		log.Fatal(err)
	}
	srv := &transport.CoordinatorServer{
		N:    *n,
		Task: spec,
		// Without real link measurements, the coordinator assumes a random
		// uniform environment; in production each worker pair would report
		// measured speeds (paper §II-C footnote 3).
		BW:         netsim.RandomUniform(rec.Nodes(), 1, 5, rng.New(*seed)),
		Measure:    *measure,
		ProbeBytes: *probeKB << 10,
		Gossip:     gossip.Config{BThres: *bthres, TThres: *tthres},
		Logf:       log.Printf,
	}
	led := &engine.CountingLedger{}
	srv.Ledger = led
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinator listening on %s: algorithm %q, waiting for %d worker processes (%d trainers%s)",
		bound, rec.Algo, rec.Nodes(), *n, serverNote(rec))
	params, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("total measured traffic: %.2f MB over %d rounds", float64(led.TotalBytes())/1e6, led.Rounds())
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(params); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final model (%d parameters) written to %s\n", len(params), *out)
}

func serverNote(rec algos.Recipe) string {
	if rec.Hub() {
		return " + 1 parameter server"
	}
	return ""
}
