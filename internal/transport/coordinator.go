package transport

import (
	"fmt"
	"log"
	"net"
	"sync"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
)

// CoordinatorServer runs Algorithm 1 over TCP: it registers n workers,
// drives T rounds of peer assignment + mask seeds, enforces the round
// barrier, and finally collects the model from worker 0.
type CoordinatorServer struct {
	N    int
	Task TaskSpec
	// BW is the bandwidth environment used by the gossip generator when
	// Measure is false; with Measure set it is only the fallback for links
	// whose probes failed.
	BW  *netsim.Bandwidth
	Cfg core.Config
	// Measure, when true, runs a bandwidth measurement phase after
	// registration (paper §II-C footnote 3): every worker pair exchanges
	// ProbeBytes of payload, reports the achieved throughput, and the
	// assembled matrix drives the adaptive matching.
	Measure bool
	// ProbeBytes sizes the measurement payload (default 64 KiB).
	ProbeBytes int
	// Ledger, when set, receives the engine driver's per-round traffic
	// accounting (defaults to a fresh engine.CountingLedger). Pass one in to
	// read byte totals after Run.
	Ledger engine.Ledger
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)

	ln      net.Listener
	conns   []*Conn
	addrs   []string
	mu      sync.Mutex
	started bool
}

// Listen binds the coordinator to addr (e.g. "127.0.0.1:0") and returns the
// actual bound address.
func (s *CoordinatorServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: coordinator listen: %w", err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

func (s *CoordinatorServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Run accepts n workers, drives the full training, and returns the final
// model parameters collected from worker 0. It closes the listener on exit.
func (s *CoordinatorServer) Run() ([]float64, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("transport: coordinator already started")
	}
	s.started = true
	s.mu.Unlock()
	if s.ln == nil {
		return nil, fmt.Errorf("transport: Run before Listen")
	}
	defer s.ln.Close()

	// Registration phase.
	for rank := 0; rank < s.N; rank++ {
		nc, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: accept worker %d: %w", rank, err)
		}
		conn := NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: hello from worker %d: %w", rank, err)
		}
		hello, ok := msg.(Hello)
		if !ok {
			return nil, fmt.Errorf("transport: worker %d sent %T, want Hello", rank, msg)
		}
		s.conns = append(s.conns, conn)
		s.addrs = append(s.addrs, hello.ListenAddr)
		s.logf("coordinator: worker %d registered at %s", rank, hello.ListenAddr)
	}
	defer func() {
		for _, c := range s.conns {
			c.Close()
		}
	}()
	for rank, c := range s.conns {
		if err := c.Send(Welcome{Rank: rank, N: s.N, Task: s.Task, Addrs: s.addrs}); err != nil {
			return nil, err
		}
	}

	// Optional measurement phase.
	bw := s.BW
	if s.Measure {
		probe := s.ProbeBytes
		if probe <= 0 {
			probe = 64 << 10
		}
		for rank, c := range s.conns {
			if err := c.Send(MeasureRequest{ProbeBytes: probe}); err != nil {
				return nil, fmt.Errorf("transport: measure request to %d: %w", rank, err)
			}
		}
		reports := make([]MeasureReport, 0, s.N)
		for rank, c := range s.conns {
			msg, err := c.Recv()
			if err != nil {
				return nil, fmt.Errorf("transport: measure report from %d: %w", rank, err)
			}
			rep, ok := msg.(MeasureReport)
			if !ok {
				return nil, fmt.Errorf("transport: measure phase got %T from %d", msg, rank)
			}
			reports = append(reports, rep)
		}
		measured, err := AssembleBandwidth(s.N, reports)
		if err != nil {
			return nil, err
		}
		bw = measured
		s.logf("coordinator: measured bandwidth matrix assembled (mean %.2f MB/s)", bw.MeanBandwidth())
	}

	// Round loop (Algorithm 1 lines 3–7), executed by the canonical engine
	// driver: planning, the worker barrier, and traffic accounting are the
	// same code the in-memory and simulated backends run.
	led := s.Ledger
	if led == nil {
		led = &engine.CountingLedger{}
	}
	drv := &engine.Driver{
		Planner: core.NewCoordinator(bw, s.Cfg),
		Control: (*tcpControl)(s),
	}
	for t := 0; t < s.Task.Rounds; t++ {
		stats, err := drv.Round(t, led)
		if err != nil {
			return nil, err
		}
		if (t+1)%10 == 0 || t == s.Task.Rounds-1 {
			s.logf("coordinator: round %d/%d mean loss %.4f", t+1, s.Task.Rounds, stats.Loss)
		}
	}

	return s.collect()
}

// tcpControl implements engine.Control over the coordinator's worker
// connections: broadcast the round's control message, then hold the barrier
// until every worker reports back.
type tcpControl CoordinatorServer

// RunRound implements engine.Control.
func (s *tcpControl) RunRound(plan core.RoundPlan) (float64, int, error) {
	t := plan.Round
	for rank, c := range s.conns {
		if err := c.Send(RoundMsg{Round: t, Seed: plan.Seed, Peer: plan.Peer[rank]}); err != nil {
			return 0, 0, fmt.Errorf("transport: round %d notify %d: %w", t, rank, err)
		}
	}
	lossSum := 0.0
	payloadLen := 0
	for rank, c := range s.conns {
		msg, err := c.Recv()
		if err != nil {
			return 0, 0, fmt.Errorf("transport: round %d end from %d: %w", t, rank, err)
		}
		end, ok := msg.(RoundEnd)
		if !ok || end.Round != t {
			return 0, 0, fmt.Errorf("transport: round %d: unexpected %v from %d", t, msg, rank)
		}
		lossSum += end.Loss
		if end.PayloadLen > payloadLen {
			payloadLen = end.PayloadLen
		}
	}
	return lossSum / float64(s.N), payloadLen, nil
}

// collect gathers the final model from worker 0 (Algorithm 1 line 8) and
// releases the workers.
func (s *CoordinatorServer) collect() ([]float64, error) {
	if err := s.conns[0].Send(CollectRequest{}); err != nil {
		return nil, err
	}
	msg, err := s.conns[0].Recv()
	if err != nil {
		return nil, fmt.Errorf("transport: collect: %w", err)
	}
	final, ok := msg.(FinalModel)
	if !ok {
		return nil, fmt.Errorf("transport: collect got %T", msg)
	}
	for rank, c := range s.conns {
		if err := c.Send(Done{}); err != nil {
			log.Printf("transport: done to %d: %v", rank, err)
		}
	}
	s.logf("coordinator: collected %d parameters, done", len(final.Params))
	return final.Params, nil
}
