package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// maxFinishedRuns bounds the finished-run history kept for /runs so a
// long campaign doesn't grow the tracker without bound.
const maxFinishedRuns = 64

// RunInfo is the live progress record of one scenario run. Updates are
// lock-free atomics; the tracker snapshots them for /runs. All methods
// are safe on a nil receiver, so disabled runs carry a nil *RunInfo.
type RunInfo struct {
	// ID is the tracker-assigned sequence number.
	ID int64
	// Name is the scenario name.
	Name string
	// Algo is the algorithm identifier.
	Algo string
	// Nodes is the fleet size.
	Nodes int
	// Rounds is the planned round count (or async step budget).
	Rounds int
	// Started is the wall-clock start time.
	Started time.Time

	round    atomic.Int64
	doneBits atomic.Int64 // unix nanos of completion; 0 while running
}

// SetRound records the most recently completed round. No-op on nil.
func (r *RunInfo) SetRound(n int) {
	if r != nil {
		r.round.Store(int64(n))
	}
}

// Finish marks the run complete. No-op on nil.
func (r *RunInfo) Finish() {
	if r != nil {
		r.doneBits.Store(time.Now().UnixNano())
	}
}

// runSnapshot is the JSON shape served by /runs.
type runSnapshot struct {
	ID      int64   `json:"id"`
	Name    string  `json:"name"`
	Algo    string  `json:"algo"`
	Nodes   int     `json:"nodes"`
	Rounds  int     `json:"rounds"`
	Round   int64   `json:"round"`
	Running bool    `json:"running"`
	Started string  `json:"started"`
	Seconds float64 `json:"seconds"`
}

func (r *RunInfo) snapshot() runSnapshot {
	done := r.doneBits.Load()
	s := runSnapshot{
		ID: r.ID, Name: r.Name, Algo: r.Algo, Nodes: r.Nodes, Rounds: r.Rounds,
		Round: r.round.Load(), Running: done == 0,
		Started: r.Started.UTC().Format(time.RFC3339Nano),
	}
	if done == 0 {
		s.Seconds = time.Since(r.Started).Seconds()
	} else {
		s.Seconds = time.Unix(0, done).Sub(r.Started).Seconds()
	}
	return s
}

// RunTracker registers scenario runs and serves their live state as
// JSON. A nil tracker is a valid disabled sink: Start returns nil and
// the RunInfo methods no-op from there.
type RunTracker struct {
	active *Gauge

	mu       sync.Mutex
	nextID   int64
	running  []*RunInfo
	finished []*RunInfo
}

// NewRunTracker creates an empty tracker.
func NewRunTracker() *RunTracker {
	return &RunTracker{active: NewGauge(Prefix+"runs_active", "Scenario runs currently in flight.")}
}

// Start registers a run and returns its live record. Returns nil (a
// valid disabled record) on a nil tracker.
func (t *RunTracker) Start(name, algo string, nodes, rounds int) *RunInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	r := &RunInfo{ID: t.nextID, Name: name, Algo: algo, Nodes: nodes, Rounds: rounds, Started: time.Now()}
	t.running = append(t.running, r)
	t.active.Set(int64(len(t.running)))
	return r
}

// Done moves a run from the running set to the bounded finished
// history. It is called by RunInfo-owning code after Finish; no-op on a
// nil tracker or nil run.
func (t *RunTracker) Done(r *RunInfo) {
	if t == nil || r == nil {
		return
	}
	r.Finish()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, x := range t.running {
		if x == r {
			t.running = append(t.running[:i], t.running[i+1:]...)
			break
		}
	}
	t.active.Set(int64(len(t.running)))
	t.finished = append(t.finished, r)
	if len(t.finished) > maxFinishedRuns {
		t.finished = t.finished[len(t.finished)-maxFinishedRuns:]
	}
}

// WriteJSON renders the running and finished runs as a JSON document.
func (t *RunTracker) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"running":[],"finished":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	running := append([]*RunInfo(nil), t.running...)
	finished := append([]*RunInfo(nil), t.finished...)
	t.mu.Unlock()
	out := struct {
		Running  []runSnapshot `json:"running"`
		Finished []runSnapshot `json:"finished"`
	}{Running: []runSnapshot{}, Finished: []runSnapshot{}}
	for _, r := range running {
		out.Running = append(out.Running, r.snapshot())
	}
	for _, r := range finished {
		out.Finished = append(out.Finished, r.snapshot())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
