package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// logger is the process-global structured logger. Nil (the default)
// means logging is off and Logger() returns nil, which callers must
// treat as "skip the log line" — instrumented code checks once per
// emission, never per round.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs (or, with nil, removes) the global structured
// logger.
func SetLogger(l *slog.Logger) { logger.Store(l) }

// Logger returns the installed structured logger, or nil when logging
// is off.
func Logger() *slog.Logger { return logger.Load() }

// EnableLogging installs a slog logger writing to w in the named
// format: "text" or "json" enable it, "off" (or "") removes it. It
// returns an error on an unknown format.
func EnableLogging(w io.Writer, format string, level slog.Level) error {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "off", "":
		SetLogger(nil)
	case "text":
		SetLogger(slog.New(slog.NewTextHandler(w, opts)))
	case "json":
		SetLogger(slog.New(slog.NewJSONHandler(w, opts)))
	default:
		return fmt.Errorf("obs: unknown log format %q (want off|text|json)", format)
	}
	return nil
}
