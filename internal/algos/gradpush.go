package algos

import (
	"fmt"

	"sapspsgd/internal/engine"
	"sapspsgd/internal/tensor"
)

// This file implements Gradient Push — stochastic gradient push (Assran et
// al., "Stochastic Gradient Push for Distributed Deep Learning", ICML 2019)
// — as an engine.AsyncNode for the one-way async driver. Each rank keeps
// the push-sum pair (x, w): the de-biased model is z = x/w, gradients are
// taken at z and applied to x, and a gossip halves (x, w) locally while
// pushing the other half to one neighbor, whose Merge just adds it in. The
// receiver is never blocked (OneWay mode), which is the algorithm's whole
// point: pure one-sided communication. The payload is the dim+1 dense
// vector [x/2..., w/2] over the dense codec.

// gradPushNode is one Gradient Push rank.
type gradPushNode struct {
	t          *localTrainer
	lr         float64
	localSteps int
	x          []float64 // push-sum numerator
	w          float64   // push-sum weight
	z          []float64 // de-biased model scratch
	out        []float64 // outbound [x/2, w/2] payload scratch
	grads      []float64
}

// newGradPushNode initializes the pair at (x0, 1) so z0 equals the shared
// initial model.
func newGradPushNode(t *localTrainer, lr float64, localSteps int) *gradPushNode {
	return &gradPushNode{
		t: t, lr: lr, localSteps: localSteps,
		x: t.model.FlatParams(nil), w: 1,
	}
}

// debias writes z = x/w into the model, so the trainer's forward/backward
// passes run on the de-biased parameters.
func (g *gradPushNode) debias() {
	if cap(g.z) < len(g.x) {
		g.z = make([]float64, len(g.x))
	}
	g.z = g.z[:len(g.x)]
	inv := 1 / g.w
	for j, v := range g.x {
		g.z[j] = v * inv
	}
	g.t.model.SetFlatParams(g.z)
}

// Compute implements engine.Node: localSteps SGD steps on z applied to x,
// then the halved (x, w) push payload. The local halves are kept
// immediately — the send is committed the moment it is scheduled.
func (g *gradPushNode) Compute(engine.RoundContext) (float64, []float64, error) {
	total := 0.0
	for s := 0; s < g.localSteps; s++ {
		g.debias()
		total += g.t.gradStep()
		g.grads = g.t.model.FlatGrads(g.grads)
		tensor.Axpy(-g.lr, g.grads, g.x)
	}
	if cap(g.out) < len(g.x)+1 {
		g.out = make([]float64, len(g.x)+1)
	}
	g.out = g.out[:len(g.x)+1]
	for j, v := range g.x {
		half := 0.5 * v
		g.x[j] = half
		g.out[j] = half
	}
	g.w *= 0.5
	g.out[len(g.x)] = g.w
	// Leave the model at the post-step de-biased state (halving x and w
	// together does not change z).
	g.debias()
	return total / float64(g.localSteps), g.out, nil
}

// Snapshot implements engine.AsyncNode. Gradient Push runs one-way, so the
// driver never calls this; it returns the current (x, w) pair for
// completeness.
func (g *gradPushNode) Snapshot() []float64 {
	if cap(g.out) < len(g.x)+1 {
		g.out = make([]float64, len(g.x)+1)
	}
	g.out = g.out[:len(g.x)+1]
	copy(g.out, g.x)
	g.out[len(g.x)] = g.w
	return g.out
}

// Merge implements engine.Node: push-sum reception, (x, w) += (x', w').
func (g *gradPushNode) Merge(_ engine.RoundContext, msgs []engine.PeerMsg) error {
	for _, m := range msgs {
		if len(m.Vals) != len(g.x)+1 {
			return fmt.Errorf("algos: gradpush rank received %d values for %d params", len(m.Vals), len(g.x))
		}
		tensor.Axpy(1, m.Vals[:len(g.x)], g.x)
		g.w += m.Vals[len(g.x)]
		// Keep the evaluated model in sync with the freshly received mass.
		g.debias()
	}
	return nil
}
