package trace

import (
	"strings"
	"testing"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
)

func env() *netsim.Bandwidth {
	return netsim.NewBandwidth([][]float64{
		{0, 4, 2, 2},
		{4, 0, 2, 2},
		{2, 2, 0, 8},
		{2, 2, 8, 0},
	})
}

func TestRecorderStatistics(t *testing.T) {
	r := NewRecorder()
	bw := env()
	r.Record(0, graph.Matching{1, 0, 3, 2}, bw, false, 100, 4, 0.5)
	r.Record(1, graph.Matching{2, 3, 0, 1}, bw, true, 100, 4, 0.4)
	if r.Len() != 2 {
		t.Fatal("len")
	}
	// Round 0 pairs: (0,1)=4, (2,3)=8 → mean 6. Round 1: (0,2)=2, (1,3)=2 →
	// mean 2. Across rounds: 4.
	if got := r.MeanMatchedBandwidth(); got != 4 {
		t.Fatalf("MeanMatchedBandwidth = %v, want 4", got)
	}
	if got := r.ForcedFraction(); got != 0.5 {
		t.Fatalf("ForcedFraction = %v, want 0.5", got)
	}
	ev := r.Events()[0]
	if len(ev.Pairs) != 2 || ev.Pairs[0] != [2]int{0, 1} || ev.PairMBps[0] != 4 {
		t.Fatalf("event pairs wrong: %+v", ev)
	}
}

func TestRecorderCSV(t *testing.T) {
	r := NewRecorder()
	bw := env()
	r.Record(0, graph.Matching{1, 0, -1, -1}, bw, true, 64, 4, 1.25)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "round,pairs,") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "0,0-1,4.0000,true,64,4,1.250000") {
		t.Fatalf("row wrong:\n%s", out)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.MeanMatchedBandwidth() != 0 || r.ForcedFraction() != 0 {
		t.Fatal("empty recorder statistics")
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 1 {
		t.Fatalf("empty CSV should be header only, got %d lines", lines)
	}
}

func TestRecorderSkipsUnmatchedRoundsInMean(t *testing.T) {
	r := NewRecorder()
	bw := env()
	r.Record(0, graph.Matching{-1, -1, -1, -1}, bw, false, 0, 4, 0)
	r.Record(1, graph.Matching{1, 0, -1, -1}, bw, false, 0, 4, 0)
	if got := r.MeanMatchedBandwidth(); got != 4 {
		t.Fatalf("mean = %v, want 4 (empty round excluded)", got)
	}
}
