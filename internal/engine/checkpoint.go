package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// SnapshotVersion is the engine snapshot schema. Decode rejects other
// versions so stale checkpoint files fail loudly instead of silently
// resuming a diverged trajectory.
const SnapshotVersion = 1

// Stateful is implemented by Nodes and Codecs whose round-boundary state
// must survive a checkpoint/restore cycle: model parameters and data-stream
// cursors on nodes, error-feedback residuals and RNG cursors on codecs.
// CaptureState must be called only at a round boundary (no round in flight);
// RestoreState must be called on an identically constructed instance.
// Stateless codecs (Dense, Masked) simply do not implement the interface.
type Stateful interface {
	// CaptureState serializes the complete round-boundary state.
	CaptureState() ([]byte, error)
	// RestoreState restores state captured by CaptureState.
	RestoreState([]byte) error
}

// LedgerCheckpointer is implemented by ledgers whose cumulative accounting
// can ride in a snapshot (CountingLedger, *netsim.Ledger), so a resumed run
// reports byte-identical totals to an uninterrupted one.
type LedgerCheckpointer interface {
	// CaptureState serializes the ledger's cumulative totals.
	CaptureState() ([]byte, error)
	// RestoreState restores totals captured by CaptureState.
	RestoreState([]byte) error
}

// RankSnapshot is one rank's serialized round-boundary state: the node blob
// (model parameters, optimizer momentum, loader RNG cursors, replicas) and
// the rank's encoder codec blob (error-feedback residual, quantizer RNG) —
// nil for stateless codecs.
type RankSnapshot struct {
	Node  []byte
	Codec []byte
}

// Snapshot is a versioned engine checkpoint taken at a round boundary:
// restoring it into a freshly constructed engine (same recipe, same seed)
// and re-running the remaining rounds reproduces the uninterrupted run
// bit-identically. NextRound is the first round the restored engine should
// execute; Ledger carries the cumulative traffic totals when the ledger is
// checkpointable.
type Snapshot struct {
	Version   int
	NextRound int
	Ranks     []RankSnapshot
	Ledger    []byte
}

// CaptureRank snapshots one rank's node and encoder codec. It fails when the
// node does not support checkpointing.
func CaptureRank(node Node, codec Codec) (RankSnapshot, error) {
	sn, ok := node.(Stateful)
	if !ok {
		return RankSnapshot{}, fmt.Errorf("engine: node %T does not support checkpointing", node)
	}
	nb, err := sn.CaptureState()
	if err != nil {
		return RankSnapshot{}, err
	}
	rs := RankSnapshot{Node: nb}
	if sc, ok := codec.(Stateful); ok {
		cb, err := sc.CaptureState()
		if err != nil {
			return RankSnapshot{}, err
		}
		rs.Codec = cb
	}
	return rs, nil
}

// RestoreRank restores a rank snapshot into an identically constructed node
// and codec.
func RestoreRank(node Node, codec Codec, rs RankSnapshot) error {
	sn, ok := node.(Stateful)
	if !ok {
		return fmt.Errorf("engine: node %T does not support checkpointing", node)
	}
	if err := sn.RestoreState(rs.Node); err != nil {
		return err
	}
	sc, stateful := codec.(Stateful)
	switch {
	case rs.Codec == nil && !stateful:
		return nil
	case rs.Codec == nil || !stateful:
		return fmt.Errorf("engine: snapshot codec state mismatch for %T", codec)
	}
	return sc.RestoreState(rs.Codec)
}

// Checkpoint captures the engine's complete round-boundary state: every
// rank's node and codec, plus the ledger totals when led implements
// LedgerCheckpointer (pass nil to skip ledger capture). nextRound is the
// first round a restored engine will execute. It must not be called with a
// round in flight.
func (e *Engine) Checkpoint(nextRound int, led Ledger) (*Snapshot, error) {
	snap := &Snapshot{
		Version:   SnapshotVersion,
		NextRound: nextRound,
		Ranks:     make([]RankSnapshot, len(e.nodes)),
	}
	for i, node := range e.nodes {
		rs, err := CaptureRank(node, e.codecs[i])
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint rank %d: %w", i, err)
		}
		snap.Ranks[i] = rs
	}
	if lc, ok := led.(LedgerCheckpointer); ok && led != nil {
		lb, err := lc.CaptureState()
		if err != nil {
			return nil, err
		}
		snap.Ledger = lb
	}
	return snap, nil
}

// Restore loads a snapshot into this freshly constructed engine (same node
// count, same recipe) and into led when both the snapshot and the ledger
// support it. The caller must also re-point the planner: either construct it
// fresh and ReplayPlans(snap.NextRound), or restore planner state by other
// means — planner streams are not part of the snapshot because deployments
// keep the coordinator alive across worker restarts.
func (e *Engine) Restore(snap *Snapshot, led Ledger) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("engine: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if len(snap.Ranks) != len(e.nodes) {
		return fmt.Errorf("engine: snapshot of %d ranks for %d nodes", len(snap.Ranks), len(e.nodes))
	}
	for i, rs := range snap.Ranks {
		if err := RestoreRank(e.nodes[i], e.codecs[i], rs); err != nil {
			return fmt.Errorf("engine: restore rank %d: %w", i, err)
		}
	}
	if lc, ok := led.(LedgerCheckpointer); ok && snap.Ledger != nil {
		return lc.RestoreState(snap.Ledger)
	}
	return nil
}

// ReplayPlans advances a freshly constructed planner to the stream position
// it held at the snapshot's round boundary by planning (and discarding)
// rounds [0, rounds). Planner outputs are deterministic functions of the
// call sequence, so replay is exact; it is also cheap — planning touches no
// model state.
func (e *Engine) ReplayPlans(rounds int) {
	for t := 0; t < rounds; t++ {
		e.driver.Planner.Plan(t)
	}
}

// Encode writes the snapshot as a gob stream.
func (s *Snapshot) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("engine: encode snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a snapshot written by Encode, rejecting other schema
// versions.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("engine: decode snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("engine: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	return &s, nil
}

// gobBlob round-trips a value through gob — the shared helper behind the
// Stateful implementations in this package.
func gobBlob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobUnblob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
