// Package profiling wires the standard Go profilers into the repository's
// command-line tools as one shared flag set: -cpuprofile, -memprofile, and
// -trace mean the same thing on every binary that takes them, and the
// outputs feed straight into `go tool pprof` / `go tool trace`.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the optional profile outputs a command records. The zero
// value records nothing.
type Config struct {
	// CPUProfile is the CPU profile output path ("" = off).
	CPUProfile string
	// MemProfile is the allocation profile output path, written at Stop
	// ("" = off).
	MemProfile string
	// Trace is the runtime execution trace output path ("" = off).
	Trace string
}

// AddFlags registers the shared profiling flags on fs (the default
// CommandLine set when fs is nil).
func (c *Config) AddFlags(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write an allocation profile to `file` on exit")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to `file`")
}

// Start begins the configured recordings and returns the stop function the
// caller must run (typically deferred) before exiting: it ends the CPU
// profile and trace, and writes the allocation profile. A Start failure
// leaves nothing running.
func (c Config) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if c.CPUProfile != "" {
		if cpuFile, err = os.Create(c.CPUProfile); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		if traceFile, err = os.Create(c.Trace); err != nil {
			cleanup()
			return nil, err
		}
		if err = trace.Start(traceFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if c.MemProfile == "" {
			return nil
		}
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		// An up-to-date heap picture, as `go test -memprofile` takes it.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("mem profile: %w", err)
		}
		return nil
	}, nil
}

// Run wraps fn with the configured recordings: Start, invoke fn, then
// stop, preferring fn's error over the stop error. It is the shared
// main-body wrapper for every binary that takes the profiling flags.
func (c Config) Run(fn func() error) error {
	stop, err := c.Start()
	if err != nil {
		return err
	}
	err = fn()
	if perr := stop(); err == nil {
		err = perr
	}
	return err
}
