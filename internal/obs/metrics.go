package obs

import "sync/atomic"

// Prefix is prepended to every metric in the catalog, namespacing the
// exposition for multi-process scrapes.
const Prefix = "sapspsgd_"

// secondsBuckets spans the latencies the runtime actually produces:
// sub-microsecond codec calls up through multi-second fused rounds.
var secondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100,
}

// EngineMetrics is the engine-layer slice of the catalog. It is a value
// struct of nil-safe metric pointers: the zero value is a fully working
// disabled sink, so instrumented code captures it once and calls methods
// unconditionally.
type EngineMetrics struct {
	// RoundsTotal counts completed communication rounds across all runs.
	RoundsTotal *Counter
	// RoundSeconds observes wall-clock seconds per driver round.
	RoundSeconds *Histogram
	// PhaseSeconds observes wall-clock seconds per fused phase run in
	// the sharded runtime.
	PhaseSeconds *Histogram
	// RendezvousWaitSeconds observes how long Exchange blocked waiting
	// for the peer's deposit in the in-memory hub.
	RendezvousWaitSeconds *Histogram
	// CodecEncodeSeconds observes per-call codec encode latency.
	CodecEncodeSeconds *Histogram
	// CodecDecodeSeconds observes per-call codec decode latency.
	CodecDecodeSeconds *Histogram
	// WireBytesTotal counts fleet traffic in the repo's endpoint
	// convention — every payload at both its sender and its receiver —
	// so the scrape agrees with Result.TotalBytes and BENCH.json.
	WireBytesTotal *Counter
	// SimSecondsTotal accumulates simulated communication seconds.
	SimSecondsTotal *FloatCounter
}

// Enabled reports whether this bundle carries live metrics. Timing
// instrumentation guards time.Now calls behind it so a disabled run
// never touches the clock.
func (e EngineMetrics) Enabled() bool { return e.RoundsTotal != nil }

// TransportMetrics is the TCP-fleet slice of the catalog (zero value =
// disabled sink).
type TransportMetrics struct {
	// ConnectsTotal counts accepted worker connections (registrations
	// and rejoin handshakes).
	ConnectsTotal *Counter
	// AbortsTotal counts round aborts triggered by worker loss.
	AbortsTotal *Counter
	// RejoinsTotal counts re-admitted workers.
	RejoinsTotal *Counter
	// CrashInjectionsTotal counts scheduled crash messages sent to
	// workers by the fault injector.
	CrashInjectionsTotal *Counter
	// SnapshotWritesTotal counts worker state snapshots persisted to disk.
	SnapshotWritesTotal *Counter
}

// NetsimMetrics is the virtual-time simulator slice of the catalog
// (zero value = disabled sink).
type NetsimMetrics struct {
	// VirtualSeconds gauges the simulator's virtual clock.
	VirtualSeconds *FloatGauge
	// EventQueueDepth gauges the pending-event count in the scheduler.
	EventQueueDepth *Gauge
	// EventsTotal counts processed simulation events.
	EventsTotal *Counter
}

// CampaignMetrics is the campaign-runner slice of the catalog (zero
// value = disabled sink).
type CampaignMetrics struct {
	// CellsPlanned gauges the total cells in the expanded grid.
	CellsPlanned *Gauge
	// CellsRunning gauges cells currently executing.
	CellsRunning *Gauge
	// CellsDoneTotal counts cells completed this process.
	CellsDoneTotal *Counter
	// CellsResumedTotal counts cells skipped because the journal already
	// had their artifacts.
	CellsResumedTotal *Counter
	// CellsFailedTotal counts cells that returned an error.
	CellsFailedTotal *Counter
}

// Metrics bundles the full catalog plus the registry that exposes it
// and the run tracker behind /runs. A single New() carries every
// subsystem's families, so any binary's /metrics includes engine,
// transport, netsim and campaign metrics regardless of which layers the
// process exercises.
type Metrics struct {
	// Registry renders the catalog (plus RunsActive) as Prometheus text
	// or JSON.
	Registry *Registry
	// Runs tracks live and recently finished runs for /runs.
	Runs *RunTracker
	// Engine holds the engine-layer metrics.
	Engine EngineMetrics
	// Transport holds the TCP-fleet metrics.
	Transport TransportMetrics
	// Netsim holds the simulator metrics.
	Netsim NetsimMetrics
	// Campaign holds the campaign-runner metrics.
	Campaign CampaignMetrics
}

// New builds a Metrics bundle with the full catalog registered in a
// fresh registry.
func New() *Metrics {
	m := &Metrics{Registry: NewRegistry(), Runs: NewRunTracker()}
	m.Engine = EngineMetrics{
		RoundsTotal:           NewCounter(Prefix+"engine_rounds_total", "Communication rounds completed."),
		RoundSeconds:          NewHistogram(Prefix+"engine_round_seconds", "Wall-clock seconds per driver round.", secondsBuckets...),
		PhaseSeconds:          NewHistogram(Prefix+"engine_phase_seconds", "Wall-clock seconds per fused phase run (sharded runtime).", secondsBuckets...),
		RendezvousWaitSeconds: NewHistogram(Prefix+"engine_rendezvous_wait_seconds", "Seconds Exchange blocked waiting for the peer deposit.", secondsBuckets...),
		CodecEncodeSeconds:    NewHistogram(Prefix+"engine_codec_encode_seconds", "Codec encode latency per call.", secondsBuckets...),
		CodecDecodeSeconds:    NewHistogram(Prefix+"engine_codec_decode_seconds", "Codec decode latency per call.", secondsBuckets...),
		WireBytesTotal:        NewCounter(Prefix+"engine_wire_bytes_total", "Fleet traffic bytes (each payload counted at sender and receiver)."),
		SimSecondsTotal:       NewFloatCounter(Prefix+"engine_sim_seconds_total", "Simulated communication seconds accumulated by the ledger."),
	}
	m.Transport = TransportMetrics{
		ConnectsTotal:        NewCounter(Prefix+"transport_connects_total", "Accepted worker connections (registration + rejoin)."),
		AbortsTotal:          NewCounter(Prefix+"transport_aborts_total", "Rounds aborted after losing a worker."),
		RejoinsTotal:         NewCounter(Prefix+"transport_rejoins_total", "Workers re-admitted through the rejoin handshake."),
		CrashInjectionsTotal: NewCounter(Prefix+"transport_crash_injections_total", "Scheduled crash messages sent by the fault injector."),
		SnapshotWritesTotal:  NewCounter(Prefix+"transport_snapshot_writes_total", "Worker state snapshots written to disk."),
	}
	m.Netsim = NetsimMetrics{
		VirtualSeconds:  NewFloatGauge(Prefix+"netsim_virtual_seconds", "Virtual clock of the network simulator."),
		EventQueueDepth: NewGauge(Prefix+"netsim_event_queue_depth", "Pending events in the simulator queue."),
		EventsTotal:     NewCounter(Prefix+"netsim_events_total", "Simulation events processed."),
	}
	m.Campaign = CampaignMetrics{
		CellsPlanned:      NewGauge(Prefix+"campaign_cells_planned", "Cells in the expanded campaign grid."),
		CellsRunning:      NewGauge(Prefix+"campaign_cells_running", "Campaign cells currently executing."),
		CellsDoneTotal:    NewCounter(Prefix+"campaign_cells_done_total", "Campaign cells completed."),
		CellsResumedTotal: NewCounter(Prefix+"campaign_cells_resumed_total", "Campaign cells skipped by journal resume."),
		CellsFailedTotal:  NewCounter(Prefix+"campaign_cells_failed_total", "Campaign cells that failed."),
	}
	m.Registry.MustRegister(
		m.Engine.RoundsTotal, m.Engine.RoundSeconds, m.Engine.PhaseSeconds,
		m.Engine.RendezvousWaitSeconds, m.Engine.CodecEncodeSeconds, m.Engine.CodecDecodeSeconds,
		m.Engine.WireBytesTotal, m.Engine.SimSecondsTotal,
		m.Transport.ConnectsTotal, m.Transport.AbortsTotal, m.Transport.RejoinsTotal,
		m.Transport.CrashInjectionsTotal, m.Transport.SnapshotWritesTotal,
		m.Netsim.VirtualSeconds, m.Netsim.EventQueueDepth, m.Netsim.EventsTotal,
		m.Campaign.CellsPlanned, m.Campaign.CellsRunning, m.Campaign.CellsDoneTotal,
		m.Campaign.CellsResumedTotal, m.Campaign.CellsFailedTotal,
		m.Runs.active,
	)
	return m
}

// current is the process-global sink. Instrumented constructors capture
// their slice of it once; a nil pointer (the default) yields zero-value
// bundles whose methods are all no-ops.
var current atomic.Pointer[Metrics]

// Enable installs m as the process-global sink. Components built after
// this call are instrumented; components built before it keep the
// disabled sink they captured. Call it once at startup, before engines
// or servers are constructed.
func Enable(m *Metrics) { current.Store(m) }

// Disable clears the global sink (used by tests).
func Disable() { current.Store(nil) }

// Current returns the installed sink, or nil when observability is off.
func Current() *Metrics { return current.Load() }

// EngineM returns the m's engine bundle, or a disabled zero bundle when
// m is nil — the safe way to chain off Current().
func (m *Metrics) EngineM() EngineMetrics {
	if m == nil {
		return EngineMetrics{}
	}
	return m.Engine
}

// TransportM returns m's transport bundle (disabled zero bundle when m
// is nil).
func (m *Metrics) TransportM() TransportMetrics {
	if m == nil {
		return TransportMetrics{}
	}
	return m.Transport
}

// NetsimM returns m's simulator bundle (disabled zero bundle when m is
// nil).
func (m *Metrics) NetsimM() NetsimMetrics {
	if m == nil {
		return NetsimMetrics{}
	}
	return m.Netsim
}

// CampaignM returns m's campaign bundle (disabled zero bundle when m is
// nil).
func (m *Metrics) CampaignM() CampaignMetrics {
	if m == nil {
		return CampaignMetrics{}
	}
	return m.Campaign
}

// RunsM returns m's run tracker, or nil when m is nil. RunTracker
// methods are nil-safe, so callers chain without checking.
func (m *Metrics) RunsM() *RunTracker {
	if m == nil {
		return nil
	}
	return m.Runs
}
