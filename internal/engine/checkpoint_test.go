// Checkpoint/resume tests: a run interrupted at a round boundary and resumed
// from a snapshot into freshly constructed state must be bit-identical to an
// uninterrupted run — model trajectories, error-feedback residuals, RNG
// cursors, and ledger totals all ride in the snapshot.
package engine_test

import (
	"bytes"
	"testing"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
)

// sapsEngine builds a fresh SAPS engine (workers + coordinator planner) from
// the shared test spec.
func sapsEngine(t *testing.T, n int) (*engine.Engine, []*core.Worker) {
	t.Helper()
	spec := testSpec(6)
	workers := buildWorkers(t, spec, n)
	eng := engine.New(engine.Options{
		Workers: workers,
		Planner: core.NewCoordinator(testEnv(n), coreConfig(spec, n)),
	})
	return eng, workers
}

func runRounds(t *testing.T, eng *engine.Engine, led engine.Ledger, from, to int) {
	t.Helper()
	for r := from; r < to; r++ {
		if _, err := eng.Step(r, led); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

// TestCheckpointResumeSAPS interrupts a SAPS run at a round boundary,
// serializes the snapshot, restores it into a brand-new engine (fresh
// models, loaders, planner), and checks the continuation is bit-identical to
// the uninterrupted run — parameters and per-round ledger bytes.
func TestCheckpointResumeSAPS(t *testing.T) {
	const n, total, cut = 4, 6, 3

	refEng, refWorkers := sapsEngine(t, n)
	defer refEng.Close()
	refLed := &engine.CountingLedger{}
	runRounds(t, refEng, refLed, 0, total)

	// Interrupted run: cut rounds, checkpoint, serialize.
	eng1, _ := sapsEngine(t, n)
	led1 := &engine.CountingLedger{}
	runRounds(t, eng1, led1, 0, cut)
	snap, err := eng1.Checkpoint(cut, led1)
	if err != nil {
		t.Fatal(err)
	}
	eng1.Close()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := engine.DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.NextRound != cut {
		t.Fatalf("decoded NextRound %d, want %d", decoded.NextRound, cut)
	}

	// Resume: everything rebuilt from scratch, planner replayed to the cut.
	eng2, workers2 := sapsEngine(t, n)
	defer eng2.Close()
	eng2.ReplayPlans(decoded.NextRound)
	led2 := &engine.CountingLedger{}
	if err := eng2.Restore(decoded, led2); err != nil {
		t.Fatal(err)
	}
	runRounds(t, eng2, led2, cut, total)

	for i := range refWorkers {
		want, got := refWorkers[i].Params(), workers2[i].Params()
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("worker %d param %d: resumed %v != uninterrupted %v", i, j, got[j], want[j])
			}
		}
	}
	wantBytes, gotBytes := refLed.RoundBytes(), led2.RoundBytes()
	if len(wantBytes) != len(gotBytes) {
		t.Fatalf("%d rounds accounted, want %d", len(gotBytes), len(wantBytes))
	}
	for r := range wantBytes {
		if wantBytes[r] != gotBytes[r] {
			t.Fatalf("round %d: resumed %d bytes != uninterrupted %d", r, gotBytes[r], wantBytes[r])
		}
	}
}

// topkEngine builds a TopK-PSGD engine via the recipe — the error-feedback
// residual is the state under test.
func topkEngine(t *testing.T, n int) (*engine.Engine, []engine.Node) {
	t.Helper()
	spec := testSpec(6)
	rec := algos.Recipe{Algo: "topk-psgd", Workers: n, LR: spec.LR, Batch: spec.Batch, Seed: spec.Seed, C: 8}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	shards, _ := spec.BuildShards(n)
	nodes := make([]engine.Node, n)
	dim := 0
	for i := 0; i < n; i++ {
		model, err := spec.BuildModel()
		if err != nil {
			t.Fatal(err)
		}
		dim = model.ParamCount()
		nodes[i] = rec.NewNode(i, model, shards[i], nil)
	}
	eng := engine.New(engine.Options{
		Nodes:   nodes,
		Codecs:  rec.Codecs(dim),
		Pattern: rec.Pattern(),
		Planner: rec.Planner(nil, gossip.Config{}),
	})
	return eng, nodes
}

// TestCheckpointResumeErrorFeedback does the same interrupted-vs-straight
// comparison for TopK-PSGD, whose codecs accumulate an error-feedback
// residual across rounds — forgetting it in the snapshot would diverge the
// traffic and the trajectory immediately.
func TestCheckpointResumeErrorFeedback(t *testing.T) {
	const n, total, cut = 4, 6, 2

	refEng, _ := topkEngine(t, n)
	defer refEng.Close()
	refLed := &engine.CountingLedger{}
	runRounds(t, refEng, refLed, 0, total)
	refFinal := snapshotNodeParams(t, refEng)

	eng1, _ := topkEngine(t, n)
	led1 := &engine.CountingLedger{}
	runRounds(t, eng1, led1, 0, cut)
	snap, err := eng1.Checkpoint(cut, led1)
	if err != nil {
		t.Fatal(err)
	}
	eng1.Close()

	eng2, _ := topkEngine(t, n)
	defer eng2.Close()
	eng2.ReplayPlans(snap.NextRound)
	led2 := &engine.CountingLedger{}
	if err := eng2.Restore(snap, led2); err != nil {
		t.Fatal(err)
	}
	runRounds(t, eng2, led2, cut, total)
	gotFinal := snapshotNodeParams(t, eng2)

	for i := range refFinal {
		for j := range refFinal[i] {
			if refFinal[i][j] != gotFinal[i][j] {
				t.Fatalf("node %d param %d: resumed %v != uninterrupted %v", i, j, gotFinal[i][j], refFinal[i][j])
			}
		}
	}
	wantBytes, gotBytes := refLed.RoundBytes(), led2.RoundBytes()
	for r := range wantBytes {
		if wantBytes[r] != gotBytes[r] {
			t.Fatalf("round %d: resumed %d bytes != uninterrupted %d", r, gotBytes[r], wantBytes[r])
		}
	}
}

// snapshotNodeParams reads every node's current state blob — a convenient
// bit-exact fingerprint of the full rank state (parameters, cursors).
func snapshotNodeParams(t *testing.T, eng *engine.Engine) [][]byte {
	t.Helper()
	nodes := eng.Nodes()
	out := make([][]byte, len(nodes))
	for i, n := range nodes {
		s, ok := n.(engine.Stateful)
		if !ok {
			t.Fatalf("node %T not stateful", n)
		}
		b, err := s.CaptureState()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}
