package engine

// CountingLedger is the accounting backend for deployments without a
// bandwidth model (in-memory runs, real TCP where time is physical): it
// tallies exact per-worker and per-round byte totals with zero simulated
// time. An optional Inner ledger is charged in lockstep, so a run can keep
// byte-identical counters alongside a netsim time model. Like *netsim.Ledger
// it is not safe for concurrent use; the Driver charges it from the
// coordinator loop only.
type CountingLedger struct {
	// Inner, when non-nil, receives every Exchange/EndRound call too.
	Inner Ledger

	sent, recv []int64
	roundBytes []int64
	cur        int64
	total      int64
}

func (l *CountingLedger) grow(i int) {
	if i < len(l.sent) {
		return
	}
	// One bulk extension instead of element-at-a-time appends: the first
	// Exchange of a fleet run typically names the highest rank within a few
	// rounds, after which this is a bounds check and nothing else.
	l.sent = append(l.sent, make([]int64, i+1-len(l.sent))...)
	l.recv = append(l.recv, make([]int64, i+1-len(l.recv))...)
}

// Reserve pre-sizes the per-worker counters for ranks [0, n) and the
// per-round series for rounds completed rounds, so a benchmark or fleet run
// of known shape performs no ledger allocations after this call. Reserving
// is optional and never changes observable totals.
func (l *CountingLedger) Reserve(n, rounds int) {
	l.grow(n - 1)
	if cap(l.roundBytes)-len(l.roundBytes) < rounds {
		rb := make([]int64, len(l.roundBytes), len(l.roundBytes)+rounds)
		copy(rb, l.roundBytes)
		l.roundBytes = rb
	}
}

// Exchange implements Ledger.
func (l *CountingLedger) Exchange(i, j int, sendBytes, recvBytes int64) {
	l.grow(max(i, j))
	l.sent[i] += sendBytes
	l.recv[j] += sendBytes
	l.sent[j] += recvBytes
	l.recv[i] += recvBytes
	l.cur += sendBytes + recvBytes
	if l.Inner != nil {
		l.Inner.Exchange(i, j, sendBytes, recvBytes)
	}
}

// EndRound implements Ledger, returning the inner ledger's round time (0
// without one).
func (l *CountingLedger) EndRound() float64 {
	l.roundBytes = append(l.roundBytes, l.cur)
	l.total += l.cur
	l.cur = 0
	if l.Inner != nil {
		return l.Inner.EndRound()
	}
	return 0
}

// RoundBytes returns the total bytes moved in each completed round.
func (l *CountingLedger) RoundBytes() []int64 { return l.roundBytes }

// TotalBytes returns the cumulative bytes moved across all rounds.
func (l *CountingLedger) TotalBytes() int64 { return l.total }

// WorkerBytes returns worker i's cumulative sent and received bytes.
func (l *CountingLedger) WorkerBytes(i int) (sent, recv int64) {
	l.grow(i)
	return l.sent[i], l.recv[i]
}

// Rounds returns the number of completed rounds.
func (l *CountingLedger) Rounds() int { return len(l.roundBytes) }

// countingLedgerState is the ledger's serialized checkpoint form.
type countingLedgerState struct {
	Sent, Recv, RoundBytes []int64
	Cur, Total             int64
}

// CaptureState implements LedgerCheckpointer. Inner ledgers are not
// captured; chain checkpointable ledgers and capture each.
func (l *CountingLedger) CaptureState() ([]byte, error) {
	return gobBlob(countingLedgerState{
		Sent:       append([]int64(nil), l.sent...),
		Recv:       append([]int64(nil), l.recv...),
		RoundBytes: append([]int64(nil), l.roundBytes...),
		Cur:        l.cur,
		Total:      l.total,
	})
}

// RestoreState implements LedgerCheckpointer.
func (l *CountingLedger) RestoreState(data []byte) error {
	var st countingLedgerState
	if err := gobUnblob(data, &st); err != nil {
		return err
	}
	l.sent = append(l.sent[:0], st.Sent...)
	l.recv = append(l.recv[:0], st.Recv...)
	l.roundBytes = append(l.roundBytes[:0], st.RoundBytes...)
	l.cur = st.Cur
	l.total = st.Total
	return nil
}
