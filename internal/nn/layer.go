// Package nn is a from-scratch CPU neural-network library with manual
// backpropagation, built so the SAPS-PSGD reproduction can train the paper's
// three architectures (MNIST-CNN, CIFAR10-CNN, ResNet-20) without any
// external deep-learning dependency.
//
// Layers operate on minibatches stored as tensor.Matrix values with one
// sample per row (channel-major C×H×W flattening for images). Models expose
// their parameters as a flat []float64 — the representation every
// compression and gossip operator in this repository works on (Eq. (2) of
// the paper).
//
// A Model is NOT safe for concurrent use; each simulated worker owns its own
// instance.
package nn

import (
	"fmt"

	"sapspsgd/internal/tensor"
)

// Param is one named parameter tensor with its gradient accumulator. Data
// and Grad always have equal length.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// Layer is one differentiable stage of a model.
type Layer interface {
	// Forward consumes a batch (rows = samples) and returns the output
	// batch. When train is false, layers use inference behaviour (e.g.
	// BatchNorm running statistics) and may skip caching.
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients. It must be called exactly once after each
	// training Forward.
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's parameters (views, not copies); empty for
	// stateless layers.
	Params() []Param
}

// Shape is the image geometry flowing between layers.
type Shape struct{ C, H, W int }

// Dim returns the flattened dimension.
func (s Shape) Dim() int { return s.C * s.H * s.W }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Model is a sequential stack of layers.
type Model struct {
	Name   string
	In     Shape
	Out    int // output dimension (class count)
	layers []Layer
	params []Param
	n      int
}

// NewModel assembles a sequential model; the parameter registry is built
// once at construction.
func NewModel(name string, in Shape, out int, layers ...Layer) *Model {
	m := &Model{Name: name, In: in, Out: out, layers: layers}
	for _, l := range layers {
		for _, p := range l.Params() {
			if len(p.Data) != len(p.Grad) {
				panic(fmt.Sprintf("nn: param %s data/grad length mismatch", p.Name))
			}
			m.params = append(m.params, p)
			m.n += len(p.Data)
		}
	}
	return m
}

// ParamCount returns the total number of scalar parameters N.
func (m *Model) ParamCount() int { return m.n }

// Layers exposes the layer list (read-only use).
func (m *Model) Layers() []Layer { return m.layers }

// Forward runs the full stack on a batch.
func (m *Model) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range m.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dL/d(logits) back through the stack, accumulating
// parameter gradients.
func (m *Model) Backward(dout *tensor.Matrix) {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dout = m.layers[i].Backward(dout)
	}
}

// ZeroGrads clears all gradient accumulators.
func (m *Model) ZeroGrads() {
	for _, p := range m.params {
		tensor.Fill(p.Grad, 0)
	}
}

// FlatParams copies all parameters into dst (allocating when dst is nil or
// mis-sized) and returns it, in deterministic registry order.
func (m *Model) FlatParams(dst []float64) []float64 {
	if len(dst) != m.n {
		dst = make([]float64, m.n)
	}
	off := 0
	for _, p := range m.params {
		copy(dst[off:], p.Data)
		off += len(p.Data)
	}
	return dst
}

// SetFlatParams writes the flat vector back into the layer parameters. It
// panics if the length differs from ParamCount.
func (m *Model) SetFlatParams(src []float64) {
	if len(src) != m.n {
		panic(fmt.Sprintf("nn: SetFlatParams length %d != %d", len(src), m.n))
	}
	off := 0
	for _, p := range m.params {
		copy(p.Data, src[off:off+len(p.Data)])
		off += len(p.Data)
	}
}

// FlatGrads copies all gradients into dst (allocating as needed).
func (m *Model) FlatGrads(dst []float64) []float64 {
	if len(dst) != m.n {
		dst = make([]float64, m.n)
	}
	off := 0
	for _, p := range m.params {
		copy(dst[off:], p.Grad)
		off += len(p.Grad)
	}
	return dst
}

// AddFlatToParams performs params += scale * v, the flat-vector SGD step
// x ← x − γg when scale = −γ and v = gradients.
func (m *Model) AddFlatToParams(scale float64, v []float64) {
	if len(v) != m.n {
		panic(fmt.Sprintf("nn: AddFlatToParams length %d != %d", len(v), m.n))
	}
	off := 0
	for _, p := range m.params {
		tensor.Axpy(scale, v[off:off+len(p.Data)], p.Data)
		off += len(p.Data)
	}
}

// Params exposes the parameter registry.
func (m *Model) Params() []Param { return m.params }
