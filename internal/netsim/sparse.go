package netsim

import (
	"fmt"
	"sort"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/rng"
)

// NewSparseBandwidth builds a sparse environment over n workers from an
// explicit undirected edge list. Edges must connect distinct in-range
// vertices and be unique as unordered pairs; negative weights clamp to 0 and
// zero-weight edges are dropped (a zero link is indistinguishable from an
// absent one everywhere in the API).
func NewSparseBandwidth(n int, edges []graph.WeightedEdge) *Bandwidth {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative worker count %d", n))
	}
	type half struct {
		src, dst int32
		w        float64
	}
	halves := make([]half, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V || e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			panic(fmt.Sprintf("netsim: bad sparse edge (%d,%d) over %d workers", e.U, e.V, n))
		}
		w := e.Weight
		if w < 0 {
			w = 0
		}
		if w == 0 {
			continue
		}
		halves = append(halves,
			half{src: int32(e.U), dst: int32(e.V), w: w},
			half{src: int32(e.V), dst: int32(e.U), w: w})
	}
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].src != halves[j].src {
			return halves[i].src < halves[j].src
		}
		return halves[i].dst < halves[j].dst
	})
	b := &Bandwidth{
		N:   n,
		off: make([]int, n+1),
		nbr: make([]int32, len(halves)),
		wts: make([]float64, len(halves)),
	}
	for k, h := range halves {
		if k > 0 && halves[k-1].src == h.src && halves[k-1].dst == h.dst {
			panic(fmt.Sprintf("netsim: duplicate sparse edge (%d,%d)", h.src, h.dst))
		}
		b.off[h.src+1]++
		b.nbr[k] = h.dst
		b.wts[k] = h.w
	}
	for i := 0; i < n; i++ {
		b.off[i+1] += b.off[i]
	}
	return b
}

// sparseTopology draws a connected random topology: a Hamiltonian ring
// guarantees connectivity, then random chords are added until the mean
// degree reaches degree. weight is called once per accepted edge, in
// acceptance order, so equal seeds give identical environments.
func sparseTopology(n, degree int, r *rng.Source, weight func(u, v int) float64) *Bandwidth {
	if n < 3 {
		panic(fmt.Sprintf("netsim: sparse topology needs n >= 3, got %d", n))
	}
	if degree < 2 || degree >= n {
		panic(fmt.Sprintf("netsim: sparse degree %d outside [2, %d]", degree, n-1))
	}
	target := n * degree / 2
	seen := make(map[uint64]bool, target)
	edges := make([]graph.WeightedEdge, 0, target)
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, graph.WeightedEdge{U: u, V: v, Weight: weight(u, v)})
		return true
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n)
	}
	// Chords: rejection-sample pairs; cap the attempts so pathological
	// degree targets terminate (the edge count then lands below target).
	for tries, budget := 0, 100*(target-len(edges)+1); len(edges) < target && tries < budget; tries++ {
		add(r.Intn(n), r.Intn(n))
	}
	return NewSparseBandwidth(n, edges)
}

// SparseRandomUniform is RandomUniform's sparse counterpart: a connected
// random topology of mean degree `degree` whose link speeds are drawn
// uniformly from (lo, hi] MB/s. Only the stored links exist — all other
// pairs read 0 MB/s — so memory is O(n·degree), never O(n²).
func SparseRandomUniform(n, degree int, lo, hi float64, r *rng.Source) *Bandwidth {
	if lo < 0 || hi <= 0 || hi < lo {
		panic(fmt.Sprintf("netsim: bad uniform range (%v, %v]", lo, hi))
	}
	return sparseTopology(n, degree, r, func(_, _ int) float64 {
		return lo + (hi-lo)*(1-r.Float64()) // (lo, hi]
	})
}

// SparseClustered is Clustered's sparse counterpart: same connected random
// topology as SparseRandomUniform, with intra-cluster links (i%clusters ==
// j%clusters) drawn around fast MB/s and cross-cluster links around slow,
// both with ±50% jitter.
func SparseClustered(n, clusters, degree int, fast, slow float64, r *rng.Source) *Bandwidth {
	if clusters < 1 || fast <= 0 || slow <= 0 {
		panic(fmt.Sprintf("netsim: bad clustered profile (clusters=%d fast=%v slow=%v)", clusters, fast, slow))
	}
	return sparseTopology(n, degree, r, func(u, v int) float64 {
		base := slow
		if u%clusters == v%clusters {
			base = fast
		}
		return base * (0.5 + r.Float64()) // ±50% jitter
	})
}
