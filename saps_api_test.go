package sapspsgd_test

import (
	"testing"

	saps "sapspsgd"
)

// TestPublicAPIQuickstart exercises the documented façade end to end: the
// same flow as examples/quickstart, at unit-test scale.
func TestPublicAPIQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run skipped in -short mode")
	}
	const workers = 4
	train, valid := saps.MNISTLike(256, 64, 42)
	shards := saps.PartitionIID(train, workers, 1)
	in := saps.Shape{C: 1, H: 28, W: 28}
	factory := func() *saps.Model { return saps.NewMNISTCNN(in, 10, 0.1, 7) }

	cfg := saps.DefaultConfig(workers)
	cfg.Compression = 10
	cfg.Batch = 16
	bw := saps.RandomUniform(workers, 0, 5, 3)

	alg := saps.NewSAPS(saps.FleetConfig{
		N: workers, Factory: factory, Shards: shards,
		LR: cfg.LR, Batch: cfg.Batch, Seed: 1,
	}, bw, cfg)

	res := saps.Run(alg, bw, saps.TrainConfig{Rounds: 30, EvalEvery: 10, Valid: valid})
	if res.Algorithm != "SAPS-PSGD" {
		t.Fatalf("Algorithm = %q", res.Algorithm)
	}
	f := res.Final()
	if f.ValAcc < 0.3 { // 10 classes, chance = 0.1
		t.Fatalf("accuracy %v after 30 rounds", f.ValAcc)
	}
	if f.TrafficMB <= 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	const workers = 4
	train, valid := saps.MNISTLike(200, 50, 5)
	shards := saps.PartitionByLabel(train, workers, 2, 1)
	fc := saps.FleetConfig{
		N:       workers,
		Factory: func() *saps.Model { return saps.NewMLP(28*28, []int{16}, 10, 7) },
		Shards:  shards,
		LR:      0.05,
		Batch:   16,
		Seed:    1,
	}
	bw := saps.FourteenCities()
	// 14-city environment has 14 workers; use a random one matching n.
	bw = saps.RandomUniform(workers, 1, 5, 2)

	cfg := saps.DefaultConfig(workers)
	cfg.Compression = 4
	cfg.Batch = 16

	algs := []saps.Algorithm{
		saps.NewPSGD(fc),
		saps.NewTopKPSGD(fc, 10),
		saps.NewFedAvg(fc, bw, 0.5, 2),
		saps.NewSFedAvg(fc, bw, 0.5, 2, 10),
		saps.NewDPSGD(fc),
		saps.NewDCDPSGD(fc, 4),
		saps.NewRandomChoose(fc, bw, cfg),
	}
	for _, alg := range algs {
		res := saps.Run(alg, bw, saps.TrainConfig{Rounds: 10, EvalEvery: 10, Valid: valid})
		if len(res.Records) == 0 {
			t.Fatalf("%s: no records", alg.Name())
		}
	}
}

func TestPublicAPIModels(t *testing.T) {
	// The paper-scale constructors exist and produce the documented sizes.
	mnist := saps.NewMNISTCNN(saps.Shape{C: 1, H: 28, W: 28}, 10, 1, 1)
	if mnist.ParamCount() != 1663370 {
		t.Fatalf("MNIST-CNN params = %d", mnist.ParamCount())
	}
	resnet := saps.NewResNet(saps.Shape{C: 3, H: 32, W: 32}, 10, 3, 1, 1)
	if resnet.ParamCount() < 250000 || resnet.ParamCount() > 300000 {
		t.Fatalf("ResNet-20 params = %d", resnet.ParamCount())
	}
	cifar := saps.NewCIFARCNN(saps.Shape{C: 3, H: 32, W: 32}, 10, 1, 1)
	if cifar.ParamCount() < 1e6 {
		t.Fatalf("CIFAR-CNN params = %d", cifar.ParamCount())
	}
}

func TestPublicAPIEnvironments(t *testing.T) {
	cities := saps.FourteenCities()
	if cities.N != 14 {
		t.Fatal("FourteenCities N")
	}
	r := saps.RandomUniform(8, 1, 3, 9)
	if r.N != 8 || r.MBps(0, 1) <= 0 {
		t.Fatal("RandomUniform")
	}
	tr, va := saps.CIFARLike(100, 20, 3)
	if tr.Len() != 100 || va.Len() != 20 {
		t.Fatal("CIFARLike sizes")
	}
}
