package transport

import (
	"fmt"
	"log"
	"math"
	"net"
	"sync"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
)

// GossipConfig aliases gossip.Config (Algorithm 3's BThres/TThres knobs).
type GossipConfig = gossip.Config

// CoordinatorServer runs Algorithm 1 over TCP for any recipe algorithm: it
// registers the task's node processes (N trainers, plus one server process
// for hub algorithms), drives T rounds of control broadcasts, enforces the
// round barrier, and finally collects the global model.
type CoordinatorServer struct {
	// N is the trainer count n. Hub algorithms expect one extra worker
	// process to register (it becomes the parameter server, rank n).
	N    int
	Task TaskSpec
	// BW is the bandwidth environment used by the gossip generator when
	// Measure is false; with Measure set it is only the fallback for links
	// whose probes failed.
	BW *netsim.Bandwidth
	// Gossip carries Algorithm 3's BThres/TThres knobs (SAPS only).
	Gossip GossipConfig
	// Measure, when true, runs a bandwidth measurement phase after
	// registration (paper §II-C footnote 3): every worker pair exchanges
	// ProbeBytes of payload, reports the achieved throughput, and the
	// assembled matrix drives the adaptive matching.
	Measure bool
	// ProbeBytes sizes the measurement payload (default 64 KiB).
	ProbeBytes int
	// Ledger, when set, receives the engine driver's per-round traffic
	// accounting (defaults to a fresh engine.CountingLedger). Pass one in to
	// read byte totals after Run. Charges are the wire bytes the workers'
	// codecs measured, reported through the round-end flows.
	Ledger engine.Ledger
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)

	ln      net.Listener
	conns   []*Conn
	addrs   []string
	pattern engine.Pattern
	total   int
	mu      sync.Mutex
	started bool
}

// Listen binds the coordinator to addr (e.g. "127.0.0.1:0") and returns the
// actual bound address.
func (s *CoordinatorServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: coordinator listen: %w", err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

func (s *CoordinatorServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Run accepts the task's node processes, drives the full training, and
// returns the final global model parameters (collected from the server rank
// for hub algorithms, from worker 0 otherwise). It closes the listener on
// exit.
func (s *CoordinatorServer) Run() ([]float64, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("transport: coordinator already started")
	}
	s.started = true
	s.mu.Unlock()
	if s.ln == nil {
		return nil, fmt.Errorf("transport: Run before Listen")
	}
	defer s.ln.Close()

	rec := s.Task.Recipe(s.N)
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	s.total = rec.Nodes()
	s.pattern = rec.Pattern()

	// Registration phase.
	for rank := 0; rank < s.total; rank++ {
		nc, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: accept worker %d: %w", rank, err)
		}
		conn := NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: hello from worker %d: %w", rank, err)
		}
		hello, ok := msg.(Hello)
		if !ok {
			return nil, fmt.Errorf("transport: worker %d sent %T, want Hello", rank, msg)
		}
		s.conns = append(s.conns, conn)
		s.addrs = append(s.addrs, hello.ListenAddr)
		s.logf("coordinator: worker %d registered at %s", rank, hello.ListenAddr)
	}
	defer func() {
		for _, c := range s.conns {
			c.Close()
		}
	}()
	for rank, c := range s.conns {
		if err := c.Send(Welcome{Rank: rank, N: s.total, Task: s.Task, Addrs: s.addrs}); err != nil {
			return nil, err
		}
	}

	// Optional measurement phase.
	bw := s.BW
	if s.Measure {
		probe := s.ProbeBytes
		if probe <= 0 {
			probe = 64 << 10
		}
		for rank, c := range s.conns {
			if err := c.Send(MeasureRequest{ProbeBytes: probe}); err != nil {
				return nil, fmt.Errorf("transport: measure request to %d: %w", rank, err)
			}
		}
		reports := make([]MeasureReport, 0, s.total)
		for rank, c := range s.conns {
			msg, err := c.Recv()
			if err != nil {
				return nil, fmt.Errorf("transport: measure report from %d: %w", rank, err)
			}
			rep, ok := msg.(MeasureReport)
			if !ok {
				return nil, fmt.Errorf("transport: measure phase got %T from %d", msg, rank)
			}
			reports = append(reports, rep)
		}
		measured, err := AssembleBandwidth(s.total, reports)
		if err != nil {
			return nil, err
		}
		bw = measured
		s.logf("coordinator: measured bandwidth matrix assembled (mean %.2f MB/s)", bw.MeanBandwidth())
	}

	// Round loop (Algorithm 1 lines 3–7), executed by the canonical engine
	// driver: planning, the worker barrier, and traffic accounting are the
	// same code the in-memory and simulated backends run.
	led := s.Ledger
	if led == nil {
		led = &engine.CountingLedger{}
	}
	drv := &engine.Driver{
		Planner: rec.Planner(bw, s.Gossip),
		Control: (*tcpControl)(s),
	}
	for t := 0; t < s.Task.Rounds; t++ {
		stats, err := drv.Round(t, led)
		if err != nil {
			return nil, err
		}
		if (t+1)%10 == 0 || t == s.Task.Rounds-1 {
			s.logf("coordinator: round %d/%d mean loss %.4f (%d wire bytes)",
				t+1, s.Task.Rounds, stats.Loss, stats.Bytes)
		}
	}

	collectRank := 0
	if r := rec.ServerRank(); r >= 0 {
		collectRank = r
	}
	return s.collect(collectRank)
}

// tcpControl implements engine.Control over the coordinator's worker
// connections: broadcast the round's control message, then hold the barrier
// until every worker reports back with its measured flows.
type tcpControl CoordinatorServer

// RunRound implements engine.Control.
func (s *tcpControl) RunRound(plan core.RoundPlan) (engine.ControlReport, error) {
	if err := s.pattern.Validate(plan, s.total); err != nil {
		return engine.ControlReport{}, err
	}
	t := plan.Round
	for rank, c := range s.conns {
		peer := -1
		if rank < len(plan.Peer) {
			peer = plan.Peer[rank]
		}
		msg := RoundMsg{Round: t, Seed: plan.Seed, Peer: peer, Active: plan.Active}
		if err := c.Send(msg); err != nil {
			return engine.ControlReport{}, fmt.Errorf("transport: round %d notify %d: %w", t, rank, err)
		}
	}
	reports := make([]engine.NodeReport, s.total)
	seen := make([]bool, s.total)
	lossSum, trained := 0.0, 0
	rep := engine.ControlReport{}
	for rank, c := range s.conns {
		msg, err := c.Recv()
		if err != nil {
			return engine.ControlReport{}, fmt.Errorf("transport: round %d end from %d: %w", t, rank, err)
		}
		end, ok := msg.(RoundEnd)
		if !ok || end.Round != t {
			return engine.ControlReport{}, fmt.Errorf("transport: round %d: unexpected %v from %d", t, msg, rank)
		}
		if end.Rank < 0 || end.Rank >= s.total {
			return engine.ControlReport{}, fmt.Errorf("transport: round %d: report for invalid rank %d from connection %d", t, end.Rank, rank)
		}
		if seen[end.Rank] {
			return engine.ControlReport{}, fmt.Errorf("transport: round %d: duplicate report for rank %d", t, end.Rank)
		}
		seen[end.Rank] = true
		reports[end.Rank] = engine.NodeReport{
			Loss:       end.Loss,
			Trained:    end.Trained,
			PayloadLen: end.PayloadLen,
			Flows:      end.Flows,
		}
		if end.Trained && !math.IsNaN(end.Loss) {
			lossSum += end.Loss
			trained++
		}
		if end.PayloadLen > rep.PayloadLen {
			rep.PayloadLen = end.PayloadLen
		}
	}
	if trained > 0 {
		rep.MeanLoss = lossSum / float64(trained)
	}
	rep.Pairs = engine.AggregateFlows(reports)
	return rep, nil
}

// collect gathers the final model from the given rank (Algorithm 1 line 8)
// and releases the workers.
func (s *CoordinatorServer) collect(rank int) ([]float64, error) {
	if err := s.conns[rank].Send(CollectRequest{}); err != nil {
		return nil, err
	}
	msg, err := s.conns[rank].Recv()
	if err != nil {
		return nil, fmt.Errorf("transport: collect: %w", err)
	}
	final, ok := msg.(FinalModel)
	if !ok {
		return nil, fmt.Errorf("transport: collect got %T", msg)
	}
	for rank, c := range s.conns {
		if err := c.Send(Done{}); err != nil {
			log.Printf("transport: done to %d: %v", rank, err)
		}
	}
	s.logf("coordinator: collected %d parameters, done", len(final.Params))
	return final.Params, nil
}
