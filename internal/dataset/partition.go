package dataset

import (
	"fmt"

	"sapspsgd/internal/rng"
)

// PartitionIID splits d into n shards of (nearly) equal size after a seeded
// shuffle. Shards share the parent's image geometry and class count.
func PartitionIID(d *Dataset, n int, seed uint64) []*Dataset {
	if n < 1 {
		panic(fmt.Sprintf("dataset: PartitionIID with n=%d", n))
	}
	r := rng.New(seed)
	idx := r.Perm(len(d.Samples))
	shards := make([]*Dataset, n)
	for w := 0; w < n; w++ {
		shards[w] = emptyLike(d, fmt.Sprintf("%s/worker%d", d.Name, w))
	}
	for pos, i := range idx {
		w := pos % n
		shards[w].Samples = append(shards[w].Samples, d.Samples[i])
	}
	return shards
}

// PartitionByLabel produces a non-IID partition in the federated-learning
// style: samples are sorted by label into contiguous shards and each worker
// receives shardsPerWorker of them, so most workers see only a few classes.
// This reproduces the data heterogeneity (ζ² > 0 in Assumption 4) under
// which decentralized methods are evaluated.
func PartitionByLabel(d *Dataset, n, shardsPerWorker int, seed uint64) []*Dataset {
	if n < 1 || shardsPerWorker < 1 {
		panic(fmt.Sprintf("dataset: PartitionByLabel n=%d spw=%d", n, shardsPerWorker))
	}
	r := rng.New(seed)
	// Stable ordering by label, randomized within a label.
	byLabel := make([][]int, d.Classes)
	for i, s := range d.Samples {
		byLabel[s.Label] = append(byLabel[s.Label], i)
	}
	var order []int
	for _, idxs := range byLabel {
		r.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		order = append(order, idxs...)
	}
	totalShards := n * shardsPerWorker
	shardSize := len(order) / totalShards
	if shardSize == 0 {
		panic("dataset: too few samples for requested shards")
	}
	shardIDs := r.Perm(totalShards)
	shards := make([]*Dataset, n)
	for w := 0; w < n; w++ {
		shards[w] = emptyLike(d, fmt.Sprintf("%s/worker%d-noniid", d.Name, w))
		for s := 0; s < shardsPerWorker; s++ {
			id := shardIDs[w*shardsPerWorker+s]
			lo := id * shardSize
			hi := lo + shardSize
			if id == totalShards-1 {
				hi = len(order) // last shard absorbs the remainder
			}
			for _, i := range order[lo:hi] {
				shards[w].Samples = append(shards[w].Samples, d.Samples[i])
			}
		}
	}
	return shards
}

func emptyLike(d *Dataset, name string) *Dataset {
	return &Dataset{Name: name, C: d.C, H: d.H, W: d.W, Classes: d.Classes}
}

// Loader yields minibatches cyclically, reshuffling at each epoch boundary.
type Loader struct {
	d     *Dataset
	batch int
	r     *rng.Source
	order []int
	pos   int
	// Epochs counts completed passes over the shard.
	Epochs int
}

// NewLoader returns a loader with the given batch size. Batch is clamped to
// the dataset size.
func NewLoader(d *Dataset, batch int, seed uint64) *Loader {
	if d.Len() == 0 {
		panic("dataset: loader over empty dataset")
	}
	if batch < 1 {
		panic(fmt.Sprintf("dataset: batch %d < 1", batch))
	}
	if batch > d.Len() {
		batch = d.Len()
	}
	l := &Loader{d: d, batch: batch, r: rng.New(seed)}
	l.reshuffle()
	return l
}

func (l *Loader) reshuffle() {
	l.order = l.r.Perm(l.d.Len())
	l.pos = 0
}

// Next returns the next minibatch (views into the dataset, not copies).
func (l *Loader) Next() (xs [][]float64, labels []int) {
	xs = make([][]float64, 0, l.batch)
	labels = make([]int, 0, l.batch)
	for len(xs) < l.batch {
		if l.pos == len(l.order) {
			l.Epochs++
			l.reshuffle()
		}
		s := l.d.Samples[l.order[l.pos]]
		l.pos++
		xs = append(xs, s.X)
		labels = append(labels, s.Label)
	}
	return xs, labels
}

// LoaderState is a Loader's complete serializable position in its minibatch
// stream: the shuffle RNG cursor, the current epoch's sample order, and the
// position within it. Restoring it resumes Next exactly where the captured
// loader left off — data cursors are part of a rank's round-boundary
// checkpoint (DESIGN.md §3).
type LoaderState struct {
	RNG    rng.State
	Order  []int
	Pos    int
	Epochs int
}

// State captures the loader's current position (the order slice is copied).
func (l *Loader) State() LoaderState {
	return LoaderState{
		RNG:    l.r.State(),
		Order:  append([]int(nil), l.order...),
		Pos:    l.pos,
		Epochs: l.Epochs,
	}
}

// SetState restores a position captured by State. It panics if the captured
// order does not index this loader's dataset.
func (l *Loader) SetState(st LoaderState) {
	for _, i := range st.Order {
		if i < 0 || i >= l.d.Len() {
			panic(fmt.Sprintf("dataset: loader state order entry %d for dataset of %d", i, l.d.Len()))
		}
	}
	if st.Pos < 0 || st.Pos > len(st.Order) {
		panic(fmt.Sprintf("dataset: loader state pos %d of %d", st.Pos, len(st.Order)))
	}
	l.r.SetState(st.RNG)
	l.order = append(l.order[:0], st.Order...)
	l.pos = st.Pos
	l.Epochs = st.Epochs
}

// BatchesPerEpoch returns the number of Next calls per full pass.
func (l *Loader) BatchesPerEpoch() int {
	b := l.d.Len() / l.batch
	if b == 0 {
		return 1
	}
	return b
}

// LabelHistogram counts samples per class — used by the non-IID tests.
func LabelHistogram(d *Dataset) []int {
	h := make([]int, d.Classes)
	for _, s := range d.Samples {
		h[s.Label]++
	}
	return h
}
