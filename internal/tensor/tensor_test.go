package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"sapspsgd/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestAxpyLenMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestDotNorm(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2(a); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestHadamardAndMask(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 0, 1, 3}
	dst := make([]float64, 4)
	Hadamard(dst, a, b)
	want := []float64{2, 0, 3, 12}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Hadamard = %v, want %v", dst, want)
		}
	}
	v := []float64{5, 6, 7, 8}
	ApplyMask(v, []bool{true, false, true, false})
	wantv := []float64{5, 0, 7, 0}
	for i := range v {
		if v[i] != wantv[i] {
			t.Fatalf("ApplyMask = %v, want %v", v, wantv)
		}
	}
}

func TestMaskedAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	peer := []float64{3, 10, 5, 20}
	MaskedAverage(x, peer, []bool{true, false, true, false})
	want := []float64{2, 2, 4, 4}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("MaskedAverage = %v, want %v", x, want)
		}
	}
}

func TestMaskedAveragePreservesGlobalMean(t *testing.T) {
	// The pairwise masked average conserves the sum of the two workers'
	// parameters on masked coordinates — the invariant behind the doubly
	// stochastic gossip step.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 64
		a := make([]float64, n)
		b := make([]float64, n)
		mask := make([]bool, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
			mask[i] = r.Bernoulli(0.3)
		}
		sumBefore := Sum(a) + Sum(b)
		a2 := Clone(a)
		b2 := Clone(b)
		MaskedAverage(a2, b, mask)
		MaskedAverage(b2, a, mask)
		return almostEq(Sum(a2)+Sum(b2), sumBefore, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		v    []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{-5, -1, -2}, 1},
		{[]float64{2, 2, 2}, 0},
	}
	for _, tc := range tests {
		if got := ArgMax(tc.v); got != tc.want {
			t.Fatalf("ArgMax(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := MatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := NewMatrix(m, k)
		b := NewMatrix(k, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		got := MatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				for kk := 0; kk < k; kk++ {
					want += a.At(i, kk) * b.At(kk, j)
				}
				if !almostEq(got.At(i, j), want, 1e-9) {
					t.Fatalf("MatMul[%d,%d] = %v, want %v", i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := MatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestMatVecVecMat(t *testing.T) {
	a := MatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1, 1}
	got := MatVec(a, x)
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MatVec = %v", got)
	}
	y := []float64{1, 2}
	got2 := VecMat(y, a)
	want := []float64{9, 12, 15}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("VecMat = %v, want %v", got2, want)
		}
	}
}

func TestIsDoublyStochastic(t *testing.T) {
	tests := []struct {
		name string
		m    *Matrix
		want bool
	}{
		{"identity", MatrixFrom(2, 2, []float64{1, 0, 0, 1}), true},
		{"pairwise", MatrixFrom(2, 2, []float64{0.5, 0.5, 0.5, 0.5}), true},
		{"rowsOnly", MatrixFrom(2, 2, []float64{0.9, 0.1, 0.9, 0.1}), false},
		{"negative", MatrixFrom(2, 2, []float64{1.5, -0.5, -0.5, 1.5}), false},
		{"nonsquare", MatrixFrom(1, 2, []float64{0.5, 0.5}), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.IsDoublyStochastic(1e-9); got != tc.want {
				t.Fatalf("IsDoublyStochastic = %v, want %v", got, tc.want)
			}
		})
	}
}

// naiveConv computes a direct 2-D convolution for cross-checking Im2Col.
func naiveConv(img []float64, c, h, w int, weights []float64, outC, kh, kw, stride, pad int) []float64 {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	out := make([]float64, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*stride + ky - pad
							ix := ox*stride + kx - pad
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							wv := weights[((oc*c+ic)*kh+ky)*kw+kx]
							s += wv * img[ic*h*w+iy*w+ix]
						}
					}
				}
				out[(oc*outH+oy)*outW+ox] = s
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	r := rng.New(8)
	cases := []struct {
		c, h, w, outC, k, stride, pad int
	}{
		{1, 5, 5, 2, 3, 1, 0},
		{1, 5, 5, 2, 3, 1, 1},
		{3, 8, 8, 4, 3, 1, 1},
		{2, 7, 9, 3, 3, 2, 1},
		{3, 6, 6, 2, 5, 1, 2},
		{1, 4, 4, 1, 1, 1, 0},
	}
	for _, tc := range cases {
		img := make([]float64, tc.c*tc.h*tc.w)
		for i := range img {
			img[i] = r.NormFloat64()
		}
		weights := make([]float64, tc.outC*tc.c*tc.k*tc.k)
		for i := range weights {
			weights[i] = r.NormFloat64()
		}
		outH := ConvOutSize(tc.h, tc.k, tc.stride, tc.pad)
		outW := ConvOutSize(tc.w, tc.k, tc.stride, tc.pad)
		col := NewMatrix(tc.c*tc.k*tc.k, outH*outW)
		Im2Col(img, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.pad, col)
		wm := MatrixFrom(tc.outC, tc.c*tc.k*tc.k, weights)
		got := MatMul(wm, col)
		want := naiveConv(img, tc.c, tc.h, tc.w, weights, tc.outC, tc.k, tc.k, tc.stride, tc.pad)
		for i := range want {
			if !almostEq(got.Data[i], want[i], 1e-9) {
				t.Fatalf("case %+v: conv mismatch at %d: %v vs %v", tc, i, got.Data[i], want[i])
			}
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y — the defining property
	// of the adjoint, which is exactly what backprop through conv needs.
	r := rng.New(21)
	const c, h, w, k, stride, pad = 2, 6, 6, 3, 1, 1
	outH := ConvOutSize(h, k, stride, pad)
	outW := ConvOutSize(w, k, stride, pad)
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, c*h*w)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y := NewMatrix(c*k*k, outH*outW)
		for i := range y.Data {
			y.Data[i] = r.NormFloat64()
		}
		colX := NewMatrix(c*k*k, outH*outW)
		Im2Col(x, c, h, w, k, k, stride, pad, colX)
		lhs := Dot(colX.Data, y.Data)
		xBack := make([]float64, c*h*w)
		Col2Im(y, c, h, w, k, k, stride, pad, xBack)
		rhs := Dot(x, xBack)
		if !almostEq(lhs, rhs, 1e-9*math.Max(1, math.Abs(lhs))) {
			t.Fatalf("adjoint property violated: %v vs %v", lhs, rhs)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	a := NewMatrix(128, 128)
	c := NewMatrix(128, 128)
	for i := range a.Data {
		a.Data[i] = r.Float64()
		c.Data[i] = r.Float64()
	}
	dst := NewMatrix(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := rng.New(1)
	const c, h, w, k = 16, 32, 32, 3
	img := make([]float64, c*h*w)
	for i := range img {
		img[i] = r.Float64()
	}
	outH := ConvOutSize(h, k, 1, 1)
	col := NewMatrix(c*k*k, outH*outH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, c, h, w, k, k, 1, 1, col)
	}
}
