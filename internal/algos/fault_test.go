package algos

import (
	"strings"
	"testing"

	"sapspsgd/internal/engine"
)

func validSchedule() FaultSchedule {
	return FaultSchedule{
		N:    6,
		Seed: 9,
		Events: []FaultEvent{
			{Rank: 2, Round: 3, RejoinAfter: 2},
			{Rank: 4, Round: 1, RejoinAfter: 0}, // never returns
		},
	}
}

func TestFaultScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FaultSchedule)
		want string
	}{
		{"rank out of range", func(s *FaultSchedule) { s.Events[0].Rank = 6 }, "rank 6 of 6"},
		{"negative round", func(s *FaultSchedule) { s.Events[0].Round = -1 }, "negative round"},
		{"overlapping windows", func(s *FaultSchedule) {
			s.Events = append(s.Events, FaultEvent{Rank: 2, Round: 4, RejoinAfter: 1})
		}, "overlapping fault windows for rank 2"},
		{"event after unbounded window", func(s *FaultSchedule) {
			s.Events = append(s.Events, FaultEvent{Rank: 4, Round: 9, RejoinAfter: 1})
		}, "overlapping fault windows for rank 4"},
		{"too few survivors", func(s *FaultSchedule) {
			s.N = 3
			s.Events = []FaultEvent{{Rank: 0, Round: 2, RejoinAfter: 3}, {Rank: 1, Round: 2, RejoinAfter: 2}}
		}, "leave 1 of 3 workers"},
		{"mortality probability", func(s *FaultSchedule) { s.Mortality = &FaultMortality{Prob: 1.2, MinAlive: 2} }, "mortality probability"},
		{"mortality min alive", func(s *FaultSchedule) { s.Mortality = &FaultMortality{Prob: 0.1, MinAlive: 1} }, "min_alive 1 of 6"},
		{"mortality floor eaten by crash windows", func(s *FaultSchedule) {
			// Two ranks concurrently crashed at round 3 while mortality may
			// have already culled the fleet to 3: worst case leaves 1.
			s.Mortality = &FaultMortality{Prob: 0.1, MinAlive: 3}
		}, "minus 2 concurrently crashed"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := validSchedule()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("validated a schedule with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	s := validSchedule()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestFaultProcessDeterministicMembership pins the process semantics: event
// windows open and close at the scheduled rounds, mortality deaths are
// permanent and identical across independently constructed processes, and
// the floor stops further deaths.
func TestFaultProcessDeterministicMembership(t *testing.T) {
	sched := validSchedule()
	sched.Mortality = &FaultMortality{Prob: 0.3, MinAlive: 4}
	p1, p2 := NewFaultProcess(sched), NewFaultProcess(sched)

	prevAlive := sched.N
	var everDead []bool
	for round := 0; round < 12; round++ {
		a1, err := p1.Step(round)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := p2.Step(round)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("round %d rank %d: processes disagree", round, i)
			}
		}
		if everDead == nil {
			everDead = make([]bool, len(a1))
		}
		// Event semantics on rank 2: absent exactly for rounds 3 and 4.
		wantAbsent := round == 3 || round == 4
		if !a1[2] != wantAbsent && !mortalityDead(p1, 2) {
			t.Fatalf("round %d: rank 2 active=%v, want absent=%v", round, a1[2], wantAbsent)
		}
		// Rank 4 never returns after round 1.
		if round >= 1 && a1[4] {
			t.Fatalf("round %d: rank 4 active after its unbounded crash", round)
		}
		alive := 0
		for i, a := range a1 {
			if a {
				alive++
			}
			if everDead[i] && a && !eventScheduledActive(sched, i, round) {
				// A mortality-dead rank must never come back.
				t.Fatalf("round %d: mortality-dead rank %d returned", round, i)
			}
			if !a && !p1.eventAbsent(i, round) {
				everDead[i] = true
			}
		}
		if alive < 2 {
			t.Fatalf("round %d: only %d alive", round, alive)
		}
		_ = prevAlive
		prevAlive = alive
	}
	// Out-of-order stepping is rejected.
	if _, err := p1.Step(5); err == nil || !strings.Contains(err.Error(), "expected 12") {
		t.Fatalf("out-of-order step accepted: %v", err)
	}
}

func mortalityDead(p *FaultProcess, rank int) bool { return p.dead[rank] }

func eventScheduledActive(s FaultSchedule, rank, t int) bool {
	for _, e := range s.Events {
		if e.Rank == rank && e.covers(t) {
			return false
		}
	}
	return true
}

// TestSAPSFaultsMatchesManualExclusion checks the fault planner's active
// sets reach the engine: scheduled-dead workers' models must stay frozen
// during their windows.
func TestSAPSFaultsMatchesManualExclusion(t *testing.T) {
	fc, bw, _ := testSetup(t, 4)
	cfg := sapsConfig(4)
	sched := FaultSchedule{N: 4, Seed: cfg.Seed, Events: []FaultEvent{{Rank: 1, Round: 2, RejoinAfter: 2}}}
	alg := NewSAPSFaults(fc, bw, cfg, sched)
	defer alg.Close()

	led := &engine.CountingLedger{}
	var frozen []float64
	for round := 0; round < 6; round++ {
		if round == 2 {
			frozen = alg.Models()[1].FlatParams(nil)
		}
		alg.Step(round, led)
		cur := alg.Models()[1].FlatParams(nil)
		inWindow := round == 2 || round == 3
		changed := false
		for j := range cur {
			if frozen != nil && cur[j] != frozen[j] {
				changed = true
				break
			}
		}
		if inWindow && changed {
			t.Fatalf("round %d: crashed worker's model moved", round)
		}
		if round >= 4 && frozen != nil && !changed {
			// After rejoin the worker trains again (it participates in
			// matching and local SGD), so its parameters must move.
			t.Fatalf("round %d: rejoined worker's model still frozen", round)
		}
	}
	if len(alg.ActiveHistory) != 6 {
		t.Fatalf("%d active-history entries, want 6", len(alg.ActiveHistory))
	}
	if alg.ActiveHistory[2] != 3 || alg.ActiveHistory[0] != 4 {
		t.Fatalf("active history %v, want 4 at round 0 and 3 at round 2", alg.ActiveHistory)
	}
}
